// Fraud-ring detection: the e-commerce scenario that motivates MBE in the
// literature's introductions. Fake-review farms make groups of customer
// accounts buy the same set of products, which shows up as unusually large
// maximal bicliques in the customer x product purchase graph.
//
// This example plants a few "fraud rings" into a realistic power-law
// purchase graph, enumerates maximal bicliques with MBET, and flags every
// biclique whose size (customers x products) clears a suspicion threshold
// — then checks the planted rings were all caught.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "api/mbe.h"
#include "gen/generators.h"

int main() {
  // 4000 customers, 1500 products, organic long-tail purchases.
  mbe::BipartiteGraph organic =
      mbe::gen::PowerLaw(4000, 1500, 20000, 0.75, 0.7, 2024);

  // Plant 5 fraud rings: 8 accounts x 6 products each.
  std::vector<mbe::gen::PlantedBiclique> rings;
  mbe::BipartiteGraph graph =
      mbe::gen::PlantBicliques(organic, 5, 8, 6, 99, &rings);
  std::printf("purchase graph: %s, planted rings: %zu\n",
              graph.Summary().c_str(), rings.size());

  // Enumerate and flag: a biclique with >= 6 accounts and >= 5 products
  // is suspicious (organic co-purchase blocks this dense are rare).
  constexpr size_t kMinAccounts = 6;
  constexpr size_t kMinProducts = 5;
  std::vector<mbe::Biclique> suspicious;
  mbe::CallbackSink sink(
      [&](std::span<const mbe::VertexId> accounts,
          std::span<const mbe::VertexId> products) {
        if (accounts.size() >= kMinAccounts && products.size() >= kMinProducts) {
          suspicious.push_back(mbe::Biclique{
              {accounts.begin(), accounts.end()},
              {products.begin(), products.end()}});
        }
      });

  mbe::Options options;
  options.threads = 4;
  mbe::RunResult run;
  if (mbe::util::Status status = mbe::Enumerate(graph, options, &sink, &run);
      !status.ok()) {
    std::printf("enumeration failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("enumerated %llu maximal bicliques in %.1fms, %zu suspicious\n",
              static_cast<unsigned long long>(run.stats.maximal),
              run.seconds * 1e3, suspicious.size());

  // Every planted ring must be inside some flagged biclique.
  size_t caught = 0;
  for (const auto& ring : rings) {
    const bool hit = std::any_of(
        suspicious.begin(), suspicious.end(), [&](const mbe::Biclique& b) {
          return std::includes(b.left.begin(), b.left.end(), ring.left.begin(),
                               ring.left.end()) &&
                 std::includes(b.right.begin(), b.right.end(),
                               ring.right.begin(), ring.right.end());
        });
    caught += hit ? 1 : 0;
  }
  std::printf("planted rings caught: %zu / %zu\n", caught, rings.size());

  for (size_t i = 0; i < std::min<size_t>(3, suspicious.size()); ++i) {
    const auto& b = suspicious[i];
    std::printf("  flagged: %zu accounts x %zu products\n", b.left.size(),
                b.right.size());
  }
  return caught == rings.size() ? 0 : 1;
}
