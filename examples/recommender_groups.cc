// Social recommendation: find "taste groups" — user cohorts that all like
// the same item set — in a user x item interaction graph, then use the
// groups for simple item recommendation: for a target user, look at the
// largest taste groups they belong to and recommend the items liked by
// adjacent groups.
//
// Demonstrates the streaming (callback) API: taste groups are consumed as
// they are enumerated without materializing the full result set.

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "api/mbe.h"
#include "gen/generators.h"

int main() {
  // 3000 users x 800 items with mild power-law popularity.
  mbe::BipartiteGraph graph =
      mbe::gen::PowerLaw(3000, 800, 24000, 0.7, 0.8, 31);
  std::printf("interaction graph: %s\n", graph.Summary().c_str());

  // Collect taste groups (>= 3 users, >= 3 items) indexed per user.
  struct Group {
    std::vector<mbe::VertexId> users;
    std::vector<mbe::VertexId> items;
  };
  std::vector<Group> groups;
  mbe::CallbackSink sink([&](std::span<const mbe::VertexId> users,
                             std::span<const mbe::VertexId> items) {
    if (users.size() >= 3 && items.size() >= 3) {
      groups.push_back(Group{{users.begin(), users.end()},
                             {items.begin(), items.end()}});
    }
  });

  mbe::Options options;
  options.threads = 4;
  mbe::RunResult run;
  if (mbe::util::Status status = mbe::Enumerate(graph, options, &sink, &run);
      !status.ok()) {
    std::printf("enumeration failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%llu bicliques in %.1fms; %zu taste groups (>=3x3)\n",
              static_cast<unsigned long long>(run.stats.maximal),
              run.seconds * 1e3, groups.size());
  if (groups.empty()) return 1;

  // Index groups by user.
  std::map<mbe::VertexId, std::vector<size_t>> by_user;
  for (size_t g = 0; g < groups.size(); ++g) {
    for (mbe::VertexId u : groups[g].users) by_user[u].push_back(g);
  }

  // Recommend for the user belonging to the most groups.
  mbe::VertexId target = by_user.begin()->first;
  for (const auto& [user, gs] : by_user) {
    if (gs.size() > by_user[target].size()) target = user;
  }
  auto liked = graph.LeftNeighbors(target);
  std::set<mbe::VertexId> already(liked.begin(), liked.end());

  // Score unseen items by (a) the target's own groups and (b) groups of
  // the target's peers — users sharing a group with the target — weighted
  // by how often they co-occur. Peer expansion is linear in the peers'
  // group lists, not quadratic in the group count.
  std::map<mbe::VertexId, size_t> peers;  // user -> shared-group count
  std::map<mbe::VertexId, size_t> score;
  for (size_t g : by_user[target]) {
    for (mbe::VertexId item : groups[g].items) {
      if (!already.count(item)) score[item] += 2;  // direct evidence
    }
    for (mbe::VertexId u : groups[g].users) {
      if (u != target) ++peers[u];
    }
  }
  // Strongest peers only, to keep the walk cheap and the signal clean.
  std::vector<std::pair<size_t, mbe::VertexId>> top_peers;
  for (const auto& [u, shared] : peers) {
    if (shared >= 2) top_peers.emplace_back(shared, u);
  }
  std::sort(top_peers.rbegin(), top_peers.rend());
  if (top_peers.size() > 20) top_peers.resize(20);
  for (const auto& [shared, peer] : top_peers) {
    for (size_t g : by_user[peer]) {
      for (mbe::VertexId item : groups[g].items) {
        if (!already.count(item)) score[item] += 1;
      }
    }
  }

  std::printf("user %u: member of %zu taste groups, %zu liked items\n",
              target, by_user[target].size(), already.size());
  std::vector<std::pair<size_t, mbe::VertexId>> ranked;
  for (const auto& [item, s] : score) ranked.emplace_back(s, item);
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("top recommendations:\n");
  for (size_t i = 0; i < std::min<size_t>(5, ranked.size()); ++i) {
    std::printf("  item %u (score %zu)\n", ranked[i].second, ranked[i].first);
  }
  return 0;
}
