// Gene-expression biclustering: the bioinformatics application of MBE
// (Zhang et al., BMC Bioinformatics 2014). Rows are genes, columns are
// experimental conditions; an edge means "gene g is differentially
// expressed under condition c". Maximal bicliques are candidate
// *co-expression modules*: gene sets that respond together across a
// condition set.
//
// The example builds a block-structured gene x condition matrix (modules
// plus noise), enumerates modules with MBET, ranks them by area, and
// prints summary statistics a biologist would start from.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "api/mbe.h"
#include "gen/generators.h"

int main() {
  // 1200 genes, 80 conditions, 6 co-expression modules, noisy background.
  mbe::BipartiteGraph graph = mbe::gen::BlockCommunity(
      /*num_left=*/1200, /*num_right=*/80, /*blocks=*/6,
      /*p_in=*/0.55, /*p_out=*/0.02, /*seed=*/7);
  std::printf("expression graph: %s\n", graph.Summary().c_str());

  mbe::CollectSink sink;
  mbe::Options options;
  mbe::RunResult run;
  if (mbe::util::Status status = mbe::Enumerate(graph, options, &sink, &run);
      !status.ok()) {
    std::printf("enumeration failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::vector<mbe::Biclique> modules = sink.TakeSorted();

  // Keep modules with at least 4 genes over at least 4 conditions and rank
  // by the number of (gene, condition) cells they explain.
  std::erase_if(modules, [](const mbe::Biclique& b) {
    return b.left.size() < 4 || b.right.size() < 4;
  });
  std::sort(modules.begin(), modules.end(),
            [](const mbe::Biclique& a, const mbe::Biclique& b) {
              return a.num_edges() > b.num_edges();
            });

  std::printf("%llu maximal bicliques in %.1fms; %zu candidate modules "
              "(>=4x4)\n",
              static_cast<unsigned long long>(run.stats.maximal),
              run.seconds * 1e3, modules.size());
  for (size_t i = 0; i < std::min<size_t>(5, modules.size()); ++i) {
    std::printf("  module %zu: %zu genes x %zu conditions (%zu cells)\n",
                i + 1, modules[i].left.size(), modules[i].right.size(),
                modules[i].num_edges());
  }
  return modules.empty() ? 1 : 0;
}
