// Quickstart: build a small bipartite graph, enumerate its maximal
// bicliques with the default (MBET) configuration, and print them.
//
//   $ ./quickstart
//
// Optionally pass a 0-based edge-list file:
//
//   $ ./quickstart my_graph.txt

#include <cstdio>

#include "api/mbe.h"
#include "graph/graph_io.h"

int main(int argc, char** argv) {
  mbe::BipartiteGraph graph;
  if (argc > 1) {
    auto loaded = mbe::LoadEdgeList(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
  } else {
    // The running-example graph of the MBE literature: 5 users x 4 items.
    graph = mbe::BipartiteGraph::FromEdges(
        5, 4,
        {{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}, {1, 3}, {2, 1},
         {3, 1}, {3, 2}, {3, 3}, {4, 3}});
  }
  std::printf("graph: %s\n", graph.Summary().c_str());

  mbe::CollectSink sink;
  mbe::Options options;  // defaults: MBET, degree-ascending order
  options.control.deadline_seconds = 30;  // bound the run; exponential output
  mbe::RunResult run;
  if (mbe::util::Status status = mbe::Enumerate(graph, options, &sink, &run);
      !status.ok()) {
    std::fprintf(stderr, "enumeration rejected: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  if (!run.complete()) {
    std::printf("stopped early (%s) — results below are a valid prefix\n",
                mbe::TerminationName(run.termination));
  }

  const auto results = sink.TakeSorted();
  std::printf("found %zu maximal bicliques in %.3fms:\n", results.size(),
              run.seconds * 1e3);
  for (const mbe::Biclique& b : results) {
    std::printf("  %s\n", mbe::ToString(b).c_str());
  }
  std::printf("enumeration nodes: %llu, non-maximal rejected: %llu\n",
              static_cast<unsigned long long>(run.stats.nodes_expanded),
              static_cast<unsigned long long>(run.stats.non_maximal));
  return 0;
}
