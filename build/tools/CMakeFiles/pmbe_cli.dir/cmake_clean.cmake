file(REMOVE_RECURSE
  "CMakeFiles/pmbe_cli.dir/pmbe_cli.cc.o"
  "CMakeFiles/pmbe_cli.dir/pmbe_cli.cc.o.d"
  "pmbe"
  "pmbe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbe_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
