# Empty dependencies file for pmbe_cli.
# This may be replaced when dependencies are built.
