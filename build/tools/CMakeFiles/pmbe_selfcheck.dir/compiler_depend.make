# Empty compiler generated dependencies file for pmbe_selfcheck.
# This may be replaced when dependencies are built.
