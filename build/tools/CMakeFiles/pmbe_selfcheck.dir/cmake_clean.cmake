file(REMOVE_RECURSE
  "CMakeFiles/pmbe_selfcheck.dir/pmbe_selfcheck.cc.o"
  "CMakeFiles/pmbe_selfcheck.dir/pmbe_selfcheck.cc.o.d"
  "pmbe_selfcheck"
  "pmbe_selfcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbe_selfcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
