# Empty dependencies file for pmbe_baselines.
# This may be replaced when dependencies are built.
