file(REMOVE_RECURSE
  "libpmbe_baselines.a"
)
