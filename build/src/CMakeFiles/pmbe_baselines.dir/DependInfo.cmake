
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/mbea.cc" "src/CMakeFiles/pmbe_baselines.dir/baselines/mbea.cc.o" "gcc" "src/CMakeFiles/pmbe_baselines.dir/baselines/mbea.cc.o.d"
  "/root/repo/src/baselines/mine_lmbc.cc" "src/CMakeFiles/pmbe_baselines.dir/baselines/mine_lmbc.cc.o" "gcc" "src/CMakeFiles/pmbe_baselines.dir/baselines/mine_lmbc.cc.o.d"
  "/root/repo/src/baselines/oombea_lite.cc" "src/CMakeFiles/pmbe_baselines.dir/baselines/oombea_lite.cc.o" "gcc" "src/CMakeFiles/pmbe_baselines.dir/baselines/oombea_lite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pmbe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmbe_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmbe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
