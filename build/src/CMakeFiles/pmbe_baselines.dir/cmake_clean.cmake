file(REMOVE_RECURSE
  "CMakeFiles/pmbe_baselines.dir/baselines/mbea.cc.o"
  "CMakeFiles/pmbe_baselines.dir/baselines/mbea.cc.o.d"
  "CMakeFiles/pmbe_baselines.dir/baselines/mine_lmbc.cc.o"
  "CMakeFiles/pmbe_baselines.dir/baselines/mine_lmbc.cc.o.d"
  "CMakeFiles/pmbe_baselines.dir/baselines/oombea_lite.cc.o"
  "CMakeFiles/pmbe_baselines.dir/baselines/oombea_lite.cc.o.d"
  "libpmbe_baselines.a"
  "libpmbe_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbe_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
