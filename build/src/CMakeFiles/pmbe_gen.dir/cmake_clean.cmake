file(REMOVE_RECURSE
  "CMakeFiles/pmbe_gen.dir/gen/generators.cc.o"
  "CMakeFiles/pmbe_gen.dir/gen/generators.cc.o.d"
  "CMakeFiles/pmbe_gen.dir/gen/registry.cc.o"
  "CMakeFiles/pmbe_gen.dir/gen/registry.cc.o.d"
  "libpmbe_gen.a"
  "libpmbe_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbe_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
