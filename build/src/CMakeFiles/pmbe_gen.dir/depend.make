# Empty dependencies file for pmbe_gen.
# This may be replaced when dependencies are built.
