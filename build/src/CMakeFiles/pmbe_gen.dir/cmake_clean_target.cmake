file(REMOVE_RECURSE
  "libpmbe_gen.a"
)
