file(REMOVE_RECURSE
  "CMakeFiles/pmbe_graph.dir/graph/bipartite_graph.cc.o"
  "CMakeFiles/pmbe_graph.dir/graph/bipartite_graph.cc.o.d"
  "CMakeFiles/pmbe_graph.dir/graph/graph_io.cc.o"
  "CMakeFiles/pmbe_graph.dir/graph/graph_io.cc.o.d"
  "CMakeFiles/pmbe_graph.dir/graph/ordering.cc.o"
  "CMakeFiles/pmbe_graph.dir/graph/ordering.cc.o.d"
  "CMakeFiles/pmbe_graph.dir/graph/reduction.cc.o"
  "CMakeFiles/pmbe_graph.dir/graph/reduction.cc.o.d"
  "CMakeFiles/pmbe_graph.dir/graph/two_hop.cc.o"
  "CMakeFiles/pmbe_graph.dir/graph/two_hop.cc.o.d"
  "libpmbe_graph.a"
  "libpmbe_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbe_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
