# Empty dependencies file for pmbe_graph.
# This may be replaced when dependencies are built.
