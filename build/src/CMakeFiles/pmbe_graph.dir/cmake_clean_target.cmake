file(REMOVE_RECURSE
  "libpmbe_graph.a"
)
