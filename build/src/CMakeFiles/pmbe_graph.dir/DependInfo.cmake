
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bipartite_graph.cc" "src/CMakeFiles/pmbe_graph.dir/graph/bipartite_graph.cc.o" "gcc" "src/CMakeFiles/pmbe_graph.dir/graph/bipartite_graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/pmbe_graph.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/pmbe_graph.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/ordering.cc" "src/CMakeFiles/pmbe_graph.dir/graph/ordering.cc.o" "gcc" "src/CMakeFiles/pmbe_graph.dir/graph/ordering.cc.o.d"
  "/root/repo/src/graph/reduction.cc" "src/CMakeFiles/pmbe_graph.dir/graph/reduction.cc.o" "gcc" "src/CMakeFiles/pmbe_graph.dir/graph/reduction.cc.o.d"
  "/root/repo/src/graph/two_hop.cc" "src/CMakeFiles/pmbe_graph.dir/graph/two_hop.cc.o" "gcc" "src/CMakeFiles/pmbe_graph.dir/graph/two_hop.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pmbe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
