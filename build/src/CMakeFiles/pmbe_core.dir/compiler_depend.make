# Empty compiler generated dependencies file for pmbe_core.
# This may be replaced when dependencies are built.
