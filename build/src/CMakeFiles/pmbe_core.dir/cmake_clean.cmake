file(REMOVE_RECURSE
  "CMakeFiles/pmbe_core.dir/core/mbet.cc.o"
  "CMakeFiles/pmbe_core.dir/core/mbet.cc.o.d"
  "CMakeFiles/pmbe_core.dir/core/neighborhood_trie.cc.o"
  "CMakeFiles/pmbe_core.dir/core/neighborhood_trie.cc.o.d"
  "CMakeFiles/pmbe_core.dir/core/set_ops.cc.o"
  "CMakeFiles/pmbe_core.dir/core/set_ops.cc.o.d"
  "CMakeFiles/pmbe_core.dir/core/sink.cc.o"
  "CMakeFiles/pmbe_core.dir/core/sink.cc.o.d"
  "CMakeFiles/pmbe_core.dir/core/subtree.cc.o"
  "CMakeFiles/pmbe_core.dir/core/subtree.cc.o.d"
  "CMakeFiles/pmbe_core.dir/core/verify.cc.o"
  "CMakeFiles/pmbe_core.dir/core/verify.cc.o.d"
  "libpmbe_core.a"
  "libpmbe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
