
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/mbet.cc" "src/CMakeFiles/pmbe_core.dir/core/mbet.cc.o" "gcc" "src/CMakeFiles/pmbe_core.dir/core/mbet.cc.o.d"
  "/root/repo/src/core/neighborhood_trie.cc" "src/CMakeFiles/pmbe_core.dir/core/neighborhood_trie.cc.o" "gcc" "src/CMakeFiles/pmbe_core.dir/core/neighborhood_trie.cc.o.d"
  "/root/repo/src/core/set_ops.cc" "src/CMakeFiles/pmbe_core.dir/core/set_ops.cc.o" "gcc" "src/CMakeFiles/pmbe_core.dir/core/set_ops.cc.o.d"
  "/root/repo/src/core/sink.cc" "src/CMakeFiles/pmbe_core.dir/core/sink.cc.o" "gcc" "src/CMakeFiles/pmbe_core.dir/core/sink.cc.o.d"
  "/root/repo/src/core/subtree.cc" "src/CMakeFiles/pmbe_core.dir/core/subtree.cc.o" "gcc" "src/CMakeFiles/pmbe_core.dir/core/subtree.cc.o.d"
  "/root/repo/src/core/verify.cc" "src/CMakeFiles/pmbe_core.dir/core/verify.cc.o" "gcc" "src/CMakeFiles/pmbe_core.dir/core/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pmbe_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmbe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
