file(REMOVE_RECURSE
  "libpmbe_core.a"
)
