file(REMOVE_RECURSE
  "CMakeFiles/pmbe_util.dir/util/flags.cc.o"
  "CMakeFiles/pmbe_util.dir/util/flags.cc.o.d"
  "CMakeFiles/pmbe_util.dir/util/memory.cc.o"
  "CMakeFiles/pmbe_util.dir/util/memory.cc.o.d"
  "CMakeFiles/pmbe_util.dir/util/stats.cc.o"
  "CMakeFiles/pmbe_util.dir/util/stats.cc.o.d"
  "CMakeFiles/pmbe_util.dir/util/status.cc.o"
  "CMakeFiles/pmbe_util.dir/util/status.cc.o.d"
  "libpmbe_util.a"
  "libpmbe_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbe_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
