# Empty compiler generated dependencies file for pmbe_util.
# This may be replaced when dependencies are built.
