file(REMOVE_RECURSE
  "libpmbe_util.a"
)
