
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/parallel_mbe.cc" "src/CMakeFiles/pmbe_parallel.dir/parallel/parallel_mbe.cc.o" "gcc" "src/CMakeFiles/pmbe_parallel.dir/parallel/parallel_mbe.cc.o.d"
  "/root/repo/src/parallel/thread_pool.cc" "src/CMakeFiles/pmbe_parallel.dir/parallel/thread_pool.cc.o" "gcc" "src/CMakeFiles/pmbe_parallel.dir/parallel/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pmbe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmbe_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmbe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
