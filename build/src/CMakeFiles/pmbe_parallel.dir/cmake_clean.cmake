file(REMOVE_RECURSE
  "CMakeFiles/pmbe_parallel.dir/parallel/parallel_mbe.cc.o"
  "CMakeFiles/pmbe_parallel.dir/parallel/parallel_mbe.cc.o.d"
  "CMakeFiles/pmbe_parallel.dir/parallel/thread_pool.cc.o"
  "CMakeFiles/pmbe_parallel.dir/parallel/thread_pool.cc.o.d"
  "libpmbe_parallel.a"
  "libpmbe_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbe_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
