# Empty compiler generated dependencies file for pmbe_parallel.
# This may be replaced when dependencies are built.
