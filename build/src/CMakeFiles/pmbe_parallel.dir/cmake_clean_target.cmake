file(REMOVE_RECURSE
  "libpmbe_parallel.a"
)
