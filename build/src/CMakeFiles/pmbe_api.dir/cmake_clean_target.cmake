file(REMOVE_RECURSE
  "libpmbe_api.a"
)
