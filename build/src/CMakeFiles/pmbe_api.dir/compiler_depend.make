# Empty compiler generated dependencies file for pmbe_api.
# This may be replaced when dependencies are built.
