file(REMOVE_RECURSE
  "CMakeFiles/pmbe_api.dir/api/mbe.cc.o"
  "CMakeFiles/pmbe_api.dir/api/mbe.cc.o.d"
  "libpmbe_api.a"
  "libpmbe_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbe_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
