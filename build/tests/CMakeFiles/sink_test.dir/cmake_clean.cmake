file(REMOVE_RECURSE
  "CMakeFiles/sink_test.dir/sink_test.cc.o"
  "CMakeFiles/sink_test.dir/sink_test.cc.o.d"
  "sink_test"
  "sink_test.pdb"
  "sink_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
