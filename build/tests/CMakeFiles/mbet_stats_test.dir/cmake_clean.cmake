file(REMOVE_RECURSE
  "CMakeFiles/mbet_stats_test.dir/mbet_stats_test.cc.o"
  "CMakeFiles/mbet_stats_test.dir/mbet_stats_test.cc.o.d"
  "mbet_stats_test"
  "mbet_stats_test.pdb"
  "mbet_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbet_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
