# Empty dependencies file for mbet_stats_test.
# This may be replaced when dependencies are built.
