file(REMOVE_RECURSE
  "CMakeFiles/subtree_test.dir/subtree_test.cc.o"
  "CMakeFiles/subtree_test.dir/subtree_test.cc.o.d"
  "subtree_test"
  "subtree_test.pdb"
  "subtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
