# Empty dependencies file for set_ops_test.
# This may be replaced when dependencies are built.
