# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/correctness_test[1]_include.cmake")
include("/root/repo/build/tests/filters_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/graph_io_test[1]_include.cmake")
include("/root/repo/build/tests/set_ops_test[1]_include.cmake")
include("/root/repo/build/tests/trie_test[1]_include.cmake")
include("/root/repo/build/tests/sink_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/ordering_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/subtree_test[1]_include.cmake")
include("/root/repo/build/tests/mbet_stats_test[1]_include.cmake")
include("/root/repo/build/tests/api_test[1]_include.cmake")
include("/root/repo/build/tests/reduction_test[1]_include.cmake")
include("/root/repo/build/tests/known_families_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
