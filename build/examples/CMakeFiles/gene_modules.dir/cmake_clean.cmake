file(REMOVE_RECURSE
  "CMakeFiles/gene_modules.dir/gene_modules.cc.o"
  "CMakeFiles/gene_modules.dir/gene_modules.cc.o.d"
  "gene_modules"
  "gene_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gene_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
