# Empty dependencies file for gene_modules.
# This may be replaced when dependencies are built.
