# Empty dependencies file for recommender_groups.
# This may be replaced when dependencies are built.
