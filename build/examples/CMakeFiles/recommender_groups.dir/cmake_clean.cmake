file(REMOVE_RECURSE
  "CMakeFiles/recommender_groups.dir/recommender_groups.cc.o"
  "CMakeFiles/recommender_groups.dir/recommender_groups.cc.o.d"
  "recommender_groups"
  "recommender_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommender_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
