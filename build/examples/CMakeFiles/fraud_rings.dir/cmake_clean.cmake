file(REMOVE_RECURSE
  "CMakeFiles/fraud_rings.dir/fraud_rings.cc.o"
  "CMakeFiles/fraud_rings.dir/fraud_rings.cc.o.d"
  "fraud_rings"
  "fraud_rings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fraud_rings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
