# Empty compiler generated dependencies file for bench_m10_micro.
# This may be replaced when dependencies are built.
