file(REMOVE_RECURSE
  "../bench/bench_m10_micro"
  "../bench/bench_m10_micro.pdb"
  "CMakeFiles/bench_m10_micro.dir/bench_m10_micro.cc.o"
  "CMakeFiles/bench_m10_micro.dir/bench_m10_micro.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m10_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
