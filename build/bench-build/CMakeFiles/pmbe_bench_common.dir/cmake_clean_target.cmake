file(REMOVE_RECURSE
  "libpmbe_bench_common.a"
)
