# Empty dependencies file for pmbe_bench_common.
# This may be replaced when dependencies are built.
