file(REMOVE_RECURSE
  "CMakeFiles/pmbe_bench_common.dir/harness.cc.o"
  "CMakeFiles/pmbe_bench_common.dir/harness.cc.o.d"
  "libpmbe_bench_common.a"
  "libpmbe_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbe_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
