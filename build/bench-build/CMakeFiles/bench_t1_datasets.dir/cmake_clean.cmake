file(REMOVE_RECURSE
  "../bench/bench_t1_datasets"
  "../bench/bench_t1_datasets.pdb"
  "CMakeFiles/bench_t1_datasets.dir/bench_t1_datasets.cc.o"
  "CMakeFiles/bench_t1_datasets.dir/bench_t1_datasets.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
