# Empty dependencies file for bench_t2_overall.
# This may be replaced when dependencies are built.
