file(REMOVE_RECURSE
  "../bench/bench_f7_parallel"
  "../bench/bench_f7_parallel.pdb"
  "CMakeFiles/bench_f7_parallel.dir/bench_f7_parallel.cc.o"
  "CMakeFiles/bench_f7_parallel.dir/bench_f7_parallel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
