# Empty dependencies file for bench_f7_parallel.
# This may be replaced when dependencies are built.
