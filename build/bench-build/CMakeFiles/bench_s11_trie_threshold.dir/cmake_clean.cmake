file(REMOVE_RECURSE
  "../bench/bench_s11_trie_threshold"
  "../bench/bench_s11_trie_threshold.pdb"
  "CMakeFiles/bench_s11_trie_threshold.dir/bench_s11_trie_threshold.cc.o"
  "CMakeFiles/bench_s11_trie_threshold.dir/bench_s11_trie_threshold.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s11_trie_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
