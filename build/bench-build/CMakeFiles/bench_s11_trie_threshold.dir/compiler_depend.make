# Empty compiler generated dependencies file for bench_s11_trie_threshold.
# This may be replaced when dependencies are built.
