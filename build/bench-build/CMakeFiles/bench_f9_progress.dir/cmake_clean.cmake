file(REMOVE_RECURSE
  "../bench/bench_f9_progress"
  "../bench/bench_f9_progress.pdb"
  "CMakeFiles/bench_f9_progress.dir/bench_f9_progress.cc.o"
  "CMakeFiles/bench_f9_progress.dir/bench_f9_progress.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
