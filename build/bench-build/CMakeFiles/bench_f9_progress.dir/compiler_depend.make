# Empty compiler generated dependencies file for bench_f9_progress.
# This may be replaced when dependencies are built.
