# Empty dependencies file for bench_t3_pruning.
# This may be replaced when dependencies are built.
