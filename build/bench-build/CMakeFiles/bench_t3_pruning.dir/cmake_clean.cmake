file(REMOVE_RECURSE
  "../bench/bench_t3_pruning"
  "../bench/bench_t3_pruning.pdb"
  "CMakeFiles/bench_t3_pruning.dir/bench_t3_pruning.cc.o"
  "CMakeFiles/bench_t3_pruning.dir/bench_t3_pruning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
