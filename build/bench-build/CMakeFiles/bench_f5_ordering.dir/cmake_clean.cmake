file(REMOVE_RECURSE
  "../bench/bench_f5_ordering"
  "../bench/bench_f5_ordering.pdb"
  "CMakeFiles/bench_f5_ordering.dir/bench_f5_ordering.cc.o"
  "CMakeFiles/bench_f5_ordering.dir/bench_f5_ordering.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
