# Empty dependencies file for bench_f5_ordering.
# This may be replaced when dependencies are built.
