file(REMOVE_RECURSE
  "../bench/bench_f4_ablation"
  "../bench/bench_f4_ablation.pdb"
  "CMakeFiles/bench_f4_ablation.dir/bench_f4_ablation.cc.o"
  "CMakeFiles/bench_f4_ablation.dir/bench_f4_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
