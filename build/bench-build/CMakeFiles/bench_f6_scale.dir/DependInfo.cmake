
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_f6_scale.cc" "bench-build/CMakeFiles/bench_f6_scale.dir/bench_f6_scale.cc.o" "gcc" "bench-build/CMakeFiles/bench_f6_scale.dir/bench_f6_scale.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/pmbe_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmbe_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmbe_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmbe_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmbe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmbe_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmbe_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pmbe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
