file(REMOVE_RECURSE
  "../bench/bench_f6_scale"
  "../bench/bench_f6_scale.pdb"
  "CMakeFiles/bench_f6_scale.dir/bench_f6_scale.cc.o"
  "CMakeFiles/bench_f6_scale.dir/bench_f6_scale.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
