# Empty dependencies file for bench_f6_scale.
# This may be replaced when dependencies are built.
