file(REMOVE_RECURSE
  "../bench/bench_t8_memory"
  "../bench/bench_t8_memory.pdb"
  "CMakeFiles/bench_t8_memory.dir/bench_t8_memory.cc.o"
  "CMakeFiles/bench_t8_memory.dir/bench_t8_memory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t8_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
