// fuzz_wire — fuzz harness for the pmbe_serve wire protocol codec.
//
// Feeds arbitrary bytes to the frame decoder (serve/wire.h). The codec's
// contract under hostile input: DecodeMessage and PeekFrame return a typed
// Status — never crash, never abort, never allocate proportionally to a
// corrupt length claim — and any frame they do accept must round-trip:
// EncodeMessage(DecodeMessage(frame)) reproduces the input byte for byte
// (canonical encoding, the property the digest-identity tests lean on).
//
// Built under -DPMBE_BUILD_FUZZERS=ON. With `-fsanitize=fuzzer` (clang)
// this is a libFuzzer target:
//
//   ./fuzz_wire corpus/ -max_len=4096
//
// Otherwise (gcc) it falls back to a standalone driver mirroring
// fuzz_graph_io: replay file arguments, then run a deterministic
// seed-corpus + random-mutation loop, so CI always has this leg.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <vector>

#include "serve/wire.h"

namespace {

void CheckRoundTrip(std::span<const uint8_t> input,
                    const mbe::serve::Message& message) {
  std::vector<uint8_t> reencoded;
  if (!mbe::serve::EncodeMessage(message, &reencoded).ok()) {
    std::fprintf(stderr, "decoded frame failed to re-encode\n");
    __builtin_trap();
  }
  if (reencoded.size() != input.size() ||
      std::memcmp(reencoded.data(), input.data(), input.size()) != 0) {
    std::fprintf(stderr, "non-canonical frame survived decoding\n");
    __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::span<const uint8_t> input(data, size);
  // The stream framer must classify any prefix without crashing.
  size_t frame_size = 0;
  bool complete = false;
  (void)mbe::serve::PeekFrame(input, &frame_size, &complete);
  if (auto decoded = mbe::serve::DecodeMessage(input); decoded.ok()) {
    CheckRoundTrip(input, decoded.value());
  }
  return 0;
}

#if defined(PMBE_FUZZ_STANDALONE)

#include <fstream>
#include <sstream>
#include <string>

#include "util/random.h"

namespace {

/// Seed corpus: one valid frame per message type (mutations then explore
/// every decoder from the accepting boundary), plus framing edge cases.
std::vector<std::vector<uint8_t>> BuildSeeds() {
  using namespace mbe::serve;
  std::vector<Message> messages;
  messages.push_back(HelloMsg{});
  messages.push_back(HelloOkMsg{kProtocolVersion, kMaxPayloadBytes, 4});
  LoadGraphMsg load;
  load.name = "g";
  load.num_left = 3;
  load.num_right = 2;
  load.edge_left = {0, 1, 2};
  load.edge_right = {0, 1, 1};
  messages.push_back(load);
  LoadOkMsg load_ok;
  load_ok.name = "g";
  load_ok.num_left = 3;
  load_ok.num_right = 2;
  load_ok.num_edges = 3;
  load_ok.build_seconds = 0.25;
  messages.push_back(load_ok);
  StartSessionMsg start;
  start.graph = "g";
  start.min_left = 2;
  start.deadline_seconds = 1.5;
  messages.push_back(start);
  messages.push_back(SessionStartedMsg{7});
  messages.push_back(CancelSessionMsg{7});
  ResultBatchMsg batch;
  batch.session_id = 7;
  const mbe::VertexId l[] = {0, 2};
  const mbe::VertexId r[] = {1};
  batch.batch.Append(l, r);
  messages.push_back(batch);
  SessionDoneMsg done;
  done.session_id = 7;
  done.termination = 1;
  done.results_emitted = 42;
  done.seconds = 0.125;
  done.message = "cancelled";
  messages.push_back(done);
  messages.push_back(RejectedMsg{2, "draining"});
  messages.push_back(ErrorMsg{"bad frame"});
  // Protocol v2: heartbeat, health, and reload frames.
  messages.push_back(PingMsg{0x1234});
  messages.push_back(PongMsg{0x1234});
  messages.push_back(InfoRequestMsg{});
  ServerInfoMsg info;
  info.pool_threads = 8;
  info.active_sessions = 2;
  info.graphs = 1;
  info.sessions_started = 10;
  info.sessions_completed = 9;
  info.reloads = 1;
  info.heartbeats = 3;
  info.connections_accepted = 4;
  messages.push_back(info);
  messages.push_back(ReloadGraphMsg{load});

  std::vector<std::vector<uint8_t>> seeds;
  for (const Message& message : messages) {
    std::vector<uint8_t> frame;
    if (!EncodeMessage(message, &frame).ok()) {
      std::fprintf(stderr, "seed frame failed to encode\n");
      __builtin_trap();
    }
    seeds.push_back(std::move(frame));
  }
  seeds.push_back({});                          // empty input
  seeds.push_back({0x00});                      // truncated header
  seeds.push_back({0xff, 0xff, 0xff, 0xff, 1});  // oversized length claim
  return seeds;
}

int ReplayFile(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;
    if (int rc = ReplayFile(argv[i]); rc != 0) return rc;
    ++replayed;
  }
  if (replayed > 0) {
    std::printf("replayed %d corpus inputs, no crashes\n", replayed);
  }
  const std::vector<std::vector<uint8_t>> seeds = BuildSeeds();
  // Every pristine seed must decode and round-trip (the trap in
  // CheckRoundTrip enforces canonical encoding on the happy path too).
  for (const auto& seed : seeds) {
    LLVMFuzzerTestOneInput(seed.data(), seed.size());
  }
  constexpr int kIterations = 50000;
  mbe::util::Rng rng(0x9e3779b97f4a7c15ULL);
  for (int iter = 0; iter < kIterations; ++iter) {
    std::vector<uint8_t> bytes = seeds[rng.Below(seeds.size())];
    const uint64_t mutations = 1 + rng.Below(8);
    for (uint64_t m = 0; m < mutations; ++m) {
      switch (rng.Below(4)) {
        case 0:  // insert
          bytes.insert(bytes.begin() + rng.Below(bytes.size() + 1),
                       static_cast<uint8_t>(rng.Below(256)));
          break;
        case 1:  // overwrite
          if (!bytes.empty()) {
            bytes[rng.Below(bytes.size())] =
                static_cast<uint8_t>(rng.Below(256));
          }
          break;
        case 2:  // truncate
          if (!bytes.empty()) {
            bytes.resize(rng.Below(bytes.size()));
          }
          break;
        default:  // delete one byte
          if (!bytes.empty()) {
            bytes.erase(bytes.begin() + rng.Below(bytes.size()));
          }
          break;
      }
    }
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  }
  std::printf("fuzzed %d mutated frames over %zu seeds, no crashes\n",
              kIterations, seeds.size());
  return 0;
}

#endif  // PMBE_FUZZ_STANDALONE
