// pmbe — command-line maximal biclique enumeration.
//
// Loads a bipartite graph from a file (plain 0-based edge list or
// KONECT-style 1-based), or generates a synthetic stand-in from the
// registry, then enumerates maximal bicliques with the selected algorithm
// and reports counts, timing, and counters. Optionally writes all
// bicliques to a file (one `L | R` line each).
//
// Examples:
//   pmbe --input graph.txt
//   pmbe --dataset BX --algorithm imbea --timeout_s 30
//   pmbe --input out.konect --format konect --threads 8 --output result.txt
//   pmbe --dataset GH --max-biclique --min-left 3 --min-right 3
//   pmbe --dataset TVT --timeout_s 1 --progress_every_s 0.2
//
// Runs are interruptible: Ctrl-C requests cooperative cancellation (the
// bicliques emitted so far are kept), and --timeout_s / --max_results /
// --max_nodes bound the run, reporting how it terminated.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "api/mbe.h"
#include "gen/registry.h"
#include "graph/graph_io.h"
#include "snapshot/checkpoint.h"
#include "snapshot/frontier.h"
#include "util/fault.h"
#include "util/flags.h"
#include "util/simd.h"
#include "util/stats.h"
#include "util/timer.h"

namespace {

// Set by the SIGINT handler; polled cooperatively by the enumerators.
std::atomic<bool> g_interrupted{false};

void HandleSigint(int) { g_interrupted.store(true); }

// Set by the SIGTERM handler of checkpointing runs: stop with a final
// snapshot and Termination::kCheckpointed (the durable analog of Ctrl-C).
std::atomic<bool> g_checkpoint_requested{false};

void HandleSigterm(int) { g_checkpoint_requested.store(true); }

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) parts.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

// --merge_checkpoints mode: fold per-process shard snapshots into one and
// report the merged frontier digest (no graph needed). Returns the process
// exit code.
int MergeCheckpoints(const std::string& list, const std::string& out_path) {
  using namespace mbe;
  std::vector<snapshot::FrontierSnapshot> shards;
  for (const std::string& path : SplitCommas(list)) {
    util::StatusOr<snapshot::FrontierSnapshot> snap =
        snapshot::ReadSnapshotFile(path);
    if (!snap.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                   snap.status().ToString().c_str());
      return 1;
    }
    shards.push_back(std::move(snap).value());
  }
  util::StatusOr<snapshot::FrontierSnapshot> merged =
      snapshot::MergeSnapshots(shards);
  if (!merged.ok()) {
    std::fprintf(stderr, "error: %s\n", merged.status().ToString().c_str());
    return 1;
  }
  if (!out_path.empty()) {
    if (util::Status written =
            snapshot::WriteSnapshotFile(out_path, merged.value());
        !written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
  }
  const snapshot::TaskDigest digest = merged.value().MergedDigest();
  std::printf("merged %zu shards: %llu tasks completed, %llu bicliques\n",
              shards.size(),
              static_cast<unsigned long long>(merged.value().completed.size()),
              static_cast<unsigned long long>(digest.count));
  std::printf("frontier digest: 0x%016llx\n",
              static_cast<unsigned long long>(digest.Value()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mbe;
  util::FlagParser flags;
  flags.AddString("input", "", "path to an edge-list file");
  flags.AddString("format", "edgelist", "input format: edgelist | konect");
  flags.AddString("dataset", "",
                  "generate a registry stand-in instead of loading a file");
  flags.AddDouble("scale", 1.0, "scale for --dataset");
  flags.AddString("algorithm", "mbet",
                  "mbet | mbetm | minelmbc | mbea | imbea | oombea | bbk");
  flags.AddString("order", "deg-asc",
                  "none | deg-asc | deg-desc | twohop | unilateral | random");
  flags.AddInt("threads", 1, "worker threads (mbet/mbetm/imbea/oombea/bbk)");
  flags.AddString("scheduling", "stealing",
                  "parallel scheduling: dynamic | static | stealing");
  flags.AddInt("max_split", 8,
               "max shards per heavy subtree under stealing (1 = off)");
  flags.AddDouble("timeout_s", 0,
                  "wall-clock deadline in seconds (0 = none)");
  flags.AddInt("max_results", 0, "stop after this many bicliques (0 = none)");
  flags.AddInt("max_nodes", 0,
               "stop after ~this many enumeration nodes (0 = none)");
  flags.AddDouble("progress_every_s", 0,
                  "print progress to stderr every this many seconds (0 = off)");
  flags.AddInt("max_memory_mb", 0,
               "hard cap on accounted enumeration memory in MiB (0 = none); "
               "past 75% the run degrades gracefully, past the cap it stops "
               "with a valid result prefix");
  flags.AddDouble("watchdog_s", 0,
                  "parallel worker stall bound in seconds (0 = off): a worker "
                  "silent this long stops the run instead of hanging it");
  flags.AddString("checkpoint_path", "",
                  "persist the task frontier to this file periodically and at "
                  "drain (durable runs; requires --scheduling stealing). "
                  "SIGTERM then stops with a final snapshot");
  flags.AddDouble("checkpoint_every_s", 30,
                  "seconds between periodic snapshots of a checkpointing run "
                  "(0 = only the final snapshot at drain)");
  flags.AddBool("resume", false,
                "resume from the snapshot at --checkpoint_path, re-running "
                "only tasks it records as incomplete");
  flags.AddString("process_shard", "",
                  "'i/N': enumerate only hash shard i of N of the seed space "
                  "(multi-process runs; combine with --merge_checkpoints)");
  flags.AddString("merge_checkpoints", "",
                  "comma-separated per-shard snapshot files: merge them, "
                  "print the combined frontier digest (optionally writing the "
                  "merged snapshot to --checkpoint_path), and exit");
  flags.AddString("fault", "",
                  "arm a fault schedule, e.g. 'arena.grow:3' or "
                  "'*:p=0.01:seed=7' (needs a -DPMBE_FAULT_INJECTION=ON "
                  "build; see docs/ROBUSTNESS.md)");
  flags.AddDouble("budget", 0, "deprecated alias of --timeout_s");
  flags.AddInt("limit", 0, "deprecated alias of --max_results");
  flags.AddInt("min-left", 1, "only bicliques with |L| >= this");
  flags.AddInt("min-right", 1, "only bicliques with |R| >= this");
  flags.AddDouble("bitmap_density", 0.10,
                  "density threshold for bitmap-set classification "
                  "(0 = always bitmap, > 1 = never)");
  flags.AddInt("batch_width", 16,
               "candidates classified per batched-frontier window in MBET "
               "(1 disables batching; max 64)");
  flags.AddBool("tune", false,
                "auto-tune bitmap_density / batch_width / max_split from "
                "the graph profile, overriding those flags "
                "(docs/TUNING.md); the decision prints under --stats");
  flags.AddBool("max-biclique", false,
                "find one maximum-edge biclique instead of enumerating");
  flags.AddString("output", "", "write bicliques to this file");
  flags.AddBool("stats", true, "print enumeration counters");
  flags.Parse(argc, argv);

  // --- Merge mode: no graph, no run ---------------------------------------
  if (!flags.GetString("merge_checkpoints").empty()) {
    return MergeCheckpoints(flags.GetString("merge_checkpoints"),
                            flags.GetString("checkpoint_path"));
  }

  // --- Load or generate the graph ---------------------------------------
  BipartiteGraph graph;
  if (!flags.GetString("dataset").empty()) {
    graph = gen::Materialize(gen::FindDataset(flags.GetString("dataset")),
                             flags.GetDouble("scale"));
  } else if (!flags.GetString("input").empty()) {
    auto loaded = flags.GetString("format") == "konect"
                      ? LoadKonect(flags.GetString("input"))
                      : LoadEdgeList(flags.GetString("input"));
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
  } else {
    std::fprintf(stderr, "error: pass --input or --dataset (see --help)\n");
    return 2;
  }
  std::printf("graph: %s\n", graph.Summary().c_str());

  Options options;
  if (util::Status parsed =
          ParseAlgorithm(flags.GetString("algorithm"), &options.algorithm);
      !parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.ToString().c_str());
    return 2;
  }
  options.order = ParseVertexOrder(flags.GetString("order"));
  options.threads = static_cast<unsigned>(flags.GetInt("threads"));
  if (util::Status parsed =
          ParseScheduling(flags.GetString("scheduling"), &options.scheduling);
      !parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.ToString().c_str());
    return 2;
  }
  options.max_split = static_cast<uint32_t>(flags.GetInt("max_split"));
  options.mbet.min_left = static_cast<uint32_t>(flags.GetInt("min-left"));
  options.mbet.min_right = static_cast<uint32_t>(flags.GetInt("min-right"));
  options.mbet.bitmap_density = flags.GetDouble("bitmap_density");
  options.mbet.batch_width =
      static_cast<uint32_t>(flags.GetInt("batch_width"));
  options.auto_tune = flags.GetBool("tune");

  // --- Run control --------------------------------------------------------
  // Negative values would be silently reinterpreted by the unsigned /
  // fallback plumbing below; reject them up front.
  if (flags.GetDouble("timeout_s") < 0 || flags.GetDouble("budget") < 0 ||
      flags.GetInt("max_results") < 0 || flags.GetInt("limit") < 0 ||
      flags.GetInt("max_nodes") < 0 ||
      flags.GetDouble("progress_every_s") < 0) {
    std::fprintf(stderr,
                 "error: INVALID_ARGUMENT: --timeout_s / --max_results / "
                 "--max_nodes / --progress_every_s must be >= 0\n");
    return 2;
  }
  std::signal(SIGINT, HandleSigint);
  options.control.cancel = &g_interrupted;
  options.control.deadline_seconds = flags.GetDouble("timeout_s") > 0
                                         ? flags.GetDouble("timeout_s")
                                         : flags.GetDouble("budget");
  options.control.max_results = static_cast<uint64_t>(
      flags.GetInt("max_results") > 0 ? flags.GetInt("max_results")
                                      : flags.GetInt("limit"));
  options.control.max_nodes_expanded =
      static_cast<uint64_t>(flags.GetInt("max_nodes"));
  if (flags.GetDouble("progress_every_s") > 0) {
    options.control.progress_every_s = flags.GetDouble("progress_every_s");
    options.control.progress = [](const RunProgress& p) {
      std::fprintf(stderr,
                   "[%7.2fs] %llu bicliques, %llu nodes expanded\n",
                   p.elapsed_seconds,
                   static_cast<unsigned long long>(p.results),
                   static_cast<unsigned long long>(p.stats.nodes_expanded));
    };
  }
  // --- Robustness: memory cap, watchdog, fault injection ------------------
  if (flags.GetInt("max_memory_mb") < 0 || flags.GetDouble("watchdog_s") < 0) {
    std::fprintf(stderr,
                 "error: INVALID_ARGUMENT: --max_memory_mb / --watchdog_s "
                 "must be >= 0\n");
    return 2;
  }
  options.max_memory_bytes =
      static_cast<uint64_t>(flags.GetInt("max_memory_mb")) * (1 << 20);
  options.watchdog_stall_seconds = flags.GetDouble("watchdog_s");
  // --- Durable checkpointing ----------------------------------------------
  if (flags.GetDouble("checkpoint_every_s") < 0) {
    std::fprintf(stderr,
                 "error: INVALID_ARGUMENT: --checkpoint_every_s must be "
                 ">= 0\n");
    return 2;
  }
  options.checkpoint.path = flags.GetString("checkpoint_path");
  options.checkpoint.every_s = flags.GetDouble("checkpoint_every_s");
  options.checkpoint.resume = flags.GetBool("resume");
  if (!flags.GetString("process_shard").empty()) {
    unsigned shard = 0, count = 0;
    if (std::sscanf(flags.GetString("process_shard").c_str(), "%u/%u", &shard,
                    &count) != 2) {
      std::fprintf(stderr,
                   "error: INVALID_ARGUMENT: --process_shard must be 'i/N' "
                   "(got '%s')\n",
                   flags.GetString("process_shard").c_str());
      return 2;
    }
    options.checkpoint.shard_index = shard;
    options.checkpoint.shard_count = count;
  }
  if (options.checkpoint.enabled()) {
    // SIGTERM = "stop durably": drain in-flight tasks, write a final
    // snapshot, and report Termination::kCheckpointed so a later --resume
    // run picks up exactly the incomplete remainder.
    std::signal(SIGTERM, HandleSigterm);
    options.checkpoint.checkpoint_stop = &g_checkpoint_requested;
  }
  if (!flags.GetString("fault").empty()) {
#if !defined(PMBE_FAULT_INJECTION)
    std::fprintf(stderr,
                 "error: --fault requires a -DPMBE_FAULT_INJECTION=ON build "
                 "(fault points are compiled out of this binary)\n");
    return 2;
#else
    if (util::Status armed =
            util::FaultRegistry::Global().ArmSpec(flags.GetString("fault"));
        !armed.ok()) {
      std::fprintf(stderr, "error: %s\n", armed.ToString().c_str());
      return 2;
    }
#endif
  }
  if (util::Status valid = options.Validate(); !valid.ok()) {
    std::fprintf(stderr, "error: %s\n", valid.ToString().c_str());
    return 2;
  }

  // --- Maximum-biclique mode ---------------------------------------------
  if (flags.GetBool("max-biclique")) {
    util::WallTimer timer;
    Biclique best;
    RunResult run;
    if (util::Status found = FindMaximumBiclique(graph, options, &best, &run);
        !found.ok()) {
      std::fprintf(stderr, "error: %s\n", found.ToString().c_str());
      return 2;
    }
    if (!run.complete()) {
      std::printf("search stopped early (%s); best incumbent so far:\n",
                  TerminationName(run.termination));
    }
    if (best.left.empty()) {
      std::printf("no biclique satisfies the constraints (%.3fs)\n",
                  timer.Seconds());
      return 0;
    }
    std::printf("maximum biclique%s: %zu x %zu = %zu edges (%.3fs)\n",
                run.complete() ? "" : " (lower bound)", best.left.size(),
                best.right.size(), best.num_edges(), timer.Seconds());
    std::printf("%s\n", ToString(best).c_str());
    return 0;
  }

  // --- Enumeration --------------------------------------------------------
  std::ofstream out;
  if (!flags.GetString("output").empty()) {
    out.open(flags.GetString("output"));
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   flags.GetString("output").c_str());
      return 1;
    }
  }

  CountSink counter;
  CallbackSink writer([&](std::span<const VertexId> l,
                          std::span<const VertexId> r) {
    counter.Emit(l, r);
    if (out.is_open()) {
      for (size_t i = 0; i < l.size(); ++i) out << (i ? " " : "") << l[i];
      out << " | ";
      for (size_t i = 0; i < r.size(); ++i) out << (i ? " " : "") << r[i];
      out << "\n";
    }
  });

  RunResult run;
  if (util::Status ran = Enumerate(graph, options, &writer, &run); !ran.ok()) {
    std::fprintf(stderr, "error: %s\n", ran.ToString().c_str());
    return 2;
  }

  const bool truncated = !run.complete();
  if (truncated) {
    std::printf("run stopped early: %s%s%s\n",
                TerminationName(run.termination),
                run.message.empty() ? "" : " — ", run.message.c_str());
  }
  std::printf("%s%llu maximal bicliques in %.3fs (preprocess %.3fs)\n",
              truncated ? ">= " : "",
              static_cast<unsigned long long>(counter.count()), run.seconds,
              run.preprocess_seconds);
  if (options.checkpoint.enabled()) {
    std::printf("frontier digest: 0x%016llx (%llu tasks completed, %llu "
                "pending)\n",
                static_cast<unsigned long long>(run.frontier_digest),
                static_cast<unsigned long long>(run.frontier_completed),
                static_cast<unsigned long long>(run.frontier_pending));
  }
  if (flags.GetBool("stats")) {
    const EnumStats& s = run.stats;
    std::printf("  nodes expanded:      %llu\n",
                static_cast<unsigned long long>(s.nodes_expanded));
    std::printf("  non-maximal pruned:  %llu\n",
                static_cast<unsigned long long>(s.non_maximal));
    std::printf("  candidates absorbed: %llu  dropped: %llu\n",
                static_cast<unsigned long long>(s.candidates_absorbed),
                static_cast<unsigned long long>(s.candidates_dropped));
    std::printf("  vertices aggregated: %llu  subtrees pruned: %llu\n",
                static_cast<unsigned long long>(s.vertices_aggregated),
                static_cast<unsigned long long>(s.subtrees_pruned));
    if (s.local_scan_size > 0) {
      std::printf("  trie probe ratio:    %.3f (%s of %s probes)\n",
                  static_cast<double>(s.trie_probes) /
                      static_cast<double>(s.local_scan_size),
                  util::HumanCount(static_cast<double>(s.trie_probes)).c_str(),
                  util::HumanCount(static_cast<double>(s.local_scan_size))
                      .c_str());
    }
    std::printf("  bitmap kernels:      %llu calls, %llu conversions\n",
                static_cast<unsigned long long>(s.bitmap_kernel_calls),
                static_cast<unsigned long long>(s.bitmap_conversions));
    std::printf("  kernel dispatch:     %s (intersect %llu, difference %llu, "
                "mask %llu, word %llu calls)\n",
                simd::DispatchLevelName(
                    static_cast<simd::DispatchLevel>(s.kernel_dispatch)),
                static_cast<unsigned long long>(s.simd_intersect_calls),
                static_cast<unsigned long long>(s.simd_difference_calls),
                static_cast<unsigned long long>(s.simd_mask_calls),
                static_cast<unsigned long long>(s.simd_word_calls));
    if (s.batch_kernel_calls > 0 || s.batch_candidates_classified > 0) {
      // batch_kernel_calls counts one trie walk per window but one kernel
      // call per (group, window) on the bitmap/scan paths, so it can
      // legitimately exceed the candidate count on group-heavy nodes.
      std::printf("  batched frontier:    %llu candidates classified, %llu "
                  "batch kernel calls (%llu via dispatch table)\n",
                  static_cast<unsigned long long>(
                      s.batch_candidates_classified),
                  static_cast<unsigned long long>(s.batch_kernel_calls),
                  static_cast<unsigned long long>(s.simd_batch_calls));
      // Bucket b counts windows of width in (2^(b-1), 2^b].
      std::string hist;
      for (int b = 0; b < 7; ++b) {
        if (s.batch_width_histogram[b] == 0) continue;
        if (!hist.empty()) hist += "  ";
        hist += "<=" + std::to_string(1u << b) + ": " +
                std::to_string(s.batch_width_histogram[b]);
      }
      if (!hist.empty()) {
        std::printf("  batch width histo:   %s\n", hist.c_str());
      }
    }
    if (s.auto_tuned != 0) {
      std::printf("  auto-tune:           rule '%s' -> engine %s, "
                  "bitmap_density %.3f, batch_width %llu, max_split %llu\n",
                  TunerRuleName(static_cast<TunerRule>(s.tuner_rule)),
                  s.tuned_algorithm != 0
                      ? TunerEngineName(
                            static_cast<TunerEngine>(s.tuned_algorithm))
                      : "(pinned)",
                  static_cast<double>(s.tuned_bitmap_density_x1000) / 1000.0,
                  static_cast<unsigned long long>(s.tuned_batch_width),
                  static_cast<unsigned long long>(s.tuned_max_split));
    }
    if (options.max_memory_bytes > 0 || s.degradations > 0 ||
        s.faults_injected > 0) {
      std::printf("  memory budget:       peak %s bytes charged, "
                  "%llu degradations, %llu faults injected\n",
                  util::HumanCount(static_cast<double>(s.peak_charged_bytes))
                      .c_str(),
                  static_cast<unsigned long long>(s.degradations),
                  static_cast<unsigned long long>(s.faults_injected));
    }
    if (s.checkpoints_written > 0) {
      std::printf("  checkpoints:         %llu snapshots written (incl. "
                  "final)\n",
                  static_cast<unsigned long long>(s.checkpoints_written));
    }
    if (s.watchdog_checks > 0) {
      std::printf("  watchdog:            %llu sweeps\n",
                  static_cast<unsigned long long>(s.watchdog_checks));
    }
    if (s.arena_peak_bytes > 0) {
      std::printf("  arena peak:          %s bytes (per-thread scratch)\n",
                  util::HumanCount(static_cast<double>(s.arena_peak_bytes))
                      .c_str());
    }
    if (options.threads > 1) {
      std::printf("  scheduler:           %s, %llu steals, %llu split tasks\n",
                  SchedulingName(options.scheduling),
                  static_cast<unsigned long long>(s.steals),
                  static_cast<unsigned long long>(s.split_tasks));
      std::printf("  sink flushes:        %llu (batched emission)\n",
                  static_cast<unsigned long long>(s.sink_flushes));
      const double busy = static_cast<double>(s.busy_ns);
      const double total = busy + static_cast<double>(s.idle_ns);
      if (total > 0) {
        std::printf("  worker busy share:   %.1f%% (busy %.3fs, idle %.3fs)\n",
                    100.0 * busy / total, busy * 1e-9,
                    static_cast<double>(s.idle_ns) * 1e-9);
      }
    }
  }
  return 0;
}
