// pmbe — command-line maximal biclique enumeration.
//
// Loads a bipartite graph from a file (plain 0-based edge list or
// KONECT-style 1-based), or generates a synthetic stand-in from the
// registry, then enumerates maximal bicliques with the selected algorithm
// and reports counts, timing, and counters. Optionally writes all
// bicliques to a file (one `L | R` line each).
//
// Examples:
//   pmbe --input graph.txt
//   pmbe --dataset BX --algorithm imbea --budget 30
//   pmbe --input out.konect --format konect --threads 8 --output result.txt
//   pmbe --dataset GH --max-biclique --min-left 3 --min-right 3

#include <cstdio>
#include <fstream>

#include "api/mbe.h"
#include "gen/registry.h"
#include "graph/graph_io.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace mbe;
  util::FlagParser flags;
  flags.AddString("input", "", "path to an edge-list file");
  flags.AddString("format", "edgelist", "input format: edgelist | konect");
  flags.AddString("dataset", "",
                  "generate a registry stand-in instead of loading a file");
  flags.AddDouble("scale", 1.0, "scale for --dataset");
  flags.AddString("algorithm", "mbet",
                  "mbet | mbetm | minelmbc | mbea | imbea | oombea");
  flags.AddString("order", "deg-asc",
                  "none | deg-asc | deg-desc | twohop | unilateral | random");
  flags.AddInt("threads", 1, "worker threads (mbet/mbetm/imbea/oombea)");
  flags.AddDouble("budget", 0, "stop after this many seconds (0 = none)");
  flags.AddInt("limit", 0, "stop after this many bicliques (0 = none)");
  flags.AddInt("min-left", 1, "only bicliques with |L| >= this");
  flags.AddInt("min-right", 1, "only bicliques with |R| >= this");
  flags.AddBool("max-biclique", false,
                "find one maximum-edge biclique instead of enumerating");
  flags.AddString("output", "", "write bicliques to this file");
  flags.AddBool("stats", true, "print enumeration counters");
  flags.Parse(argc, argv);

  // --- Load or generate the graph ---------------------------------------
  BipartiteGraph graph;
  if (!flags.GetString("dataset").empty()) {
    graph = gen::Materialize(gen::FindDataset(flags.GetString("dataset")),
                             flags.GetDouble("scale"));
  } else if (!flags.GetString("input").empty()) {
    auto loaded = flags.GetString("format") == "konect"
                      ? LoadKonect(flags.GetString("input"))
                      : LoadEdgeList(flags.GetString("input"));
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
  } else {
    std::fprintf(stderr, "error: pass --input or --dataset (see --help)\n");
    return 2;
  }
  std::printf("graph: %s\n", graph.Summary().c_str());

  Options options;
  options.algorithm = ParseAlgorithm(flags.GetString("algorithm"));
  options.order = ParseVertexOrder(flags.GetString("order"));
  options.threads = static_cast<unsigned>(flags.GetInt("threads"));
  options.mbet.min_left = static_cast<uint32_t>(flags.GetInt("min-left"));
  options.mbet.min_right = static_cast<uint32_t>(flags.GetInt("min-right"));

  // --- Maximum-biclique mode ---------------------------------------------
  if (flags.GetBool("max-biclique")) {
    util::WallTimer timer;
    Biclique best = FindMaximumBiclique(graph, options);
    if (best.left.empty()) {
      std::printf("no biclique satisfies the constraints (%.3fs)\n",
                  timer.Seconds());
      return 0;
    }
    std::printf("maximum biclique: %zu x %zu = %zu edges (%.3fs)\n",
                best.left.size(), best.right.size(), best.num_edges(),
                timer.Seconds());
    std::printf("%s\n", ToString(best).c_str());
    return 0;
  }

  // --- Enumeration --------------------------------------------------------
  std::ofstream out;
  if (!flags.GetString("output").empty()) {
    out.open(flags.GetString("output"));
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   flags.GetString("output").c_str());
      return 1;
    }
  }

  CountSink counter;
  // Writing goes through a callback layered under the budget.
  CallbackSink writer([&](std::span<const VertexId> l,
                          std::span<const VertexId> r) {
    counter.Emit(l, r);
    if (out.is_open()) {
      for (size_t i = 0; i < l.size(); ++i) out << (i ? " " : "") << l[i];
      out << " | ";
      for (size_t i = 0; i < r.size(); ++i) out << (i ? " " : "") << r[i];
      out << "\n";
    }
  });
  BudgetSink budget(&writer, static_cast<uint64_t>(flags.GetInt("limit")),
                    flags.GetDouble("budget"));

  RunResult run = Enumerate(graph, options, &budget);

  const bool truncated = budget.ShouldStop() &&
                         (flags.GetDouble("budget") > 0 || flags.GetInt("limit") > 0);
  std::printf("%s%llu maximal bicliques in %.3fs (preprocess %.3fs)\n",
              truncated ? ">= " : "",
              static_cast<unsigned long long>(counter.count()), run.seconds,
              run.preprocess_seconds);
  if (flags.GetBool("stats")) {
    const EnumStats& s = run.stats;
    std::printf("  nodes expanded:      %llu\n",
                static_cast<unsigned long long>(s.nodes_expanded));
    std::printf("  non-maximal pruned:  %llu\n",
                static_cast<unsigned long long>(s.non_maximal));
    std::printf("  candidates absorbed: %llu  dropped: %llu\n",
                static_cast<unsigned long long>(s.candidates_absorbed),
                static_cast<unsigned long long>(s.candidates_dropped));
    std::printf("  vertices aggregated: %llu  subtrees pruned: %llu\n",
                static_cast<unsigned long long>(s.vertices_aggregated),
                static_cast<unsigned long long>(s.subtrees_pruned));
    if (s.local_scan_size > 0) {
      std::printf("  trie probe ratio:    %.3f (%s of %s probes)\n",
                  static_cast<double>(s.trie_probes) /
                      static_cast<double>(s.local_scan_size),
                  util::HumanCount(static_cast<double>(s.trie_probes)).c_str(),
                  util::HumanCount(static_cast<double>(s.local_scan_size))
                      .c_str());
    }
  }
  return 0;
}
