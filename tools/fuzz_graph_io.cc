// fuzz_graph_io — fuzz harness for the text graph loaders.
//
// Feeds arbitrary bytes to both loader front ends (strict plain edge list
// and lenient KONECT). The loaders' contract under hostile input is: return
// a Status, never crash, never abort, and any graph they do accept must
// satisfy its own structural invariants.
//
// Built under -DPMBE_BUILD_FUZZERS=ON. With a compiler that supports
// `-fsanitize=fuzzer` (clang) this is a libFuzzer target:
//
//   ./fuzz_graph_io corpus/ -max_len=4096
//
// Otherwise (gcc) it falls back to a standalone driver: given file
// arguments it replays each file once (libFuzzer-corpus compatible); given
// none it runs a deterministic seed-corpus + random-mutation loop, so CI
// always has a fuzzing leg regardless of toolchain.

#include <cstdint>
#include <cstdio>
#include <string>

#include "graph/graph_io.h"

namespace {

void CheckAccepted(const mbe::BipartiteGraph& graph) {
  // Walk the accepted graph: adjacency must be self-consistent (HasEdge
  // agrees with the lists) or the loader admitted corrupt structure.
  for (mbe::VertexId u = 0; u < graph.num_left(); ++u) {
    for (mbe::VertexId v : graph.LeftNeighbors(u)) {
      if (!graph.HasEdge(u, v)) {
        std::fprintf(stderr, "loader accepted an inconsistent graph\n");
        __builtin_trap();
      }
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  if (auto plain = mbe::ParseEdgeListText(text); plain.ok()) {
    CheckAccepted(plain.value());
  }
  if (auto konect = mbe::ParseKonectText(text); konect.ok()) {
    CheckAccepted(konect.value());
  }
  return 0;
}

#if defined(PMBE_FUZZ_STANDALONE)

#include <fstream>
#include <sstream>
#include <vector>

#include "util/random.h"

namespace {

// Seed corpus: valid inputs plus near-misses of every rejection path, so
// mutations start on the interesting boundaries.
const char* const kSeeds[] = {
    "",
    "0 0\n1 1\n",
    "# pmbe 4 4\n0 0\n3 3\n",
    "# pmbe 1 1\n5 5\n",
    "# pmbe 2 2\n# pmbe 3 3\n0 0\n",
    "0 0\n0 0\n",
    "0 0\n1 1 extra\n",
    "0 184467440737095516150\n",
    "% bip unweighted\n1 1\n2 3 5 1200000\n",
    "1 1 1 100\n1 1 1 200\n2 2\n",
    "not numbers\n",
    "0\n",
    "# pmbe 99999999999 2\n0 0\n",
    "# pmbe 9999999 9999999\n0 0\n",
    "0 4294967295\n",
};

int ReplayFile(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(text.data()),
                         text.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Replay any corpus files first (libFuzzer-style flags are skipped so
  // one command line works for both builds), then always run the built-in
  // mutation loop.
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;
    if (int rc = ReplayFile(argv[i]); rc != 0) return rc;
    ++replayed;
  }
  if (replayed > 0) {
    std::printf("replayed %d corpus inputs, no crashes\n", replayed);
  }
  // Deterministic mutation loop over the seed corpus.
  constexpr int kIterations = 50000;
  mbe::util::Rng rng(0x9e3779b97f4a7c15ULL);
  const char kAlphabet[] = "0123456789 \t\n#%pmbe-+.";
  for (int iter = 0; iter < kIterations; ++iter) {
    std::string text = kSeeds[rng.Below(sizeof(kSeeds) / sizeof(kSeeds[0]))];
    const uint64_t mutations = 1 + rng.Below(8);
    for (uint64_t m = 0; m < mutations; ++m) {
      switch (rng.Below(3)) {
        case 0:  // insert
          text.insert(text.begin() + rng.Below(text.size() + 1),
                      kAlphabet[rng.Below(sizeof(kAlphabet) - 1)]);
          break;
        case 1:  // overwrite
          if (!text.empty()) {
            text[rng.Below(text.size())] =
                static_cast<char>(rng.Below(256));
          }
          break;
        default:  // delete
          if (!text.empty()) text.erase(text.begin() + rng.Below(text.size()));
          break;
      }
    }
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(text.data()),
                           text.size());
  }
  std::printf("fuzzed %d mutated inputs over %zu seeds, no crashes\n",
              kIterations, sizeof(kSeeds) / sizeof(kSeeds[0]));
  return 0;
}

#endif  // PMBE_FUZZ_STANDALONE
