// pmbe_serve — the enumeration daemon (docs/SERVICE.md).
//
// Loads graphs once into an in-process registry and serves any number of
// concurrent enumeration sessions over the serve/wire.h protocol, on a
// Unix-domain socket (--unix) or loopback TCP (--port). Sessions share one
// worker pool; admission control bounds concurrency (--max-active /
// --max-queued). SIGTERM / SIGINT drains: running sessions finish and
// stream their results, new sessions are rejected with kDraining, then the
// process exits cleanly.
//
// Graphs can be preloaded from files (positional `name=path` edge lists)
// or uploaded by clients with kLoadGraph frames. SIGHUP hot-reloads every
// preloaded graph from its file into a new registry epoch: in-flight
// sessions finish on the engine they started with, new sessions bind the
// re-read graph (the same swap a client kReloadGraph frame performs).
//
// --stats prints the kServerInfo counter line once a second; --idle-timeout
// drops connections that sit silent with no in-flight sessions.
//
//   pmbe_serve --unix=/tmp/pmbe.sock --max-active=64 web=graphs/web.txt

#include <csignal>
#include <cstdio>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/graph_io.h"
#include "serve/server.h"
#include "util/flags.h"

namespace {

std::atomic<bool> g_shutdown{false};
std::atomic<bool> g_reload{false};

void HandleSignal(int /*signal*/) { g_shutdown.store(true); }

void HandleHup(int /*signal*/) { g_reload.store(true); }

struct PreloadSpec {
  std::string name;
  std::string path;
};

// Builds an engine from one name=path spec (default GraphOptions — the
// same options the original preload used, so a SIGHUP swap changes only
// the data, never the preprocessing).
mbe::util::StatusOr<std::shared_ptr<const mbe::Engine>> BuildFromFile(
    const PreloadSpec& spec) {
  auto graph = mbe::LoadEdgeList(spec.path);
  if (!graph.ok()) return graph.status();
  auto engine =
      mbe::Engine::Build(std::move(graph).value(), mbe::GraphOptions{});
  if (!engine.ok()) return engine.status();
  return std::shared_ptr<const mbe::Engine>(std::move(engine).value());
}

void PrintStats(const mbe::serve::ServerInfoMsg& info) {
  std::printf(
      "stats: active=%u queued=%u graphs=%u started=%llu done=%llu "
      "reloads=%llu heartbeats=%llu idle-drops=%llu conns=%llu%s\n",
      info.active_sessions, info.queued_sessions, info.graphs,
      static_cast<unsigned long long>(info.sessions_started),
      static_cast<unsigned long long>(info.sessions_completed),
      static_cast<unsigned long long>(info.reloads),
      static_cast<unsigned long long>(info.heartbeats),
      static_cast<unsigned long long>(info.idle_disconnects),
      static_cast<unsigned long long>(info.connections_accepted),
      info.draining ? " draining" : "");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  mbe::util::FlagParser flags;
  flags.AddString("unix", "", "unix-domain socket path to listen on");
  flags.AddInt("port", 0,
               "loopback TCP port (used when --unix is empty; 0 = ephemeral, "
               "printed at startup)");
  flags.AddInt("pool-threads", 0,
               "session-pool worker threads (0 = hardware concurrency)");
  flags.AddInt("max-active", 8, "sessions running concurrently");
  flags.AddInt("max-queued", 64, "sessions waiting before kRejected");
  flags.AddDouble("idle-timeout", 0,
                  "drop connections silent this many seconds with no "
                  "in-flight sessions (0 = never)");
  flags.AddBool("stats", false, "print live counters once a second");
  flags.Parse(argc, argv);

  // A peer that vanishes mid-write must surface as a socket error on that
  // connection, never as process death. The per-call guard is MSG_NOSIGNAL
  // in serve/net.h; this covers any path outside the shim.
  std::signal(SIGPIPE, SIG_IGN);

  mbe::serve::ServerOptions options;
  options.unix_path = flags.GetString("unix");
  options.tcp_port = static_cast<uint16_t>(flags.GetInt("port"));
  options.pool_threads =
      static_cast<unsigned>(flags.GetInt("pool-threads"));
  options.max_active_sessions =
      static_cast<size_t>(flags.GetInt("max-active"));
  options.max_queued_sessions =
      static_cast<size_t>(flags.GetInt("max-queued"));
  options.idle_timeout_seconds = flags.GetDouble("idle-timeout");
  const bool stats = flags.GetBool("stats");

  mbe::serve::Server server(options);

  // Preload positional name=path graphs with default GraphOptions; the
  // specs are remembered so SIGHUP can re-read and swap them.
  std::vector<PreloadSpec> preloads;
  for (const std::string& spec : flags.positional()) {
    const size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "bad graph spec '%s' (want name=path)\n",
                   spec.c_str());
      return 1;
    }
    preloads.push_back(PreloadSpec{spec.substr(0, eq), spec.substr(eq + 1)});
  }
  for (const PreloadSpec& spec : preloads) {
    auto engine = BuildFromFile(spec);
    if (!engine.ok()) {
      std::fprintf(stderr, "load %s: %s\n", spec.path.c_str(),
                   engine.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded %s: %s (build %.3fs)\n", spec.name.c_str(),
                engine.value()->graph().Summary().c_str(),
                engine.value()->build_seconds());
    if (!server.registry().Put(spec.name, std::move(engine).value())) {
      std::fprintf(stderr, "duplicate graph name '%s'\n", spec.name.c_str());
      return 1;
    }
  }

  if (mbe::util::Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "start: %s\n", status.ToString().c_str());
    return 1;
  }
  if (!options.unix_path.empty()) {
    std::printf("pmbe_serve listening on %s (pool=%u active<=%zu)\n",
                options.unix_path.c_str(), server.pool_threads(),
                options.max_active_sessions);
  } else {
    std::printf("pmbe_serve listening on 127.0.0.1:%u (pool=%u active<=%zu)\n",
                server.tcp_port(), server.pool_threads(),
                options.max_active_sessions);
  }
  std::fflush(stdout);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGHUP, HandleHup);

  auto last_stats = std::chrono::steady_clock::now();
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (g_reload.exchange(false)) {
      // Hot reload: re-read every preloaded file and swap it in under a
      // new epoch. A file that no longer loads keeps its current engine —
      // a bad deploy must not take down the graphs that still work.
      for (const PreloadSpec& spec : preloads) {
        auto engine = BuildFromFile(spec);
        if (!engine.ok()) {
          std::fprintf(stderr, "reload %s: %s (keeping current engine)\n",
                       spec.path.c_str(),
                       engine.status().ToString().c_str());
          continue;
        }
        const uint64_t epoch =
            server.registry().Swap(spec.name, std::move(engine).value());
        std::printf("reloaded %s from %s (epoch %llu)\n", spec.name.c_str(),
                    spec.path.c_str(),
                    static_cast<unsigned long long>(epoch));
      }
      std::fflush(stdout);
    }
    if (stats) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_stats >= std::chrono::seconds(1)) {
        last_stats = now;
        PrintStats(server.Info());
      }
    }
  }

  // Drain: stop admitting, let running sessions finish and deliver their
  // kSessionDone frames, then tear the sockets down.
  std::printf("pmbe_serve draining\n");
  std::fflush(stdout);
  server.BeginDrain();
  while (!server.idle()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (stats) PrintStats(server.Info());
  server.Stop();
  std::printf("pmbe_serve stopped\n");
  return 0;
}
