// pmbe_serve — the enumeration daemon (docs/SERVICE.md).
//
// Loads graphs once into an in-process registry and serves any number of
// concurrent enumeration sessions over the serve/wire.h protocol, on a
// Unix-domain socket (--unix) or loopback TCP (--port). Sessions share one
// worker pool; admission control bounds concurrency (--max-active /
// --max-queued). SIGTERM / SIGINT drains: running sessions finish and
// stream their results, new sessions are rejected with kDraining, then the
// process exits cleanly.
//
// Graphs can be preloaded from files (positional `name=path` edge lists)
// or uploaded by clients with kLoadGraph frames.
//
//   pmbe_serve --unix=/tmp/pmbe.sock --max-active=64 web=graphs/web.txt

#include <csignal>
#include <cstdio>

#include <atomic>
#include <chrono>
#include <thread>

#include "graph/graph_io.h"
#include "serve/server.h"
#include "util/flags.h"

namespace {

std::atomic<bool> g_shutdown{false};

void HandleSignal(int /*signal*/) { g_shutdown.store(true); }

}  // namespace

int main(int argc, char** argv) {
  mbe::util::FlagParser flags;
  flags.AddString("unix", "", "unix-domain socket path to listen on");
  flags.AddInt("port", 0,
               "loopback TCP port (used when --unix is empty; 0 = ephemeral, "
               "printed at startup)");
  flags.AddInt("pool-threads", 0,
               "session-pool worker threads (0 = hardware concurrency)");
  flags.AddInt("max-active", 8, "sessions running concurrently");
  flags.AddInt("max-queued", 64, "sessions waiting before kRejected");
  flags.Parse(argc, argv);

  mbe::serve::ServerOptions options;
  options.unix_path = flags.GetString("unix");
  options.tcp_port = static_cast<uint16_t>(flags.GetInt("port"));
  options.pool_threads =
      static_cast<unsigned>(flags.GetInt("pool-threads"));
  options.max_active_sessions =
      static_cast<size_t>(flags.GetInt("max-active"));
  options.max_queued_sessions =
      static_cast<size_t>(flags.GetInt("max-queued"));

  mbe::serve::Server server(options);

  // Preload positional name=path graphs with default GraphOptions.
  for (const std::string& spec : flags.positional()) {
    const size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "bad graph spec '%s' (want name=path)\n",
                   spec.c_str());
      return 1;
    }
    const std::string name = spec.substr(0, eq);
    const std::string path = spec.substr(eq + 1);
    auto graph = mbe::LoadEdgeList(path);
    if (!graph.ok()) {
      std::fprintf(stderr, "load %s: %s\n", path.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    auto engine =
        mbe::Engine::Build(std::move(graph).value(), mbe::GraphOptions{});
    if (!engine.ok()) {
      std::fprintf(stderr, "build %s: %s\n", name.c_str(),
                   engine.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded %s: %s (build %.3fs)\n", name.c_str(),
                engine.value()->graph().Summary().c_str(),
                engine.value()->build_seconds());
    if (!server.registry().Put(name, std::move(engine).value())) {
      std::fprintf(stderr, "duplicate graph name '%s'\n", name.c_str());
      return 1;
    }
  }

  if (mbe::util::Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "start: %s\n", status.ToString().c_str());
    return 1;
  }
  if (!options.unix_path.empty()) {
    std::printf("pmbe_serve listening on %s (pool=%u active<=%zu)\n",
                options.unix_path.c_str(), server.pool_threads(),
                options.max_active_sessions);
  } else {
    std::printf("pmbe_serve listening on 127.0.0.1:%u (pool=%u active<=%zu)\n",
                server.tcp_port(), server.pool_threads(),
                options.max_active_sessions);
  }
  std::fflush(stdout);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Drain: stop admitting, let running sessions finish and deliver their
  // kSessionDone frames, then tear the sockets down.
  std::printf("pmbe_serve draining\n");
  std::fflush(stdout);
  server.BeginDrain();
  while (!server.idle()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  server.Stop();
  std::printf("pmbe_serve stopped\n");
  return 0;
}
