// fuzz_frontier — fuzz harness for the task-frontier snapshot codec.
//
// Feeds arbitrary bytes to DecodeSnapshot (snapshot/frontier.h). The
// codec's contract under hostile input: a typed Status — never a crash,
// never an abort, never an allocation proportional to a corrupt count
// claim — and any snapshot it does accept must round-trip:
// EncodeSnapshot(DecodeSnapshot(bytes)) reproduces the input byte for
// byte (the canonical encoding the resume and shard-merge digest-identity
// checks lean on).
//
// Built under -DPMBE_BUILD_FUZZERS=ON. With `-fsanitize=fuzzer` (clang)
// this is a libFuzzer target:
//
//   ./fuzz_frontier corpus/ -max_len=4096
//
// Otherwise (gcc) it falls back to a standalone driver mirroring
// fuzz_wire: replay file arguments, then run a deterministic seed-corpus
// + random-mutation loop, so CI always has this leg.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <vector>

#include "snapshot/frontier.h"

namespace {

void CheckRoundTrip(std::span<const uint8_t> input,
                    const mbe::snapshot::FrontierSnapshot& snapshot) {
  std::vector<uint8_t> reencoded;
  if (!mbe::snapshot::EncodeSnapshot(snapshot, &reencoded).ok()) {
    std::fprintf(stderr, "decoded snapshot failed to re-encode\n");
    __builtin_trap();
  }
  if (reencoded.size() != input.size() ||
      std::memcmp(reencoded.data(), input.data(), input.size()) != 0) {
    std::fprintf(stderr, "non-canonical snapshot survived decoding\n");
    __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::span<const uint8_t> input(data, size);
  if (auto decoded = mbe::snapshot::DecodeSnapshot(input); decoded.ok()) {
    CheckRoundTrip(input, decoded.value());
  }
  return 0;
}

#if defined(PMBE_FUZZ_STANDALONE)

#include <fstream>
#include <sstream>
#include <string>

#include "util/random.h"

namespace {

/// Seed corpus: valid snapshots in several shapes (mutations then explore
/// every decoder from the accepting boundary), plus framing edge cases.
std::vector<std::vector<uint8_t>> BuildSeeds() {
  using namespace mbe::snapshot;
  std::vector<FrontierSnapshot> snapshots;

  // Mid-run shard: pending tasks (split and unsplit) plus completed work.
  FrontierSnapshot mid;
  mid.algorithm = 1;
  mid.complete = false;
  mid.shard_index = 1;
  mid.shard_count = 4;
  mid.graph_left = 24;
  mid.graph_right = 24;
  mid.graph_edges = 230;
  mid.graph_hash = 0x1234'5678'9abc'def0ULL;
  mid.pending = {mbe::EncodeTask({.v = 2, .shard = 0, .num_shards = 1}),
                 mbe::EncodeTask({.v = 5, .shard = 1, .num_shards = 4}),
                 mbe::EncodeTask({.v = 5, .shard = 3, .num_shards = 4})};
  mid.completed = {
      {mbe::EncodeTask({.v = 0, .shard = 0, .num_shards = 1}),
       {0x1111, 0x2222, 3}},
      {mbe::EncodeTask({.v = 5, .shard = 2, .num_shards = 4}), {0, 0, 0}},
  };
  snapshots.push_back(mid);

  // Drained single-process run.
  FrontierSnapshot done = mid;
  done.complete = true;
  done.shard_index = 0;
  done.shard_count = 1;
  done.pending.clear();
  snapshots.push_back(done);

  // Empty complete snapshot (empty graph / empty shard).
  FrontierSnapshot empty;
  empty.algorithm = 0;
  empty.complete = true;
  empty.shard_count = 1;
  snapshots.push_back(empty);

  std::vector<std::vector<uint8_t>> seeds;
  for (const FrontierSnapshot& snapshot : snapshots) {
    std::vector<uint8_t> bytes;
    if (!EncodeSnapshot(snapshot, &bytes).ok()) {
      std::fprintf(stderr, "seed snapshot failed to encode\n");
      __builtin_trap();
    }
    seeds.push_back(std::move(bytes));
  }
  seeds.push_back({});                        // empty input
  seeds.push_back({0x50, 0x4d, 0x42});        // truncated magic
  seeds.push_back({0x50, 0x4d, 0x42, 0x46, 0x7f, 0, 0, 0});  // version skew
  seeds.push_back({0xff, 0xff, 0xff, 0xff, 1, 0, 0, 0});     // bad magic
  return seeds;
}

int ReplayFile(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;
    if (int rc = ReplayFile(argv[i]); rc != 0) return rc;
    ++replayed;
  }
  if (replayed > 0) {
    std::printf("replayed %d corpus inputs, no crashes\n", replayed);
  }
  const std::vector<std::vector<uint8_t>> seeds = BuildSeeds();
  // Every pristine seed must survive (the trap in CheckRoundTrip enforces
  // canonical encoding on the happy path too).
  for (const auto& seed : seeds) {
    LLVMFuzzerTestOneInput(seed.data(), seed.size());
  }
  constexpr int kIterations = 50000;
  mbe::util::Rng rng(0x9e3779b97f4a7c15ULL);
  for (int iter = 0; iter < kIterations; ++iter) {
    std::vector<uint8_t> bytes = seeds[rng.Below(seeds.size())];
    const uint64_t mutations = 1 + rng.Below(8);
    for (uint64_t m = 0; m < mutations; ++m) {
      switch (rng.Below(4)) {
        case 0:  // insert
          bytes.insert(bytes.begin() + rng.Below(bytes.size() + 1),
                       static_cast<uint8_t>(rng.Below(256)));
          break;
        case 1:  // overwrite
          if (!bytes.empty()) {
            bytes[rng.Below(bytes.size())] =
                static_cast<uint8_t>(rng.Below(256));
          }
          break;
        case 2:  // truncate
          if (!bytes.empty()) {
            bytes.resize(rng.Below(bytes.size()));
          }
          break;
        default:  // delete one byte
          if (!bytes.empty()) {
            bytes.erase(bytes.begin() + rng.Below(bytes.size()));
          }
          break;
      }
    }
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  }
  std::printf("fuzzed %d mutated snapshots over %zu seeds, no crashes\n",
              kIterations, seeds.size());
  return 0;
}

#endif  // PMBE_FUZZ_STANDALONE
