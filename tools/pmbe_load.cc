// pmbe_load — load generator and correctness client for pmbe_serve.
//
// Connects to a running daemon, uploads a synthetic dataset (gen/registry),
// keeps `--concurrent` enumeration sessions in flight until `--sessions`
// have completed, and reports client-observed latency percentiles (send ->
// kSessionDone, including admission queueing). With --verify (default) it
// first enumerates the same graph locally and checks every completed
// remote session's order-independent result fingerprint against the local
// one — any cross-session corruption on the server shows up as a digest
// mismatch.
//
//   pmbe_serve --unix=/tmp/pmbe.sock --max-active=64 &
//   pmbe_load --unix=/tmp/pmbe.sock --sessions=128 --concurrent=64
//       --out=bench/BENCH_serve.json

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "api/mbe.h"
#include "gen/registry.h"
#include "serve/wire.h"
#include "util/flags.h"

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Minimal blocking wire client: one socket, buffered frame reads.
class WireClient {
 public:
  ~WireClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ConnectUnix(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) return false;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    return fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                 sizeof(addr)) == 0;
  }

  bool ConnectTcp(uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    return fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                 sizeof(addr)) == 0;
  }

  bool Send(const mbe::serve::Message& message) {
    std::vector<uint8_t> frame;
    if (!mbe::serve::EncodeMessage(message, &frame).ok()) return false;
    size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n =
          ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Blocks until one complete frame is available and decodes it.
  mbe::util::StatusOr<mbe::serve::Message> Read() {
    for (;;) {
      size_t frame_size = 0;
      bool complete = false;
      if (mbe::util::Status status = mbe::serve::PeekFrame(
              std::span<const uint8_t>(buffer_), &frame_size, &complete);
          !status.ok()) {
        return status;
      }
      if (complete) {
        auto decoded = mbe::serve::DecodeMessage(
            std::span<const uint8_t>(buffer_.data(), frame_size));
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<ptrdiff_t>(frame_size));
        return decoded;
      }
      uint8_t chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        return mbe::util::Status::IoError("connection closed by server");
      }
      buffer_.insert(buffer_.end(), chunk, chunk + n);
    }
  }

 private:
  int fd_ = -1;
  std::vector<uint8_t> buffer_;
};

struct SessionTracker {
  mbe::FingerprintSink fingerprint;
  Clock::time_point started_at;
};

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  mbe::util::FlagParser flags;
  flags.AddString("unix", "", "daemon unix socket path");
  flags.AddInt("port", 0, "daemon TCP port (when --unix is empty)");
  flags.AddString("graph", "Mti", "synthetic dataset name (gen/registry)");
  flags.AddDouble("scale", 1.0, "dataset scale factor in (0, 1]");
  flags.AddString("algorithm", "mbet", "enumeration algorithm");
  flags.AddInt("min-left", 1, "biclique size threshold (left)");
  flags.AddInt("min-right", 1, "biclique size threshold (right)");
  flags.AddInt("sessions", 64, "total sessions to run");
  flags.AddInt("concurrent", 64, "sessions kept in flight");
  flags.AddInt("max-results", 0, "per-session result budget (0 = none)");
  flags.AddDouble("deadline", 0, "per-session deadline seconds (0 = none)");
  flags.AddInt("max-memory", 0, "per-session memory cap bytes (0 = none)");
  flags.AddInt("batch", 128, "bicliques per kResultBatch frame");
  flags.AddBool("verify", true,
                "check every complete session's fingerprint against a "
                "local run");
  flags.AddString("out", "", "write a JSON latency report here");
  flags.Parse(argc, argv);

  mbe::Algorithm algorithm = mbe::Algorithm::kMbet;
  if (auto status =
          mbe::ParseAlgorithm(flags.GetString("algorithm"), &algorithm);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  const uint32_t min_left = static_cast<uint32_t>(flags.GetInt("min-left"));
  const uint32_t min_right =
      static_cast<uint32_t>(flags.GetInt("min-right"));
  const int total_sessions = static_cast<int>(flags.GetInt("sessions"));
  const int concurrent =
      std::max(1, static_cast<int>(flags.GetInt("concurrent")));
  const bool verify = flags.GetBool("verify");

  const mbe::gen::DatasetSpec& spec =
      mbe::gen::FindDataset(flags.GetString("graph"));
  const mbe::BipartiteGraph graph =
      mbe::gen::Materialize(spec, flags.GetDouble("scale"));
  std::printf("dataset %s: %s\n", spec.name.c_str(),
              graph.Summary().c_str());

  // Local reference fingerprint (same options the sessions will run).
  uint64_t want_digest = 0;
  uint64_t want_count = 0;
  if (verify) {
    mbe::Options local;
    local.algorithm = algorithm;
    local.mbet.min_left = min_left;
    local.mbet.min_right = min_right;
    mbe::FingerprintSink reference;
    mbe::RunResult run;
    if (auto status = mbe::Enumerate(graph, local, &reference, &run);
        !status.ok() || !run.complete()) {
      std::fprintf(stderr, "local reference run failed\n");
      return 1;
    }
    want_digest = reference.Digest();
    want_count = reference.count();
    std::printf("local reference: %llu bicliques, digest %016llx\n",
                static_cast<unsigned long long>(want_count),
                static_cast<unsigned long long>(want_digest));
  }

  WireClient client;
  const std::string unix_path = flags.GetString("unix");
  if (!unix_path.empty() ? !client.ConnectUnix(unix_path)
                         : !client.ConnectTcp(static_cast<uint16_t>(
                               flags.GetInt("port")))) {
    std::fprintf(stderr, "cannot connect to the daemon\n");
    return 1;
  }

  // Handshake.
  if (!client.Send(mbe::serve::HelloMsg{})) return 1;
  {
    auto reply = client.Read();
    if (!reply.ok() ||
        !std::holds_alternative<mbe::serve::HelloOkMsg>(reply.value())) {
      std::fprintf(stderr, "handshake failed\n");
      return 1;
    }
  }

  // Upload the graph, mirroring the one-shot facade's preprocessing
  // choices so the server-side engine matches the local reference.
  {
    mbe::serve::LoadGraphMsg load;
    load.name = spec.name;
    load.num_left = static_cast<uint32_t>(graph.num_left());
    load.num_right = static_cast<uint32_t>(graph.num_right());
    const std::vector<mbe::Edge> edges = graph.ToEdges();
    load.edge_left.reserve(edges.size());
    load.edge_right.reserve(edges.size());
    for (const mbe::Edge& e : edges) {
      load.edge_left.push_back(e.u);
      load.edge_right.push_back(e.v);
    }
    load.core_reduce = algorithm == mbe::Algorithm::kMbet ||
                       algorithm == mbe::Algorithm::kMbetM;
    load.min_left = min_left;
    load.min_right = min_right;
    if (!client.Send(load)) return 1;
    auto reply = client.Read();
    if (!reply.ok() ||
        !std::holds_alternative<mbe::serve::LoadOkMsg>(reply.value())) {
      std::fprintf(stderr, "graph upload failed\n");
      return 1;
    }
    const auto& ok = std::get<mbe::serve::LoadOkMsg>(reply.value());
    std::printf("uploaded '%s': %llu edges retained, build %.3fs\n",
                ok.name.c_str(),
                static_cast<unsigned long long>(ok.num_edges),
                ok.build_seconds);
  }

  mbe::serve::StartSessionMsg start;
  start.graph = spec.name;
  start.algorithm = static_cast<uint8_t>(algorithm);
  start.min_left = min_left;
  start.min_right = min_right;
  start.max_results = static_cast<uint64_t>(flags.GetInt("max-results"));
  start.deadline_seconds = flags.GetDouble("deadline");
  start.max_memory_bytes = static_cast<uint64_t>(flags.GetInt("max-memory"));
  start.batch_results = static_cast<uint32_t>(flags.GetInt("batch"));

  // Request send times pair with kSessionStarted frames in FIFO order; all
  // requests are identical, so the (rare) admission reordering only blurs
  // individual latencies, never the percentile picture.
  std::deque<Clock::time_point> pending_starts;
  std::map<uint64_t, std::unique_ptr<SessionTracker>> active;
  std::vector<double> latencies_ms;
  uint64_t max_queue_wait_ns = 0;
  int sent = 0;
  int completed = 0;
  int rejected = 0;
  int mismatches = 0;
  int incomplete = 0;

  auto send_one = [&]() -> bool {
    pending_starts.push_back(Clock::now());
    ++sent;
    return client.Send(start);
  };

  const Clock::time_point bench_start = Clock::now();
  for (int i = 0; i < std::min(concurrent, total_sessions); ++i) {
    if (!send_one()) return 1;
  }

  while (completed + rejected < total_sessions) {
    auto frame = client.Read();
    if (!frame.ok()) {
      std::fprintf(stderr, "read: %s\n",
                   frame.status().ToString().c_str());
      return 1;
    }
    mbe::serve::Message message = std::move(frame).value();
    if (auto* started =
            std::get_if<mbe::serve::SessionStartedMsg>(&message)) {
      auto tracker = std::make_unique<SessionTracker>();
      tracker->started_at = pending_starts.front();
      pending_starts.pop_front();
      active[started->session_id] = std::move(tracker);
    } else if (auto* batch =
                   std::get_if<mbe::serve::ResultBatchMsg>(&message)) {
      auto it = active.find(batch->session_id);
      if (it == active.end()) {
        std::fprintf(stderr, "batch for unknown session %llu\n",
                     static_cast<unsigned long long>(batch->session_id));
        return 1;
      }
      it->second->fingerprint.EmitBatch(batch->batch);
    } else if (auto* done =
                   std::get_if<mbe::serve::SessionDoneMsg>(&message)) {
      auto it = active.find(done->session_id);
      if (it == active.end()) {
        std::fprintf(stderr, "done for unknown session %llu\n",
                     static_cast<unsigned long long>(done->session_id));
        return 1;
      }
      latencies_ms.push_back(MsSince(it->second->started_at, Clock::now()));
      max_queue_wait_ns = std::max(max_queue_wait_ns, done->queue_wait_ns);
      const auto termination =
          static_cast<mbe::Termination>(done->termination);
      if (termination == mbe::Termination::kComplete) {
        if (verify) {
          const uint64_t got_digest = it->second->fingerprint.Digest();
          const uint64_t got_count = it->second->fingerprint.count();
          if (got_digest != want_digest || got_count != want_count ||
              done->results_emitted != want_count) {
            std::fprintf(
                stderr,
                "DIGEST MISMATCH session %llu: got %016llx/%llu want "
                "%016llx/%llu\n",
                static_cast<unsigned long long>(done->session_id),
                static_cast<unsigned long long>(got_digest),
                static_cast<unsigned long long>(got_count),
                static_cast<unsigned long long>(want_digest),
                static_cast<unsigned long long>(want_count));
            ++mismatches;
          }
        }
      } else {
        ++incomplete;
      }
      active.erase(it);
      ++completed;
      if (sent < total_sessions && !send_one()) return 1;
    } else if (auto* reject =
                   std::get_if<mbe::serve::RejectedMsg>(&message)) {
      std::fprintf(stderr, "rejected: %s\n", reject->detail.c_str());
      pending_starts.pop_front();
      ++rejected;
      if (sent < total_sessions && !send_one()) return 1;
    } else if (auto* error = std::get_if<mbe::serve::ErrorMsg>(&message)) {
      std::fprintf(stderr, "server error: %s\n", error->detail.c_str());
      return 1;
    }
  }
  const double wall_s =
      MsSince(bench_start, Clock::now()) / 1000.0;

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double p50 = Percentile(latencies_ms, 0.50);
  const double p95 = Percentile(latencies_ms, 0.95);
  const double p99 = Percentile(latencies_ms, 0.99);
  double mean = 0;
  for (double v : latencies_ms) mean += v;
  if (!latencies_ms.empty()) mean /= static_cast<double>(latencies_ms.size());

  std::printf(
      "%d sessions (%d concurrent): %d complete, %d interrupted, %d "
      "rejected, %d digest mismatches\n",
      total_sessions, concurrent, completed - incomplete, incomplete,
      rejected, mismatches);
  std::printf(
      "latency ms: p50=%.1f p95=%.1f p99=%.1f mean=%.1f  throughput=%.1f "
      "sessions/s  max_queue_wait=%.1fms\n",
      p50, p95, p99, mean,
      wall_s > 0 ? static_cast<double>(completed) / wall_s : 0,
      static_cast<double>(max_queue_wait_ns) / 1e6);

  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"pmbe_serve mixed workload\",\n"
                 "  \"dataset\": \"%s\",\n"
                 "  \"scale\": %g,\n"
                 "  \"algorithm\": \"%s\",\n"
                 "  \"sessions\": %d,\n"
                 "  \"concurrent\": %d,\n"
                 "  \"complete\": %d,\n"
                 "  \"interrupted\": %d,\n"
                 "  \"rejected\": %d,\n"
                 "  \"digest_mismatches\": %d,\n"
                 "  \"verified\": %s,\n"
                 "  \"latency_ms\": {\"p50\": %.2f, \"p95\": %.2f, "
                 "\"p99\": %.2f, \"mean\": %.2f},\n"
                 "  \"throughput_sessions_per_s\": %.2f,\n"
                 "  \"max_queue_wait_ms\": %.2f,\n"
                 "  \"wall_seconds\": %.2f\n"
                 "}\n",
                 spec.name.c_str(), flags.GetDouble("scale"),
                 mbe::AlgorithmName(algorithm),
                 total_sessions, concurrent, completed - incomplete,
                 incomplete, rejected, mismatches,
                 verify && mismatches == 0 ? "true" : "false", p50, p95,
                 p99, mean,
                 wall_s > 0 ? static_cast<double>(completed) / wall_s : 0,
                 static_cast<double>(max_queue_wait_ns) / 1e6, wall_s);
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
  }
  return mismatches == 0 ? 0 : 1;
}
