// pmbe_load — load generator and correctness client for pmbe_serve.
//
// Built on the fault-tolerant client library (client/client.h): every
// socket operation carries a deadline, retryable failures reconnect with
// backoff, and each session's result stream is digest-verified against
// the server's kSessionDone fingerprint before it counts. Runs
// `--concurrent` worker threads (one mbe::client::Client each), keeps a
// session in flight per worker until `--sessions` have finished, and
// reports client-observed latency percentiles (request -> verified done,
// including admission queueing and any retries). With --verify (default)
// it first enumerates the same graph locally and checks every completed
// remote session's order-independent result fingerprint against the local
// one — any cross-session corruption on the server shows up as a digest
// mismatch.
//
//   pmbe_serve --unix=/tmp/pmbe.sock --max-active=64 &
//   pmbe_load --unix=/tmp/pmbe.sock --sessions=128 --concurrent=64
//       --out=bench/BENCH_serve.json
//
// Chaos-run extras: --reload-upload uploads via kReloadGraph (idempotent
// swap, safe to re-issue when fault injection kills the upload mid-way);
// --reload-after=K hot-swaps the graph mid-traffic after K sessions have
// finished, proving in-flight sessions stay on their engine epoch.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/mbe.h"
#include "client/client.h"
#include "gen/registry.h"
#include "serve/wire.h"
#include "util/flags.h"

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Shared tally across worker threads; one session lands in exactly one
/// of {completed, rejected} (incomplete and mismatches subdivide
/// completed).
struct Tally {
  std::mutex mu;
  std::vector<double> latencies_ms;
  uint64_t max_queue_wait_ns = 0;
  int completed = 0;
  int incomplete = 0;
  int rejected = 0;
  int mismatches = 0;
  uint64_t attempts = 0;
  std::atomic<int> finished{0};  // completed + rejected, lock-free reads
};

}  // namespace

int main(int argc, char** argv) {
  mbe::util::FlagParser flags;
  flags.AddString("unix", "", "daemon unix socket path");
  flags.AddInt("port", 0, "daemon TCP port (when --unix is empty)");
  flags.AddString("graph", "Mti", "synthetic dataset name (gen/registry)");
  flags.AddDouble("scale", 1.0, "dataset scale factor in (0, 1]");
  flags.AddString("algorithm", "mbet", "enumeration algorithm");
  flags.AddInt("min-left", 1, "biclique size threshold (left)");
  flags.AddInt("min-right", 1, "biclique size threshold (right)");
  flags.AddInt("sessions", 64, "total sessions to run");
  flags.AddInt("concurrent", 64, "sessions kept in flight");
  flags.AddInt("max-results", 0, "per-session result budget (0 = none)");
  flags.AddDouble("deadline", 0, "per-session deadline seconds (0 = none)");
  flags.AddInt("max-memory", 0, "per-session memory cap bytes (0 = none)");
  flags.AddInt("batch", 128, "bicliques per kResultBatch frame");
  flags.AddBool("verify", true,
                "check every complete session's fingerprint against a "
                "local run");
  flags.AddInt("retries", 4, "client retries per operation");
  flags.AddDouble("io-timeout", 30, "per-syscall read/write deadline (s)");
  flags.AddDouble("connect-timeout", 5, "per-attempt connect deadline (s)");
  flags.AddBool("reload-upload", false,
                "upload via kReloadGraph (idempotent swap) instead of "
                "first-wins kLoadGraph — safe to re-issue under faults");
  flags.AddInt("reload-after", 0,
               "hot-swap the graph (kReloadGraph, same data) after this "
               "many sessions finished (0 = never)");
  flags.AddString("out", "", "write a JSON latency report here");
  flags.Parse(argc, argv);

  mbe::Algorithm algorithm = mbe::Algorithm::kMbet;
  if (auto status =
          mbe::ParseAlgorithm(flags.GetString("algorithm"), &algorithm);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  const uint32_t min_left = static_cast<uint32_t>(flags.GetInt("min-left"));
  const uint32_t min_right =
      static_cast<uint32_t>(flags.GetInt("min-right"));
  const int total_sessions = static_cast<int>(flags.GetInt("sessions"));
  const int concurrent = std::max(
      1, std::min(static_cast<int>(flags.GetInt("concurrent")),
                  std::max(1, total_sessions)));
  const bool verify = flags.GetBool("verify");
  const int reload_after = static_cast<int>(flags.GetInt("reload-after"));

  const mbe::gen::DatasetSpec& spec =
      mbe::gen::FindDataset(flags.GetString("graph"));
  const mbe::BipartiteGraph graph =
      mbe::gen::Materialize(spec, flags.GetDouble("scale"));
  std::printf("dataset %s: %s\n", spec.name.c_str(),
              graph.Summary().c_str());

  // Local reference fingerprint (same options the sessions will run).
  uint64_t want_digest = 0;
  uint64_t want_count = 0;
  if (verify) {
    mbe::Options local;
    local.algorithm = algorithm;
    local.mbet.min_left = min_left;
    local.mbet.min_right = min_right;
    mbe::FingerprintSink reference;
    mbe::RunResult run;
    if (auto status = mbe::Enumerate(graph, local, &reference, &run);
        !status.ok() || !run.complete()) {
      std::fprintf(stderr, "local reference run failed\n");
      return 1;
    }
    want_digest = reference.Digest();
    want_count = reference.count();
    std::printf("local reference: %llu bicliques, digest %016llx\n",
                static_cast<unsigned long long>(want_count),
                static_cast<unsigned long long>(want_digest));
  }

  mbe::client::ClientOptions copts;
  copts.unix_path = flags.GetString("unix");
  copts.tcp_port = static_cast<uint16_t>(flags.GetInt("port"));
  copts.connect_timeout_seconds = flags.GetDouble("connect-timeout");
  copts.io_timeout_seconds = flags.GetDouble("io-timeout");
  copts.max_retries = static_cast<uint32_t>(flags.GetInt("retries"));

  // The control client handles upload, heartbeat, and mid-run reloads;
  // each worker thread gets its own Client (thread-compatible, one
  // conversation each) with a distinct backoff seed so their retry
  // jitters don't stampede in lockstep.
  mbe::client::Client control(copts);
  if (auto status = control.Connect(); !status.ok()) {
    std::fprintf(stderr, "cannot connect to the daemon: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  {
    const Clock::time_point t0 = Clock::now();
    if (auto status = control.Ping(); !status.ok()) {
      std::fprintf(stderr, "ping failed: %s\n", status.ToString().c_str());
      return 1;
    }
    auto info = control.GetServerInfo();
    if (info.ok()) {
      std::printf(
          "ping %.2fms; server: pool=%u active=%u queued=%u graphs=%u%s\n",
          MsSince(t0, Clock::now()), info.value().pool_threads,
          info.value().active_sessions, info.value().queued_sessions,
          info.value().graphs, info.value().draining ? " draining" : "");
    }
  }

  // Upload the graph, mirroring the one-shot facade's preprocessing
  // choices so the server-side engine matches the local reference.
  mbe::serve::LoadGraphMsg load;
  load.name = spec.name;
  load.num_left = static_cast<uint32_t>(graph.num_left());
  load.num_right = static_cast<uint32_t>(graph.num_right());
  {
    const std::vector<mbe::Edge> edges = graph.ToEdges();
    load.edge_left.reserve(edges.size());
    load.edge_right.reserve(edges.size());
    for (const mbe::Edge& e : edges) {
      load.edge_left.push_back(e.u);
      load.edge_right.push_back(e.v);
    }
  }
  load.core_reduce = algorithm == mbe::Algorithm::kMbet ||
                     algorithm == mbe::Algorithm::kMbetM;
  load.min_left = min_left;
  load.min_right = min_right;
  {
    auto reply = flags.GetBool("reload-upload") ? control.ReloadGraph(load)
                                                : control.LoadGraph(load);
    if (!reply.ok()) {
      std::fprintf(stderr, "graph upload failed: %s\n",
                   reply.status().ToString().c_str());
      return 1;
    }
    std::printf("uploaded '%s': %llu edges retained, build %.3fs\n",
                reply.value().name.c_str(),
                static_cast<unsigned long long>(reply.value().num_edges),
                reply.value().build_seconds);
  }

  mbe::serve::StartSessionMsg start;
  start.graph = spec.name;
  start.algorithm = static_cast<uint8_t>(algorithm);
  start.min_left = min_left;
  start.min_right = min_right;
  start.max_results = static_cast<uint64_t>(flags.GetInt("max-results"));
  start.deadline_seconds = flags.GetDouble("deadline");
  start.max_memory_bytes = static_cast<uint64_t>(flags.GetInt("max-memory"));
  start.batch_results = static_cast<uint32_t>(flags.GetInt("batch"));

  Tally tally;
  std::atomic<int> next_session{0};
  std::atomic<uint64_t> worker_retries{0};
  std::atomic<uint64_t> worker_reconnects{0};

  auto worker = [&](int worker_id) {
    mbe::client::ClientOptions opts = copts;
    opts.backoff_seed =
        copts.backoff_seed + static_cast<uint64_t>(worker_id) * 7919;
    mbe::client::Client client(opts);
    while (next_session.fetch_add(1) < total_sessions) {
      const Clock::time_point t0 = Clock::now();
      auto outcome = client.Enumerate(start, /*sink=*/nullptr);
      const double ms = MsSince(t0, Clock::now());
      std::lock_guard<std::mutex> lock(tally.mu);
      if (outcome.ok()) {
        const auto& done = outcome.value().done;
        tally.latencies_ms.push_back(ms);
        tally.max_queue_wait_ns =
            std::max(tally.max_queue_wait_ns, done.queue_wait_ns);
        tally.attempts += outcome.value().attempts;
        const auto termination =
            static_cast<mbe::Termination>(done.termination);
        if (termination == mbe::Termination::kComplete) {
          if (verify && (outcome.value().digest != want_digest ||
                         done.results_emitted != want_count)) {
            std::fprintf(
                stderr,
                "DIGEST MISMATCH session %llu: got %016llx/%llu want "
                "%016llx/%llu\n",
                static_cast<unsigned long long>(done.session_id),
                static_cast<unsigned long long>(outcome.value().digest),
                static_cast<unsigned long long>(done.results_emitted),
                static_cast<unsigned long long>(want_digest),
                static_cast<unsigned long long>(want_count));
            ++tally.mismatches;
          }
        } else {
          ++tally.incomplete;
        }
        ++tally.completed;
      } else if (client.last_error() ==
                 mbe::client::ErrorKind::kDigestMismatch) {
        // The stream the server delivered disagrees with its own digest
        // — transport-level corruption, the headline failure mode.
        std::fprintf(stderr, "DIGEST MISMATCH (stream): %s\n",
                     outcome.status().ToString().c_str());
        ++tally.mismatches;
        ++tally.completed;
      } else {
        // Rejected (draining / busy after retries) or the connection is
        // terminally gone; the session never ran to a verified end.
        std::fprintf(stderr, "rejected: %s\n",
                     outcome.status().ToString().c_str());
        ++tally.rejected;
      }
      tally.finished.fetch_add(1);
    }
    worker_retries.fetch_add(client.retries());
    worker_reconnects.fetch_add(client.reconnects());
  };

  const Clock::time_point bench_start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(concurrent));
  for (int i = 0; i < concurrent; ++i) threads.emplace_back(worker, i);

  // Mid-traffic hot reload: after `reload_after` sessions finished, swap
  // the same graph in under a new epoch. In-flight sessions must keep
  // their engine; the digest check on every later session proves the
  // swapped-in engine enumerates identically.
  bool reload_fired = false;
  while (tally.finished.load() < total_sessions) {
    if (!reload_fired && reload_after > 0 &&
        tally.finished.load() >= reload_after) {
      reload_fired = true;
      auto reply = control.ReloadGraph(load);
      if (reply.ok()) {
        std::printf("reloaded '%s' mid-traffic (epoch %llu)\n",
                    reply.value().name.c_str(),
                    static_cast<unsigned long long>(reply.value().epoch));
        std::fflush(stdout);
      } else {
        std::fprintf(stderr, "mid-traffic reload failed: %s\n",
                     reply.status().ToString().c_str());
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = MsSince(bench_start, Clock::now()) / 1000.0;

  std::sort(tally.latencies_ms.begin(), tally.latencies_ms.end());
  const double p50 = Percentile(tally.latencies_ms, 0.50);
  const double p95 = Percentile(tally.latencies_ms, 0.95);
  const double p99 = Percentile(tally.latencies_ms, 0.99);
  double mean = 0;
  for (double v : tally.latencies_ms) mean += v;
  if (!tally.latencies_ms.empty()) {
    mean /= static_cast<double>(tally.latencies_ms.size());
  }

  std::printf(
      "%d sessions (%d concurrent): %d complete, %d interrupted, %d "
      "rejected, %d digest mismatches\n",
      total_sessions, concurrent, tally.completed - tally.incomplete,
      tally.incomplete, tally.rejected, tally.mismatches);
  std::printf(
      "latency ms: p50=%.1f p95=%.1f p99=%.1f mean=%.1f  throughput=%.1f "
      "sessions/s  max_queue_wait=%.1fms\n",
      p50, p95, p99, mean,
      wall_s > 0 ? static_cast<double>(tally.completed) / wall_s : 0,
      static_cast<double>(tally.max_queue_wait_ns) / 1e6);
  std::printf(
      "client: %llu attempts, %llu retries, %llu reconnects\n",
      static_cast<unsigned long long>(tally.attempts),
      static_cast<unsigned long long>(worker_retries.load()),
      static_cast<unsigned long long>(worker_reconnects.load()));

  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"pmbe_serve mixed workload\",\n"
                 "  \"dataset\": \"%s\",\n"
                 "  \"scale\": %g,\n"
                 "  \"algorithm\": \"%s\",\n"
                 "  \"sessions\": %d,\n"
                 "  \"concurrent\": %d,\n"
                 "  \"complete\": %d,\n"
                 "  \"interrupted\": %d,\n"
                 "  \"rejected\": %d,\n"
                 "  \"digest_mismatches\": %d,\n"
                 "  \"verified\": %s,\n"
                 "  \"retries\": %llu,\n"
                 "  \"reconnects\": %llu,\n"
                 "  \"latency_ms\": {\"p50\": %.2f, \"p95\": %.2f, "
                 "\"p99\": %.2f, \"mean\": %.2f},\n"
                 "  \"throughput_sessions_per_s\": %.2f,\n"
                 "  \"max_queue_wait_ms\": %.2f,\n"
                 "  \"wall_seconds\": %.2f\n"
                 "}\n",
                 spec.name.c_str(), flags.GetDouble("scale"),
                 mbe::AlgorithmName(algorithm), total_sessions, concurrent,
                 tally.completed - tally.incomplete, tally.incomplete,
                 tally.rejected, tally.mismatches,
                 verify && tally.mismatches == 0 ? "true" : "false",
                 static_cast<unsigned long long>(worker_retries.load()),
                 static_cast<unsigned long long>(worker_reconnects.load()),
                 p50, p95, p99, mean,
                 wall_s > 0 ? static_cast<double>(tally.completed) / wall_s
                            : 0,
                 static_cast<double>(tally.max_queue_wait_ns) / 1e6,
                 wall_s);
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
  }
  return tally.mismatches == 0 ? 0 : 1;
}
