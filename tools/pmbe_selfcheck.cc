// pmbe_selfcheck — differential fuzzing harness.
//
// Generates random bipartite graphs across a spread of families, sizes and
// densities, and cross-checks every algorithm, every MBET ablation
// configuration, and the parallel driver against each other (and against
// the brute-force oracle when the graph is small enough). Any mismatch
// prints the offending graph as an edge list and exits non-zero, so a
// failing case can be replayed with `pmbe --input`.
//
//   pmbe_selfcheck --rounds 200 --seed 1
//
// The default configuration runs in about a minute; leave it running with
// a large --rounds for a soak test.
//
// Robustness modes (docs/ROBUSTNESS.md):
//   --chaos        every round also runs under a randomized memory cap, a
//                  watchdog, and (in -DPMBE_FAULT_INJECTION=ON builds) a
//                  probabilistic fault schedule; the run must end typed
//                  with a valid prefix of the reference set.
//   --fault_sweep  deterministic countdown sweep over every registered
//                  fault point (fault builds only): each injection must
//                  yield kMemoryLimit/kInternal/kComplete, never a crash.

#include <algorithm>
#include <cstdio>
#include <string>

#include "api/mbe.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "graph/graph_io.h"
#include "util/fault.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/timer.h"

namespace {

using namespace mbe;

BipartiteGraph RandomGraph(util::Rng& rng) {
  const uint64_t family = rng.Below(4);
  const size_t nl = 2 + rng.Below(60);
  const size_t nr = 2 + rng.Below(40);
  const uint64_t seed = rng.Next();
  switch (family) {
    case 0:
      return gen::ErdosRenyi(nl, nr, 0.02 + rng.NextDouble() * 0.4, seed);
    case 1:
      return gen::PowerLaw(nl, nr, (nl + nr) * (1 + rng.Below(6)),
                           0.5 + rng.NextDouble() * 0.5,
                           0.5 + rng.NextDouble() * 0.5, seed);
    case 2: {
      BipartiteGraph base =
          gen::ErdosRenyi(nl, nr, 0.02 + rng.NextDouble() * 0.1, seed);
      // Block sizes in [2, min(side, 7)].
      const size_t bl = 2 + rng.Below(std::min<size_t>(nl, 7) - 1);
      const size_t br = 2 + rng.Below(std::min<size_t>(nr, 7) - 1);
      return gen::PlantBicliques(base, 1 + rng.Below(3), bl, br, seed + 1,
                                 nullptr);
    }
    default:
      return gen::BlockCommunity(nl, nr, 1 + rng.Below(4),
                                 0.3 + rng.NextDouble() * 0.5,
                                 rng.NextDouble() * 0.05, seed);
  }
}

int Fail(const BipartiteGraph& graph, const std::string& what,
         const std::string& detail, uint64_t round) {
  std::fprintf(stderr, "SELF-CHECK FAILURE (round %llu): %s\n  %s\n",
               static_cast<unsigned long long>(round), what.c_str(),
               detail.c_str());
  const std::string dump = "/tmp/pmbe_selfcheck_failure.txt";
  if (SaveEdgeList(graph, dump).ok()) {
    std::fprintf(stderr, "  offending graph written to %s\n", dump.c_str());
  }
  return 1;
}

// True when an interrupted-or-complete run is acceptable under injected
// faults / memory caps: typed termination, nothing else.
bool TypedTermination(Termination t) {
  return t == Termination::kComplete || t == Termination::kMemoryLimit ||
         t == Termination::kInternal;
}

// Runs one enumeration under robustness options and checks the contract:
// OK status, typed termination, every emitted biclique in `reference`.
// Returns a non-empty diagnostic on violation.
std::string CheckedChaosRun(const BipartiteGraph& graph,
                            const std::vector<Biclique>& reference,
                            const Options& options) {
  CollectSink sink;
  RunResult run;
  const util::Status status = Enumerate(graph, options, &sink, &run);
  if (!status.ok()) {
    return "status not OK: " + status.ToString();
  }
  if (!TypedTermination(run.termination)) {
    return std::string("untyped termination: ") +
           TerminationName(run.termination);
  }
  if (options.max_memory_bytes > 0 &&
      run.stats.peak_charged_bytes > options.max_memory_bytes) {
    return "peak_charged_bytes " +
           std::to_string(run.stats.peak_charged_bytes) + " exceeds cap " +
           std::to_string(options.max_memory_bytes);
  }
  const std::vector<Biclique> got = sink.TakeSorted();
  if (run.termination == Termination::kComplete &&
      got.size() != reference.size()) {
    return "complete run returned " + std::to_string(got.size()) +
           " bicliques, reference has " + std::to_string(reference.size());
  }
  for (const Biclique& b : got) {
    if (!std::binary_search(reference.begin(), reference.end(), b)) {
      return "emitted biclique not in the reference set: " + ToString(b);
    }
  }
  return "";
}

#if defined(PMBE_FAULT_INJECTION)

// Deterministic fault matrix: for every registered point, measure how
// often the site fires on a fixed graph, then sweep countdowns across that
// range. Returns 0 on success.
int RunFaultSweep() {
  auto& registry = util::FaultRegistry::Global();
  const BipartiteGraph graph = gen::ErdosRenyi(24, 24, 0.4, 7);
  CollectSink reference_sink;
  if (!Enumerate(graph, Options(), &reference_sink, nullptr).ok()) return 1;
  const std::vector<Biclique> reference = reference_sink.TakeSorted();

  Options options;
  options.threads = 2;
  options.watchdog_stall_seconds = 1;  // outlasts the worker.stall nap

  for (const char* point : util::kFaultPoints) {
    if (std::string(point) == "loader.line") {
      // Exercised through the loader, not Enumerate.
      registry.ArmCountdown(point, 1);
      auto loaded = ParseEdgeListText("0 0\n1 1\n");
      registry.Disarm();
      if (loaded.ok()) {
        std::fprintf(stderr,
                     "FAULT-SWEEP FAILURE: loader.line injection was not "
                     "surfaced as an error\n");
        return 1;
      }
      continue;
    }
    // Pass 1: count how often this site fires (armed, unreachable nth).
    registry.ResetHits();
    registry.ArmCountdown(point, ~uint64_t{0});
    {
      // The armed-but-unreachable countdown must not fail the run.
      CountSink sink;
      RunResult run;
      if (!Enumerate(graph, options, &sink, &run).ok() || !run.complete()) {
        std::fprintf(stderr,
                     "FAULT-SWEEP FAILURE: point %s: armed-idle run did not "
                     "complete\n",
                     point);
        return 1;
      }
    }
    const uint64_t hits = registry.hits(point);
    registry.Disarm();
    // Pass 2: sweep the countdown through the observed range.
    const uint64_t sweep = std::min<uint64_t>(hits, 6);
    for (uint64_t nth = 1; nth <= sweep; ++nth) {
      registry.ArmCountdown(point, nth);
      const std::string violation = CheckedChaosRun(graph, reference, options);
      registry.Disarm();
      if (!violation.empty()) {
        std::fprintf(stderr,
                     "FAULT-SWEEP FAILURE: point %s countdown %llu: %s\n",
                     point, static_cast<unsigned long long>(nth),
                     violation.c_str());
        return 1;
      }
    }
    std::printf("fault sweep: %-14s %llu site hits, %llu countdowns OK\n",
                point, static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(sweep));
  }
  std::printf("fault sweep passed (every registered point, typed "
              "terminations, valid prefixes)\n");
  return 0;
}

#endif  // PMBE_FAULT_INJECTION

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddInt("rounds", 150, "number of random graphs to check");
  flags.AddInt("seed", 1, "master seed");
  flags.AddBool("verbose", false, "log each round");
  flags.AddBool("chaos", false,
                "also run each round under a random memory cap, a watchdog, "
                "and (fault builds) a probabilistic fault schedule");
  flags.AddBool("fault_sweep", false,
                "run the deterministic countdown sweep over every fault "
                "point, then exit (needs -DPMBE_FAULT_INJECTION=ON)");
  flags.Parse(argc, argv);

  if (flags.GetBool("fault_sweep")) {
#if defined(PMBE_FAULT_INJECTION)
    return RunFaultSweep();
#else
    std::fprintf(stderr,
                 "error: --fault_sweep requires a -DPMBE_FAULT_INJECTION=ON "
                 "build (fault points are compiled out of this binary)\n");
    return 2;
#endif
  }
#if !defined(PMBE_FAULT_INJECTION)
  if (flags.GetBool("chaos")) {
    std::fprintf(stderr,
                 "note: fault points are compiled out of this binary; "
                 "--chaos covers memory caps and watchdogs only\n");
  }
#endif

  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  const int64_t rounds = flags.GetInt("rounds");
  util::WallTimer timer;
  uint64_t total_bicliques = 0;

  for (int64_t round = 0; round < rounds; ++round) {
    BipartiteGraph graph = RandomGraph(rng);

    // Reference result from MBET defaults.
    CollectSink reference_sink;
    if (util::Status status = Enumerate(graph, Options(), &reference_sink,
                                        nullptr);
        !status.ok()) {
      return Fail(graph, "reference enumeration failed",
                  status.ToString().c_str(), round);
    }
    const std::vector<Biclique> reference = reference_sink.TakeSorted();
    total_bicliques += reference.size();

    // Structural validity of every reference biclique.
    const std::string validity = ValidateResultSet(graph, reference);
    if (!validity.empty()) {
      return Fail(graph, "MBET produced an invalid result set", validity,
                  round);
    }

    // Oracle check when feasible.
    if (graph.num_right() <= 14 || graph.num_left() <= 14) {
      BipartiteGraph oracle_view =
          graph.num_right() <= 14 ? graph : graph.Swapped();
      std::vector<Biclique> expected = BruteForceMbe(oracle_view);
      if (graph.num_right() > 14) {
        for (Biclique& b : expected) std::swap(b.left, b.right);
        std::sort(expected.begin(), expected.end());
      }
      const std::string diff = DiffResultSets(expected, reference);
      if (!diff.empty()) {
        return Fail(graph, "MBET disagrees with the brute-force oracle", diff,
                    round);
      }
    }

    // Differential checks: fingerprints across engines/configurations.
    FingerprintSink ref_print;
    for (const Biclique& b : reference) ref_print.Emit(b.left, b.right);

    struct Config {
      const char* label;
      Options options;
    };
    std::vector<Config> configs;
    for (Algorithm algorithm :
         {Algorithm::kMbetM, Algorithm::kMbea, Algorithm::kImbea,
          Algorithm::kOombeaLite, Algorithm::kBbk}) {
      Options o;
      o.algorithm = algorithm;
      if (algorithm == Algorithm::kOombeaLite) {
        o.order = VertexOrder::kUnilateralAsc;
      }
      configs.push_back({AlgorithmName(algorithm), o});
    }
    {
      // Both degenerate densities of BBK's adaptive L' representation.
      Options o;
      o.algorithm = Algorithm::kBbk;
      o.mbet.bitmap_density = 0.0;
      configs.push_back({"BBK forced bitmap", o});
    }
    {
      Options o;
      o.algorithm = Algorithm::kBbk;
      o.mbet.bitmap_density = 2.0;
      configs.push_back({"BBK bitmap disabled", o});
    }
    {
      Options o;
      o.algorithm = Algorithm::kBbk;
      o.threads = 4;
      configs.push_back({"BBK x4", o});
    }
    {
      Options o;
      o.mbet.use_trie = false;
      o.mbet.use_aggregation = false;
      configs.push_back({"MBET w/o trie+agg", o});
    }
    {
      Options o;
      o.mbet.prune_q = false;
      o.order = VertexOrder::kRandom;
      o.seed = rng.Next();
      configs.push_back({"MBET random order w/o Q-prune", o});
    }
    {
      // Bitmap classification forced onto every eligible node. Disabling
      // the trie removes the higher-priority classifier so the bitmap
      // kernels actually run everywhere, not just on trie-rejected nodes.
      Options o;
      o.mbet.bitmap_density = 0.0;
      o.mbet.use_trie = false;
      configs.push_back({"MBET forced bitmap w/o trie", o});
    }
    {
      Options o;
      o.mbet.bitmap_density = 0.0;
      configs.push_back({"MBET forced bitmap", o});
    }
    {
      Options o;
      o.mbet.bitmap_density = 2.0;
      configs.push_back({"MBET bitmap disabled", o});
    }
    {
      // Per-candidate classification (the pre-batching code path).
      Options o;
      o.mbet.batch_width = 1;
      configs.push_back({"MBET batch off", o});
    }
    {
      // Widest frontier windows, on top of forced bitmaps so the
      // and_count_batch kernel runs (not just the trie batch walk).
      Options o;
      o.mbet.batch_width = 64;
      o.mbet.bitmap_density = 0.0;
      configs.push_back({"MBET batch wide forced bitmap", o});
    }
    {
      // Whatever the tuner picks must stay output-identical.
      Options o;
      o.auto_tune = true;
      configs.push_back({"MBET auto-tuned", o});
    }
    {
      Options o;
      o.threads = 4;
      configs.push_back({"MBET x4", o});
    }
    // MineLMBC is exponential-cost on its own; keep it to small graphs.
    if (graph.num_edges() <= 400) {
      Options o;
      o.algorithm = Algorithm::kMineLmbc;
      configs.push_back({"MineLMBC", o});
    }

    for (const Config& config : configs) {
      FingerprintSink sink;
      if (util::Status status = Enumerate(graph, config.options, &sink,
                                          nullptr);
          !status.ok()) {
        return Fail(graph, "engine run failed", status.ToString().c_str(),
                    round);
      }
      if (sink.Digest() != ref_print.Digest() ||
          sink.count() != reference.size()) {
        char detail[160];
        std::snprintf(detail, sizeof(detail),
                      "%s: %llu bicliques vs reference %zu", config.label,
                      static_cast<unsigned long long>(sink.count()),
                      reference.size());
        return Fail(graph, "engine disagreement", detail, round);
      }
    }

    // Run-control check: a budget-truncated run must stop with the right
    // termination reason and emit a valid prefix of the reference set
    // (exercises the cancellation path under sanitizers every round).
    if (reference.size() >= 4) {
      const uint64_t cap = reference.size() / 2;
      for (unsigned threads : {1u, 4u}) {
        Options o;
        o.threads = threads;
        o.control.max_results = cap;
        CollectSink truncated_sink;
        RunResult run;
        const util::Status status =
            Enumerate(graph, o, &truncated_sink, &run);
        if (!status.ok()) {
          return Fail(graph, "controlled run rejected valid options",
                      status.ToString(), round);
        }
        const std::vector<Biclique> prefix = truncated_sink.TakeSorted();
        char detail[160];
        if (run.termination != Termination::kBudget ||
            prefix.size() != cap) {
          std::snprintf(detail, sizeof(detail),
                        "threads=%u cap=%llu: got %zu bicliques, "
                        "termination=%s",
                        threads, static_cast<unsigned long long>(cap),
                        prefix.size(), TerminationName(run.termination));
          return Fail(graph, "result budget not honored", detail, round);
        }
        for (const Biclique& b : prefix) {
          if (!std::binary_search(reference.begin(), reference.end(), b)) {
            std::snprintf(detail, sizeof(detail),
                          "threads=%u: emitted biclique not in the "
                          "reference set: %s",
                          threads, ToString(b).c_str());
            return Fail(graph, "truncated run emitted an invalid prefix",
                        detail, round);
          }
        }
      }
    }

    // Chaos pass: the same graph under a randomized memory cap, a
    // watchdog, and (fault builds) a probabilistic fault schedule. The
    // contract is weaker than the differential checks — the run may stop
    // early — but it must stop *typed* and with a valid prefix.
    if (flags.GetBool("chaos")) {
      Options chaos;
      chaos.threads = 1 + rng.Below(4);
      chaos.watchdog_stall_seconds = 1;
      // Caps from starving (16 KiB) to comfortable (2 MiB).
      chaos.max_memory_bytes = uint64_t{1} << (14 + rng.Below(8));
#if defined(PMBE_FAULT_INJECTION)
      util::FaultRegistry::Global().ArmProbability(0.01, rng.Next());
#endif
      const std::string violation = CheckedChaosRun(graph, reference, chaos);
#if defined(PMBE_FAULT_INJECTION)
      util::FaultRegistry::Global().Disarm();
#endif
      if (!violation.empty()) {
        return Fail(graph, "chaos run violated the robustness contract",
                    violation, round);
      }
    }

    if (flags.GetBool("verbose")) {
      std::printf("round %lld: %s -> %zu bicliques OK\n",
                  static_cast<long long>(round), graph.Summary().c_str(),
                  reference.size());
    }
  }

  std::printf(
      "self-check passed: %lld rounds, %llu bicliques cross-checked, %.1fs "
      "(kernel dispatch: %s)\n",
      static_cast<long long>(rounds),
      static_cast<unsigned long long>(total_bicliques), timer.Seconds(),
      simd::DispatchLevelName(simd::ActiveLevel()));
  return 0;
}
