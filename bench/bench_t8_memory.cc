// T8 — memory table: peak tracked working set of MBET (stored locals +
// trie) vs MBETM (recompute mode) vs a naive bound (what pre-allocating
// per-node copies would take: depth x (|L|+|R|+|C|) ints). Expected shape:
// MBETM an order of magnitude below MBET; both far below the naive bound.

#include <cstdio>

#include "bench/harness.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace mbe;
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.Parse(argc, argv);
  const double scale = flags.GetDouble("scale");
  const double budget = flags.GetDouble("budget");

  bench::PrintBanner("T8", "peak working set: MBET vs MBETM vs naive bound");
  bench::Table table({"dataset", "graph (CSR)", "MBET peak", "MBETM peak",
                      "naive bound", "MBET time", "MBETM time"});

  for (const std::string& name : bench::ResolveSuite(flags.GetString("suite"))) {
    BipartiteGraph graph = gen::Materialize(gen::FindDataset(name), scale);
    GraphStats gs = ComputeStats(graph, /*with_two_hop=*/true);

    Options mbet;
    bench::RunOutcome r_mbet = bench::TimedRun(graph, mbet, budget);
    Options mbetm;
    mbetm.algorithm = Algorithm::kMbetM;
    bench::RunOutcome r_mbetm = bench::TimedRun(graph, mbetm, budget);

    // Naive bound: every active node on a subtree path keeps its own
    // (L, R, C) copy — D(V) levels of (D(V) + 2 * D2(V)) vertex ids.
    const uint64_t naive =
        static_cast<uint64_t>(gs.max_right_degree) *
        (gs.max_right_degree + 2ull * gs.max_right_two_hop) * sizeof(VertexId);

    table.AddRow({name, util::HumanBytes(graph.MemoryBytes()),
                  util::HumanBytes(r_mbet.peak_bytes),
                  util::HumanBytes(r_mbetm.peak_bytes),
                  util::HumanBytes(naive), bench::TimeCell(r_mbet, budget),
                  bench::TimeCell(r_mbetm, budget)});
  }
  bench::EmitTable(table, flags);
  return 0;
}
