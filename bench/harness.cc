#include "bench/harness.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <thread>

#include "util/simd.h"
#include "util/stats.h"
#include "util/timer.h"

namespace mbe::bench {

HostInfo QueryHost() {
  HostInfo info;
  info.num_cpus = std::thread::hardware_concurrency();
  info.cpu_model = "unknown";
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        size_t start = line.find_first_not_of(" \t", colon + 1);
        if (start != std::string::npos) info.cpu_model = line.substr(start);
      }
      break;
    }
  }
  info.simd_level = simd::DispatchLevelName(simd::ActiveLevel());
#ifdef NDEBUG
  info.build_type = "release";
#else
  info.build_type = "debug";
#endif
  return info;
}

std::string JsonQuote(const std::string& text) {
  std::string quoted = "\"";
  for (char ch : text) {
    switch (ch) {
      case '"': quoted += "\\\""; break;
      case '\\': quoted += "\\\\"; break;
      case '\n': quoted += "\\n"; break;
      case '\t': quoted += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", ch);
          quoted += hex;
        } else {
          quoted += ch;
        }
    }
  }
  quoted += '"';
  return quoted;
}

void WriteJsonContext(std::FILE* out, const std::string& executable,
                      const std::string& flags_summary,
                      const std::string& note) {
  char date[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  if (gmtime_r(&now, &tm_utc) != nullptr) {
    std::strftime(date, sizeof(date), "%Y-%m-%d", &tm_utc);
  }
  const HostInfo host = QueryHost();
  std::fprintf(out, "  \"context\": {\n");
  std::fprintf(out, "    \"date\": %s,\n", JsonQuote(date).c_str());
  std::fprintf(out, "    \"executable\": %s,\n",
               JsonQuote(executable).c_str());
  std::fprintf(out, "    \"flags\": %s,\n", JsonQuote(flags_summary).c_str());
  std::fprintf(out, "    \"num_cpus\": %u,\n", host.num_cpus);
  std::fprintf(out, "    \"cpu_model\": %s,\n",
               JsonQuote(host.cpu_model).c_str());
  std::fprintf(out, "    \"simd_level\": %s,\n",
               JsonQuote(host.simd_level).c_str());
  std::fprintf(out, "    \"library_build_type\": %s,\n",
               JsonQuote(host.build_type).c_str());
  std::fprintf(out, "    \"note\": %s\n", JsonQuote(note).c_str());
  std::fprintf(out, "  }");
}

bool JsonRecordingAllowed(const util::FlagParser& flags) {
  if (flags.GetString("json").empty()) return true;
  const HostInfo host = QueryHost();
  if (host.build_type == "release") return true;
  if (flags.GetBool("allow_debug")) {
    std::fprintf(stderr,
                 "warning: recording JSON from a %s build (--allow_debug); "
                 "the artifact is tagged \"library_build_type\": \"%s\" and "
                 "must not be committed as a baseline\n",
                 host.build_type.c_str(), host.build_type.c_str());
    return true;
  }
  std::fprintf(stderr,
               "error: refusing to record %s from a %s build — unoptimized "
               "timings are not comparable to the committed BENCH_*.json "
               "baselines. Rebuild with -DCMAKE_BUILD_TYPE=Release, or pass "
               "--allow_debug for a throwaway recording.\n",
               flags.GetString("json").c_str(), host.build_type.c_str());
  return false;
}

RunOutcome TimedRun(const BipartiteGraph& graph, const Options& options,
                    double budget_seconds, uint64_t max_results) {
  RunOutcome outcome;
  CountSink counter;
  BudgetSink budget(&counter, max_results, budget_seconds);

  Options run_options = options;
  util::MemoryTracker tracker;
  if (options.algorithm == Algorithm::kMbet ||
      options.algorithm == Algorithm::kMbetM) {
    run_options.mbet.memory = &tracker;
  }

  RunResult run;
  // Bench configs are static and valid; a failure here is a harness bug.
  const util::Status status = Enumerate(graph, run_options, &budget, &run);
  PMBE_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
  // A run is truncated iff one of the budgets tripped during it.
  outcome.completed = true;
  if (budget_seconds > 0 && run.seconds >= budget_seconds) {
    outcome.completed = false;
  }
  if (max_results > 0 && budget.emitted() >= max_results) {
    outcome.completed = false;
  }
  outcome.seconds = run.seconds;
  outcome.bicliques = counter.count();
  outcome.stats = run.stats;
  outcome.peak_bytes = tracker.peak();
  return outcome;
}

std::string TimeCell(const RunOutcome& outcome, double budget_seconds) {
  if (!outcome.completed) {
    return ">" + util::HumanSeconds(budget_seconds);
  }
  return util::HumanSeconds(outcome.seconds);
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  PMBE_CHECK_MSG(cells.size() == headers_.size(),
                 "row has %zu cells, table has %zu columns", cells.size(),
                 headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s", static_cast<int>(widths[c] + 2), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  for (size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write CSV to %s\n", path.c_str());
    return false;
  }
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      const bool needs_quotes =
          row[c].find_first_of(",\"\n") != std::string::npos;
      if (needs_quotes) {
        out << '"';
        for (char ch : row[c]) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << row[c];
      }
    }
    out << "\n";
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
  return static_cast<bool>(out);
}

void EmitTable(const Table& table, const util::FlagParser& flags) {
  table.Print();
  const std::string csv = flags.GetString("csv");
  if (!csv.empty() && table.WriteCsv(csv)) {
    std::printf("\n(csv written to %s)\n", csv.c_str());
  }
}

void PrintBanner(const std::string& experiment_id, const std::string& title) {
  const HostInfo host = QueryHost();
  std::printf("==============================================================\n");
  std::printf("[%s] %s\n", experiment_id.c_str(), title.c_str());
  std::printf("host: %u cpus, %s, simd %s, %s build\n", host.num_cpus,
              host.cpu_model.c_str(), host.simd_level.c_str(),
              host.build_type.c_str());
  std::printf("datasets: synthetic stand-ins (see DESIGN.md S3); compare\n");
  std::printf("shapes (who wins, by what factor), not absolute numbers.\n");
  std::printf("==============================================================\n");
}

void AddCommonFlags(util::FlagParser* flags) {
  flags->AddString("suite", "default",
                   "dataset suite: default | full | large | comma list");
  flags->AddDouble("scale", 1.0, "shrink factor applied to every dataset");
  flags->AddDouble("budget", 20.0,
                   "per-run time budget in seconds (0 = unlimited)");
  flags->AddInt("threads", 1, "worker threads for parallel-capable runs");
  flags->AddString("csv", "", "also write the table as CSV to this path");
  flags->AddString("json", "",
                   "also record results + host context as JSON to this path "
                   "(the bench/BENCH_*.json artifact format)");
  flags->AddBool("allow_debug", false,
                 "record --json even from a non-release build (refused by "
                 "default: debug timings are not comparable baselines)");
}

std::vector<std::string> ResolveSuite(const std::string& suite) {
  if (suite == "default") return gen::DefaultSuite();
  if (suite == "full") return gen::FullSuite();
  if (suite == "large") {
    std::vector<std::string> names;
    for (const gen::DatasetSpec& spec : gen::AllDatasets()) {
      if (spec.large) names.push_back(spec.name);
    }
    return names;
  }
  // Comma-separated list.
  std::vector<std::string> names;
  std::string current;
  for (char ch : suite) {
    if (ch == ',') {
      if (!current.empty()) names.push_back(current);
      current.clear();
    } else {
      current.push_back(ch);
    }
  }
  if (!current.empty()) names.push_back(current);
  for (const std::string& name : names) gen::FindDataset(name);  // validate
  return names;
}

}  // namespace mbe::bench
