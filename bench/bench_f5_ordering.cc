// F5 — vertex-ordering sensitivity: MBET runtime under every right-side
// order. Expected shape: degree-ascending / two-hop / unilateral orders
// clearly ahead of input or random order; degree-descending worst.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace mbe;
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.Parse(argc, argv);
  const double scale = flags.GetDouble("scale");
  const double budget = flags.GetDouble("budget");

  bench::PrintBanner("F5", "vertex-ordering sensitivity (MBET)");

  const VertexOrder orders[] = {
      VertexOrder::kNone,       VertexOrder::kRandom,
      VertexOrder::kDegreeDesc, VertexOrder::kDegreeAsc,
      VertexOrder::kTwoHopAsc,  VertexOrder::kUnilateralAsc,
  };
  std::vector<std::string> headers = {"dataset"};
  for (VertexOrder order : orders) headers.push_back(VertexOrderName(order));
  bench::Table table(headers);

  for (const std::string& name : bench::ResolveSuite(flags.GetString("suite"))) {
    BipartiteGraph graph = gen::Materialize(gen::FindDataset(name), scale);
    std::vector<std::string> row = {name};
    for (VertexOrder order : orders) {
      Options options;
      options.order = order;
      options.seed = 7;
      bench::RunOutcome run = bench::TimedRun(graph, options, budget);
      row.push_back(bench::TimeCell(run, budget));
    }
    table.AddRow(std::move(row));
  }
  bench::EmitTable(table, flags);
  return 0;
}
