// F4 — ablation figure: MBET with each technique disabled in turn.
// Columns: full MBET, without trie batching (direct per-candidate scans),
// without equivalence-class aggregation, without Q filtering, and the
// MBETM space mode. Also reports the trie's probe savings
// (probes / unshared-scan size; lower is better).

#include <cstdio>

#include "bench/harness.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace mbe;
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.Parse(argc, argv);
  const double scale = flags.GetDouble("scale");
  const double budget = flags.GetDouble("budget");

  bench::PrintBanner("F4", "ablation of MBET techniques");
  bench::Table table({"dataset", "MBET", "w/o trie", "w/o aggregation",
                      "w/o both", "w/o Q-filter", "MBETM",
                      "trie probe ratio"});

  for (const std::string& name : bench::ResolveSuite(flags.GetString("suite"))) {
    BipartiteGraph graph = gen::Materialize(gen::FindDataset(name), scale);

    Options full;
    bench::RunOutcome r_full = bench::TimedRun(graph, full, budget);

    Options no_trie;
    no_trie.mbet.use_trie = false;
    bench::RunOutcome r_no_trie = bench::TimedRun(graph, no_trie, budget);

    Options no_agg;
    no_agg.mbet.use_aggregation = false;
    bench::RunOutcome r_no_agg = bench::TimedRun(graph, no_agg, budget);

    Options no_both;
    no_both.mbet.use_trie = false;
    no_both.mbet.use_aggregation = false;
    bench::RunOutcome r_no_both = bench::TimedRun(graph, no_both, budget);

    Options no_q;
    no_q.mbet.prune_q = false;
    bench::RunOutcome r_no_q = bench::TimedRun(graph, no_q, budget);

    Options mbetm;
    mbetm.algorithm = Algorithm::kMbetM;
    bench::RunOutcome r_mbetm = bench::TimedRun(graph, mbetm, budget);

    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.3f",
                  r_full.stats.local_scan_size
                      ? static_cast<double>(r_full.stats.trie_probes) /
                            static_cast<double>(r_full.stats.local_scan_size)
                      : 0.0);

    table.AddRow({name, bench::TimeCell(r_full, budget),
                  bench::TimeCell(r_no_trie, budget),
                  bench::TimeCell(r_no_agg, budget),
                  bench::TimeCell(r_no_both, budget),
                  bench::TimeCell(r_no_q, budget),
                  bench::TimeCell(r_mbetm, budget), ratio});
  }
  bench::EmitTable(table, flags);
  return 0;
}
