#ifndef PMBE_BENCH_HARNESS_H_
#define PMBE_BENCH_HARNESS_H_

#include <cstdio>
#include <string>
#include <vector>

#include "api/mbe.h"
#include "gen/registry.h"
#include "util/flags.h"
#include "util/memory.h"

/// \file
/// Shared plumbing for the experiment binaries: timed runs with budgets,
/// fixed-width table printing, and common flags. Every experiment binary
/// (one per table/figure, see DESIGN.md §4) prints a self-describing header
/// plus a paper-style table to stdout and exits 0 even when individual runs
/// hit their time budget (reported as ">budget").

namespace mbe::bench {

/// Host metadata stamped into the bench banner and the recorded JSON
/// artifacts (bench/BENCH_*.json): absolute timings are only comparable
/// against the host that produced them, so every recording carries it.
struct HostInfo {
  unsigned num_cpus = 0;      ///< std::thread::hardware_concurrency()
  std::string cpu_model;      ///< /proc/cpuinfo "model name" ("unknown" off-Linux)
  std::string simd_level;     ///< active kernel dispatch level (scalar/sse42/avx2)
  std::string build_type;     ///< "release" (NDEBUG) or "debug"
};

/// Queries the current host/build. Never fails; unknown fields degrade to
/// "unknown" / 0.
HostInfo QueryHost();

/// Quotes + escapes a string as a JSON string literal (including the
/// surrounding double quotes).
std::string JsonQuote(const std::string& text);

/// Writes the shared `"context"` JSON object (indented two spaces, no
/// trailing comma): ISO date, executable, flag summary, the QueryHost()
/// fields, and a free-form note.
void WriteJsonContext(std::FILE* out, const std::string& executable,
                      const std::string& flags_summary,
                      const std::string& note);

/// Gate for recording a `--json` artifact: true when recording should
/// proceed. Debug/unoptimized builds produce timings that are not
/// comparable to the committed bench/BENCH_*.json baselines, so a
/// non-release build is refused (with an explanatory message on stderr)
/// unless `--allow_debug` was passed — in which case a warning is printed
/// and the artifact will carry `"library_build_type": "debug"` for CI to
/// flag. Returns true trivially when `--json` was not requested.
bool JsonRecordingAllowed(const util::FlagParser& flags);

/// Outcome of a single timed enumeration run.
struct RunOutcome {
  bool completed = false;  ///< false when the time/result budget was hit
  double seconds = 0.0;    ///< enumeration wall time
  uint64_t bicliques = 0;  ///< bicliques emitted (possibly truncated)
  EnumStats stats;
  uint64_t peak_bytes = 0;  ///< peak tracked working set (MBET family only)
};

/// Runs `options` on `graph` counting results, stopping at
/// `budget_seconds` (0 = unlimited) or `max_results` (0 = unlimited).
RunOutcome TimedRun(const BipartiteGraph& graph, const Options& options,
                    double budget_seconds, uint64_t max_results = 0);

/// Formats a timing cell: "12.3ms", or ">5s" when the run was truncated.
std::string TimeCell(const RunOutcome& outcome, double budget_seconds);

/// Fixed-width console table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  /// Prints the header, a rule, and all rows, right-padding each column.
  void Print() const;
  /// Writes the table as CSV (RFC-4180-style quoting) for plotting.
  /// Returns false (with a message on stderr) if the file cannot be
  /// written.
  bool WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print + optional CSV dump controlled by the common `--csv` flag.
void EmitTable(const Table& table, const util::FlagParser& flags);

/// Prints the experiment banner (id, what it reproduces, substitution
/// note).
void PrintBanner(const std::string& experiment_id, const std::string& title);

/// Registers the flags common to all experiment binaries (--suite,
/// --scale, --budget, --threads).
void AddCommonFlags(util::FlagParser* flags);

/// Resolves --suite ("default", "full", "large", or a comma list of
/// dataset names) into dataset names.
std::vector<std::string> ResolveSuite(const std::string& suite);

}  // namespace mbe::bench

#endif  // PMBE_BENCH_HARNESS_H_
