// F7 — parallel speedup: MBET under 1..N threads with dynamic
// (shared-counter) vs static (pre-partitioned) scheduling, plus parallel
// iMBEA (the ParMBE stand-in). Expected shape: near-linear dynamic
// speedup to the core count; static partitioning stalls on skewed
// datasets because one block holds the giant subtrees.

#include <cstdio>
#include <thread>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace mbe;
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.Parse(argc, argv);
  const double scale = flags.GetDouble("scale");
  const double budget = flags.GetDouble("budget");

  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  std::vector<unsigned> thread_counts = {1, 2, 4};
  if (hw >= 8) thread_counts.push_back(8);
  if (hw > 8) thread_counts.push_back(hw);

  bench::PrintBanner("F7", "parallel speedup and scheduling discipline");
  std::vector<std::string> headers = {"dataset", "config"};
  for (unsigned t : thread_counts) headers.push_back("T=" + std::to_string(t));
  bench::Table table(headers);

  struct Config {
    const char* label;
    Algorithm algorithm;
    Scheduling scheduling;
  };
  const Config configs[] = {
      {"MBET dynamic", Algorithm::kMbet, Scheduling::kDynamic},
      {"MBET static", Algorithm::kMbet, Scheduling::kStatic},
      {"ParMBE (iMBEA)", Algorithm::kImbea, Scheduling::kDynamic},
  };

  for (const std::string& name : bench::ResolveSuite(flags.GetString("suite"))) {
    BipartiteGraph graph = gen::Materialize(gen::FindDataset(name), scale);
    for (const Config& config : configs) {
      std::vector<std::string> row = {name, config.label};
      for (unsigned threads : thread_counts) {
        Options options;
        options.algorithm = config.algorithm;
        options.threads = threads;
        options.scheduling = config.scheduling;
        bench::RunOutcome run = bench::TimedRun(graph, options, budget);
        row.push_back(bench::TimeCell(run, budget));
      }
      table.AddRow(std::move(row));
    }
  }
  bench::EmitTable(table, flags);
  return 0;
}
