// F7 — parallel speedup: MBET under 1..N threads with dynamic
// (shared-counter) vs static (pre-partitioned) vs stealing (per-worker
// deques + subtree splitting) scheduling, plus parallel iMBEA (the ParMBE
// stand-in). Expected shape: near-linear dynamic/stealing speedup to the
// core count; static partitioning stalls on skewed datasets because one
// block holds the giant subtrees; stealing additionally splits those giant
// subtrees, which dynamic cannot (visible in the counters table and in the
// worker busy share even when wall-clock parallelism is unavailable).

#include <cstdio>
#include <thread>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace mbe;
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.Parse(argc, argv);
  const double scale = flags.GetDouble("scale");
  const double budget = flags.GetDouble("budget");

  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  std::vector<unsigned> thread_counts = {1, 2, 4};
  if (hw >= 8) thread_counts.push_back(8);
  if (hw > 8) thread_counts.push_back(hw);
  const unsigned max_threads = thread_counts.back();

  bench::PrintBanner("F7", "parallel speedup and scheduling discipline");
  std::vector<std::string> headers = {"dataset", "config"};
  for (unsigned t : thread_counts) headers.push_back("T=" + std::to_string(t));
  bench::Table table(headers);
  // Scheduler counters at the highest thread count: load balance is the
  // signal that survives even on machines without enough cores for
  // wall-clock speedup (busy share ~1.0 means no worker starved).
  bench::Table counters({"dataset", "config", "steals", "splits", "flushes",
                         "busy_share"});

  struct Config {
    const char* label;
    Algorithm algorithm;
    Scheduling scheduling;
  };
  const Config configs[] = {
      {"MBET dynamic", Algorithm::kMbet, Scheduling::kDynamic},
      {"MBET static", Algorithm::kMbet, Scheduling::kStatic},
      {"MBET stealing", Algorithm::kMbet, Scheduling::kStealing},
      {"ParMBE (iMBEA)", Algorithm::kImbea, Scheduling::kDynamic},
      {"ParMBE stealing", Algorithm::kImbea, Scheduling::kStealing},
  };

  for (const std::string& name : bench::ResolveSuite(flags.GetString("suite"))) {
    BipartiteGraph graph = gen::Materialize(gen::FindDataset(name), scale);
    for (const Config& config : configs) {
      std::vector<std::string> row = {name, config.label};
      for (unsigned threads : thread_counts) {
        Options options;
        options.algorithm = config.algorithm;
        options.threads = threads;
        options.scheduling = config.scheduling;
        bench::RunOutcome run = bench::TimedRun(graph, options, budget);
        row.push_back(bench::TimeCell(run, budget));
        if (threads == max_threads) {
          const double busy = static_cast<double>(run.stats.busy_ns);
          const double total = busy + static_cast<double>(run.stats.idle_ns);
          char share[32];
          std::snprintf(share, sizeof(share), "%.3f",
                        total > 0 ? busy / total : 1.0);
          counters.AddRow({name, config.label,
                           std::to_string(run.stats.steals),
                           std::to_string(run.stats.split_tasks),
                           std::to_string(run.stats.sink_flushes), share});
        }
      }
      table.AddRow(std::move(row));
    }
  }
  bench::EmitTable(table, flags);
  std::printf("\nscheduler counters at T=%u:\n", max_threads);
  counters.Print();
  return 0;
}
