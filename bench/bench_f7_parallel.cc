// F7 — parallel speedup: MBET under 1..N threads with dynamic
// (shared-counter) vs static (pre-partitioned) vs stealing (per-worker
// deques + subtree splitting) scheduling, plus parallel iMBEA (the ParMBE
// stand-in). Expected shape: near-linear dynamic/stealing speedup to the
// core count; static partitioning stalls on skewed datasets because one
// block holds the giant subtrees; stealing additionally splits those giant
// subtrees, which dynamic cannot (visible in the counters table and in the
// worker busy share even when wall-clock parallelism is unavailable).

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"

namespace {

// A timings row ({dataset, config, cell-per-thread-count}) or a counters
// row, kept raw so the table and the JSON artifact print the same data.
struct JsonRow {
  std::vector<std::pair<std::string, std::string>> fields;
};

void WriteRows(std::FILE* out, const char* key,
               const std::vector<JsonRow>& rows) {
  std::fprintf(out, "  \"%s\": [", key);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out, "%s\n    {", i ? "," : "");
    for (size_t f = 0; f < rows[i].fields.size(); ++f) {
      std::fprintf(out, "%s\n      \"%s\": %s", f ? "," : "",
                   rows[i].fields[f].first.c_str(),
                   mbe::bench::JsonQuote(rows[i].fields[f].second).c_str());
    }
    std::fprintf(out, "\n    }");
  }
  std::fprintf(out, "\n  ]");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mbe;
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.Parse(argc, argv);
  const double scale = flags.GetDouble("scale");
  const double budget = flags.GetDouble("budget");

  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  std::vector<unsigned> thread_counts = {1, 2, 4};
  if (hw >= 8) thread_counts.push_back(8);
  if (hw > 8) thread_counts.push_back(hw);
  const unsigned max_threads = thread_counts.back();

  bench::PrintBanner("F7", "parallel speedup and scheduling discipline");
  std::vector<std::string> headers = {"dataset", "config"};
  for (unsigned t : thread_counts) headers.push_back("T=" + std::to_string(t));
  bench::Table table(headers);
  // Scheduler counters at the highest thread count: load balance is the
  // signal that survives even on machines without enough cores for
  // wall-clock speedup (busy share ~1.0 means no worker starved).
  bench::Table counters({"dataset", "config", "steals", "splits", "flushes",
                         "busy_share"});

  struct Config {
    const char* label;
    Algorithm algorithm;
    Scheduling scheduling;
  };
  const Config configs[] = {
      {"MBET dynamic", Algorithm::kMbet, Scheduling::kDynamic},
      {"MBET static", Algorithm::kMbet, Scheduling::kStatic},
      {"MBET stealing", Algorithm::kMbet, Scheduling::kStealing},
      {"ParMBE (iMBEA)", Algorithm::kImbea, Scheduling::kDynamic},
      {"ParMBE stealing", Algorithm::kImbea, Scheduling::kStealing},
  };

  std::vector<JsonRow> timing_rows;
  std::vector<JsonRow> counter_rows;
  for (const std::string& name : bench::ResolveSuite(flags.GetString("suite"))) {
    BipartiteGraph graph = gen::Materialize(gen::FindDataset(name), scale);
    for (const Config& config : configs) {
      std::vector<std::string> row = {name, config.label};
      JsonRow timing{{{"dataset", name}, {"config", config.label}}};
      for (unsigned threads : thread_counts) {
        Options options;
        options.algorithm = config.algorithm;
        options.threads = threads;
        options.scheduling = config.scheduling;
        bench::RunOutcome run = bench::TimedRun(graph, options, budget);
        const std::string cell = bench::TimeCell(run, budget);
        row.push_back(cell);
        timing.fields.push_back({"t" + std::to_string(threads), cell});
        if (threads == max_threads) {
          const double busy = static_cast<double>(run.stats.busy_ns);
          const double total = busy + static_cast<double>(run.stats.idle_ns);
          char share[32];
          std::snprintf(share, sizeof(share), "%.3f",
                        total > 0 ? busy / total : 1.0);
          counters.AddRow({name, config.label,
                           std::to_string(run.stats.steals),
                           std::to_string(run.stats.split_tasks),
                           std::to_string(run.stats.sink_flushes), share});
          counter_rows.push_back(
              {{{"dataset", name},
                {"config", config.label},
                {"steals", std::to_string(run.stats.steals)},
                {"splits", std::to_string(run.stats.split_tasks)},
                {"flushes", std::to_string(run.stats.sink_flushes)},
                {"busy_share", share}}});
        }
      }
      table.AddRow(std::move(row));
      timing_rows.push_back(std::move(timing));
    }
  }
  bench::EmitTable(table, flags);
  std::printf("\nscheduler counters at T=%u:\n", max_threads);
  counters.Print();

  if (!bench::JsonRecordingAllowed(flags)) return 1;
  if (const std::string json = flags.GetString("json"); !json.empty()) {
    std::FILE* out = std::fopen(json.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write JSON to %s\n", json.c_str());
      return 1;
    }
    char flag_summary[64];
    std::snprintf(flag_summary, sizeof(flag_summary), "--budget %g", budget);
    std::fprintf(out, "{\n");
    bench::WriteJsonContext(
        out, argv[0], flag_summary,
        "busy_share ~1.0 means no worker starved; split_tasks > 0 means "
        "monster subtrees were sharded (fires only on datasets whose "
        "subtree work estimate clears ParallelOptions::split_min_work). "
        "On hosts with fewer cores than the thread count (see num_cpus), "
        "workers time-slice and wall-clock speedup is not observable: "
        "multi-thread timings then measure scheduling overhead only, and "
        "the scheduler counters are the scalability signal. Stealing wall "
        "times within ~20% of dynamic bound the runtime overhead of the "
        "deques + splitting + buffered sinks.");
    std::fprintf(out, ",\n  \"thread_counts\": [");
    for (size_t i = 0; i < thread_counts.size(); ++i) {
      std::fprintf(out, "%s%u", i ? ", " : "", thread_counts[i]);
    }
    std::fprintf(out, "],\n");
    WriteRows(out, "timings", timing_rows);
    std::fprintf(out, ",\n");
    WriteRows(out,
              ("scheduler_counters_at_t" + std::to_string(max_threads)).c_str(),
              counter_rows);
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("\n(json written to %s)\n", json.c_str());
  }
  return 0;
}
