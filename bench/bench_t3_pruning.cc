// T3 — pruning-efficiency table: ratio of non-maximal enumeration nodes
// generated (delta) to maximal bicliques (alpha) for MBET vs MBET without
// its equivalence-class aggregation, and the subtree-level domination
// prunes. Expected shape: the prefix-tree machinery avoids a large
// fraction of non-maximal node generation.

#include <cstdio>

#include "bench/harness.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace mbe;
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.Parse(argc, argv);
  const double scale = flags.GetDouble("scale");
  const double budget = flags.GetDouble("budget");

  bench::PrintBanner("T3", "pruning efficiency: non-maximal/maximal ratio");
  bench::Table table({"dataset", "maximal", "d/a MBET", "d/a w/o agg",
                      "d/a iMBEA", "subtree prunes", "aggregated vertices"});

  auto ratio = [](const EnumStats& s) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  s.maximal ? static_cast<double>(s.non_maximal) /
                                  static_cast<double>(s.maximal)
                            : 0.0);
    return std::string(buf);
  };

  for (const std::string& name : bench::ResolveSuite(flags.GetString("suite"))) {
    BipartiteGraph graph = gen::Materialize(gen::FindDataset(name), scale);

    Options mbet;
    bench::RunOutcome full = bench::TimedRun(graph, mbet, budget);

    Options no_agg;
    no_agg.mbet.use_aggregation = false;
    bench::RunOutcome ablated = bench::TimedRun(graph, no_agg, budget);

    Options imbea;
    imbea.algorithm = Algorithm::kImbea;
    bench::RunOutcome baseline = bench::TimedRun(graph, imbea, budget);

    table.AddRow({name,
                  util::HumanCount(static_cast<double>(full.bicliques)),
                  full.completed ? ratio(full.stats) : "budget",
                  ablated.completed ? ratio(ablated.stats) : "budget",
                  baseline.completed ? ratio(baseline.stats) : "budget",
                  std::to_string(full.stats.subtrees_pruned),
                  util::HumanCount(
                      static_cast<double>(full.stats.vertices_aggregated))});
  }
  bench::EmitTable(table, flags);
  return 0;
}
