// M10 — micro-benchmarks (google-benchmark) for the kernels underneath the
// enumerators: sorted-set intersection (merge vs gallop regimes), mask
// probes, trie build, and trie classification vs direct scans at varying
// prefix-sharing levels. The SIMD-sensitive benches carry the kernel
// dispatch level as their last argument (0 scalar, 1 sse4.2, 2 avx2) so
// one run produces the per-ISA columns bench/BENCH_setops.json records;
// levels the host cannot run are reported as skipped, not as zeros.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <ctime>
#include <ostream>
#include <string>
#include <vector>

#include "core/neighborhood_trie.h"
#include "core/set_ops.h"
#include "core/vertex_set.h"
#include "util/bitset.h"
#include "util/random.h"
#include "util/simd.h"

namespace {

using mbe::MembershipMask;
using mbe::NeighborhoodTrie;
using mbe::VertexId;

const std::vector<int64_t> kDispatchLevels = {0, 1, 2};

// Restores the ambient dispatch level when a pinned bench finishes, so
// later benches (and the trailing trie suite) run at the default level.
struct DispatchGuard {
  mbe::simd::DispatchLevel prev = mbe::simd::ActiveLevel();
  ~DispatchGuard() { mbe::simd::ForceLevel(prev); }
};

// Pins the dispatch level carried in the bench's last argument. Returns
// false after flagging the run as skipped when the build or CPU lacks the
// level (the JSON then shows error_occurred instead of a bogus number).
bool PinDispatch(benchmark::State& state, int level_arg_index) {
  const auto want =
      static_cast<mbe::simd::DispatchLevel>(state.range(level_arg_index));
  if (mbe::simd::ForceLevel(want) != want) {
    state.SkipWithError("dispatch level unavailable on this host");
    return false;
  }
  state.SetLabel(mbe::simd::DispatchLevelName(want));
  return true;
}

std::vector<VertexId> RandomSortedSet(size_t n, size_t universe,
                                      mbe::util::Rng& rng) {
  std::vector<VertexId> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<VertexId>(rng.Below(universe)));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void BM_IntersectBalanced(benchmark::State& state) {
  DispatchGuard guard;
  if (!PinDispatch(state, 1)) return;
  mbe::util::Rng rng(1);
  const size_t n = static_cast<size_t>(state.range(0));
  auto a = RandomSortedSet(n, n * 4, rng);
  auto b = RandomSortedSet(n, n * 4, rng);
  std::vector<VertexId> out;
  for (auto _ : state) {
    mbe::Intersect(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_IntersectBalanced)
    ->ArgsProduct({benchmark::CreateRange(64, 1 << 14, 8), kDispatchLevels})
    ->ArgNames({"n", "isa"});

void BM_IntersectLopsided(benchmark::State& state) {
  mbe::util::Rng rng(2);
  const size_t n = static_cast<size_t>(state.range(0));
  auto small = RandomSortedSet(32, n * 4, rng);
  auto big = RandomSortedSet(n, n * 4, rng);
  std::vector<VertexId> out;
  for (auto _ : state) {
    mbe::Intersect(small, big, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IntersectLopsided)->Range(1 << 10, 1 << 16);

// --- IntersectInto strategy sweep ---------------------------------------
// Two random sets over a fixed universe whose size is `density`% of the
// universe; compares the merge loop, galloping search, and the 64-bit word
// kernel on identical inputs. The crossover these curves show is what the
// VertexSet density threshold encodes (docs/SET_REPRESENTATION.md).

constexpr size_t kSweepUniverse = 1 << 13;

std::pair<std::vector<VertexId>, std::vector<VertexId>> MakeDensityPair(
    benchmark::State& state) {
  mbe::util::Rng rng(11);
  const size_t n = kSweepUniverse * static_cast<size_t>(state.range(0)) / 100;
  return {RandomSortedSet(n, kSweepUniverse, rng),
          RandomSortedSet(n, kSweepUniverse, rng)};
}

const std::vector<int64_t> kDensities = {1, 5, 10, 25, 50, 90};

void BM_SetOpsMerge(benchmark::State& state) {
  DispatchGuard guard;
  if (!PinDispatch(state, 1)) return;
  auto [a, b] = MakeDensityPair(state);
  std::vector<VertexId> out;
  for (auto _ : state) {
    mbe::IntersectInto(a, b, &out, mbe::IntersectStrategy::kMerge);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_SetOpsMerge)
    ->ArgsProduct({kDensities, kDispatchLevels})
    ->ArgNames({"density", "isa"});

void BM_SetOpsDifference(benchmark::State& state) {
  DispatchGuard guard;
  if (!PinDispatch(state, 1)) return;
  auto [a, b] = MakeDensityPair(state);
  std::vector<VertexId> out;
  for (auto _ : state) {
    mbe::Difference(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_SetOpsDifference)
    ->ArgsProduct({kDensities, kDispatchLevels})
    ->ArgNames({"density", "isa"});

void BM_SetOpsGallop(benchmark::State& state) {
  auto [a, b] = MakeDensityPair(state);
  std::vector<VertexId> out;
  for (auto _ : state) {
    mbe::IntersectInto(a, b, &out, mbe::IntersectStrategy::kGallop);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_SetOpsGallop)->Arg(1)->Arg(5)->Arg(10)->Arg(25)->Arg(50)->Arg(90);

void BM_SetOpsBitmap(benchmark::State& state) {
  DispatchGuard guard;
  if (!PinDispatch(state, 1)) return;
  auto [a, b] = MakeDensityPair(state);
  const size_t words = mbe::util::WordsFor(kSweepUniverse);
  std::vector<uint64_t> wa(words, 0), wb(words, 0), out(words, 0);
  mbe::util::SetBits(a, wa);
  mbe::util::SetBits(b, wb);
  for (auto _ : state) {
    mbe::IntersectInto(wa, wb, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_SetOpsBitmap)
    ->ArgsProduct({kDensities, kDispatchLevels})
    ->ArgNames({"density", "isa"});

// Counting variant of the word kernel — the exact operation the bitmap
// classification path in MbetEnumerator::Classify issues per group.
void BM_SetOpsBitmapCount(benchmark::State& state) {
  DispatchGuard guard;
  if (!PinDispatch(state, 1)) return;
  auto [a, b] = MakeDensityPair(state);
  const size_t words = mbe::util::WordsFor(kSweepUniverse);
  std::vector<uint64_t> wa(words, 0), wb(words, 0);
  mbe::util::SetBits(a, wa);
  mbe::util::SetBits(b, wb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mbe::IntersectSize(wa, wb));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_SetOpsBitmapCount)
    ->ArgsProduct({kDensities, kDispatchLevels})
    ->ArgNames({"density", "isa"});

void BM_MaskProbe(benchmark::State& state) {
  DispatchGuard guard;
  if (!PinDispatch(state, 1)) return;
  mbe::util::Rng rng(3);
  const size_t n = static_cast<size_t>(state.range(0));
  auto set = RandomSortedSet(n / 2, n, rng);
  auto probe = RandomSortedSet(n / 2, n, rng);
  MembershipMask mask(n);
  mask.Set(set);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mbe::IntersectSizeWithMask(probe, mask));
  }
  mask.Clear(set);
}
BENCHMARK(BM_MaskProbe)
    ->ArgsProduct({benchmark::CreateRange(256, 1 << 14, 8), kDispatchLevels})
    ->ArgNames({"n", "isa"});

// Builds `groups` lists of length `len` over a universe, sharing a common
// prefix of `shared` elements — the knob that decides whether the trie
// pays off.
struct TrieInput {
  std::vector<std::vector<VertexId>> lists;
  std::vector<std::span<const VertexId>> spans;
  MembershipMask mask;
};

TrieInput MakeTrieInput(size_t groups, size_t len, size_t shared) {
  mbe::util::Rng rng(4);
  const size_t universe = 1 << 16;
  TrieInput input;
  auto prefix = RandomSortedSet(shared, universe / 4, rng);
  for (size_t g = 0; g < groups; ++g) {
    auto tail =
        RandomSortedSet(len - prefix.size(), universe - universe / 4, rng);
    std::vector<VertexId> list = prefix;
    for (VertexId x : tail) {
      list.push_back(static_cast<VertexId>(x + universe / 4));
    }
    input.lists.push_back(std::move(list));
  }
  for (const auto& l : input.lists) input.spans.emplace_back(l);
  input.mask.EnsureUniverse(universe + 1);
  auto members = RandomSortedSet(universe / 2, universe, rng);
  input.mask.Set(members);
  return input;
}

void BM_TrieClassify(benchmark::State& state) {
  const size_t shared = static_cast<size_t>(state.range(0));
  TrieInput input = MakeTrieInput(256, 64, shared);
  NeighborhoodTrie trie;
  trie.Build(input.spans);
  std::vector<uint32_t> counts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.ClassifyAll(input.mask, &counts));
  }
  state.counters["trie_nodes"] = static_cast<double>(trie.num_nodes());
}
BENCHMARK(BM_TrieClassify)->Arg(0)->Arg(16)->Arg(32)->Arg(48)->Arg(60);

void BM_DirectClassify(benchmark::State& state) {
  const size_t shared = static_cast<size_t>(state.range(0));
  TrieInput input = MakeTrieInput(256, 64, shared);
  std::vector<uint32_t> counts(input.spans.size());
  for (auto _ : state) {
    for (size_t g = 0; g < input.spans.size(); ++g) {
      counts[g] = static_cast<uint32_t>(
          mbe::IntersectSizeWithMask(input.spans[g], input.mask));
    }
    benchmark::DoNotOptimize(counts.data());
  }
}
BENCHMARK(BM_DirectClassify)->Arg(0)->Arg(16)->Arg(32)->Arg(48)->Arg(60);

void BM_TrieBuild(benchmark::State& state) {
  const size_t shared = static_cast<size_t>(state.range(0));
  TrieInput input = MakeTrieInput(256, 64, shared);
  NeighborhoodTrie trie;
  for (auto _ : state) {
    trie.Build(input.spans);
    benchmark::DoNotOptimize(trie.num_nodes());
  }
}
BENCHMARK(BM_TrieBuild)->Arg(0)->Arg(32)->Arg(60);

// The stock JSONReporter stamps *libbenchmark's* build type into
// "library_build_type" — on distro packages that reads "debug" even when
// this library is an -O2 release build, tripping the CI freshness check on
// bench/BENCH_setops.json. Re-emit the context head with the build type of
// the code actually being measured (this translation unit's NDEBUG),
// keeping the structural shape the base class's ReportRuns/Finalize
// continue from.
class ReleaseTaggedJsonReporter : public benchmark::JSONReporter {
 public:
  bool ReportContext(const Context& context) override {
    std::ostream& out = GetOutputStream();
    char date[64] = "unknown";
    const std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    if (gmtime_r(&now, &tm_utc) != nullptr) {
      std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S+00:00", &tm_utc);
    }
    out << "{\n  \"context\": {\n";
    out << "    \"date\": \"" << date << "\",\n";
    out << "    \"executable\": \"" << context.executable_name << "\",\n";
    out << "    \"num_cpus\": " << context.cpu_info.num_cpus << ",\n";
    out << "    \"mhz_per_cpu\": "
        << static_cast<long>(context.cpu_info.cycles_per_second * 1e-6)
        << ",\n";
    out << "    \"simd_level\": \""
        << mbe::simd::DispatchLevelName(mbe::simd::ActiveLevel())
        << "\",\n";
#ifdef NDEBUG
    out << "    \"library_build_type\": \"release\"\n";
#else
    out << "    \"library_build_type\": \"debug\"\n";
#endif
    out << "  },\n  \"benchmarks\": [\n";
    return true;
  }
};

}  // namespace

int main(int argc, char** argv) {
  // --allow_debug (ours; stripped before libbenchmark parses the rest)
  // gates recording JSON from unoptimized builds, mirroring the
  // bench/harness.cc policy for the table binaries.
  bool allow_debug = false;
  bool wants_file = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allow_debug") {
      allow_debug = true;
      continue;
    }
    if (arg.rfind("--benchmark_out=", 0) == 0 && arg.size() > 16) {
      wants_file = true;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
#ifndef NDEBUG
  if (wants_file && !allow_debug) {
    std::fprintf(stderr,
                 "error: refusing --benchmark_out from a debug build — "
                 "unoptimized timings are not comparable to the committed "
                 "BENCH_*.json baselines. Rebuild with "
                 "-DCMAKE_BUILD_TYPE=Release, or pass --allow_debug for a "
                 "throwaway recording.\n");
    return 1;
  }
#endif
  (void)allow_debug;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::ConsoleReporter display;
  ReleaseTaggedJsonReporter json;
  if (wants_file) {
    benchmark::RunSpecifiedBenchmarks(&display, &json);
  } else {
    benchmark::RunSpecifiedBenchmarks(&display);
  }
  benchmark::Shutdown();
  return 0;
}
