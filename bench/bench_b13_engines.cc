// B13 — engine head-to-head: MBET (prefix tree) vs iMBEA (baseline) vs BBK
// (pivot-free left extension) across the dataset registry, plus the
// engine-aware auto-tuner's pick on every dataset.
//
// Two acceptance claims live here (ISSUE 9 / docs/TUNING.md):
//  * BBK is faster than MBET on the sparse/skewed registry shapes (wall
//    time, same output set — count-identity is asserted every run);
//  * `--tune` selects the faster of the two interchangeable engines on
//    >= 90% of registry entries (ties within 10% count for either side —
//    the registry re-materializes per run, so sub-10% gaps are noise).
//
// The JSON artifact (bench/BENCH_engines.json) records per dataset: wall
// time and node counts per engine, the tuner's rule and engine pick, and
// the summary fractions the CI smoke leg and docs quote.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/tuner.h"
#include "util/stats.h"

namespace {

struct JsonRow {
  std::vector<std::pair<std::string, std::string>> fields;
};

void WriteRows(std::FILE* out, const char* key,
               const std::vector<JsonRow>& rows) {
  std::fprintf(out, "  \"%s\": [", key);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out, "%s\n    {", i ? "," : "");
    for (size_t f = 0; f < rows[i].fields.size(); ++f) {
      std::fprintf(out, "%s\n      \"%s\": %s", f ? "," : "",
                   rows[i].fields[f].first.c_str(),
                   mbe::bench::JsonQuote(rows[i].fields[f].second).c_str());
    }
    std::fprintf(out, "\n    }");
  }
  std::fprintf(out, "\n  ]");
}

std::string Fmt(const char* fmt, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mbe;
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.AddInt("repeats", 3,
               "timing repeats per cell (the minimum is reported)");
  flags.Parse(argc, argv);
  const double scale = flags.GetDouble("scale");
  const double budget = flags.GetDouble("budget");
  const int repeats = std::max<int64_t>(1, flags.GetInt("repeats"));
  const unsigned threads = static_cast<unsigned>(flags.GetInt("threads"));

  bench::PrintBanner(
      "B13", "engine head-to-head: MBET vs iMBEA vs BBK + tuner pick");

  struct EngineCol {
    const char* label;
    Algorithm algorithm;
  };
  const EngineCol engines[] = {
      {"mbet", Algorithm::kMbet},
      {"imbea", Algorithm::kImbea},
      {"bbk", Algorithm::kBbk},
  };

  bench::Table table({"dataset", "bicliques", "mbet", "imbea", "bbk",
                      "bbk/mbet", "rule", "pick", "tuned", "pick ok"});
  std::vector<JsonRow> rows;
  size_t tuner_correct = 0, tuner_total = 0;
  size_t bbk_wins_sparse = 0, sparse_total = 0;
  bool counts_identical = true;

  for (const std::string& name :
       bench::ResolveSuite(flags.GetString("suite"))) {
    const gen::DatasetSpec& spec = gen::FindDataset(name);
    const BipartiteGraph graph = gen::Materialize(spec, scale);

    auto best_of = [&](const Options& options) {
      bench::RunOutcome best;
      for (int r = 0; r < repeats; ++r) {
        bench::RunOutcome run = bench::TimedRun(graph, options, budget);
        if (r == 0 || run.seconds < best.seconds) best = run;
      }
      return best;
    };

    std::vector<std::string> row = {spec.name, ""};
    double seconds[3] = {0, 0, 0};
    uint64_t nodes[3] = {0, 0, 0};
    uint64_t counts[3] = {0, 0, 0};
    bool all_completed = true;
    for (size_t e = 0; e < 3; ++e) {
      Options options;
      options.algorithm = engines[e].algorithm;
      options.threads = threads;
      const bench::RunOutcome run = best_of(options);
      seconds[e] = run.seconds;
      nodes[e] = run.stats.nodes_expanded;
      counts[e] = run.bicliques;
      all_completed = all_completed && run.completed;
      row[1] = std::to_string(run.bicliques);
      row.push_back(bench::TimeCell(run, budget));
    }
    // A budget-truncated run holds a valid prefix, not the full count;
    // identity is only checkable when all three engines finished.
    if (all_completed && (counts[0] != counts[1] || counts[0] != counts[2])) {
      counts_identical = false;
      std::fprintf(stderr,
                   "COUNT MISMATCH on %s: mbet=%llu imbea=%llu bbk=%llu\n",
                   spec.name.c_str(),
                   static_cast<unsigned long long>(counts[0]),
                   static_cast<unsigned long long>(counts[1]),
                   static_cast<unsigned long long>(counts[2]));
    }
    const double bbk_vs_mbet =
        seconds[2] > 0 ? seconds[0] / seconds[2] : 0.0;
    row.push_back(Fmt("%.2fx", bbk_vs_mbet));

    Options tuned;
    tuned.auto_tune = true;
    tuned.threads = threads;
    const bench::RunOutcome tuned_run = best_of(tuned);
    const TunerRule rule =
        static_cast<TunerRule>(tuned_run.stats.tuner_rule);
    const TunerEngine pick =
        static_cast<TunerEngine>(tuned_run.stats.tuned_algorithm);
    row.push_back(TunerRuleName(rule));
    row.push_back(TunerEngineName(pick));
    row.push_back(bench::TimeCell(tuned_run, budget));

    // The pick is "correct" when the chosen engine's measured time is
    // within 10% of the faster of the two (so ties count for either side).
    const double t_pick =
        pick == TunerEngine::kBbk ? seconds[2] : seconds[0];
    const double t_best = std::min(seconds[0], seconds[2]);
    const bool pick_ok =
        pick != TunerEngine::kNone && t_pick <= t_best * 1.10;
    ++tuner_total;
    tuner_correct += pick_ok ? 1 : 0;
    row.push_back(pick_ok ? "yes" : "NO");
    if (rule == TunerRule::kSparse || rule == TunerRule::kSkewed) {
      ++sparse_total;
      bbk_wins_sparse += seconds[2] <= seconds[0] * 1.10 ? 1 : 0;
    }
    table.AddRow(std::move(row));

    rows.push_back(
        {{{"dataset", spec.name},
          {"bicliques", std::to_string(counts[0])},
          {"mbet_seconds", Fmt("%.6f", seconds[0])},
          {"imbea_seconds", Fmt("%.6f", seconds[1])},
          {"bbk_seconds", Fmt("%.6f", seconds[2])},
          {"mbet_nodes", std::to_string(nodes[0])},
          {"imbea_nodes", std::to_string(nodes[1])},
          {"bbk_nodes", std::to_string(nodes[2])},
          {"bbk_speedup_vs_mbet", Fmt("%.3f", bbk_vs_mbet)},
          {"tuner_rule", TunerRuleName(rule)},
          {"tuner_engine", TunerEngineName(pick)},
          {"tuned_seconds", Fmt("%.6f", tuned_run.seconds)},
          {"tuner_pick_ok", pick_ok ? "yes" : "no"}}});
  }
  bench::EmitTable(table, flags);

  const double correct_frac =
      tuner_total > 0
          ? static_cast<double>(tuner_correct) /
                static_cast<double>(tuner_total)
          : 0.0;
  std::printf("\ncounts identical across engines: %s\n",
              counts_identical ? "yes" : "NO");
  std::printf("tuner picked the faster engine on %zu/%zu datasets "
              "(%.0f%%; bar: 90%%)\n",
              tuner_correct, tuner_total, correct_frac * 100.0);
  std::printf("BBK at least ties MBET on %zu/%zu sparse/skewed datasets\n",
              bbk_wins_sparse, sparse_total);

  if (!bench::JsonRecordingAllowed(flags)) return 1;
  if (const std::string json = flags.GetString("json"); !json.empty()) {
    std::FILE* out = std::fopen(json.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write JSON to %s\n", json.c_str());
      return 1;
    }
    char flag_summary[96];
    std::snprintf(flag_summary, sizeof(flag_summary),
                  "--suite %s --scale %g --budget %g --repeats %d",
                  flags.GetString("suite").c_str(), scale, budget, repeats);
    std::fprintf(out, "{\n");
    bench::WriteJsonContext(
        out, argv[0], flag_summary,
        "per-dataset wall time and node counts for the three engines "
        "(count-identity asserted at run time), plus the auto-tuner's rule "
        "and engine pick. tuner_correct_fraction is the >= 0.90 acceptance "
        "bar: the tuned engine's time within 10% of the faster of "
        "MBET/BBK. Engines differ in traversal, not output: the digest "
        "matrix (work_stealing_test, pmbe_selfcheck) proves the sets "
        "identical.");
    std::fprintf(out, ",\n  \"counts_identical\": %s,\n",
                 counts_identical ? "true" : "false");
    std::fprintf(out, "  \"tuner_correct_fraction\": %.3f,\n", correct_frac);
    std::fprintf(out, "  \"tuner_correct\": %zu,\n", tuner_correct);
    std::fprintf(out, "  \"tuner_total\": %zu,\n", tuner_total);
    WriteRows(out, "datasets", rows);
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("\n(json written to %s)\n", json.c_str());
  }
  return counts_identical ? 0 : 1;
}
