// T2 — overall runtime comparison (the headline figure of the evaluation):
// MBET / MBETM vs MineLMBC, MBEA, iMBEA, ooMBEA-lite and the parallel
// configuration across the dataset suite. Expected shape: MBET fastest or
// tied nearly everywhere; the from-scratch baseline (MineLMBC) orders of
// magnitude behind on biclique-rich datasets.

#include <cstdio>
#include <thread>

#include "bench/harness.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace mbe;
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.Parse(argc, argv);
  const double scale = flags.GetDouble("scale");
  const double budget = flags.GetDouble("budget");
  unsigned par_threads = static_cast<unsigned>(flags.GetInt("threads"));
  if (par_threads <= 1) {
    par_threads = std::max(2u, std::thread::hardware_concurrency());
  }

  bench::PrintBanner("T2", "overall runtime, all algorithms");
  bench::Table table({"dataset", "bicliques", "MineLMBC", "MBEA", "iMBEA",
                      "ooMBEA-lite", "MBETM", "MBET",
                      "MBET x" + std::to_string(par_threads)});

  struct Config {
    Algorithm algorithm;
    VertexOrder order;
    unsigned threads;
  };
  const Config configs[] = {
      {Algorithm::kMineLmbc, VertexOrder::kDegreeAsc, 1},
      {Algorithm::kMbea, VertexOrder::kDegreeAsc, 1},
      {Algorithm::kImbea, VertexOrder::kDegreeAsc, 1},
      {Algorithm::kOombeaLite, VertexOrder::kUnilateralAsc, 1},
      {Algorithm::kMbetM, VertexOrder::kDegreeAsc, 1},
      {Algorithm::kMbet, VertexOrder::kDegreeAsc, 1},
      {Algorithm::kMbet, VertexOrder::kDegreeAsc, par_threads},
  };

  for (const std::string& name : bench::ResolveSuite(flags.GetString("suite"))) {
    BipartiteGraph graph = gen::Materialize(gen::FindDataset(name), scale);
    std::vector<std::string> row = {name};
    std::string count_cell = "?";
    for (const Config& config : configs) {
      Options options;
      options.algorithm = config.algorithm;
      options.order = config.order;
      options.threads = config.threads;
      bench::RunOutcome run = bench::TimedRun(graph, options, budget);
      if (run.completed) {
        count_cell = util::HumanCount(static_cast<double>(run.bicliques));
      }
      if (row.size() == 1) row.push_back(count_cell);  // placeholder slot
      row.push_back(bench::TimeCell(run, budget));
    }
    row[1] = count_cell;
    table.AddRow(std::move(row));
  }
  bench::EmitTable(table, flags);
  std::printf("\n(time budget per run: %.1fs; '>' marks budget-truncated runs)\n",
              budget);
  return 0;
}
