// B12 — batched candidate frontier: classification cost vs batch width
// across edge densities. MBET classifies every candidate of a node against
// the groups' local neighborhoods; the batched frontier packs up to
// `batch_width` sibling candidates into an interleaved word-transposed
// block and answers the whole window in one streaming pass (one trie walk,
// or one multi-mask kernel sweep) instead of one pass per candidate.
//
// Two sections: (1) an end-to-end width x density sweep, whose "auto"
// column times the workload-adaptive tuner (docs/TUNING.md) — it should
// land near the best fixed width without being told the density; and
// (2) the classification stage in isolation on synthetic node shapes,
// which is where the per-candidate vs batched comparison is visible —
// end-to-end time is dominated by the enumeration work batching leaves
// untouched, so whole-run gains are Amdahl-capped at a few percent while
// the stage itself speeds up well past the 1.3x acceptance bar on dense
// shapes.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/neighborhood_trie.h"
#include "core/set_ops.h"
#include "gen/generators.h"
#include "util/bitset.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/timer.h"

namespace {

// Defeats dead-code elimination of the timed classification loops.
volatile uint64_t benchmark_sink = 0;

struct JsonRow {
  std::vector<std::pair<std::string, std::string>> fields;
};

void WriteRows(std::FILE* out, const char* key,
               const std::vector<JsonRow>& rows) {
  std::fprintf(out, "  \"%s\": [", key);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out, "%s\n    {", i ? "," : "");
    for (size_t f = 0; f < rows[i].fields.size(); ++f) {
      std::fprintf(out, "%s\n      \"%s\": %s", f ? "," : "",
                   rows[i].fields[f].first.c_str(),
                   mbe::bench::JsonQuote(rows[i].fields[f].second).c_str());
    }
    std::fprintf(out, "\n    }");
  }
  std::fprintf(out, "\n  ]");
}

std::string Fmt(const char* fmt, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

// --- Classification-stage microcosm --------------------------------------
// One MBET node: `groups` immutable local-neighborhood lists over a
// renumbered universe, and a stream of candidate membership sets to
// classify against every group. This isolates the stage the batched
// frontier replaces — per-candidate passes vs one pass per window — from
// the enumeration work around it (child construction, absorption,
// emission), which batching deliberately leaves untouched.

struct NodeShape {
  std::vector<std::vector<mbe::VertexId>> group_lists;
  std::vector<std::span<const mbe::VertexId>> group_spans;
  std::vector<std::vector<mbe::VertexId>> candidates;  // loc lists
  size_t universe = 0;
};

NodeShape MakeNodeShape(double density, size_t universe, size_t groups,
                        size_t num_candidates, mbe::util::Rng& rng) {
  NodeShape shape;
  shape.universe = universe;
  const size_t len = std::max<size_t>(
      4, static_cast<size_t>(density * static_cast<double>(universe)));
  auto random_sorted = [&](size_t n) {
    std::vector<mbe::VertexId> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(static_cast<mbe::VertexId>(rng.Below(universe)));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };
  for (size_t g = 0; g < groups; ++g) {
    shape.group_lists.push_back(random_sorted(len));
  }
  for (const auto& l : shape.group_lists) shape.group_spans.emplace_back(l);
  for (size_t c = 0; c < num_candidates; ++c) {
    shape.candidates.push_back(random_sorted(len));
  }
  return shape;
}

struct StageTimes {
  double per_candidate = 0;  ///< seconds, width-1 path over all candidates
  double batched = 0;        ///< seconds, windowed path over all candidates
};

// Trie backend: per-candidate = mask set + ClassifyAll + mask clear per
// candidate (the width-1 code path); batched = interleaved pack + one
// ClassifyAllBatch walk per window.
StageTimes TimeTrieStage(const NodeShape& shape, size_t width, int repeats) {
  mbe::NeighborhoodTrie trie;
  trie.Build(shape.group_spans);
  const size_t n = shape.candidates.size();
  StageTimes times;

  mbe::MembershipMask mask(shape.universe);
  std::vector<uint32_t> counts;
  mbe::util::WallTimer timer;
  for (int r = 0; r < repeats; ++r) {
    for (const auto& cand : shape.candidates) {
      mask.Set(cand);
      benchmark_sink = benchmark_sink + trie.ClassifyAll(mask, &counts);
      mask.Clear(cand);
    }
  }
  times.per_candidate = timer.Seconds();

  const size_t nwords = (shape.universe + 63) / 64;
  std::vector<uint64_t> batch(nwords * width);
  std::vector<uint32_t> batch_counts(shape.group_spans.size() * width);
  timer.Reset();
  for (int r = 0; r < repeats; ++r) {
    for (size_t start = 0; start < n; start += width) {
      const size_t fill = std::min(width, n - start);
      std::fill(batch.begin(), batch.end(), 0);
      for (size_t w = 0; w < fill; ++w) {
        for (mbe::VertexId x : shape.candidates[start + w]) {
          batch[(static_cast<size_t>(x) >> 6) * width + w] |=
              uint64_t{1} << (x & 63);
        }
      }
      benchmark_sink = benchmark_sink + trie.ClassifyAllBatch(
                                            batch.data(), width,
                                            batch_counts.data());
    }
  }
  times.batched = timer.Seconds();
  return times;
}

// Bitmap backend: per-candidate = clear + SetBits + one and_count per
// group per candidate; batched = interleaved pack + one and_count_batch
// sweep per group per window.
StageTimes TimeBitmapStage(const NodeShape& shape, size_t width,
                           int repeats) {
  const size_t nwords = (shape.universe + 63) / 64;
  const size_t groups = shape.group_spans.size();
  std::vector<uint64_t> group_words(groups * nwords, 0);
  for (size_t g = 0; g < groups; ++g) {
    for (mbe::VertexId x : shape.group_lists[g]) {
      group_words[g * nwords + (static_cast<size_t>(x) >> 6)] |=
          uint64_t{1} << (x & 63);
    }
  }
  const mbe::simd::KernelTable& k = mbe::simd::Kernels();
  const size_t n = shape.candidates.size();
  StageTimes times;

  std::vector<uint64_t> cand_words(nwords, 0);
  mbe::util::WallTimer timer;
  for (int r = 0; r < repeats; ++r) {
    for (const auto& cand : shape.candidates) {
      std::fill(cand_words.begin(), cand_words.end(), 0);
      mbe::util::SetBits(cand, cand_words);
      for (size_t g = 0; g < groups; ++g) {
        benchmark_sink =
            benchmark_sink + k.and_count(group_words.data() + g * nwords,
                                         cand_words.data(), nwords);
      }
    }
  }
  times.per_candidate = timer.Seconds();

  std::vector<uint64_t> batch(nwords * width);
  std::vector<uint32_t> counts(groups * width);
  timer.Reset();
  for (int r = 0; r < repeats; ++r) {
    for (size_t start = 0; start < n; start += width) {
      const size_t fill = std::min(width, n - start);
      std::fill(batch.begin(), batch.end(), 0);
      for (size_t w = 0; w < fill; ++w) {
        for (mbe::VertexId x : shape.candidates[start + w]) {
          batch[(static_cast<size_t>(x) >> 6) * width + w] |=
              uint64_t{1} << (x & 63);
        }
      }
      for (size_t g = 0; g < groups; ++g) {
        k.and_count_batch(group_words.data() + g * nwords, batch.data(),
                          nwords, width, counts.data() + g * width);
      }
      benchmark_sink = benchmark_sink + counts[0];
    }
  }
  times.batched = timer.Seconds();
  return times;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mbe;
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.AddInt("repeats", 3,
               "timing repeats per cell (the minimum is reported)");
  flags.Parse(argc, argv);
  const double budget = flags.GetDouble("budget");
  const int repeats = std::max<int64_t>(1, flags.GetInt("repeats"));

  bench::PrintBanner("B12",
                     "batched candidate frontier: width x density sweep");

  const std::vector<uint32_t> widths = {1, 8, 16, 32, 64};
  struct Sweep {
    const char* label;
    size_t nl, nr;
    double p;
  };
  // Sizes chosen so the densest cells still finish in well under the
  // default budget on one core; density is the independent variable.
  const Sweep sweeps[] = {
      {"ER d=0.02", 400, 300, 0.02}, {"ER d=0.05", 300, 220, 0.05},
      {"ER d=0.10", 220, 160, 0.10}, {"ER d=0.20", 150, 110, 0.20},
      {"ER d=0.30", 110, 85, 0.30},
  };

  std::vector<std::string> headers = {"dataset", "bicliques"};
  for (uint32_t w : widths) headers.push_back("w=" + std::to_string(w));
  headers.push_back("auto");
  headers.push_back("best/w1");
  headers.push_back("rule");
  bench::Table table(headers);

  std::vector<JsonRow> cell_rows;
  std::vector<JsonRow> tuner_rows;
  double e2e_dense_best = 0.0;

  for (const Sweep& sweep : sweeps) {
    const BipartiteGraph graph =
        gen::ErdosRenyi(sweep.nl, sweep.nr, sweep.p, 12345);

    auto best_of = [&](const Options& options) {
      bench::RunOutcome best;
      for (int r = 0; r < repeats; ++r) {
        bench::RunOutcome run = bench::TimedRun(graph, options, budget);
        if (r == 0 || run.seconds < best.seconds) best = run;
      }
      return best;
    };

    std::vector<std::string> row = {sweep.label, ""};
    double t_w1 = 0.0, t_best_batched = 0.0;
    for (uint32_t width : widths) {
      Options options;
      options.mbet.batch_width = width;
      const bench::RunOutcome run = best_of(options);
      row[1] = std::to_string(run.bicliques);
      row.push_back(bench::TimeCell(run, budget));
      if (width == 1) {
        t_w1 = run.seconds;
      } else if (t_best_batched == 0.0 || run.seconds < t_best_batched) {
        t_best_batched = run.seconds;
      }
      cell_rows.push_back(
          {{{"dataset", sweep.label},
            {"density", Fmt("%.2f", sweep.p)},
            {"width", std::to_string(width)},
            {"seconds", Fmt("%.6f", run.seconds)},
            {"bicliques", std::to_string(run.bicliques)},
            {"batch_candidates",
             std::to_string(run.stats.batch_candidates_classified)},
            {"batch_kernel_calls",
             std::to_string(run.stats.batch_kernel_calls)}}});
    }

    Options tuned;
    tuned.auto_tune = true;
    const bench::RunOutcome auto_run = best_of(tuned);
    row.push_back(bench::TimeCell(auto_run, budget));

    const double speedup =
        t_best_batched > 0 ? t_w1 / t_best_batched : 0.0;
    if (sweep.p >= 0.10) {
      e2e_dense_best = std::max(e2e_dense_best, speedup);
    }
    row.push_back(Fmt("%.2fx", speedup));
    const char* rule = TunerRuleName(
        static_cast<TunerRule>(auto_run.stats.tuner_rule));
    row.push_back(rule);
    table.AddRow(std::move(row));
    tuner_rows.push_back(
        {{{"dataset", sweep.label},
          {"rule", rule},
          {"tuned_batch_width",
           std::to_string(auto_run.stats.tuned_batch_width)},
          {"tuned_max_split",
           std::to_string(auto_run.stats.tuned_max_split)},
          {"tuned_bitmap_density",
           Fmt("%.3f",
               static_cast<double>(
                   auto_run.stats.tuned_bitmap_density_x1000) /
                   1000.0)},
          {"auto_seconds", Fmt("%.6f", auto_run.seconds)},
          {"speedup_best_batched_vs_w1", Fmt("%.2f", speedup)}}});
  }

  bench::EmitTable(table, flags);

  // --- Classification stage in isolation ---------------------------------
  // End-to-end MBET time is dominated by the work batching leaves alone
  // (child construction, absorption, emission) — on these graphs the
  // classification stage is a single-digit percentage of the run, so even
  // an infinitely fast batch pass moves the whole-run numbers only a few
  // percent (Amdahl; the e2e table above shows it). The speedup the
  // frontier actually delivers is per-candidate vs batched *classification*
  // on the same node shapes, measured here on both backends.
  std::printf("\nclassification stage: per-candidate vs batched, same node "
              "shape\n(universe 2048, 64 groups, 256 candidates; cells are "
              "speedup vs the\nper-candidate path of the same backend)\n\n");
  std::vector<std::string> cheaders = {"density", "backend", "per-cand"};
  for (uint32_t w : widths) {
    if (w > 1) cheaders.push_back("w=" + std::to_string(w));
  }
  bench::Table ctable(cheaders);
  std::vector<JsonRow> classify_rows;
  double dense_best_speedup = 0.0;

  for (const Sweep& sweep : sweeps) {
    mbe::util::Rng rng(0x9e3779b97f4a7c15ULL ^
                       static_cast<uint64_t>(sweep.p * 1000.0));
    const NodeShape shape = MakeNodeShape(sweep.p, 2048, 64, 256, rng);
    // Keep the timed region ~tens of ms on every row: sparse shapes do
    // far less work per pass, so they get proportionally more iterations.
    const int iters = std::max(10, static_cast<int>(6.0 / sweep.p));

    struct Backend {
      const char* label;
      StageTimes (*time)(const NodeShape&, size_t, int);
    };
    const Backend backends[] = {
        {"trie", &TimeTrieStage},
        {"bitmap", &TimeBitmapStage},
    };
    for (const Backend& backend : backends) {
      std::vector<std::string> row = {Fmt("%.2f", sweep.p), backend.label};
      bool first_width = true;
      for (uint32_t width : widths) {
        if (width <= 1) continue;
        StageTimes best;
        for (int r = 0; r < repeats; ++r) {
          const StageTimes t = backend.time(shape, width, iters);
          if (r == 0 || t.per_candidate < best.per_candidate) {
            best.per_candidate = t.per_candidate;
          }
          if (r == 0 || t.batched < best.batched) best.batched = t.batched;
        }
        if (first_width) {
          row.insert(row.begin() + 2,
                     Fmt("%.2fms", best.per_candidate * 1e3 / iters));
          first_width = false;
        }
        const double speedup =
            best.batched > 0 ? best.per_candidate / best.batched : 0.0;
        if (sweep.p >= 0.10) {
          dense_best_speedup = std::max(dense_best_speedup, speedup);
        }
        row.push_back(Fmt("%.2fx", speedup));
        classify_rows.push_back(
            {{{"density", Fmt("%.2f", sweep.p)},
              {"backend", backend.label},
              {"width", std::to_string(width)},
              {"per_candidate_seconds",
               Fmt("%.6f", best.per_candidate / iters)},
              {"batched_seconds", Fmt("%.6f", best.batched / iters)},
              {"speedup", Fmt("%.3f", speedup)}}});
      }
      ctable.AddRow(std::move(row));
    }
  }
  ctable.Print();

  std::printf("\nbest batched classification speedup on the dense shapes "
              "(d >= 0.10): %.2fx (bar: 1.3x)\n",
              dense_best_speedup);
  std::printf("best end-to-end speedup on the dense sweep (d >= 0.10): "
              "%.2fx (classification is a small share of total runtime; "
              "see note)\n",
              e2e_dense_best);

  if (!bench::JsonRecordingAllowed(flags)) return 1;
  if (const std::string json = flags.GetString("json"); !json.empty()) {
    std::FILE* out = std::fopen(json.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write JSON to %s\n", json.c_str());
      return 1;
    }
    char flag_summary[64];
    std::snprintf(flag_summary, sizeof(flag_summary),
                  "--budget %g --repeats %d", budget, repeats);
    std::fprintf(out, "{\n");
    bench::WriteJsonContext(
        out, argv[0], flag_summary,
        "width 1 is the per-candidate classification path; wider widths "
        "share one streaming pass (trie walk or multi-mask kernel) across "
        "the window. All widths are output-identical (enforced by "
        "simd_test and pmbe_selfcheck); only the time and the batch "
        "counters move. dense_best_speedup (the >= 1.3 acceptance bar) is "
        "per-candidate vs batched on the classification stage itself "
        "(classification_cells): end-to-end runs are dominated by the "
        "enumeration work batching leaves untouched, so whole-run dense "
        "gains (end_to_end_dense_best_speedup, cells) are Amdahl-capped "
        "at a few percent on these graphs.");
    std::fprintf(out, ",\n  \"dense_best_speedup\": %.3f,\n",
                 dense_best_speedup);
    std::fprintf(out, "  \"end_to_end_dense_best_speedup\": %.3f,\n",
                 e2e_dense_best);
    WriteRows(out, "classification_cells", classify_rows);
    std::fprintf(out, ",\n");
    WriteRows(out, "cells", cell_rows);
    std::fprintf(out, ",\n");
    WriteRows(out, "tuner", tuner_rows);
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("\n(json written to %s)\n", json.c_str());
  }
  return 0;
}
