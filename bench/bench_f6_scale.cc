// F6 — scalability with graph size: MBET and iMBEA runtime and node counts
// over an edge-count sweep of Erdős–Rényi and power-law graphs. Expected
// shape: runtime tracks the output size (biclique count) near-linearly,
// with power-law graphs producing far more bicliques per edge.

#include <cstdio>

#include "bench/harness.h"
#include "gen/generators.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace mbe;
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.AddInt("steps", 5, "number of sweep points");
  flags.Parse(argc, argv);
  const double budget = flags.GetDouble("budget");
  const int steps = static_cast<int>(flags.GetInt("steps"));

  bench::PrintBanner("F6", "scalability with |E| (ER and power-law sweeps)");
  bench::Table table({"family", "|U|", "|V|", "|E|", "bicliques", "MBET",
                      "iMBEA", "MBET nodes"});

  for (int family = 0; family < 2; ++family) {
    for (int step = 1; step <= steps; ++step) {
      const size_t num_left = 2000u * static_cast<size_t>(step);
      const size_t num_right = 1200u * static_cast<size_t>(step);
      const size_t edges = 9000u * static_cast<size_t>(step);
      BipartiteGraph graph =
          family == 0
              ? gen::UniformEdges(num_left, num_right, edges, 500 + step)
              : gen::PowerLaw(num_left, num_right, edges, 0.85, 0.8,
                              600 + step);

      Options mbet;
      bench::RunOutcome r_mbet = bench::TimedRun(graph, mbet, budget);
      Options imbea;
      imbea.algorithm = Algorithm::kImbea;
      bench::RunOutcome r_imbea = bench::TimedRun(graph, imbea, budget);

      table.AddRow({family == 0 ? "uniform" : "power-law",
                    std::to_string(num_left), std::to_string(num_right),
                    std::to_string(graph.num_edges()),
                    util::HumanCount(static_cast<double>(r_mbet.bicliques)),
                    bench::TimeCell(r_mbet, budget),
                    bench::TimeCell(r_imbea, budget),
                    util::HumanCount(
                        static_cast<double>(r_mbet.stats.nodes_expanded))});
    }
  }
  bench::EmitTable(table, flags);
  return 0;
}
