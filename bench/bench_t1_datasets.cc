// T1 — dataset statistics table (the shape of "Table 1" in MBE papers):
// |U|, |V|, |E|, D(U), D2(U), D(V), D2(V), and the maximal biclique count
// of every synthetic stand-in.

#include <cstdio>

#include "bench/harness.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace mbe;
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.Parse(argc, argv);
  const double scale = flags.GetDouble("scale");
  const double budget = flags.GetDouble("budget");

  bench::PrintBanner("T1", "dataset statistics (synthetic stand-ins)");
  bench::Table table({"dataset", "stands in for", "|U|", "|V|", "|E|", "D(U)",
                      "D2(U)", "D(V)", "D2(V)", "max. bicliques"});

  for (const std::string& name : bench::ResolveSuite(flags.GetString("suite"))) {
    const gen::DatasetSpec& spec = gen::FindDataset(name);
    BipartiteGraph graph = gen::Materialize(spec, scale);
    GraphStats stats = ComputeStats(graph, /*with_two_hop=*/true);

    Options options;  // MBET defaults
    options.threads = static_cast<unsigned>(flags.GetInt("threads"));
    bench::RunOutcome run = bench::TimedRun(graph, options, budget);
    std::string count = util::HumanCount(static_cast<double>(run.bicliques));
    if (!run.completed) count = ">" + count + " (budget)";

    table.AddRow({spec.name, spec.full_name, std::to_string(stats.num_left),
                  std::to_string(stats.num_right),
                  std::to_string(stats.num_edges),
                  std::to_string(stats.max_left_degree),
                  std::to_string(stats.max_left_two_hop),
                  std::to_string(stats.max_right_degree),
                  std::to_string(stats.max_right_two_hop), count});
  }
  bench::EmitTable(table, flags);
  return 0;
}
