// S11 — sensitivity of the adaptive-trie threshold (trie_min_groups): the
// analogue of the classic "threshold s" sensitivity experiments in the MBE
// literature. Small thresholds build tries on narrow nodes (build cost not
// amortized); huge thresholds never build one (forfeits probe sharing on
// wide nodes).

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace mbe;
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.Parse(argc, argv);
  const double scale = flags.GetDouble("scale");
  const double budget = flags.GetDouble("budget");

  bench::PrintBanner("S11", "adaptive-trie threshold sensitivity (MBET)");

  const uint32_t thresholds[] = {1, 2, 4, 8, 16, 64, 1u << 30};
  std::vector<std::string> headers = {"dataset"};
  for (uint32_t t : thresholds) {
    headers.push_back(t == 1u << 30 ? "never" : "t=" + std::to_string(t));
  }
  bench::Table table(headers);

  for (const std::string& name : bench::ResolveSuite(flags.GetString("suite"))) {
    BipartiteGraph graph = gen::Materialize(gen::FindDataset(name), scale);
    std::vector<std::string> row = {name};
    for (uint32_t t : thresholds) {
      Options options;
      options.mbet.trie_min_groups = t;
      bench::RunOutcome run = bench::TimedRun(graph, options, budget);
      row.push_back(bench::TimeCell(run, budget));
    }
    table.AddRow(std::move(row));
  }
  bench::EmitTable(table, flags);
  return 0;
}
