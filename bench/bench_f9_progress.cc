// F9 — progress over time on the largest stand-in (TVTropes-like):
// cumulative % of maximal bicliques emitted vs wall time for MBET and
// MBETM. Expected shape: steady near-linear emission; MBETM trails MBET by
// a constant factor (its per-node recomputation cost).

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "util/stats.h"
#include "util/timer.h"

namespace {

/// Sink recording emission timestamps at power-of-two-ish checkpoints.
class ProgressSink : public mbe::ResultSink {
 public:
  explicit ProgressSink(double deadline_seconds)
      : deadline_(deadline_seconds) {}

  void Emit(std::span<const mbe::VertexId>,
            std::span<const mbe::VertexId>) override {
    const uint64_t n = ++count_;
    if (n == next_checkpoint_) {
      checkpoints_.emplace_back(n, timer_.Seconds());
      next_checkpoint_ = next_checkpoint_ * 2;
    }
  }

  bool ShouldStop() const override { return timer_.Seconds() >= deadline_; }

  uint64_t count() const { return count_; }
  const std::vector<std::pair<uint64_t, double>>& checkpoints() const {
    return checkpoints_;
  }
  double elapsed() const { return timer_.Seconds(); }

 private:
  mbe::util::WallTimer timer_;
  double deadline_;
  uint64_t count_ = 0;
  uint64_t next_checkpoint_ = 1024;
  std::vector<std::pair<uint64_t, double>> checkpoints_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mbe;
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.AddString("dataset", "DBT", "which stand-in to run");
  flags.Parse(argc, argv);
  const double scale = flags.GetDouble("scale");
  const double budget =
      flags.GetDouble("budget") > 0 ? flags.GetDouble("budget") : 30.0;

  bench::PrintBanner("F9", "progress over time on the largest stand-in");
  BipartiteGraph graph =
      gen::Materialize(gen::FindDataset(flags.GetString("dataset")), scale);
  std::printf("graph: %s\n\n", graph.Summary().c_str());

  for (Algorithm algorithm : {Algorithm::kMbet, Algorithm::kMbetM}) {
    ProgressSink sink(budget);
    Options options;
    options.algorithm = algorithm;
    options.threads = static_cast<unsigned>(flags.GetInt("threads"));
    if (options.threads == 0) options.threads = 1;
    const util::Status status = Enumerate(graph, options, &sink, nullptr);
    PMBE_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
    std::printf("%s: %s bicliques in %s%s\n", AlgorithmName(algorithm),
                util::HumanCount(static_cast<double>(sink.count())).c_str(),
                util::HumanSeconds(sink.elapsed()).c_str(),
                sink.elapsed() >= budget ? " (budget hit)" : "");
    for (const auto& [n, t] : sink.checkpoints()) {
      std::printf("  %12llu bicliques @ %s\n",
                  static_cast<unsigned long long>(n),
                  util::HumanSeconds(t).c_str());
    }
  }
  return 0;
}
