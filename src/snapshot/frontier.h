#ifndef PMBE_SNAPSHOT_FRONTIER_H_
#define PMBE_SNAPSHOT_FRONTIER_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/bipartite_graph.h"
#include "parallel/work_stealing.h"
#include "util/status.h"

/// \file
/// The durable task frontier: a first-class, serializable view of the
/// parallel driver's outstanding work (docs/CHECKPOINT.md).
///
/// The unit of parallel work is already an independently re-runnable
/// subtree task — the encoded `(v, shard, num_shards)` word of
/// parallel/work_stealing.h. Before this module that frontier lived only
/// in volatile deque slots: a crash lost the whole run. `TaskFrontier`
/// tracks every task's lifecycle outside the deques:
///
///  * **live** — seeded or produced by a split, not yet finished. Live
///    tasks include in-flight ones: a snapshot taken while a task is
///    executing records it live, and a resumed run re-executes it from
///    scratch (its digest was never committed, so nothing is counted
///    twice).
///  * **completed** — finished exactly once, with an order-independent
///    result digest `(sum, xor, count)` over the task's emitted bicliques
///    (the same commutative accumulators as core/sink.h FingerprintSink).
///
/// Because every emitted biclique belongs to exactly one completed task
/// and the accumulators are commutative, the fold over all completed-task
/// digests is independent of thread count, scheduling, steal order, and —
/// crucially — of how subtrees were split into shards. Two runs (or a run
/// resumed across N crashes, or N process shards merged) that completed
/// the same enumeration produce bit-identical merged digests. That is the
/// restart-correctness proof scripts/check.sh exercises.
///
/// Every transition (seed, split, complete) is atomic under one mutex, so
/// a snapshot taken at ANY moment is consistent: each task is either live
/// or completed, never both, never lost. No global quiescence is needed —
/// "quiescent-point" checkpoints only mean each individual transition is
/// quiescent.
///
/// The binary serialization (EncodeSnapshot/DecodeSnapshot) follows the
/// serve/wire.cc codec discipline: little-endian, versioned, total
/// decoding (any byte string yields a snapshot or a typed
/// InvalidArgument/CorruptData, never a crash), and canonical — a decoded
/// snapshot re-encodes to exactly the input bytes, which the fuzzer
/// (tools/fuzz_frontier.cc) relies on to detect silent coercions.

namespace mbe::snapshot {

/// File magic "PMBF" (little-endian) and the current format version.
/// Decoding rejects other versions with InvalidArgument (version skew is
/// an environment error, not corruption).
inline constexpr uint32_t kSnapshotMagic = 0x46424d50u;  // "PMBF"
inline constexpr uint32_t kSnapshotVersion = 1;

/// Hard bound on tasks per section; a corrupt count cannot trigger a
/// giant allocation (also re-checked against the remaining byte count).
inline constexpr uint64_t kMaxSnapshotTasks = 1ull << 32;

/// Commutative result digest of one completed task: sum and xor of the
/// per-biclique hashes (core/biclique.h HashBiclique) plus the count.
struct TaskDigest {
  uint64_t sum = 0;
  uint64_t xr = 0;
  uint64_t count = 0;

  /// Folds another digest in (commutative and associative).
  void Merge(const TaskDigest& other) {
    sum += other.sum;
    xr ^= other.xr;
    count += other.count;
  }

  /// Folds the three accumulators into one comparable value, exactly like
  /// FingerprintSink::Digest so a frontier digest can be cross-checked
  /// against a whole-run fingerprint.
  uint64_t Value() const {
    uint64_t d = sum;
    d = d * 0x9e3779b97f4a7c15ULL + xr;
    d = d * 0x9e3779b97f4a7c15ULL + count;
    return d;
  }

  friend bool operator==(const TaskDigest&, const TaskDigest&) = default;
};

/// One completed-task record of a snapshot.
struct CompletedTask {
  uint64_t task = 0;  ///< encoded task word (work_stealing.h)
  TaskDigest digest;

  friend bool operator==(const CompletedTask&, const CompletedTask&) = default;
};

/// A serializable frontier state: header (what run this is), the live
/// task set, and the completed-task log. The in-memory mirror of one
/// snapshot file.
struct FrontierSnapshot {
  /// mbe::Algorithm numeric value of the enumerating engine. A snapshot
  /// only resumes onto the same algorithm — shard semantics are an
  /// engine contract.
  uint8_t algorithm = 0;

  /// True when the run drained every task (pending is empty). A complete
  /// snapshot resumes to a no-op, making resume idempotent.
  bool complete = false;

  /// Process-shard coordinates: this frontier holds the seeds v with
  /// ShardOfSeed(v, shard_count) == shard_index. (0, 1) = unsharded.
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;

  /// Fingerprint of the preprocessed graph the tasks refer to. Resume
  /// refuses a snapshot whose fingerprint does not match the graph built
  /// by the resuming process (task words index into this exact graph).
  uint64_t graph_left = 0;
  uint64_t graph_right = 0;
  uint64_t graph_edges = 0;
  uint64_t graph_hash = 0;

  /// Live tasks (pending + in-flight at snapshot time), strictly
  /// ascending encoded words.
  std::vector<uint64_t> pending;

  /// Completed-task log, strictly ascending by task word.
  std::vector<CompletedTask> completed;

  /// Fold of all completed-task digests (split-structure independent; see
  /// file comment).
  TaskDigest MergedDigest() const {
    TaskDigest d;
    for (const CompletedTask& c : completed) d.Merge(c.digest);
    return d;
  }

  friend bool operator==(const FrontierSnapshot&,
                         const FrontierSnapshot&) = default;
};

/// Deterministic fingerprint of a preprocessed graph: sizes plus a hash
/// of the full right-side adjacency. Two graphs with equal fingerprints
/// came (for resume purposes) from the same input and preprocessing.
uint64_t GraphFingerprint(const BipartiteGraph& graph);

/// Which process shard of `shard_count` owns seed vertex `v`
/// (splitmix64-mixed so consecutive ids spread across shards).
uint32_t ShardOfSeed(VertexId v, uint32_t shard_count);

/// Appends the canonical binary encoding of `snap` to `*out`. Fails
/// (leaving `*out` untouched) when the snapshot violates its own
/// invariants (unsorted/duplicate tasks, invalid task words, overlap
/// between pending and completed, complete with pending tasks).
util::Status EncodeSnapshot(const FrontierSnapshot& snap,
                            std::vector<uint8_t>* out);

/// Decodes one snapshot. Total: any input yields a snapshot or a typed
/// error — InvalidArgument for a version skew, CorruptData for anything
/// structurally wrong (bad magic, truncation, checksum mismatch,
/// non-canonical ordering, invalid task words, trailing bytes). Valid
/// encodings round-trip byte-identically.
util::StatusOr<FrontierSnapshot> DecodeSnapshot(
    std::span<const uint8_t> bytes);

/// The thread-safe live frontier the stealing driver operates against.
/// Header fields (algorithm, shard coordinates, graph fingerprint) are
/// fixed at construction; task state transitions are serialized by one
/// internal mutex so any concurrent BuildSnapshot observes a consistent
/// frontier.
class TaskFrontier {
 public:
  TaskFrontier(uint8_t algorithm, uint32_t shard_index, uint32_t shard_count,
               const BipartiteGraph& graph);

  TaskFrontier(const TaskFrontier&) = delete;
  TaskFrontier& operator=(const TaskFrontier&) = delete;

  /// Seeds one live task. Aborts on an invalid word or a duplicate
  /// (seeding is driver setup, not untrusted input).
  void AddPending(uint64_t task);

  /// Replaces the frontier's state with a decoded snapshot: pending tasks
  /// become live, the completed log is preloaded so finished subtrees are
  /// never re-run and their digests count exactly once. Fails with
  /// InvalidArgument when the snapshot's header does not match this
  /// frontier (different algorithm, shard coordinates, or graph).
  util::Status Restore(const FrontierSnapshot& snap);

  /// Atomically replaces live task `parent` (an unsplit word) with its
  /// `k` shard words. The split and the shard tasks' existence are one
  /// transition: no snapshot can see the parent gone but the shards
  /// missing.
  void RecordSplit(uint64_t parent, uint32_t k);

  /// Retires live task `task` with its result digest. Aborts if the task
  /// is not live (every task completes exactly once).
  void MarkCompleted(uint64_t task, const TaskDigest& digest);

  /// The live tasks, in ascending order (driver seeding order input).
  std::vector<uint64_t> PendingTasks() const;

  size_t pending_count() const;
  size_t completed_count() const;

  /// Fold of all completed-task digests so far.
  TaskDigest MergedDigest() const;

  /// Consistent point-in-time snapshot (complete = no live tasks).
  FrontierSnapshot BuildSnapshot() const;

 private:
  const uint8_t algorithm_;
  const uint32_t shard_index_;
  const uint32_t shard_count_;
  const uint64_t graph_left_;
  const uint64_t graph_right_;
  const uint64_t graph_edges_;
  const uint64_t graph_hash_;

  mutable std::mutex mu_;
  std::unordered_set<uint64_t> live_;
  std::unordered_map<uint64_t, TaskDigest> completed_;
};

}  // namespace mbe::snapshot

#endif  // PMBE_SNAPSHOT_FRONTIER_H_
