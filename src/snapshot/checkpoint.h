#ifndef PMBE_SNAPSHOT_CHECKPOINT_H_
#define PMBE_SNAPSHOT_CHECKPOINT_H_

#include <atomic>
#include <span>
#include <string>

#include "snapshot/frontier.h"
#include "util/status.h"

/// \file
/// Durable snapshot files: crash-safe persistence of a TaskFrontier and
/// the merge step that folds per-process shard files back into one result
/// (docs/CHECKPOINT.md).
///
/// Write discipline: encode → write to `path + ".tmp"` → fsync → rename
/// over `path` → fsync the directory. A reader therefore sees either the
/// previous complete snapshot or the new complete snapshot, never a torn
/// one — a SIGKILL at any instant leaves a resumable file. The checksum
/// inside the encoding (snapshot/frontier.h) additionally catches storage
/// corruption between write and resume.

namespace mbe::snapshot {

/// Caller-facing checkpoint configuration, carried through RunOptions into
/// the parallel driver. Default-constructed options disable checkpointing
/// entirely (the frontier machinery is never built).
struct CheckpointOptions {
  /// Snapshot file path; empty disables checkpointing. Periodic snapshots
  /// and the final state land here (via the atomic tmp+rename protocol).
  std::string path;

  /// Seconds between periodic snapshots; 0 disables the periodic writes
  /// (the final snapshot at drain is always written regardless, so 0 =
  /// "final snapshot only" — no mid-run crash protection).
  double every_s = 30.0;

  /// Resume from `path` instead of seeding a fresh frontier: completed
  /// tasks are never re-run (their logged digests count exactly once) and
  /// only live tasks are re-enqueued.
  bool resume = false;

  /// Process-shard coordinates: this process seeds only the subtree tasks
  /// with ShardOfSeed(v, shard_count) == shard_index. (0, 1) = the whole
  /// frontier. Shard runs write per-shard snapshot files that
  /// MergeSnapshots folds back together.
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;

  /// Optional checkpoint-stop token (e.g. set by a SIGTERM handler): when
  /// it becomes true the run stops with Termination::kCheckpointed after
  /// writing a final snapshot, the durable analog of cancellation.
  const std::atomic<bool>* checkpoint_stop = nullptr;

  bool enabled() const { return !path.empty(); }
};

/// Writes `snap` to `path` via the atomic tmp+rename protocol above.
/// Returns IoError on any filesystem failure (the previous snapshot at
/// `path`, if any, is left intact).
util::Status WriteSnapshotFile(const std::string& path,
                               const FrontierSnapshot& snap);

/// Reads and decodes one snapshot file. IoError when unreadable;
/// otherwise DecodeSnapshot's typed errors.
util::StatusOr<FrontierSnapshot> ReadSnapshotFile(const std::string& path);

/// Merges the per-process shard snapshots of one sharded run into a
/// single unsharded snapshot, cross-checking consistency: every shard
/// must be complete, agree on algorithm and graph fingerprint, declare
/// the same shard_count, and together form the full 0..N-1 partition
/// with disjoint task sets. The merged digest equals a single-process
/// run's (the digests are commutative; see snapshot/frontier.h).
util::StatusOr<FrontierSnapshot> MergeSnapshots(
    std::span<const FrontierSnapshot> shards);

}  // namespace mbe::snapshot

#endif  // PMBE_SNAPSHOT_CHECKPOINT_H_
