#include "snapshot/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <vector>

namespace mbe::snapshot {

namespace {

/// Directory part of `path` ("." when there is none) — the fsync target
/// that makes the rename itself durable.
std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

util::Status IoFail(const std::string& what, const std::string& path) {
  return util::Status::IoError(what + " " + path + ": " +
                               std::strerror(errno));
}

}  // namespace

util::Status WriteSnapshotFile(const std::string& path,
                               const FrontierSnapshot& snap) {
  std::vector<uint8_t> bytes;
  PMBE_RETURN_IF_ERROR(EncodeSnapshot(snap, &bytes));

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoFail("cannot create", tmp);
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const util::Status failed = IoFail("write failed for", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return failed;
    }
    off += static_cast<size_t>(n);
  }
  // fsync before rename: the rename must never publish a file whose bytes
  // are still only in the page cache.
  if (::fsync(fd) != 0) {
    const util::Status failed = IoFail("fsync failed for", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return failed;
  }
  if (::close(fd) != 0) {
    const util::Status failed = IoFail("close failed for", tmp);
    ::unlink(tmp.c_str());
    return failed;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const util::Status failed = IoFail("rename failed onto", path);
    ::unlink(tmp.c_str());
    return failed;
  }
  // Make the rename durable too. Failure here is not fatal to atomicity
  // (the data file itself is synced), so a directory that cannot be
  // opened/synced — some filesystems refuse — is tolerated.
  const int dfd = ::open(DirOf(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return util::Status::Ok();
}

util::StatusOr<FrontierSnapshot> ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::IoError("cannot read snapshot file " + path);
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (in.bad()) {
    return util::Status::IoError("read failed for snapshot file " + path);
  }
  return DecodeSnapshot(bytes);
}

util::StatusOr<FrontierSnapshot> MergeSnapshots(
    std::span<const FrontierSnapshot> shards) {
  if (shards.empty()) {
    return util::Status::InvalidArgument("no snapshots to merge");
  }
  const FrontierSnapshot& first = shards[0];
  if (first.shard_count != shards.size()) {
    return util::Status::InvalidArgument(
        "snapshot declares " + std::to_string(first.shard_count) +
        " process shards but " + std::to_string(shards.size()) +
        " were given");
  }
  std::vector<bool> seen(shards.size(), false);
  for (const FrontierSnapshot& s : shards) {
    if (s.algorithm != first.algorithm) {
      return util::Status::InvalidArgument(
          "shards disagree on the algorithm");
    }
    if (s.graph_left != first.graph_left ||
        s.graph_right != first.graph_right ||
        s.graph_edges != first.graph_edges ||
        s.graph_hash != first.graph_hash) {
      return util::Status::InvalidArgument(
          "shards disagree on the graph fingerprint (different inputs or "
          "preprocessing)");
    }
    if (s.shard_count != first.shard_count) {
      return util::Status::InvalidArgument(
          "shards disagree on the shard count");
    }
    if (s.shard_index >= s.shard_count || seen[s.shard_index]) {
      return util::Status::InvalidArgument(
          "shard index " + std::to_string(s.shard_index) +
          " duplicated or out of range: not a 0.." +
          std::to_string(s.shard_count - 1) + " partition");
    }
    seen[s.shard_index] = true;
    if (!s.complete) {
      return util::Status::InvalidArgument(
          "shard " + std::to_string(s.shard_index) +
          " is incomplete; resume it before merging");
    }
  }

  FrontierSnapshot merged;
  merged.algorithm = first.algorithm;
  merged.complete = true;
  merged.shard_index = 0;
  merged.shard_count = 1;
  merged.graph_left = first.graph_left;
  merged.graph_right = first.graph_right;
  merged.graph_edges = first.graph_edges;
  merged.graph_hash = first.graph_hash;
  for (const FrontierSnapshot& s : shards) {
    merged.completed.insert(merged.completed.end(), s.completed.begin(),
                            s.completed.end());
  }
  std::sort(merged.completed.begin(), merged.completed.end(),
            [](const CompletedTask& a, const CompletedTask& b) {
              return a.task < b.task;
            });
  for (size_t i = 1; i < merged.completed.size(); ++i) {
    if (merged.completed[i].task == merged.completed[i - 1].task) {
      return util::Status::CorruptData(
          "the same task is completed in two shards — the seed partition "
          "overlapped");
    }
  }
  return merged;
}

}  // namespace mbe::snapshot
