#include "snapshot/frontier.h"

#include <algorithm>

#include "util/common.h"

namespace mbe::snapshot {

namespace {

/// splitmix64 finalizer: the project's standard cheap mixer.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a 64 over a byte range — the snapshot file's integrity checksum.
/// Not cryptographic; it catches the torn writes and bit flips a durable
/// file format must detect, cheaply.
uint64_t Fnv1a(std::span<const uint8_t> bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// A task word is well-formed iff its shard coordinates are: at least one
/// shard, shard index within bounds. (num_shards occupies 16 bits, so the
/// kMaxTaskShards bound is structural.)
bool ValidTaskWord(uint64_t word) {
  const StealTask task = DecodeTask(word);
  return task.num_shards >= 1 && task.shard < task.num_shards;
}

/// Little-endian writer/reader mirroring serve/wire.cc. Kept local: the
/// wire codec is serve-layer (pmbe_serve) and this module sits below it.
class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out) {}
  void U8(uint8_t v) { out_->push_back(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_->push_back((v >> (8 * i)) & 0xff);
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_->push_back((v >> (8 * i)) & 0xff);
  }

 private:
  std::vector<uint8_t>* out_;
};

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return bytes_[pos_++];
  }
  /// Strict bool: only 0 and 1 are valid (canonical encoding).
  bool Bool() {
    const uint8_t v = U8();
    if (v > 1) ok_ = false;
    return v != 0;
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t{bytes_[pos_ + i]} << (8 * i);
    pos_ += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t{bytes_[pos_ + i]} << (8 * i);
    pos_ += 8;
    return v;
  }

  bool ok() const { return ok_; }
  size_t pos() const { return pos_; }
  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return ok_ && pos_ == bytes_.size(); }

 private:
  bool Need(size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Shared invariant checks between EncodeSnapshot (refusing to write a
/// malformed snapshot) and DecodeSnapshot (refusing to accept one).
util::Status CheckInvariants(const FrontierSnapshot& snap) {
  if (snap.shard_count < 1 || snap.shard_index >= snap.shard_count) {
    return util::Status::CorruptData(
        "snapshot shard coordinates invalid: index " +
        std::to_string(snap.shard_index) + " of " +
        std::to_string(snap.shard_count));
  }
  if (snap.complete && !snap.pending.empty()) {
    return util::Status::CorruptData(
        "snapshot marked complete but has pending tasks");
  }
  uint64_t prev = 0;
  bool first = true;
  for (uint64_t word : snap.pending) {
    if (!ValidTaskWord(word)) {
      return util::Status::CorruptData("invalid pending task word");
    }
    if (!first && word <= prev) {
      return util::Status::CorruptData(
          "pending tasks not strictly ascending");
    }
    prev = word;
    first = false;
  }
  prev = 0;
  first = true;
  for (const CompletedTask& c : snap.completed) {
    if (!ValidTaskWord(c.task)) {
      return util::Status::CorruptData("invalid completed task word");
    }
    if (!first && c.task <= prev) {
      return util::Status::CorruptData(
          "completed tasks not strictly ascending");
    }
    prev = c.task;
    first = false;
  }
  // Both lists are sorted; a linear sweep finds any overlap.
  size_t i = 0, j = 0;
  while (i < snap.pending.size() && j < snap.completed.size()) {
    if (snap.pending[i] == snap.completed[j].task) {
      return util::Status::CorruptData(
          "task is both pending and completed");
    }
    if (snap.pending[i] < snap.completed[j].task) {
      ++i;
    } else {
      ++j;
    }
  }
  return util::Status::Ok();
}

}  // namespace

uint64_t GraphFingerprint(const BipartiteGraph& graph) {
  uint64_t h = Mix64(graph.num_left() * 0x9e3779b97f4a7c15ULL ^
                     graph.num_right());
  for (VertexId v = 0; v < graph.num_right(); ++v) {
    uint64_t row = Mix64(uint64_t{v} + 0x517cc1b727220a95ULL);
    for (VertexId u : graph.RightNeighbors(v)) {
      row = Mix64(row ^ u);
    }
    // Commutative across rows would lose structure; chain them instead
    // (rows are visited in a fixed order, so the chain is deterministic).
    h = Mix64(h ^ row);
  }
  return h;
}

uint32_t ShardOfSeed(VertexId v, uint32_t shard_count) {
  PMBE_CHECK(shard_count >= 1);
  if (shard_count == 1) return 0;
  return static_cast<uint32_t>(Mix64(v) % shard_count);
}

util::Status EncodeSnapshot(const FrontierSnapshot& snap,
                            std::vector<uint8_t>* out) {
  PMBE_CHECK(out != nullptr);
  PMBE_RETURN_IF_ERROR(CheckInvariants(snap));
  std::vector<uint8_t> bytes;
  Writer w(&bytes);
  w.U32(kSnapshotMagic);
  w.U32(kSnapshotVersion);
  w.U8(snap.algorithm);
  w.U8(snap.complete ? 1 : 0);
  w.U32(snap.shard_index);
  w.U32(snap.shard_count);
  w.U64(snap.graph_left);
  w.U64(snap.graph_right);
  w.U64(snap.graph_edges);
  w.U64(snap.graph_hash);
  w.U64(snap.pending.size());
  for (uint64_t word : snap.pending) w.U64(word);
  w.U64(snap.completed.size());
  for (const CompletedTask& c : snap.completed) {
    w.U64(c.task);
    w.U64(c.digest.sum);
    w.U64(c.digest.xr);
    w.U64(c.digest.count);
  }
  w.U64(Fnv1a(bytes));
  out->insert(out->end(), bytes.begin(), bytes.end());
  return util::Status::Ok();
}

util::StatusOr<FrontierSnapshot> DecodeSnapshot(
    std::span<const uint8_t> bytes) {
  Reader r(bytes);
  if (r.U32() != kSnapshotMagic) {
    return util::Status::CorruptData(
        "not a frontier snapshot (bad magic)");
  }
  const uint32_t version = r.U32();
  if (!r.ok()) {
    return util::Status::CorruptData("truncated snapshot header");
  }
  if (version != kSnapshotVersion) {
    return util::Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kSnapshotVersion) +
        ")");
  }
  FrontierSnapshot snap;
  snap.algorithm = r.U8();
  snap.complete = r.Bool();
  snap.shard_index = r.U32();
  snap.shard_count = r.U32();
  snap.graph_left = r.U64();
  snap.graph_right = r.U64();
  snap.graph_edges = r.U64();
  snap.graph_hash = r.U64();

  const uint64_t pending_count = r.U64();
  // Each task is 8 bytes and the checksum needs 8 more: a count the
  // remaining bytes cannot hold is corrupt, checked before reserving.
  if (pending_count > kMaxSnapshotTasks ||
      !r.ok() || pending_count * 8 > r.remaining()) {
    return util::Status::CorruptData("pending task count out of range");
  }
  snap.pending.reserve(pending_count);
  for (uint64_t i = 0; i < pending_count; ++i) snap.pending.push_back(r.U64());

  const uint64_t completed_count = r.U64();
  if (completed_count > kMaxSnapshotTasks ||
      !r.ok() || completed_count * 32 > r.remaining()) {
    return util::Status::CorruptData("completed task count out of range");
  }
  snap.completed.reserve(completed_count);
  for (uint64_t i = 0; i < completed_count; ++i) {
    CompletedTask c;
    c.task = r.U64();
    c.digest.sum = r.U64();
    c.digest.xr = r.U64();
    c.digest.count = r.U64();
    snap.completed.push_back(c);
  }

  // Checksum covers every byte before it.
  const size_t body_end = r.pos();
  const uint64_t stored = r.U64();
  if (!r.ok()) {
    return util::Status::CorruptData("truncated snapshot");
  }
  if (!r.AtEnd()) {
    return util::Status::CorruptData("trailing bytes after snapshot");
  }
  if (stored != Fnv1a(bytes.subspan(0, body_end))) {
    return util::Status::CorruptData("snapshot checksum mismatch");
  }
  PMBE_RETURN_IF_ERROR(CheckInvariants(snap));
  return snap;
}

TaskFrontier::TaskFrontier(uint8_t algorithm, uint32_t shard_index,
                           uint32_t shard_count, const BipartiteGraph& graph)
    : algorithm_(algorithm),
      shard_index_(shard_index),
      shard_count_(shard_count),
      graph_left_(graph.num_left()),
      graph_right_(graph.num_right()),
      graph_edges_(graph.num_edges()),
      graph_hash_(GraphFingerprint(graph)) {
  PMBE_CHECK(shard_count_ >= 1 && shard_index_ < shard_count_);
}

void TaskFrontier::AddPending(uint64_t task) {
  PMBE_CHECK(ValidTaskWord(task));
  std::lock_guard<std::mutex> lock(mu_);
  PMBE_CHECK(completed_.find(task) == completed_.end());
  PMBE_CHECK(live_.insert(task).second);
}

util::Status TaskFrontier::Restore(const FrontierSnapshot& snap) {
  if (snap.algorithm != algorithm_) {
    return util::Status::InvalidArgument(
        "snapshot was taken with a different algorithm (id " +
        std::to_string(snap.algorithm) + ", resuming with id " +
        std::to_string(algorithm_) + ")");
  }
  if (snap.shard_index != shard_index_ || snap.shard_count != shard_count_) {
    return util::Status::InvalidArgument(
        "snapshot shard " + std::to_string(snap.shard_index) + "/" +
        std::to_string(snap.shard_count) + " does not match this run's " +
        std::to_string(shard_index_) + "/" + std::to_string(shard_count_));
  }
  if (snap.graph_left != graph_left_ || snap.graph_right != graph_right_ ||
      snap.graph_edges != graph_edges_ || snap.graph_hash != graph_hash_) {
    return util::Status::InvalidArgument(
        "snapshot graph fingerprint does not match the resuming graph "
        "(different input file, preprocessing, or ordering)");
  }
  // The codec only validates task words structurally; the seed-vertex
  // range check needs the graph, so it lives here. Completed tasks get
  // the same check: they never re-run, but their words feed the merged
  // digest and shard-merge bookkeeping, so an out-of-range word is just
  // as corrupt.
  for (uint64_t word : snap.pending) {
    if (DecodeTask(word).v >= graph_right_) {
      return util::Status::InvalidArgument(
          "snapshot task references a vertex beyond the graph");
    }
  }
  for (const CompletedTask& c : snap.completed) {
    if (DecodeTask(c.task).v >= graph_right_) {
      return util::Status::InvalidArgument(
          "snapshot task references a vertex beyond the graph");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  live_.clear();
  completed_.clear();
  live_.insert(snap.pending.begin(), snap.pending.end());
  for (const CompletedTask& c : snap.completed) {
    completed_.emplace(c.task, c.digest);
  }
  return util::Status::Ok();
}

void TaskFrontier::RecordSplit(uint64_t parent, uint32_t k) {
  const StealTask task = DecodeTask(parent);
  PMBE_CHECK(task.num_shards == 1 && k >= 2 && k <= kMaxTaskShards);
  std::lock_guard<std::mutex> lock(mu_);
  PMBE_CHECK(live_.erase(parent) == 1);
  for (uint32_t s = 0; s < k; ++s) {
    PMBE_CHECK(live_
                   .insert(EncodeTask(
                       {.v = task.v, .shard = s, .num_shards = k}))
                   .second);
  }
}

void TaskFrontier::MarkCompleted(uint64_t task, const TaskDigest& digest) {
  std::lock_guard<std::mutex> lock(mu_);
  PMBE_CHECK(live_.erase(task) == 1);
  PMBE_CHECK(completed_.emplace(task, digest).second);
}

std::vector<uint64_t> TaskFrontier::PendingTasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> tasks(live_.begin(), live_.end());
  std::sort(tasks.begin(), tasks.end());
  return tasks;
}

size_t TaskFrontier::pending_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

size_t TaskFrontier::completed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_.size();
}

TaskDigest TaskFrontier::MergedDigest() const {
  std::lock_guard<std::mutex> lock(mu_);
  TaskDigest d;
  for (const auto& [task, digest] : completed_) d.Merge(digest);
  return d;
}

FrontierSnapshot TaskFrontier::BuildSnapshot() const {
  FrontierSnapshot snap;
  snap.algorithm = algorithm_;
  snap.shard_index = shard_index_;
  snap.shard_count = shard_count_;
  snap.graph_left = graph_left_;
  snap.graph_right = graph_right_;
  snap.graph_edges = graph_edges_;
  snap.graph_hash = graph_hash_;
  std::lock_guard<std::mutex> lock(mu_);
  snap.pending.assign(live_.begin(), live_.end());
  std::sort(snap.pending.begin(), snap.pending.end());
  snap.completed.reserve(completed_.size());
  for (const auto& [task, digest] : completed_) {
    snap.completed.push_back(CompletedTask{task, digest});
  }
  std::sort(snap.completed.begin(), snap.completed.end(),
            [](const CompletedTask& a, const CompletedTask& b) {
              return a.task < b.task;
            });
  snap.complete = snap.pending.empty();
  return snap;
}

}  // namespace mbe::snapshot
