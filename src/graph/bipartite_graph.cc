#include "graph/bipartite_graph.h"

#include <algorithm>
#include <cstdio>

#include "graph/two_hop.h"

namespace mbe {

util::StatusOr<BipartiteGraph> BipartiteGraph::FromEdgesChecked(
    size_t num_left, size_t num_right, std::vector<Edge> edges) {
  for (const Edge& e : edges) {
    if (e.u >= num_left || e.v >= num_right) {
      char msg[96];
      std::snprintf(msg, sizeof(msg), "edge (%u, %u) out of range (%zu x %zu)",
                    e.u, e.v, num_left, num_right);
      return util::Status::InvalidArgument(msg);
    }
  }
  return FromEdges(num_left, num_right, std::move(edges));
}

BipartiteGraph BipartiteGraph::FromEdges(size_t num_left, size_t num_right,
                                         std::vector<Edge> edges) {
  for (const Edge& e : edges) {
    PMBE_CHECK_MSG(e.u < num_left && e.v < num_right,
                   "edge (%u, %u) out of range (%zu x %zu)", e.u, e.v,
                   num_left, num_right);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  BipartiteGraph g;
  g.left_offsets_.assign(num_left + 1, 0);
  g.right_offsets_.assign(num_right + 1, 0);
  for (const Edge& e : edges) {
    ++g.left_offsets_[e.u + 1];
    ++g.right_offsets_[e.v + 1];
  }
  for (size_t i = 1; i <= num_left; ++i) g.left_offsets_[i] += g.left_offsets_[i - 1];
  for (size_t i = 1; i <= num_right; ++i) g.right_offsets_[i] += g.right_offsets_[i - 1];

  g.left_adj_.resize(edges.size());
  g.right_adj_.resize(edges.size());
  // Edges are sorted (u, v); filling left adjacency in order keeps each
  // left list sorted by v.
  {
    std::vector<uint64_t> cursor(g.left_offsets_.begin(), g.left_offsets_.end() - 1);
    for (const Edge& e : edges) g.left_adj_[cursor[e.u]++] = e.v;
  }
  // For the right side, a second pass grouped by v: since edges are sorted
  // by (u, v), filling right lists in edge order keeps each right list
  // sorted by u.
  {
    std::vector<uint64_t> cursor(g.right_offsets_.begin(), g.right_offsets_.end() - 1);
    for (const Edge& e : edges) g.right_adj_[cursor[e.v]++] = e.u;
  }
  return g;
}

bool BipartiteGraph::HasEdge(VertexId u, VertexId v) const {
  if (u >= num_left() || v >= num_right()) return false;
  if (LeftDegree(u) <= RightDegree(v)) {
    auto nbrs = LeftNeighbors(u);
    return std::binary_search(nbrs.begin(), nbrs.end(), v);
  }
  auto nbrs = RightNeighbors(v);
  return std::binary_search(nbrs.begin(), nbrs.end(), u);
}

BipartiteGraph BipartiteGraph::Swapped() const {
  BipartiteGraph g;
  g.left_offsets_ = right_offsets_;
  g.left_adj_ = right_adj_;
  g.right_offsets_ = left_offsets_;
  g.right_adj_ = left_adj_;
  return g;
}

BipartiteGraph BipartiteGraph::RelabelRight(
    const std::vector<VertexId>& perm) const {
  const size_t n = num_right();
  PMBE_CHECK_MSG(perm.size() == n, "permutation size %zu != |V| %zu",
                 perm.size(), n);
  // inverse[old] = new.
  std::vector<VertexId> inverse(n, kInvalidVertex);
  for (size_t i = 0; i < n; ++i) {
    PMBE_CHECK_MSG(perm[i] < n && inverse[perm[i]] == kInvalidVertex,
                   "perm is not a permutation at index %zu", i);
    inverse[perm[i]] = static_cast<VertexId>(i);
  }

  std::vector<Edge> edges = ToEdges();
  for (Edge& e : edges) e.v = inverse[e.v];
  return FromEdges(num_left(), n, std::move(edges));
}

std::vector<Edge> BipartiteGraph::ToEdges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (VertexId u = 0; u < num_left(); ++u) {
    for (VertexId v : LeftNeighbors(u)) edges.push_back({u, v});
  }
  return edges;
}

size_t BipartiteGraph::MaxLeftDegree() const {
  size_t best = 0;
  for (VertexId u = 0; u < num_left(); ++u) best = std::max(best, LeftDegree(u));
  return best;
}

size_t BipartiteGraph::MaxRightDegree() const {
  size_t best = 0;
  for (VertexId v = 0; v < num_right(); ++v) best = std::max(best, RightDegree(v));
  return best;
}

size_t BipartiteGraph::MemoryBytes() const {
  return left_offsets_.size() * sizeof(uint64_t) +
         right_offsets_.size() * sizeof(uint64_t) +
         (left_adj_.size() + right_adj_.size()) * sizeof(VertexId);
}

std::string BipartiteGraph::Summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "|U|=%zu |V|=%zu |E|=%zu", num_left(),
                num_right(), num_edges());
  return buf;
}

GraphStats ComputeStats(const BipartiteGraph& graph, bool with_two_hop) {
  GraphStats s;
  s.num_left = graph.num_left();
  s.num_right = graph.num_right();
  s.num_edges = graph.num_edges();
  s.max_left_degree = graph.MaxLeftDegree();
  s.max_right_degree = graph.MaxRightDegree();
  s.avg_left_degree =
      s.num_left ? static_cast<double>(s.num_edges) / s.num_left : 0.0;
  s.avg_right_degree =
      s.num_right ? static_cast<double>(s.num_edges) / s.num_right : 0.0;
  if (with_two_hop) {
    s.max_left_two_hop = MaxTwoHopDegreeLeft(graph);
    s.max_right_two_hop = MaxTwoHopDegreeRight(graph);
  }
  return s;
}

}  // namespace mbe
