#ifndef PMBE_GRAPH_REDUCTION_H_
#define PMBE_GRAPH_REDUCTION_H_

#include <vector>

#include "graph/bipartite_graph.h"
#include "util/common.h"

/// \file
/// (p, q)-core reduction: the standard preprocessing for size-constrained
/// MBE. A maximal biclique with |L| >= p and |R| >= q only contains left
/// vertices of degree >= q and right vertices of degree >= p, so peeling
/// lower-degree vertices to a fixpoint shrinks the graph without losing
/// any such biclique. On skewed real-world graphs the (p, q)-core for even
/// small thresholds is dramatically smaller than the input.

namespace mbe {

/// Result of a core reduction: the reduced graph plus id maps back to the
/// input (new id -> old id, per side). Vertices are renumbered densely.
struct CoreReduction {
  BipartiteGraph graph;
  std::vector<VertexId> left_old;   ///< left_old[new_u] = old u
  std::vector<VertexId> right_old;  ///< right_old[new_v] = old v
  size_t removed_left = 0;
  size_t removed_right = 0;
};

/// Peels `graph` to its (p, q)-core: iteratively removes left vertices
/// with fewer than `q` remaining neighbors and right vertices with fewer
/// than `p`, until a fixpoint. With p <= 1 and q <= 1 the input is
/// returned unchanged (identity maps). Linear in |V| + |E|.
CoreReduction PqCoreReduce(const BipartiteGraph& graph, size_t p, size_t q);

}  // namespace mbe

#endif  // PMBE_GRAPH_REDUCTION_H_
