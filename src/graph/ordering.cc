#include "graph/ordering.h"

#include <algorithm>
#include <numeric>

#include "graph/two_hop.h"
#include "util/random.h"

namespace mbe {

VertexOrder ParseVertexOrder(const std::string& name) {
  if (name == "none") return VertexOrder::kNone;
  if (name == "deg-asc") return VertexOrder::kDegreeAsc;
  if (name == "deg-desc") return VertexOrder::kDegreeDesc;
  if (name == "twohop") return VertexOrder::kTwoHopAsc;
  if (name == "unilateral") return VertexOrder::kUnilateralAsc;
  if (name == "random") return VertexOrder::kRandom;
  PMBE_CHECK_MSG(false, "unknown vertex order '%s'", name.c_str());
  return VertexOrder::kNone;
}

const char* VertexOrderName(VertexOrder order) {
  switch (order) {
    case VertexOrder::kNone:
      return "none";
    case VertexOrder::kDegreeAsc:
      return "deg-asc";
    case VertexOrder::kDegreeDesc:
      return "deg-desc";
    case VertexOrder::kTwoHopAsc:
      return "twohop";
    case VertexOrder::kUnilateralAsc:
      return "unilateral";
    case VertexOrder::kRandom:
      return "random";
  }
  return "?";
}

namespace {

// Sorts right vertices by `key(v)` ascending, breaking ties by id for
// determinism.
template <typename KeyFn>
std::vector<VertexId> SortByKey(size_t n, KeyFn key) {
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](VertexId a, VertexId b) {
    const auto ka = key(a);
    const auto kb = key(b);
    if (ka != kb) return ka < kb;
    return a < b;
  });
  return perm;
}

// Exact |N2(v)| for all right vertices.
std::vector<size_t> TwoHopSizes(const BipartiteGraph& graph) {
  TwoHopScratch scratch(graph.num_right());
  std::vector<VertexId> n2;
  std::vector<size_t> sizes(graph.num_right(), 0);
  for (VertexId v = 0; v < graph.num_right(); ++v) {
    scratch.RightTwoHop(graph, v, &n2);
    sizes[v] = n2.size();
  }
  return sizes;
}

}  // namespace

std::vector<VertexId> UnilateralOrder(const BipartiteGraph& graph) {
  const size_t n = graph.num_right();
  // Budget on the materialized two-hop adjacency. Beyond it we fall back to
  // the static two-hop order: peeling would not be laptop-feasible and the
  // static order is the standard approximation.
  constexpr size_t kAdjacencyBudget = 64u << 20;  // entries

  // Materialize the two-hop adjacency (right-to-right projection).
  std::vector<std::vector<VertexId>> adj(n);
  {
    TwoHopScratch scratch(n);
    size_t total = 0;
    for (VertexId v = 0; v < n; ++v) {
      scratch.RightTwoHop(graph, v, &adj[v]);
      total += adj[v].size();
      if (total > kAdjacencyBudget) {
        const auto sizes = TwoHopSizes(graph);
        return SortByKey(n, [&](VertexId x) { return sizes[x]; });
      }
    }
  }

  // Min-degree peeling with a bucket queue (degeneracy order of the
  // projection graph).
  std::vector<size_t> degree(n);
  size_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = adj[v].size();
    max_degree = std::max(max_degree, degree[v]);
  }
  std::vector<std::vector<VertexId>> buckets(max_degree + 1);
  for (VertexId v = 0; v < n; ++v) buckets[degree[v]].push_back(v);

  std::vector<uint8_t> removed(n, 0);
  std::vector<VertexId> perm;
  perm.reserve(n);
  size_t cursor = 0;
  while (perm.size() < n) {
    while (cursor < buckets.size() && buckets[cursor].empty()) ++cursor;
    PMBE_CHECK(cursor < buckets.size());
    // Lazy deletion: entries may be stale (vertex removed or degree moved).
    VertexId v = buckets[cursor].back();
    buckets[cursor].pop_back();
    if (removed[v] || degree[v] != cursor) continue;
    removed[v] = 1;
    perm.push_back(v);
    for (VertexId w : adj[v]) {
      if (removed[w]) continue;
      const size_t d = degree[w];
      if (d > 0) {
        degree[w] = d - 1;
        buckets[d - 1].push_back(w);
        if (d - 1 < cursor) cursor = d - 1;
      }
    }
  }
  return perm;
}

std::vector<VertexId> MakeOrder(const BipartiteGraph& graph, VertexOrder order,
                                uint64_t seed) {
  const size_t n = graph.num_right();
  switch (order) {
    case VertexOrder::kNone: {
      std::vector<VertexId> perm(n);
      std::iota(perm.begin(), perm.end(), 0);
      return perm;
    }
    case VertexOrder::kDegreeAsc:
      return SortByKey(n, [&](VertexId v) { return graph.RightDegree(v); });
    case VertexOrder::kDegreeDesc:
      return SortByKey(n, [&](VertexId v) {
        return graph.num_left() - graph.RightDegree(v);
      });
    case VertexOrder::kTwoHopAsc: {
      const auto sizes = TwoHopSizes(graph);
      return SortByKey(n, [&](VertexId v) { return sizes[v]; });
    }
    case VertexOrder::kUnilateralAsc:
      return UnilateralOrder(graph);
    case VertexOrder::kRandom: {
      std::vector<VertexId> perm(n);
      std::iota(perm.begin(), perm.end(), 0);
      util::Rng rng(seed);
      for (size_t i = n; i > 1; --i) {
        const size_t j = rng.Below(i);
        std::swap(perm[i - 1], perm[j]);
      }
      return perm;
    }
  }
  PMBE_CHECK(false);
  return {};
}

BipartiteGraph ApplyOrder(const BipartiteGraph& graph, VertexOrder order,
                          uint64_t seed) {
  if (order == VertexOrder::kNone) return graph;
  return graph.RelabelRight(MakeOrder(graph, order, seed));
}

}  // namespace mbe
