#include "graph/graph_io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace mbe {

namespace {

// Parses one whitespace-separated unsigned integer starting at `pos` in
// `line`. Returns false when no integer is found.
bool ParseUint(const std::string& line, size_t* pos, uint64_t* out) {
  size_t i = *pos;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  if (i >= line.size() || !std::isdigit(static_cast<unsigned char>(line[i]))) {
    return false;
  }
  uint64_t value = 0;
  while (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i]))) {
    value = value * 10 + static_cast<uint64_t>(line[i] - '0');
    ++i;
  }
  *pos = i;
  *out = value;
  return true;
}

struct ParsedEdges {
  std::vector<Edge> edges;
  uint64_t max_u = 0;
  uint64_t max_v = 0;
  bool any = false;
  // Optional "# pmbe L R" header.
  bool has_header = false;
  uint64_t header_left = 0;
  uint64_t header_right = 0;
};

util::Status ParseLines(std::istream& in, bool one_based, ParsedEdges* out) {
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#' || line[0] == '%') {
      // Recognize the round-trip header "# pmbe L R".
      std::istringstream hs(line.substr(1));
      std::string tag;
      if (hs >> tag && tag == "pmbe") {
        uint64_t l = 0, r = 0;
        if (hs >> l >> r) {
          out->has_header = true;
          out->header_left = l;
          out->header_right = r;
        }
      }
      continue;
    }
    size_t pos = 0;
    uint64_t u = 0, v = 0;
    if (!ParseUint(line, &pos, &u) || !ParseUint(line, &pos, &v)) {
      return util::Status::CorruptData("line " + std::to_string(lineno) +
                                       ": expected 'u v'");
    }
    if (one_based) {
      if (u == 0 || v == 0) {
        return util::Status::CorruptData("line " + std::to_string(lineno) +
                                         ": 1-based id is 0");
      }
      --u;
      --v;
    }
    if (u > 0xFFFFFFFEULL || v > 0xFFFFFFFEULL) {
      return util::Status::OutOfRange("line " + std::to_string(lineno) +
                                      ": vertex id exceeds 32-bit range");
    }
    out->edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v)});
    out->max_u = std::max(out->max_u, u);
    out->max_v = std::max(out->max_v, v);
    out->any = true;
  }
  return util::Status::Ok();
}

util::StatusOr<BipartiteGraph> BuildFromParsed(ParsedEdges parsed) {
  size_t num_left = parsed.any ? parsed.max_u + 1 : 0;
  size_t num_right = parsed.any ? parsed.max_v + 1 : 0;
  if (parsed.has_header) {
    if (parsed.header_left < num_left || parsed.header_right < num_right) {
      return util::Status::CorruptData(
          "header cardinalities smaller than max edge id");
    }
    num_left = parsed.header_left;
    num_right = parsed.header_right;
  }
  // Checked construction: file contents are untrusted, so an inconsistent
  // edge list must surface as a Status, not a process abort.
  return BipartiteGraph::FromEdgesChecked(num_left, num_right,
                                          std::move(parsed.edges));
}

}  // namespace

util::StatusOr<BipartiteGraph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open " + path);
  ParsedEdges parsed;
  PMBE_RETURN_IF_ERROR(ParseLines(in, /*one_based=*/false, &parsed));
  return BuildFromParsed(std::move(parsed));
}

util::StatusOr<BipartiteGraph> LoadKonect(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open " + path);
  ParsedEdges parsed;
  PMBE_RETURN_IF_ERROR(ParseLines(in, /*one_based=*/true, &parsed));
  return BuildFromParsed(std::move(parsed));
}

util::StatusOr<BipartiteGraph> ParseEdgeListText(const std::string& text) {
  std::istringstream in(text);
  ParsedEdges parsed;
  PMBE_RETURN_IF_ERROR(ParseLines(in, /*one_based=*/false, &parsed));
  return BuildFromParsed(std::move(parsed));
}

util::Status SaveEdgeList(const BipartiteGraph& graph,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot write " + path);
  out << "# pmbe " << graph.num_left() << " " << graph.num_right() << "\n";
  for (VertexId u = 0; u < graph.num_left(); ++u) {
    for (VertexId v : graph.LeftNeighbors(u)) {
      out << u << " " << v << "\n";
    }
  }
  out.flush();
  if (!out) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

}  // namespace mbe
