#include "graph/graph_io.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include <fstream>

#include "util/fault.h"

namespace mbe {

namespace {

enum class UintParse { kNone, kOk, kOverflow };

// Parses one whitespace-separated unsigned integer starting at `pos` in
// `line`. kNone when no integer starts there; kOverflow when the digits
// exceed 64 bits (the digit run is still consumed, so the caller reports
// the right position).
UintParse ParseUint(const std::string& line, size_t* pos, uint64_t* out) {
  size_t i = *pos;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  if (i >= line.size() || !std::isdigit(static_cast<unsigned char>(line[i]))) {
    return UintParse::kNone;
  }
  uint64_t value = 0;
  bool overflow = false;
  while (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i]))) {
    const uint64_t digit = static_cast<uint64_t>(line[i] - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      overflow = true;  // keep consuming the digit run
    } else {
      value = value * 10 + digit;
    }
    ++i;
  }
  *pos = i;
  *out = value;
  return overflow ? UintParse::kOverflow : UintParse::kOk;
}

struct ParsedEdges {
  std::vector<Edge> edges;
  /// Source line of each edge; filled only in strict mode (duplicate
  /// reporting needs it).
  std::vector<uint64_t> linenos;
  uint64_t max_u = 0;
  uint64_t max_v = 0;
  /// Lines where max_u / max_v were last raised (header-consistency
  /// diagnostics).
  uint64_t max_u_lineno = 0;
  uint64_t max_v_lineno = 0;
  bool any = false;
  // Optional "# pmbe L R" header.
  bool has_header = false;
  uint64_t header_lineno = 0;
  uint64_t header_left = 0;
  uint64_t header_right = 0;
};

std::string AtLine(uint64_t lineno) {
  return "line " + std::to_string(lineno);
}

/// `strict` (plain edge lists) rejects trailing garbage after `u v` and
/// records per-edge line numbers for duplicate detection. KONECT rows stay
/// lenient: they legitimately carry weight/timestamp columns and the
/// format's multi-edges are documented to collapse.
util::Status ParseLines(std::istream& in, bool one_based, bool strict,
                        ParsedEdges* out) {
  std::string line;
  uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // "loader.line" models the read failing mid-file (truncated disk,
    // failing device).
    if (PMBE_FAULT("loader.line")) {
      return util::Status::IoError(AtLine(lineno) +
                                   ": injected fault: loader.line");
    }
    if (line.empty()) continue;
    if (line[0] == '#' || line[0] == '%') {
      // Recognize the round-trip header "# pmbe L R".
      std::istringstream hs(line.substr(1));
      std::string tag;
      if (hs >> tag && tag == "pmbe") {
        uint64_t l = 0, r = 0;
        if (hs >> l >> r) {
          if (out->has_header) {
            return util::Status::CorruptData(
                AtLine(lineno) + ": duplicate '# pmbe' header (first at " +
                AtLine(out->header_lineno) + ")");
          }
          out->has_header = true;
          out->header_lineno = lineno;
          out->header_left = l;
          out->header_right = r;
        }
      }
      continue;
    }
    size_t pos = 0;
    uint64_t u = 0, v = 0;
    const UintParse pu = ParseUint(line, &pos, &u);
    const UintParse pv =
        pu == UintParse::kNone ? UintParse::kNone : ParseUint(line, &pos, &v);
    if (pu == UintParse::kNone || pv == UintParse::kNone) {
      return util::Status::CorruptData(AtLine(lineno) + ": expected 'u v'");
    }
    if (pu == UintParse::kOverflow || pv == UintParse::kOverflow) {
      return util::Status::OutOfRange(AtLine(lineno) +
                                      ": vertex id overflows 64 bits");
    }
    if (strict) {
      size_t rest = pos;
      while (rest < line.size() &&
             std::isspace(static_cast<unsigned char>(line[rest]))) {
        ++rest;
      }
      if (rest < line.size()) {
        return util::Status::CorruptData(
            AtLine(lineno) + ": trailing characters after 'u v': '" +
            line.substr(rest) + "'");
      }
    }
    if (one_based) {
      if (u == 0 || v == 0) {
        return util::Status::CorruptData(AtLine(lineno) +
                                         ": 1-based id is 0");
      }
      --u;
      --v;
    }
    if (u > 0xFFFFFFFEULL || v > 0xFFFFFFFEULL) {
      return util::Status::OutOfRange(AtLine(lineno) +
                                      ": vertex id exceeds 32-bit range");
    }
    out->edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v)});
    if (strict) out->linenos.push_back(lineno);
    if (!out->any || u > out->max_u) {
      out->max_u = u;
      out->max_u_lineno = lineno;
    }
    if (!out->any || v > out->max_v) {
      out->max_v = v;
      out->max_v_lineno = lineno;
    }
    out->any = true;
  }
  return util::Status::Ok();
}

/// Strict-mode duplicate rejection: a plain edge list naming the same edge
/// twice is almost always a generator or concatenation bug, and silently
/// collapsing it would hide that the input is not the graph the caller
/// thinks it is. Reports both source lines.
util::Status CheckDuplicateEdges(const ParsedEdges& parsed) {
  PMBE_CHECK(parsed.linenos.size() == parsed.edges.size());
  std::vector<size_t> idx(parsed.edges.size());
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    const Edge& ea = parsed.edges[a];
    const Edge& eb = parsed.edges[b];
    if (ea.u != eb.u) return ea.u < eb.u;
    if (ea.v != eb.v) return ea.v < eb.v;
    return parsed.linenos[a] < parsed.linenos[b];
  });
  for (size_t i = 1; i < idx.size(); ++i) {
    const Edge& prev = parsed.edges[idx[i - 1]];
    const Edge& cur = parsed.edges[idx[i]];
    if (prev.u == cur.u && prev.v == cur.v) {
      return util::Status::CorruptData(
          AtLine(parsed.linenos[idx[i]]) + ": duplicate edge " +
          std::to_string(cur.u) + " " + std::to_string(cur.v) +
          " (first at " + AtLine(parsed.linenos[idx[i - 1]]) + ")");
    }
  }
  return util::Status::Ok();
}

/// Memory-amplification guard: the CSR allocates O(num_left + num_right),
/// so a few bytes of input declaring a huge cardinality (a header like
/// `# pmbe 999999999 2`, or one edge naming vertex 99999999) would commit
/// gigabytes before any validation could object. Cap the vertex count at a
/// multiple of the edge count (plus slack so small files are never
/// affected); any real dataset has degree >= 1 on all but a sliver of its
/// vertices and passes with room to spare.
constexpr uint64_t kIsolatedSlack = 65536;

util::StatusOr<BipartiteGraph> BuildFromParsed(ParsedEdges parsed) {
  size_t num_left = parsed.any ? parsed.max_u + 1 : 0;
  size_t num_right = parsed.any ? parsed.max_v + 1 : 0;
  if (parsed.has_header) {
    if (parsed.header_left > 0xFFFFFFFFULL ||
        parsed.header_right > 0xFFFFFFFFULL) {
      return util::Status::OutOfRange(
          "header at " + AtLine(parsed.header_lineno) +
          ": cardinality exceeds 32-bit range");
    }
    if (parsed.header_left < num_left) {
      return util::Status::CorruptData(
          "header at " + AtLine(parsed.header_lineno) + " declares " +
          std::to_string(parsed.header_left) + " left vertices but " +
          AtLine(parsed.max_u_lineno) + " has left id " +
          std::to_string(parsed.max_u));
    }
    if (parsed.header_right < num_right) {
      return util::Status::CorruptData(
          "header at " + AtLine(parsed.header_lineno) + " declares " +
          std::to_string(parsed.header_right) + " right vertices but " +
          AtLine(parsed.max_v_lineno) + " has right id " +
          std::to_string(parsed.max_v));
    }
    num_left = parsed.header_left;
    num_right = parsed.header_right;
  }
  const uint64_t total = static_cast<uint64_t>(num_left) + num_right;
  if (total > 2 * static_cast<uint64_t>(parsed.edges.size()) + kIsolatedSlack) {
    const uint64_t lineno = parsed.has_header
                                ? parsed.header_lineno
                                : std::max(parsed.max_u_lineno,
                                           parsed.max_v_lineno);
    return util::Status::OutOfRange(
        AtLine(lineno) + ": declares " + std::to_string(total) +
        " vertices with only " + std::to_string(parsed.edges.size()) +
        " edges (memory-amplification guard)");
  }
  // Checked construction: file contents are untrusted, so an inconsistent
  // edge list must surface as a Status, not a process abort.
  return BipartiteGraph::FromEdgesChecked(num_left, num_right,
                                          std::move(parsed.edges));
}

}  // namespace

util::StatusOr<BipartiteGraph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open " + path);
  ParsedEdges parsed;
  PMBE_RETURN_IF_ERROR(ParseLines(in, /*one_based=*/false, /*strict=*/true,
                                  &parsed));
  PMBE_RETURN_IF_ERROR(CheckDuplicateEdges(parsed));
  return BuildFromParsed(std::move(parsed));
}

util::StatusOr<BipartiteGraph> LoadKonect(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open " + path);
  ParsedEdges parsed;
  PMBE_RETURN_IF_ERROR(ParseLines(in, /*one_based=*/true, /*strict=*/false,
                                  &parsed));
  return BuildFromParsed(std::move(parsed));
}

util::StatusOr<BipartiteGraph> ParseEdgeListText(const std::string& text) {
  std::istringstream in(text);
  ParsedEdges parsed;
  PMBE_RETURN_IF_ERROR(ParseLines(in, /*one_based=*/false, /*strict=*/true,
                                  &parsed));
  PMBE_RETURN_IF_ERROR(CheckDuplicateEdges(parsed));
  return BuildFromParsed(std::move(parsed));
}

util::StatusOr<BipartiteGraph> ParseKonectText(const std::string& text) {
  std::istringstream in(text);
  ParsedEdges parsed;
  PMBE_RETURN_IF_ERROR(ParseLines(in, /*one_based=*/true, /*strict=*/false,
                                  &parsed));
  return BuildFromParsed(std::move(parsed));
}

util::Status SaveEdgeList(const BipartiteGraph& graph,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot write " + path);
  out << "# pmbe " << graph.num_left() << " " << graph.num_right() << "\n";
  for (VertexId u = 0; u < graph.num_left(); ++u) {
    for (VertexId v : graph.LeftNeighbors(u)) {
      out << u << " " << v << "\n";
    }
  }
  out.flush();
  if (!out) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

}  // namespace mbe
