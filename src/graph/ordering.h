#ifndef PMBE_GRAPH_ORDERING_H_
#define PMBE_GRAPH_ORDERING_H_

#include <string>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/common.h"

/// \file
/// Right-side vertex orderings. The enumeration traverses right-side
/// candidates in a fixed global order; the choice of order is one of the
/// classic levers of MBE performance (pruning happens earlier when
/// low-degree vertices come first), and is one of our ablation axes (F5).
///
/// An "ordering" is returned as a permutation `perm` where `perm[i]` is the
/// old id of the vertex placed at position `i`. Apply it with
/// `BipartiteGraph::RelabelRight(perm)` so that the enumerators can simply
/// traverse ids ascending.

namespace mbe {

/// Which right-side ordering to apply before enumeration.
enum class VertexOrder {
  kNone,           ///< keep input ids
  kDegreeAsc,      ///< ascending degree (the common default in MBE papers)
  kDegreeDesc,     ///< descending degree
  kTwoHopAsc,      ///< ascending two-hop degree |N2(v)|
  kUnilateralAsc,  ///< ascending unilateral (core-style) order, ooMBEA-like
  kRandom,         ///< random shuffle (baseline for ordering sensitivity)
};

/// Parses a flag value ("none", "deg-asc", "deg-desc", "twohop", "unilateral",
/// "random"); aborts on unknown names.
VertexOrder ParseVertexOrder(const std::string& name);

/// Stable display name for an order.
const char* VertexOrderName(VertexOrder order);

/// Computes the permutation realizing `order` on `graph`'s right side.
/// `seed` is only used by kRandom.
std::vector<VertexId> MakeOrder(const BipartiteGraph& graph, VertexOrder order,
                                uint64_t seed = 1);

/// Convenience: relabels the right side of `graph` by `order`.
BipartiteGraph ApplyOrder(const BipartiteGraph& graph, VertexOrder order,
                          uint64_t seed = 1);

/// The unilateral order used by kUnilateralAsc, exposed for testing:
/// a peeling order on right vertices where each round removes the vertex
/// with the smallest number of *remaining* two-hop neighbors, approximated
/// with lazy counters for scalability. This follows the spirit of the
/// unilateral coreness order of ooMBEA (Chen et al., VLDB 2022).
std::vector<VertexId> UnilateralOrder(const BipartiteGraph& graph);

}  // namespace mbe

#endif  // PMBE_GRAPH_ORDERING_H_
