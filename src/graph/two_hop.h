#ifndef PMBE_GRAPH_TWO_HOP_H_
#define PMBE_GRAPH_TWO_HOP_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/bitset.h"
#include "util/common.h"

/// \file
/// Two-hop neighborhood computation. For a right vertex `v`, the two-hop
/// neighborhood N2(v) is the set of right vertices (other than v) sharing at
/// least one left neighbor with v. Subtree roots in the enumeration are
/// seeded from two-hop neighborhoods, so this is on the startup path of
/// every algorithm.

namespace mbe {

/// Reusable scratch for repeated two-hop computations; holds a bitmap mark
/// over one side of the graph (util/bitset.h words — 1 bit per vertex, so
/// the scratch for even the largest side stays cache-resident).
class TwoHopScratch {
 public:
  /// Prepares scratch for graphs with at most `num_right` right vertices.
  explicit TwoHopScratch(size_t num_right)
      : mark_(util::WordsFor(num_right), 0) {}

  /// Computes N2(v) on the right side into `out` (sorted ascending).
  /// `out` is cleared first.
  void RightTwoHop(const BipartiteGraph& graph, VertexId v,
                   std::vector<VertexId>* out);

 private:
  std::vector<uint64_t> mark_;
  std::vector<VertexId> touched_;
};

/// Exact maximum |N2(u)| over left vertices (the paper tables' D2(U)).
size_t MaxTwoHopDegreeLeft(const BipartiteGraph& graph);

/// Exact maximum |N2(v)| over right vertices (the paper tables' D2(V)).
size_t MaxTwoHopDegreeRight(const BipartiteGraph& graph);

}  // namespace mbe

#endif  // PMBE_GRAPH_TWO_HOP_H_
