#ifndef PMBE_GRAPH_BIPARTITE_GRAPH_H_
#define PMBE_GRAPH_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/common.h"
#include "util/status.h"

/// \file
/// The bipartite graph substrate: an immutable compressed-sparse-row (CSR)
/// representation storing adjacency for BOTH sides, with sorted neighbor
/// lists. All enumeration algorithms in this library operate on this type.
///
/// Conventions:
///  * The two sides are called "left" (U) and "right" (V).
///  * Enumeration iterates over the right side; preprocessing can swap the
///    sides so that the right side is the smaller one (the standard choice
///    in the MBE literature).
///  * Vertices on each side are densely numbered 0..n-1. Neighbor lists are
///    strictly increasing (duplicates removed at build time).

namespace mbe {

/// One undirected edge between left vertex `u` and right vertex `v`.
struct Edge {
  VertexId u;
  VertexId v;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Immutable bipartite graph in dual-CSR form.
class BipartiteGraph {
 public:
  /// Builds a graph from an edge list. Duplicate edges are removed.
  /// `num_left`/`num_right` give the side cardinalities; every edge must
  /// satisfy `u < num_left && v < num_right` — violations abort via
  /// PMBE_CHECK in every build mode (never silently accepted in release).
  /// Code handling untrusted input should use FromEdgesChecked instead.
  static BipartiteGraph FromEdges(size_t num_left, size_t num_right,
                                  std::vector<Edge> edges);

  /// As FromEdges, but returns InvalidArgument instead of aborting when an
  /// edge is out of range. The graceful entry point for untrusted edge
  /// lists (file loaders, network input).
  static util::StatusOr<BipartiteGraph> FromEdgesChecked(
      size_t num_left, size_t num_right, std::vector<Edge> edges);

  /// An empty graph (no vertices, no edges).
  BipartiteGraph() = default;

  // Copyable and movable: a graph is a value.
  BipartiteGraph(const BipartiteGraph&) = default;
  BipartiteGraph& operator=(const BipartiteGraph&) = default;
  BipartiteGraph(BipartiteGraph&&) = default;
  BipartiteGraph& operator=(BipartiteGraph&&) = default;

  size_t num_left() const { return left_offsets_.empty() ? 0 : left_offsets_.size() - 1; }
  size_t num_right() const { return right_offsets_.empty() ? 0 : right_offsets_.size() - 1; }
  size_t num_edges() const { return right_adj_.size(); }

  /// Sorted neighbors (right-side ids) of left vertex `u`.
  std::span<const VertexId> LeftNeighbors(VertexId u) const {
    PMBE_DCHECK(u < num_left());
    return {left_adj_.data() + left_offsets_[u],
            left_adj_.data() + left_offsets_[u + 1]};
  }

  /// Sorted neighbors (left-side ids) of right vertex `v`.
  std::span<const VertexId> RightNeighbors(VertexId v) const {
    PMBE_DCHECK(v < num_right());
    return {right_adj_.data() + right_offsets_[v],
            right_adj_.data() + right_offsets_[v + 1]};
  }

  size_t LeftDegree(VertexId u) const {
    PMBE_DCHECK(u < num_left());
    return left_offsets_[u + 1] - left_offsets_[u];
  }
  size_t RightDegree(VertexId v) const {
    PMBE_DCHECK(v < num_right());
    return right_offsets_[v + 1] - right_offsets_[v];
  }

  /// True if edge (u, v) exists; binary search over the shorter list.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Returns the graph with left and right sides exchanged.
  BipartiteGraph Swapped() const;

  /// Returns a copy of this graph with the RIGHT side relabeled:
  /// new id i corresponds to old id `perm[i]`. Neighbor lists on the left
  /// side are re-sorted accordingly. `perm` must be a permutation of
  /// 0..num_right-1 (checked).
  BipartiteGraph RelabelRight(const std::vector<VertexId>& perm) const;

  /// Returns all edges in (u-major, v-minor) sorted order.
  std::vector<Edge> ToEdges() const;

  /// Maximum degree over left / right side (0 for an empty side).
  size_t MaxLeftDegree() const;
  size_t MaxRightDegree() const;

  /// Total bytes held by the CSR arrays.
  size_t MemoryBytes() const;

  /// Short human-readable summary ("|U|=.. |V|=.. |E|=..").
  std::string Summary() const;

  friend bool operator==(const BipartiteGraph&, const BipartiteGraph&) = default;

 private:
  // offsets have size n+1 (or 0 for a default-constructed graph).
  std::vector<uint64_t> left_offsets_;
  std::vector<VertexId> left_adj_;
  std::vector<uint64_t> right_offsets_;
  std::vector<VertexId> right_adj_;
};

/// Statistics the MBE literature reports per dataset (Table 1 shape).
struct GraphStats {
  size_t num_left = 0;
  size_t num_right = 0;
  size_t num_edges = 0;
  size_t max_left_degree = 0;    ///< D(U)
  size_t max_right_degree = 0;   ///< D(V)
  size_t max_left_two_hop = 0;   ///< D2(U)
  size_t max_right_two_hop = 0;  ///< D2(V)
  double avg_left_degree = 0.0;
  double avg_right_degree = 0.0;
};

/// Computes dataset statistics. Two-hop degrees are exact (one scan per
/// vertex over its neighbors' lists) and may take O(sum of wedge counts);
/// for quick summaries set `with_two_hop=false` to skip them.
GraphStats ComputeStats(const BipartiteGraph& graph, bool with_two_hop = true);

}  // namespace mbe

#endif  // PMBE_GRAPH_BIPARTITE_GRAPH_H_
