#ifndef PMBE_GRAPH_GRAPH_IO_H_
#define PMBE_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/bipartite_graph.h"
#include "util/status.h"

/// \file
/// Text loaders/writers for bipartite graphs.
///
/// Two formats are supported:
///
///  1. **Plain edge list** (`.txt`): lines of `u v`, whitespace separated,
///     `#` or `%` comment lines ignored. Vertex ids are 0-based; the side
///     cardinalities are `max id + 1` unless a header line
///     `# pmbe <num_left> <num_right>` is present. The plain loader is
///     *strict*: overflowing ids, trailing characters after `u v`,
///     duplicate edges, a repeated `# pmbe` header, or header
///     cardinalities inconsistent with the edges are all rejected with a
///     CorruptData/OutOfRange status that names the offending line(s).
///  2. **KONECT-style** (`out.*`): the first line is
///     `% bip unweighted ...` (ignored apart from the leading `%`), and
///     edges are 1-based `u v [weight [timestamp]]`; weights/timestamps are
///     ignored and multi-edges collapsed, matching how the MBE literature
///     preprocesses KONECT datasets. KONECT parsing is deliberately
///     lenient about extra columns and multi-edges, but still rejects
///     malformed and overflowing ids with line numbers.
///
/// Both loaders additionally refuse inputs whose (declared or inferred)
/// vertex count exceeds `2 * edges + 65536` — a memory-amplification guard
/// keeping loader allocation linear in the input size; see
/// docs/ROBUSTNESS.md.

namespace mbe {

/// Loads a plain 0-based edge list.
util::StatusOr<BipartiteGraph> LoadEdgeList(const std::string& path);

/// Loads a KONECT-style 1-based edge list.
util::StatusOr<BipartiteGraph> LoadKonect(const std::string& path);

/// Writes `graph` as a plain edge list with a `# pmbe` header so that the
/// side cardinalities round-trip even with isolated vertices.
util::Status SaveEdgeList(const BipartiteGraph& graph,
                          const std::string& path);

/// Parses edge-list text from a string (same format and strictness as
/// LoadEdgeList); useful in tests.
util::StatusOr<BipartiteGraph> ParseEdgeListText(const std::string& text);

/// Parses KONECT-style text from a string (same format and leniency as
/// LoadKonect); useful in tests and the fuzz harness.
util::StatusOr<BipartiteGraph> ParseKonectText(const std::string& text);

}  // namespace mbe

#endif  // PMBE_GRAPH_GRAPH_IO_H_
