#ifndef PMBE_GRAPH_GRAPH_IO_H_
#define PMBE_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/bipartite_graph.h"
#include "util/status.h"

/// \file
/// Text loaders/writers for bipartite graphs.
///
/// Two formats are supported:
///
///  1. **Plain edge list** (`.txt`): lines of `u v`, whitespace separated,
///     `#` or `%` comment lines ignored. Vertex ids are 0-based; the side
///     cardinalities are `max id + 1` unless a header line
///     `# pmbe <num_left> <num_right>` is present.
///  2. **KONECT-style** (`out.*`): the first line is
///     `% bip unweighted ...` (ignored apart from the leading `%`), and
///     edges are 1-based `u v [weight [timestamp]]`; weights/timestamps are
///     ignored and multi-edges collapsed, matching how the MBE literature
///     preprocesses KONECT datasets.

namespace mbe {

/// Loads a plain 0-based edge list.
util::StatusOr<BipartiteGraph> LoadEdgeList(const std::string& path);

/// Loads a KONECT-style 1-based edge list.
util::StatusOr<BipartiteGraph> LoadKonect(const std::string& path);

/// Writes `graph` as a plain edge list with a `# pmbe` header so that the
/// side cardinalities round-trip even with isolated vertices.
util::Status SaveEdgeList(const BipartiteGraph& graph,
                          const std::string& path);

/// Parses edge-list text from a string (same format as LoadEdgeList);
/// useful in tests.
util::StatusOr<BipartiteGraph> ParseEdgeListText(const std::string& text);

}  // namespace mbe

#endif  // PMBE_GRAPH_GRAPH_IO_H_
