#include "graph/reduction.h"

#include <numeric>

#include "util/bitset.h"

namespace mbe {

CoreReduction PqCoreReduce(const BipartiteGraph& graph, size_t p, size_t q) {
  CoreReduction out;
  if (p <= 1 && q <= 1) {
    out.graph = graph;
    out.left_old.resize(graph.num_left());
    std::iota(out.left_old.begin(), out.left_old.end(), 0);
    out.right_old.resize(graph.num_right());
    std::iota(out.right_old.begin(), out.right_old.end(), 0);
    return out;
  }

  const size_t nl = graph.num_left();
  const size_t nr = graph.num_right();
  std::vector<size_t> left_degree(nl), right_degree(nr);
  // Dead flags as bitmap words (util/bitset.h): the peeling loop probes
  // them once per edge, so 1 bit per vertex keeps them cache-resident.
  std::vector<uint64_t> left_dead(util::WordsFor(nl), 0);
  std::vector<uint64_t> right_dead(util::WordsFor(nr), 0);
  // Worklists of freshly killed vertices whose neighbors need decrementing.
  std::vector<VertexId> left_queue, right_queue;

  for (VertexId u = 0; u < nl; ++u) {
    left_degree[u] = graph.LeftDegree(u);
    if (left_degree[u] < q) {
      util::SetBit(left_dead, u);
      left_queue.push_back(u);
    }
  }
  for (VertexId v = 0; v < nr; ++v) {
    right_degree[v] = graph.RightDegree(v);
    if (right_degree[v] < p) {
      util::SetBit(right_dead, v);
      right_queue.push_back(v);
    }
  }

  while (!left_queue.empty() || !right_queue.empty()) {
    while (!left_queue.empty()) {
      const VertexId u = left_queue.back();
      left_queue.pop_back();
      for (VertexId v : graph.LeftNeighbors(u)) {
        if (util::TestBit(right_dead, v)) continue;
        if (--right_degree[v] < p) {
          util::SetBit(right_dead, v);
          right_queue.push_back(v);
        }
      }
    }
    while (!right_queue.empty()) {
      const VertexId v = right_queue.back();
      right_queue.pop_back();
      for (VertexId u : graph.RightNeighbors(v)) {
        if (util::TestBit(left_dead, u)) continue;
        if (--left_degree[u] < q) {
          util::SetBit(left_dead, u);
          left_queue.push_back(u);
        }
      }
    }
  }

  // Dense renumbering of the survivors.
  std::vector<VertexId> left_new(nl, kInvalidVertex), right_new(nr, kInvalidVertex);
  for (VertexId u = 0; u < nl; ++u) {
    if (!util::TestBit(left_dead, u)) {
      left_new[u] = static_cast<VertexId>(out.left_old.size());
      out.left_old.push_back(u);
    }
  }
  for (VertexId v = 0; v < nr; ++v) {
    if (!util::TestBit(right_dead, v)) {
      right_new[v] = static_cast<VertexId>(out.right_old.size());
      out.right_old.push_back(v);
    }
  }
  out.removed_left = nl - out.left_old.size();
  out.removed_right = nr - out.right_old.size();

  std::vector<Edge> edges;
  for (VertexId u = 0; u < nl; ++u) {
    if (util::TestBit(left_dead, u)) continue;
    for (VertexId v : graph.LeftNeighbors(u)) {
      if (!util::TestBit(right_dead, v)) edges.push_back({left_new[u], right_new[v]});
    }
  }
  out.graph = BipartiteGraph::FromEdges(out.left_old.size(),
                                        out.right_old.size(), std::move(edges));
  return out;
}

}  // namespace mbe
