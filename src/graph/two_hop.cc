#include "graph/two_hop.h"

#include <algorithm>

namespace mbe {

void TwoHopScratch::RightTwoHop(const BipartiteGraph& graph, VertexId v,
                                std::vector<VertexId>* out) {
  PMBE_DCHECK(mark_.size() >= util::WordsFor(graph.num_right()));
  out->clear();
  touched_.clear();
  for (VertexId u : graph.RightNeighbors(v)) {
    for (VertexId w : graph.LeftNeighbors(u)) {
      if (w == v) continue;
      if (!util::TestBit(mark_, w)) {
        util::SetBit(mark_, w);
        touched_.push_back(w);
      }
    }
  }
  out->assign(touched_.begin(), touched_.end());
  std::sort(out->begin(), out->end());
  util::ClearBits(touched_, mark_);
}

namespace {

// Shared implementation: max two-hop degree over the right side of `graph`.
size_t MaxTwoHopRightImpl(const BipartiteGraph& graph) {
  TwoHopScratch scratch(graph.num_right());
  std::vector<VertexId> n2;
  size_t best = 0;
  for (VertexId v = 0; v < graph.num_right(); ++v) {
    scratch.RightTwoHop(graph, v, &n2);
    best = std::max(best, n2.size());
  }
  return best;
}

}  // namespace

size_t MaxTwoHopDegreeRight(const BipartiteGraph& graph) {
  return MaxTwoHopRightImpl(graph);
}

size_t MaxTwoHopDegreeLeft(const BipartiteGraph& graph) {
  return MaxTwoHopRightImpl(graph.Swapped());
}

}  // namespace mbe
