#include "engines/bbk.h"

#include <algorithm>
#include <numeric>

#include "util/bitset.h"

namespace mbe {

BbkEnumerator::BbkEnumerator(const BipartiteGraph& graph,
                             const BbkOptions& options)
    : graph_(graph),
      options_(options),
      policy_{.bitmap_density = options.bitmap_density},
      builder_(graph) {}

void BbkEnumerator::EnumerateAll(ResultSink* sink) {
  for (size_t v = 0; v < graph_.num_right(); ++v) {
    if (Stopped(sink)) return;
    EnumerateShard(static_cast<VertexId>(v), 0, 1, sink);
  }
}

void BbkEnumerator::EnumerateSubtree(VertexId v, ResultSink* sink) {
  EnumerateShard(v, 0, 1, sink);
}

uint32_t BbkEnumerator::SplitHint(VertexId v, uint32_t max_shards,
                                  uint64_t min_work) {
  if (max_shards <= 1) return 1;
  bool pruned = false;
  if (!builder_.Build(v, &root_, &root_absorbed_, &pruned)) return 1;
  const uint64_t work = EstimateSubtreeWork(root_);
  if (work < min_work) return 1;
  uint32_t candidates = 0;
  for (const RootEntry& entry : root_.entries) {
    candidates += entry.forbidden ? 0 : 1;
  }
  // Shallow-wide subtrees are dominated by the root build every shard
  // re-pays; only split when the min side is deep enough to amortize it
  // (same reasoning as MbetEnumerator::SplitHint).
  constexpr uint64_t kMinSplitSide = 16;
  if (std::min<uint64_t>(root_.l0.size(), candidates) < kMinSplitSide) {
    return 1;
  }
  const uint64_t by_work = work / std::max<uint64_t>(1, min_work);
  const uint64_t k = std::min<uint64_t>(
      std::min<uint64_t>(max_shards, std::max<uint32_t>(1, candidates)),
      by_work);
  return static_cast<uint32_t>(std::max<uint64_t>(1, k));
}

bool BbkEnumerator::BuildRootState(VertexId v, bool* pruned) {
  if (!builder_.Build(v, &root_, &root_absorbed_, pruned)) return false;
  universe_ = root_.l0.size();
  if (local_of_.size() < graph_.num_left()) {
    local_of_.resize(graph_.num_left());
  }
  // Local ids are positions in the sorted L0, so renumbering preserves
  // order: every renumbered local list below stays sorted.
  for (size_t i = 0; i < universe_; ++i) {
    local_of_[root_.l0[i]] = static_cast<VertexId>(i);
  }
  entry_w_.clear();
  entry_loc_off_.clear();
  entry_loc_len_.clear();
  locs_.clear();
  locs_.reserve(root_.locs.size());
  order_keys_.clear();
  for (const RootEntry& entry : root_.entries) {
    const uint32_t idx = static_cast<uint32_t>(entry_w_.size());
    entry_w_.push_back(entry.w);
    entry_loc_off_.push_back(static_cast<uint32_t>(locs_.size()));
    entry_loc_len_.push_back(entry.loc_len);
    for (VertexId g : root_.LocOf(entry)) locs_.push_back(local_of_[g]);
    if (entry.forbidden) {
      // Root Q ordered by descending local size: a dominator must cover
      // all of L', so big-neighborhood witnesses are the likely hits and
      // probing them first shortens the (frequent) non-maximal scans.
      order_keys_.push_back(uint64_t{entry.loc_len ^ 0xffffffffu} << 32 |
                            idx | 0x8000000000000000ull);
    } else {
      // Degree-ordered pruning: ascending root-local degree, entry-index
      // tiebreak. Fixed here, inherited by every descendant node — BBK
      // never re-sorts.
      order_keys_.push_back(uint64_t{entry.loc_len} << 32 | idx);
    }
  }
  std::sort(order_keys_.begin(), order_keys_.end());
  // Forbidden keys (top bit set by the complement) sort to the tail,
  // descending loc_len within the block; split them off into the root Q.
  const auto split = std::partition_point(
      order_keys_.begin(), order_keys_.end(),
      [](uint64_t key) { return !(key >> 63); });
  forbidden_.clear();
  for (auto it = split; it != order_keys_.end(); ++it) {
    forbidden_.push_back(static_cast<VertexId>(*it & 0xffffffffu));
  }
  order_keys_.erase(split, order_keys_.end());
  return true;
}

void BbkEnumerator::EnumerateShard(VertexId v, uint32_t shard,
                                   uint32_t num_shards, ResultSink* sink) {
  PMBE_DCHECK(num_shards >= 1 && shard < num_shards);
  if (Stopped(sink)) return;
  bool pruned = false;
  if (!BuildRootState(v, &pruned)) {
    if (pruned) ++stats_.subtrees_pruned;
    return;
  }
  EnumContext::Frame frame(&ctx_);
  std::vector<VertexId>& r = *frame.AcquireIds();
  r.push_back(v);
  r.insert(r.end(), root_absorbed_.begin(), root_absorbed_.end());
  std::sort(r.begin(), r.end());

  std::vector<VertexId>& cands = *frame.AcquireIds();
  cands.reserve(order_keys_.size());
  for (uint64_t key : order_keys_) {
    cands.push_back(static_cast<VertexId>(key & 0xffffffffu));
  }
  std::vector<VertexId>& q = *frame.AcquireIds();
  q.assign(forbidden_.begin(), forbidden_.end());

  // The subtree root biclique belongs to shard 0; every shard rebuilds the
  // root state it expands from.
  if (shard == 0) {
    sink->Emit(root_.l0, r);
    ++stats_.maximal;
  }
  if (!cands.empty()) {
    // Root L = the full local universe.
    std::vector<VertexId>& l = *frame.AcquireIds();
    l.resize(universe_);
    std::iota(l.begin(), l.end(), 0);
    std::span<const uint64_t> l_words;
    if (policy_.PickBitmap(universe_, universe_)) {
      std::vector<uint64_t>& words = *frame.AcquireWords();
      words.assign(util::WordsFor(universe_), 0);
      util::SetBits(l, words);
      ++stats_.bitmap_conversions;
      l_words = words;
    }
    Expand(l, l_words, r, cands, q, sink, shard, num_shards);
  }
  if (ctx_.peak_bytes() > stats_.arena_peak_bytes) {
    stats_.arena_peak_bytes = ctx_.peak_bytes();
  }
}

void BbkEnumerator::Expand(const std::vector<VertexId>& l,
                           std::span<const uint64_t> l_words,
                           const std::vector<VertexId>& r,
                           const std::vector<VertexId>& cands,
                           std::vector<VertexId>& q, ResultSink* sink,
                           uint32_t shard, uint32_t num_shards) {
  ++stats_.nodes_expanded;
  EnumContext::Frame frame(&ctx_);
  std::vector<VertexId>& lp = *frame.AcquireIds();
  std::vector<VertexId>& lg = *frame.AcquireIds();
  std::vector<VertexId>& rp = *frame.AcquireIds();
  std::vector<VertexId>& cp = *frame.AcquireIds();
  std::vector<VertexId>& qp = *frame.AcquireIds();
  std::vector<uint64_t>& lp_bits = *frame.AcquireWords();

  // "Killer" witness: the Q entry that most recently proved a sibling
  // non-maximal. Consecutive candidates in the inherited degree order tend
  // to be dominated by the same witness, so probing the killer first
  // usually settles the (frequent) non-maximal case in one intersection
  // instead of a Q scan.
  size_t killer = SIZE_MAX;

  for (size_t i = 0; i < cands.size(); ++i) {
    if (Stopped(sink)) return;
    const uint32_t vc = cands[i];
    if (num_shards > 1 && i % num_shards != shard) {
      // Another shard owns this position: skip the expansion but append
      // the candidate to Q, as the sequential loop would have by the time
      // later positions run. (Sequentially an empty-L' candidate is not
      // appended, but a Q entry with loc0 ∩ L' = ∅ has k = 0 < |L'| at
      // every descendant node and is dropped from Q' below, so the extra
      // entry can never flip a maximality verdict.)
      q.push_back(vc);
      continue;
    }

    // L' = loc0(vc) ∩ L over the renumbered local universe, answered by
    // whichever representation the parent carries.
    if (!l_words.empty()) {
      IntersectInto(LocalOf(vc), l_words, &lp);
    } else {
      IntersectInto(LocalOf(vc), l, &lp);
    }
    if (lp.empty()) continue;

    // Adaptive representation for L': the list is always kept (emission
    // and recursion need it); a bitmap is added when the density policy
    // says the word kernels win for the Q and classification probes below.
    std::span<const uint64_t> lpw;
    if (policy_.PickBitmap(lp.size(), universe_)) {
      lp_bits.assign(util::WordsFor(universe_), 0);
      util::SetBits(lp, lp_bits);
      ++stats_.bitmap_conversions;
      lpw = lp_bits;
    }
    auto loc_cap = [&](uint32_t entry) {
      if (!lpw.empty()) {
        ++stats_.bitmap_kernel_calls;
        return IntersectSize(LocalOf(entry), lpw);
      }
      return IntersectSizeCapped(LocalOf(entry), lp, lp.size());
    };

    // Maximality via the Q set: traversed candidates of this node are
    // cands[0..i-1], accumulated into q at the end of each iteration.
    // Dead entries (k == 0) are pruned from Q'.
    bool maximal = true;
    if (killer != SIZE_MAX && loc_cap(q[killer]) == lp.size()) {
      maximal = false;
    }
    if (maximal) {
      qp.clear();
      for (size_t t = 0; t < q.size(); ++t) {
        const size_t k = loc_cap(q[t]);
        if (k == lp.size()) {
          maximal = false;
          killer = t;
          break;
        }
        if (k > 0) qp.push_back(q[t]);
      }
    }

    if (maximal) {
      rp = r;
      rp.push_back(entry_w_[vc]);
      cp.clear();
      for (size_t j = i + 1; j < cands.size(); ++j) {
        const VertexId w = cands[j];
        const size_t k = loc_cap(w);
        if (k == lp.size()) {
          rp.push_back(entry_w_[w]);
          ++stats_.candidates_absorbed;
        } else if (k > 0) {
          cp.push_back(w);
        } else {
          ++stats_.candidates_dropped;
        }
      }
      std::sort(rp.begin(), rp.end());
      // Map L' back to global left ids (order-preserving renumbering, so
      // the mapped list is already sorted).
      lg.clear();
      lg.reserve(lp.size());
      for (VertexId x : lp) lg.push_back(root_.l0[x]);
      sink->Emit(lg, rp);
      ++stats_.maximal;
      if (!cp.empty()) Expand(lp, lpw, rp, cp, qp, sink);
    } else {
      ++stats_.non_maximal;
    }
    q.push_back(vc);
  }
}

}  // namespace mbe
