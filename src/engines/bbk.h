#ifndef PMBE_ENGINES_BBK_H_
#define PMBE_ENGINES_BBK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/enum_context.h"
#include "core/enum_stats.h"
#include "core/run_control.h"
#include "core/set_ops.h"
#include "core/subtree.h"
#include "core/vertex_set.h"
#include "graph/bipartite_graph.h"

/// \file
/// BBK (Baudin, Magnien & Tabourier 2024): a pivot-free left-extension
/// enumerator tuned for large sparse bipartite graphs (docs/ALGORITHM.md).
///
/// BBK keeps the (L, R, C, Q) backtracking shape of the MBEA family but
/// drops the per-node costs that dominate on sparse inputs:
///
///  * **No per-node candidate re-sort.** Candidates are ordered once per
///    subtree by ascending root-local degree |N(w) ∩ L0| (the paper's
///    degree-ordered pruning) and every descendant node inherits that
///    order. iMBEA re-sorts at every node, which costs one extra full
///    intersection per candidate per node — pure overhead when locals are
///    short.
///  * **No adjacency rescans.** Candidate and Q neighborhoods are clipped
///    to L0 once at the root and renumbered into the subtree-local
///    universe [0, |L0|), so every set operation below the root runs over
///    short renumbered lists instead of full adjacency rows (correct
///    because L' ⊆ L0 implies |N(w) ∩ L'| == |loc0(w) ∩ L'|).
///  * **Witness-ordered maximality checks.** The Q scan probes the entry
///    that most recently proved a sibling non-maximal first (size-only),
///    and the root Q is ordered by descending local size — the frequent
///    non-maximal verdict usually settles in one intersection instead of
///    a full Q scan.
///
/// The subtree-local universe is what plugs BBK into the adaptive set
/// layer: L' keeps a sorted list plus, when `VertexSetPolicy` says the
/// density pays for it, a word bitmap answered by the vectorized kernels
/// (core/vertex_set.h, util/simd.h). Scratch lives in `EnumContext`
/// frames (pooled, budget-charged), so MemoryBudget pressure degrades
/// bitmaps and caps the run like every other engine.
///
/// Parallel support mirrors MbeaEnumerator: the per-vertex subtree
/// decomposition (EnumerateSubtree), split-at-pickup sharding
/// (SplitHint / EnumerateShard) where a shard walks only top-level
/// positions `pos % num_shards == shard` of the fixed root order and
/// appends the skipped candidates to Q — reproducing the sequential node
/// state, so shards are digest-equivalent to the unsplit subtree.

namespace mbe {

/// Switches for BBK.
struct BbkOptions {
  /// Density threshold for the adaptive L' representation (same meaning as
  /// MbetOptions::bitmap_density: 0 forces bitmaps, > 1 disables them).
  double bitmap_density = 0.10;
};

/// The BBK enumerator.
class BbkEnumerator {
 public:
  BbkEnumerator(const BipartiteGraph& graph, const BbkOptions& options = {});

  /// Full enumeration: the union of all per-vertex subtrees (BBK anchors
  /// every maximal biclique at its minimum right vertex, so the subtree
  /// decomposition *is* the sequential algorithm).
  void EnumerateAll(ResultSink* sink);

  /// Enumerates bicliques whose minimum right vertex is `v`.
  void EnumerateSubtree(VertexId v, ResultSink* sink);

  /// Subtree splitting support for the work-stealing scheduler; same
  /// contract as MbetEnumerator::SplitHint / EnumerateShard.
  uint32_t SplitHint(VertexId v, uint32_t max_shards, uint64_t min_work);
  void EnumerateShard(VertexId v, uint32_t shard, uint32_t num_shards,
                      ResultSink* sink);

  const EnumStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EnumStats(); }

  /// Attaches run control; polled once per node expansion and candidate
  /// traversal. Pass nullptr to detach. Call before enumerating.
  void SetRunController(RunController* controller) {
    poller_.Attach(controller);
  }

 private:
  /// Builds the root of subtree(v), renumbers every entry local into
  /// [0, |L0|), and fixes the degree-ascending candidate order plus the
  /// witness-descending root Q order. Returns false when the subtree is
  /// empty or pruned (`*pruned` distinguishes).
  bool BuildRootState(VertexId v, bool* pruned);

  /// The renumbered local neighborhood loc0(entry), sorted.
  std::span<const VertexId> LocalOf(uint32_t entry) const {
    return {locs_.data() + entry_loc_off_[entry], entry_loc_len_[entry]};
  }

  /// One node expansion. `l`/`l_words` are the node's L in the local
  /// universe (the bitmap is empty when the density policy kept the list
  /// alone); `cands` and `q` hold entry indices. Traversed candidates are
  /// appended to `q`. `shard`/`num_shards` implement top-level splitting:
  /// non-default values only ever come from EnumerateShard's root call.
  void Expand(const std::vector<VertexId>& l,
              std::span<const uint64_t> l_words,
              const std::vector<VertexId>& r,
              const std::vector<VertexId>& cands, std::vector<VertexId>& q,
              ResultSink* sink, uint32_t shard = 0, uint32_t num_shards = 1);

  /// Combined cooperative stop poll: run controller, then the sink chain.
  bool Stopped(ResultSink* sink) {
    return poller_.ShouldStop(stats_) || sink->ShouldStop();
  }

  const BipartiteGraph& graph_;
  BbkOptions options_;
  VertexSetPolicy policy_;
  EnumStats stats_;
  RunPoller poller_;
  SubtreeBuilder builder_;
  SubtreeRoot root_;
  std::vector<VertexId> root_absorbed_;

  /// Per-subtree root state (rebuilt by BuildRootState, capacity reused).
  size_t universe_ = 0;             ///< |L0| of the current subtree
  std::vector<VertexId> local_of_;  ///< global left id -> local id
  std::vector<VertexId> entry_w_;   ///< entry -> global right id
  std::vector<uint32_t> entry_loc_off_;  ///< entry -> offset into locs_
  std::vector<uint32_t> entry_loc_len_;  ///< entry -> |loc0|
  std::vector<VertexId> locs_;      ///< renumbered local arena
  std::vector<uint64_t> order_keys_;  ///< (loc_len << 32 | entry) sorted
  std::vector<VertexId> forbidden_;   ///< root Q, descending loc_len

  EnumContext ctx_;  ///< per-node scratch pool (checkpoint/rewind per depth)
};

}  // namespace mbe

#endif  // PMBE_ENGINES_BBK_H_
