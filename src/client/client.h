#ifndef PMBE_CLIENT_CLIENT_H_
#define PMBE_CLIENT_CLIENT_H_

#include <cstdint>
#include <string>

#include "core/sink.h"
#include "serve/wire.h"
#include "util/random.h"
#include "util/status.h"

/// \file
/// `mbe::Client` — the network-transparent client library for pmbe_serve
/// (docs/SERVICE.md).
///
/// Every socket operation carries a deadline (connect via non-blocking
/// connect + poll, reads and writes via SO_RCVTIMEO/SO_SNDTIMEO), so no
/// call can hang forever on a stalled peer — the bug the hand-rolled
/// WireClient in pmbe_load had. Failures are classified into a typed
/// retryable-vs-terminal taxonomy (`ErrorKind`); retryable ones are
/// retried with bounded exponential backoff and deterministic seeded
/// jitter, reconnecting as needed.
///
/// Re-issue safety per operation:
///  * `Ping` / `GetServerInfo` / `ReloadGraph` are idempotent — retried
///    freely (a reload swap applied twice lands on the same engine).
///  * `LoadGraph` is first-wins on the server, hence NOT idempotent: it
///    is never re-sent once the request frame may have reached the wire;
///    a mid-load connection loss surfaces as a terminal error the caller
///    must resolve (typically by checking whether the load took).
///  * `Enumerate` streams are verified end-to-end: the client folds every
///    received batch through the same commutative `FingerprintSink` the
///    server runs, and accepts a stream only when its fold matches
///    `SessionDoneMsg::digest` and its count matches `results_emitted`.
///    In buffered mode (default) an attempt's batches are held back and
///    delivered to the caller's sink only after that verification, so a
///    connection lost mid-stream discards the partial attempt and
///    re-issues the query — exactly-once delivery under retry, partial
///    streams never silently merged. In streaming mode
///    (`buffer_results = false`) batches reach the sink as they arrive
///    and a mid-stream loss is terminal `kTruncatedStream` instead.
///
/// Threading: a Client owns one connection and one conversation at a
/// time. It is thread-compatible, not thread-safe — use one Client per
/// thread (connection loss then affects exactly one stream, which is
/// what makes retry semantics tractable).

namespace mbe::client {

/// Typed failure classification; `IsRetryable` partitions it.
enum class ErrorKind : uint8_t {
  kNone = 0,
  kConnectFailed,    ///< retryable: connect refused / timed out
  kTimeout,          ///< retryable: a read/write deadline expired
  kConnectionLost,   ///< retryable: reset / EOF mid-conversation
  kServerBusy,       ///< retryable: kRejected(too-many-sessions)
  kTruncatedStream,  ///< stream died mid-flight; retryable only in
                     ///< buffered mode (the attempt was discarded)
  kDigestMismatch,   ///< terminal: complete stream, wrong fingerprint
  kRejected,         ///< terminal: kRejected(draining/unknown/bad-options)
  kProtocol,         ///< terminal: corrupt frame or unexpected message
  kServerError,      ///< terminal: the server sent kError and hung up
};

const char* ErrorKindName(ErrorKind kind);
bool IsRetryable(ErrorKind kind);

struct ClientOptions {
  /// Non-empty: connect to this Unix-domain socket path.
  std::string unix_path;
  /// Unix path empty: connect to 127.0.0.1:tcp_port.
  uint16_t tcp_port = 0;

  /// Deadline for one connect attempt.
  double connect_timeout_seconds = 5;
  /// SO_RCVTIMEO / SO_SNDTIMEO: deadline for every read/write syscall. A
  /// silent peer surfaces as kTimeout instead of a hang.
  double io_timeout_seconds = 30;

  /// Retries per operation on retryable errors (0 = single attempt).
  uint32_t max_retries = 4;
  /// Exponential backoff between attempts: initial * 2^n, capped, with
  /// deterministic jitter in [0.5, 1.0)× drawn from `backoff_seed`.
  double backoff_initial_seconds = 0.02;
  double backoff_max_seconds = 1.0;
  uint64_t backoff_seed = 1;

  /// Exactly-once delivery (see file comment). False = stream straight
  /// into the caller's sink; mid-stream loss is then terminal.
  bool buffer_results = true;
};

/// The verified result of one Enumerate call.
struct EnumerateOutcome {
  /// The server's final frame (termination, stats, digest).
  serve::SessionDoneMsg done;
  /// The client-side fingerprint fold — equals done.digest by the time
  /// the outcome is returned.
  uint64_t digest = 0;
  /// Attempts this query took (1 = first try succeeded).
  uint32_t attempts = 1;
};

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and completes the kHello handshake, retrying with backoff.
  /// Idempotent: a no-op when already connected. Every other method
  /// connects on demand, so calling this first is optional.
  util::Status Connect();

  /// Drops the connection (no wire goodbye; the protocol has none).
  void Close();

  bool connected() const { return fd_ >= 0; }

  /// Heartbeat round-trip. Retryable.
  util::Status Ping();

  /// Live server counters. Retryable.
  util::StatusOr<serve::ServerInfoMsg> GetServerInfo();

  /// First-wins graph upload. NOT retried once the request may have been
  /// sent (see file comment); connect-phase failures are retried.
  util::StatusOr<serve::LoadOkMsg> LoadGraph(const serve::LoadGraphMsg& msg);

  /// Swap-semantics (re)load — idempotent, retryable. Returns the slot's
  /// new epoch in LoadOkMsg::epoch.
  util::StatusOr<serve::LoadOkMsg> ReloadGraph(
      const serve::LoadGraphMsg& msg);

  /// Runs one enumeration session, streaming results into `sink` with
  /// digest-verified completeness (see file comment). `sink` may be null
  /// when only the outcome (counts, digest) matters.
  util::StatusOr<EnumerateOutcome> Enumerate(const serve::StartSessionMsg& msg,
                                             ResultSink* sink);

  /// Classification of the most recent failure (kNone after a success).
  ErrorKind last_error() const { return last_error_; }

  /// Lifetime telemetry: reconnects performed and operation retries
  /// (attempts beyond each operation's first).
  uint64_t reconnects() const { return reconnects_; }
  uint64_t retries() const { return retries_; }

 private:
  /// One connect attempt: socket + deadline'd connect + hello handshake.
  util::Status ConnectOnce();
  /// Connect with the retry/backoff loop (used by Connect and the
  /// per-operation ensure-connected paths).
  util::Status EnsureConnected();

  /// Sends one encoded frame; classifies failures and closes on them.
  util::Status SendFrame(const serve::Message& message);
  /// Receives the next complete message; classifies failures and closes
  /// on them.
  util::StatusOr<serve::Message> RecvMessage();

  /// Sleeps the backoff for `attempt` (0-based) with deterministic jitter.
  void Backoff(uint32_t attempt);

  /// Builds a status for `kind`, records it, and closes the connection
  /// when the failure implies the stream state is unknown.
  util::Status Fail(ErrorKind kind, const std::string& detail);

  util::StatusOr<serve::LoadOkMsg> LoadLike(const serve::LoadGraphMsg& msg,
                                            bool swap);
  util::StatusOr<EnumerateOutcome> EnumerateOnce(
      const serve::StartSessionMsg& msg, ResultSink* sink);

  const ClientOptions options_;
  int fd_ = -1;
  serve::FrameAssembler assembler_;
  util::Rng backoff_rng_;
  ErrorKind last_error_ = ErrorKind::kNone;
  uint64_t reconnects_ = 0;
  uint64_t retries_ = 0;
  /// Connects completed over the client's lifetime (first one included).
  uint64_t connects_ = 0;
};

}  // namespace mbe::client

#endif  // PMBE_CLIENT_CLIENT_H_
