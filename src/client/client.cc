#include "client/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "serve/net.h"

namespace mbe::client {

namespace {

timeval ToTimeval(double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) *
                               1e6);
  if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  return tv;
}

}  // namespace

const char* ErrorKindName(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kNone:
      return "none";
    case ErrorKind::kConnectFailed:
      return "connect-failed";
    case ErrorKind::kTimeout:
      return "timeout";
    case ErrorKind::kConnectionLost:
      return "connection-lost";
    case ErrorKind::kServerBusy:
      return "server-busy";
    case ErrorKind::kTruncatedStream:
      return "truncated-stream";
    case ErrorKind::kDigestMismatch:
      return "digest-mismatch";
    case ErrorKind::kRejected:
      return "rejected";
    case ErrorKind::kProtocol:
      return "protocol";
    case ErrorKind::kServerError:
      return "server-error";
  }
  return "?";
}

bool IsRetryable(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kConnectFailed:
    case ErrorKind::kTimeout:
    case ErrorKind::kConnectionLost:
    case ErrorKind::kServerBusy:
      return true;
    // kTruncatedStream retryability depends on buffering; Enumerate
    // handles it explicitly rather than through this predicate.
    default:
      return false;
  }
}

Client::Client(ClientOptions options)
    : options_(std::move(options)), backoff_rng_(options_.backoff_seed) {}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  assembler_ = serve::FrameAssembler();
}

util::Status Client::Fail(ErrorKind kind, const std::string& detail) {
  last_error_ = kind;
  // Any failure past this point leaves the stream position unknown (a
  // half-read frame, a half-written request); the connection cannot be
  // reused, only re-established.
  Close();
  const std::string text =
      std::string("client ") + ErrorKindName(kind) + ": " + detail;
  switch (kind) {
    case ErrorKind::kRejected:
    case ErrorKind::kProtocol:
      return util::Status::InvalidArgument(text);
    default:
      return util::Status::IoError(text);
  }
}

util::Status Client::ConnectOnce() {
  Close();
  sockaddr_un un{};
  sockaddr_in in{};
  sockaddr* addr = nullptr;
  socklen_t addr_len = 0;
  int family = AF_UNIX;
  if (!options_.unix_path.empty()) {
    un.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(un.sun_path)) {
      return util::Status::InvalidArgument("unix socket path too long: " +
                                           options_.unix_path);
    }
    std::memcpy(un.sun_path, options_.unix_path.c_str(),
                options_.unix_path.size() + 1);
    addr = reinterpret_cast<sockaddr*>(&un);
    addr_len = sizeof(un);
  } else {
    family = AF_INET;
    in.sin_family = AF_INET;
    in.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    in.sin_port = htons(options_.tcp_port);
    addr = reinterpret_cast<sockaddr*>(&in);
    addr_len = sizeof(in);
  }
  const int fd = ::socket(family, SOCK_STREAM, 0);
  if (fd < 0) {
    return Fail(ErrorKind::kConnectFailed,
                std::string("socket: ") + std::strerror(errno));
  }
  // Deadline'd connect: non-blocking connect + poll, then back to
  // blocking with per-syscall timeouts. A plain blocking connect to a
  // dead-but-routed peer can wedge for minutes.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, addr, addr_len);
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms =
        static_cast<int>(options_.connect_timeout_seconds * 1000);
    rc = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : 1);
    if (rc == 1) {
      int err = 0;
      socklen_t err_len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
      rc = err == 0 ? 0 : (errno = err, -1);
    } else {
      errno = ETIMEDOUT;
      rc = -1;
    }
  }
  if (rc != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return Fail(ErrorKind::kConnectFailed, "connect: " + detail);
  }
  ::fcntl(fd, F_SETFL, flags);
  if (options_.io_timeout_seconds > 0) {
    const timeval tv = ToTimeval(options_.io_timeout_seconds);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  fd_ = fd;

  // Version handshake. A server speaking another protocol version replies
  // kError and hangs up — terminal, not worth retrying.
  if (util::Status status = SendFrame(serve::HelloMsg{}); !status.ok()) {
    return status;
  }
  util::StatusOr<serve::Message> reply = RecvMessage();
  if (!reply.ok()) return reply.status();
  if (const auto* err = std::get_if<serve::ErrorMsg>(&reply.value())) {
    return Fail(ErrorKind::kServerError, err->detail);
  }
  const auto* ok = std::get_if<serve::HelloOkMsg>(&reply.value());
  if (ok == nullptr) {
    return Fail(ErrorKind::kProtocol, "expected kHelloOk after kHello");
  }
  if (ok->version != serve::kProtocolVersion) {
    return Fail(ErrorKind::kProtocol,
                "server speaks protocol v" + std::to_string(ok->version) +
                    ", client v" + std::to_string(serve::kProtocolVersion));
  }
  ++connects_;
  if (connects_ > 1) ++reconnects_;
  last_error_ = ErrorKind::kNone;
  return util::Status::Ok();
}

void Client::Backoff(uint32_t attempt) {
  double delay = options_.backoff_initial_seconds;
  for (uint32_t i = 0; i < attempt && delay < options_.backoff_max_seconds;
       ++i) {
    delay *= 2;
  }
  if (delay > options_.backoff_max_seconds) {
    delay = options_.backoff_max_seconds;
  }
  // Deterministic jitter in [0.5, 1.0)×: spreads a thundering herd of
  // reconnecting workers while keeping runs reproducible in the seed.
  const double jitter =
      0.5 + 0.5 * (static_cast<double>(backoff_rng_.Next() >> 11) * 0x1.0p-53);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(delay * jitter));
}

util::Status Client::EnsureConnected() {
  if (connected()) return util::Status::Ok();
  util::Status status = ConnectOnce();
  for (uint32_t attempt = 0; !status.ok() && IsRetryable(last_error_) &&
                             attempt < options_.max_retries;
       ++attempt) {
    ++retries_;
    Backoff(attempt);
    status = ConnectOnce();
  }
  return status;
}

util::Status Client::Connect() { return EnsureConnected(); }

util::Status Client::SendFrame(const serve::Message& message) {
  std::vector<uint8_t> frame;
  if (util::Status status = serve::EncodeMessage(message, &frame);
      !status.ok()) {
    return Fail(ErrorKind::kProtocol, status.ToString());
  }
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        serve::net::Send(fd_, frame.data() + off, frame.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Fail(ErrorKind::kTimeout, "send deadline expired");
    }
    if (n <= 0) {
      return Fail(ErrorKind::kConnectionLost,
                  std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return util::Status::Ok();
}

util::StatusOr<serve::Message> Client::RecvMessage() {
  std::array<uint8_t, 4096> chunk;
  for (;;) {
    serve::Message message;
    util::StatusOr<bool> produced = assembler_.Next(&message);
    if (!produced.ok()) {
      return Fail(ErrorKind::kProtocol, produced.status().ToString());
    }
    if (produced.value()) return message;
    const ssize_t n = serve::net::Recv(fd_, chunk.data(), chunk.size());
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Fail(ErrorKind::kTimeout, "read deadline expired");
    }
    if (n < 0) {
      return Fail(ErrorKind::kConnectionLost,
                  std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Fail(ErrorKind::kConnectionLost, "peer closed the connection");
    }
    assembler_.Feed(std::span<const uint8_t>(chunk.data(),
                                             static_cast<size_t>(n)));
  }
}

util::Status Client::Ping() {
  const uint64_t token = backoff_rng_.Next();
  for (uint32_t attempt = 0;; ++attempt) {
    util::Status status = EnsureConnected();
    if (status.ok()) {
      status = SendFrame(serve::PingMsg{token});
      if (status.ok()) {
        util::StatusOr<serve::Message> reply = RecvMessage();
        if (reply.ok()) {
          const auto* pong = std::get_if<serve::PongMsg>(&reply.value());
          if (pong == nullptr) {
            return Fail(ErrorKind::kProtocol, "expected kPong after kPing");
          }
          if (pong->token != token) {
            return Fail(ErrorKind::kProtocol, "kPong echoed a wrong token");
          }
          last_error_ = ErrorKind::kNone;
          return util::Status::Ok();
        }
        status = reply.status();
      }
    }
    if (!IsRetryable(last_error_) || attempt >= options_.max_retries) {
      return status;
    }
    ++retries_;
    Backoff(attempt);
  }
}

util::StatusOr<serve::ServerInfoMsg> Client::GetServerInfo() {
  for (uint32_t attempt = 0;; ++attempt) {
    util::Status status = EnsureConnected();
    if (status.ok()) {
      status = SendFrame(serve::InfoRequestMsg{});
      if (status.ok()) {
        util::StatusOr<serve::Message> reply = RecvMessage();
        if (reply.ok()) {
          const auto* info = std::get_if<serve::ServerInfoMsg>(&reply.value());
          if (info == nullptr) {
            return Fail(ErrorKind::kProtocol,
                        "expected kServerInfo after kInfoRequest");
          }
          last_error_ = ErrorKind::kNone;
          return *info;
        }
        status = reply.status();
      }
    }
    if (!IsRetryable(last_error_) || attempt >= options_.max_retries) {
      return status;
    }
    ++retries_;
    Backoff(attempt);
  }
}

util::StatusOr<serve::LoadOkMsg> Client::LoadLike(
    const serve::LoadGraphMsg& msg, bool swap) {
  for (uint32_t attempt = 0;; ++attempt) {
    util::Status status = EnsureConnected();
    if (status.ok()) {
      status = swap ? SendFrame(serve::ReloadGraphMsg{msg})
                    : SendFrame(serve::Message{msg});
      if (status.ok()) {
        util::StatusOr<serve::Message> reply = RecvMessage();
        if (reply.ok()) {
          if (const auto* err = std::get_if<serve::ErrorMsg>(&reply.value())) {
            return Fail(ErrorKind::kServerError, err->detail);
          }
          const auto* ok = std::get_if<serve::LoadOkMsg>(&reply.value());
          if (ok == nullptr) {
            return Fail(ErrorKind::kProtocol, "expected kLoadOk");
          }
          last_error_ = ErrorKind::kNone;
          return *ok;
        }
        status = reply.status();
      }
      // First-wins loads are not idempotent: once the request may have
      // reached the wire, a blind re-send could hit "already registered"
      // against our own half-applied load. Surface the failure instead.
      if (!swap && !status.ok()) return status;
    }
    if (!IsRetryable(last_error_) || attempt >= options_.max_retries) {
      return status;
    }
    ++retries_;
    Backoff(attempt);
  }
}

util::StatusOr<serve::LoadOkMsg> Client::LoadGraph(
    const serve::LoadGraphMsg& msg) {
  return LoadLike(msg, /*swap=*/false);
}

util::StatusOr<serve::LoadOkMsg> Client::ReloadGraph(
    const serve::LoadGraphMsg& msg) {
  return LoadLike(msg, /*swap=*/true);
}

util::StatusOr<EnumerateOutcome> Client::EnumerateOnce(
    const serve::StartSessionMsg& msg, ResultSink* sink) {
  PMBE_RETURN_IF_ERROR(SendFrame(serve::Message{msg}));

  // Await admission.
  uint64_t session_id = 0;
  {
    util::StatusOr<serve::Message> reply = RecvMessage();
    PMBE_RETURN_IF_ERROR(reply.status());
    if (const auto* rejected = std::get_if<serve::RejectedMsg>(&reply.value())) {
      const auto reason = static_cast<serve::RejectReason>(rejected->reason);
      // Backpressure is retryable — the slot shortage passes; every other
      // rejection (draining, unknown graph, bad options) is a fact about
      // the request or the server's lifecycle that retrying cannot fix.
      const ErrorKind kind = reason == serve::RejectReason::kTooManySessions
                                 ? ErrorKind::kServerBusy
                                 : ErrorKind::kRejected;
      // Rejection leaves the connection healthy; Fail closes it anyway,
      // which is correct for kRejected and harmless for kServerBusy (the
      // retry reconnects).
      return Fail(kind, rejected->detail);
    }
    if (const auto* err = std::get_if<serve::ErrorMsg>(&reply.value())) {
      return Fail(ErrorKind::kServerError, err->detail);
    }
    const auto* started = std::get_if<serve::SessionStartedMsg>(&reply.value());
    if (started == nullptr) {
      return Fail(ErrorKind::kProtocol, "expected kSessionStarted");
    }
    session_id = started->session_id;
  }

  // Stream: fold every batch through the verification fingerprint; hold
  // batches back (buffered mode) or forward immediately (streaming mode).
  FingerprintSink fingerprint;
  std::vector<BicliqueBatch> held;
  for (;;) {
    util::StatusOr<serve::Message> reply = RecvMessage();
    PMBE_RETURN_IF_ERROR(reply.status());
    if (auto* batch = std::get_if<serve::ResultBatchMsg>(&reply.value())) {
      if (batch->session_id != session_id) {
        return Fail(ErrorKind::kProtocol, "kResultBatch for a foreign session");
      }
      fingerprint.EmitBatch(batch->batch);
      if (options_.buffer_results) {
        held.push_back(std::move(batch->batch));
      } else if (sink != nullptr) {
        sink->EmitBatch(batch->batch);
      }
      continue;
    }
    if (const auto* done = std::get_if<serve::SessionDoneMsg>(&reply.value())) {
      if (done->session_id != session_id) {
        return Fail(ErrorKind::kProtocol, "kSessionDone for a foreign session");
      }
      // The completeness gate: the server's digest covers everything it
      // streamed; our fold covers everything we received. TCP cannot
      // reorder, so any disagreement means lost or duplicated batches —
      // never deliver such a stream.
      if (fingerprint.Digest() != done->digest ||
          fingerprint.count() != done->results_emitted) {
        return Fail(ErrorKind::kDigestMismatch,
                    "received " + std::to_string(fingerprint.count()) +
                        " results, server reports " +
                        std::to_string(done->results_emitted));
      }
      if (options_.buffer_results && sink != nullptr) {
        for (const BicliqueBatch& b : held) sink->EmitBatch(b);
      }
      EnumerateOutcome outcome;
      outcome.done = *done;
      outcome.digest = fingerprint.Digest();
      last_error_ = ErrorKind::kNone;
      return outcome;
    }
    if (const auto* err = std::get_if<serve::ErrorMsg>(&reply.value())) {
      return Fail(ErrorKind::kServerError, err->detail);
    }
    return Fail(ErrorKind::kProtocol, "unexpected frame mid-stream");
  }
}

util::StatusOr<EnumerateOutcome> Client::Enumerate(
    const serve::StartSessionMsg& msg, ResultSink* sink) {
  uint32_t attempts = 0;
  for (uint32_t attempt = 0;; ++attempt) {
    util::Status status = EnsureConnected();
    if (status.ok()) {
      ++attempts;
      util::StatusOr<EnumerateOutcome> outcome = EnumerateOnce(msg, sink);
      if (outcome.ok()) {
        EnumerateOutcome result = std::move(outcome).value();
        result.attempts = attempts;
        return result;
      }
      status = outcome.status();
      // A connection that died mid-stream truncated the attempt. In
      // buffered mode nothing reached the caller's sink, so the re-issue
      // below is safe; in streaming mode a partial prefix already
      // escaped — surface the typed truncation instead of merging
      // streams.
      if ((last_error_ == ErrorKind::kTimeout ||
           last_error_ == ErrorKind::kConnectionLost) &&
          !options_.buffer_results) {
        last_error_ = ErrorKind::kTruncatedStream;
        return util::Status::IoError(
            std::string("client truncated-stream: ") + status.ToString());
      }
    }
    if (!IsRetryable(last_error_) || attempt >= options_.max_retries) {
      return status;
    }
    ++retries_;
    Backoff(attempt);
  }
}

}  // namespace mbe::client
