// AVX2 kernel table (util/simd.h). Compiled with -mavx2 only for this
// translation unit; referenced by the dispatcher when the host CPU reports
// avx2 support. Same block-intersection scheme as the SSE4.2 TU but 8x8:
// compare an 8-lane block of `a` against all 7 rotations of an 8-lane
// block of `b`, compact matches through a 256-entry permutation LUT, and
// advance whichever block's maximum is smaller. Mask probes use vpgatherdd
// on the dword view of the packed mask plus a per-lane variable shift.

#include "util/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>

#include "util/simd_scalar.h"

namespace mbe::simd::internal {

namespace {

// Permutation control for _mm256_permutevar8x32_epi32: entry m moves the
// dword lanes set in the 8-bit mask m to the front. Trailing lanes repeat
// lane 0; the popcount of m bounds how many stores are meaningful and the
// caller only advances the cursor by that many.
struct AvxCompactLut {
  alignas(32) uint32_t idx[256][8];
};

AvxCompactLut MakeAvxCompactLut() {
  AvxCompactLut lut{};
  for (int m = 0; m < 256; ++m) {
    int k = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if ((m >> lane) & 1) lut.idx[m][k++] = static_cast<uint32_t>(lane);
    }
    for (; k < 8; ++k) lut.idx[m][k] = 0;
  }
  return lut;
}

const AvxCompactLut kCompact = MakeAvxCompactLut();

// Bitmask of lanes of `va` equal to ANY lane of `vb` (all-pairs compare
// via the seven non-identity cyclic rotations of vb).
inline unsigned PairwiseEqMask(__m256i va, __m256i vb) {
  static const __m256i kRot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  __m256i cmp = _mm256_cmpeq_epi32(va, vb);
  __m256i rot = vb;
  for (int r = 1; r < 8; ++r) {
    rot = _mm256_permutevar8x32_epi32(rot, kRot1);
    cmp = _mm256_or_si256(cmp, _mm256_cmpeq_epi32(va, rot));
  }
  return static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(cmp)));
}

inline void StoreCompact(VertexId* dst, __m256i va, unsigned mask) {
  const __m256i perm =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(kCompact.idx[mask]));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                      _mm256_permutevar8x32_epi32(va, perm));
}

size_t AvxIntersect(const VertexId* a, size_t na, const VertexId* b, size_t nb,
                    VertexId* out) {
  size_t i = 0, j = 0, count = 0;
  if (na >= 8 && nb >= 8) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    for (;;) {
      const unsigned mask = PairwiseEqMask(va, vb);
      StoreCompact(out + count, va, mask);
      count += static_cast<size_t>(std::popcount(mask));
      const VertexId amax = a[i + 7], bmax = b[j + 7];
      const bool adv_a = amax <= bmax, adv_b = bmax <= amax;
      if (adv_a) {
        i += 8;
        if (i + 8 > na) {
          if (adv_b) j += 8;
          break;
        }
        va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      }
      if (adv_b) {
        j += 8;
        if (j + 8 > nb) break;
        vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      }
    }
  }
  if (i < na && j < nb) {
    count += ScalarIntersect(a + i, na - i, b + j, nb - j, out + count);
  }
  return count;
}

size_t AvxIntersectSize(const VertexId* a, size_t na, const VertexId* b,
                        size_t nb) {
  size_t i = 0, j = 0, count = 0;
  if (na >= 8 && nb >= 8) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    for (;;) {
      count += static_cast<size_t>(std::popcount(PairwiseEqMask(va, vb)));
      const VertexId amax = a[i + 7], bmax = b[j + 7];
      const bool adv_a = amax <= bmax, adv_b = bmax <= amax;
      if (adv_a) {
        i += 8;
        if (i + 8 > na) {
          if (adv_b) j += 8;
          break;
        }
        va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      }
      if (adv_b) {
        j += 8;
        if (j + 8 > nb) break;
        vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      }
    }
  }
  if (i < na && j < nb) {
    count += ScalarIntersectSize(a + i, na - i, b + j, nb - j);
  }
  return count;
}

size_t AvxIntersectSizeCapped(const VertexId* a, size_t na, const VertexId* b,
                              size_t nb, size_t cap) {
  size_t i = 0, j = 0, count = 0;
  if (na >= 8 && nb >= 8) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    for (;;) {
      count += static_cast<size_t>(std::popcount(PairwiseEqMask(va, vb)));
      if (count >= cap) return cap;
      const VertexId amax = a[i + 7], bmax = b[j + 7];
      const bool adv_a = amax <= bmax, adv_b = bmax <= amax;
      if (adv_a) {
        i += 8;
        if (i + 8 > na) {
          if (adv_b) j += 8;
          break;
        }
        va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      }
      if (adv_b) {
        j += 8;
        if (j + 8 > nb) break;
        vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      }
    }
  }
  if (count < cap && i < na && j < nb) {
    count += ScalarIntersectSizeCapped(a + i, na - i, b + j, nb - j,
                                       cap - count);
  }
  return count < cap ? count : cap;
}

size_t AvxDifference(const VertexId* a, size_t na, const VertexId* b,
                     size_t nb, VertexId* out) {
  size_t i = 0, j = 0, count = 0;
  unsigned found = 0;
  if (na >= 8 && nb >= 8) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    for (;;) {
      found |= PairwiseEqMask(va, vb);
      const VertexId amax = a[i + 7], bmax = b[j + 7];
      const bool adv_a = amax <= bmax, adv_b = bmax <= amax;
      if (adv_a) {
        const unsigned keep = ~found & 0xFFu;
        StoreCompact(out + count, va, keep);
        count += static_cast<size_t>(std::popcount(keep));
        found = 0;
        i += 8;
        if (i + 8 > na) {
          if (adv_b) j += 8;
          break;
        }
        va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      }
      if (adv_b) {
        j += 8;
        if (j + 8 > nb) break;
        vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      }
    }
  }
  if (found != 0) {
    // b ran out of full blocks mid-way through this a block: emit its
    // unmatched lanes, still checking them against the b remainder.
    for (size_t k = 0; k < 8; ++k) {
      if ((found >> k) & 1) continue;
      const VertexId x = a[i + k];
      const VertexId* lo = BranchlessLowerBound(b + j, nb - j, x);
      if (lo == b + nb || *lo != x) out[count++] = x;
    }
    i += 8;
  }
  if (i < na) {
    count += ScalarDifference(a + i, na - i, b + j, nb - j, out + count);
  }
  return count;
}

bool AvxIsSubset(const VertexId* a, size_t na, const VertexId* b, size_t nb) {
  if (na > nb) return false;
  size_t i = 0, j = 0;
  unsigned found = 0;
  if (na >= 8 && nb >= 8) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    for (;;) {
      found |= PairwiseEqMask(va, vb);
      const VertexId amax = a[i + 7], bmax = b[j + 7];
      const bool adv_a = amax <= bmax, adv_b = bmax <= amax;
      if (adv_a) {
        if (found != 0xFFu) return false;
        found = 0;
        i += 8;
        if (i + 8 > na) {
          if (adv_b) j += 8;
          break;
        }
        va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      }
      if (adv_b) {
        j += 8;
        if (j + 8 > nb) break;
        vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      }
    }
  }
  if (found != 0) {
    for (size_t k = 0; k < 8; ++k) {
      if ((found >> k) & 1) continue;
      const VertexId x = a[i + k];
      const VertexId* lo = BranchlessLowerBound(b + j, nb - j, x);
      if (lo == b + nb || *lo != x) return false;
    }
    i += 8;
  }
  if (i < na) return ScalarIsSubset(a + i, na - i, b + j, nb - j);
  return true;
}

// Gathers the mask dword holding each lane's bit, shifts that bit to
// position 0 per lane, ANDs with 1. Bit x of the packed mask is bit x%64
// of words[x/64]; on a little-endian dword view that is bit x%32 of
// dword x/32, which is what the gather indexes.
inline __m256i GatherMaskBits(__m256i xs, const uint64_t* words) {
  const int* dwords = reinterpret_cast<const int*>(words);
  const __m256i dword_idx = _mm256_srli_epi32(xs, 5);
  const __m256i bit_idx = _mm256_and_si256(xs, _mm256_set1_epi32(31));
  const __m256i gathered = _mm256_i32gather_epi32(dwords, dword_idx, 4);
  return _mm256_and_si256(_mm256_srlv_epi32(gathered, bit_idx),
                          _mm256_set1_epi32(1));
}

size_t AvxMaskCount(const VertexId* xs, size_t n, const uint64_t* words) {
  size_t i = 0, count = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 8 <= n; i += 8) {
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + i));
    acc = _mm256_add_epi32(acc, GatherMaskBits(vx, words));
    // Each lane accumulates at most 2^32 hits; list lengths are far below
    // that, so no widening pass is needed.
  }
  alignas(32) uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  for (int k = 0; k < 8; ++k) count += lanes[k];
  if (i < n) count += ScalarMaskCount(xs + i, n - i, words);
  return count;
}

size_t AvxMaskFilter(const VertexId* xs, size_t n, const uint64_t* words,
                     VertexId* out) {
  size_t i = 0, count = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + i));
    const __m256i bits = GatherMaskBits(vx, words);
    const unsigned mask = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(bits, _mm256_set1_epi32(1)))));
    StoreCompact(out + count, vx, mask);
    count += static_cast<size_t>(std::popcount(mask));
  }
  if (i < n) count += ScalarMaskFilter(xs + i, n - i, words, out + count);
  return count;
}

void AvxAndWords(const uint64_t* a, const uint64_t* b, uint64_t* out,
                 size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(va, vb));
  }
  for (; i < n; ++i) out[i] = a[i] & b[i];
}

size_t AvxAndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  // AND vectorized, popcount scalar: without AVX-512 VPOPCNTDQ the
  // in-register popcount schemes only pay off past sizes these masks
  // reach, and scalar popcnt on the AND result keeps the sum exact.
  size_t i = 0, count = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    alignas(32) uint64_t w[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(w), _mm256_and_si256(va, vb));
    count += static_cast<size_t>(std::popcount(w[0])) +
             static_cast<size_t>(std::popcount(w[1])) +
             static_cast<size_t>(std::popcount(w[2])) +
             static_cast<size_t>(std::popcount(w[3]));
  }
  for (; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

// Batched probe over interleaved masks: per list element, the `width`
// slot-words sharing that element's word index are contiguous, so one
// 256-bit load covers 4 slots. All slots share the element's bit index,
// so a single (non-variable) 64-bit shift isolates the bit per lane.
// Accumulators are 64-bit lanes kept in a small stack array; widths that
// do not fill whole vectors take the scalar body (same arithmetic, so
// results stay byte-identical either way).
void AvxClassifyBatch(const VertexId* xs, size_t n, const uint64_t* words,
                      size_t width, uint32_t* counts) {
  if (width % 4 != 0 || width > 64) {
    ScalarClassifyBatch(xs, n, words, width, counts);
    return;
  }
  const size_t vecs = width / 4;
  __m256i acc[16];
  for (size_t v = 0; v < vecs; ++v) acc[v] = _mm256_setzero_si256();
  const __m256i kOne = _mm256_set1_epi64x(1);
  for (size_t i = 0; i < n; ++i) {
    const VertexId x = xs[i];
    const uint64_t* row = words + (static_cast<size_t>(x) >> 6) * width;
    const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(x & 63));
    for (size_t v = 0; v < vecs; ++v) {
      __m256i bits =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + 4 * v));
      bits = _mm256_and_si256(_mm256_srl_epi64(bits, shift), kOne);
      acc[v] = _mm256_add_epi64(acc[v], bits);
    }
  }
  alignas(32) uint64_t lanes[4];
  for (size_t v = 0; v < vecs; ++v) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc[v]);
    for (int k = 0; k < 4; ++k) {
      counts[4 * v + k] = static_cast<uint32_t>(lanes[k]);
    }
  }
}

// Same AND-then-scalar-popcount scheme as AvxAndCount, with the group
// word broadcast across lanes and 4 interleaved slots per vector load.
void AvxAndCountBatch(const uint64_t* a, const uint64_t* b, size_t nwords,
                      size_t width, uint32_t* counts) {
  if (width % 4 != 0 || width > 64) {
    ScalarAndCountBatch(a, b, nwords, width, counts);
    return;
  }
  for (size_t w = 0; w < width; ++w) counts[w] = 0;
  for (size_t j = 0; j < nwords; ++j) {
    const __m256i aw = _mm256_set1_epi64x(static_cast<long long>(a[j]));
    const uint64_t* row = b + j * width;
    for (size_t v = 0; v < width / 4; ++v) {
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + 4 * v));
      alignas(32) uint64_t w64[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(w64),
                         _mm256_and_si256(aw, vb));
      counts[4 * v + 0] += static_cast<uint32_t>(std::popcount(w64[0]));
      counts[4 * v + 1] += static_cast<uint32_t>(std::popcount(w64[1]));
      counts[4 * v + 2] += static_cast<uint32_t>(std::popcount(w64[2]));
      counts[4 * v + 3] += static_cast<uint32_t>(std::popcount(w64[3]));
    }
  }
}

}  // namespace

const KernelTable& Avx2KernelTable() {
  static const KernelTable table = {
      AvxIntersect,  AvxIntersectSize, AvxIntersectSizeCapped,
      AvxIsSubset,   AvxDifference,    AvxMaskCount,
      AvxMaskFilter, AvxAndWords,      AvxAndCount,
      AvxClassifyBatch, AvxAndCountBatch,
  };
  return table;
}

}  // namespace mbe::simd::internal

#endif  // defined(__AVX2__)
