#ifndef PMBE_UTIL_TIMER_H_
#define PMBE_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

/// \file
/// Wall-clock timing helpers used by the experiment harness.

namespace mbe::util {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset, in seconds.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double Millis() const { return Seconds() * 1e3; }

  /// Elapsed time in nanoseconds (integer).
  int64_t Nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mbe::util

#endif  // PMBE_UTIL_TIMER_H_
