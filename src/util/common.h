#ifndef PMBE_UTIL_COMMON_H_
#define PMBE_UTIL_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

/// \file
/// Project-wide fundamental types and checking macros.
///
/// The library follows the Google C++ style: no exceptions on hot paths.
/// Unrecoverable programming errors abort via the CHECK macros below;
/// recoverable failures (I/O, parsing) return util::Status.

namespace mbe {

/// Identifier of a vertex on either side of the bipartite graph.
/// Vertices on each side are densely numbered from 0.
using VertexId = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

}  // namespace mbe

/// Aborts with a message when `cond` is false. Enabled in all build modes:
/// enumeration correctness bugs must never be silently ignored.
#define PMBE_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "PMBE_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// CHECK with a printf-style explanation appended.
#define PMBE_CHECK_MSG(cond, ...)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "PMBE_CHECK failed at %s:%d: %s: ", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::fprintf(stderr, __VA_ARGS__);                                     \
      std::fprintf(stderr, "\n");                                            \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Debug-only check, compiled out in release builds (NDEBUG).
#ifdef NDEBUG
#define PMBE_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define PMBE_DCHECK(cond) PMBE_CHECK(cond)
#endif

#endif  // PMBE_UTIL_COMMON_H_
