#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mbe::util {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

namespace {

std::string FormatWithSuffix(double x, const char* suffix) {
  char buf[64];
  if (x >= 100) {
    std::snprintf(buf, sizeof(buf), "%.0f%s", x, suffix);
  } else if (x >= 10) {
    std::snprintf(buf, sizeof(buf), "%.1f%s", x, suffix);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%s", x, suffix);
  }
  return buf;
}

}  // namespace

std::string HumanCount(double x) {
  if (x < 0) return "-" + HumanCount(-x);
  if (x >= 1e9) return FormatWithSuffix(x / 1e9, "B");
  if (x >= 1e6) return FormatWithSuffix(x / 1e6, "M");
  if (x >= 1e3) return FormatWithSuffix(x / 1e3, "K");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", x);
  return buf;
}

std::string HumanBytes(uint64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (b >= 1024.0 * 1024 * 1024) {
    return FormatWithSuffix(b / (1024.0 * 1024 * 1024), "GiB");
  }
  if (b >= 1024.0 * 1024) return FormatWithSuffix(b / (1024.0 * 1024), "MiB");
  if (b >= 1024.0) return FormatWithSuffix(b / 1024.0, "KiB");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(bytes));
  return buf;
}

std::string HumanSeconds(double seconds) {
  if (seconds < 0) return "-" + HumanSeconds(-seconds);
  if (seconds < 1e-6) return FormatWithSuffix(seconds * 1e9, "ns");
  if (seconds < 1e-3) return FormatWithSuffix(seconds * 1e6, "us");
  if (seconds < 1.0) return FormatWithSuffix(seconds * 1e3, "ms");
  return FormatWithSuffix(seconds, "s");
}

}  // namespace mbe::util
