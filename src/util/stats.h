#ifndef PMBE_UTIL_STATS_H_
#define PMBE_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Small statistics helpers for the experiment harness: running moments,
/// percentiles, and human-readable quantity formatting.

namespace mbe::util {

/// Accumulates count/mean/variance/min/max of a stream of doubles
/// (Welford's online algorithm).
class RunningStat {
 public:
  /// Adds one observation.
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the p-th percentile (0 <= p <= 100) of `values` using linear
/// interpolation between closest ranks. `values` is copied and sorted.
/// Returns 0 for an empty vector.
double Percentile(std::vector<double> values, double p);

/// Formats a nonnegative quantity with K/M/B suffixes ("12.3M").
std::string HumanCount(double x);

/// Formats a byte count with KiB/MiB/GiB suffixes.
std::string HumanBytes(uint64_t bytes);

/// Formats seconds adaptively ("734us", "12.3ms", "4.56s").
std::string HumanSeconds(double seconds);

}  // namespace mbe::util

#endif  // PMBE_UTIL_STATS_H_
