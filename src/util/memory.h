#ifndef PMBE_UTIL_MEMORY_H_
#define PMBE_UTIL_MEMORY_H_

#include <atomic>
#include <cstdint>

/// \file
/// Lightweight working-set accounting. The enumerators report the bytes
/// held by their node stacks, candidate arrays, and trie arenas through
/// this tracker so the memory experiments (T8) can compare peak usage
/// without OS-level instrumentation.

namespace mbe::util {

/// Tracks a current and peak byte count. Thread-safe; parallel enumeration
/// workers account into one shared tracker.
class MemoryTracker {
 public:
  /// Records `bytes` newly held.
  void Add(uint64_t bytes) {
    uint64_t now = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Lock-free peak update.
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }

  /// Records `bytes` released.
  void Sub(uint64_t bytes) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  uint64_t current() const { return current_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// Clears both counters.
  void Reset() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> current_{0};
  std::atomic<uint64_t> peak_{0};
};

/// Process-wide tracker used when an enumerator is not given its own.
MemoryTracker& GlobalMemoryTracker();

/// A hard memory budget with graceful degradation (docs/ROBUSTNESS.md).
///
/// The enumeration-side allocators — EnumContext scratch arenas, MBET's
/// per-node level/trie/bitmap state, BufferedSink batch arenas — *charge*
/// their bytes here and release them when the capacity is returned. Two
/// thresholds drive the behavior:
///
///  * past the **soft fraction** of the cap, `UnderPressure()` turns true
///    and the degradable consumers shed memory-hungry accelerations:
///    the adaptive set layer stays on sorted lists instead of bitmaps,
///    nodes skip building tries, sink buffers flush at a fraction of
///    their thresholds, and the stealing scheduler stops splitting
///    subtrees (splits multiply live root states). Degradations change
///    performance, never results.
///  * past the **hard cap**, `TryCharge` declines — the charge is rolled
///    back, `exhausted()` latches, and the run's controller converts the
///    next poll into `Termination::kMemoryLimit` with the valid prefix of
///    results emitted so far. Declined charges are never recorded, so
///    `peak()` provably stays <= the cap.
///
/// The cap is enforced on *accounted* bytes at polling granularity: an
/// in-flight allocation completes (the library never fails a malloc
/// mid-recursion), the run just stops cooperatively right after. A cap of
/// 0 disables both thresholds; accounting still runs so `peak()` is always
/// meaningful.
///
/// Thread-safe. Each run (a `mbe::Session`, or one legacy `Enumerate`
/// call) owns its own budget instance and *binds* it to every thread that
/// enumerates on the run's behalf (`ScopedBudgetBinding`); charging sites
/// reach the binding through `CurrentMemoryBudget()`. Attribution is
/// therefore per run: one session exhausting its cap degrades and stops
/// only itself, while a neighbor session's budget — a different instance —
/// is untouched. Threads with no binding fall back to the process-wide
/// instance (`ProcessMemoryBudget()`), preserving the old behavior for
/// code outside any session.
class MemoryBudget {
 public:
  /// Fraction of the hard cap at which degradation starts.
  static constexpr double kSoftFraction = 0.75;

  /// Installs `hard_cap_bytes` (0 = unlimited), re-baselines the peak to
  /// the currently charged bytes, and clears the exhausted latch. Called
  /// by the facade at run start.
  void BeginRun(uint64_t hard_cap_bytes) {
    hard_cap_.store(hard_cap_bytes, std::memory_order_relaxed);
    soft_cap_.store(
        static_cast<uint64_t>(static_cast<double>(hard_cap_bytes) *
                              kSoftFraction),
        std::memory_order_relaxed);
    peak_.store(current_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    exhausted_.store(false, std::memory_order_relaxed);
  }

  /// Removes the cap (accounting keeps running) and clears the latch.
  void EndRun() { BeginRun(0); }

  /// Charges `bytes` against the budget. Returns false — rolling the
  /// charge back and latching `exhausted()` — when a cap is set and the
  /// charge would exceed it; the caller must not Release a declined
  /// charge. Always succeeds when no cap is set.
  bool TryCharge(uint64_t bytes) {
    const uint64_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    const uint64_t cap = hard_cap_.load(std::memory_order_relaxed);
    if (cap > 0 && now > cap) {
      current_.fetch_sub(bytes, std::memory_order_relaxed);
      exhausted_.store(true, std::memory_order_relaxed);
      return false;
    }
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
    return true;
  }

  /// Returns previously charged bytes.
  void Release(uint64_t bytes) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// True when a cap is set and charged bytes passed the soft fraction:
  /// consumers should degrade (see class comment).
  bool UnderPressure() const {
    const uint64_t soft = soft_cap_.load(std::memory_order_relaxed);
    return soft > 0 &&
           current_.load(std::memory_order_relaxed) >= soft;
  }

  /// Latched when a charge was declined (or a fault forced exhaustion);
  /// cleared by BeginRun/EndRun. RunController polls this at checkpoints.
  bool exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

  /// Fault-injection hook: makes the budget report exhaustion as if a
  /// charge had been declined, exercising the kMemoryLimit path.
  void ForceExhaust() { exhausted_.store(true, std::memory_order_relaxed); }

  /// Degradation accounting (EnumStats::degradations).
  void NoteDegradation() {
    degradations_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t degradations() const {
    return degradations_.load(std::memory_order_relaxed);
  }

  uint64_t hard_cap() const {
    return hard_cap_.load(std::memory_order_relaxed);
  }
  uint64_t charged() const {
    return current_.load(std::memory_order_relaxed);
  }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// Diagnostic tag: the session the budget accounts for (0 = untagged /
  /// process-wide). Surfaced in serve-side accounting and error messages.
  void set_session_id(uint64_t id) {
    session_id_.store(id, std::memory_order_relaxed);
  }
  uint64_t session_id() const {
    return session_id_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> hard_cap_{0};
  std::atomic<uint64_t> soft_cap_{0};
  std::atomic<uint64_t> current_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<bool> exhausted_{false};
  std::atomic<uint64_t> degradations_{0};
  std::atomic<uint64_t> session_id_{0};
};

/// The process-wide default budget: what `CurrentMemoryBudget()` resolves
/// to on threads with no binding. Unlimited unless someone calls BeginRun
/// on it (the legacy single-run flow no longer does — each run brings its
/// own instance).
MemoryBudget& ProcessMemoryBudget();

/// The budget bound to the calling thread by the innermost live
/// ScopedBudgetBinding, or ProcessMemoryBudget() when none is bound. This
/// is the instance every charging site (arena growth, node state, sink
/// buffers) accounts into — one thread-local load, safe on any thread.
MemoryBudget& CurrentMemoryBudget();

/// Binds `budget` to the calling thread for the binding's lifetime
/// (nullptr re-binds the process default). A run binds its budget on every
/// thread that allocates on its behalf: the session thread around the
/// whole run, and each parallel worker around its main loop. Bindings
/// nest; destruction restores the previous binding. Charges and releases
/// must pair up under the same binding — the library guarantees this by
/// scoping every charging object (engine scratch, sink buffers) inside the
/// bound region.
class ScopedBudgetBinding {
 public:
  explicit ScopedBudgetBinding(MemoryBudget* budget);
  ~ScopedBudgetBinding();
  ScopedBudgetBinding(const ScopedBudgetBinding&) = delete;
  ScopedBudgetBinding& operator=(const ScopedBudgetBinding&) = delete;

 private:
  MemoryBudget* previous_;
};

/// Deprecated name of the pre-session process-wide accessor. Charging
/// sites now resolve the thread's bound budget; use CurrentMemoryBudget()
/// (or ProcessMemoryBudget() for the true global).
[[deprecated("use CurrentMemoryBudget() / ProcessMemoryBudget()")]]
inline MemoryBudget& GlobalMemoryBudget() { return CurrentMemoryBudget(); }

/// RAII charge: charges `bytes` to `budget` (and `tracker`, if given) on
/// construction and returns them on destruction. The release must be
/// exception-safe — an exception unwinding through an enumeration node
/// (throwing sink, injected fault) would otherwise leak the charge into
/// the process-wide budget and poison every later run's accounting.
class ScopedCharge {
 public:
  ScopedCharge(MemoryBudget& budget, MemoryTracker* tracker, uint64_t bytes)
      : budget_(budget),
        tracker_(tracker),
        bytes_(bytes),
        charged_(budget.TryCharge(bytes)) {
    if (tracker_ != nullptr) tracker_->Add(bytes_);
  }
  ~ScopedCharge() {
    if (tracker_ != nullptr) tracker_->Sub(bytes_);
    if (charged_) budget_.Release(bytes_);
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  /// False when the budget declined the charge (exhaustion latched).
  bool charged() const { return charged_; }

 private:
  MemoryBudget& budget_;
  MemoryTracker* tracker_;
  uint64_t bytes_;
  bool charged_;
};

}  // namespace mbe::util

#endif  // PMBE_UTIL_MEMORY_H_
