#ifndef PMBE_UTIL_MEMORY_H_
#define PMBE_UTIL_MEMORY_H_

#include <atomic>
#include <cstdint>

/// \file
/// Lightweight working-set accounting. The enumerators report the bytes
/// held by their node stacks, candidate arrays, and trie arenas through
/// this tracker so the memory experiments (T8) can compare peak usage
/// without OS-level instrumentation.

namespace mbe::util {

/// Tracks a current and peak byte count. Thread-safe; parallel enumeration
/// workers account into one shared tracker.
class MemoryTracker {
 public:
  /// Records `bytes` newly held.
  void Add(uint64_t bytes) {
    uint64_t now = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Lock-free peak update.
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }

  /// Records `bytes` released.
  void Sub(uint64_t bytes) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  uint64_t current() const { return current_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// Clears both counters.
  void Reset() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> current_{0};
  std::atomic<uint64_t> peak_{0};
};

/// Process-wide tracker used when an enumerator is not given its own.
MemoryTracker& GlobalMemoryTracker();

}  // namespace mbe::util

#endif  // PMBE_UTIL_MEMORY_H_
