#ifndef PMBE_UTIL_RANDOM_H_
#define PMBE_UTIL_RANDOM_H_

#include <cstdint>

#include "util/common.h"

/// \file
/// Deterministic, fast pseudo-random number generation for the synthetic
/// graph generators and property tests. We use SplitMix64 for seeding and
/// xoshiro256** for the stream; both are public-domain algorithms. A fixed
/// seed always reproduces the same graph on every platform, which the
/// experiment harness relies on.

namespace mbe::util {

/// SplitMix64 step; used to derive well-distributed seeds.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies (most of) UniformRandomBitGenerator,
/// but we provide explicit helpers instead of std::uniform_* distributions
/// because the std distributions are not reproducible across standard
/// library implementations.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the stream deterministically from `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next 64 random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  uint64_t operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be positive.
  /// Uses Lemire's multiply-shift rejection method.
  uint64_t Below(uint64_t bound) {
    PMBE_DCHECK(bound > 0);
    // 128-bit multiply keeps the distribution exactly uniform.
    while (true) {
      uint64_t x = Next();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      uint64_t lo = static_cast<uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    PMBE_DCHECK(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace mbe::util

#endif  // PMBE_UTIL_RANDOM_H_
