// SSE4.2 kernel table (util/simd.h). Compiled with -msse4.2 only for this
// translation unit; referenced by the dispatcher when the host CPU reports
// sse4.2 support. The sorted-list kernels use the classic 4x4
// shuffle-network block intersection: compare a 4-lane block of `a`
// against all rotations of a 4-lane block of `b`, turn the hit mask into a
// byte-shuffle that compacts the matches, and advance whichever block's
// maximum is smaller. Tails and small inputs fall back to the scalar
// bodies in simd_scalar.h, recompiled here so they pick up hardware
// popcount.

#include "util/simd.h"

#if defined(__SSE4_2__)

#include <immintrin.h>

#include <bit>

#include "util/simd_scalar.h"

namespace mbe::simd::internal {

namespace {

// Byte-shuffle control for _mm_shuffle_epi8: entry m moves the dword lanes
// set in the 4-bit mask m to the front; unused lanes are zeroed (0x80).
struct SseCompactLut {
  alignas(16) uint8_t b[16][16];
};

constexpr SseCompactLut MakeSseCompactLut() {
  SseCompactLut lut{};
  for (int m = 0; m < 16; ++m) {
    int k = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((m >> lane) & 1) {
        for (int byte = 0; byte < 4; ++byte) {
          lut.b[m][k * 4 + byte] = static_cast<uint8_t>(lane * 4 + byte);
        }
        ++k;
      }
    }
    for (; k < 4; ++k) {
      for (int byte = 0; byte < 4; ++byte) lut.b[m][k * 4 + byte] = 0x80;
    }
  }
  return lut;
}

constexpr SseCompactLut kCompact = MakeSseCompactLut();

// Bitmask of lanes of `va` equal to ANY lane of `vb` (all-pairs compare
// via the three cyclic rotations of vb).
inline unsigned PairwiseEqMask(__m128i va, __m128i vb) {
  __m128i cmp = _mm_cmpeq_epi32(va, vb);
  cmp = _mm_or_si128(
      cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
  cmp = _mm_or_si128(
      cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
  cmp = _mm_or_si128(
      cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
  return static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(cmp)));
}

inline void StoreCompact(VertexId* dst, __m128i va, unsigned mask) {
  const __m128i shuf =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kCompact.b[mask]));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                   _mm_shuffle_epi8(va, shuf));
}

size_t SseIntersect(const VertexId* a, size_t na, const VertexId* b, size_t nb,
                    VertexId* out) {
  size_t i = 0, j = 0, count = 0;
  if (na >= 4 && nb >= 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
    for (;;) {
      const unsigned mask = PairwiseEqMask(va, vb);
      StoreCompact(out + count, va, mask);
      count += static_cast<size_t>(std::popcount(mask));
      const VertexId amax = a[i + 3], bmax = b[j + 3];
      const bool adv_a = amax <= bmax, adv_b = bmax <= amax;
      if (adv_a) {
        i += 4;
        if (i + 4 > na) {
          if (adv_b) j += 4;
          break;
        }
        va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      }
      if (adv_b) {
        j += 4;
        if (j + 4 > nb) break;
        vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      }
    }
  }
  if (i < na && j < nb) {
    count += ScalarIntersect(a + i, na - i, b + j, nb - j, out + count);
  }
  return count;
}

size_t SseIntersectSize(const VertexId* a, size_t na, const VertexId* b,
                        size_t nb) {
  size_t i = 0, j = 0, count = 0;
  if (na >= 4 && nb >= 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
    for (;;) {
      count += static_cast<size_t>(std::popcount(PairwiseEqMask(va, vb)));
      const VertexId amax = a[i + 3], bmax = b[j + 3];
      const bool adv_a = amax <= bmax, adv_b = bmax <= amax;
      if (adv_a) {
        i += 4;
        if (i + 4 > na) {
          if (adv_b) j += 4;
          break;
        }
        va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      }
      if (adv_b) {
        j += 4;
        if (j + 4 > nb) break;
        vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      }
    }
  }
  if (i < na && j < nb) {
    count += ScalarIntersectSize(a + i, na - i, b + j, nb - j);
  }
  return count;
}

size_t SseIntersectSizeCapped(const VertexId* a, size_t na, const VertexId* b,
                              size_t nb, size_t cap) {
  size_t i = 0, j = 0, count = 0;
  if (na >= 4 && nb >= 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
    for (;;) {
      count += static_cast<size_t>(std::popcount(PairwiseEqMask(va, vb)));
      if (count >= cap) return cap;
      const VertexId amax = a[i + 3], bmax = b[j + 3];
      const bool adv_a = amax <= bmax, adv_b = bmax <= amax;
      if (adv_a) {
        i += 4;
        if (i + 4 > na) {
          if (adv_b) j += 4;
          break;
        }
        va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      }
      if (adv_b) {
        j += 4;
        if (j + 4 > nb) break;
        vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      }
    }
  }
  if (count < cap && i < na && j < nb) {
    count += ScalarIntersectSizeCapped(a + i, na - i, b + j, nb - j,
                                       cap - count);
  }
  return count < cap ? count : cap;
}

// Shared skeleton for difference and subset: walk blocks carrying the
// found-mask of the current `a` block across the `b` blocks it straddles.
// When the vector loop exhausts `b`, the carried mask finishes against the
// scalar remainder of `b` before the plain scalar tail takes over.
size_t SseDifference(const VertexId* a, size_t na, const VertexId* b,
                     size_t nb, VertexId* out) {
  size_t i = 0, j = 0, count = 0;
  unsigned found = 0;
  if (na >= 4 && nb >= 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
    for (;;) {
      found |= PairwiseEqMask(va, vb);
      const VertexId amax = a[i + 3], bmax = b[j + 3];
      const bool adv_a = amax <= bmax, adv_b = bmax <= amax;
      if (adv_a) {
        const unsigned keep = ~found & 0xFu;
        StoreCompact(out + count, va, keep);
        count += static_cast<size_t>(std::popcount(keep));
        found = 0;
        i += 4;
        if (i + 4 > na) {
          if (adv_b) j += 4;
          break;
        }
        va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      }
      if (adv_b) {
        j += 4;
        if (j + 4 > nb) break;
        vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      }
    }
  }
  if (found != 0) {
    // b ran out of full blocks mid-way through this a block: emit its
    // unmatched lanes, still checking them against the b remainder.
    for (size_t k = 0; k < 4; ++k) {
      if ((found >> k) & 1) continue;
      const VertexId x = a[i + k];
      const VertexId* lo = BranchlessLowerBound(b + j, nb - j, x);
      if (lo == b + nb || *lo != x) out[count++] = x;
    }
    i += 4;
  }
  if (i < na) {
    count += ScalarDifference(a + i, na - i, b + j, nb - j, out + count);
  }
  return count;
}

bool SseIsSubset(const VertexId* a, size_t na, const VertexId* b, size_t nb) {
  if (na > nb) return false;
  size_t i = 0, j = 0;
  unsigned found = 0;
  if (na >= 4 && nb >= 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
    for (;;) {
      found |= PairwiseEqMask(va, vb);
      const VertexId amax = a[i + 3], bmax = b[j + 3];
      const bool adv_a = amax <= bmax, adv_b = bmax <= amax;
      if (adv_a) {
        if (found != 0xFu) return false;
        found = 0;
        i += 4;
        if (i + 4 > na) {
          if (adv_b) j += 4;
          break;
        }
        va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      }
      if (adv_b) {
        j += 4;
        if (j + 4 > nb) break;
        vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      }
    }
  }
  if (found != 0) {
    for (size_t k = 0; k < 4; ++k) {
      if ((found >> k) & 1) continue;
      const VertexId x = a[i + k];
      const VertexId* lo = BranchlessLowerBound(b + j, nb - j, x);
      if (lo == b + nb || *lo != x) return false;
    }
    i += 4;
  }
  if (i < na) return ScalarIsSubset(a + i, na - i, b + j, nb - j);
  return true;
}

}  // namespace

const KernelTable& Sse42KernelTable() {
  // Mask and word kernels reuse the scalar bodies: compiled in this TU
  // they get hardware popcount, which is the whole win for and_count.
  static const KernelTable table = {
      SseIntersect,     SseIntersectSize, SseIntersectSizeCapped,
      SseIsSubset,      SseDifference,    ScalarMaskCount,
      ScalarMaskFilter, ScalarAndWords,   ScalarAndCount,
      ScalarClassifyBatch, ScalarAndCountBatch,
  };
  return table;
}

}  // namespace mbe::simd::internal

#endif  // defined(__SSE4_2__)
