#include "util/fault.h"

#include <cstdio>
#include <cstdlib>

namespace mbe::util {

namespace {

bool IsKnownPoint(const std::string& name) {
  for (const char* p : kFaultPoints) {
    if (name == p) return true;
  }
  return false;
}

// Deterministic draw against probability `p`: draw index `n` from stream
// `seed`, shared by the global and per-point probability modes.
bool Draw(double p, uint64_t seed, uint64_t n);

// splitmix64: deterministic per-hit randomness for probability mode.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool Draw(double p, uint64_t seed, uint64_t n) {
  const uint64_t r = Mix(seed ^ Mix(n));
  return static_cast<double>(r >> 11) * 0x1.0p-53 < p;
}

}  // namespace

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

FaultRegistry::FaultRegistry() {
  // Environment arming: any binary (tools, tests, benches) can run under a
  // fault schedule without code changes. Errors are fatal — a typo'd spec
  // silently running faultless would defeat the test.
  const char* spec = std::getenv("PMBE_FAULT_INJECT");
  if (spec != nullptr && spec[0] != '\0') {
    const Status status = ArmSpec(spec);
    if (!status.ok()) {
      std::fprintf(stderr, "PMBE_FAULT_INJECT: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
  }
}

bool FaultRegistry::Check(const char* point) {
  if (!armed()) return false;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PointState& st = points_[point];
    ++st.hits;
    if (st.countdown > 0 && --st.countdown == 0) fire = true;
    if (!fire && st.probability > 0) {
      fire = Draw(st.probability, st.prob_seed, st.prob_counter++);
    }
    if (!fire && probability_ > 0) {
      fire = Draw(probability_, prob_seed_, prob_counter_++);
    }
  }
  if (fire) injected_.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

void FaultRegistry::ArmCountdown(const std::string& point, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  points_[point].countdown = nth;
  armed_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::ArmProbability(double p, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  probability_ = p;
  prob_seed_ = seed;
  prob_counter_ = 0;
  armed_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::ArmPointProbability(const std::string& point, double p,
                                        uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& st = points_[point];
  st.probability = p;
  st.prob_seed = seed;
  st.prob_counter = 0;
  armed_.store(true, std::memory_order_relaxed);
}

namespace {

// "p=<prob>[:seed=<s>]" → (p, seed). p out of (0, 1] is InvalidArgument.
Status ParseProbabilityFields(const std::string& rest, double* p,
                              uint64_t* seed) {
  *p = -1;
  *seed = 1;
  size_t pos = 0;
  while (pos < rest.size()) {
    size_t end = rest.find(':', pos);
    if (end == std::string::npos) end = rest.size();
    const std::string kv = rest.substr(pos, end - pos);
    if (kv.rfind("p=", 0) == 0) {
      *p = std::atof(kv.c_str() + 2);
    } else if (kv.rfind("seed=", 0) == 0) {
      *seed = std::strtoull(kv.c_str() + 5, nullptr, 10);
    } else {
      return Status::InvalidArgument("unknown fault spec field '" + kv + "'");
    }
    pos = end + 1;
  }
  if (!(*p > 0 && *p <= 1)) {
    return Status::InvalidArgument(
        "probability spec needs p in (0, 1] (got '" + rest + "')");
  }
  return Status::Ok();
}

}  // namespace

Status FaultRegistry::ArmSpec(const std::string& spec) {
  // Clauses join with ';' and arm independently, so one env var can
  // schedule several points ("net.reset:p=0.05;net.delay:p=0.2").
  size_t clause_start = 0;
  while (clause_start <= spec.size()) {
    size_t clause_end = spec.find(';', clause_start);
    if (clause_end == std::string::npos) clause_end = spec.size();
    const std::string clause =
        spec.substr(clause_start, clause_end - clause_start);
    clause_start = clause_end + 1;
    if (clause.empty()) continue;

    const size_t colon = clause.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= clause.size()) {
      return Status::InvalidArgument(
          "fault spec clause must be '<point>:<countdown>', "
          "'<point>:p=<prob>[:seed=<s>]', or '*:p=<prob>[:seed=<s>]' "
          "(got '" + clause + "')");
    }
    const std::string point = clause.substr(0, colon);
    const std::string rest = clause.substr(colon + 1);

    if (point == "*") {
      double p;
      uint64_t seed;
      PMBE_RETURN_IF_ERROR(ParseProbabilityFields(rest, &p, &seed));
      ArmProbability(p, seed);
      continue;
    }

    // "<prefix>.*" arms every catalog point under the prefix — probability
    // mode only (a shared countdown across several sites is ambiguous).
    if (point.size() > 2 && point.compare(point.size() - 2, 2, ".*") == 0) {
      const std::string prefix = point.substr(0, point.size() - 1);
      if (rest.rfind("p=", 0) != 0) {
        return Status::InvalidArgument(
            "wildcard '" + point + "' needs a probability spec "
            "('" + point + ":p=<prob>[:seed=<s>]')");
      }
      double p;
      uint64_t seed;
      PMBE_RETURN_IF_ERROR(ParseProbabilityFields(rest, &p, &seed));
      size_t matched = 0;
      for (const char* cat : kFaultPoints) {
        if (std::string(cat).rfind(prefix, 0) == 0) {
          // Offset the seed per point so sites draw independent streams.
          ArmPointProbability(cat, p, seed + matched);
          ++matched;
        }
      }
      if (matched == 0) {
        return Status::InvalidArgument("wildcard '" + point +
                                       "' matches no fault point "
                                       "(see util/fault.h kFaultPoints)");
      }
      continue;
    }

    if (!IsKnownPoint(point)) {
      return Status::InvalidArgument("unknown fault point '" + point +
                                     "' (see util/fault.h kFaultPoints)");
    }
    if (rest.rfind("p=", 0) == 0) {
      double p;
      uint64_t seed;
      PMBE_RETURN_IF_ERROR(ParseProbabilityFields(rest, &p, &seed));
      ArmPointProbability(point, p, seed);
      continue;
    }
    char* end = nullptr;
    const uint64_t nth = std::strtoull(rest.c_str(), &end, 10);
    if (end == rest.c_str() || *end != '\0' || nth == 0) {
      return Status::InvalidArgument("countdown must be a positive integer "
                                     "(got '" + rest + "')");
    }
    ArmCountdown(point, nth);
  }
  return Status::Ok();
}

void FaultRegistry::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, st] : points_) {
    st.countdown = 0;
    st.probability = 0;
  }
  probability_ = 0;
  armed_.store(false, std::memory_order_relaxed);
}

uint64_t FaultRegistry::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

void FaultRegistry::ResetHits() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, st] : points_) st.hits = 0;
}

}  // namespace mbe::util
