#ifndef PMBE_UTIL_SIMD_SCALAR_H_
#define PMBE_UTIL_SIMD_SCALAR_H_

#include <bit>
#include <cstddef>
#include <cstdint>

#include "util/common.h"

/// \file
/// Portable scalar bodies of every kernel in the dispatch table
/// (util/simd.h). Header-only so the SSE4.2 and AVX2 translation units can
/// reuse them for block tails: a tail compiled in those TUs runs the exact
/// same algorithm, which keeps the differential fuzzer's "every level
/// byte-matches scalar" property trivial. Each SIMD TU also gets these
/// bodies compiled under its own -m flags, so e.g. the SSE4.2 tail uses
/// hardware popcount.

namespace mbe::simd::internal {

/// Branchless lower bound: the compare folds to a conditional move, so the
/// search pipeline never mispredicts. This is the "branchless galloping"
/// building block the lopsided intersection paths use.
inline const VertexId* BranchlessLowerBound(const VertexId* lo, size_t n,
                                            VertexId x) {
  while (n > 0) {
    const size_t half = n >> 1;
    const VertexId* mid = lo + half;
    const bool go_right = *mid < x;
    lo = go_right ? mid + 1 : lo;
    n = go_right ? n - half - 1 : half;
  }
  return lo;
}

inline size_t ScalarIntersect(const VertexId* a, size_t na, const VertexId* b,
                              size_t nb, VertexId* out) {
  size_t i = 0, j = 0, count = 0;
  while (i < na && j < nb) {
    const VertexId x = a[i], y = b[j];
    if (x == y) out[count++] = x;
    i += x <= y;
    j += y <= x;
  }
  return count;
}

inline size_t ScalarIntersectSize(const VertexId* a, size_t na,
                                  const VertexId* b, size_t nb) {
  size_t i = 0, j = 0, count = 0;
  while (i < na && j < nb) {
    const VertexId x = a[i], y = b[j];
    count += x == y;
    i += x <= y;
    j += y <= x;
  }
  return count;
}

inline size_t ScalarIntersectSizeCapped(const VertexId* a, size_t na,
                                        const VertexId* b, size_t nb,
                                        size_t cap) {
  size_t i = 0, j = 0, count = 0;
  while (i < na && j < nb && count < cap) {
    const VertexId x = a[i], y = b[j];
    count += x == y;
    i += x <= y;
    j += y <= x;
  }
  return count;
}

inline bool ScalarIsSubset(const VertexId* a, size_t na, const VertexId* b,
                           size_t nb) {
  if (na > nb) return false;
  size_t i = 0, j = 0;
  while (i < na) {
    if (nb - j < na - i) return false;
    const VertexId x = a[i];
    while (j < nb && b[j] < x) ++j;
    if (j == nb || b[j] != x) return false;
    ++i;
    ++j;
  }
  return true;
}

inline size_t ScalarDifference(const VertexId* a, size_t na, const VertexId* b,
                               size_t nb, VertexId* out) {
  size_t i = 0, j = 0, count = 0;
  while (i < na && j < nb) {
    const VertexId x = a[i], y = b[j];
    if (x < y) {
      out[count++] = x;
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  while (i < na) out[count++] = a[i++];
  return count;
}

inline size_t ScalarMaskCount(const VertexId* xs, size_t n,
                              const uint64_t* words) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const VertexId x = xs[i];
    count += (words[x >> 6] >> (x & 63)) & 1;
  }
  return count;
}

inline size_t ScalarMaskFilter(const VertexId* xs, size_t n,
                               const uint64_t* words, VertexId* out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const VertexId x = xs[i];
    out[count] = x;
    count += (words[x >> 6] >> (x & 63)) & 1;
  }
  return count;
}

inline void ScalarAndWords(const uint64_t* a, const uint64_t* b, uint64_t* out,
                           size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] & b[i];
}

/// Batched membership probe over `width` interleaved masks: bit x of mask
/// slot w lives at bit x%64 of words[(x/64)*width + w]. Writes
/// counts[w] = |{x in xs : bit x set in mask w}| for every w < width.
inline void ScalarClassifyBatch(const VertexId* xs, size_t n,
                                const uint64_t* words, size_t width,
                                uint32_t* counts) {
  for (size_t w = 0; w < width; ++w) counts[w] = 0;
  for (size_t i = 0; i < n; ++i) {
    const VertexId x = xs[i];
    const uint64_t* row = words + (static_cast<size_t>(x) >> 6) * width;
    const unsigned shift = static_cast<unsigned>(x & 63);
    for (size_t w = 0; w < width; ++w) {
      counts[w] += static_cast<uint32_t>((row[w] >> shift) & 1);
    }
  }
}

inline size_t ScalarAndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

/// Batched AND-popcount of one plain bitmap against `width` interleaved
/// bitmaps: word j of interleaved slot w is b[j*width + w]. Writes
/// counts[w] = popcount(a & slot w) for every w < width. The `a` words
/// stream once while one row of interleaved words stays in cache.
inline void ScalarAndCountBatch(const uint64_t* a, const uint64_t* b,
                                size_t nwords, size_t width,
                                uint32_t* counts) {
  for (size_t w = 0; w < width; ++w) counts[w] = 0;
  for (size_t j = 0; j < nwords; ++j) {
    const uint64_t aw = a[j];
    const uint64_t* row = b + j * width;
    for (size_t w = 0; w < width; ++w) {
      counts[w] += static_cast<uint32_t>(std::popcount(aw & row[w]));
    }
  }
}

}  // namespace mbe::simd::internal

#endif  // PMBE_UTIL_SIMD_SCALAR_H_
