#ifndef PMBE_UTIL_BITSET_H_
#define PMBE_UTIL_BITSET_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/common.h"
#include "util/simd.h"

/// \file
/// Word-level bitmap primitives over `uint64_t` spans. These are the
/// fixed-width kernels underneath core/vertex_set.h (the hybrid
/// sorted-list/bitmap set layer): a set over a universe of `m` vertices is
/// `WordsFor(m)` consecutive words, bit `x` of the set being bit `x % 64`
/// of word `x / 64`. Kept header-only so both the graph preprocessing
/// layer and the enumeration core can use them; the AND/popcount pair
/// routes through the runtime-dispatched kernel table (util/simd.h) once
/// the bitmaps are wide enough to amortize the indirect call.

namespace mbe::util {

/// Number of 64-bit words needed for a universe of `universe` elements.
constexpr size_t WordsFor(size_t universe) { return (universe + 63) / 64; }

inline void SetBit(std::span<uint64_t> words, VertexId x) {
  PMBE_DCHECK(x / 64 < words.size());
  words[x >> 6] |= uint64_t{1} << (x & 63);
}

inline void ClearBit(std::span<uint64_t> words, VertexId x) {
  PMBE_DCHECK(x / 64 < words.size());
  words[x >> 6] &= ~(uint64_t{1} << (x & 63));
}

inline bool TestBit(std::span<const uint64_t> words, VertexId x) {
  PMBE_DCHECK(x / 64 < words.size());
  return (words[x >> 6] >> (x & 63)) & 1;
}

/// Zeroes all words.
inline void ClearWords(std::span<uint64_t> words) {
  std::memset(words.data(), 0, words.size() * sizeof(uint64_t));
}

/// Sets the bit of every element of sorted-or-not list `xs`.
inline void SetBits(std::span<const VertexId> xs, std::span<uint64_t> words) {
  for (VertexId x : xs) SetBit(words, x);
}

/// Clears the bit of every element of `xs` (sparse clear: proportional to
/// |xs|, not the universe).
inline void ClearBits(std::span<const VertexId> xs, std::span<uint64_t> words) {
  for (VertexId x : xs) ClearBit(words, x);
}

/// Population count of the whole bitmap.
inline size_t CountBits(std::span<const uint64_t> words) {
  size_t count = 0;
  for (uint64_t w : words) count += static_cast<size_t>(std::popcount(w));
  return count;
}

/// Word counts below which the AND kernels stay on inline loops (the
/// indirect dispatch call costs more than the loop on narrow bitmaps).
inline constexpr size_t kAndCountDispatchWords = 2;
inline constexpr size_t kAndWordsDispatchWords = 8;

/// |a ∩ b| for two bitmaps over the same universe: AND + popcount, no
/// materialization. The O(m/64) kernel the dense classification path uses.
/// Dispatched from two words up: the baseline x86-64 build has no popcnt
/// instruction, so even the SSE4.2 table's scalar body wins here.
inline size_t AndCountBits(std::span<const uint64_t> a,
                           std::span<const uint64_t> b) {
  PMBE_DCHECK(a.size() == b.size());
  if (a.size() >= kAndCountDispatchWords) {
    simd::CountKernelCall(simd::KernelOp::kWord);
    return simd::Kernels().and_count(a.data(), b.data(), a.size());
  }
  size_t count = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    count += static_cast<size_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

/// out = a ∩ b (word-wise AND). `out` may alias `a` or `b`.
inline void AndWords(std::span<const uint64_t> a, std::span<const uint64_t> b,
                     std::span<uint64_t> out) {
  PMBE_DCHECK(a.size() == b.size() && out.size() == a.size());
  if (a.size() >= kAndWordsDispatchWords) {
    simd::CountKernelCall(simd::KernelOp::kWord);
    simd::Kernels().and_words(a.data(), b.data(), out.data(), a.size());
    return;
  }
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] & b[i];
}

/// True iff every bit of `a` is set in `b`.
inline bool IsSubsetWords(std::span<const uint64_t> a,
                          std::span<const uint64_t> b) {
  PMBE_DCHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

/// Appends the elements of the bitmap to `*out` in ascending order
/// (`out` is NOT cleared; callers compose decoded runs into arenas).
inline void AppendBitsToList(std::span<const uint64_t> words,
                             std::vector<VertexId>* out) {
  for (size_t i = 0; i < words.size(); ++i) {
    uint64_t w = words[i];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out->push_back(static_cast<VertexId>(i * 64 + static_cast<size_t>(bit)));
      w &= w - 1;
    }
  }
}

}  // namespace mbe::util

#endif  // PMBE_UTIL_BITSET_H_
