#ifndef PMBE_UTIL_FLAGS_H_
#define PMBE_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

/// \file
/// A tiny command-line flag parser for the benchmark and example binaries.
/// Supports `--name=value`, `--name value` and boolean `--name` /
/// `--no-name` forms. Unknown flags abort with a usage listing, so typos in
/// experiment invocations fail loudly rather than silently running the
/// default configuration.

namespace mbe::util {

/// Parses argv into named flags plus positional arguments.
class FlagParser {
 public:
  /// Registers a flag with a default value and help text. Registration must
  /// happen before Parse().
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  void AddInt(const std::string& name, int64_t default_value,
              const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);

  /// Parses the command line. Aborts with usage on unknown flags or
  /// malformed values. `--help` prints usage and exits(0).
  void Parse(int argc, char** argv);

  /// Typed accessors; abort if the flag was not registered with the
  /// matching type.
  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// Arguments that were not flags, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Prints the usage listing to stderr.
  void PrintUsage(const char* argv0) const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string value;  // canonical textual value
  };

  const Flag& GetFlagOrDie(const std::string& name, Type type) const;
  void SetValueOrDie(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool parsed_ = false;
};

}  // namespace mbe::util

#endif  // PMBE_UTIL_FLAGS_H_
