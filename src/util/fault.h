#ifndef PMBE_UTIL_FAULT_H_
#define PMBE_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>

#include "util/status.h"

/// \file
/// Deterministic fault injection (docs/ROBUSTNESS.md).
///
/// A *fault point* is a named site in the library where a resource failure
/// can plausibly happen: an arena growing, a bitmap or trie being built, a
/// sink buffer flushing, a worker picking up a task, a loader reading a
/// line. Sites test the point with the `PMBE_FAULT(name)` macro and, when
/// it fires, take their real failure path — the same one a genuine
/// allocation failure, stalled thread, or failing consumer would take. The
/// test matrix (scripts/check.sh fault leg, `pmbe_selfcheck --fault_sweep`
/// / `--chaos`) then proves that every such path ends in a typed
/// termination with a valid result prefix, never a crash.
///
/// The check is compiled in only under `-DPMBE_FAULT_INJECTION=ON`; in
/// regular builds `PMBE_FAULT(x)` is the constant `false` and the whole
/// framework costs nothing. In a fault build the disarmed fast path is one
/// relaxed atomic load.
///
/// Arming (fault builds only):
///  * programmatically — `FaultRegistry::Global().ArmCountdown("arena.grow",
///    3)` fires once, at the 3rd execution of that site;
///  * probabilistically — `ArmProbability(0.01, seed)` makes every site
///    fire independently with the given probability (deterministic in the
///    seed and hit order);
///  * per point probabilistically — `ArmPointProbability("net.reset", 0.05,
///    seed)` fires only that site, with its own deterministic stream;
///  * from the environment — `PMBE_FAULT_INJECT="arena.grow:3"` or
///    `PMBE_FAULT_INJECT="*:p=0.01:seed=7"`, read once at first use, so
///    any binary can run under a fault schedule without code changes.
///    Specs compose: `;`-joined clauses arm independently
///    (`"net.reset:p=0.05;net.delay:p=0.2:seed=3"`), and a `<prefix>.*`
///    wildcard arms every catalog point under the prefix
///    (`"net.*:p=0.1:seed=7"` arms the five network points and nothing
///    else — unlike `*`, which arms every site in the process).

namespace mbe::util {

/// Catalog of every fault point compiled into the library. Hand-maintained:
/// adding a `PMBE_FAULT("x")` site requires adding "x" here (fault_test
/// sweeps this list; docs/ROBUSTNESS.md documents each entry).
inline constexpr const char* kFaultPoints[] = {
    "arena.grow",    // EnumContext scratch-pool growth (all engines)
    "batch.build",   // batched-frontier window materialization (MBET)
    "bitmap.build",  // adaptive bitmap materialization (MBET / VertexSet)
    "trie.build",    // prefix-tree construction at an enumeration node
    "sink.buffer",   // BufferedSink batch-arena growth
    "sink.flush",    // BufferedSink handing a batch downstream (throws)
    "worker.task",   // parallel worker starting a subtree/shard (throws)
    "worker.stall",  // parallel worker pausing mid-pipeline (sleeps)
    "loader.line",   // graph_io reading one input line
    // Network path (src/serve/net.h faulting socket shim; client + server).
    "net.accept",         // server accept() fails transiently
    "net.read_stall",     // recv() stalls until the caller's deadline
    "net.write_truncate", // send() writes a short count then drops the peer
    "net.reset",          // connection reset (ECONNRESET) on read or write
    "net.delay",          // bounded latency injected before a socket op
};
inline constexpr size_t kNumFaultPoints =
    sizeof(kFaultPoints) / sizeof(kFaultPoints[0]);

/// Exception thrown by fault points that simulate a failing component
/// (sink.flush, worker.task). The containment layer converts it — like any
/// other exception escaping a worker or sink — into Termination::kInternal.
class FaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Process-wide fault-point registry. Thread-safe: sites may check from
/// any worker while a test arms/disarms from the main thread (arming
/// mid-run is racy by nature and fine — fault schedules are about
/// reachability, not exact interleavings).
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  /// True when any schedule is armed. One relaxed load; this is the whole
  /// cost of a disarmed fault build.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Site-side check: returns true when `point` should fail now. Counts
  /// hits and injections while armed.
  bool Check(const char* point);

  /// Fires `point` once, at its `nth` execution from now (nth >= 1).
  /// Replaces any previous schedule for the point.
  void ArmCountdown(const std::string& point, uint64_t nth);

  /// Every point fires independently with probability `p`, deterministic
  /// in `seed` and the per-point hit order.
  void ArmProbability(double p, uint64_t seed);

  /// Only `point` fires, independently with probability `p`, from its own
  /// deterministic stream (seeded by `seed` and the point's hit order).
  /// Replaces any previous per-point probability for the point; composes
  /// with countdowns and other points' schedules.
  void ArmPointProbability(const std::string& point, double p, uint64_t seed);

  /// Parses and applies a schedule spec. Grammar (clauses join with ';'):
  ///   <point>:<countdown>            fire once at the nth execution
  ///   <point>:p=<prob>[:seed=<s>]    per-point probability
  ///   <prefix>.*:p=<prob>[:seed=<s>] per-point probability for every
  ///                                  catalog point under the prefix
  ///   *:p=<prob>[:seed=<s>]          global probability, every site
  /// Unknown points (not in kFaultPoints) and prefixes matching nothing
  /// are InvalidArgument, so typos fail loudly.
  Status ArmSpec(const std::string& spec);

  /// Clears every schedule (hit/injection counters are kept).
  void Disarm();

  /// Faults injected since process start (across all points).
  uint64_t faults_injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  /// Executions of `point` observed while the registry was armed. Lets a
  /// sweep size its countdown range: arm an unreachable countdown, run
  /// once, and read how often the site fired.
  uint64_t hits(const std::string& point) const;

  /// Clears the per-point hit counters (not the injection total).
  void ResetHits();

 private:
  FaultRegistry();

  struct PointState {
    uint64_t hits = 0;
    uint64_t countdown = 0;     ///< 0 = no countdown armed
    double probability = 0;     ///< 0 = no per-point probability armed
    uint64_t prob_seed = 0;
    uint64_t prob_counter = 0;  ///< per-point draw index (deterministic)
  };

  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> injected_{0};

  mutable std::mutex mu_;
  std::map<std::string, PointState> points_;
  double probability_ = 0;
  uint64_t prob_seed_ = 0;
  uint64_t prob_counter_ = 0;
};

}  // namespace mbe::util

#if defined(PMBE_FAULT_INJECTION)
#define PMBE_FAULT(point) (::mbe::util::FaultRegistry::Global().armed() && \
                           ::mbe::util::FaultRegistry::Global().Check(point))
#else
/// Fault injection compiled out: the branch folds away entirely.
#define PMBE_FAULT(point) false
#endif

#endif  // PMBE_UTIL_FAULT_H_
