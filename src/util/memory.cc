#include "util/memory.h"

namespace mbe::util {

MemoryTracker& GlobalMemoryTracker() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

}  // namespace mbe::util
