#include "util/memory.h"

namespace mbe::util {

namespace {

/// The calling thread's bound budget (nullptr = process default). A plain
/// thread_local pointer: bindings are strictly scoped, so no cleanup
/// machinery is needed beyond ScopedBudgetBinding's destructor.
thread_local MemoryBudget* t_bound_budget = nullptr;

}  // namespace

MemoryTracker& GlobalMemoryTracker() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

MemoryBudget& ProcessMemoryBudget() {
  static MemoryBudget* budget = new MemoryBudget();
  return *budget;
}

MemoryBudget& CurrentMemoryBudget() {
  MemoryBudget* bound = t_bound_budget;
  return bound != nullptr ? *bound : ProcessMemoryBudget();
}

ScopedBudgetBinding::ScopedBudgetBinding(MemoryBudget* budget)
    : previous_(t_bound_budget) {
  t_bound_budget = budget;
}

ScopedBudgetBinding::~ScopedBudgetBinding() { t_bound_budget = previous_; }

}  // namespace mbe::util
