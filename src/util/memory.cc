#include "util/memory.h"

namespace mbe::util {

MemoryTracker& GlobalMemoryTracker() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

MemoryBudget& GlobalMemoryBudget() {
  static MemoryBudget* budget = new MemoryBudget();
  return *budget;
}

}  // namespace mbe::util
