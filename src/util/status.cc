#include "util/status.h"

namespace mbe::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kCorruptData:
      return "CORRUPT_DATA";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mbe::util
