#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/common.h"

namespace mbe::util {

namespace {

const char* TypeName(int t) {
  switch (t) {
    case 0:
      return "string";
    case 1:
      return "int";
    case 2:
      return "double";
    case 3:
      return "bool";
  }
  return "?";
}

bool ParseBoolText(const std::string& text, bool* out) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

void FlagParser::AddString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  PMBE_CHECK_MSG(!parsed_, "flag '%s' registered after Parse()", name.c_str());
  flags_[name] = Flag{Type::kString, help, default_value};
}

void FlagParser::AddInt(const std::string& name, int64_t default_value,
                        const std::string& help) {
  PMBE_CHECK_MSG(!parsed_, "flag '%s' registered after Parse()", name.c_str());
  flags_[name] = Flag{Type::kInt, help, std::to_string(default_value)};
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  PMBE_CHECK_MSG(!parsed_, "flag '%s' registered after Parse()", name.c_str());
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", default_value);
  flags_[name] = Flag{Type::kDouble, help, buf};
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  PMBE_CHECK_MSG(!parsed_, "flag '%s' registered after Parse()", name.c_str());
  flags_[name] = Flag{Type::kBool, help, default_value ? "true" : "false"};
}

void FlagParser::SetValueOrDie(const std::string& name,
                               const std::string& value) {
  auto it = flags_.find(name);
  PMBE_CHECK_MSG(it != flags_.end(), "unknown flag --%s", name.c_str());
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kString:
      flag.value = value;
      break;
    case Type::kInt: {
      char* end = nullptr;
      (void)strtoll(value.c_str(), &end, 10);
      PMBE_CHECK_MSG(end && *end == '\0' && !value.empty(),
                     "flag --%s expects an integer, got '%s'", name.c_str(),
                     value.c_str());
      flag.value = value;
      break;
    }
    case Type::kDouble: {
      char* end = nullptr;
      (void)strtod(value.c_str(), &end);
      PMBE_CHECK_MSG(end && *end == '\0' && !value.empty(),
                     "flag --%s expects a double, got '%s'", name.c_str(),
                     value.c_str());
      flag.value = value;
      break;
    }
    case Type::kBool: {
      bool parsed = false;
      PMBE_CHECK_MSG(ParseBoolText(value, &parsed),
                     "flag --%s expects a bool, got '%s'", name.c_str(),
                     value.c_str());
      flag.value = parsed ? "true" : "false";
      break;
    }
  }
}

void FlagParser::Parse(int argc, char** argv) {
  parsed_ = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      SetValueOrDie(body.substr(0, eq), body.substr(eq + 1));
      continue;
    }
    // `--no-name` for booleans.
    if (body.rfind("no-", 0) == 0) {
      const std::string name = body.substr(3);
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        it->second.value = "false";
        continue;
      }
    }
    auto it = flags_.find(body);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n", body.c_str());
      PrintUsage(argv[0]);
      std::exit(2);
    }
    if (it->second.type == Type::kBool) {
      it->second.value = "true";
      continue;
    }
    // Value is the next argument.
    PMBE_CHECK_MSG(i + 1 < argc, "flag --%s is missing a value", body.c_str());
    SetValueOrDie(body, argv[++i]);
  }
}

const FlagParser::Flag& FlagParser::GetFlagOrDie(const std::string& name,
                                                 Type type) const {
  auto it = flags_.find(name);
  PMBE_CHECK_MSG(it != flags_.end(), "flag --%s was never registered",
                 name.c_str());
  PMBE_CHECK_MSG(it->second.type == type,
                 "flag --%s has type %s, requested %s", name.c_str(),
                 TypeName(static_cast<int>(it->second.type)),
                 TypeName(static_cast<int>(type)));
  return it->second;
}

std::string FlagParser::GetString(const std::string& name) const {
  return GetFlagOrDie(name, Type::kString).value;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return strtoll(GetFlagOrDie(name, Type::kInt).value.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name) const {
  return strtod(GetFlagOrDie(name, Type::kDouble).value.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name) const {
  return GetFlagOrDie(name, Type::kBool).value == "true";
}

void FlagParser::PrintUsage(const char* argv0) const {
  std::fprintf(stderr, "usage: %s [flags]\n", argv0);
  for (const auto& [name, flag] : flags_) {
    std::fprintf(stderr, "  --%s (%s, default %s)\n      %s\n", name.c_str(),
                 TypeName(static_cast<int>(flag.type)), flag.value.c_str(),
                 flag.help.c_str());
  }
}

}  // namespace mbe::util
