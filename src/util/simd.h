#ifndef PMBE_UTIL_SIMD_H_
#define PMBE_UTIL_SIMD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/common.h"

/// \file
/// Runtime-dispatched vectorized kernels (docs/SET_REPRESENTATION.md,
/// "The vectorized kernel layer").
///
/// Every sorted-list, membership-mask, and bitmap-word kernel underneath
/// the enumerators routes through one function-pointer table selected once
/// per process: AVX2 when the CPU and the build provide it, SSE4.2 next,
/// scalar always. The SIMD translation units are compiled with per-file
/// `-mavx2` / `-msse4.2` flags (CMake options `PMBE_ENABLE_AVX2` /
/// `PMBE_ENABLE_SSE42`), so the rest of the build stays portable to the
/// baseline x86-64 ISA and to non-x86 targets, where only the scalar table
/// exists.
///
/// Pinning for CI and benchmarking:
///  * `PMBE_FORCE_SCALAR=1` in the environment pins the scalar table at
///    first use (the `scripts/check.sh` scalar leg);
///  * `-DPMBE_FORCE_SCALAR=ON` at configure time compiles the pin in;
///  * `ForceLevel()` re-points the table at runtime (benchmarks and the
///    differential fuzzer; not thread-safe, single-threaded use only).

namespace mbe::simd {

/// Instruction-set level of the active kernel table, in increasing order
/// of capability. Numeric values are stable: they are stored in
/// `EnumStats::kernel_dispatch` and printed by `pmbe --stats`.
enum class DispatchLevel : uint8_t { kScalar = 0, kSSE42 = 1, kAVX2 = 2 };

/// Human-readable name ("scalar", "sse4.2", "avx2").
const char* DispatchLevelName(DispatchLevel level);

/// Materializing kernels may store one full vector past the last written
/// element; output buffers must have room for `result size + kStorePad`
/// elements. core/set_ops.cc sizes its vectors accordingly.
inline constexpr size_t kStorePad = 8;

/// The kernel function-pointer table. All list inputs are sorted and
/// duplicate-free; `out` buffers must not alias the inputs and must carry
/// `kStorePad` elements of slack. Every kernel tolerates empty operands.
struct KernelTable {
  /// out = a ∩ b; returns |out|.
  size_t (*intersect)(const VertexId* a, size_t na, const VertexId* b,
                      size_t nb, VertexId* out);
  /// Returns |a ∩ b|.
  size_t (*intersect_size)(const VertexId* a, size_t na, const VertexId* b,
                           size_t nb);
  /// Returns min(|a ∩ b|, cap), allowed to stop counting at cap.
  size_t (*intersect_size_capped)(const VertexId* a, size_t na,
                                  const VertexId* b, size_t nb, size_t cap);
  /// True iff a ⊆ b.
  bool (*is_subset)(const VertexId* a, size_t na, const VertexId* b,
                    size_t nb);
  /// out = a \ b; returns |out|.
  size_t (*difference)(const VertexId* a, size_t na, const VertexId* b,
                       size_t nb, VertexId* out);
  /// Returns |{x in xs : bit x set in words}| (word-packed membership
  /// mask probe; bit x of the mask is bit x%64 of words[x/64]).
  size_t (*mask_count)(const VertexId* xs, size_t n, const uint64_t* words);
  /// out = {x in xs : bit x set in words}, order preserved; returns |out|.
  size_t (*mask_filter)(const VertexId* xs, size_t n, const uint64_t* words,
                        VertexId* out);
  /// out[i] = a[i] & b[i] for i < n. `out` may alias `a` or `b`.
  void (*and_words)(const uint64_t* a, const uint64_t* b, uint64_t* out,
                    size_t n);
  /// Returns popcount(a & b) over n words.
  size_t (*and_count)(const uint64_t* a, const uint64_t* b, size_t n);
  /// Batched membership probe over `width` interleaved masks (bit x of
  /// mask slot w is bit x%64 of words[(x/64)*width + w]). Writes
  /// counts[w] = |{x in xs : bit x set in mask w}| for every w < width.
  void (*classify_batch)(const VertexId* xs, size_t n, const uint64_t* words,
                         size_t width, uint32_t* counts);
  /// Batched AND-popcount of a plain bitmap `a` against `width`
  /// interleaved bitmaps (word j of slot w is b[j*width + w]). Writes
  /// counts[w] = popcount(a & slot w) for every w < width.
  void (*and_count_batch)(const uint64_t* a, const uint64_t* b, size_t nwords,
                          size_t width, uint32_t* counts);
};

/// The active kernel table. Resolved once (cpuid + PMBE_FORCE_SCALAR) on
/// first use; subsequent calls are two loads.
const KernelTable& Kernels();

/// Level of the active table.
DispatchLevel ActiveLevel();

/// Highest level the build + CPU support, ignoring the scalar pins.
DispatchLevel MaxSupportedLevel();

/// Re-points the dispatch at `want`, clamped to MaxSupportedLevel();
/// returns the level actually installed. Overrides the environment pin
/// (explicit API beats ambient configuration). NOT thread-safe: call only
/// from single-threaded benchmark/test setup code.
DispatchLevel ForceLevel(DispatchLevel want);

// --- Per-kernel call counters ------------------------------------------
// Process-wide accounting of dispatched kernel calls, cheap enough for the
// hot path: each thread owns a block of relaxed single-writer atomics
// (plain adds on x86), and SnapshotKernelCalls() sums live blocks plus the
// folded totals of exited threads. The API facade diffs two snapshots
// around a run to fill EnumStats::simd_*_calls.

/// Kernel families the counters distinguish.
enum class KernelOp : uint8_t {
  kIntersect = 0,   // intersect / intersect_size / intersect_size_capped
  kDifference = 1,  // difference / is_subset
  kMask = 2,        // mask_count / mask_filter
  kWord = 3,        // and_words / and_count
  kBatch = 4,       // classify_batch / and_count_batch
};
inline constexpr size_t kNumKernelOps = 5;

/// Totals per kernel family at one point in time.
struct KernelCallCounters {
  uint64_t intersect = 0;
  uint64_t difference = 0;
  uint64_t mask = 0;
  uint64_t word = 0;
  uint64_t batch = 0;
};

namespace internal {

void RegisterTlsCounters(std::atomic<uint64_t>* block);
void RetireTlsCounters(std::atomic<uint64_t>* block);

/// One per thread; registers with the process registry on first use and
/// folds its totals into the retired accumulator on thread exit.
struct TlsCounterBlock {
  std::atomic<uint64_t> calls[kNumKernelOps] = {};
  TlsCounterBlock() { RegisterTlsCounters(calls); }
  ~TlsCounterBlock() { RetireTlsCounters(calls); }
};

inline thread_local TlsCounterBlock g_tls_counters;

}  // namespace internal

/// Counts one dispatched call of family `op` on the calling thread.
/// Single-writer relaxed atomics: compiles to a plain increment.
inline void CountKernelCall(KernelOp op) {
  std::atomic<uint64_t>& c =
      internal::g_tls_counters.calls[static_cast<size_t>(op)];
  c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

/// Sums the counters of all live threads plus exited ones. Monotone
/// between calls; diff two snapshots to attribute calls to a run.
KernelCallCounters SnapshotKernelCalls();

}  // namespace mbe::simd

#endif  // PMBE_UTIL_SIMD_H_
