#ifndef PMBE_UTIL_STATUS_H_
#define PMBE_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/common.h"

/// \file
/// Minimal Status / StatusOr error-propagation types, in the style of
/// absl::Status, for fallible operations (file I/O, parsing). Algorithmic
/// code never fails recoverably and does not use these.

namespace mbe::util {

/// Coarse error category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kCorruptData,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for `code` ("OK", "IO_ERROR", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: either OK or a code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and explanatory `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status CorruptData(std::string m) {
    return Status(StatusCode::kCorruptData, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Mirrors absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (OK).
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Constructs from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    PMBE_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value accessors; aborting if not OK.
  const T& value() const& {
    PMBE_CHECK_MSG(ok(), "%s", status_.ToString().c_str());
    return value_;
  }
  T& value() & {
    PMBE_CHECK_MSG(ok(), "%s", status_.ToString().c_str());
    return value_;
  }
  T&& value() && {
    PMBE_CHECK_MSG(ok(), "%s", status_.ToString().c_str());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace mbe::util

/// Propagates a non-OK status to the caller.
#define PMBE_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::mbe::util::Status pmbe_status_ = (expr);      \
    if (!pmbe_status_.ok()) return pmbe_status_;    \
  } while (0)

#endif  // PMBE_UTIL_STATUS_H_
