#include "util/simd.h"

#include <cstdlib>
#include <mutex>
#include <vector>

#include "util/simd_scalar.h"

namespace mbe::simd {

namespace internal {
// Defined by the per-ISA translation units when CMake compiles them in
// (PMBE_HAVE_SSE42_KERNELS / PMBE_HAVE_AVX2_KERNELS).
const KernelTable& Sse42KernelTable();
const KernelTable& Avx2KernelTable();
}  // namespace internal

namespace {

const KernelTable kScalarTable = {
    internal::ScalarIntersect,     internal::ScalarIntersectSize,
    internal::ScalarIntersectSizeCapped, internal::ScalarIsSubset,
    internal::ScalarDifference,    internal::ScalarMaskCount,
    internal::ScalarMaskFilter,    internal::ScalarAndWords,
    internal::ScalarAndCount,      internal::ScalarClassifyBatch,
    internal::ScalarAndCountBatch,
};

const KernelTable& TableFor(DispatchLevel level) {
  switch (level) {
#if defined(PMBE_HAVE_AVX2_KERNELS)
    case DispatchLevel::kAVX2:
      return internal::Avx2KernelTable();
#endif
#if defined(PMBE_HAVE_SSE42_KERNELS)
    case DispatchLevel::kSSE42:
      return internal::Sse42KernelTable();
#endif
    default:
      return kScalarTable;
  }
}

DispatchLevel DetectMaxSupportedLevel() {
#if defined(__x86_64__) || defined(__i386__)
#if defined(PMBE_HAVE_AVX2_KERNELS)
  if (__builtin_cpu_supports("avx2")) return DispatchLevel::kAVX2;
#endif
#if defined(PMBE_HAVE_SSE42_KERNELS)
  if (__builtin_cpu_supports("sse4.2")) return DispatchLevel::kSSE42;
#endif
#endif
  return DispatchLevel::kScalar;
}

bool ScalarForcedByEnv() {
  const char* e = std::getenv("PMBE_FORCE_SCALAR");
  return e != nullptr && *e != '\0' && !(e[0] == '0' && e[1] == '\0');
}

struct Dispatch {
  const KernelTable* table;
  DispatchLevel level;
};

Dispatch ResolveDispatch() {
  DispatchLevel level = DetectMaxSupportedLevel();
#if defined(PMBE_FORCE_SCALAR_BUILD)
  level = DispatchLevel::kScalar;
#else
  if (ScalarForcedByEnv()) level = DispatchLevel::kScalar;
#endif
  return {&TableFor(level), level};
}

Dispatch& ActiveDispatch() {
  static Dispatch d = ResolveDispatch();
  return d;
}

}  // namespace

const char* DispatchLevelName(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return "scalar";
    case DispatchLevel::kSSE42:
      return "sse4.2";
    case DispatchLevel::kAVX2:
      return "avx2";
  }
  return "unknown";
}

const KernelTable& Kernels() { return *ActiveDispatch().table; }

DispatchLevel ActiveLevel() { return ActiveDispatch().level; }

DispatchLevel MaxSupportedLevel() {
  static const DispatchLevel level = DetectMaxSupportedLevel();
  return level;
}

DispatchLevel ForceLevel(DispatchLevel want) {
  DispatchLevel level = want;
  if (static_cast<uint8_t>(level) > static_cast<uint8_t>(MaxSupportedLevel())) {
    level = MaxSupportedLevel();
  }
  Dispatch& d = ActiveDispatch();
  d.table = &TableFor(level);
  d.level = level;
  return level;
}

// --- Counter registry ----------------------------------------------------

namespace {

struct CounterRegistry {
  std::mutex mu;
  std::vector<std::atomic<uint64_t>*> live;
  uint64_t retired[kNumKernelOps] = {};
};

CounterRegistry& Registry() {
  static CounterRegistry* r = new CounterRegistry();  // never destroyed:
  // thread_local blocks may retire after static destruction would run.
  return *r;
}

}  // namespace

namespace internal {

void RegisterTlsCounters(std::atomic<uint64_t>* block) {
  CounterRegistry& r = Registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.live.push_back(block);
}

void RetireTlsCounters(std::atomic<uint64_t>* block) {
  CounterRegistry& r = Registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (size_t k = 0; k < kNumKernelOps; ++k) {
    r.retired[k] += block[k].load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < r.live.size(); ++i) {
    if (r.live[i] == block) {
      r.live[i] = r.live.back();
      r.live.pop_back();
      break;
    }
  }
}

}  // namespace internal

KernelCallCounters SnapshotKernelCalls() {
  CounterRegistry& r = Registry();
  uint64_t totals[kNumKernelOps] = {};
  {
    std::lock_guard<std::mutex> lock(r.mu);
    for (size_t k = 0; k < kNumKernelOps; ++k) totals[k] = r.retired[k];
    for (std::atomic<uint64_t>* block : r.live) {
      for (size_t k = 0; k < kNumKernelOps; ++k) {
        totals[k] += block[k].load(std::memory_order_relaxed);
      }
    }
  }
  KernelCallCounters out;
  out.intersect = totals[static_cast<size_t>(KernelOp::kIntersect)];
  out.difference = totals[static_cast<size_t>(KernelOp::kDifference)];
  out.mask = totals[static_cast<size_t>(KernelOp::kMask)];
  out.word = totals[static_cast<size_t>(KernelOp::kWord)];
  out.batch = totals[static_cast<size_t>(KernelOp::kBatch)];
  return out;
}

}  // namespace mbe::simd
