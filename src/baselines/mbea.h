#ifndef PMBE_BASELINES_MBEA_H_
#define PMBE_BASELINES_MBEA_H_

#include <vector>

#include "core/enum_context.h"
#include "core/enum_stats.h"
#include "core/run_control.h"
#include "core/set_ops.h"
#include "core/sink.h"
#include "core/subtree.h"
#include "graph/bipartite_graph.h"

/// \file
/// MBEA / iMBEA baselines (Zhang et al., BMC Bioinformatics 2014): the
/// (L, R, C, Q) backtracking enumerator whose maximality check walks the Q
/// set of previously traversed candidates instead of recomputing C(L').
///
/// `improved = true` enables the iMBEA refinements: candidates are
/// traversed in ascending local-neighborhood size, dead Q entries are
/// filtered, and intersection sizes use early exit.
///
/// Besides the faithful global-root EnumerateAll, the class offers the
/// per-vertex EnumerateSubtree used by the parallel driver (the ParMBE
/// work decomposition of Das & Tirthapura, HiPC 2019) and by the
/// ooMBEA-lite configuration.

namespace mbe {

/// Switches for the MBEA family.
struct MbeaOptions {
  bool improved = true;  ///< iMBEA refinements on/off
};

/// The MBEA / iMBEA enumerator.
class MbeaEnumerator {
 public:
  MbeaEnumerator(const BipartiteGraph& graph, const MbeaOptions& options);

  /// Faithful global-root enumeration.
  void EnumerateAll(ResultSink* sink);

  /// Enumerates bicliques whose minimum right vertex is `v` (subtree
  /// decomposition; used for parallelism and ooMBEA-lite).
  void EnumerateSubtree(VertexId v, ResultSink* sink);

  /// Subtree splitting support for the work-stealing scheduler; same
  /// contract as MbetEnumerator::SplitHint / EnumerateShard. Shard `shard`
  /// traverses only top-level candidate positions `pos % num_shards ==
  /// shard` (positions in the deterministic iMBEA traversal order) and
  /// appends the others to Q unexpanded, which reproduces the sequential
  /// node state; the root biclique goes to shard 0.
  uint32_t SplitHint(VertexId v, uint32_t max_shards, uint64_t min_work);
  void EnumerateShard(VertexId v, uint32_t shard, uint32_t num_shards,
                      ResultSink* sink);

  const EnumStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EnumStats(); }

  /// Attaches run control; polled once per node expansion and candidate
  /// traversal. Pass nullptr to detach. Call before enumerating.
  void SetRunController(RunController* controller) {
    poller_.Attach(controller);
  }

 private:
  /// One node expansion. All operands live in EnumContext buffers owned by
  /// the caller's frame: `cands`/`q` are consumed read-only except that
  /// traversed candidates are appended to `q` (the caller rebuilds its
  /// buffer each iteration anyway).
  /// `shard`/`num_shards` implement top-level splitting: non-default
  /// values only ever come from EnumerateShard's root call; recursive
  /// calls always pass the defaults (shards own whole sub-branches).
  void Expand(const std::vector<VertexId>& l, const std::vector<VertexId>& r,
              const std::vector<VertexId>& cands, std::vector<VertexId>& q,
              ResultSink* sink, uint32_t shard = 0, uint32_t num_shards = 1);

  /// Combined cooperative stop poll: run controller, then the sink chain.
  bool Stopped(ResultSink* sink) {
    return poller_.ShouldStop(stats_) || sink->ShouldStop();
  }

  const BipartiteGraph& graph_;
  MbeaOptions options_;
  EnumStats stats_;
  RunPoller poller_;
  MembershipMask l_mask_;
  SubtreeBuilder builder_;
  SubtreeRoot root_;
  std::vector<VertexId> root_absorbed_;
  EnumContext ctx_;  ///< per-node scratch pool (checkpoint/rewind per depth)
};

}  // namespace mbe

#endif  // PMBE_BASELINES_MBEA_H_
