#ifndef PMBE_BASELINES_MINE_LMBC_H_
#define PMBE_BASELINES_MINE_LMBC_H_

#include <vector>

#include "core/enum_context.h"
#include "core/enum_stats.h"
#include "core/run_control.h"
#include "core/set_ops.h"
#include "core/sink.h"
#include "graph/bipartite_graph.h"

/// \file
/// MineLMBC-style baseline (Liu, Sim, Li, DaWaK 2006): the textbook
/// recursive set-enumeration MBE (Algorithm 1 of the background sections of
/// the MBE literature). Maximality is checked by recomputing C(L') from
/// scratch at every node — the cost that later algorithms (MBEA's Q set,
/// MBET's prefix tree) avoid. Included as the weakest comparison point.

namespace mbe {

/// The textbook recursive enumerator.
class MineLmbcEnumerator {
 public:
  explicit MineLmbcEnumerator(const BipartiteGraph& graph);

  /// Enumerates all maximal bicliques from the global root (U, ∅, V).
  void EnumerateAll(ResultSink* sink);

  const EnumStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EnumStats(); }

  /// Attaches run control; polled once per node expansion and candidate
  /// traversal. Pass nullptr to detach. Call before enumerating.
  void SetRunController(RunController* controller) {
    poller_.Attach(controller);
  }

 private:
  void Expand(const std::vector<VertexId>& l, const std::vector<VertexId>& r,
              const std::vector<VertexId>& cands, ResultSink* sink);

  /// Combined cooperative stop poll: run controller, then the sink chain.
  bool Stopped(ResultSink* sink) {
    return poller_.ShouldStop(stats_) || sink->ShouldStop();
  }

  /// C(left) on the right side, computed by intersecting left adjacency
  /// lists (the expensive from-scratch maximality check). `tmp` is caller
  /// scratch for the running intersection.
  void CommonRight(const std::vector<VertexId>& left,
                   std::vector<VertexId>* out,
                   std::vector<VertexId>* tmp) const;

  const BipartiteGraph& graph_;
  EnumStats stats_;
  RunPoller poller_;
  MembershipMask l_mask_;
  EnumContext ctx_;  ///< per-node scratch pool (checkpoint/rewind per depth)
};

}  // namespace mbe

#endif  // PMBE_BASELINES_MINE_LMBC_H_
