#include "baselines/mine_lmbc.h"

#include <algorithm>
#include <numeric>

namespace mbe {

MineLmbcEnumerator::MineLmbcEnumerator(const BipartiteGraph& graph)
    : graph_(graph), l_mask_(graph.num_left()) {}

void MineLmbcEnumerator::CommonRight(const std::vector<VertexId>& left,
                                     std::vector<VertexId>* out,
                                     std::vector<VertexId>* tmp) const {
  out->clear();
  if (left.empty()) return;
  auto first = graph_.LeftNeighbors(left[0]);
  out->assign(first.begin(), first.end());
  for (size_t i = 1; i < left.size() && !out->empty(); ++i) {
    IntersectInto(*out, graph_.LeftNeighbors(left[i]), tmp);
    out->swap(*tmp);
  }
}

void MineLmbcEnumerator::EnumerateAll(ResultSink* sink) {
  if (graph_.num_left() == 0 || graph_.num_right() == 0) return;
  EnumContext::Frame frame(&ctx_);
  std::vector<VertexId>& l = *frame.AcquireIds();
  l.resize(graph_.num_left());
  std::iota(l.begin(), l.end(), 0);
  std::vector<VertexId>& cands = *frame.AcquireIds();
  cands.resize(graph_.num_right());
  std::iota(cands.begin(), cands.end(), 0);
  std::vector<VertexId>& r = *frame.AcquireIds();
  Expand(l, r, cands, sink);
  if (ctx_.peak_bytes() > stats_.arena_peak_bytes) {
    stats_.arena_peak_bytes = ctx_.peak_bytes();
  }
}

void MineLmbcEnumerator::Expand(const std::vector<VertexId>& l,
                                const std::vector<VertexId>& r,
                                const std::vector<VertexId>& cands,
                                ResultSink* sink) {
  ++stats_.nodes_expanded;
  EnumContext::Frame frame(&ctx_);
  std::vector<VertexId>& lp = *frame.AcquireIds();
  std::vector<VertexId>& rp = *frame.AcquireIds();
  std::vector<VertexId>& cp = *frame.AcquireIds();
  std::vector<VertexId>& closure = *frame.AcquireIds();
  std::vector<VertexId>& tmp = *frame.AcquireIds();
  for (size_t i = 0; i < cands.size(); ++i) {
    if (Stopped(sink)) return;
    const VertexId vc = cands[i];

    // L' = L ∩ N(vc).
    l_mask_.Set(l);
    IntersectWithMask(graph_.RightNeighbors(vc), l_mask_, &lp);
    l_mask_.Clear(l);
    if (lp.empty()) continue;

    // R' = R ∪ {vc} ∪ { untraversed w : L' ⊆ N(w) };
    // C' = { untraversed w : 0 < |N(w) ∩ L'| < |L'| }.
    rp = r;
    rp.push_back(vc);
    cp.clear();
    l_mask_.Set(lp);
    for (size_t j = i + 1; j < cands.size(); ++j) {
      const VertexId w = cands[j];
      const size_t k = IntersectSizeWithMask(graph_.RightNeighbors(w), l_mask_);
      if (k == lp.size()) {
        rp.push_back(w);
        ++stats_.candidates_absorbed;
      } else if (k > 0) {
        cp.push_back(w);
      } else {
        ++stats_.candidates_dropped;
      }
    }
    l_mask_.Clear(lp);
    std::sort(rp.begin(), rp.end());

    // Maximality: R' must equal C(L'), recomputed from scratch.
    CommonRight(lp, &closure, &tmp);
    if (closure == rp) {
      sink->Emit(lp, rp);
      ++stats_.maximal;
      if (!cp.empty()) Expand(lp, rp, cp, sink);
    } else {
      ++stats_.non_maximal;
    }
  }
}

}  // namespace mbe
