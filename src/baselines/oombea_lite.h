#ifndef PMBE_BASELINES_OOMBEA_LITE_H_
#define PMBE_BASELINES_OOMBEA_LITE_H_

#include "baselines/mbea.h"
#include "core/enum_stats.h"
#include "core/sink.h"
#include "graph/bipartite_graph.h"

/// \file
/// ooMBEA-lite: a reduced stand-in for ooMBEA (Chen et al., VLDB 2022).
/// The full algorithm combines a *unilateral coreness order* with batched
/// pruning over 2-hop neighborhoods; our -lite variant keeps the two
/// ingredients that dominate its reported advantage — the unilateral
/// vertex order (graph/ordering.h) and 2-hop-local subtree enumeration —
/// on top of the iMBEA node mechanics. The API layer applies the
/// unilateral order before constructing this enumerator; this class adds
/// the subtree-local traversal.
///
/// **[reconstruction]** labelled "-lite" because the original's batch
/// pivot rules are not reproduced; see DESIGN.md §2/S8.

namespace mbe {

/// Subtree-local iMBEA under the unilateral order.
class OombeaLiteEnumerator {
 public:
  explicit OombeaLiteEnumerator(const BipartiteGraph& graph)
      : graph_(graph), inner_(graph, MbeaOptions{.improved = true}) {}

  /// Enumerates all maximal bicliques via per-vertex subtrees.
  void EnumerateAll(ResultSink* sink) {
    for (VertexId v = 0; v < graph_.num_right(); ++v) {
      if (sink->ShouldStop()) return;
      inner_.EnumerateSubtree(v, sink);
    }
  }

  /// Single subtree (parallel driver hook).
  void EnumerateSubtree(VertexId v, ResultSink* sink) {
    inner_.EnumerateSubtree(v, sink);
  }

  const EnumStats& stats() const { return inner_.stats(); }
  void ResetStats() { inner_.ResetStats(); }

  /// Attaches run control to the inner iMBEA engine.
  void SetRunController(RunController* controller) {
    inner_.SetRunController(controller);
  }

 private:
  const BipartiteGraph& graph_;
  MbeaEnumerator inner_;
};

}  // namespace mbe

#endif  // PMBE_BASELINES_OOMBEA_LITE_H_
