#include "baselines/oombea_lite.h"

// Header-only implementation; this translation unit exists so the library
// target has a compiled object asserting the header is self-contained.
