#include "baselines/mbea.h"

#include <algorithm>
#include <numeric>

namespace mbe {

MbeaEnumerator::MbeaEnumerator(const BipartiteGraph& graph,
                               const MbeaOptions& options)
    : graph_(graph),
      options_(options),
      l_mask_(graph.num_left()),
      builder_(graph) {}

void MbeaEnumerator::EnumerateAll(ResultSink* sink) {
  if (graph_.num_left() == 0 || graph_.num_right() == 0) return;
  std::vector<VertexId> l(graph_.num_left());
  std::iota(l.begin(), l.end(), 0);
  std::vector<VertexId> cands(graph_.num_right());
  std::iota(cands.begin(), cands.end(), 0);
  Expand(l, {}, std::move(cands), {}, sink);
}

void MbeaEnumerator::EnumerateSubtree(VertexId v, ResultSink* sink) {
  if (Stopped(sink)) return;
  bool pruned = false;
  if (!builder_.Build(v, &root_, &root_absorbed_, &pruned)) {
    if (pruned) ++stats_.subtrees_pruned;
    return;
  }
  std::vector<VertexId> r;
  r.push_back(v);
  r.insert(r.end(), root_absorbed_.begin(), root_absorbed_.end());
  std::sort(r.begin(), r.end());

  std::vector<VertexId> cands, q;
  for (const RootEntry& entry : root_.entries) {
    (entry.forbidden ? q : cands).push_back(entry.w);
  }
  sink->Emit(root_.l0, r);
  ++stats_.maximal;
  if (!cands.empty()) {
    Expand(root_.l0, r, std::move(cands), std::move(q), sink);
  }
}

void MbeaEnumerator::Expand(const std::vector<VertexId>& l,
                            const std::vector<VertexId>& r,
                            std::vector<VertexId> cands,
                            std::vector<VertexId> q, ResultSink* sink) {
  ++stats_.nodes_expanded;
  if (options_.improved) {
    // iMBEA: traverse candidates in ascending |N(w) ∩ L|.
    l_mask_.Set(l);
    std::vector<std::pair<uint32_t, VertexId>> keyed;
    keyed.reserve(cands.size());
    for (VertexId w : cands) {
      keyed.emplace_back(static_cast<uint32_t>(IntersectSizeWithMask(
                             graph_.RightNeighbors(w), l_mask_)),
                         w);
    }
    l_mask_.Clear(l);
    std::sort(keyed.begin(), keyed.end());
    for (size_t i = 0; i < keyed.size(); ++i) cands[i] = keyed[i].second;
  }

  std::vector<VertexId> lp, rp, cp, qp;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (Stopped(sink)) return;
    const VertexId vc = cands[i];

    l_mask_.Set(l);
    IntersectWithMask(graph_.RightNeighbors(vc), l_mask_, &lp);
    l_mask_.Clear(l);
    if (lp.empty()) continue;

    l_mask_.Set(lp);
    // Maximality via the Q set: traversed vertices of this node are
    // cands[0..i-1], accumulated into q at the end of each iteration.
    bool maximal = true;
    qp.clear();
    for (VertexId qv : q) {
      const size_t k =
          options_.improved
              ? IntersectSizeCapped(graph_.RightNeighbors(qv), lp, lp.size())
              : IntersectSizeWithMask(graph_.RightNeighbors(qv), l_mask_);
      if (k == lp.size()) {
        maximal = false;
        break;
      }
      if (k > 0 || !options_.improved) qp.push_back(qv);
    }

    if (maximal) {
      rp = r;
      rp.push_back(vc);
      cp.clear();
      for (size_t j = i + 1; j < cands.size(); ++j) {
        const VertexId w = cands[j];
        const size_t k =
            IntersectSizeWithMask(graph_.RightNeighbors(w), l_mask_);
        if (k == lp.size()) {
          rp.push_back(w);
          ++stats_.candidates_absorbed;
        } else if (k > 0) {
          cp.push_back(w);
        } else {
          ++stats_.candidates_dropped;
        }
      }
      std::sort(rp.begin(), rp.end());
      sink->Emit(lp, rp);
      ++stats_.maximal;
      l_mask_.Clear(lp);
      if (!cp.empty()) Expand(lp, rp, std::move(cp), qp, sink);
    } else {
      ++stats_.non_maximal;
      l_mask_.Clear(lp);
    }
    q.push_back(vc);
  }
}

}  // namespace mbe
