#include "baselines/mbea.h"

#include <algorithm>
#include <numeric>

namespace mbe {

MbeaEnumerator::MbeaEnumerator(const BipartiteGraph& graph,
                               const MbeaOptions& options)
    : graph_(graph),
      options_(options),
      l_mask_(graph.num_left()),
      builder_(graph) {}

void MbeaEnumerator::EnumerateAll(ResultSink* sink) {
  if (graph_.num_left() == 0 || graph_.num_right() == 0) return;
  EnumContext::Frame frame(&ctx_);
  std::vector<VertexId>& l = *frame.AcquireIds();
  l.resize(graph_.num_left());
  std::iota(l.begin(), l.end(), 0);
  std::vector<VertexId>& cands = *frame.AcquireIds();
  cands.resize(graph_.num_right());
  std::iota(cands.begin(), cands.end(), 0);
  std::vector<VertexId>& r = *frame.AcquireIds();
  std::vector<VertexId>& q = *frame.AcquireIds();
  Expand(l, r, cands, q, sink);
  if (ctx_.peak_bytes() > stats_.arena_peak_bytes) {
    stats_.arena_peak_bytes = ctx_.peak_bytes();
  }
}

void MbeaEnumerator::EnumerateSubtree(VertexId v, ResultSink* sink) {
  if (Stopped(sink)) return;
  bool pruned = false;
  if (!builder_.Build(v, &root_, &root_absorbed_, &pruned)) {
    if (pruned) ++stats_.subtrees_pruned;
    return;
  }
  EnumContext::Frame frame(&ctx_);
  std::vector<VertexId>& r = *frame.AcquireIds();
  r.push_back(v);
  r.insert(r.end(), root_absorbed_.begin(), root_absorbed_.end());
  std::sort(r.begin(), r.end());

  std::vector<VertexId>& cands = *frame.AcquireIds();
  std::vector<VertexId>& q = *frame.AcquireIds();
  for (const RootEntry& entry : root_.entries) {
    (entry.forbidden ? q : cands).push_back(entry.w);
  }
  sink->Emit(root_.l0, r);
  ++stats_.maximal;
  if (!cands.empty()) {
    Expand(root_.l0, r, cands, q, sink);
  }
  if (ctx_.peak_bytes() > stats_.arena_peak_bytes) {
    stats_.arena_peak_bytes = ctx_.peak_bytes();
  }
}

void MbeaEnumerator::Expand(const std::vector<VertexId>& l,
                            const std::vector<VertexId>& r,
                            const std::vector<VertexId>& cands,
                            std::vector<VertexId>& q, ResultSink* sink) {
  ++stats_.nodes_expanded;
  EnumContext::Frame frame(&ctx_);

  const VertexId* order = cands.data();
  std::vector<VertexId>* ordered = nullptr;
  if (options_.improved) {
    // iMBEA: traverse candidates in ascending |N(w) ∩ L|. Key and vertex
    // pack into one 64-bit word, so the sort runs over pooled flat words.
    l_mask_.Set(l);
    std::vector<uint64_t>& keyed = *frame.AcquireWords();
    keyed.reserve(cands.size());
    for (VertexId w : cands) {
      const uint64_t key =
          IntersectSizeWithMask(graph_.RightNeighbors(w), l_mask_);
      keyed.push_back(key << 32 | w);
    }
    l_mask_.Clear(l);
    std::sort(keyed.begin(), keyed.end());
    ordered = frame.AcquireIds();
    ordered->reserve(cands.size());
    for (uint64_t kw : keyed) {
      ordered->push_back(static_cast<VertexId>(kw & 0xffffffffu));
    }
    order = ordered->data();
  }

  std::vector<VertexId>& lp = *frame.AcquireIds();
  std::vector<VertexId>& rp = *frame.AcquireIds();
  std::vector<VertexId>& cp = *frame.AcquireIds();
  std::vector<VertexId>& qp = *frame.AcquireIds();
  for (size_t i = 0; i < cands.size(); ++i) {
    if (Stopped(sink)) return;
    const VertexId vc = order[i];

    l_mask_.Set(l);
    IntersectWithMask(graph_.RightNeighbors(vc), l_mask_, &lp);
    l_mask_.Clear(l);
    if (lp.empty()) continue;

    l_mask_.Set(lp);
    // Maximality via the Q set: traversed vertices of this node are
    // order[0..i-1], accumulated into q at the end of each iteration.
    bool maximal = true;
    qp.clear();
    for (VertexId qv : q) {
      const size_t k =
          options_.improved
              ? IntersectSizeCapped(graph_.RightNeighbors(qv), lp, lp.size())
              : IntersectSizeWithMask(graph_.RightNeighbors(qv), l_mask_);
      if (k == lp.size()) {
        maximal = false;
        break;
      }
      if (k > 0 || !options_.improved) qp.push_back(qv);
    }

    if (maximal) {
      rp = r;
      rp.push_back(vc);
      cp.clear();
      for (size_t j = i + 1; j < cands.size(); ++j) {
        const VertexId w = order[j];
        const size_t k =
            IntersectSizeWithMask(graph_.RightNeighbors(w), l_mask_);
        if (k == lp.size()) {
          rp.push_back(w);
          ++stats_.candidates_absorbed;
        } else if (k > 0) {
          cp.push_back(w);
        } else {
          ++stats_.candidates_dropped;
        }
      }
      std::sort(rp.begin(), rp.end());
      sink->Emit(lp, rp);
      ++stats_.maximal;
      l_mask_.Clear(lp);
      if (!cp.empty()) Expand(lp, rp, cp, qp, sink);
    } else {
      ++stats_.non_maximal;
      l_mask_.Clear(lp);
    }
    q.push_back(vc);
  }
}

}  // namespace mbe
