#include "baselines/mbea.h"

#include <algorithm>
#include <numeric>

namespace mbe {

MbeaEnumerator::MbeaEnumerator(const BipartiteGraph& graph,
                               const MbeaOptions& options)
    : graph_(graph),
      options_(options),
      l_mask_(graph.num_left()),
      builder_(graph) {}

void MbeaEnumerator::EnumerateAll(ResultSink* sink) {
  if (graph_.num_left() == 0 || graph_.num_right() == 0) return;
  EnumContext::Frame frame(&ctx_);
  std::vector<VertexId>& l = *frame.AcquireIds();
  l.resize(graph_.num_left());
  std::iota(l.begin(), l.end(), 0);
  std::vector<VertexId>& cands = *frame.AcquireIds();
  cands.resize(graph_.num_right());
  std::iota(cands.begin(), cands.end(), 0);
  std::vector<VertexId>& r = *frame.AcquireIds();
  std::vector<VertexId>& q = *frame.AcquireIds();
  Expand(l, r, cands, q, sink);
  if (ctx_.peak_bytes() > stats_.arena_peak_bytes) {
    stats_.arena_peak_bytes = ctx_.peak_bytes();
  }
}

void MbeaEnumerator::EnumerateSubtree(VertexId v, ResultSink* sink) {
  EnumerateShard(v, 0, 1, sink);
}

uint32_t MbeaEnumerator::SplitHint(VertexId v, uint32_t max_shards,
                                   uint64_t min_work) {
  if (max_shards <= 1) return 1;
  bool pruned = false;
  if (!builder_.Build(v, &root_, &root_absorbed_, &pruned)) return 1;
  const uint64_t work = EstimateSubtreeWork(root_);
  if (work < min_work) return 1;
  uint32_t candidates = 0;
  for (const RootEntry& entry : root_.entries) {
    candidates += entry.forbidden ? 0 : 1;
  }
  // Shallow-wide subtrees are dominated by the root scan every shard
  // re-pays; only split when the min side is deep enough to amortize it
  // (see MbetEnumerator::SplitHint).
  constexpr uint64_t kMinSplitSide = 16;
  if (std::min<uint64_t>(root_.l0.size(), candidates) < kMinSplitSide) {
    return 1;
  }
  // Each shard re-pays the root build; size shards to min_work so splitting
  // never multiplies the fixed per-shard cost of a small subtree.
  const uint64_t by_work = work / std::max<uint64_t>(1, min_work);
  const uint64_t k = std::min<uint64_t>(
      std::min<uint64_t>(max_shards, std::max<uint32_t>(1, candidates)),
      by_work);
  return static_cast<uint32_t>(std::max<uint64_t>(1, k));
}

void MbeaEnumerator::EnumerateShard(VertexId v, uint32_t shard,
                                    uint32_t num_shards, ResultSink* sink) {
  PMBE_DCHECK(num_shards >= 1 && shard < num_shards);
  if (Stopped(sink)) return;
  bool pruned = false;
  if (!builder_.Build(v, &root_, &root_absorbed_, &pruned)) {
    if (pruned) ++stats_.subtrees_pruned;
    return;
  }
  EnumContext::Frame frame(&ctx_);
  std::vector<VertexId>& r = *frame.AcquireIds();
  r.push_back(v);
  r.insert(r.end(), root_absorbed_.begin(), root_absorbed_.end());
  std::sort(r.begin(), r.end());

  std::vector<VertexId>& cands = *frame.AcquireIds();
  std::vector<VertexId>& q = *frame.AcquireIds();
  for (const RootEntry& entry : root_.entries) {
    (entry.forbidden ? q : cands).push_back(entry.w);
  }
  // The subtree root biclique belongs to shard 0; every shard rebuilds the
  // root state it expands from.
  if (shard == 0) {
    sink->Emit(root_.l0, r);
    ++stats_.maximal;
  }
  if (!cands.empty()) {
    Expand(root_.l0, r, cands, q, sink, shard, num_shards);
  }
  if (ctx_.peak_bytes() > stats_.arena_peak_bytes) {
    stats_.arena_peak_bytes = ctx_.peak_bytes();
  }
}

void MbeaEnumerator::Expand(const std::vector<VertexId>& l,
                            const std::vector<VertexId>& r,
                            const std::vector<VertexId>& cands,
                            std::vector<VertexId>& q, ResultSink* sink,
                            uint32_t shard, uint32_t num_shards) {
  ++stats_.nodes_expanded;
  EnumContext::Frame frame(&ctx_);

  const VertexId* order = cands.data();
  std::vector<VertexId>* ordered = nullptr;
  if (options_.improved) {
    // iMBEA: traverse candidates in ascending |N(w) ∩ L|. Key and vertex
    // pack into one 64-bit word, so the sort runs over pooled flat words.
    l_mask_.Set(l);
    std::vector<uint64_t>& keyed = *frame.AcquireWords();
    keyed.reserve(cands.size());
    for (VertexId w : cands) {
      const uint64_t key =
          IntersectSizeWithMask(graph_.RightNeighbors(w), l_mask_);
      keyed.push_back(key << 32 | w);
    }
    l_mask_.Clear(l);
    std::sort(keyed.begin(), keyed.end());
    ordered = frame.AcquireIds();
    ordered->reserve(cands.size());
    for (uint64_t kw : keyed) {
      ordered->push_back(static_cast<VertexId>(kw & 0xffffffffu));
    }
    order = ordered->data();
  }

  std::vector<VertexId>& lp = *frame.AcquireIds();
  std::vector<VertexId>& rp = *frame.AcquireIds();
  std::vector<VertexId>& cp = *frame.AcquireIds();
  std::vector<VertexId>& qp = *frame.AcquireIds();
  for (size_t i = 0; i < cands.size(); ++i) {
    if (Stopped(sink)) return;
    const VertexId vc = order[i];
    if (num_shards > 1 && i % num_shards != shard) {
      // Another shard owns this position: skip the expansion but append
      // the candidate to Q, as the sequential loop would have by the time
      // later positions run. (Sequentially an empty-L' candidate is not
      // appended, but a Q vertex with N(q) ∩ L = ∅ has k = 0 < |L'| at
      // every descendant node and is dropped from Q' in iMBEA mode, so the
      // extra entry can never flip a maximality verdict.)
      q.push_back(vc);
      continue;
    }

    l_mask_.Set(l);
    IntersectWithMask(graph_.RightNeighbors(vc), l_mask_, &lp);
    l_mask_.Clear(l);
    if (lp.empty()) continue;

    l_mask_.Set(lp);
    // Maximality via the Q set: traversed vertices of this node are
    // order[0..i-1], accumulated into q at the end of each iteration.
    bool maximal = true;
    qp.clear();
    for (VertexId qv : q) {
      const size_t k =
          options_.improved
              ? IntersectSizeCapped(graph_.RightNeighbors(qv), lp, lp.size())
              : IntersectSizeWithMask(graph_.RightNeighbors(qv), l_mask_);
      if (k == lp.size()) {
        maximal = false;
        break;
      }
      if (k > 0 || !options_.improved) qp.push_back(qv);
    }

    if (maximal) {
      rp = r;
      rp.push_back(vc);
      cp.clear();
      for (size_t j = i + 1; j < cands.size(); ++j) {
        const VertexId w = order[j];
        const size_t k =
            IntersectSizeWithMask(graph_.RightNeighbors(w), l_mask_);
        if (k == lp.size()) {
          rp.push_back(w);
          ++stats_.candidates_absorbed;
        } else if (k > 0) {
          cp.push_back(w);
        } else {
          ++stats_.candidates_dropped;
        }
      }
      std::sort(rp.begin(), rp.end());
      sink->Emit(lp, rp);
      ++stats_.maximal;
      l_mask_.Clear(lp);
      if (!cp.empty()) Expand(lp, rp, cp, qp, sink);
    } else {
      ++stats_.non_maximal;
      l_mask_.Clear(lp);
    }
    q.push_back(vc);
  }
}

}  // namespace mbe
