#include "gen/generators.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace mbe::gen {

namespace {

// Builds a cumulative distribution over n Zipf(alpha) weights.
std::vector<double> ZipfCdf(size_t n, double alpha) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -alpha);
    cdf[i] = total;
  }
  for (double& x : cdf) x /= total;
  return cdf;
}

// Samples an index from a cumulative distribution.
size_t SampleCdf(const std::vector<double>& cdf, util::Rng& rng) {
  const double x = rng.NextDouble();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), x);
  return static_cast<size_t>(std::min<ptrdiff_t>(
      it - cdf.begin(), static_cast<ptrdiff_t>(cdf.size()) - 1));
}

}  // namespace

BipartiteGraph ErdosRenyi(size_t num_left, size_t num_right, double p,
                          uint64_t seed) {
  PMBE_CHECK_MSG(p >= 0.0 && p <= 1.0, "p=%f out of [0,1]", p);
  std::vector<Edge> edges;
  if (p <= 0.0 || num_left == 0 || num_right == 0) {
    return BipartiteGraph::FromEdges(num_left, num_right, std::move(edges));
  }
  util::Rng rng(seed);
  const uint64_t total = static_cast<uint64_t>(num_left) * num_right;
  if (p >= 1.0) {
    edges.reserve(total);
    for (VertexId u = 0; u < num_left; ++u) {
      for (VertexId v = 0; v < num_right; ++v) edges.push_back({u, v});
    }
    return BipartiteGraph::FromEdges(num_left, num_right, std::move(edges));
  }
  // Geometric skipping over the linearized edge space.
  edges.reserve(static_cast<size_t>(static_cast<double>(total) * p * 1.1) + 16);
  const double log1mp = std::log1p(-p);
  uint64_t index = 0;
  while (true) {
    // Skip ~Geometric(p) slots.
    const double r = rng.NextDouble();
    const double skip = std::floor(std::log1p(-r) / log1mp);
    if (skip >= static_cast<double>(total - index)) break;
    index += static_cast<uint64_t>(skip);
    edges.push_back({static_cast<VertexId>(index / num_right),
                     static_cast<VertexId>(index % num_right)});
    ++index;
    if (index >= total) break;
  }
  return BipartiteGraph::FromEdges(num_left, num_right, std::move(edges));
}

BipartiteGraph UniformEdges(size_t num_left, size_t num_right,
                            size_t num_edges, uint64_t seed) {
  const uint64_t total = static_cast<uint64_t>(num_left) * num_right;
  PMBE_CHECK_MSG(num_edges <= total, "requested %zu edges, graph has %llu slots",
                 num_edges, static_cast<unsigned long long>(total));
  util::Rng rng(seed);
  // Rejection sampling with a dedupe set realized by sort-unique rounds:
  // cheap at our densities (≤ a few % fill).
  std::vector<uint64_t> slots;
  slots.reserve(num_edges + num_edges / 8 + 16);
  while (true) {
    while (slots.size() < num_edges + num_edges / 8 + 16 &&
           slots.size() < total * 2 + 16) {
      slots.push_back(rng.Below(total));
    }
    std::sort(slots.begin(), slots.end());
    slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
    if (slots.size() >= num_edges) break;
  }
  // Down-sample deterministically to exactly num_edges by shuffling.
  for (size_t i = slots.size(); i > 1; --i) {
    std::swap(slots[i - 1], slots[rng.Below(i)]);
  }
  slots.resize(num_edges);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (uint64_t s : slots) {
    edges.push_back({static_cast<VertexId>(s / num_right),
                     static_cast<VertexId>(s % num_right)});
  }
  return BipartiteGraph::FromEdges(num_left, num_right, std::move(edges));
}

BipartiteGraph PowerLaw(size_t num_left, size_t num_right,
                        size_t target_edges, double alpha_left,
                        double alpha_right, uint64_t seed) {
  if (num_left == 0 || num_right == 0 || target_edges == 0) {
    return BipartiteGraph::FromEdges(num_left, num_right, {});
  }
  util::Rng rng(seed);
  const auto cdf_l = ZipfCdf(num_left, alpha_left);
  const auto cdf_r = ZipfCdf(num_right, alpha_right);
  std::vector<Edge> edges;
  edges.reserve(target_edges);
  // Endpoint ranks are scrambled through a fixed permutation so that hub
  // vertices are not all clustered at low ids (low ids otherwise correlate
  // with enumeration order).
  std::vector<VertexId> scramble_l(num_left), scramble_r(num_right);
  for (size_t i = 0; i < num_left; ++i) scramble_l[i] = static_cast<VertexId>(i);
  for (size_t i = 0; i < num_right; ++i) scramble_r[i] = static_cast<VertexId>(i);
  for (size_t i = num_left; i > 1; --i) std::swap(scramble_l[i - 1], scramble_l[rng.Below(i)]);
  for (size_t i = num_right; i > 1; --i) std::swap(scramble_r[i - 1], scramble_r[rng.Below(i)]);
  for (size_t e = 0; e < target_edges; ++e) {
    const VertexId u = scramble_l[SampleCdf(cdf_l, rng)];
    const VertexId v = scramble_r[SampleCdf(cdf_r, rng)];
    edges.push_back({u, v});
  }
  // FromEdges collapses duplicates, so the realized edge count is slightly
  // below target_edges — acceptable for a stand-in workload.
  return BipartiteGraph::FromEdges(num_left, num_right, std::move(edges));
}

BipartiteGraph PlantBicliques(const BipartiteGraph& base, size_t count,
                              size_t left_size, size_t right_size,
                              uint64_t seed,
                              std::vector<PlantedBiclique>* out_planted) {
  PMBE_CHECK(left_size <= base.num_left() && right_size <= base.num_right());
  util::Rng rng(seed);
  std::vector<Edge> edges = base.ToEdges();
  if (out_planted) out_planted->clear();
  for (size_t b = 0; b < count; ++b) {
    PlantedBiclique planted;
    // Sample distinct vertices per side via partial shuffle of a small
    // reservoir window.
    auto sample_side = [&rng](size_t n, size_t k) {
      std::vector<VertexId> picked;
      picked.reserve(k);
      // Floyd's algorithm for distinct samples.
      std::vector<VertexId> seen;
      for (size_t j = n - k; j < n; ++j) {
        const uint64_t t = rng.Below(j + 1);
        VertexId candidate = static_cast<VertexId>(t);
        if (std::find(seen.begin(), seen.end(), candidate) != seen.end()) {
          candidate = static_cast<VertexId>(j);
        }
        seen.push_back(candidate);
        picked.push_back(candidate);
      }
      std::sort(picked.begin(), picked.end());
      return picked;
    };
    planted.left = sample_side(base.num_left(), left_size);
    planted.right = sample_side(base.num_right(), right_size);
    for (VertexId u : planted.left) {
      for (VertexId v : planted.right) edges.push_back({u, v});
    }
    if (out_planted) out_planted->push_back(std::move(planted));
  }
  return BipartiteGraph::FromEdges(base.num_left(), base.num_right(),
                                   std::move(edges));
}

BipartiteGraph BlockCommunity(size_t num_left, size_t num_right,
                              size_t blocks, double p_in, double p_out,
                              uint64_t seed) {
  PMBE_CHECK(blocks > 0);
  util::Rng rng(seed);
  std::vector<Edge> edges;
  // Background noise.
  {
    BipartiteGraph bg = ErdosRenyi(num_left, num_right, p_out, seed ^ 0x5bd1e995ULL);
    edges = bg.ToEdges();
  }
  // Dense blocks: contiguous id ranges per block on each side.
  for (size_t b = 0; b < blocks; ++b) {
    const size_t l_lo = num_left * b / blocks;
    const size_t l_hi = num_left * (b + 1) / blocks;
    const size_t r_lo = num_right * b / blocks;
    const size_t r_hi = num_right * (b + 1) / blocks;
    for (size_t u = l_lo; u < l_hi; ++u) {
      for (size_t v = r_lo; v < r_hi; ++v) {
        if (rng.Chance(p_in)) {
          edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v)});
        }
      }
    }
  }
  return BipartiteGraph::FromEdges(num_left, num_right, std::move(edges));
}

BipartiteGraph HubBlock(size_t block_left, size_t block_right,
                        size_t tail_left, size_t tail_right, double p_in,
                        double p_tail, uint64_t seed) {
  util::Rng rng(seed);
  const size_t num_left = block_left + tail_left;
  const size_t num_right = 1 + block_right + tail_right;
  std::vector<Edge> edges;
  // Hub: right id 0 covers the whole block's left side, so all bicliques
  // containing it share the minimum right vertex 0.
  for (size_t u = 0; u < block_left; ++u) {
    edges.push_back({static_cast<VertexId>(u), 0});
  }
  // Dense block on right ids [1, 1 + block_right).
  for (size_t u = 0; u < block_left; ++u) {
    for (size_t v = 0; v < block_right; ++v) {
      if (rng.Chance(p_in)) {
        edges.push_back({static_cast<VertexId>(u),
                         static_cast<VertexId>(1 + v)});
      }
    }
  }
  // Sparse tail on disjoint ranges: many light subtrees.
  for (size_t u = 0; u < tail_left; ++u) {
    for (size_t v = 0; v < tail_right; ++v) {
      if (rng.Chance(p_tail)) {
        edges.push_back({static_cast<VertexId>(block_left + u),
                         static_cast<VertexId>(1 + block_right + v)});
      }
    }
  }
  return BipartiteGraph::FromEdges(num_left, num_right, std::move(edges));
}

}  // namespace mbe::gen
