#ifndef PMBE_GEN_GENERATORS_H_
#define PMBE_GEN_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"

/// \file
/// Synthetic bipartite graph generators. These are the data substrate of
/// the evaluation: the MBE literature benchmarks on KONECT/SNAP datasets
/// that are not available in this offline environment, so the dataset
/// registry (registry.h) composes these generators into scaled stand-ins
/// matching each dataset's |U|:|V| ratio, average degree, and degree skew.
///
/// All generators are deterministic in their seed.

namespace mbe::gen {

/// Uniform (Erdős–Rényi) bipartite graph: each of the `num_left*num_right`
/// possible edges appears independently with probability `p`. For sparse
/// settings the generator uses geometric skipping, so the cost is
/// proportional to the number of edges generated.
BipartiteGraph ErdosRenyi(size_t num_left, size_t num_right, double p,
                          uint64_t seed);

/// Uniform bipartite graph with exactly `num_edges` distinct edges sampled
/// without replacement.
BipartiteGraph UniformEdges(size_t num_left, size_t num_right,
                            size_t num_edges, uint64_t seed);

/// Chung–Lu style power-law bipartite graph. Both sides get Zipf-like
/// weights `w_i ∝ (i+1)^-alpha`; an edge (u, v) appears with probability
/// ≈ w_u * w_v * S where S normalizes the expected edge count to
/// `target_edges`. Realized via weighted sampling of `target_edges`
/// endpoints with duplicate collapse, which preserves the degree skew that
/// drives MBE difficulty (a few huge-degree hubs, many leaves).
BipartiteGraph PowerLaw(size_t num_left, size_t num_right,
                        size_t target_edges, double alpha_left,
                        double alpha_right, uint64_t seed);

/// Parameters of one planted biclique.
struct PlantedBiclique {
  std::vector<VertexId> left;
  std::vector<VertexId> right;
};

/// Plants `count` complete bipartite blocks of size `left_size x right_size`
/// at random positions on top of `base`, then returns the combined graph.
/// Planted blocks may overlap each other and the base edges. When
/// `out_planted` is non-null the chosen blocks are reported (tests use this
/// to assert that each planted block is contained in some enumerated
/// maximal biclique).
BipartiteGraph PlantBicliques(const BipartiteGraph& base, size_t count,
                              size_t left_size, size_t right_size,
                              uint64_t seed,
                              std::vector<PlantedBiclique>* out_planted);

/// A "community" graph: `blocks` dense groups with intra-block edge
/// probability `p_in` plus background probability `p_out`. Models the
/// fraud-ring / recommendation workloads from the MBE application domains.
BipartiteGraph BlockCommunity(size_t num_left, size_t num_right,
                              size_t blocks, double p_in, double p_out,
                              uint64_t seed);

/// A deliberately load-skewed graph for the parallel-scheduling
/// experiments: right vertex 0 is a *hub* adjacent to every left vertex of
/// a dense `block_left x block_right` block (intra-block edge probability
/// `p_in`), followed by a sparse `tail_left x tail_right` uniform tail
/// (probability `p_tail`) on disjoint vertex ranges. Under the natural
/// ascending right order, every maximal biclique containing the hub lands
/// in subtree(0), so one subtree carries nearly all enumeration work while
/// the tail provides many tiny subtrees — the worst case for static
/// partitioning and the showcase for work stealing with subtree splitting.
///
/// Sides: num_left = block_left + tail_left,
///        num_right = 1 + block_right + tail_right (hub is right id 0).
BipartiteGraph HubBlock(size_t block_left, size_t block_right,
                        size_t tail_left, size_t tail_right, double p_in,
                        double p_tail, uint64_t seed);

}  // namespace mbe::gen

#endif  // PMBE_GEN_GENERATORS_H_
