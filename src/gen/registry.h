#ifndef PMBE_GEN_REGISTRY_H_
#define PMBE_GEN_REGISTRY_H_

#include <string>
#include <vector>

#include "graph/bipartite_graph.h"

/// \file
/// The dataset registry: named synthetic stand-ins for the real-world
/// datasets used by the MBE literature (MovieLens, Amazon, Teams,
/// ActorMovies, Wikipedia, YouTube, StackOverflow, DBLP, IMDB, EuAll,
/// BookCrossing, Github, TVTropes).
///
/// The real graphs come from KONECT/SNAP and are not downloadable in this
/// offline environment, so each stand-in is generated to match, at a
/// laptop-scale reduction, the properties that drive MBE behaviour:
/// the |U|:|V| ratio, the average right degree, and the degree skew
/// (power-law exponents); several additionally receive planted dense blocks
/// to mimic the overlapping-community structure responsible for large
/// maximal-biclique counts (BookCrossing, Github, TVTropes). See DESIGN.md
/// §2/S3 for the substitution rationale.

namespace mbe::gen {

/// One registry entry.
struct DatasetSpec {
  std::string name;        ///< short name used in tables ("Mti", "BX", ...)
  std::string full_name;   ///< the dataset it stands in for
  size_t num_left;         ///< |U| of the stand-in
  size_t num_right;        ///< |V| of the stand-in
  size_t target_edges;     ///< approximate |E|
  double alpha_left;       ///< Zipf exponent for U-side degrees
  double alpha_right;      ///< Zipf exponent for V-side degrees
  size_t planted_blocks;   ///< extra dense blocks (0 = none)
  size_t planted_left;     ///< rows per planted block
  size_t planted_right;    ///< cols per planted block
  uint64_t seed;           ///< generation seed
  bool large;              ///< belongs to the "large datasets" group
};

/// All registered stand-ins, in the canonical table order (ascending
/// maximal-biclique count of the originals).
const std::vector<DatasetSpec>& AllDatasets();

/// Finds a dataset spec by short name; aborts if unknown.
const DatasetSpec& FindDataset(const std::string& name);

/// Materializes the stand-in graph for `spec`, already preprocessed the
/// standard way: right side is the smaller side, neighbor lists sorted.
/// `scale` in (0, 1] shrinks the stand-in further (both sides and edges) so
/// quick runs stay quick; 1.0 is the registry default size.
BipartiteGraph Materialize(const DatasetSpec& spec, double scale = 1.0);

/// Names of the default benchmark suite (the smaller, fast stand-ins).
std::vector<std::string> DefaultSuite();

/// Names of the full suite (all 13 stand-ins, ascending difficulty).
std::vector<std::string> FullSuite();

}  // namespace mbe::gen

#endif  // PMBE_GEN_REGISTRY_H_
