#include "gen/registry.h"

#include <algorithm>

#include "gen/generators.h"
#include "util/common.h"

namespace mbe::gen {

namespace {

// Laptop-scale stand-ins. Sizes are roughly 1/10–1/100 of the originals
// with the |U|:|V| ratio and the average right degree preserved; skew
// exponents chosen so the degree distributions are power-law-like where the
// originals are (social/web data) and flatter where they are not
// (purchase/rating data). Planted blocks mimic overlapping communities on
// the biclique-rich datasets.
std::vector<DatasetSpec> BuildRegistry() {
  std::vector<DatasetSpec> specs;
  // name, full_name, |U|, |V|, |E|, aL, aR, blocks, bl, br, seed, large
  specs.push_back({"Mti", "MovieLens (stand-in)", 4000, 1900, 18000, 0.80, 0.70, 0, 0, 0, 101, false});
  specs.push_back({"WA", "Amazon (stand-in)", 20000, 19800, 70000, 0.70, 0.70, 0, 0, 0, 102, false});
  specs.push_back({"TM", "Teams (stand-in)", 45000, 1700, 68000, 0.60, 0.80, 0, 0, 0, 103, false});
  specs.push_back({"AM", "ActorMovies (stand-in)", 24000, 8000, 92000, 0.75, 0.70, 0, 0, 0, 104, false});
  specs.push_back({"WC", "Wikipedia (stand-in)", 46000, 4600, 95000, 0.65, 0.85, 0, 0, 0, 105, false});
  specs.push_back({"YG", "YouTube (stand-in)", 9400, 3000, 29000, 0.90, 0.85, 0, 0, 0, 106, false});
  specs.push_back({"SO", "StackOverflow (stand-in)", 27000, 4800, 65000, 0.95, 0.85, 0, 0, 0, 107, true});
  specs.push_back({"Pa", "DBLP (stand-in)", 56000, 19500, 123000, 0.60, 0.60, 0, 0, 0, 108, true});
  specs.push_back({"IM", "IMDB (stand-in)", 30000, 10000, 126000, 0.80, 0.75, 0, 0, 0, 109, true});
  specs.push_back({"EE", "EuAll (stand-in)", 11000, 3700, 21000, 1.00, 0.90, 0, 0, 0, 110, true});
  specs.push_back({"BX", "BookCrossing (stand-in)", 17000, 5300, 57000, 0.90, 0.85, 8, 20, 12, 111, true});
  specs.push_back({"GH", "Github (stand-in)", 12000, 6000, 44000, 0.90, 0.85, 10, 16, 10, 112, true});
  specs.push_back({"DBT", "TVTropes (stand-in)", 8800, 6400, 110000, 0.85, 0.80, 12, 24, 14, 113, true});
  return specs;
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec>* registry =
      new std::vector<DatasetSpec>(BuildRegistry());
  return *registry;
}

const DatasetSpec& FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasets()) {
    if (spec.name == name) return spec;
  }
  PMBE_CHECK_MSG(false, "unknown dataset '%s'", name.c_str());
  // Unreachable.
  return AllDatasets().front();
}

BipartiteGraph Materialize(const DatasetSpec& spec, double scale) {
  PMBE_CHECK_MSG(scale > 0.0 && scale <= 1.0, "scale %f out of (0,1]", scale);
  auto scaled = [scale](size_t x) {
    return std::max<size_t>(1, static_cast<size_t>(static_cast<double>(x) * scale));
  };
  const size_t num_left = scaled(spec.num_left);
  const size_t num_right = scaled(spec.num_right);
  const size_t edges = scaled(spec.target_edges);

  BipartiteGraph g = PowerLaw(num_left, num_right, edges, spec.alpha_left,
                              spec.alpha_right, spec.seed);
  if (spec.planted_blocks > 0) {
    const size_t bl = std::min(scaled(spec.planted_left) + 1, num_left);
    const size_t br = std::min(scaled(spec.planted_right) + 1, num_right);
    g = PlantBicliques(g, spec.planted_blocks, bl, br, spec.seed * 7919,
                       /*out_planted=*/nullptr);
  }
  // Standard preprocessing: the right side must be the smaller side.
  if (g.num_right() > g.num_left()) g = g.Swapped();
  return g;
}

std::vector<std::string> DefaultSuite() {
  return {"Mti", "WA", "TM", "AM", "WC", "YG"};
}

std::vector<std::string> FullSuite() {
  std::vector<std::string> names;
  for (const DatasetSpec& spec : AllDatasets()) names.push_back(spec.name);
  return names;
}

}  // namespace mbe::gen
