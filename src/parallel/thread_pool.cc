#include "parallel/thread_pool.h"

#include <algorithm>

#include "util/common.h"

namespace mbe {

const char* SchedulingName(Scheduling scheduling) {
  switch (scheduling) {
    case Scheduling::kDynamic:
      return "dynamic";
    case Scheduling::kStatic:
      return "static";
    case Scheduling::kStealing:
      return "stealing";
  }
  return "?";
}

util::Status ParseScheduling(const std::string& name, Scheduling* scheduling) {
  PMBE_CHECK(scheduling != nullptr);
  if (name == "dynamic") {
    *scheduling = Scheduling::kDynamic;
  } else if (name == "static") {
    *scheduling = Scheduling::kStatic;
  } else if (name == "stealing") {
    *scheduling = Scheduling::kStealing;
  } else {
    return util::Status::InvalidArgument(
        "unknown scheduling '" + name +
        "' (expected dynamic | static | stealing)");
  }
  return util::Status::Ok();
}

ThreadPool::ThreadPool(unsigned threads) : threads_(std::max(1u, threads)) {}

void ThreadPool::ParallelFor(
    uint64_t n, Scheduling scheduling,
    const std::function<void(uint64_t, unsigned)>& body) {
  if (n == 0) return;
  const unsigned workers = static_cast<unsigned>(
      std::min<uint64_t>(threads_, n));
  if (workers == 1) {
    for (uint64_t i = 0; i < n; ++i) body(i, 0);
    return;
  }

  std::vector<std::thread> pool;
  pool.reserve(workers);
  // Must outlive the worker threads, which are joined at the end of the
  // function — not at the end of the dynamic-scheduling branch.
  std::atomic<uint64_t> next{0};
  if (scheduling != Scheduling::kStatic) {
    // kDynamic, and kStealing degraded to it (see header).
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&, w]() {
        while (true) {
          const uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          body(i, w);
        }
      });
    }
  } else {
    for (unsigned w = 0; w < workers; ++w) {
      const uint64_t lo = n * w / workers;
      const uint64_t hi = n * (w + 1) / workers;
      pool.emplace_back([&, w, lo, hi]() {
        for (uint64_t i = lo; i < hi; ++i) body(i, w);
      });
    }
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace mbe
