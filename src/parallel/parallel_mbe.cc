#include "parallel/parallel_mbe.h"

#include <mutex>
#include <vector>

#include "util/common.h"

namespace mbe {

EnumStats ParallelEnumerate(const BipartiteGraph& graph,
                            const WorkerFactory& factory,
                            const ParallelOptions& options, ResultSink* sink) {
  PMBE_CHECK(sink != nullptr);
  ThreadPool pool(options.threads);
  const unsigned workers = pool.threads();

  // One worker engine per thread, created lazily on first use so that the
  // serial path pays for exactly one.
  std::vector<std::unique_ptr<SubtreeWorker>> engines(workers);
  std::mutex engines_mu;

  pool.ParallelFor(
      graph.num_right(), options.scheduling,
      [&](uint64_t v, unsigned worker_id) {
        // Drain the remaining index space without enumerating once any
        // worker trips the shared stop flag.
        if (options.controller != nullptr &&
            options.controller->stop_requested()) {
          return;
        }
        SubtreeWorker* engine = engines[worker_id].get();
        if (engine == nullptr) {
          auto fresh = factory();
          {
            std::lock_guard<std::mutex> lock(engines_mu);
            engines[worker_id] = std::move(fresh);
          }
          engine = engines[worker_id].get();
        }
        engine->EnumerateSubtree(static_cast<VertexId>(v), sink);
      });

  EnumStats merged;
  for (const auto& engine : engines) {
    if (engine) merged.MergeFrom(engine->stats());
  }
  return merged;
}

}  // namespace mbe
