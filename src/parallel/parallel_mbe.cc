#include "parallel/parallel_mbe.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/biclique.h"
#include "util/common.h"
#include "util/fault.h"
#include "util/memory.h"
#include "util/random.h"

namespace mbe {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// First-failure containment shared by the drivers. An exception escaping
/// a worker task or a sink flush lands here: with a controller it becomes
/// Termination::kInternal (message preserved, fleet drains cooperatively);
/// without one the first exception is rethrown to the caller after the
/// join, so it is never swallowed and never crosses a thread boundary raw.
struct FailureLatch {
  RunController* controller;
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::exception_ptr first;

  /// Call only from inside a catch block.
  void Record(const std::string& what) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!first) first = std::current_exception();
    }
    failed.store(true, std::memory_order_release);
    if (controller != nullptr) controller->ReportInternal(what);
  }

  void MaybeRethrow() {
    if (controller == nullptr && first) std::rethrow_exception(first);
  }
};

/// Worker-local digest capture for frontier mode: accumulates the
/// commutative (sum, xor, count) digest of one task's emissions on their
/// way into the worker's BufferedSink, before batching erases task
/// boundaries. Reset at task pickup, committed to the frontier at task
/// completion. Not thread-safe — strictly worker-local, like the buffer
/// it wraps.
class TaskDigestSink : public ResultSink {
 public:
  explicit TaskDigestSink(ResultSink* inner) : inner_(inner) {}

  void Reset() { digest_ = snapshot::TaskDigest{}; }
  const snapshot::TaskDigest& digest() const { return digest_; }

  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    const uint64_t h = HashBiclique(left, right);
    digest_.sum += h;
    digest_.xr ^= h;
    ++digest_.count;
    inner_->Emit(left, right);
  }

  // EmitBatch: the default per-entry fallback keeps the digest exact for
  // any engine that batches (the current engines emit singly).

  bool ShouldStop() const override { return inner_->ShouldStop(); }

 private:
  ResultSink* inner_;
  snapshot::TaskDigest digest_;
};

/// Per-worker state of the stealing scheduler. The deque is shared (thieves
/// touch it); everything else is owner-private until the final join.
struct StealWorkerState {
  TaskDeque deque;
  uint64_t steals = 0;
  uint64_t split_tasks = 0;
  uint64_t busy_ns = 0;
  uint64_t idle_ns = 0;
};

/// The kStealing scheduler: per-worker Chase–Lev deques seeded with the
/// subtree tasks heaviest-last (so each owner starts on its heaviest seed
/// while thieves drain light tails), randomized victim selection with
/// yield/sleep backoff, and split-at-pickup for heavy subtrees.
EnumStats RunWorkStealing(const BipartiteGraph& graph,
                          const WorkerFactory& factory,
                          const ParallelOptions& options, ResultSink* sink) {
  const uint64_t n = graph.num_right();
  const uint32_t max_split =
      std::min<uint32_t>(std::max<uint32_t>(1, options.max_split),
                         kMaxTaskShards);
  RunController* controller = options.controller;
  snapshot::TaskFrontier* frontier = options.frontier;

  // Seed tasks: the whole right side for a volatile run; the frontier's
  // live set for a durable one (fresh seeds, a process shard of them, or
  // a restored snapshot's pending + in-flight tasks — completed tasks are
  // simply absent, which is how "never re-run" is enforced). Seed order:
  // right-degree ascending. Each worker's seeds are pushed lightest-first,
  // so the owner (LIFO at the bottom) starts on its heaviest subtree while
  // thieves (FIFO at the top) take the light tail. Degree is the cheap
  // seeding proxy; the accurate EstimateSubtreeWork needs the built root
  // and is what SplitHint uses at pickup.
  std::vector<uint64_t> seeds;
  if (frontier != nullptr) {
    seeds = frontier->PendingTasks();
  } else {
    seeds.reserve(n);
    for (uint64_t v = 0; v < n; ++v) {
      seeds.push_back(EncodeTask(
          {.v = static_cast<VertexId>(v), .shard = 0, .num_shards = 1}));
    }
  }
  std::stable_sort(seeds.begin(), seeds.end(), [&](uint64_t a, uint64_t b) {
    return graph.RightDegree(DecodeTask(a).v) <
           graph.RightDegree(DecodeTask(b).v);
  });

  // No point spinning more workers than there are seed tasks (splits can
  // add tasks later, but a resumed tail is typically short-lived anyway).
  const uint64_t num_tasks = seeds.size();
  const unsigned workers = static_cast<unsigned>(std::min<uint64_t>(
      std::max(1u, options.threads), std::max<uint64_t>(1, num_tasks)));
  std::vector<StealWorkerState> states(workers);
  for (uint64_t rank = 0; rank < num_tasks; ++rank) {
    states[rank % workers].deque.Push(seeds[rank]);
  }

  // Outstanding tasks across all deques and in-flight executions. A split
  // turns one task into k, so the splitter adds k-1. Workers drain until
  // this reaches zero (or the controller trips).
  std::atomic<uint64_t> remaining{num_tasks};
  // Workers currently hunting for work. Any starving thief lowers the
  // split bar for everyone, so busy workers break up mid-sized subtrees
  // they would otherwise run whole.
  std::atomic<unsigned> idle_workers{0};

  FailureLatch failure{controller};

  // Watchdog heartbeats: ns timestamp of each worker's last sign of life
  // (task pickup or steal-loop round). 0 = not started yet,
  // kHeartbeatDone = exited cleanly. Workers only stamp; the monitor only
  // reads.
  constexpr uint64_t kHeartbeatDone = ~uint64_t{0};
  std::vector<std::atomic<uint64_t>> heartbeats(workers);
  std::atomic<uint64_t> watchdog_checks{0};

  std::vector<std::unique_ptr<SubtreeWorker>> engines(workers);
  std::vector<std::unique_ptr<BufferedSink>> buffers(workers);

  auto worker_main = [&](unsigned w) {
    // Attribute every allocation this worker makes to the run's budget
    // (worker threads are fresh and carry no binding of their own).
    util::ScopedBudgetBinding budget_binding(options.budget);
    heartbeats[w].store(NowNs(), std::memory_order_relaxed);
    try {
      engines[w] = factory();
      buffers[w] = std::make_unique<BufferedSink>(
          sink, options.sink_buffer_results, options.sink_buffer_bytes);
    } catch (const std::exception& e) {
      failure.Record(e.what());
    } catch (...) {
      failure.Record("unknown exception constructing worker");
    }
    if (engines[w] == nullptr || buffers[w] == nullptr) {
      heartbeats[w].store(kHeartbeatDone, std::memory_order_relaxed);
      return;
    }
    SubtreeWorker* engine = engines[w].get();
    BufferedSink* buffered = buffers[w].get();
    StealWorkerState& st = states[w];
    // Frontier mode interposes the per-task digest capture between the
    // engine and the buffer; volatile runs keep the direct path.
    TaskDigestSink digest_sink(buffered);
    ResultSink* const task_sink =
        frontier != nullptr ? static_cast<ResultSink*>(&digest_sink)
                            : static_cast<ResultSink*>(buffered);
    util::Rng rng(0x5eedULL * (w + 1) + 0x9e3779b97f4a7c15ULL);

    auto stopped = [&]() {
      return (controller != nullptr && controller->stop_requested()) ||
             failure.failed.load(std::memory_order_acquire);
    };

    auto run_task = [&](uint64_t word) {
      StealTask task = DecodeTask(word);
      heartbeats[w].store(NowNs(), std::memory_order_relaxed);
      if (!stopped()) {
        if (frontier != nullptr) digest_sink.Reset();
        try {
          // "worker.task" models a worker failing at pickup;
          // "worker.stall" pauses long enough for an armed watchdog (any
          // stall bound below ~200ms) to notice a transient hang.
          if (PMBE_FAULT("worker.task")) {
            throw util::FaultError("injected fault: worker.task");
          }
          if (PMBE_FAULT("worker.stall")) {
            std::this_thread::sleep_for(std::chrono::milliseconds(200));
          }
          if (task.num_shards == 1 && max_split > 1) {
            if (util::CurrentMemoryBudget().UnderPressure()) {
              // Degrade: decline the split — every shard re-pays the
              // subtree's root build, multiplying live state.
              util::CurrentMemoryBudget().NoteDegradation();
            } else {
              // Split at pickup: unconditionally above the configured work
              // bar, and at a quarter of it while any thief is starving.
              const uint64_t bar =
                  idle_workers.load(std::memory_order_relaxed) > 0
                      ? std::max<uint64_t>(1, options.split_min_work / 4)
                      : options.split_min_work;
              const uint32_t k = engine->SplitHint(task.v, max_split, bar);
              if (k > 1) {
                PMBE_DCHECK(k <= max_split);
                // Record the split before any shard is visible to a
                // thief: the shard words must be live in the frontier
                // before a thief can steal and complete one.
                if (frontier != nullptr) frontier->RecordSplit(word, k);
                for (uint32_t s = k; s-- > 1;) {
                  // Push high shards first so the owner resumes on shard 1
                  // and thieves take the later shards.
                  st.deque.Push(
                      EncodeTask({.v = task.v, .shard = s, .num_shards = k}));
                }
                remaining.fetch_add(k - 1, std::memory_order_relaxed);
                ++st.split_tasks;
                task.num_shards = k;
              }
            }
          }
          const uint64_t t0 = NowNs();
          engine->EnumerateShard(task.v, task.shard, task.num_shards,
                                 task_sink);
          st.busy_ns += NowNs() - t0;
          if (frontier != nullptr && !stopped() && !task_sink->ShouldStop()) {
            // The shard ran to its end: commit its digest, exactly once.
            // A stopped or truncated task stays live and re-runs in full
            // on resume — its digest was never committed, so nothing
            // counts twice.
            //
            // Durability barrier: deliver the task's buffered results to
            // the downstream sink *before* the frontier records the task
            // complete. Committing first would let a periodic snapshot
            // claim a task whose bicliques still sit in this worker's
            // volatile buffer — a SIGKILL before the next flush would
            // lose them permanently, since resume never re-runs completed
            // tasks. A throwing flush lands in the catch below, so the
            // task stays live and re-runs in full on resume.
            buffered->Flush();
            frontier->MarkCompleted(EncodeTask(task), digest_sink.digest());
          }
        } catch (const std::exception& e) {
          failure.Record(e.what());
        } catch (...) {
          failure.Record("unknown exception in worker task");
        }
      }
      // Count down even when the stop flag skipped the enumeration: the
      // drain invariant is "every seeded or split task is retired once".
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    };

    while (true) {
      uint64_t word;
      if (st.deque.Pop(&word)) {
        run_task(word);
        continue;
      }
      if (stopped() || remaining.load(std::memory_order_acquire) == 0) break;

      // Own deque empty: hunt for work. Thieves sweep random victims,
      // backing off from yield to a short sleep as sweeps keep failing.
      const uint64_t idle_start = NowNs();
      idle_workers.fetch_add(1, std::memory_order_relaxed);
      bool got = false;
      unsigned failed_sweeps = 0;
      while (!stopped() &&
             remaining.load(std::memory_order_acquire) > 0) {
        heartbeats[w].store(NowNs(), std::memory_order_relaxed);
        bool stole = false;
        for (unsigned attempt = 0; attempt < workers && !stole; ++attempt) {
          const unsigned victim =
              static_cast<unsigned>(rng.Below(workers));
          if (victim == w) continue;
          stole = states[victim].deque.Steal(&word);
        }
        if (stole) {
          got = true;
          break;
        }
        ++failed_sweeps;
        if (failed_sweeps < 16) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
      idle_workers.fetch_sub(1, std::memory_order_relaxed);
      st.idle_ns += NowNs() - idle_start;
      if (!got) break;
      ++st.steals;
      run_task(word);
    }

    // Flush the worker's buffer before the join: buffered bicliques are
    // genuine maximal bicliques and are delivered even on cancellation
    // (the valid-prefix contract of run control). A sink failing here is
    // contained like one failing mid-run: the already-delivered results
    // stay a valid prefix.
    try {
      buffered->Flush();
    } catch (const std::exception& e) {
      failure.Record(e.what());
    } catch (...) {
      failure.Record("unknown exception flushing worker sink");
    }
    heartbeats[w].store(kHeartbeatDone, std::memory_order_relaxed);
  };

  // Watchdog monitor: sweeps the heartbeats and converts a silent worker
  // into a typed internal failure instead of an indistinguishable hang.
  // Needs a controller to report to.
  std::thread watchdog;
  std::atomic<bool> watchdog_stop{false};
  if (options.watchdog_stall_seconds > 0 && controller != nullptr) {
    const uint64_t stall_ns =
        static_cast<uint64_t>(options.watchdog_stall_seconds * 1e9);
    const auto sweep_every = std::chrono::nanoseconds(
        std::min<uint64_t>(stall_ns / 4 + 1, 100000000ULL));
    watchdog = std::thread([&, stall_ns, sweep_every] {
      while (!watchdog_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(sweep_every);
        watchdog_checks.fetch_add(1, std::memory_order_relaxed);
        const uint64_t now = NowNs();
        for (unsigned w = 0; w < workers; ++w) {
          const uint64_t beat = heartbeats[w].load(std::memory_order_relaxed);
          if (beat == 0 || beat == kHeartbeatDone) continue;
          if (now > beat && now - beat > stall_ns) {
            controller->ReportInternal(
                "watchdog: worker " + std::to_string(w) +
                " missed its heartbeat for over " +
                std::to_string(options.watchdog_stall_seconds) + "s");
            return;  // one report stops the run; the fleet drains
          }
        }
      }
    });
  }

  // Checkpointer (frontier mode): periodically persists the frontier to
  // the checkpoint path (quiescent-point snapshots — every frontier
  // transition is atomic, so a snapshot at any instant is consistent) and
  // polls the checkpoint-stop token into a typed kCheckpointed stop. A
  // failed write breaks the durability contract, so it is treated like a
  // worker failure: the run stops with kInternal rather than carrying on
  // silently un-checkpointed.
  std::thread checkpointer;
  std::atomic<bool> checkpointer_stop{false};
  std::atomic<uint64_t> checkpoints_written{0};
  const bool persisting = frontier != nullptr && options.checkpoint.enabled();
  const std::atomic<bool>* stop_token =
      (frontier != nullptr && controller != nullptr)
          ? options.checkpoint.checkpoint_stop
          : nullptr;
  if (persisting || stop_token != nullptr) {
    checkpointer = std::thread([&] {
      const uint64_t every_ns =
          (persisting && options.checkpoint.every_s > 0)
              ? static_cast<uint64_t>(options.checkpoint.every_s * 1e9)
              : ~uint64_t{0};
      uint64_t last = NowNs();
      bool stop_sent = false;
      while (!checkpointer_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        if (stop_token != nullptr && !stop_sent &&
            stop_token->load(std::memory_order_relaxed)) {
          stop_sent = true;
          controller->RequestStop(Termination::kCheckpointed);
        }
        if (every_ns != ~uint64_t{0} && NowNs() - last >= every_ns) {
          last = NowNs();
          const util::Status written = snapshot::WriteSnapshotFile(
              options.checkpoint.path, frontier->BuildSnapshot());
          if (!written.ok()) {
            try {
              throw std::runtime_error(written.ToString());
            } catch (...) {
              failure.Record(written.ToString());
            }
            return;
          }
          checkpoints_written.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  if (workers == 1) {
    worker_main(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker_main, w);
    for (std::thread& t : pool) t.join();
  }

  if (watchdog.joinable()) {
    watchdog_stop.store(true, std::memory_order_release);
    watchdog.join();
  }
  if (checkpointer.joinable()) {
    checkpointer_stop.store(true, std::memory_order_release);
    checkpointer.join();
  }
  // Final snapshot at drain — written on every exit path (clean finish,
  // cancellation, checkpointed stop, contained worker failure): the
  // frontier is consistent in all of them, and a snapshot with pending
  // tasks is exactly what makes the run resumable.
  if (persisting) {
    const util::Status written = snapshot::WriteSnapshotFile(
        options.checkpoint.path, frontier->BuildSnapshot());
    if (written.ok()) {
      checkpoints_written.fetch_add(1, std::memory_order_relaxed);
    } else {
      try {
        throw std::runtime_error(written.ToString());
      } catch (...) {
        failure.Record(written.ToString());
      }
    }
  }
  failure.MaybeRethrow();

  EnumStats merged;
  for (unsigned w = 0; w < workers; ++w) {
    if (engines[w]) merged.MergeFrom(engines[w]->stats());
    if (buffers[w]) merged.sink_flushes += buffers[w]->flushes();
    merged.steals += states[w].steals;
    merged.split_tasks += states[w].split_tasks;
    merged.busy_ns += states[w].busy_ns;
    merged.idle_ns += states[w].idle_ns;
  }
  merged.watchdog_checks = watchdog_checks.load(std::memory_order_relaxed);
  merged.checkpoints_written =
      checkpoints_written.load(std::memory_order_relaxed);
  return merged;
}

/// The flat per-vertex loop (kDynamic / kStatic) via ThreadPool.
EnumStats RunThreadPool(const BipartiteGraph& graph,
                        const WorkerFactory& factory,
                        const ParallelOptions& options, ResultSink* sink) {
  ThreadPool pool(options.threads);
  const unsigned workers = pool.threads();

  // One engine and one sink buffer per worker slot. Ownership invariant:
  // engines[w] / buffers[w] are written and used only by the single pool
  // thread running with worker_id == w (ThreadPool passes each thread a
  // distinct id), and read here only after ParallelFor's join — which
  // orders those accesses, so no lock is needed.
  std::vector<std::unique_ptr<SubtreeWorker>> engines(workers);
  std::vector<std::unique_ptr<BufferedSink>> buffers(workers);
  FailureLatch failure{options.controller};

  pool.ParallelFor(
      graph.num_right(), options.scheduling,
      [&](uint64_t v, unsigned worker_id) {
        // Attribute this task's allocations to the run's budget (pool
        // threads carry no binding; the store/restore pair is two
        // thread-local writes per subtree, noise next to the subtree).
        util::ScopedBudgetBinding budget_binding(options.budget);
        // Drain the remaining index space without enumerating once any
        // worker trips the shared stop flag or fails.
        if ((options.controller != nullptr &&
             options.controller->stop_requested()) ||
            failure.failed.load(std::memory_order_acquire)) {
          return;
        }
        try {
          if (PMBE_FAULT("worker.task")) {
            throw util::FaultError("injected fault: worker.task");
          }
          SubtreeWorker* engine = engines[worker_id].get();
          if (engine == nullptr) {
            engines[worker_id] = factory();
            buffers[worker_id] = std::make_unique<BufferedSink>(
                sink, options.sink_buffer_results, options.sink_buffer_bytes);
            engine = engines[worker_id].get();
          }
          engine->EnumerateSubtree(static_cast<VertexId>(v),
                                   buffers[worker_id].get());
        } catch (const std::exception& e) {
          failure.Record(e.what());
        } catch (...) {
          failure.Record("unknown exception in worker task");
        }
      });

  EnumStats merged;
  for (unsigned w = 0; w < workers; ++w) {
    if (buffers[w]) {
      try {
        buffers[w]->Flush();
      } catch (const std::exception& e) {
        failure.Record(e.what());
      } catch (...) {
        failure.Record("unknown exception flushing worker sink");
      }
      merged.sink_flushes += buffers[w]->flushes();
    }
    if (engines[w]) merged.MergeFrom(engines[w]->stats());
  }
  failure.MaybeRethrow();
  return merged;
}

}  // namespace

EnumStats ParallelEnumerate(const BipartiteGraph& graph,
                            const WorkerFactory& factory,
                            const ParallelOptions& options, ResultSink* sink) {
  PMBE_CHECK(sink != nullptr);
  // Frontier-driven runs always take the stealing path (the frontier
  // records the task lifecycle the deques implement; options.Validate
  // enforces kStealing at the API layer) and skip the empty-graph early
  // return so even a trivially complete run writes its final snapshot.
  if (options.frontier != nullptr) {
    return RunWorkStealing(graph, factory, options, sink);
  }
  if (graph.num_right() == 0) return EnumStats{};
  if (options.scheduling == Scheduling::kStealing) {
    return RunWorkStealing(graph, factory, options, sink);
  }
  return RunThreadPool(graph, factory, options, sink);
}

}  // namespace mbe
