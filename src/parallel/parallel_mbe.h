#ifndef PMBE_PARALLEL_PARALLEL_MBE_H_
#define PMBE_PARALLEL_PARALLEL_MBE_H_

#include <functional>
#include <memory>

#include "core/enum_stats.h"
#include "core/run_control.h"
#include "core/sink.h"
#include "graph/bipartite_graph.h"
#include "parallel/thread_pool.h"
#include "parallel/work_stealing.h"
#include "snapshot/checkpoint.h"
#include "snapshot/frontier.h"

/// \file
/// The shared-memory parallel MBE driver. It fans the per-vertex subtree
/// decomposition (core/subtree.h) out over worker threads; each worker
/// owns a private enumerator instance (enumerators are single-threaded
/// state) and a private BufferedSink over the shared thread-safe
/// ResultSink (emissions are batched; see core/sink.h).
///
/// Three scheduling disciplines (Scheduling, parallel/thread_pool.h):
///  * kDynamic / kStatic — the flat per-vertex loop via ThreadPool;
///  * kStealing (default) — per-worker Chase–Lev deques seeded
///    heaviest-subtree-first, randomized stealing, and heavy-subtree
///    *splitting*: when a subtree's estimated work is large (always) or a
///    thief is starving (lower bar), its top-level candidate loop is
///    sharded into up to `max_split` independently executable tasks, so a
///    single hub subtree no longer serializes the run.
///
/// This plays two roles in the evaluation:
///  * "ParMBE": parallel iMBEA workers, the CPU-parallel comparison point;
///  * "MBET xN": parallel prefix-tree workers, for the scalability figure.

namespace mbe {

/// Per-worker enumeration engine: anything that can enumerate one subtree.
///
/// Engines that can *split* a subtree additionally implement SplitHint /
/// EnumerateShard. The contract: for any v and any k returned by
/// SplitHint(v, ...), the multiset union of EnumerateShard(v, s, k, sink)
/// over s in [0, k) equals EnumerateSubtree(v, sink)'s emissions. Shards
/// must share no mutable state — each shard re-derives its frame from the
/// engine's own scratch (different shards of one subtree generally run on
/// different workers' engines).
class SubtreeWorker {
 public:
  virtual ~SubtreeWorker() = default;

  /// Enumerates the maximal bicliques whose minimum right vertex is `v`.
  virtual void EnumerateSubtree(VertexId v, ResultSink* sink) = 0;

  /// Returns how many shards subtree(v)'s top-level candidate loop should
  /// be split into: in [2, max_shards] when the subtree's estimated work
  /// is at least `min_work` and it has enough top-level candidates,
  /// otherwise 1 (don't split). Engines that cannot split return 1 (the
  /// default), and the scheduler then runs the subtree whole.
  virtual uint32_t SplitHint(VertexId /*v*/, uint32_t /*max_shards*/,
                             uint64_t /*min_work*/) {
    return 1;
  }

  /// Enumerates shard `shard` of `num_shards` of subtree(v). Only called
  /// with a num_shards previously returned by SplitHint for the same v
  /// (on some engine; shards migrate across workers). The default handles
  /// the degenerate unsplit case only.
  virtual void EnumerateShard(VertexId v, uint32_t shard,
                              uint32_t /*num_shards*/, ResultSink* sink) {
    if (shard == 0) EnumerateSubtree(v, sink);
  }

  /// Counters accumulated by this worker so far.
  virtual EnumStats stats() const = 0;
};

/// Factory producing one fresh worker per thread.
using WorkerFactory = std::function<std::unique_ptr<SubtreeWorker>()>;

/// Configuration of a parallel run.
struct ParallelOptions {
  unsigned threads = 1;
  Scheduling scheduling = Scheduling::kStealing;

  /// Shared run controller (may be null). The driver skips unclaimed
  /// subtrees once its stop flag trips, so the first worker to hit a
  /// deadline or budget halts the whole fleet; the factory is responsible
  /// for attaching the same controller to each worker engine it builds.
  RunController* controller = nullptr;

  /// The run's memory budget. Workers bind it to their thread
  /// (util::ScopedBudgetBinding) so every charging site inside the
  /// enumeration attributes to this run — not to whatever another
  /// concurrent session bound elsewhere. nullptr binds the process
  /// default.
  util::MemoryBudget* budget = nullptr;

  /// Maximum shards a heavy subtree is split into (kStealing only; 1
  /// disables splitting). Bounded by kMaxTaskShards.
  uint32_t max_split = 8;

  /// Estimated-work bar (EstimateSubtreeWork units) above which a subtree
  /// is split unconditionally at pickup. When a thief is starving the bar
  /// drops to a quarter of this, so stragglers also break up mid-sized
  /// subtrees. The default is deliberately high: every shard re-pays the
  /// subtree's root build and depth-0 scan, so splitting only pays off for
  /// the monster subtrees that would otherwise serialize a run's tail —
  /// mid-sized subtrees balance fine as whole-subtree steals.
  uint64_t split_min_work = 1 << 16;

  /// Per-worker BufferedSink flush thresholds: flush after this many
  /// buffered bicliques or this many buffered arena bytes, whichever
  /// trips first.
  size_t sink_buffer_results = 64;
  size_t sink_buffer_bytes = 1 << 16;

  /// Worker watchdog (kStealing only; needs a controller to report to).
  /// When > 0, a monitor thread sweeps per-worker heartbeats — stamped at
  /// every task pickup and steal-loop round — and a worker silent for this
  /// many seconds stops the run with Termination::kInternal. The bound is
  /// therefore on the *longest single task*, so it is opt-in (0 = off): a
  /// legitimately giant subtree between heartbeats is indistinguishable
  /// from a stuck one. See docs/ROBUSTNESS.md.
  double watchdog_stall_seconds = 0;

  /// Durable task frontier (snapshot/frontier.h); null runs volatile, as
  /// before. When set, the stealing driver takes its seed tasks from the
  /// frontier's pending set instead of the whole right side, records every
  /// split and completion (with a per-task result digest) in it, and never
  /// re-runs a task the frontier already logged as completed — the
  /// substrate of checkpoint/resume and multi-process sharding
  /// (docs/CHECKPOINT.md). The caller owns the frontier and seeds it
  /// (fresh, restored from a snapshot, or one process shard of the seed
  /// space). Requires Scheduling::kStealing.
  snapshot::TaskFrontier* frontier = nullptr;

  /// Checkpoint persistence over `frontier` (ignored when frontier is
  /// null): `checkpoint.path` receives periodic snapshots every
  /// `checkpoint.every_s` seconds plus one final snapshot at drain, all
  /// written crash-safely (tmp+rename). `checkpoint.checkpoint_stop`
  /// turning true stops the run with Termination::kCheckpointed (needs a
  /// controller). The resume/shard fields are consumed by the caller when
  /// seeding the frontier, not by the driver.
  snapshot::CheckpointOptions checkpoint;
};

/// Runs the full enumeration of `graph` with `factory`-produced workers.
/// Returns the merged counters of all workers (including scheduler
/// counters: steals, split_tasks, sink_flushes, busy/idle time).
EnumStats ParallelEnumerate(const BipartiteGraph& graph,
                            const WorkerFactory& factory,
                            const ParallelOptions& options, ResultSink* sink);

}  // namespace mbe

#endif  // PMBE_PARALLEL_PARALLEL_MBE_H_
