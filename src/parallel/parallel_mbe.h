#ifndef PMBE_PARALLEL_PARALLEL_MBE_H_
#define PMBE_PARALLEL_PARALLEL_MBE_H_

#include <functional>
#include <memory>

#include "core/enum_stats.h"
#include "core/run_control.h"
#include "core/sink.h"
#include "graph/bipartite_graph.h"
#include "parallel/thread_pool.h"

/// \file
/// The shared-memory parallel MBE driver. It fans the per-vertex subtree
/// decomposition (core/subtree.h) out over a thread pool; each worker owns
/// a private enumerator instance (enumerators are single-threaded state)
/// and all workers share one thread-safe ResultSink.
///
/// This plays two roles in the evaluation:
///  * "ParMBE": parallel iMBEA workers, the CPU-parallel comparison point;
///  * "MBET xN": parallel prefix-tree workers, for the scalability figure.

namespace mbe {

/// Per-worker enumeration engine: anything that can enumerate one subtree.
class SubtreeWorker {
 public:
  virtual ~SubtreeWorker() = default;

  /// Enumerates the maximal bicliques whose minimum right vertex is `v`.
  virtual void EnumerateSubtree(VertexId v, ResultSink* sink) = 0;

  /// Counters accumulated by this worker so far.
  virtual EnumStats stats() const = 0;
};

/// Factory producing one fresh worker per thread.
using WorkerFactory = std::function<std::unique_ptr<SubtreeWorker>()>;

/// Configuration of a parallel run.
struct ParallelOptions {
  unsigned threads = 1;
  Scheduling scheduling = Scheduling::kDynamic;

  /// Shared run controller (may be null). The driver skips unclaimed
  /// subtrees once its stop flag trips, so the first worker to hit a
  /// deadline or budget halts the whole fleet; the factory is responsible
  /// for attaching the same controller to each worker engine it builds.
  RunController* controller = nullptr;
};

/// Runs the full enumeration of `graph` with `factory`-produced workers.
/// Returns the merged counters of all workers.
EnumStats ParallelEnumerate(const BipartiteGraph& graph,
                            const WorkerFactory& factory,
                            const ParallelOptions& options, ResultSink* sink);

}  // namespace mbe

#endif  // PMBE_PARALLEL_PARALLEL_MBE_H_
