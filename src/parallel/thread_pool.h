#ifndef PMBE_PARALLEL_THREAD_POOL_H_
#define PMBE_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

/// \file
/// A small fixed-size thread pool exposing the scheduling disciplines the
/// parallel experiments compare:
///
///  * **dynamic** — workers repeatedly claim the next index from a shared
///    atomic counter (fine-grained self-balancing; the CPU analogue of the
///    shared `processing_v` counter used by GPU MBE work);
///  * **static** — the index range is pre-split into contiguous blocks,
///    one per worker, demonstrating the load-imbalance failure mode on
///    skewed enumeration trees;
///  * **stealing** — per-worker Chase–Lev deques with randomized victim
///    selection and heavy-subtree splitting (parallel/work_stealing.h).
///    This is a *task-level* discipline implemented by the parallel MBE
///    driver; for plain index loops ParallelFor degrades it to dynamic
///    (an index loop has no subtree structure to steal or split).

namespace mbe {

/// How the parallel driver distributes work over workers.
enum class Scheduling {
  kDynamic,   ///< shared-counter work claiming (self-balancing)
  kStatic,    ///< contiguous pre-partitioned blocks
  kStealing,  ///< per-worker deques + stealing + subtree splitting
};

/// Stable display name ("dynamic", "static", "stealing").
const char* SchedulingName(Scheduling scheduling);

/// Parses "dynamic" | "static" | "stealing" into `*scheduling`; returns
/// InvalidArgument (leaving `*scheduling` untouched) on unknown names.
util::Status ParseScheduling(const std::string& name, Scheduling* scheduling);

/// Fixed-size pool of workers for index-space parallel loops.
class ThreadPool {
 public:
  /// Creates `threads` workers (>= 1). The pool spawns threads lazily per
  /// ParallelFor call; workers are joined before the call returns, so the
  /// body may reference stack state of the caller.
  explicit ThreadPool(unsigned threads);

  unsigned threads() const { return threads_; }

  /// Runs `body(index, worker_id)` for every index in [0, n) using the
  /// given scheduling discipline. Blocks until all indices are processed.
  /// The body must be thread-safe across distinct worker_ids.
  /// kStealing is treated as kDynamic here (see file comment).
  void ParallelFor(uint64_t n, Scheduling scheduling,
                   const std::function<void(uint64_t, unsigned)>& body);

 private:
  unsigned threads_;
};

}  // namespace mbe

#endif  // PMBE_PARALLEL_THREAD_POOL_H_
