#include "parallel/work_stealing.h"

#include <algorithm>

namespace mbe {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t cap = 8;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

TaskDeque::TaskDeque(size_t capacity_hint) {
  rings_.push_back(std::make_unique<Ring>(RoundUpPow2(capacity_hint)));
  ring_.store(rings_.back().get(), std::memory_order_relaxed);
}

void TaskDeque::Grow(Ring* ring, int64_t bottom, int64_t top) {
  auto grown = std::make_unique<Ring>(ring->capacity() * 2);
  for (int64_t i = top; i < bottom; ++i) grown->Store(i, ring->Load(i));
  ring_.store(grown.get(), std::memory_order_release);
  // Retire, don't free: a thief holding the old pointer may still load a
  // (stale) slot before its top CAS fails.
  rings_.push_back(std::move(grown));
}

void TaskDeque::Push(uint64_t task) {
  const int64_t b = bottom_.load(std::memory_order_relaxed);
  const int64_t t = top_.load(std::memory_order_acquire);
  Ring* ring = ring_.load(std::memory_order_relaxed);
  if (b - t >= static_cast<int64_t>(ring->capacity())) {
    Grow(ring, b, t);
    ring = ring_.load(std::memory_order_relaxed);
  }
  ring->Store(b, task);
  // Publish the slot before the new bottom becomes visible to thieves.
  std::atomic_thread_fence(std::memory_order_release);
  bottom_.store(b + 1, std::memory_order_relaxed);
}

bool TaskDeque::Pop(uint64_t* task) {
  const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Ring* ring = ring_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_relaxed);
  // The bottom reservation must be visible before top is read, or the
  // owner and a thief could both take the last task.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  int64_t t = top_.load(std::memory_order_relaxed);
  if (t > b) {
    // Empty: undo the reservation.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
  }
  *task = ring->Load(b);
  if (t == b) {
    // Last task: race thieves for it via the top CAS.
    const bool won = top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return won;
  }
  return true;
}

bool TaskDeque::Steal(uint64_t* task) {
  int64_t t = top_.load(std::memory_order_acquire);
  // Order the top read before the bottom read (mirrors the owner's fence
  // in Pop), so a concurrent pop of the last task is not double-taken.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const int64_t b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return false;
  Ring* ring = ring_.load(std::memory_order_acquire);
  const uint64_t word = ring->Load(t);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return false;  // lost to the owner or another thief; caller retries
  }
  *task = word;
  return true;
}

size_t TaskDeque::SizeEstimate() const {
  const int64_t b = bottom_.load(std::memory_order_relaxed);
  const int64_t t = top_.load(std::memory_order_relaxed);
  return b > t ? static_cast<size_t>(b - t) : 0;
}

}  // namespace mbe
