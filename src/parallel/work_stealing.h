#ifndef PMBE_PARALLEL_WORK_STEALING_H_
#define PMBE_PARALLEL_WORK_STEALING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/common.h"

/// \file
/// The work-stealing substrate of the parallel driver
/// (Scheduling::kStealing): per-worker Chase–Lev deques holding encoded
/// subtree tasks, plus the task encoding shared with the scheduler in
/// parallel_mbe.cc.
///
/// Why not the shared-counter loop? The per-vertex subtree decomposition
/// is heavily skewed on real bipartite graphs: one hub subtree can hold
/// most of the enumeration work, and whichever worker claims it serializes
/// the tail of the run while every other worker idles. Work stealing fixes
/// the *distribution* half of that problem (idle workers take queued tasks
/// from busy ones); intra-subtree task splitting (SubtreeWorker::
/// EnumerateShard, see parallel_mbe.h) fixes the *granularity* half by
/// sharding a heavy subtree's top-level candidate loop into independently
/// executable tasks.
///
/// The deque is the Chase–Lev design in the formulation of Lê et al.,
/// "Correct and Efficient Work-Stealing for Weak Memory Models" (PPoPP
/// 2013): the owner pushes and pops at the *bottom* (LIFO, cache-warm),
/// thieves CAS the *top* (FIFO, oldest task first). All shared state is
/// accessed through std::atomic — there are no fence-published plain
/// loads — so ThreadSanitizer can verify the protocol (the TSan leg of
/// scripts/check.sh runs the deque stress tests on every CI pass).

namespace mbe {

/// One unit of enumeration work, encoded into a single 64-bit word so the
/// deque slots can be lock-free std::atomic<uint64_t>:
///   bits [32, 64): subtree seed vertex v
///   bits [16, 32): shard index within the subtree's split
///   bits [ 0, 16): total shards of the split (1 = unsplit subtree)
struct StealTask {
  VertexId v = 0;
  uint32_t shard = 0;
  uint32_t num_shards = 1;
};

inline constexpr uint32_t kMaxTaskShards = 0xffff;

constexpr uint64_t EncodeTask(const StealTask& task) {
  PMBE_DCHECK(task.num_shards >= 1 && task.num_shards <= kMaxTaskShards);
  PMBE_DCHECK(task.shard < task.num_shards);
  return (static_cast<uint64_t>(task.v) << 32) |
         (static_cast<uint64_t>(task.shard & 0xffff) << 16) |
         static_cast<uint64_t>(task.num_shards & 0xffff);
}

constexpr StealTask DecodeTask(uint64_t word) {
  StealTask task;
  task.v = static_cast<VertexId>(word >> 32);
  task.shard = static_cast<uint32_t>((word >> 16) & 0xffff);
  task.num_shards = static_cast<uint32_t>(word & 0xffff);
  return task;
}

// The frontier snapshot file format (snapshot/frontier.h) persists these
// words verbatim, so the 32/16/16 packing is an on-disk contract now, not
// just an in-memory convenience. Pin it.
static_assert(EncodeTask({.v = 0xdeadbeefu, .shard = 0x1234u,
                          .num_shards = 0xffffu}) == 0xdeadbeef1234ffffULL,
              "task packing must stay v:[32,64) shard:[16,32) k:[0,16)");
static_assert(DecodeTask(0xdeadbeef1234ffffULL).v == 0xdeadbeefu &&
                  DecodeTask(0xdeadbeef1234ffffULL).shard == 0x1234u &&
                  DecodeTask(0xdeadbeef1234ffffULL).num_shards == 0xffffu,
              "task unpacking must invert the packing bit-exactly");

/// Chase–Lev work-stealing deque of encoded tasks.
///
/// Thread roles: exactly one *owner* thread may call Push/Pop; any number
/// of *thief* threads may call Steal concurrently. The owner works LIFO
/// at the bottom; thieves take the oldest task at the top, so with
/// heaviest-last seeding the owner starts on its heaviest subtree while
/// thieves drain the light tail.
///
/// Each slot is padded to its own cache line: top and bottom move through
/// the ring from opposite ends, and unpadded neighbouring slots would
/// false-share between the owner's store and a thief's load.
class TaskDeque {
 public:
  /// `capacity_hint` sizes the initial ring (rounded up to a power of
  /// two). Push grows the ring when full; retired rings are kept alive
  /// until destruction so a racing thief never reads freed memory.
  explicit TaskDeque(size_t capacity_hint = 64);

  /// Owner only: appends a task at the bottom, growing if needed.
  void Push(uint64_t task);

  /// Owner only: takes the most recently pushed task. Returns false when
  /// the deque is empty (including losing the last-element race to a
  /// thief).
  bool Pop(uint64_t* task);

  /// Thieves: takes the oldest task. Returns false when empty or when the
  /// CAS race against the owner/another thief is lost (the caller just
  /// retries elsewhere; spurious failure is part of the protocol).
  bool Steal(uint64_t* task);

  /// Approximate size; safe from any thread (used for split heuristics
  /// and stats only).
  size_t SizeEstimate() const;

 private:
  /// One task per cache line (see class comment).
  struct alignas(64) Slot {
    std::atomic<uint64_t> word{0};
  };

  struct Ring {
    explicit Ring(size_t capacity)
        : mask(capacity - 1), slots(new Slot[capacity]) {}
    size_t capacity() const { return mask + 1; }
    uint64_t Load(int64_t i) const {
      return slots[static_cast<size_t>(i) & mask].word.load(
          std::memory_order_relaxed);
    }
    void Store(int64_t i, uint64_t word) {
      slots[static_cast<size_t>(i) & mask].word.store(
          word, std::memory_order_relaxed);
    }
    const size_t mask;
    std::unique_ptr<Slot[]> slots;
  };

  /// Owner only: doubles the ring, copying live tasks. The old ring is
  /// retired (kept allocated) rather than freed: a thief that loaded the
  /// old ring pointer may still read a stale slot, then fail its top CAS
  /// and retry against the new ring.
  void Grow(Ring* ring, int64_t bottom, int64_t top);

  alignas(64) std::atomic<int64_t> top_{0};
  alignas(64) std::atomic<int64_t> bottom_{0};
  alignas(64) std::atomic<Ring*> ring_;
  std::vector<std::unique_ptr<Ring>> rings_;  ///< current + retired (owner)
};

}  // namespace mbe

#endif  // PMBE_PARALLEL_WORK_STEALING_H_
