#ifndef PMBE_API_OPTIONS_H_
#define PMBE_API_OPTIONS_H_

#include <cstdint>
#include <string>

#include "core/mbet.h"
#include "core/run_control.h"
#include "graph/ordering.h"
#include "parallel/thread_pool.h"
#include "snapshot/checkpoint.h"
#include "util/status.h"

/// \file
/// Configuration types of the session-oriented API (docs/SERVICE.md).
///
/// The old monolithic `Options` struct mixed two unrelated lifetimes:
/// *graph preprocessing* decisions (ordering, relabeling, side swap, core
/// reduction) that are made once when a graph is loaded, and *run control*
/// decisions (algorithm, threads, budgets, deadlines) that differ per
/// query. The split mirrors the two API objects:
///
///  * `GraphOptions` — owned by `mbe::Engine`: everything baked into the
///    immutable preprocessed graph, shared read-only by all sessions.
///  * `RunOptions` — owned by `mbe::Session`: everything a single
///    enumeration query controls.
///
/// The legacy flat `Options` aggregate (api/mbe.h) remains for one-shot
/// callers and converts into both halves.

namespace mbe {

/// Which enumeration algorithm to run.
enum class Algorithm {
  kMbet,        ///< prefix-tree enumerator (the paper's contribution)
  kMbetM,       ///< space-optimized MBET (no stored locals)
  kMineLmbc,    ///< textbook recursive baseline
  kMbea,        ///< MBEA (Q-set check, unsorted candidates)
  kImbea,       ///< iMBEA (Q-set check + candidate ordering)
  kOombeaLite,  ///< unilateral order + subtree-local iMBEA
  kBbk,         ///< pivot-free left extension, degree-ordered candidates
                ///< (Baudin et al. 2024) — the large-sparse-graph engine
};

/// Parses "mbet", "mbetm", "minelmbc", "mbea", "imbea", "oombea", "bbk"
/// into `*algorithm`; returns InvalidArgument (leaving `*algorithm`
/// untouched) on unknown names.
util::Status ParseAlgorithm(const std::string& name, Algorithm* algorithm);

/// Stable display name of an algorithm.
const char* AlgorithmName(Algorithm algorithm);

/// True for the algorithms the per-vertex subtree decomposition (and hence
/// any parallel or pooled execution) supports.
bool SupportsParallel(Algorithm algorithm);

/// Graph preprocessing configuration, fixed at `Engine::Build` time. All
/// vertex-size thresholds are stated in the *caller's* orientation; the
/// engine accounts for side swapping internally.
struct GraphOptions {
  /// Right-side traversal order. kUnilateralAsc is the natural pairing for
  /// Algorithm::kOombeaLite; everything else defaults to degree-ascending.
  VertexOrder order = VertexOrder::kDegreeAsc;

  /// Relabel the left side hub-first (descending degree) so that local
  /// neighborhoods share prefixes in the trie. No effect on correctness.
  bool hub_first_left = true;

  /// Swap the sides when the right side is larger (the standard
  /// preprocessing in the MBE literature). Emitted bicliques are swapped
  /// back, so callers always see their original orientation.
  bool auto_swap_sides = true;

  /// When min_left/min_right > 1, peel the graph to its
  /// (min_left, min_right)-core before any enumeration (graph/reduction.h).
  /// Exact for queries whose size thresholds are at least as strict:
  /// a session running on a reduced engine must have
  /// `mbet.min_left >= min_left && mbet.min_right >= min_right`
  /// (Session::Run rejects looser queries — bicliques below the baked
  /// thresholds are gone from the reduced graph).
  bool core_reduce = true;
  uint32_t min_left = 1;
  uint32_t min_right = 1;

  /// Seed for randomized orders (VertexOrder::kRandom).
  uint64_t seed = 1;

  /// Sanity checks (threshold >= 1). OK options never make Build abort.
  util::Status Validate() const;
};

/// Per-query run configuration, owned by `mbe::Session`.
struct RunOptions {
  Algorithm algorithm = Algorithm::kMbet;

  /// Worker threads for a standalone `Session::Run`. >1 uses the
  /// per-vertex subtree decomposition, which requires
  /// SupportsParallel(algorithm). Ignored when the session executes on a
  /// shared pool (serve/session_pool.h) — the pool brings the threads.
  unsigned threads = 1;
  Scheduling scheduling = Scheduling::kStealing;

  /// Maximum shards a heavy subtree is split into under kStealing (1
  /// disables subtree splitting; ignored by the other disciplines). See
  /// docs/PARALLELISM.md.
  uint32_t max_split = 8;

  /// Ablation switches forwarded to MBET (trie / aggregation / Q pruning),
  /// plus the size thresholds min_left/min_right — stated in the caller's
  /// orientation; the session swaps them when the engine swapped sides.
  MbetOptions mbet;

  /// Workload-adaptive auto-tuning (core/tuner.h, docs/TUNING.md): the
  /// session maps the engine's sampled graph profile through the tuner's
  /// decision table and overrides `mbet.bitmap_density`,
  /// `mbet.batch_width`, and `max_split` with its picks (the fields above
  /// keep their values; only the effective run configuration changes).
  /// The decision is recorded in EnumStats::auto_tuned / tuned_*. Results
  /// are byte-identical under any decision — the tuned knobs trade speed
  /// and memory, never output.
  bool auto_tune = false;

  /// Run control: cooperative cancellation, wall-clock deadline, result /
  /// node budgets, and periodic progress reporting (core/run_control.h).
  /// Default-constructed control is inert and costs nothing.
  RunControl control;

  /// Hard cap, in bytes, on the enumeration memory this run accounts
  /// (scratch arenas, per-node level/trie/bitmap state, sink buffers) —
  /// docs/ROBUSTNESS.md. 0 = unlimited. Past 75% of the cap consumers
  /// degrade gracefully — slower, identical results; past the cap the run
  /// stops with Termination::kMemoryLimit and the sink holds a valid
  /// prefix. The budget is **per session**: each Session charges its own
  /// `util::MemoryBudget` instance, so one session exhausting its cap
  /// never degrades or stops a concurrent neighbor.
  uint64_t max_memory_bytes = 0;

  /// Worker watchdog stall bound in seconds (standalone parallel runs
  /// only; 0 = off). See docs/ROBUSTNESS.md.
  double watchdog_stall_seconds = 0;

  /// Durable checkpointing (docs/CHECKPOINT.md). A non-empty
  /// `checkpoint.path` makes the run frontier-driven: the task frontier is
  /// persisted there periodically and at drain, `checkpoint.resume` picks
  /// a previous snapshot back up (completed subtrees are never re-run),
  /// and `checkpoint.shard_index / shard_count` restrict this process to
  /// its hash shard of the seed space for multi-process runs. Requires
  /// Scheduling::kStealing and a parallel-capable algorithm (threads may
  /// still be 1 — durability and parallelism are orthogonal).
  snapshot::CheckpointOptions checkpoint;

  /// Checks the options for internal consistency: thread count, parallel
  /// support of the chosen algorithm, size-threshold sanity, run-control
  /// sanity, checkpoint coherence. OK options never make Session::Run
  /// abort.
  util::Status Validate() const;
};

}  // namespace mbe

#endif  // PMBE_API_OPTIONS_H_
