#ifndef PMBE_API_MBE_H_
#define PMBE_API_MBE_H_

#include <string>

#include "core/enum_stats.h"
#include "core/mbet.h"
#include "core/run_control.h"
#include "core/sink.h"
#include "graph/bipartite_graph.h"
#include "graph/ordering.h"
#include "parallel/thread_pool.h"
#include "util/status.h"

/// \file
/// The library facade: one call that takes an input bipartite graph, an
/// options struct, and a sink, and runs the full pipeline —
/// preprocessing (side swap, left hub-first relabeling, right-side
/// ordering), algorithm selection, optional parallel fan-out — while
/// translating emitted bicliques back to the caller's original vertex ids.
///
/// Quickstart (recoverable-error form):
/// ```
///   mbe::CollectSink sink;
///   mbe::Options options;                      // defaults: MBET, deg-asc
///   options.control.deadline_seconds = 10;     // optional run control
///   mbe::RunResult run;
///   mbe::util::Status s = mbe::Enumerate(graph, options, &sink, &run);
///   if (!s.ok()) { /* bad options, not a crash */ }
///   if (run.termination != mbe::Termination::kComplete) { /* truncated */ }
///   for (const mbe::Biclique& b : sink.TakeSorted()) { ... }
/// ```
///
/// Every entry point comes in two forms: a `util::Status`-returning
/// overload that reports invalid input as a recoverable error, and a thin
/// legacy shim that aborts on error (kept for callers that treat option
/// mistakes as programming bugs). Interrupted runs — cancellation,
/// deadline, budget — are *not* errors: they return OK with
/// `RunResult::termination` describing why the run stopped, and the sink
/// holds the valid prefix of results emitted before the stop.

namespace mbe {

/// Which enumeration algorithm to run.
enum class Algorithm {
  kMbet,        ///< prefix-tree enumerator (the paper's contribution)
  kMbetM,       ///< space-optimized MBET (no stored locals)
  kMineLmbc,    ///< textbook recursive baseline
  kMbea,        ///< MBEA (Q-set check, unsorted candidates)
  kImbea,       ///< iMBEA (Q-set check + candidate ordering)
  kOombeaLite,  ///< unilateral order + subtree-local iMBEA
};

/// Parses "mbet", "mbetm", "minelmbc", "mbea", "imbea", "oombea" into
/// `*algorithm`; returns InvalidArgument (leaving `*algorithm` untouched)
/// on unknown names.
util::Status ParseAlgorithm(const std::string& name, Algorithm* algorithm);

/// Legacy shim: parses like the overload above but aborts on unknown
/// names. Prefer the Status overload for anything user-facing.
Algorithm ParseAlgorithm(const std::string& name);

/// Stable display name of an algorithm.
const char* AlgorithmName(Algorithm algorithm);

/// Full configuration of an enumeration run.
struct Options {
  Algorithm algorithm = Algorithm::kMbet;

  /// Right-side traversal order. kUnilateralAsc is the natural pairing for
  /// kOombeaLite; everything else defaults to degree-ascending.
  VertexOrder order = VertexOrder::kDegreeAsc;

  /// Relabel the left side hub-first (descending degree) so that local
  /// neighborhoods share prefixes in the trie. No effect on correctness.
  bool hub_first_left = true;

  /// Swap the sides when the right side is larger (the standard
  /// preprocessing in the MBE literature). Emitted bicliques are swapped
  /// back, so callers always see their original orientation.
  bool auto_swap_sides = true;

  /// Worker threads. >1 uses the per-vertex subtree decomposition, which
  /// is supported by kMbet, kMbetM, kImbea and kOombeaLite.
  unsigned threads = 1;
  Scheduling scheduling = Scheduling::kStealing;

  /// Maximum shards a heavy subtree is split into under kStealing (1
  /// disables subtree splitting; ignored by the other disciplines). See
  /// docs/PARALLELISM.md.
  uint32_t max_split = 8;

  /// Ablation switches forwarded to MBET (trie / aggregation / Q pruning),
  /// plus the size thresholds min_left/min_right.
  MbetOptions mbet;

  /// When size thresholds are set (mbet.min_left/min_right > 1) and the
  /// algorithm is MBET/MBETM, peel the graph to its (min_left, min_right)-
  /// core before enumerating (graph/reduction.h). Exact: no qualifying
  /// maximal biclique is lost.
  bool core_reduce = true;

  /// Seed for randomized orders (VertexOrder::kRandom).
  uint64_t seed = 1;

  /// Run control: cooperative cancellation, wall-clock deadline, result /
  /// node budgets, and periodic progress reporting (core/run_control.h).
  /// Default-constructed control is inert and costs nothing.
  RunControl control;

  /// Hard cap, in bytes, on the enumeration memory this run accounts
  /// (scratch arenas, per-node level/trie/bitmap state, sink buffers) —
  /// docs/ROBUSTNESS.md. 0 = unlimited. Past 75% of the cap consumers
  /// degrade gracefully (sorted lists instead of bitmaps, no tries,
  /// smaller sink batches, no subtree splits) — slower, identical
  /// results; past the cap the run stops with
  /// Termination::kMemoryLimit and the sink holds a valid prefix.
  /// `RunResult::stats.peak_charged_bytes` never exceeds the cap. The
  /// budget is process-wide: run capped enumerations one at a time.
  uint64_t max_memory_bytes = 0;

  /// Worker watchdog stall bound in seconds (parallel runs only; 0 =
  /// off). A worker silent for this long — no task pickup, no steal
  /// round — stops the run with Termination::kInternal instead of
  /// hanging it. The bound is on the longest single task, so leave it
  /// off unless task durations are known (see docs/ROBUSTNESS.md).
  double watchdog_stall_seconds = 0;

  /// Checks the options for internal consistency: thread count, parallel
  /// support of the chosen algorithm, size-threshold sanity, run-control
  /// sanity. OK options never make Enumerate abort.
  util::Status Validate() const;
};

/// Outcome of an Enumerate call.
struct RunResult {
  EnumStats stats;      ///< merged enumeration counters
  double seconds = 0;   ///< wall time of the enumeration phase (excludes
                        ///< graph preprocessing)
  double preprocess_seconds = 0;  ///< ordering/relabeling time

  /// Why the run stopped. Anything other than kComplete means the sink
  /// holds a valid prefix of the full result set (every emitted biclique
  /// is maximal; some maximal bicliques may be missing).
  Termination termination = Termination::kComplete;

  /// Bicliques emitted to the caller's sink (equals stats.maximal except
  /// when a result budget dropped racing emissions in a parallel run).
  uint64_t results_emitted = 0;

  /// Diagnostic for Termination::kInternal: what failed (the first
  /// contained exception's message, or the watchdog's report). Empty
  /// otherwise.
  std::string message;

  /// Convenience: did the run enumerate the complete result set?
  bool complete() const { return termination == Termination::kComplete; }
};

/// Runs the configured enumeration of `graph` into `sink`, filling
/// `*result` (which may be null). Emitted bicliques use the caller's
/// original vertex ids and side orientation. Returns InvalidArgument —
/// without starting the run — when `sink` is null or `options.Validate()`
/// fails. Interrupted runs (see Options::control) return OK with
/// `result->termination` set.
util::Status Enumerate(const BipartiteGraph& graph, const Options& options,
                       ResultSink* sink, RunResult* result);

/// Legacy shim: like the Status overload but aborts on invalid options or
/// a null sink.
RunResult Enumerate(const BipartiteGraph& graph, const Options& options,
                    ResultSink* sink);

/// Convenience: counts the maximal bicliques of `graph` under `options`.
uint64_t CountMaximalBicliques(const BipartiteGraph& graph,
                               const Options& options);

/// Finds a biclique of `graph` maximizing |L| * |R| (the maximum edge
/// biclique) subject to `options.mbet.min_left` / `min_right`, using MBET
/// with branch-and-bound pruning (subtrees whose |L| * |R| upper bound
/// cannot beat the incumbent are skipped). Runs single-threaded — the
/// pruning watermark is shared mutable state. Yields an empty biclique
/// when no biclique satisfies the constraints. `options.algorithm` is
/// ignored (always MBET).
///
/// This is an **anytime** search under run control: if the run is
/// cancelled or hits a deadline/budget, `*best` is the best incumbent
/// found so far (`result->termination` says the search was truncated, so
/// the incumbent is a lower bound rather than a proven optimum).
util::Status FindMaximumBiclique(const BipartiteGraph& graph,
                                 const Options& options, Biclique* best,
                                 RunResult* result = nullptr);

/// Legacy shim: aborts on invalid options.
Biclique FindMaximumBiclique(const BipartiteGraph& graph,
                             const Options& options);

}  // namespace mbe

#endif  // PMBE_API_MBE_H_
