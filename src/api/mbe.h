#ifndef PMBE_API_MBE_H_
#define PMBE_API_MBE_H_

#include <string>

#include "api/engine.h"
#include "api/options.h"
#include "api/session.h"
#include "core/enum_stats.h"
#include "core/mbet.h"
#include "core/run_control.h"
#include "core/sink.h"
#include "graph/bipartite_graph.h"
#include "graph/ordering.h"
#include "parallel/thread_pool.h"
#include "util/status.h"

/// \file
/// The one-shot library facade: a single call that takes an input
/// bipartite graph, an options struct, and a sink, and runs the full
/// pipeline — preprocessing (side swap, left hub-first relabeling,
/// right-side ordering), algorithm selection, optional parallel fan-out —
/// while translating emitted bicliques back to the caller's original
/// vertex ids.
///
/// Quickstart (recoverable-error form):
/// ```
///   mbe::CollectSink sink;
///   mbe::Options options;                      // defaults: MBET, deg-asc
///   options.control.deadline_seconds = 10;     // optional run control
///   mbe::RunResult run;
///   mbe::util::Status s = mbe::Enumerate(graph, options, &sink, &run);
///   if (!s.ok()) { /* bad options, not a crash */ }
///   if (run.termination != mbe::Termination::kComplete) { /* truncated */ }
///   for (const mbe::Biclique& b : sink.TakeSorted()) { ... }
/// ```
///
/// The facade is a thin wrapper over the session-oriented API
/// (docs/SERVICE.md): each call builds an `mbe::Engine` (the preprocessed
/// graph) and runs one `mbe::Session` over it. Callers that enumerate the
/// *same graph* more than once — different thresholds, budgets, or
/// algorithms, or many concurrent queries — should hold the Engine and
/// create Sessions directly; the facade re-pays preprocessing on every
/// call.
///
/// Interrupted runs — cancellation, deadline, budget — are *not* errors:
/// they return OK with `RunResult::termination` describing why the run
/// stopped, and the sink holds the valid prefix of results emitted before
/// the stop.
///
/// The abort-on-error shims of the pre-session API remain available behind
/// `PMBE_ENABLE_DEPRECATED` (default on; configure with
/// `-DPMBE_ENABLE_DEPRECATED=OFF` to hard-remove them). They are marked
/// `[[deprecated]]` — prefer the `util::Status` overloads, which report
/// invalid input as a recoverable error.

/// Compile-time gate for the abort-on-error legacy shims. The build
/// defines it to 0 when the CMake option PMBE_ENABLE_DEPRECATED is OFF.
#ifndef PMBE_ENABLE_DEPRECATED
#define PMBE_ENABLE_DEPRECATED 1
#endif

namespace mbe {

/// Full configuration of a one-shot enumeration run: the flat union of
/// `GraphOptions` (preprocessing, baked into the Engine) and `RunOptions`
/// (per-query control), kept field-compatible with the pre-session API.
/// `graph_options()` / `run_options()` split it into the two halves the
/// session API consumes.
struct Options {
  Algorithm algorithm = Algorithm::kMbet;

  /// Right-side traversal order. kUnilateralAsc is the natural pairing for
  /// kOombeaLite; everything else defaults to degree-ascending.
  VertexOrder order = VertexOrder::kDegreeAsc;

  /// Relabel the left side hub-first (descending degree) so that local
  /// neighborhoods share prefixes in the trie. No effect on correctness.
  bool hub_first_left = true;

  /// Swap the sides when the right side is larger (the standard
  /// preprocessing in the MBE literature). Emitted bicliques are swapped
  /// back, so callers always see their original orientation.
  bool auto_swap_sides = true;

  /// Worker threads. >1 uses the per-vertex subtree decomposition, which
  /// is supported by every algorithm except kMineLmbc.
  unsigned threads = 1;
  Scheduling scheduling = Scheduling::kStealing;

  /// Maximum shards a heavy subtree is split into under kStealing (1
  /// disables subtree splitting; ignored by the other disciplines). See
  /// docs/PARALLELISM.md.
  uint32_t max_split = 8;

  /// Ablation switches forwarded to MBET (trie / aggregation / Q pruning),
  /// plus the size thresholds min_left/min_right.
  MbetOptions mbet;

  /// Workload-adaptive auto-tuning (core/tuner.h, docs/TUNING.md): pick
  /// `mbet.bitmap_density`, `mbet.batch_width`, and `max_split` from the
  /// engine's sampled graph profile instead of the fields above. Results
  /// are byte-identical either way; the decision is recorded in
  /// `RunResult::stats` (auto_tuned / tuned_*).
  bool auto_tune = false;

  /// When size thresholds are set (mbet.min_left/min_right > 1) and the
  /// algorithm is MBET/MBETM, peel the graph to its (min_left, min_right)-
  /// core before enumerating (graph/reduction.h). Exact: no qualifying
  /// maximal biclique is lost.
  bool core_reduce = true;

  /// Seed for randomized orders (VertexOrder::kRandom).
  uint64_t seed = 1;

  /// Run control: cooperative cancellation, wall-clock deadline, result /
  /// node budgets, and periodic progress reporting (core/run_control.h).
  /// Default-constructed control is inert and costs nothing.
  RunControl control;

  /// Hard cap, in bytes, on the enumeration memory this run accounts
  /// (scratch arenas, per-node level/trie/bitmap state, sink buffers) —
  /// docs/ROBUSTNESS.md. 0 = unlimited. Past 75% of the cap consumers
  /// degrade gracefully (sorted lists instead of bitmaps, no tries,
  /// smaller sink batches, no subtree splits) — slower, identical
  /// results; past the cap the run stops with
  /// Termination::kMemoryLimit and the sink holds a valid prefix.
  /// `RunResult::stats.peak_charged_bytes` never exceeds the cap. The
  /// budget is **per run** (each call charges its own
  /// `util::MemoryBudget`): concurrent capped runs do not interfere.
  uint64_t max_memory_bytes = 0;

  /// Worker watchdog stall bound in seconds (parallel runs only; 0 =
  /// off). A worker silent for this long — no task pickup, no steal
  /// round — stops the run with Termination::kInternal instead of
  /// hanging it. The bound is on the longest single task, so leave it
  /// off unless task durations are known (see docs/ROBUSTNESS.md).
  double watchdog_stall_seconds = 0;

  /// Durable checkpointing (docs/CHECKPOINT.md): a non-empty
  /// `checkpoint.path` persists the task frontier there periodically and
  /// at drain, `checkpoint.resume` picks a previous snapshot back up, and
  /// the shard fields restrict the process to one hash shard of the seed
  /// space. Requires kStealing and a parallel-capable algorithm.
  snapshot::CheckpointOptions checkpoint;

  /// The preprocessing half: what `Engine::Build` consumes. Core
  /// reduction is enabled only for the size-filtering MBET family, exactly
  /// as the one-shot pipeline always behaved.
  GraphOptions graph_options() const;

  /// The per-query half: what `Session` consumes.
  RunOptions run_options() const;

  /// Checks the options for internal consistency: thread count, parallel
  /// support of the chosen algorithm, size-threshold sanity, run-control
  /// sanity. OK options never make Enumerate abort.
  util::Status Validate() const;
};

/// Runs the configured enumeration of `graph` into `sink`, filling
/// `*result` (which may be null). Emitted bicliques use the caller's
/// original vertex ids and side orientation. Returns InvalidArgument —
/// without starting the run — when `sink` is null or `options.Validate()`
/// fails. Interrupted runs (see Options::control) return OK with
/// `result->termination` set.
///
/// Equivalent to `Engine::Build(graph, options.graph_options())` plus one
/// `Session(engine, options.run_options()).Run(sink, result)`.
util::Status Enumerate(const BipartiteGraph& graph, const Options& options,
                       ResultSink* sink, RunResult* result);

/// Convenience: counts the maximal bicliques of `graph` under `options`.
/// Aborts on invalid options (counting has no error channel).
uint64_t CountMaximalBicliques(const BipartiteGraph& graph,
                               const Options& options);

/// Finds a biclique of `graph` maximizing |L| * |R| (the maximum edge
/// biclique) subject to `options.mbet.min_left` / `min_right`, using MBET
/// with branch-and-bound pruning (subtrees whose |L| * |R| upper bound
/// cannot beat the incumbent are skipped). Runs single-threaded — the
/// pruning watermark is shared mutable state. Yields an empty biclique
/// when no biclique satisfies the constraints. `options.algorithm` is
/// ignored (always MBET).
///
/// This is an **anytime** search under run control: if the run is
/// cancelled or hits a deadline/budget, `*best` is the best incumbent
/// found so far (`result->termination` says the search was truncated, so
/// the incumbent is a lower bound rather than a proven optimum).
util::Status FindMaximumBiclique(const BipartiteGraph& graph,
                                 const Options& options, Biclique* best,
                                 RunResult* result = nullptr);

#if PMBE_ENABLE_DEPRECATED

/// Legacy shim: parses like the Status overload but aborts on unknown
/// names.
[[deprecated(
    "aborts on unknown names; use ParseAlgorithm(name, &algorithm), which "
    "returns util::Status")]]
Algorithm ParseAlgorithm(const std::string& name);

/// Legacy shim: like the Status overload but aborts on invalid options or
/// a null sink.
[[deprecated(
    "aborts on invalid options; use Enumerate(graph, options, sink, "
    "&result), which returns util::Status")]]
RunResult Enumerate(const BipartiteGraph& graph, const Options& options,
                    ResultSink* sink);

/// Legacy shim: aborts on invalid options.
[[deprecated(
    "aborts on invalid options; use FindMaximumBiclique(graph, options, "
    "&best, &result), which returns util::Status")]]
Biclique FindMaximumBiclique(const BipartiteGraph& graph,
                             const Options& options);

#endif  // PMBE_ENABLE_DEPRECATED

}  // namespace mbe

#endif  // PMBE_API_MBE_H_
