#ifndef PMBE_API_MBE_H_
#define PMBE_API_MBE_H_

#include <string>

#include "core/enum_stats.h"
#include "core/mbet.h"
#include "core/sink.h"
#include "graph/bipartite_graph.h"
#include "graph/ordering.h"
#include "parallel/thread_pool.h"

/// \file
/// The library facade: one call that takes an input bipartite graph, an
/// options struct, and a sink, and runs the full pipeline —
/// preprocessing (side swap, left hub-first relabeling, right-side
/// ordering), algorithm selection, optional parallel fan-out — while
/// translating emitted bicliques back to the caller's original vertex ids.
///
/// Quickstart:
/// ```
///   mbe::CollectSink sink;
///   mbe::Options options;                      // defaults: MBET, deg-asc
///   mbe::RunResult run = mbe::Enumerate(graph, options, &sink);
///   for (const mbe::Biclique& b : sink.TakeSorted()) { ... }
/// ```

namespace mbe {

/// Which enumeration algorithm to run.
enum class Algorithm {
  kMbet,        ///< prefix-tree enumerator (the paper's contribution)
  kMbetM,       ///< space-optimized MBET (no stored locals)
  kMineLmbc,    ///< textbook recursive baseline
  kMbea,        ///< MBEA (Q-set check, unsorted candidates)
  kImbea,       ///< iMBEA (Q-set check + candidate ordering)
  kOombeaLite,  ///< unilateral order + subtree-local iMBEA
};

/// Parses "mbet", "mbetm", "minelmbc", "mbea", "imbea", "oombea"; aborts on
/// unknown names.
Algorithm ParseAlgorithm(const std::string& name);

/// Stable display name of an algorithm.
const char* AlgorithmName(Algorithm algorithm);

/// Full configuration of an enumeration run.
struct Options {
  Algorithm algorithm = Algorithm::kMbet;

  /// Right-side traversal order. kUnilateralAsc is the natural pairing for
  /// kOombeaLite; everything else defaults to degree-ascending.
  VertexOrder order = VertexOrder::kDegreeAsc;

  /// Relabel the left side hub-first (descending degree) so that local
  /// neighborhoods share prefixes in the trie. No effect on correctness.
  bool hub_first_left = true;

  /// Swap the sides when the right side is larger (the standard
  /// preprocessing in the MBE literature). Emitted bicliques are swapped
  /// back, so callers always see their original orientation.
  bool auto_swap_sides = true;

  /// Worker threads. >1 uses the per-vertex subtree decomposition, which
  /// is supported by kMbet, kMbetM, kImbea and kOombeaLite.
  unsigned threads = 1;
  Scheduling scheduling = Scheduling::kDynamic;

  /// Ablation switches forwarded to MBET (trie / aggregation / Q pruning),
  /// plus the size thresholds min_left/min_right.
  MbetOptions mbet;

  /// When size thresholds are set (mbet.min_left/min_right > 1) and the
  /// algorithm is MBET/MBETM, peel the graph to its (min_left, min_right)-
  /// core before enumerating (graph/reduction.h). Exact: no qualifying
  /// maximal biclique is lost.
  bool core_reduce = true;

  /// Seed for randomized orders (VertexOrder::kRandom).
  uint64_t seed = 1;
};

/// Outcome of an Enumerate call.
struct RunResult {
  EnumStats stats;      ///< merged enumeration counters
  double seconds = 0;   ///< wall time of the enumeration phase (excludes
                        ///< graph preprocessing)
  double preprocess_seconds = 0;  ///< ordering/relabeling time
};

/// Runs the configured enumeration of `graph` into `sink`. Emitted
/// bicliques use the caller's original vertex ids and side orientation.
RunResult Enumerate(const BipartiteGraph& graph, const Options& options,
                    ResultSink* sink);

/// Convenience: counts the maximal bicliques of `graph` under `options`.
uint64_t CountMaximalBicliques(const BipartiteGraph& graph,
                               const Options& options);

/// Finds a biclique of `graph` maximizing |L| * |R| (the maximum edge
/// biclique) subject to `options.mbet.min_left` / `min_right`, using MBET
/// with branch-and-bound pruning (subtrees whose |L| * |R| upper bound
/// cannot beat the incumbent are skipped). Runs single-threaded — the
/// pruning watermark is shared mutable state. Returns an empty biclique
/// when no biclique satisfies the constraints. `options.algorithm` is
/// ignored (always MBET).
Biclique FindMaximumBiclique(const BipartiteGraph& graph,
                             const Options& options);

}  // namespace mbe

#endif  // PMBE_API_MBE_H_
