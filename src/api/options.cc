#include "api/options.h"

#include <cmath>

#include "parallel/work_stealing.h"

namespace mbe {

util::Status ParseAlgorithm(const std::string& name, Algorithm* algorithm) {
  PMBE_CHECK(algorithm != nullptr);
  if (name == "mbet") {
    *algorithm = Algorithm::kMbet;
  } else if (name == "mbetm") {
    *algorithm = Algorithm::kMbetM;
  } else if (name == "minelmbc") {
    *algorithm = Algorithm::kMineLmbc;
  } else if (name == "mbea") {
    *algorithm = Algorithm::kMbea;
  } else if (name == "imbea") {
    *algorithm = Algorithm::kImbea;
  } else if (name == "oombea") {
    *algorithm = Algorithm::kOombeaLite;
  } else if (name == "bbk") {
    *algorithm = Algorithm::kBbk;
  } else {
    return util::Status::InvalidArgument(
        "unknown algorithm '" + name +
        "' (expected mbet | mbetm | minelmbc | mbea | imbea | oombea | "
        "bbk)");
  }
  return util::Status::Ok();
}

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kMbet:
      return "MBET";
    case Algorithm::kMbetM:
      return "MBETM";
    case Algorithm::kMineLmbc:
      return "MineLMBC";
    case Algorithm::kMbea:
      return "MBEA";
    case Algorithm::kImbea:
      return "iMBEA";
    case Algorithm::kOombeaLite:
      return "ooMBEA-lite";
    case Algorithm::kBbk:
      return "BBK";
  }
  return "?";
}

bool SupportsParallel(Algorithm algorithm) {
  return algorithm == Algorithm::kMbet || algorithm == Algorithm::kMbetM ||
         algorithm == Algorithm::kMbea || algorithm == Algorithm::kImbea ||
         algorithm == Algorithm::kOombeaLite || algorithm == Algorithm::kBbk;
}

util::Status GraphOptions::Validate() const {
  if (min_left == 0 || min_right == 0) {
    return util::Status::InvalidArgument(
        "GraphOptions::min_left / min_right are minimum side sizes and must "
        "be >= 1 (got 0)");
  }
  return util::Status::Ok();
}

util::Status RunOptions::Validate() const {
  if (threads == 0) {
    return util::Status::InvalidArgument("threads must be >= 1 (got 0)");
  }
  if (threads > 1 && !SupportsParallel(algorithm)) {
    return util::Status::InvalidArgument(
        std::string("algorithm ") + AlgorithmName(algorithm) +
        " does not support threads > 1");
  }
  if (mbet.min_left == 0 || mbet.min_right == 0) {
    return util::Status::InvalidArgument(
        "mbet.min_left / mbet.min_right are minimum side sizes and must be "
        ">= 1 (got 0)");
  }
  if (mbet.trie_min_groups == 0) {
    return util::Status::InvalidArgument(
        "mbet.trie_min_groups must be >= 1 (1 builds a trie everywhere)");
  }
  if (!(mbet.bitmap_density >= 0.0)) {  // negatives and NaN
    return util::Status::InvalidArgument(
        "mbet.bitmap_density must be >= 0 (0 forces bitmaps, > 1 disables "
        "them)");
  }
  if (mbet.batch_width == 0 || mbet.batch_width > 64) {
    return util::Status::InvalidArgument(
        "mbet.batch_width must be in [1, 64] (1 disables the batched "
        "frontier)");
  }
  if (max_split == 0 || max_split > kMaxTaskShards) {
    return util::Status::InvalidArgument(
        "max_split must be in [1, " + std::to_string(kMaxTaskShards) +
        "] (1 disables subtree splitting)");
  }
  if (threads > 1 && mbet.best_edges != nullptr) {
    return util::Status::InvalidArgument(
        "mbet.best_edges (branch-and-bound watermark) is unsynchronized "
        "state and requires threads == 1");
  }
  if (!(control.deadline_seconds >= 0)) {
    return util::Status::InvalidArgument(
        "control.deadline_seconds must be >= 0 (0 disables the deadline)");
  }
  if (std::isnan(control.progress_every_s)) {
    return util::Status::InvalidArgument(
        "control.progress_every_s must not be NaN");
  }
  if (!(watchdog_stall_seconds >= 0)) {  // negatives and NaN
    return util::Status::InvalidArgument(
        "watchdog_stall_seconds must be >= 0 (0 disables the watchdog)");
  }
  const bool durable = checkpoint.enabled() || checkpoint.resume ||
                       checkpoint.shard_count != 1 ||
                       checkpoint.checkpoint_stop != nullptr;
  if (durable) {
    if (!SupportsParallel(algorithm)) {
      return util::Status::InvalidArgument(
          std::string("algorithm ") + AlgorithmName(algorithm) +
          " does not support the per-vertex subtree decomposition, which "
          "checkpointing is built on");
    }
    if (scheduling != Scheduling::kStealing) {
      return util::Status::InvalidArgument(
          "checkpointing requires scheduling == kStealing (the task "
          "frontier records the stealing scheduler's task lifecycle)");
    }
    if (!(checkpoint.every_s >= 0)) {  // negatives and NaN
      return util::Status::InvalidArgument(
          "checkpoint.every_s must be >= 0 (0 = final snapshot only)");
    }
  }
  if (checkpoint.shard_count == 0) {
    return util::Status::InvalidArgument(
        "checkpoint.shard_count must be >= 1");
  }
  if (checkpoint.shard_index >= checkpoint.shard_count) {
    return util::Status::InvalidArgument(
        "checkpoint.shard_index must be < checkpoint.shard_count");
  }
  if ((checkpoint.resume || checkpoint.shard_count > 1 ||
       checkpoint.checkpoint_stop != nullptr) &&
      !checkpoint.enabled()) {
    return util::Status::InvalidArgument(
        "checkpoint.resume, sharded runs, and the checkpoint-stop token "
        "all need checkpoint.path (resume reads it; a stopped or sharded "
        "run's state is only reachable through its snapshot file)");
  }
  return util::Status::Ok();
}

}  // namespace mbe
