#include "api/session.h"

#include <unistd.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "baselines/mbea.h"
#include "baselines/mine_lmbc.h"
#include "baselines/oombea_lite.h"
#include "core/mbet.h"
#include "engines/bbk.h"
#include "util/fault.h"
#include "util/simd.h"

namespace mbe {

namespace {

/// Maps emitted bicliques from preprocessed ids back to the caller's
/// original ids (and original side orientation), re-sorting each side. The
/// maps are views into the session's Engine, which the session keeps
/// alive. Stateless per emission, hence safe for concurrent Emit calls.
class TranslatingSink : public ResultSink {
 public:
  /// `left_new_to_old` / `right_new_to_old` are in the *preprocessed*
  /// orientation; `swapped` says the preprocessed left side is the
  /// caller's right side.
  TranslatingSink(ResultSink* inner, std::span<const VertexId> left_new_to_old,
                  std::span<const VertexId> right_new_to_old, bool swapped)
      : inner_(inner),
        left_map_(left_new_to_old),
        right_map_(right_new_to_old),
        swapped_(swapped) {}

  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    std::vector<VertexId> l(left.size()), r(right.size());
    for (size_t i = 0; i < left.size(); ++i) l[i] = left_map_[left[i]];
    for (size_t i = 0; i < right.size(); ++i) r[i] = right_map_[right[i]];
    std::sort(l.begin(), l.end());
    std::sort(r.begin(), r.end());
    if (swapped_) {
      inner_->Emit(r, l);
    } else {
      inner_->Emit(l, r);
    }
  }

  void EmitBatch(const BicliqueBatch& batch) override {
    // Translate into a stack-local batch (this sink is shared by all
    // workers, so no member scratch) and forward in one call, preserving
    // the one-lock amortization of the buffered upstream.
    BicliqueBatch translated;
    std::vector<VertexId> l, r;
    for (size_t i = 0; i < batch.size(); ++i) {
      const auto left = batch.left(i);
      const auto right = batch.right(i);
      l.resize(left.size());
      r.resize(right.size());
      for (size_t j = 0; j < left.size(); ++j) l[j] = left_map_[left[j]];
      for (size_t j = 0; j < right.size(); ++j) r[j] = right_map_[right[j]];
      std::sort(l.begin(), l.end());
      std::sort(r.begin(), r.end());
      if (swapped_) {
        translated.Append(r, l);
      } else {
        translated.Append(l, r);
      }
    }
    inner_->EmitBatch(translated);
  }

  bool ShouldStop() const override { return inner_->ShouldStop(); }

 private:
  ResultSink* inner_;
  std::span<const VertexId> left_map_;
  std::span<const VertexId> right_map_;
  bool swapped_;
};

/// SubtreeWorker adapters. Each worker engine polls the run's shared
/// controller (may be null), so any worker tripping a limit stops all
/// workers *of that session* — and nothing else.
class MbetWorker : public SubtreeWorker {
 public:
  MbetWorker(const BipartiteGraph& graph, const MbetOptions& options,
             RunController* controller)
      : engine_(graph, options) {
    engine_.SetRunController(controller);
  }
  void EnumerateSubtree(VertexId v, ResultSink* sink) override {
    engine_.EnumerateSubtree(v, sink);
  }
  uint32_t SplitHint(VertexId v, uint32_t max_shards,
                     uint64_t min_work) override {
    return engine_.SplitHint(v, max_shards, min_work);
  }
  void EnumerateShard(VertexId v, uint32_t shard, uint32_t num_shards,
                      ResultSink* sink) override {
    engine_.EnumerateShard(v, shard, num_shards, sink);
  }
  EnumStats stats() const override { return engine_.stats(); }

 private:
  MbetEnumerator engine_;
};

/// Subtree worker over the MBEA family: plain MBEA (improved = false) and
/// iMBEA (improved = true) share the enumerator and its shard support.
class MbeaFamilyWorker : public SubtreeWorker {
 public:
  MbeaFamilyWorker(const BipartiteGraph& graph, const MbeaOptions& options,
                   RunController* controller)
      : engine_(graph, options) {
    engine_.SetRunController(controller);
  }
  void EnumerateSubtree(VertexId v, ResultSink* sink) override {
    engine_.EnumerateSubtree(v, sink);
  }
  uint32_t SplitHint(VertexId v, uint32_t max_shards,
                     uint64_t min_work) override {
    return engine_.SplitHint(v, max_shards, min_work);
  }
  void EnumerateShard(VertexId v, uint32_t shard, uint32_t num_shards,
                      ResultSink* sink) override {
    engine_.EnumerateShard(v, shard, num_shards, sink);
  }
  EnumStats stats() const override { return engine_.stats(); }

 private:
  MbeaEnumerator engine_;
};

/// Subtree worker over BBK; the engine's subtree decomposition and
/// split-at-pickup sharding mirror the MBEA family's contract.
class BbkWorker : public SubtreeWorker {
 public:
  BbkWorker(const BipartiteGraph& graph, const BbkOptions& options,
            RunController* controller)
      : engine_(graph, options) {
    engine_.SetRunController(controller);
  }
  void EnumerateSubtree(VertexId v, ResultSink* sink) override {
    engine_.EnumerateSubtree(v, sink);
  }
  uint32_t SplitHint(VertexId v, uint32_t max_shards,
                     uint64_t min_work) override {
    return engine_.SplitHint(v, max_shards, min_work);
  }
  void EnumerateShard(VertexId v, uint32_t shard, uint32_t num_shards,
                      ResultSink* sink) override {
    engine_.EnumerateShard(v, shard, num_shards, sink);
  }
  EnumStats stats() const override { return engine_.stats(); }

 private:
  BbkEnumerator engine_;
};

/// Adapter for the algorithms without a subtree decomposition: the whole
/// enumeration is one monolithic task (Session::monolithic()), executed as
/// "subtree 0".
template <typename Enumerator>
class WholeGraphWorker : public SubtreeWorker {
 public:
  template <typename... Args>
  explicit WholeGraphWorker(RunController* controller, Args&&... args)
      : engine_(std::forward<Args>(args)...) {
    engine_.SetRunController(controller);
  }
  void EnumerateSubtree(VertexId /*v*/, ResultSink* sink) override {
    engine_.EnumerateAll(sink);
  }
  EnumStats stats() const override { return engine_.stats(); }

 private:
  Enumerator engine_;
};

}  // namespace

Session::Session(std::shared_ptr<const Engine> engine, RunOptions options,
                 uint64_t id)
    : id_(id), engine_(std::move(engine)), options_(std::move(options)) {
  budget_.set_session_id(id_);
}

Session::~Session() = default;

util::Status Session::ValidateAgainstEngine() const {
  if (engine_ == nullptr) {
    return util::Status::InvalidArgument("engine must not be null");
  }
  if (engine_->reduced_min_left() > 1 || engine_->reduced_min_right() > 1) {
    const bool mbet_family = options_.algorithm == Algorithm::kMbet ||
                             options_.algorithm == Algorithm::kMbetM;
    if (!mbet_family) {
      return util::Status::InvalidArgument(
          std::string("engine was core-reduced to (") +
          std::to_string(engine_->reduced_min_left()) + ", " +
          std::to_string(engine_->reduced_min_right()) +
          ")-core; only the size-filtering MBET family can run on it (got " +
          AlgorithmName(options_.algorithm) + ")");
    }
    if (options_.mbet.min_left < engine_->reduced_min_left() ||
        options_.mbet.min_right < engine_->reduced_min_right()) {
      return util::Status::InvalidArgument(
          "session thresholds (" + std::to_string(options_.mbet.min_left) +
          ", " + std::to_string(options_.mbet.min_right) +
          ") are looser than the engine's baked (p, q)-core reduction (" +
          std::to_string(engine_->reduced_min_left()) + ", " +
          std::to_string(engine_->reduced_min_right()) +
          "); bicliques below the baked thresholds are gone from the "
          "reduced graph");
    }
  }
  return util::Status::Ok();
}

util::Status Session::PrepareImpl(ResultSink* sink, bool force_controller) {
  if (prepared_ || finished_) {
    return util::Status::InvalidArgument(
        "a Session runs once; build a new Session for another query");
  }
  if (sink == nullptr) {
    return util::Status::InvalidArgument("sink must not be null");
  }
  PMBE_RETURN_IF_ERROR(options_.Validate());
  PMBE_RETURN_IF_ERROR(ValidateAgainstEngine());

  // Thresholds are stated in the caller's orientation; the enumeration
  // runs in the engine's (possibly swapped) orientation.
  effective_mbet_ = options_.mbet;
  if (engine_->swapped()) {
    std::swap(effective_mbet_.min_left, effective_mbet_.min_right);
  }
  effective_mbet_.recompute_locals = options_.algorithm == Algorithm::kMbetM;
  effective_max_split_ = options_.max_split;
  effective_algorithm_ = options_.algorithm;

  // Workload-adaptive tuning: map the engine's build-time graph profile
  // through the decision table and override the *effective* knobs. The
  // caller's RunOptions stay untouched; the decision is recorded in the
  // run's stats so `--stats` / bench JSON can show what actually ran.
  // Every decision preserves the enumerated result set — the knobs trade
  // speed and memory, and the engine pick below swaps between two engines
  // proven set-identical by the digest matrix.
  if (options_.auto_tune) {
    const TunerDecision tuned = Tune(engine_->profile());
    effective_mbet_.bitmap_density = tuned.bitmap_density;
    effective_mbet_.batch_width = tuned.batch_width;
    effective_max_split_ = tuned.max_split;
    // Engine selection is honored only where MBET and BBK are
    // interchangeable: a plain enumeration query (no size thresholds, no
    // baked core reduction, no branch-and-bound watermark) whose algorithm
    // is already one of the two. A query that pinned a baseline engine
    // (MBEA/iMBEA/...) keeps it — only its knobs are tuned. The pick is a
    // pure function of (graph, options), so a resumed checkpoint and the
    // original run derive the same engine.
    const bool engine_selectable =
        (options_.algorithm == Algorithm::kMbet ||
         options_.algorithm == Algorithm::kBbk) &&
        effective_mbet_.min_left == 1 && effective_mbet_.min_right == 1 &&
        engine_->reduced_min_left() == 1 &&
        engine_->reduced_min_right() == 1 &&
        effective_mbet_.best_edges == nullptr;
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (engine_selectable && tuned.engine != TunerEngine::kNone) {
      effective_algorithm_ = tuned.engine == TunerEngine::kBbk
                                 ? Algorithm::kBbk
                                 : Algorithm::kMbet;
      stats_.tuned_algorithm = static_cast<uint64_t>(tuned.engine);
    }
    stats_.auto_tuned = 1;
    stats_.tuned_batch_width = tuned.batch_width;
    stats_.tuned_max_split = tuned.max_split;
    stats_.tuned_bitmap_density_x1000 =
        static_cast<uint64_t>(tuned.bitmap_density * 1000.0);
    stats_.tuner_rule = static_cast<uint64_t>(tuned.rule);
  }
  monolithic_ = !SupportsParallel(effective_algorithm_);

  // Memory budget: the session's own instance. With max_memory_bytes == 0
  // the cap and pressure thresholds stay off and only the (cheap)
  // accounting runs, so results are identical.
  budget_.BeginRun(options_.max_memory_bytes);
  degradations_before_ = budget_.degradations();
  faults_before_ = util::FaultRegistry::Global().faults_injected();

  // Kernel-call attribution: the counters are process-wide (per-thread
  // blocks summed), so diff a snapshot around the run. Concurrent sessions
  // in one process bleed into each other's deltas; the counters are
  // diagnostics, not invariants.
  const simd::KernelCallCounters kernel_before = simd::SnapshotKernelCalls();
  kernel_intersect_before_ = kernel_before.intersect;
  kernel_difference_before_ = kernel_before.difference;
  kernel_mask_before_ = kernel_before.mask;
  kernel_word_before_ = kernel_before.word;
  kernel_batch_before_ = kernel_before.batch;

  translator_ = std::make_unique<TranslatingSink>(
      sink, engine_->left_map(), engine_->right_map(), engine_->swapped());

  // Run control: one controller shared by every worker of this session,
  // spliced into the sink chain so emissions count against the result
  // budget and the stop flag is visible to all existing ShouldStop polls.
  // Inert control skips the machinery entirely — but a memory cap, a
  // watchdog, an armed fault registry, a pre-issued Cancel, or a
  // cooperative scheduler needs the controller too (it is what converts
  // exhaustion/failure/cancellation into a typed termination).
  const bool wants_controller =
      force_controller || options_.control.active() ||
      options_.max_memory_bytes > 0 || options_.watchdog_stall_seconds > 0 ||
      options_.checkpoint.enabled() ||
      util::FaultRegistry::Global().armed() ||
      pre_cancelled_.load(std::memory_order_acquire);
  if (wants_controller) {
    controller_.emplace(options_.control);
    controller_->AttachMemoryBudget(&budget_);
    controlled_.emplace(translator_.get(), &*controller_);
    run_sink_ = &*controlled_;
    live_controller_.store(&*controller_, std::memory_order_release);
    // Close the Cancel/Prepare race: a Cancel that ran between the
    // wants_controller read and the publication above set the latch but
    // missed the controller.
    if (pre_cancelled_.load(std::memory_order_acquire)) {
      controller_->RequestStop(Termination::kCancelled);
    }
  } else {
    run_sink_ = translator_.get();
  }

  prepared_ = true;
  timer_.Reset();
  return util::Status::Ok();
}

util::Status Session::Prepare(ResultSink* sink) {
  return PrepareImpl(sink, /*force_controller=*/true);
}

void Session::Cancel() {
  pre_cancelled_.store(true, std::memory_order_release);
  if (RunController* ctrl =
          live_controller_.load(std::memory_order_acquire)) {
    ctrl->RequestStop(Termination::kCancelled);
  }
}

size_t Session::task_count() const {
  if (monolithic_) return 1;
  return engine_->graph().num_right();
}

std::unique_ptr<SubtreeWorker> Session::MakeWorker() const {
  RunController* ctrl =
      controller_.has_value() ? const_cast<RunController*>(&*controller_)
                              : nullptr;
  const BipartiteGraph& work = engine_->graph();
  switch (effective_algorithm_) {
    case Algorithm::kMbet:
    case Algorithm::kMbetM:
      return std::make_unique<MbetWorker>(work, effective_mbet_, ctrl);
    case Algorithm::kImbea:
    case Algorithm::kOombeaLite:
      // The subtree decomposition runs iMBEA workers for both (the
      // unilateral-order specialization is whole-graph only) — same as the
      // parallel driver always did.
      return std::make_unique<MbeaFamilyWorker>(
          work, MbeaOptions{.improved = true}, ctrl);
    case Algorithm::kMbea:
      return std::make_unique<MbeaFamilyWorker>(
          work, MbeaOptions{.improved = false}, ctrl);
    case Algorithm::kBbk:
      return std::make_unique<BbkWorker>(
          work, BbkOptions{.bitmap_density = effective_mbet_.bitmap_density},
          ctrl);
    case Algorithm::kMineLmbc:
      return std::make_unique<WholeGraphWorker<MineLmbcEnumerator>>(ctrl,
                                                                    work);
  }
  return nullptr;
}

ResultSink* Session::run_sink() { return run_sink_; }

RunController* Session::controller() {
  return controller_.has_value() ? &*controller_ : nullptr;
}

void Session::AddWorkerStats(const EnumStats& stats) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.MergeFrom(stats);
}

void Session::Finish(RunResult* result) {
  if (!prepared_ || finished_) return;
  finished_ = true;

  RunResult out;
  out.session_id = id_;
  out.seconds = timer_.Seconds();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out.stats = stats_;
  }
  const simd::KernelCallCounters after = simd::SnapshotKernelCalls();
  out.stats.kernel_dispatch = static_cast<uint64_t>(simd::ActiveLevel());
  out.stats.simd_intersect_calls = after.intersect - kernel_intersect_before_;
  out.stats.simd_difference_calls =
      after.difference - kernel_difference_before_;
  out.stats.simd_mask_calls = after.mask - kernel_mask_before_;
  out.stats.simd_word_calls = after.word - kernel_word_before_;
  out.stats.simd_batch_calls = after.batch - kernel_batch_before_;

  // Robustness counters: read the budget's peak before EndRun re-baselines
  // it. Degradations diff against this session's budget — per-session by
  // construction; faults diff the process-wide registry (documented bleed
  // under concurrent injection, diagnostics only).
  out.stats.peak_charged_bytes = budget_.peak();
  out.stats.degradations = budget_.degradations() - degradations_before_;
  out.stats.faults_injected =
      util::FaultRegistry::Global().faults_injected() - faults_before_;
  if (controller_.has_value()) {
    // The memory latch may have tripped after the last worker checkpoint;
    // fold it in so short runs still report kMemoryLimit.
    if (budget_.exhausted()) {
      controller_->RequestStop(Termination::kMemoryLimit);
    }
    out.termination = controller_->termination();
    out.results_emitted = controller_->results();
    out.message = controller_->message();
  } else {
    out.termination = Termination::kComplete;
    out.results_emitted = out.stats.maximal;
  }
  out.frontier_digest = frontier_digest_;
  out.frontier_completed = frontier_completed_;
  out.frontier_pending = frontier_pending_;
  budget_.EndRun();
  if (result != nullptr) *result = std::move(out);
}

util::Status Session::Run(ResultSink* sink, RunResult* result) {
  // Bind the session budget to this thread for the whole run — including
  // the destruction of enumerator scratch and buffers, so charges and
  // releases pair under the same budget.
  util::ScopedBudgetBinding binding(&budget_);
  PMBE_RETURN_IF_ERROR(PrepareImpl(sink, /*force_controller=*/false));
  RunController* ctrl = controller();
  const BipartiteGraph& work = engine_->graph();

  // Durable runs are frontier-driven (docs/CHECKPOINT.md): build the task
  // frontier before enumeration, either restoring a previous snapshot or
  // seeding this process's hash shard of the right side. Setup failures
  // (unreadable, corrupt, or mismatched snapshot) surface as a Status
  // before any worker starts.
  std::unique_ptr<snapshot::TaskFrontier> frontier;
  if (options_.checkpoint.enabled()) {
    frontier = std::make_unique<snapshot::TaskFrontier>(
        static_cast<uint8_t>(effective_algorithm_),
        options_.checkpoint.shard_index, options_.checkpoint.shard_count,
        work);
    util::Status seeded = util::Status::Ok();
    if (options_.checkpoint.resume) {
      util::StatusOr<snapshot::FrontierSnapshot> snap =
          snapshot::ReadSnapshotFile(options_.checkpoint.path);
      seeded = snap.ok() ? frontier->Restore(snap.value()) : snap.status();
    } else if (::access(options_.checkpoint.path.c_str(), F_OK) == 0) {
      // A fresh durable run must never clobber a resumable snapshot: the
      // first periodic write would silently destroy the previous run's
      // state. Forgetting checkpoint.resume is the common way to get
      // here, so refuse before any worker starts.
      seeded = util::Status::InvalidArgument(
          "checkpoint.path '" + options_.checkpoint.path +
          "' already exists; set checkpoint.resume (--resume) to continue "
          "that run, or remove the file to start fresh");
    } else {
      for (uint64_t v = 0; v < work.num_right(); ++v) {
        if (options_.checkpoint.shard_count > 1 &&
            snapshot::ShardOfSeed(static_cast<VertexId>(v),
                                  options_.checkpoint.shard_count) !=
                options_.checkpoint.shard_index) {
          continue;
        }
        frontier->AddPending(EncodeTask(
            {.v = static_cast<VertexId>(v), .shard = 0, .num_shards = 1}));
      }
    }
    if (!seeded.ok()) {
      finished_ = true;
      budget_.EndRun();
      return seeded;
    }
  }

  auto run_enumeration = [&]() {
    // Durable runs always go through the parallel driver, even with one
    // thread: the frontier bookkeeping and the checkpointer live there.
    if (options_.threads > 1 || frontier != nullptr) {
      ParallelOptions popts;
      popts.threads = options_.threads;
      popts.scheduling = options_.scheduling;
      popts.controller = ctrl;
      popts.budget = &budget_;
      popts.max_split = effective_max_split_;
      popts.watchdog_stall_seconds = options_.watchdog_stall_seconds;
      popts.frontier = frontier.get();
      popts.checkpoint = options_.checkpoint;
      WorkerFactory factory = [this]() { return MakeWorker(); };
      EnumStats merged = ParallelEnumerate(work, factory, popts, run_sink_);
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.MergeFrom(merged);
      return;
    }
    switch (effective_algorithm_) {
      case Algorithm::kMbet:
      case Algorithm::kMbetM: {
        MbetEnumerator engine(work, effective_mbet_);
        engine.SetRunController(ctrl);
        engine.EnumerateAll(run_sink_);
        AddWorkerStats(engine.stats());
        break;
      }
      case Algorithm::kMineLmbc: {
        MineLmbcEnumerator engine(work);
        engine.SetRunController(ctrl);
        engine.EnumerateAll(run_sink_);
        AddWorkerStats(engine.stats());
        break;
      }
      case Algorithm::kMbea: {
        MbeaEnumerator engine(work, MbeaOptions{.improved = false});
        engine.SetRunController(ctrl);
        engine.EnumerateAll(run_sink_);
        AddWorkerStats(engine.stats());
        break;
      }
      case Algorithm::kImbea: {
        MbeaEnumerator engine(work, MbeaOptions{.improved = true});
        engine.SetRunController(ctrl);
        engine.EnumerateAll(run_sink_);
        AddWorkerStats(engine.stats());
        break;
      }
      case Algorithm::kOombeaLite: {
        OombeaLiteEnumerator engine(work);
        engine.SetRunController(ctrl);
        engine.EnumerateAll(run_sink_);
        AddWorkerStats(engine.stats());
        break;
      }
      case Algorithm::kBbk: {
        BbkEnumerator engine(
            work,
            BbkOptions{.bitmap_density = effective_mbet_.bitmap_density});
        engine.SetRunController(ctrl);
        engine.EnumerateAll(run_sink_);
        AddWorkerStats(engine.stats());
        break;
      }
    }
  };
  // Containment: an exception escaping the engines (a throwing user sink
  // in a single-thread run, or a parallel failure the driver rethrew for
  // lack of a controller) is a component failure, not a crash. With a
  // controller it becomes Termination::kInternal and the sink keeps its
  // valid prefix; without one it is reported as a kInternal Status.
  try {
    run_enumeration();
  } catch (const std::exception& e) {
    if (ctrl == nullptr) {
      finished_ = true;
      budget_.EndRun();
      return util::Status::Internal(std::string("enumeration failed: ") +
                                    e.what());
    }
    ctrl->ReportInternal(e.what());
  } catch (...) {
    if (ctrl == nullptr) {
      finished_ = true;
      budget_.EndRun();
      return util::Status::Internal("enumeration failed: unknown exception");
    }
    ctrl->ReportInternal("unknown exception");
  }
  if (frontier != nullptr) {
    frontier_digest_ = frontier->MergedDigest().Value();
    frontier_completed_ = frontier->completed_count();
    frontier_pending_ = frontier->pending_count();
  }
  Finish(result);
  return util::Status::Ok();
}

}  // namespace mbe
