#ifndef PMBE_API_SESSION_H_
#define PMBE_API_SESSION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "api/engine.h"
#include "api/options.h"
#include "core/run_control.h"
#include "core/sink.h"
#include "parallel/parallel_mbe.h"
#include "util/memory.h"

/// \file
/// `mbe::Session` — one enumeration query over a shared `mbe::Engine`
/// (docs/SERVICE.md).
///
/// A session owns everything that is per-query: the `RunOptions`, a
/// cancellation handle, a `RunController` (deadline / result / node
/// budgets), its **own `util::MemoryBudget` instance** (so one tenant
/// hitting its memory cap degrades and stops only its own run), and the
/// sink chain that translates emitted bicliques back to original ids and
/// counts them against the result budget. Any number of sessions run
/// concurrently over one engine.
///
/// Two execution modes:
///  * `Run(sink)` — standalone: the session drives the enumeration itself,
///    spawning `options.threads` workers through the parallel driver (or
///    running inline when threads == 1). This is what the one-shot
///    `mbe::Enumerate` facade wraps.
///  * cooperative — a shared scheduler (serve/session_pool.h) calls
///    `Prepare()`, executes the session's subtree tasks on its own
///    workers (`MakeWorker` / `run_sink`), and calls `Finish()`. The
///    session still owns control, budget, and accounting; only the
///    threads are shared.

namespace mbe {

/// Outcome of an enumeration run.
struct RunResult {
  EnumStats stats;      ///< merged enumeration counters
  double seconds = 0;   ///< wall time of the enumeration phase (excludes
                        ///< graph preprocessing)
  double preprocess_seconds = 0;  ///< ordering/relabeling time (engine
                                  ///< build; 0 when the engine was reused)

  /// Why the run stopped. Anything other than kComplete means the sink
  /// holds a valid prefix of the full result set (every emitted biclique
  /// is maximal; some maximal bicliques may be missing).
  Termination termination = Termination::kComplete;

  /// Bicliques emitted to the caller's sink (equals stats.maximal except
  /// when a result budget dropped racing emissions in a parallel run).
  uint64_t results_emitted = 0;

  /// Diagnostic for Termination::kInternal: what failed (the first
  /// contained exception's message, or the watchdog's report). Empty
  /// otherwise.
  std::string message;

  /// Id of the session that produced this result (0 for one-shot facade
  /// runs).
  uint64_t session_id = 0;

  /// Durable-run accounting (checkpointing runs only; all zero otherwise).
  /// `frontier_digest` folds the completed-task result digests
  /// (snapshot/frontier.h TaskDigest::Value): independent of threads,
  /// scheduling, and split structure, so a resumed run and an
  /// uninterrupted run that completed the same enumeration report the
  /// same digest. `frontier_pending` > 0 means the run stopped early and
  /// the snapshot file resumes it.
  uint64_t frontier_digest = 0;
  uint64_t frontier_completed = 0;
  uint64_t frontier_pending = 0;

  /// Convenience: did the run enumerate the complete result set?
  bool complete() const { return termination == Termination::kComplete; }
};

class Session {
 public:
  /// Binds the session to `engine` with `options`. `id` tags the session's
  /// budget, stats, and result for multi-tenant accounting.
  Session(std::shared_ptr<const Engine> engine, RunOptions options,
          uint64_t id = 0);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Runs the enumeration into `sink`, blocking until it completes or a
  /// control trips, filling `*result` (which may be null). Returns
  /// InvalidArgument — without starting — when `sink` is null, the options
  /// fail Validate(), or the query is looser than the engine's baked core
  /// reduction. Interrupted runs are OK with `result->termination` set.
  /// A session runs once; a second Run returns FailedPrecondition-style
  /// InvalidArgument.
  util::Status Run(ResultSink* sink, RunResult* result = nullptr);

  /// Requests cooperative cancellation. Thread-safe, callable at any time
  /// from any thread (including before Run); the run stops at the next
  /// poll with Termination::kCancelled.
  void Cancel();

  uint64_t id() const { return id_; }
  const Engine& engine() const { return *engine_; }
  const RunOptions& options() const { return options_; }

  /// The session's private memory budget (serve-side accounting reads
  /// charged()/peak() live).
  util::MemoryBudget& budget() { return budget_; }

  // --- Cooperative execution (shared scheduler) --------------------------
  // The scheduler calls Prepare once, then executes `task_count()` subtree
  // tasks through workers it creates with MakeWorker (one per scheduler
  // thread, reused across this session's tasks), emitting into run_sink().
  // Every worker's allocations must happen under a ScopedBudgetBinding of
  // this session's budget(). After the last task retires the scheduler
  // reports each worker's stats() via AddWorkerStats and calls Finish.

  /// Validates and builds the run state (controller, budget, sink chain).
  /// Cooperative mode always creates a controller, so cancellation,
  /// deadline, memory containment, and exception containment work per
  /// session even with inert RunControl.
  util::Status Prepare(ResultSink* sink);

  /// Subtree tasks of this run: one per right vertex of the engine graph
  /// for subtree-decomposable algorithms, 1 (whole-graph) otherwise.
  size_t task_count() const;

  /// True when task v is the whole graph rather than one subtree (non
  /// subtree-decomposable algorithm; the scheduler must not split it).
  bool monolithic() const { return monolithic_; }

  /// Fresh single-threaded worker over the shared engine graph, attached
  /// to this session's controller. Thread-compatible: one per scheduler
  /// thread.
  std::unique_ptr<SubtreeWorker> MakeWorker() const;

  /// The session's sink chain (translation + run control). Thread-safe.
  ResultSink* run_sink();

  /// The session's controller (valid after Prepare until destruction).
  RunController* controller();

  /// Folds one worker's counters into the session result (thread-safe).
  void AddWorkerStats(const EnumStats& stats);

  /// Finalizes accounting (termination, budget peak, wall time) into
  /// `*result` (may be null). Call exactly once, after all tasks retired
  /// and all worker stats were added.
  void Finish(RunResult* result);

 private:
  util::Status ValidateAgainstEngine() const;

  /// Shared Prepare body. Standalone Run keeps the legacy
  /// controller-on-demand behavior (an uncontrolled run reports a throwing
  /// sink as an Internal *status*); cooperative callers force the
  /// controller.
  util::Status PrepareImpl(ResultSink* sink, bool force_controller);

  const uint64_t id_;
  std::shared_ptr<const Engine> engine_;
  RunOptions options_;

  util::MemoryBudget budget_;

  /// Cancel-before-Run latch and the live controller for Cancel().
  std::atomic<bool> pre_cancelled_{false};
  std::atomic<RunController*> live_controller_{nullptr};

  /// Run state between Prepare and Finish.
  bool prepared_ = false;
  bool finished_ = false;
  bool monolithic_ = false;
  std::optional<RunController> controller_;
  std::unique_ptr<ResultSink> translator_;
  std::optional<ControlledSink> controlled_;
  ResultSink* run_sink_ = nullptr;
  MbetOptions effective_mbet_;  ///< thresholds swapped into engine space
  uint32_t effective_max_split_ = 8;  ///< max_split, possibly auto-tuned
  /// The engine that actually runs. Equals options_.algorithm except when
  /// auto_tune's engine recommendation was honored (MBET ↔ BBK on
  /// plain-enumeration queries; see PrepareImpl). Drives MakeWorker, the
  /// single-threaded dispatch, and the durable frontier's algorithm tag —
  /// deterministic per (graph, options), so a resumed checkpoint re-derives
  /// the same engine.
  Algorithm effective_algorithm_ = Algorithm::kMbet;

  /// Accounting snapshots taken in Prepare, diffed in Finish.
  uint64_t degradations_before_ = 0;
  uint64_t faults_before_ = 0;
  uint64_t kernel_intersect_before_ = 0;
  uint64_t kernel_difference_before_ = 0;
  uint64_t kernel_mask_before_ = 0;
  uint64_t kernel_word_before_ = 0;
  uint64_t kernel_batch_before_ = 0;

  /// Frontier accounting of a durable standalone Run, copied into the
  /// RunResult by Finish (zero for volatile runs).
  uint64_t frontier_digest_ = 0;
  uint64_t frontier_completed_ = 0;
  uint64_t frontier_pending_ = 0;

  /// Merged worker counters (guarded by stats_mu_).
  std::mutex stats_mu_;
  EnumStats stats_;

  util::WallTimer timer_;
};

}  // namespace mbe

#endif  // PMBE_API_SESSION_H_
