#include "api/engine.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "graph/ordering.h"
#include "graph/reduction.h"
#include "util/timer.h"

namespace mbe {

namespace {

std::vector<VertexId> IdentityPerm(size_t n) {
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  return perm;
}

// Hub-first (descending degree) permutation of the left side: new id i is
// old id perm[i].
std::vector<VertexId> HubFirstLeftPerm(const BipartiteGraph& graph) {
  std::vector<VertexId> perm = IdentityPerm(graph.num_left());
  std::stable_sort(perm.begin(), perm.end(), [&](VertexId a, VertexId b) {
    const size_t da = graph.LeftDegree(a);
    const size_t db = graph.LeftDegree(b);
    if (da != db) return da > db;
    return a < b;
  });
  return perm;
}

}  // namespace

util::StatusOr<std::shared_ptr<const Engine>> Engine::Build(
    const BipartiteGraph& graph, const GraphOptions& options) {
  PMBE_RETURN_IF_ERROR(options.Validate());
  util::WallTimer timer;
  // shared_ptr<Engine> first, const-qualified on return: Build is the only
  // writer, and it publishes a fully-constructed immutable object.
  std::shared_ptr<Engine> engine(new Engine());
  engine->options_ = options;
  engine->original_num_left_ = graph.num_left();
  engine->original_num_right_ = graph.num_right();

  BipartiteGraph work = graph;
  const bool swapped =
      options.auto_swap_sides && work.num_right() > work.num_left();
  // Thresholds are stated in the caller's orientation; the enumeration
  // runs in the (possibly swapped) preprocessed orientation.
  uint32_t min_left = options.min_left;
  uint32_t min_right = options.min_right;
  if (swapped) {
    work = work.Swapped();
    std::swap(min_left, min_right);
  }

  // Optional (p, q)-core reduction for size-constrained engines.
  std::vector<VertexId> left_base = IdentityPerm(work.num_left());
  std::vector<VertexId> right_base = IdentityPerm(work.num_right());
  if (options.core_reduce && (min_left > 1 || min_right > 1)) {
    CoreReduction reduced = PqCoreReduce(work, min_left, min_right);
    work = std::move(reduced.graph);
    left_base = std::move(reduced.left_old);
    right_base = std::move(reduced.right_old);
    engine->reduced_min_left_ = options.min_left;
    engine->reduced_min_right_ = options.min_right;
  }

  std::vector<VertexId> left_perm = IdentityPerm(work.num_left());
  if (options.hub_first_left && work.num_left() > 0) {
    left_perm = HubFirstLeftPerm(work);
    // Relabel left = swap, relabel right, swap back.
    work = work.Swapped().RelabelRight(left_perm).Swapped();
  }

  std::vector<VertexId> right_perm = IdentityPerm(work.num_right());
  if (options.order != VertexOrder::kNone && work.num_right() > 0) {
    right_perm = MakeOrder(work, options.order, options.seed);
    work = work.RelabelRight(right_perm);
  }

  // Compose the relabelings with the reduction maps (new -> old).
  engine->left_map_.resize(work.num_left());
  for (size_t i = 0; i < engine->left_map_.size(); ++i) {
    engine->left_map_[i] = left_base[left_perm[i]];
  }
  engine->right_map_.resize(work.num_right());
  for (size_t i = 0; i < engine->right_map_.size(); ++i) {
    engine->right_map_[i] = right_base[right_perm[i]];
  }

  engine->work_ = std::move(work);
  engine->swapped_ = swapped;
  // Profile the final (swapped/reduced/relabeled) graph: that is the
  // orientation the enumerators — and so the tuner's decisions — see.
  engine->profile_ = ProfileGraph(engine->work_, options.seed);
  engine->build_seconds_ = timer.Seconds();
  return std::shared_ptr<const Engine>(std::move(engine));
}

}  // namespace mbe
