#ifndef PMBE_API_ENGINE_H_
#define PMBE_API_ENGINE_H_

#include <memory>
#include <span>
#include <vector>

#include "api/options.h"
#include "core/tuner.h"
#include "graph/bipartite_graph.h"
#include "util/status.h"

/// \file
/// `mbe::Engine` — the load-once half of the session-oriented API
/// (docs/SERVICE.md).
///
/// An Engine is a bipartite graph with all per-graph preprocessing baked
/// in: side swap, optional (p, q)-core reduction, hub-first left
/// relabeling, right-side traversal order, and the id-translation maps
/// back to the caller's original vertex ids. Building one is the expensive
/// step a serving process pays once per graph; afterwards the Engine is
/// **immutable and thread-safe by construction** — any number of
/// concurrent `mbe::Session`s enumerate over the same instance without
/// synchronization (each session brings its own single-threaded enumerator
/// state; the engine is shared read-only).
///
/// Engines are handed around as `std::shared_ptr<const Engine>` so a
/// serving registry can drop a graph while in-flight sessions keep their
/// reference.

namespace mbe {

class Engine {
 public:
  /// Builds the preprocessed engine for `graph` under `options`. Returns
  /// InvalidArgument (without preprocessing) when the options fail
  /// Validate(). The input graph is copied — the caller's instance is not
  /// retained.
  static util::StatusOr<std::shared_ptr<const Engine>> Build(
      const BipartiteGraph& graph, const GraphOptions& options);

  /// The preprocessed graph enumerators run on (possibly swapped, reduced,
  /// and relabeled — see the translation accessors below).
  const BipartiteGraph& graph() const { return work_; }

  /// The options the engine was built with.
  const GraphOptions& options() const { return options_; }

  /// True when preprocessing swapped the sides (the preprocessed left side
  /// is the caller's right side).
  bool swapped() const { return swapped_; }

  /// Size thresholds baked in by core reduction, in the **caller's**
  /// orientation (1/1 = no reduction). A session's query must be at least
  /// this strict; Session::Run rejects looser ones.
  uint32_t reduced_min_left() const { return reduced_min_left_; }
  uint32_t reduced_min_right() const { return reduced_min_right_; }

  /// Original (pre-swap, pre-reduction) side cardinalities.
  size_t original_num_left() const { return original_num_left_; }
  size_t original_num_right() const { return original_num_right_; }

  /// Translation maps from preprocessed ids to the caller's original ids,
  /// in the *preprocessed* orientation (combine with swapped()).
  std::span<const VertexId> left_map() const { return left_map_; }
  std::span<const VertexId> right_map() const { return right_map_; }

  /// Wall time Build spent preprocessing.
  double build_seconds() const { return build_seconds_; }

  /// Sampled statistics of the preprocessed graph, computed once at build
  /// time (core/tuner.h). Sessions running with RunOptions::auto_tune map
  /// this through the tuner's decision table; it is also what
  /// `pmbe --tune` reports.
  const GraphProfile& profile() const { return profile_; }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

 private:
  Engine() = default;

  GraphOptions options_;
  BipartiteGraph work_;
  std::vector<VertexId> left_map_;
  std::vector<VertexId> right_map_;
  bool swapped_ = false;
  uint32_t reduced_min_left_ = 1;
  uint32_t reduced_min_right_ = 1;
  size_t original_num_left_ = 0;
  size_t original_num_right_ = 0;
  double build_seconds_ = 0;
  GraphProfile profile_;
};

}  // namespace mbe

#endif  // PMBE_API_ENGINE_H_
