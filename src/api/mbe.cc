#include "api/mbe.h"

#include <memory>
#include <utility>

namespace mbe {

GraphOptions Options::graph_options() const {
  GraphOptions graph;
  graph.order = order;
  graph.hub_first_left = hub_first_left;
  graph.auto_swap_sides = auto_swap_sides;
  // Core reduction is only exact for the size-filtering MBET family: the
  // other algorithms enumerate everything, and bicliques below the
  // thresholds are gone from the reduced graph.
  const bool mbet_family =
      algorithm == Algorithm::kMbet || algorithm == Algorithm::kMbetM;
  graph.core_reduce = core_reduce && mbet_family;
  graph.min_left = mbet.min_left;
  graph.min_right = mbet.min_right;
  graph.seed = seed;
  return graph;
}

RunOptions Options::run_options() const {
  RunOptions run;
  run.algorithm = algorithm;
  run.threads = threads;
  run.scheduling = scheduling;
  run.max_split = max_split;
  run.mbet = mbet;
  run.auto_tune = auto_tune;
  run.control = control;
  run.max_memory_bytes = max_memory_bytes;
  run.watchdog_stall_seconds = watchdog_stall_seconds;
  run.checkpoint = checkpoint;
  return run;
}

util::Status Options::Validate() const {
  // RunOptions::Validate subsumes the graph half's checks (the size
  // thresholds are shared fields), so the error messages stay stable.
  return run_options().Validate();
}

util::Status Enumerate(const BipartiteGraph& graph, const Options& options,
                       ResultSink* sink, RunResult* out_result) {
  if (sink == nullptr) {
    return util::Status::InvalidArgument("sink must not be null");
  }
  PMBE_RETURN_IF_ERROR(options.Validate());
  util::StatusOr<std::shared_ptr<const Engine>> engine =
      Engine::Build(graph, options.graph_options());
  PMBE_RETURN_IF_ERROR(engine.status());
  Session session(engine.value(), options.run_options());
  RunResult result;
  PMBE_RETURN_IF_ERROR(session.Run(sink, &result));
  result.preprocess_seconds = engine.value()->build_seconds();
  if (out_result != nullptr) *out_result = std::move(result);
  return util::Status::Ok();
}

uint64_t CountMaximalBicliques(const BipartiteGraph& graph,
                               const Options& options) {
  CountSink sink;
  const util::Status status = Enumerate(graph, options, &sink, nullptr);
  PMBE_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
  return sink.count();
}

namespace {

/// Tracks the best-so-far biclique by edge count and raises the
/// branch-and-bound watermark the enumerator prunes against.
class BestEdgeSink : public ResultSink {
 public:
  explicit BestEdgeSink(uint64_t* watermark) : watermark_(watermark) {}

  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    const uint64_t edges =
        static_cast<uint64_t>(left.size()) * right.size();
    if (edges > *watermark_) {
      *watermark_ = edges;
      best_.left.assign(left.begin(), left.end());
      best_.right.assign(right.begin(), right.end());
    }
  }

  Biclique Take() { return std::move(best_); }

 private:
  uint64_t* watermark_;
  Biclique best_;
};

}  // namespace

util::Status FindMaximumBiclique(const BipartiteGraph& graph,
                                 const Options& options, Biclique* best,
                                 RunResult* result) {
  if (best == nullptr) {
    return util::Status::InvalidArgument("best must not be null");
  }
  uint64_t watermark = 0;
  Options search = options;
  search.algorithm = Algorithm::kMbet;
  search.threads = 1;  // the watermark is unsynchronized mutable state
  search.mbet.best_edges = &watermark;
  BestEdgeSink sink(&watermark);
  // Under run control this is an anytime search: a deadline/budget stop
  // leaves the best incumbent seen so far in the sink.
  PMBE_RETURN_IF_ERROR(Enumerate(graph, search, &sink, result));
  *best = sink.Take();
  return util::Status::Ok();
}

#if PMBE_ENABLE_DEPRECATED

Algorithm ParseAlgorithm(const std::string& name) {
  Algorithm algorithm = Algorithm::kMbet;
  const util::Status status = ParseAlgorithm(name, &algorithm);
  PMBE_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
  return algorithm;
}

RunResult Enumerate(const BipartiteGraph& graph, const Options& options,
                    ResultSink* sink) {
  RunResult result;
  const util::Status status = Enumerate(graph, options, sink, &result);
  PMBE_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
  return result;
}

Biclique FindMaximumBiclique(const BipartiteGraph& graph,
                             const Options& options) {
  Biclique best;
  const util::Status status = FindMaximumBiclique(graph, options, &best);
  PMBE_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
  return best;
}

#endif  // PMBE_ENABLE_DEPRECATED

}  // namespace mbe
