#include "api/mbe.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "baselines/mbea.h"
#include "baselines/mine_lmbc.h"
#include "baselines/oombea_lite.h"
#include "graph/reduction.h"
#include "parallel/parallel_mbe.h"
#include "util/timer.h"

namespace mbe {

Algorithm ParseAlgorithm(const std::string& name) {
  if (name == "mbet") return Algorithm::kMbet;
  if (name == "mbetm") return Algorithm::kMbetM;
  if (name == "minelmbc") return Algorithm::kMineLmbc;
  if (name == "mbea") return Algorithm::kMbea;
  if (name == "imbea") return Algorithm::kImbea;
  if (name == "oombea") return Algorithm::kOombeaLite;
  PMBE_CHECK_MSG(false, "unknown algorithm '%s'", name.c_str());
  return Algorithm::kMbet;
}

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kMbet:
      return "MBET";
    case Algorithm::kMbetM:
      return "MBETM";
    case Algorithm::kMineLmbc:
      return "MineLMBC";
    case Algorithm::kMbea:
      return "MBEA";
    case Algorithm::kImbea:
      return "iMBEA";
    case Algorithm::kOombeaLite:
      return "ooMBEA-lite";
  }
  return "?";
}

namespace {

/// Maps emitted bicliques from preprocessed ids back to the caller's
/// original ids (and original side orientation), re-sorting each side.
/// Stateless per emission, hence safe for concurrent Emit calls.
class TranslatingSink : public ResultSink {
 public:
  /// `left_new_to_old` / `right_new_to_old` are in the *preprocessed*
  /// orientation; `swapped` says the preprocessed left side is the
  /// caller's right side.
  TranslatingSink(ResultSink* inner, std::vector<VertexId> left_new_to_old,
                  std::vector<VertexId> right_new_to_old, bool swapped)
      : inner_(inner),
        left_map_(std::move(left_new_to_old)),
        right_map_(std::move(right_new_to_old)),
        swapped_(swapped) {}

  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    std::vector<VertexId> l(left.size()), r(right.size());
    for (size_t i = 0; i < left.size(); ++i) l[i] = left_map_[left[i]];
    for (size_t i = 0; i < right.size(); ++i) r[i] = right_map_[right[i]];
    std::sort(l.begin(), l.end());
    std::sort(r.begin(), r.end());
    if (swapped_) {
      inner_->Emit(r, l);
    } else {
      inner_->Emit(l, r);
    }
  }

  bool ShouldStop() const override { return inner_->ShouldStop(); }

 private:
  ResultSink* inner_;
  std::vector<VertexId> left_map_;
  std::vector<VertexId> right_map_;
  bool swapped_;
};

/// SubtreeWorker adapters.
class MbetWorker : public SubtreeWorker {
 public:
  MbetWorker(const BipartiteGraph& graph, const MbetOptions& options)
      : engine_(graph, options) {}
  void EnumerateSubtree(VertexId v, ResultSink* sink) override {
    engine_.EnumerateSubtree(v, sink);
  }
  EnumStats stats() const override { return engine_.stats(); }

 private:
  MbetEnumerator engine_;
};

class ImbeaWorker : public SubtreeWorker {
 public:
  explicit ImbeaWorker(const BipartiteGraph& graph)
      : engine_(graph, MbeaOptions{.improved = true}) {}
  void EnumerateSubtree(VertexId v, ResultSink* sink) override {
    engine_.EnumerateSubtree(v, sink);
  }
  EnumStats stats() const override { return engine_.stats(); }

 private:
  MbeaEnumerator engine_;
};

std::vector<VertexId> IdentityPerm(size_t n) {
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  return perm;
}

// Hub-first (descending degree) permutation of the left side: new id i is
// old id perm[i].
std::vector<VertexId> HubFirstLeftPerm(const BipartiteGraph& graph) {
  std::vector<VertexId> perm = IdentityPerm(graph.num_left());
  std::stable_sort(perm.begin(), perm.end(), [&](VertexId a, VertexId b) {
    const size_t da = graph.LeftDegree(a);
    const size_t db = graph.LeftDegree(b);
    if (da != db) return da > db;
    return a < b;
  });
  return perm;
}

}  // namespace

RunResult Enumerate(const BipartiteGraph& graph, const Options& options,
                    ResultSink* sink) {
  PMBE_CHECK(sink != nullptr);
  RunResult result;
  util::WallTimer prep_timer;

  // --- Preprocessing pipeline -------------------------------------------
  BipartiteGraph work = graph;
  const bool swapped =
      options.auto_swap_sides && work.num_right() > work.num_left();
  Options effective = options;
  if (swapped) {
    work = work.Swapped();
    // The caller's constraints are stated in their orientation.
    std::swap(effective.mbet.min_left, effective.mbet.min_right);
  }

  // Optional (p, q)-core reduction for size-constrained runs.
  std::vector<VertexId> left_base = IdentityPerm(work.num_left());
  std::vector<VertexId> right_base = IdentityPerm(work.num_right());
  const bool mbet_family = options.algorithm == Algorithm::kMbet ||
                           options.algorithm == Algorithm::kMbetM;
  if (options.core_reduce && mbet_family &&
      (effective.mbet.min_left > 1 || effective.mbet.min_right > 1)) {
    CoreReduction reduced = PqCoreReduce(work, effective.mbet.min_left,
                                         effective.mbet.min_right);
    work = std::move(reduced.graph);
    left_base = std::move(reduced.left_old);
    right_base = std::move(reduced.right_old);
  }

  std::vector<VertexId> left_perm = IdentityPerm(work.num_left());
  if (options.hub_first_left && work.num_left() > 0) {
    left_perm = HubFirstLeftPerm(work);
    // Relabel left = swap, relabel right, swap back.
    work = work.Swapped().RelabelRight(left_perm).Swapped();
  }

  std::vector<VertexId> right_perm = IdentityPerm(work.num_right());
  if (options.order != VertexOrder::kNone && work.num_right() > 0) {
    right_perm = MakeOrder(work, options.order, options.seed);
    work = work.RelabelRight(right_perm);
  }

  // Compose the relabelings with the reduction maps (new -> old).
  std::vector<VertexId> left_map(work.num_left());
  for (size_t i = 0; i < left_map.size(); ++i) {
    left_map[i] = left_base[left_perm[i]];
  }
  std::vector<VertexId> right_map(work.num_right());
  for (size_t i = 0; i < right_map.size(); ++i) {
    right_map[i] = right_base[right_perm[i]];
  }

  TranslatingSink translator(sink, std::move(left_map), std::move(right_map),
                             swapped);
  result.preprocess_seconds = prep_timer.Seconds();

  // --- Enumeration -------------------------------------------------------
  util::WallTimer timer;
  if (options.threads > 1) {
    PMBE_CHECK_MSG(options.algorithm == Algorithm::kMbet ||
                       options.algorithm == Algorithm::kMbetM ||
                       options.algorithm == Algorithm::kImbea ||
                       options.algorithm == Algorithm::kOombeaLite,
                   "algorithm %s does not support threads > 1",
                   AlgorithmName(options.algorithm));
    ParallelOptions popts;
    popts.threads = options.threads;
    popts.scheduling = options.scheduling;
    WorkerFactory factory;
    if (options.algorithm == Algorithm::kMbet ||
        options.algorithm == Algorithm::kMbetM) {
      MbetOptions mopts = effective.mbet;
      mopts.recompute_locals = options.algorithm == Algorithm::kMbetM;
      factory = [&work, mopts]() -> std::unique_ptr<SubtreeWorker> {
        return std::make_unique<MbetWorker>(work, mopts);
      };
    } else {
      factory = [&work]() -> std::unique_ptr<SubtreeWorker> {
        return std::make_unique<ImbeaWorker>(work);
      };
    }
    result.stats = ParallelEnumerate(work, factory, popts, &translator);
  } else {
    switch (options.algorithm) {
      case Algorithm::kMbet:
      case Algorithm::kMbetM: {
        MbetOptions mopts = effective.mbet;
        mopts.recompute_locals = options.algorithm == Algorithm::kMbetM;
        MbetEnumerator engine(work, mopts);
        engine.EnumerateAll(&translator);
        result.stats = engine.stats();
        break;
      }
      case Algorithm::kMineLmbc: {
        MineLmbcEnumerator engine(work);
        engine.EnumerateAll(&translator);
        result.stats = engine.stats();
        break;
      }
      case Algorithm::kMbea: {
        MbeaEnumerator engine(work, MbeaOptions{.improved = false});
        engine.EnumerateAll(&translator);
        result.stats = engine.stats();
        break;
      }
      case Algorithm::kImbea: {
        MbeaEnumerator engine(work, MbeaOptions{.improved = true});
        engine.EnumerateAll(&translator);
        result.stats = engine.stats();
        break;
      }
      case Algorithm::kOombeaLite: {
        OombeaLiteEnumerator engine(work);
        engine.EnumerateAll(&translator);
        result.stats = engine.stats();
        break;
      }
    }
  }
  result.seconds = timer.Seconds();
  return result;
}

uint64_t CountMaximalBicliques(const BipartiteGraph& graph,
                               const Options& options) {
  CountSink sink;
  Enumerate(graph, options, &sink);
  return sink.count();
}

namespace {

/// Tracks the best-so-far biclique by edge count and raises the
/// branch-and-bound watermark the enumerator prunes against.
class BestEdgeSink : public ResultSink {
 public:
  explicit BestEdgeSink(uint64_t* watermark) : watermark_(watermark) {}

  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    const uint64_t edges =
        static_cast<uint64_t>(left.size()) * right.size();
    if (edges > *watermark_) {
      *watermark_ = edges;
      best_.left.assign(left.begin(), left.end());
      best_.right.assign(right.begin(), right.end());
    }
  }

  Biclique Take() { return std::move(best_); }

 private:
  uint64_t* watermark_;
  Biclique best_;
};

}  // namespace

Biclique FindMaximumBiclique(const BipartiteGraph& graph,
                             const Options& options) {
  uint64_t watermark = 0;
  Options search = options;
  search.algorithm = Algorithm::kMbet;
  search.threads = 1;  // the watermark is unsynchronized mutable state
  search.mbet.best_edges = &watermark;
  BestEdgeSink sink(&watermark);
  Enumerate(graph, search, &sink);
  return sink.Take();
}

}  // namespace mbe
