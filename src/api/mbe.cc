#include "api/mbe.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <optional>

#include "baselines/mbea.h"
#include "baselines/mine_lmbc.h"
#include "baselines/oombea_lite.h"
#include "graph/reduction.h"
#include "parallel/parallel_mbe.h"
#include "util/fault.h"
#include "util/memory.h"
#include "util/simd.h"
#include "util/timer.h"

namespace mbe {

util::Status ParseAlgorithm(const std::string& name, Algorithm* algorithm) {
  PMBE_CHECK(algorithm != nullptr);
  if (name == "mbet") {
    *algorithm = Algorithm::kMbet;
  } else if (name == "mbetm") {
    *algorithm = Algorithm::kMbetM;
  } else if (name == "minelmbc") {
    *algorithm = Algorithm::kMineLmbc;
  } else if (name == "mbea") {
    *algorithm = Algorithm::kMbea;
  } else if (name == "imbea") {
    *algorithm = Algorithm::kImbea;
  } else if (name == "oombea") {
    *algorithm = Algorithm::kOombeaLite;
  } else {
    return util::Status::InvalidArgument(
        "unknown algorithm '" + name +
        "' (expected mbet | mbetm | minelmbc | mbea | imbea | oombea)");
  }
  return util::Status::Ok();
}

Algorithm ParseAlgorithm(const std::string& name) {
  Algorithm algorithm = Algorithm::kMbet;
  const util::Status status = ParseAlgorithm(name, &algorithm);
  PMBE_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
  return algorithm;
}

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kMbet:
      return "MBET";
    case Algorithm::kMbetM:
      return "MBETM";
    case Algorithm::kMineLmbc:
      return "MineLMBC";
    case Algorithm::kMbea:
      return "MBEA";
    case Algorithm::kImbea:
      return "iMBEA";
    case Algorithm::kOombeaLite:
      return "ooMBEA-lite";
  }
  return "?";
}

namespace {

/// The algorithms the per-vertex subtree decomposition (and hence the
/// parallel driver) supports.
bool SupportsParallel(Algorithm algorithm) {
  return algorithm == Algorithm::kMbet || algorithm == Algorithm::kMbetM ||
         algorithm == Algorithm::kImbea || algorithm == Algorithm::kOombeaLite;
}

}  // namespace

util::Status Options::Validate() const {
  if (threads == 0) {
    return util::Status::InvalidArgument("threads must be >= 1 (got 0)");
  }
  if (threads > 1 && !SupportsParallel(algorithm)) {
    return util::Status::InvalidArgument(
        std::string("algorithm ") + AlgorithmName(algorithm) +
        " does not support threads > 1");
  }
  if (mbet.min_left == 0 || mbet.min_right == 0) {
    return util::Status::InvalidArgument(
        "mbet.min_left / mbet.min_right are minimum side sizes and must be "
        ">= 1 (got 0)");
  }
  if (mbet.trie_min_groups == 0) {
    return util::Status::InvalidArgument(
        "mbet.trie_min_groups must be >= 1 (1 builds a trie everywhere)");
  }
  if (!(mbet.bitmap_density >= 0.0)) {  // negatives and NaN
    return util::Status::InvalidArgument(
        "mbet.bitmap_density must be >= 0 (0 forces bitmaps, > 1 disables "
        "them)");
  }
  if (max_split == 0 || max_split > kMaxTaskShards) {
    return util::Status::InvalidArgument(
        "max_split must be in [1, " + std::to_string(kMaxTaskShards) +
        "] (1 disables subtree splitting)");
  }
  if (threads > 1 && mbet.best_edges != nullptr) {
    return util::Status::InvalidArgument(
        "mbet.best_edges (branch-and-bound watermark) is unsynchronized "
        "state and requires threads == 1");
  }
  if (!(control.deadline_seconds >= 0)) {
    return util::Status::InvalidArgument(
        "control.deadline_seconds must be >= 0 (0 disables the deadline)");
  }
  if (std::isnan(control.progress_every_s)) {
    return util::Status::InvalidArgument(
        "control.progress_every_s must not be NaN");
  }
  if (!(watchdog_stall_seconds >= 0)) {  // negatives and NaN
    return util::Status::InvalidArgument(
        "watchdog_stall_seconds must be >= 0 (0 disables the watchdog)");
  }
  return util::Status::Ok();
}

namespace {

/// Maps emitted bicliques from preprocessed ids back to the caller's
/// original ids (and original side orientation), re-sorting each side.
/// Stateless per emission, hence safe for concurrent Emit calls.
class TranslatingSink : public ResultSink {
 public:
  /// `left_new_to_old` / `right_new_to_old` are in the *preprocessed*
  /// orientation; `swapped` says the preprocessed left side is the
  /// caller's right side.
  TranslatingSink(ResultSink* inner, std::vector<VertexId> left_new_to_old,
                  std::vector<VertexId> right_new_to_old, bool swapped)
      : inner_(inner),
        left_map_(std::move(left_new_to_old)),
        right_map_(std::move(right_new_to_old)),
        swapped_(swapped) {}

  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    std::vector<VertexId> l(left.size()), r(right.size());
    for (size_t i = 0; i < left.size(); ++i) l[i] = left_map_[left[i]];
    for (size_t i = 0; i < right.size(); ++i) r[i] = right_map_[right[i]];
    std::sort(l.begin(), l.end());
    std::sort(r.begin(), r.end());
    if (swapped_) {
      inner_->Emit(r, l);
    } else {
      inner_->Emit(l, r);
    }
  }

  void EmitBatch(const BicliqueBatch& batch) override {
    // Translate into a stack-local batch (this sink is shared by all
    // workers, so no member scratch) and forward in one call, preserving
    // the one-lock amortization of the buffered upstream.
    BicliqueBatch translated;
    std::vector<VertexId> l, r;
    for (size_t i = 0; i < batch.size(); ++i) {
      const auto left = batch.left(i);
      const auto right = batch.right(i);
      l.resize(left.size());
      r.resize(right.size());
      for (size_t j = 0; j < left.size(); ++j) l[j] = left_map_[left[j]];
      for (size_t j = 0; j < right.size(); ++j) r[j] = right_map_[right[j]];
      std::sort(l.begin(), l.end());
      std::sort(r.begin(), r.end());
      if (swapped_) {
        translated.Append(r, l);
      } else {
        translated.Append(l, r);
      }
    }
    inner_->EmitBatch(translated);
  }

  bool ShouldStop() const override { return inner_->ShouldStop(); }

 private:
  ResultSink* inner_;
  std::vector<VertexId> left_map_;
  std::vector<VertexId> right_map_;
  bool swapped_;
};

/// SubtreeWorker adapters. Each worker engine polls the run's shared
/// controller (may be null), so any worker tripping a limit stops all.
class MbetWorker : public SubtreeWorker {
 public:
  MbetWorker(const BipartiteGraph& graph, const MbetOptions& options,
             RunController* controller)
      : engine_(graph, options) {
    engine_.SetRunController(controller);
  }
  void EnumerateSubtree(VertexId v, ResultSink* sink) override {
    engine_.EnumerateSubtree(v, sink);
  }
  uint32_t SplitHint(VertexId v, uint32_t max_shards,
                     uint64_t min_work) override {
    return engine_.SplitHint(v, max_shards, min_work);
  }
  void EnumerateShard(VertexId v, uint32_t shard, uint32_t num_shards,
                      ResultSink* sink) override {
    engine_.EnumerateShard(v, shard, num_shards, sink);
  }
  EnumStats stats() const override { return engine_.stats(); }

 private:
  MbetEnumerator engine_;
};

class ImbeaWorker : public SubtreeWorker {
 public:
  ImbeaWorker(const BipartiteGraph& graph, RunController* controller)
      : engine_(graph, MbeaOptions{.improved = true}) {
    engine_.SetRunController(controller);
  }
  void EnumerateSubtree(VertexId v, ResultSink* sink) override {
    engine_.EnumerateSubtree(v, sink);
  }
  uint32_t SplitHint(VertexId v, uint32_t max_shards,
                     uint64_t min_work) override {
    return engine_.SplitHint(v, max_shards, min_work);
  }
  void EnumerateShard(VertexId v, uint32_t shard, uint32_t num_shards,
                      ResultSink* sink) override {
    engine_.EnumerateShard(v, shard, num_shards, sink);
  }
  EnumStats stats() const override { return engine_.stats(); }

 private:
  MbeaEnumerator engine_;
};

std::vector<VertexId> IdentityPerm(size_t n) {
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  return perm;
}

/// Scopes the process-wide memory budget to one run: installs the cap on
/// entry and removes it (clearing the exhausted latch) on every exit path.
class BudgetScope {
 public:
  explicit BudgetScope(uint64_t hard_cap_bytes) {
    util::GlobalMemoryBudget().BeginRun(hard_cap_bytes);
  }
  ~BudgetScope() { util::GlobalMemoryBudget().EndRun(); }
  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;
};

// Hub-first (descending degree) permutation of the left side: new id i is
// old id perm[i].
std::vector<VertexId> HubFirstLeftPerm(const BipartiteGraph& graph) {
  std::vector<VertexId> perm = IdentityPerm(graph.num_left());
  std::stable_sort(perm.begin(), perm.end(), [&](VertexId a, VertexId b) {
    const size_t da = graph.LeftDegree(a);
    const size_t db = graph.LeftDegree(b);
    if (da != db) return da > db;
    return a < b;
  });
  return perm;
}

}  // namespace

util::Status Enumerate(const BipartiteGraph& graph, const Options& options,
                       ResultSink* sink, RunResult* out_result) {
  if (sink == nullptr) {
    return util::Status::InvalidArgument("sink must not be null");
  }
  PMBE_RETURN_IF_ERROR(options.Validate());
  RunResult result;
  util::WallTimer prep_timer;

  // --- Preprocessing pipeline -------------------------------------------
  BipartiteGraph work = graph;
  const bool swapped =
      options.auto_swap_sides && work.num_right() > work.num_left();
  Options effective = options;
  if (swapped) {
    work = work.Swapped();
    // The caller's constraints are stated in their orientation.
    std::swap(effective.mbet.min_left, effective.mbet.min_right);
  }

  // Optional (p, q)-core reduction for size-constrained runs.
  std::vector<VertexId> left_base = IdentityPerm(work.num_left());
  std::vector<VertexId> right_base = IdentityPerm(work.num_right());
  const bool mbet_family = options.algorithm == Algorithm::kMbet ||
                           options.algorithm == Algorithm::kMbetM;
  if (options.core_reduce && mbet_family &&
      (effective.mbet.min_left > 1 || effective.mbet.min_right > 1)) {
    CoreReduction reduced = PqCoreReduce(work, effective.mbet.min_left,
                                         effective.mbet.min_right);
    work = std::move(reduced.graph);
    left_base = std::move(reduced.left_old);
    right_base = std::move(reduced.right_old);
  }

  std::vector<VertexId> left_perm = IdentityPerm(work.num_left());
  if (options.hub_first_left && work.num_left() > 0) {
    left_perm = HubFirstLeftPerm(work);
    // Relabel left = swap, relabel right, swap back.
    work = work.Swapped().RelabelRight(left_perm).Swapped();
  }

  std::vector<VertexId> right_perm = IdentityPerm(work.num_right());
  if (options.order != VertexOrder::kNone && work.num_right() > 0) {
    right_perm = MakeOrder(work, options.order, options.seed);
    work = work.RelabelRight(right_perm);
  }

  // Compose the relabelings with the reduction maps (new -> old).
  std::vector<VertexId> left_map(work.num_left());
  for (size_t i = 0; i < left_map.size(); ++i) {
    left_map[i] = left_base[left_perm[i]];
  }
  std::vector<VertexId> right_map(work.num_right());
  for (size_t i = 0; i < right_map.size(); ++i) {
    right_map[i] = right_base[right_perm[i]];
  }

  TranslatingSink translator(sink, std::move(left_map), std::move(right_map),
                             swapped);
  result.preprocess_seconds = prep_timer.Seconds();

  // Memory budget: scope the process-wide budget to this run. With
  // max_memory_bytes == 0 the cap and pressure thresholds stay off and
  // only the (cheap) accounting runs, so results are identical.
  BudgetScope budget_scope(options.max_memory_bytes);
  util::MemoryBudget& budget = util::GlobalMemoryBudget();
  const uint64_t degradations_before = budget.degradations();
  const uint64_t faults_before =
      util::FaultRegistry::Global().faults_injected();

  // Run control: one controller shared by every worker of this run,
  // spliced into the sink chain so emissions count against the result
  // budget and the stop flag is visible to all existing ShouldStop polls.
  // Inert control skips the machinery entirely — but a memory cap, a
  // watchdog, or an armed fault registry needs the controller too (it is
  // what converts exhaustion/failure into a typed termination).
  const bool wants_controller =
      options.control.active() || options.max_memory_bytes > 0 ||
      options.watchdog_stall_seconds > 0 ||
      util::FaultRegistry::Global().armed();
  std::optional<RunController> controller;
  std::optional<ControlledSink> controlled;
  ResultSink* run_sink = &translator;
  RunController* ctrl = nullptr;
  if (wants_controller) {
    controller.emplace(options.control);
    ctrl = &*controller;
    ctrl->AttachMemoryBudget(&budget);
    controlled.emplace(&translator, ctrl);
    run_sink = &*controlled;
  }

  // --- Enumeration -------------------------------------------------------
  // Kernel-call attribution: the counters are process-wide (per-thread
  // blocks summed), so diff a snapshot around the run. Concurrent runs in
  // one process would bleed into each other's deltas; the facade has no
  // such callers today and the counters are diagnostics, not invariants.
  const simd::KernelCallCounters kernel_calls_before =
      simd::SnapshotKernelCalls();
  util::WallTimer timer;
  auto run_enumeration = [&]() {
    if (options.threads > 1) {
      ParallelOptions popts;
      popts.threads = options.threads;
      popts.scheduling = options.scheduling;
      popts.controller = ctrl;
      popts.max_split = options.max_split;
      popts.watchdog_stall_seconds = options.watchdog_stall_seconds;
      WorkerFactory factory;
      if (options.algorithm == Algorithm::kMbet ||
          options.algorithm == Algorithm::kMbetM) {
        MbetOptions mopts = effective.mbet;
        mopts.recompute_locals = options.algorithm == Algorithm::kMbetM;
        factory = [&work, mopts, ctrl]() -> std::unique_ptr<SubtreeWorker> {
          return std::make_unique<MbetWorker>(work, mopts, ctrl);
        };
      } else {
        factory = [&work, ctrl]() -> std::unique_ptr<SubtreeWorker> {
          return std::make_unique<ImbeaWorker>(work, ctrl);
        };
      }
      result.stats = ParallelEnumerate(work, factory, popts, run_sink);
      return;
    }
    switch (options.algorithm) {
      case Algorithm::kMbet:
      case Algorithm::kMbetM: {
        MbetOptions mopts = effective.mbet;
        mopts.recompute_locals = options.algorithm == Algorithm::kMbetM;
        MbetEnumerator engine(work, mopts);
        engine.SetRunController(ctrl);
        engine.EnumerateAll(run_sink);
        result.stats = engine.stats();
        break;
      }
      case Algorithm::kMineLmbc: {
        MineLmbcEnumerator engine(work);
        engine.SetRunController(ctrl);
        engine.EnumerateAll(run_sink);
        result.stats = engine.stats();
        break;
      }
      case Algorithm::kMbea: {
        MbeaEnumerator engine(work, MbeaOptions{.improved = false});
        engine.SetRunController(ctrl);
        engine.EnumerateAll(run_sink);
        result.stats = engine.stats();
        break;
      }
      case Algorithm::kImbea: {
        MbeaEnumerator engine(work, MbeaOptions{.improved = true});
        engine.SetRunController(ctrl);
        engine.EnumerateAll(run_sink);
        result.stats = engine.stats();
        break;
      }
      case Algorithm::kOombeaLite: {
        OombeaLiteEnumerator engine(work);
        engine.SetRunController(ctrl);
        engine.EnumerateAll(run_sink);
        result.stats = engine.stats();
        break;
      }
    }
  };
  // Containment: an exception escaping the engines (a throwing user sink
  // in a single-thread run, or a parallel failure the driver rethrew for
  // lack of a controller) is a component failure, not a crash. With a
  // controller it becomes Termination::kInternal and the sink keeps its
  // valid prefix; without one it is reported as a kInternal Status.
  try {
    run_enumeration();
  } catch (const std::exception& e) {
    if (ctrl == nullptr) {
      return util::Status::Internal(std::string("enumeration failed: ") +
                                    e.what());
    }
    ctrl->ReportInternal(e.what());
  } catch (...) {
    if (ctrl == nullptr) {
      return util::Status::Internal("enumeration failed: unknown exception");
    }
    ctrl->ReportInternal("unknown exception");
  }
  result.seconds = timer.Seconds();
  {
    const simd::KernelCallCounters after = simd::SnapshotKernelCalls();
    result.stats.kernel_dispatch =
        static_cast<uint64_t>(simd::ActiveLevel());
    result.stats.simd_intersect_calls =
        after.intersect - kernel_calls_before.intersect;
    result.stats.simd_difference_calls =
        after.difference - kernel_calls_before.difference;
    result.stats.simd_mask_calls = after.mask - kernel_calls_before.mask;
    result.stats.simd_word_calls = after.word - kernel_calls_before.word;
  }
  // Robustness counters: read the budget's peak before BudgetScope
  // re-baselines it, and diff the process-wide degradation / fault
  // totals around the run.
  result.stats.peak_charged_bytes = budget.peak();
  result.stats.degradations = budget.degradations() - degradations_before;
  result.stats.faults_injected =
      util::FaultRegistry::Global().faults_injected() - faults_before;
  if (ctrl != nullptr) {
    // The memory latch may have tripped after the last worker checkpoint;
    // fold it in so short runs still report kMemoryLimit.
    if (budget.exhausted()) ctrl->RequestStop(Termination::kMemoryLimit);
    result.termination = ctrl->termination();
    result.results_emitted = ctrl->results();
    result.message = ctrl->message();
  } else {
    result.termination = Termination::kComplete;
    result.results_emitted = result.stats.maximal;
  }
  if (out_result != nullptr) *out_result = result;
  return util::Status::Ok();
}

RunResult Enumerate(const BipartiteGraph& graph, const Options& options,
                    ResultSink* sink) {
  RunResult result;
  const util::Status status = Enumerate(graph, options, sink, &result);
  PMBE_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
  return result;
}

uint64_t CountMaximalBicliques(const BipartiteGraph& graph,
                               const Options& options) {
  CountSink sink;
  Enumerate(graph, options, &sink);
  return sink.count();
}

namespace {

/// Tracks the best-so-far biclique by edge count and raises the
/// branch-and-bound watermark the enumerator prunes against.
class BestEdgeSink : public ResultSink {
 public:
  explicit BestEdgeSink(uint64_t* watermark) : watermark_(watermark) {}

  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    const uint64_t edges =
        static_cast<uint64_t>(left.size()) * right.size();
    if (edges > *watermark_) {
      *watermark_ = edges;
      best_.left.assign(left.begin(), left.end());
      best_.right.assign(right.begin(), right.end());
    }
  }

  Biclique Take() { return std::move(best_); }

 private:
  uint64_t* watermark_;
  Biclique best_;
};

}  // namespace

util::Status FindMaximumBiclique(const BipartiteGraph& graph,
                                 const Options& options, Biclique* best,
                                 RunResult* result) {
  if (best == nullptr) {
    return util::Status::InvalidArgument("best must not be null");
  }
  uint64_t watermark = 0;
  Options search = options;
  search.algorithm = Algorithm::kMbet;
  search.threads = 1;  // the watermark is unsynchronized mutable state
  search.mbet.best_edges = &watermark;
  BestEdgeSink sink(&watermark);
  // Under run control this is an anytime search: a deadline/budget stop
  // leaves the best incumbent seen so far in the sink.
  PMBE_RETURN_IF_ERROR(Enumerate(graph, search, &sink, result));
  *best = sink.Take();
  return util::Status::Ok();
}

Biclique FindMaximumBiclique(const BipartiteGraph& graph,
                             const Options& options) {
  Biclique best;
  const util::Status status = FindMaximumBiclique(graph, options, &best);
  PMBE_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
  return best;
}

}  // namespace mbe
