#ifndef PMBE_CORE_BICLIQUE_H_
#define PMBE_CORE_BICLIQUE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/common.h"

/// \file
/// The biclique value type and an order-independent fingerprint used to
/// compare the outputs of different algorithms without materializing and
/// sorting the full result set.

namespace mbe {

/// A biclique (L, R): `left` ⊆ U, `right` ⊆ V, both sorted ascending.
struct Biclique {
  std::vector<VertexId> left;
  std::vector<VertexId> right;

  size_t num_edges() const { return left.size() * right.size(); }

  friend bool operator==(const Biclique&, const Biclique&) = default;
  friend auto operator<=>(const Biclique&, const Biclique&) = default;
};

/// Renders "{u0,u1} x {v0,v1}" for logs and test failure messages.
std::string ToString(const Biclique& b);

/// 64-bit hash of one biclique (order-sensitive within each side; sides are
/// sorted by construction). Used for result-set fingerprints.
uint64_t HashBiclique(std::span<const VertexId> left,
                      std::span<const VertexId> right);

}  // namespace mbe

#endif  // PMBE_CORE_BICLIQUE_H_
