#ifndef PMBE_CORE_RUN_CONTROL_H_
#define PMBE_CORE_RUN_CONTROL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "core/enum_stats.h"
#include "core/sink.h"
#include "util/memory.h"
#include "util/timer.h"

/// \file
/// Run control: cooperative cancellation, wall-clock deadlines, work
/// budgets, and periodic progress reporting for enumeration runs.
///
/// MBE output is worst-case exponential, so a production caller must be
/// able to bound a run and still get the results emitted so far. The
/// pieces:
///
///  * `RunControl` — the caller-facing specification (part of
///    `mbe::Options`): a cancellation token, a deadline, result/node
///    budgets, and a progress callback.
///  * `RunController` — the shared runtime state of one run: an atomic
///    stop flag plus the termination reason. All workers of a parallel run
///    share one controller, so the first worker to trip a deadline or
///    budget halts the whole fleet.
///  * `RunPoller` — a per-enumerator polling handle. Enumerators call
///    `ShouldStop()` once per enumeration-tree node; the common case is a
///    countdown decrement plus one relaxed atomic load, and every
///    `kStride` calls the poller runs a full checkpoint (clock read,
///    budget accounting, progress snapshot).
///  * `ControlledSink` — a sink decorator that counts emissions against
///    `max_results` and reflects the stop flag through the existing
///    `ResultSink::ShouldStop()` polling that all enumerators already do.
///
/// Deadlines and budgets are enforced at polling granularity: a run may
/// overshoot a node budget by up to `RunPoller::kStride` nodes per worker
/// and a deadline by the time it takes to expand that many nodes. Every
/// biclique emitted before the stop trips is a true maximal biclique of
/// the input — an interrupted run returns a valid prefix of the full
/// result set, never garbage.

namespace mbe {

/// Why an enumeration run stopped.
enum class Termination {
  kComplete = 0,  ///< ran to exhaustion; the result set is complete
  kCancelled,     ///< the caller's cancellation token was set
  kDeadline,      ///< the wall-clock deadline expired
  kBudget,        ///< a result or node budget was exhausted
  kMemoryLimit,   ///< the hard memory budget was exhausted (or an injected
                  ///< allocation fault forced it); the sink holds the
                  ///< valid prefix emitted before the stop
  kInternal,      ///< a component failed (throwing sink, stalled worker,
                  ///< injected fault); RunResult::message says what
  kCheckpointed,  ///< a checkpoint-stop request (e.g. SIGTERM on a durable
                  ///< run) stopped the run after persisting the task
                  ///< frontier; resume with --resume (docs/CHECKPOINT.md)
};

/// Stable display name ("complete", "cancelled", "deadline", "budget",
/// "memory-limit", "internal", "checkpointed").
const char* TerminationName(Termination termination);

/// Snapshot handed to the progress callback.
struct RunProgress {
  /// Merged counters of all workers, as of their last checkpoint (at most
  /// one polling stride stale per worker).
  EnumStats stats;
  /// Bicliques emitted to the caller's sink so far.
  uint64_t results = 0;
  /// Wall-clock seconds since the run started.
  double elapsed_seconds = 0;
};

/// Caller-facing run-control specification. Default-constructed control is
/// inert: no token, no deadline, no budgets, no progress reporting.
struct RunControl {
  /// Cooperative cancellation token. The caller keeps ownership and may
  /// set it from any thread (or a signal handler); the run stops at the
  /// next poll with Termination::kCancelled.
  const std::atomic<bool>* cancel = nullptr;

  /// Wall-clock deadline in seconds from the start of the enumeration
  /// phase (0 = none). Tripping it reports Termination::kDeadline.
  double deadline_seconds = 0;

  /// Stop after this many bicliques have been emitted (0 = unlimited).
  /// Enforced exactly: the sink never sees more than `max_results`.
  uint64_t max_results = 0;

  /// Stop after roughly this many enumeration-tree nodes have been
  /// expanded across all workers (0 = unlimited). Polling-granular.
  uint64_t max_nodes_expanded = 0;

  /// Periodic progress callback, fired from whichever worker checkpoints
  /// first after the interval elapses (never concurrently with itself).
  /// Keep it fast; it runs on an enumeration thread.
  std::function<void(const RunProgress&)> progress;

  /// Progress firing interval. <= 0 with a callback set fires on every
  /// checkpoint (useful in tests).
  double progress_every_s = 1.0;

  /// True when any control is configured; inert control skips the
  /// controller machinery entirely.
  bool active() const {
    return cancel != nullptr || deadline_seconds > 0 || max_results > 0 ||
           max_nodes_expanded > 0 || progress != nullptr;
  }
};

/// Shared runtime state of one controlled run. Thread-safe; one instance
/// is shared by every worker (and sink decorator) of the run.
class RunController {
 public:
  explicit RunController(const RunControl& spec);

  /// One relaxed atomic load; safe to call from any thread at any rate.
  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Trips the stop flag with `reason`. The first trip wins; later calls
  /// (other workers noticing a different limit) are ignored.
  void RequestStop(Termination reason);

  /// Attaches the run's memory budget (nullptr detaches). Checkpoints poll
  /// its exhausted latch and convert it into Termination::kMemoryLimit.
  void AttachMemoryBudget(util::MemoryBudget* budget) { budget_ = budget; }

  /// Records a component failure (throwing sink, stalled worker, injected
  /// fault) and stops the run with Termination::kInternal. The first
  /// message wins; it surfaces as RunResult::message.
  void ReportInternal(const std::string& message);

  /// The first ReportInternal message, or empty.
  std::string message() const;

  /// Registers a polling worker and returns its stats slot. Each
  /// RunPoller registers once, lazily, on its first checkpoint.
  uint32_t RegisterWorker();

  /// Full amortized check, called by RunPoller every stride: snapshots
  /// `stats` into the worker's slot (progress + node accounting), then
  /// evaluates the cancellation token, the deadline, and the node budget.
  /// Returns the stop flag after evaluation.
  bool Checkpoint(uint32_t slot, const EnumStats& stats);

  /// Result accounting: reserves one emission against `max_results`.
  /// Returns false when the budget is already exhausted (the emission must
  /// be dropped); trips the stop flag when the budget is reached. Stops
  /// for other reasons (cancel, deadline, node budget) do NOT reject
  /// emissions: every produced biclique is genuine, and workers flush
  /// their BufferedSink remainders while draining after a stop — dropping
  /// those would break the valid-prefix contract.
  bool AdmitEmit();

  /// Termination reason so far: kComplete until a stop trips.
  Termination termination() const {
    return stop_requested()
               ? static_cast<Termination>(
                     reason_.load(std::memory_order_relaxed))
               : Termination::kComplete;
  }

  /// Bicliques admitted to the caller's sink.
  uint64_t results() const {
    return results_.load(std::memory_order_relaxed);
  }

  /// Wall-clock seconds since construction.
  double elapsed_seconds() const { return timer_.Seconds(); }

 private:
  const RunControl spec_;
  util::WallTimer timer_;
  util::MemoryBudget* budget_ = nullptr;
  std::atomic<bool> stop_{false};
  std::atomic<int> reason_{static_cast<int>(Termination::kComplete)};
  std::atomic<uint64_t> results_{0};

  /// Guards message_ (written once by the first ReportInternal).
  mutable std::mutex message_mu_;
  std::string message_;

  /// Guards slots_, nodes_total_, and next_progress_s_ (checkpoint path
  /// only — amortized to one lock per polling stride per worker).
  std::mutex mu_;
  std::vector<EnumStats> slots_;
  uint64_t nodes_total_ = 0;
  double next_progress_s_ = 0;

  /// Serializes the progress callback with itself (held only while firing).
  std::mutex progress_mu_;
};

/// Per-enumerator polling handle; owns the countdown that amortizes the
/// controller checkpoint. Not thread-safe (each worker owns its own, like
/// the enumerator embedding it). Detached (default) pollers never stop.
class RunPoller {
 public:
  /// Full checks run every this many ShouldStop calls.
  static constexpr uint32_t kStride = 64;

  /// Attaches to `controller` (nullptr detaches). Resets the countdown so
  /// the first poll after attaching runs a full checkpoint.
  void Attach(RunController* controller) {
    controller_ = controller;
    slot_ = kUnregistered;
    countdown_ = 1;
  }

  /// Cheap cooperative poll; call once per enumeration-tree node (calling
  /// more often is fine, the stride just shortens in wall time). `stats`
  /// are the owning enumerator's live counters.
  bool ShouldStop(const EnumStats& stats) {
    if (controller_ == nullptr) return false;
    if (controller_->stop_requested()) return true;
    if (--countdown_ > 0) return false;
    countdown_ = kStride;
    if (slot_ == kUnregistered) slot_ = controller_->RegisterWorker();
    return controller_->Checkpoint(slot_, stats);
  }

  bool attached() const { return controller_ != nullptr; }

 private:
  static constexpr uint32_t kUnregistered = static_cast<uint32_t>(-1);

  RunController* controller_ = nullptr;
  uint32_t slot_ = kUnregistered;
  uint32_t countdown_ = 1;
};

/// Sink decorator binding a run's sink chain to its controller: emissions
/// are counted against the result budget (and dropped once the run is
/// stopping, so `max_results` is exact), and `ShouldStop` reflects the
/// shared stop flag into the polling all enumerators already do.
class ControlledSink : public ResultSink {
 public:
  ControlledSink(ResultSink* inner, RunController* controller)
      : inner_(inner), controller_(controller) {}

  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    if (!controller_->AdmitEmit()) return;
    inner_->Emit(left, right);
  }

  void EmitBatch(const BicliqueBatch& batch) override {
    // Admit each emission so `max_results` stays exact under batching;
    // the whole-batch fast path keeps the downstream amortization.
    size_t admitted = 0;
    while (admitted < batch.size() && controller_->AdmitEmit()) ++admitted;
    if (admitted == batch.size()) {
      inner_->EmitBatch(batch);
      return;
    }
    for (size_t i = 0; i < admitted; ++i) {
      inner_->Emit(batch.left(i), batch.right(i));
    }
  }

  bool ShouldStop() const override {
    return controller_->stop_requested() || inner_->ShouldStop();
  }

 private:
  ResultSink* inner_;
  RunController* controller_;
};

}  // namespace mbe

#endif  // PMBE_CORE_RUN_CONTROL_H_
