#ifndef PMBE_CORE_SET_OPS_H_
#define PMBE_CORE_SET_OPS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/common.h"

/// \file
/// Kernels over sorted vertex sets. Every enumeration algorithm spends the
/// bulk of its time here, so the kernels avoid allocation (outputs go to
/// caller-provided vectors) and adapt between merge and galloping
/// (binary-search) strategies when the operand sizes are lopsided.
/// Balanced merges and all mask probes route through the runtime-dispatched
/// vectorized kernel table (util/simd.h); lopsided pairs use branchless
/// galloping, and tiny operands stay on inline scalar loops to dodge the
/// dispatch overhead.

namespace mbe {

/// Intersects sorted `a` and `b` into `*out` (cleared first).
void Intersect(std::span<const VertexId> a, std::span<const VertexId> b,
               std::vector<VertexId>* out);

/// Which list×list intersection kernel to run. `kAuto` picks galloping
/// when the operand sizes are lopsided (the production behaviour);
/// `kMerge`/`kGallop` pin the kernel for benchmarking and testing.
enum class IntersectStrategy : uint8_t { kAuto, kMerge, kGallop };

/// Intersects sorted `a` and `b` into `*out` (cleared first) using the
/// requested kernel. The list×list member of the overload set that
/// core/vertex_set.h extends to bitmap and mixed representations.
void IntersectInto(std::span<const VertexId> a, std::span<const VertexId> b,
                   std::vector<VertexId>* out,
                   IntersectStrategy strategy = IntersectStrategy::kAuto);

/// Returns |a ∩ b| without materializing the intersection.
size_t IntersectSize(std::span<const VertexId> a, std::span<const VertexId> b);

/// Returns |a ∩ b|, stopping early once the count reaches `cap` (returns
/// `cap` in that case). Used for "is the intersection full/empty" tests.
size_t IntersectSizeCapped(std::span<const VertexId> a,
                           std::span<const VertexId> b, size_t cap);

/// True iff every element of `a` is in `b` (both sorted).
bool IsSubset(std::span<const VertexId> a, std::span<const VertexId> b);

/// Unions sorted `a` and `b` into `*out` (cleared first).
void Union(std::span<const VertexId> a, std::span<const VertexId> b,
           std::vector<VertexId>* out);

/// Set-difference a \ b into `*out` (cleared first).
void Difference(std::span<const VertexId> a, std::span<const VertexId> b,
                std::vector<VertexId>* out);

/// True iff sorted `a` contains `x` (binary search).
bool Contains(std::span<const VertexId> a, VertexId x);

/// A reusable word-packed membership mask over one vertex side: bit x of
/// the mask is bit x%64 of words()[x/64]. Set/clear a working set, then
/// probe membership in O(1). Clearing is proportional to the set size, not
/// the universe size. The packed layout is what lets the vectorized mask
/// kernels (util/simd.h mask_count / mask_filter) and the trie's
/// ClassifyAll probe eight vertices per step and prefetch ahead; a
/// byte-per-vertex mask would cost 8x the cache footprint on the same
/// probe stream.
class MembershipMask {
 public:
  MembershipMask() = default;
  explicit MembershipMask(size_t universe)
      : universe_(universe), packed_((universe + 63) / 64, 0) {}

  /// Grows the universe if needed (marks preserved).
  void EnsureUniverse(size_t universe) {
    if (universe_ < universe) {
      universe_ = universe;
      packed_.resize((universe + 63) / 64, 0);
    }
  }

  /// Marks all elements of `s` (which must be within the universe).
  void Set(std::span<const VertexId> s) {
    for (VertexId x : s) {
      PMBE_DCHECK(x < universe_);
      packed_[x >> 6] |= uint64_t{1} << (x & 63);
    }
  }

  /// Unmarks all elements of `s`.
  void Clear(std::span<const VertexId> s) {
    for (VertexId x : s) packed_[x >> 6] &= ~(uint64_t{1} << (x & 63));
  }

  bool Test(VertexId x) const {
    PMBE_DCHECK(x < universe_);
    return (packed_[x >> 6] >> (x & 63)) & 1;
  }

  size_t universe() const { return universe_; }

  /// The packed words, ceil(universe/64) of them. Input to the mask
  /// kernels; bits at or above `universe()` are zero.
  const uint64_t* words() const { return packed_.data(); }

 private:
  size_t universe_ = 0;
  std::vector<uint64_t> packed_;
};

/// Order-dependent 64-bit hash of a vertex list (FNV-1a over elements).
/// Equal lists hash equal; used as a cheap grouping key.
inline uint64_t HashVertexSpan(std::span<const VertexId> s) {
  uint64_t h = 1469598103934665603ULL;
  for (VertexId x : s) {
    h = (h ^ (x + 1ULL)) * 1099511628211ULL;
  }
  return h;
}

/// Returns |s ∩ mask| by probing the mask for each element of `s`.
size_t IntersectSizeWithMask(std::span<const VertexId> s,
                             const MembershipMask& mask);

/// Intersects `s` with the mask into `*out` (cleared first), preserving
/// order of `s`.
void IntersectWithMask(std::span<const VertexId> s, const MembershipMask& mask,
                       std::vector<VertexId>* out);

}  // namespace mbe

#endif  // PMBE_CORE_SET_OPS_H_
