#include "core/sink.h"

#include <algorithm>
#include <cstdio>

#include "util/fault.h"
#include "util/memory.h"

namespace mbe {

std::string ToString(const Biclique& b) {
  std::string out = "{";
  for (size_t i = 0; i < b.left.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(b.left[i]);
  }
  out += "} x {";
  for (size_t i = 0; i < b.right.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(b.right[i]);
  }
  out += "}";
  return out;
}

namespace {

// 64-bit mix (from MurmurHash3 finalizer).
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

uint64_t HashBiclique(std::span<const VertexId> left,
                      std::span<const VertexId> right) {
  uint64_t h = 0x8f1bbcdcbfa53e0bULL;
  for (VertexId u : left) h = Mix64(h ^ (u + 0x9e3779b97f4a7c15ULL));
  h = Mix64(h ^ 0xdeadbeefULL);
  for (VertexId v : right) h = Mix64(h ^ (v + 0x165667b19e3779f9ULL));
  h = Mix64(h ^ (left.size() << 32 ^ right.size()));
  return h;
}

std::vector<Biclique> CollectSink::TakeSorted() {
  std::lock_guard<std::mutex> lock(mu_);
  std::sort(results_.begin(), results_.end());
  return std::move(results_);
}

uint64_t FingerprintSink::Digest() const {
  uint64_t s = sum_.load(std::memory_order_relaxed);
  uint64_t x = xor_.load(std::memory_order_relaxed);
  uint64_t c = count_.load(std::memory_order_relaxed);
  // Fold the three commutative accumulators into one digest.
  uint64_t d = s;
  d = d * 0x9e3779b97f4a7c15ULL + x;
  d = d * 0x9e3779b97f4a7c15ULL + c;
  return d;
}

BudgetSink::BudgetSink(ResultSink* inner, uint64_t max_results,
                       double deadline_seconds)
    : inner_(inner),
      max_results_(max_results),
      deadline_seconds_(deadline_seconds),
      start_(std::chrono::steady_clock::now()) {
  PMBE_CHECK(inner != nullptr);
}

bool BudgetSink::AdmitOne() {
  const uint64_t n = emitted_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (max_results_ > 0 && n > max_results_) {
    emitted_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void BudgetSink::Emit(std::span<const VertexId> left,
                      std::span<const VertexId> right) {
  if (!AdmitOne()) return;
  inner_->Emit(left, right);
}

void BudgetSink::EmitBatch(const BicliqueBatch& batch) {
  if (max_results_ == 0) {
    // Unlimited: keep the whole-batch fast path.
    inner_->EmitBatch(batch);
    emitted_.fetch_add(batch.size(), std::memory_order_relaxed);
    return;
  }
  // Admit per entry so a batch straddling the bound delivers exactly the
  // admitted prefix instead of over-emitting past max_results.
  size_t admitted = 0;
  while (admitted < batch.size() && AdmitOne()) ++admitted;
  if (admitted == batch.size()) {
    inner_->EmitBatch(batch);
    return;
  }
  for (size_t i = 0; i < admitted; ++i) {
    inner_->Emit(batch.left(i), batch.right(i));
  }
}

bool BudgetSink::ShouldStop() const {
  if (inner_->ShouldStop()) return true;
  if (max_results_ > 0 &&
      emitted_.load(std::memory_order_relaxed) >= max_results_) {
    return true;
  }
  if (deadline_seconds_ > 0) {
    if (expired_.load(std::memory_order_relaxed)) return true;
    // Sample the clock once per stride; the first call (polls_ == 0)
    // checks immediately so short deadlines on tiny runs still trip.
    if (polls_.fetch_add(1, std::memory_order_relaxed) % kClockStride != 0) {
      return false;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    if (elapsed >= deadline_seconds_) {
      expired_.store(true, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

BufferedSink::BufferedSink(ResultSink* inner, size_t max_results,
                           size_t max_bytes)
    : inner_(inner),
      max_results_(std::max<size_t>(1, max_results)),
      max_bytes_(max_bytes) {
  PMBE_CHECK(inner != nullptr);
}

BufferedSink::~BufferedSink() {
  try {
    Flush();
  } catch (...) {
    // The inner sink failed during the final drain; the batch was already
    // dropped by the quarantine and an exception must not leave a
    // destructor. Drain paths that need to observe the failure call
    // Flush() explicitly before destruction.
  }
  if (budget_charged_ > 0) util::CurrentMemoryBudget().Release(budget_charged_);
}

void BufferedSink::Emit(std::span<const VertexId> left,
                        std::span<const VertexId> right) {
  if (poisoned_) return;
  batch_.Append(left, right);
  const uint64_t cap = batch_.capacity_bytes();
  if (cap > capacity_bytes_) {
    const uint64_t delta = cap - capacity_bytes_;
    // "sink.buffer" models this arena growth failing to allocate.
    if (PMBE_FAULT("sink.buffer")) util::CurrentMemoryBudget().ForceExhaust();
    if (util::CurrentMemoryBudget().TryCharge(delta)) budget_charged_ += delta;
    capacity_bytes_ = cap;
  }
  size_t flush_results = max_results_;
  size_t flush_bytes = max_bytes_;
  if (util::CurrentMemoryBudget().UnderPressure()) {
    // Degrade: flush at a quarter of the thresholds so buffered bytes
    // shrink under pressure. More synchronization, same results.
    flush_results = std::max<size_t>(1, max_results_ / 4);
    flush_bytes = std::max<size_t>(1, max_bytes_ / 4);
    if (!degraded_) {
      degraded_ = true;
      util::CurrentMemoryBudget().NoteDegradation();
    }
  }
  if (batch_.size() >= flush_results || batch_.bytes() >= flush_bytes) Flush();
}

void BufferedSink::Flush() {
  if (poisoned_ || batch_.empty()) return;
  // "sink.flush" models the downstream consumer failing.
  if (PMBE_FAULT("sink.flush")) {
    poisoned_ = true;
    batch_.clear();
    throw util::FaultError("injected fault: sink.flush");
  }
  try {
    inner_->EmitBatch(batch_);
  } catch (...) {
    // Quarantine: drop the in-flight batch (the delivered prefix stays a
    // valid prefix), refuse further work, and let the worker's containment
    // turn the exception into Termination::kInternal.
    poisoned_ = true;
    batch_.clear();
    throw;
  }
  batch_.clear();
  ++flushes_;
}

}  // namespace mbe
