#ifndef PMBE_CORE_SINK_H_
#define PMBE_CORE_SINK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "core/biclique.h"
#include "util/common.h"

/// \file
/// Result sinks: where enumerated maximal bicliques go. Enumerators call
/// `Emit(left, right)` with sorted spans valid only for the duration of the
/// call; sinks copy what they need. All sinks here are thread-safe so the
/// same sink can be shared by the parallel driver's workers — except
/// `BufferedSink`, which is explicitly worker-local (see its comment).
///
/// Batching: `ResultSink::EmitBatch` delivers many bicliques in one call so
/// a sink can amortize its synchronization (one lock acquisition / one
/// atomic round per batch instead of per biclique). The parallel driver
/// wraps the shared sink in one `BufferedSink` per worker, which
/// accumulates emissions in worker-local storage and flushes them as a
/// batch; sinks that don't override EmitBatch transparently fall back to
/// per-biclique Emit.

namespace mbe {

/// A flat, append-only batch of bicliques: all vertex ids live in one
/// arena, entries are (offset, lengths) records. Copy-free to walk,
/// cache-friendly to fill.
class BicliqueBatch {
 public:
  void Append(std::span<const VertexId> left, std::span<const VertexId> right) {
    Entry e;
    e.off = static_cast<uint32_t>(ids_.size());
    e.l_len = static_cast<uint32_t>(left.size());
    e.r_len = static_cast<uint32_t>(right.size());
    ids_.insert(ids_.end(), left.begin(), left.end());
    ids_.insert(ids_.end(), right.begin(), right.end());
    entries_.push_back(e);
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  /// Arena bytes held (the flush-by-bytes threshold input).
  size_t bytes() const {
    return ids_.size() * sizeof(VertexId) + entries_.size() * sizeof(Entry);
  }
  /// Arena bytes reserved (capacity; the memory-budget charging input —
  /// clear() keeps capacity, so this is what the batch really holds).
  size_t capacity_bytes() const {
    return ids_.capacity() * sizeof(VertexId) +
           entries_.capacity() * sizeof(Entry);
  }
  void clear() {
    ids_.clear();
    entries_.clear();
  }

  std::span<const VertexId> left(size_t i) const {
    const Entry& e = entries_[i];
    return {ids_.data() + e.off, e.l_len};
  }
  std::span<const VertexId> right(size_t i) const {
    const Entry& e = entries_[i];
    return {ids_.data() + e.off + e.l_len, e.r_len};
  }

 private:
  struct Entry {
    uint32_t off = 0;    ///< start of L in ids_; R follows at off + l_len
    uint32_t l_len = 0;
    uint32_t r_len = 0;
  };
  std::vector<VertexId> ids_;
  std::vector<Entry> entries_;
};

/// Abstract consumer of enumerated maximal bicliques.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Called once per maximal biclique. `left`/`right` are sorted ascending
  /// and only valid during the call. Must be thread-safe.
  virtual void Emit(std::span<const VertexId> left,
                    std::span<const VertexId> right) = 0;

  /// Delivers a whole batch. Semantically identical to calling Emit once
  /// per entry (the default does exactly that); overrides synchronize once
  /// per batch. Must be thread-safe, like Emit.
  virtual void EmitBatch(const BicliqueBatch& batch) {
    for (size_t i = 0; i < batch.size(); ++i) {
      Emit(batch.left(i), batch.right(i));
    }
  }

  /// Optional cooperative cancellation: enumerators poll this between
  /// enumeration nodes and stop early when it returns true. Used by the
  /// progress experiment (F9) and by callers imposing time budgets.
  virtual bool ShouldStop() const { return false; }
};

/// Counts bicliques (and their aggregate dimensions) without storing them.
class CountSink : public ResultSink {
 public:
  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    count_.fetch_add(1, std::memory_order_relaxed);
    left_total_.fetch_add(left.size(), std::memory_order_relaxed);
    right_total_.fetch_add(right.size(), std::memory_order_relaxed);
  }

  void EmitBatch(const BicliqueBatch& batch) override {
    // Accumulate locally, then one atomic round for the whole batch.
    uint64_t l = 0, r = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      l += batch.left(i).size();
      r += batch.right(i).size();
    }
    count_.fetch_add(batch.size(), std::memory_order_relaxed);
    left_total_.fetch_add(l, std::memory_order_relaxed);
    right_total_.fetch_add(r, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t left_total() const { return left_total_.load(std::memory_order_relaxed); }
  uint64_t right_total() const { return right_total_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> left_total_{0};
  std::atomic<uint64_t> right_total_{0};
};

/// Stores every biclique. Intended for tests and small results.
class CollectSink : public ResultSink {
 public:
  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    std::lock_guard<std::mutex> lock(mu_);
    results_.push_back(Biclique{{left.begin(), left.end()},
                                {right.begin(), right.end()}});
  }

  void EmitBatch(const BicliqueBatch& batch) override {
    std::lock_guard<std::mutex> lock(mu_);  // one acquisition per batch
    results_.reserve(results_.size() + batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      auto l = batch.left(i);
      auto r = batch.right(i);
      results_.push_back(Biclique{{l.begin(), l.end()}, {r.begin(), r.end()}});
    }
  }

  /// Results in canonical (sorted) order; call after enumeration finishes.
  std::vector<Biclique> TakeSorted();

  /// Unsorted access (single-threaded use after enumeration).
  const std::vector<Biclique>& results() const { return results_; }

 private:
  mutable std::mutex mu_;
  std::vector<Biclique> results_;
};

/// Forwards each biclique to a user callback (serialized by a mutex).
class CallbackSink : public ResultSink {
 public:
  using Callback = std::function<void(std::span<const VertexId>,
                                      std::span<const VertexId>)>;
  explicit CallbackSink(Callback cb) : cb_(std::move(cb)) {}

  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    std::lock_guard<std::mutex> lock(mu_);
    cb_(left, right);
  }

  void EmitBatch(const BicliqueBatch& batch) override {
    std::lock_guard<std::mutex> lock(mu_);  // one acquisition per batch
    for (size_t i = 0; i < batch.size(); ++i) {
      cb_(batch.left(i), batch.right(i));
    }
  }

 private:
  std::mutex mu_;
  Callback cb_;
};

/// Order-independent fingerprint of the result set: a commutative
/// combination (sum and xor) of per-biclique hashes, plus the count.
/// Two runs producing the same multiset of bicliques produce the same
/// fingerprint regardless of enumeration order or thread interleaving.
class FingerprintSink : public ResultSink {
 public:
  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    const uint64_t h = HashBiclique(left, right);
    sum_.fetch_add(h, std::memory_order_relaxed);
    xor_.fetch_xor(h, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  void EmitBatch(const BicliqueBatch& batch) override {
    // Hash locally, then one atomic round (hashing dominates; the
    // accumulators are commutative so batching preserves the digest).
    uint64_t s = 0, x = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      const uint64_t h = HashBiclique(batch.left(i), batch.right(i));
      s += h;
      x ^= h;
    }
    sum_.fetch_add(s, std::memory_order_relaxed);
    xor_.fetch_xor(x, std::memory_order_relaxed);
    count_.fetch_add(batch.size(), std::memory_order_relaxed);
  }

  /// Combined digest (sum, xor, count folded together).
  uint64_t Digest() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> xor_{0};
  std::atomic<uint64_t> count_{0};
};

/// Decorates another sink with a stop condition: stop after `max_results`
/// bicliques or after `deadline_seconds` of wall time (0 disables either).
///
/// The deadline path samples the clock only once every `kClockStride`
/// ShouldStop calls (enumerators poll once per enumeration node, so a
/// per-call clock read is measurable overhead); the deadline is therefore
/// enforced at the same stride granularity as RunPoller.
class BudgetSink : public ResultSink {
 public:
  /// Clock reads happen every this many ShouldStop calls on the deadline
  /// path (matches RunPoller::kStride).
  static constexpr uint32_t kClockStride = 64;

  BudgetSink(ResultSink* inner, uint64_t max_results, double deadline_seconds);

  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override;
  void EmitBatch(const BicliqueBatch& batch) override;
  bool ShouldStop() const override;

  uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }

 private:
  /// Reserves one emission against `max_results_`; false (with the
  /// reservation rolled back) once the budget is exhausted. Keeps
  /// `emitted() <= max_results` exact even when racing batch deliveries
  /// straddle the bound mid-batch.
  bool AdmitOne();

  ResultSink* inner_;
  uint64_t max_results_;
  double deadline_seconds_;
  std::atomic<uint64_t> emitted_{0};
  std::chrono::steady_clock::time_point start_;
  /// Deadline-path stride state. `expired_` latches the first trip so the
  /// stop stays sticky without further clock reads.
  mutable std::atomic<uint32_t> polls_{0};
  mutable std::atomic<bool> expired_{false};
};

/// Buffers emissions in worker-local storage and flushes them to the
/// (thread-safe, shared) inner sink as one EmitBatch — one synchronization
/// round per `max_results` bicliques / `max_bytes` arena bytes instead of
/// per emission.
///
/// NOT thread-safe by design: each producing worker owns one BufferedSink
/// over the shared inner sink (the parallel driver creates one per
/// worker). The owner must call Flush() (or destroy the sink) before the
/// run's results are read; the driver flushes on drain, including when a
/// run is cancelled — buffered bicliques are genuine maximal bicliques, so
/// flushing them preserves the valid-prefix guarantee of interrupted runs.
///
/// Robustness (docs/ROBUSTNESS.md):
///  * batch-arena growth is charged to the global MemoryBudget, and under
///    memory pressure the sink flushes at a quarter of its thresholds so
///    buffered bytes shrink instead of grow;
///  * a throwing inner sink *quarantines* this sink: the in-flight batch
///    is dropped (the already-delivered prefix stays valid — a prefix of
///    a prefix), further emissions become no-ops, and the exception
///    propagates so the worker's containment can convert it into
///    Termination::kInternal. Quarantine keeps a failing consumer from
///    being hammered with retries mid-drain.
class BufferedSink : public ResultSink {
 public:
  explicit BufferedSink(ResultSink* inner, size_t max_results = 64,
                        size_t max_bytes = 1 << 16);
  /// Flushes any remaining buffered emissions (swallowing a throwing
  /// inner sink — destructors must not throw; drain paths call Flush()
  /// directly to observe the failure).
  ~BufferedSink() override;

  BufferedSink(const BufferedSink&) = delete;
  BufferedSink& operator=(const BufferedSink&) = delete;

  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override;

  /// Forwards the shared stop signal unbuffered (cancellation must not
  /// wait for a flush threshold).
  bool ShouldStop() const override { return inner_->ShouldStop(); }

  /// Delivers all buffered emissions to the inner sink now. Propagates an
  /// inner-sink exception after quarantining (see class comment).
  void Flush();

  /// Completed flush rounds (empty flushes don't count).
  uint64_t flushes() const { return flushes_; }
  /// Bicliques currently buffered (test/introspection hook).
  size_t buffered() const { return batch_.size(); }
  /// True once an inner-sink failure quarantined this sink.
  bool poisoned() const { return poisoned_; }

 private:
  ResultSink* inner_;
  size_t max_results_;
  size_t max_bytes_;
  BicliqueBatch batch_;
  uint64_t flushes_ = 0;
  bool poisoned_ = false;
  /// Pressure degradation noted once per sink (EnumStats::degradations).
  bool degraded_ = false;
  /// Last observed batch capacity / bytes of it charged to the budget.
  uint64_t capacity_bytes_ = 0;
  uint64_t budget_charged_ = 0;
};

}  // namespace mbe

#endif  // PMBE_CORE_SINK_H_
