#ifndef PMBE_CORE_SINK_H_
#define PMBE_CORE_SINK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "core/biclique.h"
#include "util/common.h"

/// \file
/// Result sinks: where enumerated maximal bicliques go. Enumerators call
/// `Emit(left, right)` with sorted spans valid only for the duration of the
/// call; sinks copy what they need. All sinks here are thread-safe so the
/// same sink can be shared by the parallel driver's workers.

namespace mbe {

/// Abstract consumer of enumerated maximal bicliques.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Called once per maximal biclique. `left`/`right` are sorted ascending
  /// and only valid during the call. Must be thread-safe.
  virtual void Emit(std::span<const VertexId> left,
                    std::span<const VertexId> right) = 0;

  /// Optional cooperative cancellation: enumerators poll this between
  /// enumeration nodes and stop early when it returns true. Used by the
  /// progress experiment (F9) and by callers imposing time budgets.
  virtual bool ShouldStop() const { return false; }
};

/// Counts bicliques (and their aggregate dimensions) without storing them.
class CountSink : public ResultSink {
 public:
  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    count_.fetch_add(1, std::memory_order_relaxed);
    left_total_.fetch_add(left.size(), std::memory_order_relaxed);
    right_total_.fetch_add(right.size(), std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t left_total() const { return left_total_.load(std::memory_order_relaxed); }
  uint64_t right_total() const { return right_total_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> left_total_{0};
  std::atomic<uint64_t> right_total_{0};
};

/// Stores every biclique. Intended for tests and small results.
class CollectSink : public ResultSink {
 public:
  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    std::lock_guard<std::mutex> lock(mu_);
    results_.push_back(Biclique{{left.begin(), left.end()},
                                {right.begin(), right.end()}});
  }

  /// Results in canonical (sorted) order; call after enumeration finishes.
  std::vector<Biclique> TakeSorted();

  /// Unsorted access (single-threaded use after enumeration).
  const std::vector<Biclique>& results() const { return results_; }

 private:
  mutable std::mutex mu_;
  std::vector<Biclique> results_;
};

/// Forwards each biclique to a user callback (serialized by a mutex).
class CallbackSink : public ResultSink {
 public:
  using Callback = std::function<void(std::span<const VertexId>,
                                      std::span<const VertexId>)>;
  explicit CallbackSink(Callback cb) : cb_(std::move(cb)) {}

  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    std::lock_guard<std::mutex> lock(mu_);
    cb_(left, right);
  }

 private:
  std::mutex mu_;
  Callback cb_;
};

/// Order-independent fingerprint of the result set: a commutative
/// combination (sum and xor) of per-biclique hashes, plus the count.
/// Two runs producing the same multiset of bicliques produce the same
/// fingerprint regardless of enumeration order or thread interleaving.
class FingerprintSink : public ResultSink {
 public:
  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    const uint64_t h = HashBiclique(left, right);
    sum_.fetch_add(h, std::memory_order_relaxed);
    xor_.fetch_xor(h, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Combined digest (sum, xor, count folded together).
  uint64_t Digest() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> xor_{0};
  std::atomic<uint64_t> count_{0};
};

/// Decorates another sink with a stop condition: stop after `max_results`
/// bicliques or after `deadline_seconds` of wall time (0 disables either).
class BudgetSink : public ResultSink {
 public:
  BudgetSink(ResultSink* inner, uint64_t max_results, double deadline_seconds);

  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override;
  bool ShouldStop() const override;

  uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }

 private:
  ResultSink* inner_;
  uint64_t max_results_;
  double deadline_seconds_;
  std::atomic<uint64_t> emitted_{0};
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mbe

#endif  // PMBE_CORE_SINK_H_
