#ifndef PMBE_CORE_ENUM_CONTEXT_H_
#define PMBE_CORE_ENUM_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/common.h"
#include "util/memory.h"

/// \file
/// Per-thread scratch pooling for the enumeration engines.
///
/// Every engine's recursion needs a handful of `std::vector` work buffers
/// per node (candidate intersections, closure sets, bitmap words). Before
/// this layer each engine allocated them fresh at every node — the
/// allocation churn BBK (PAPERS.md) identifies as a dominant cost.
/// `EnumContext` owns the buffers instead:
///
///  * `AcquireIds()` / `AcquireWords()` hand out pooled vectors whose
///    capacity survives across nodes and runs;
///  * `Checkpoint()` / `Rewind(cp)` bracket one recursion depth: rewinding
///    returns every buffer acquired since the checkpoint to the pool,
///    with whatever capacity it grew to;
///  * `Frame` is the RAII form engines put on the stack per recursive call.
///
/// Buffers are heap-boxed (`unique_ptr`), so pointers and spans into a
/// buffer stay valid while its frame is live even as other buffers are
/// acquired. They must NOT outlive the frame: `paranoid` mode frees the
/// underlying allocation on rewind instead of pooling it, so any escaped
/// span turns into a use-after-free that ASan reports (enum_context_test
/// runs under the scripts/check.sh sanitizer leg to prove the engines
/// clean).
///
/// One EnumContext serves one thread; parallel_mbe gives each worker its
/// own, same as the per-worker engine instances.

namespace mbe {

class EnumContext {
 public:
  struct Checkpoint {
    size_t ids_top = 0;
    size_t words_top = 0;
  };

  /// Buffers currently handed out (0 when all frames have unwound).
  size_t live_buffers() const { return ids_.top + words_.top; }

  /// `tracker` receives the pool's byte accounting (capacity held);
  /// defaults to the process-wide tracker. `paranoid` frees buffers on
  /// rewind (see file comment) — test-only, pooling wins disappear.
  explicit EnumContext(util::MemoryTracker* tracker = nullptr,
                       bool paranoid = false);
  ~EnumContext();

  EnumContext(const EnumContext&) = delete;
  EnumContext& operator=(const EnumContext&) = delete;

  /// A cleared `VertexId` buffer, valid until the enclosing frame rewinds.
  std::vector<VertexId>* AcquireIds();

  /// A cleared `uint64_t` word buffer (for bitmap scratch), same lifetime.
  std::vector<uint64_t>* AcquireWords();

  Checkpoint MakeCheckpoint() const;

  /// Returns every buffer acquired since `cp` to the pool. Buffers from
  /// deeper, already-rewound frames must not be touched afterwards.
  void Rewind(const Checkpoint& cp);

  /// RAII checkpoint/rewind for one recursion depth.
  class Frame {
   public:
    explicit Frame(EnumContext* ctx) : ctx_(ctx), cp_(ctx->MakeCheckpoint()) {}
    ~Frame() { ctx_->Rewind(cp_); }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

    std::vector<VertexId>* AcquireIds() { return ctx_->AcquireIds(); }
    std::vector<uint64_t>* AcquireWords() { return ctx_->AcquireWords(); }

   private:
    EnumContext* ctx_;
    Checkpoint cp_;
  };

  /// Bytes of vector capacity currently held by the pool.
  uint64_t held_bytes() const { return held_bytes_; }

  /// High-water mark of held_bytes() over this context's lifetime
  /// (feeds the `arena_peak_bytes` stat).
  uint64_t peak_bytes() const { return peak_bytes_; }

  /// Releases all pooled capacity back to the allocator (frames must be
  /// unwound). Peak accounting is kept.
  void Trim();

  /// Makes every EnumContext constructed afterwards paranoid, regardless of
  /// its constructor argument. Lets tests run the real engines (which build
  /// their contexts internally) in free-on-rewind mode under ASan, turning
  /// any scratch buffer escaping its frame into a reported use-after-free.
  static void SetParanoidForTesting(bool on);

 private:
  // Stable-address stack: `bufs[0, top)` are handed out, `bufs[top, size)`
  // pooled for reuse. `bytes[i]` is the capacity last recorded for
  // `bufs[i]` — growth while handed out is observed (and accounted) at
  // rewind time.
  template <typename T>
  struct Pool {
    std::vector<std::unique_ptr<std::vector<T>>> bufs;
    std::vector<uint64_t> bytes;
    size_t top = 0;
  };

  template <typename T>
  std::vector<T>* Acquire(Pool<T>* pool);
  template <typename T>
  void RewindPool(Pool<T>* pool, size_t to);
  template <typename T>
  void TrimPool(Pool<T>* pool);

  /// Returns up to `freed` bytes to the global MemoryBudget, bounded by
  /// what this context successfully charged (declined charges are not
  /// recorded, so releases stay balanced).
  void ReleaseBudget(uint64_t freed);

  Pool<VertexId> ids_;
  Pool<uint64_t> words_;

  util::MemoryTracker* tracker_;
  bool paranoid_;
  uint64_t held_bytes_ = 0;
  uint64_t peak_bytes_ = 0;
  /// Bytes this context successfully charged to the global MemoryBudget.
  uint64_t budget_charged_ = 0;
};

}  // namespace mbe

#endif  // PMBE_CORE_ENUM_CONTEXT_H_
