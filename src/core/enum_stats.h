#ifndef PMBE_CORE_ENUM_STATS_H_
#define PMBE_CORE_ENUM_STATS_H_

#include <cstdint>

/// \file
/// Counters shared by all enumerators. The pruning-efficiency table (T3)
/// and the ablation figure (F4) are computed from these, and the tests use
/// them to assert structural properties (e.g. aggregation strictly reduces
/// the number of generated nodes).

namespace mbe {

/// Per-run enumeration counters. Additive: MergeFrom combines the counters
/// of parallel workers.
struct EnumStats {
  /// Enumeration-tree nodes whose child generation was attempted.
  uint64_t nodes_expanded = 0;
  /// Children that passed the maximality check (== bicliques emitted).
  uint64_t maximal = 0;
  /// Children that failed the maximality check (wasted work the paper's
  /// techniques aim to avoid).
  uint64_t non_maximal = 0;
  /// Candidate groups dropped because their local neighborhood became empty.
  uint64_t candidates_dropped = 0;
  /// Candidate groups absorbed directly into R' (full local neighborhood).
  uint64_t candidates_absorbed = 0;
  /// Vertices merged away by equivalence-class aggregation.
  uint64_t vertices_aggregated = 0;
  /// Trie nodes visited across all classification passes (the prefix-tree
  /// cost measure).
  uint64_t trie_probes = 0;
  /// Sum of |loc| over the same classification passes (what a direct,
  /// per-candidate scan would have probed). trie_probes <= local_scan_size,
  /// with the gap measuring shared-prefix savings.
  uint64_t local_scan_size = 0;
  /// Subtrees skipped entirely at the root because an earlier vertex
  /// dominates the root's L.
  uint64_t subtrees_pruned = 0;
  /// Sorted-list <-> bitmap representation switches made by the adaptive
  /// density policy (core/vertex_set.h).
  uint64_t bitmap_conversions = 0;
  /// Intersections answered by the word-AND bitmap kernels instead of a
  /// merge/gallop over sorted lists.
  uint64_t bitmap_kernel_calls = 0;
  /// Batched classification passes executed by the candidate frontier
  /// (docs/TUNING.md): one per trie batch walk, one per group for the
  /// bitmap/list batch kernels. Each pass replaces up to `batch_width`
  /// per-candidate passes over the same data.
  uint64_t batch_kernel_calls = 0;
  /// Candidates whose classification was served from a precomputed batch
  /// window instead of an individual pass.
  uint64_t batch_candidates_classified = 0;
  /// Histogram of filled batch-window widths, bucketed by power of two:
  /// bucket b counts windows of width in (2^(b-1), 2^b] (bucket 0 =
  /// width 1). Tail windows land in small buckets; a healthy batched run
  /// concentrates mass in the bucket of the configured width.
  uint64_t batch_width_histogram[7] = {};
  /// Instruction-set level of the vectorized kernel table the run
  /// dispatched to (numeric simd::DispatchLevel: 0 scalar, 1 sse4.2,
  /// 2 avx2). NOT additive: merged via max (workers share one process-wide
  /// dispatch).
  uint64_t kernel_dispatch = 0;
  /// Calls dispatched through the vectorized kernel table, by family
  /// (util/simd.h KernelOp). Process-wide snapshot deltas captured around
  /// the run by the API facade; tiny operands served by inline scalar
  /// loops are not counted.
  uint64_t simd_intersect_calls = 0;
  /// difference / is_subset family.
  uint64_t simd_difference_calls = 0;
  /// mask_count / mask_filter (membership-mask probe) family.
  uint64_t simd_mask_calls = 0;
  /// and_words / and_count (bitmap word) family.
  uint64_t simd_word_calls = 0;
  /// classify_batch / and_count_batch (batched multi-mask) family.
  uint64_t simd_batch_calls = 0;
  /// High-water mark of the per-thread EnumContext scratch arenas, in
  /// bytes. NOT additive: merged via max (workers' arenas coexist, but
  /// the per-thread peak is the capacity-planning number).
  uint64_t arena_peak_bytes = 0;
  /// Tasks taken from another worker's deque (Scheduling::kStealing only).
  uint64_t steals = 0;
  /// Shard tasks produced by splitting heavy subtrees (counts every shard
  /// of a split subtree, including the one the splitter runs itself).
  uint64_t split_tasks = 0;
  /// Batched flushes performed by the per-worker BufferedSinks; together
  /// with `maximal` this gives the emissions-per-lock amortization.
  uint64_t sink_flushes = 0;
  /// Wall time workers spent executing subtree/shard tasks, summed over
  /// workers, in nanoseconds (parallel driver only).
  uint64_t busy_ns = 0;
  /// Wall time workers spent waiting for work (steal attempts, backoff),
  /// summed over workers, in nanoseconds. busy/(busy+idle) is the
  /// scheduler's load-balance figure of merit.
  uint64_t idle_ns = 0;
  /// Faults fired by the injection framework during the run (0 unless the
  /// build defines PMBE_FAULT_INJECTION and a point is armed).
  uint64_t faults_injected = 0;
  /// Times a consumer shed a memory-hungry acceleration because the
  /// memory budget was under pressure (declined bitmap, skipped trie,
  /// shrunken sink buffer, declined subtree split).
  uint64_t degradations = 0;
  /// High-water mark of bytes charged to the run's MemoryBudget. NOT
  /// additive: merged via max (all workers charge one shared budget).
  /// Provably <= Options::max_memory_bytes when a cap is set.
  uint64_t peak_charged_bytes = 0;
  /// Heartbeat sweeps performed by the worker watchdog monitor.
  uint64_t watchdog_checks = 0;
  /// Time the run spent admitted-but-waiting before its first task ran on
  /// a shared scheduler (serve/session_pool.h), in nanoseconds. 0 for
  /// standalone runs.
  uint64_t queue_wait_ns = 0;
  /// Frontier snapshots persisted by a checkpointing run (periodic plus
  /// the final one at drain; snapshot/checkpoint.h).
  uint64_t checkpoints_written = 0;
  /// 1 when the workload-adaptive auto-tuner picked this run's knobs
  /// (RunOptions::auto_tune; docs/TUNING.md). NOT additive: merged via
  /// max, like the other run-level (not per-worker) fields below.
  uint64_t auto_tuned = 0;
  /// Knobs the tuner chose (valid only when auto_tuned; bitmap_density is
  /// stored ×1000 to stay integral). NOT additive: merged via max.
  uint64_t tuned_batch_width = 0;
  uint64_t tuned_max_split = 0;
  uint64_t tuned_bitmap_density_x1000 = 0;
  /// Decision-table row the tuner matched (core/tuner.h TunerRule numeric
  /// value; 0 = none). NOT additive: merged via max.
  uint64_t tuner_rule = 0;
  /// Engine the tuner selected AND the session honored (core/tuner.h
  /// TunerEngine numeric value; 0 = no engine override — untuned run, or
  /// the query pinned its engine / was not engine-interchangeable). NOT
  /// additive: merged via max.
  uint64_t tuned_algorithm = 0;

  void MergeFrom(const EnumStats& other) {
    nodes_expanded += other.nodes_expanded;
    maximal += other.maximal;
    non_maximal += other.non_maximal;
    candidates_dropped += other.candidates_dropped;
    candidates_absorbed += other.candidates_absorbed;
    vertices_aggregated += other.vertices_aggregated;
    trie_probes += other.trie_probes;
    local_scan_size += other.local_scan_size;
    subtrees_pruned += other.subtrees_pruned;
    bitmap_conversions += other.bitmap_conversions;
    bitmap_kernel_calls += other.bitmap_kernel_calls;
    batch_kernel_calls += other.batch_kernel_calls;
    batch_candidates_classified += other.batch_candidates_classified;
    for (int b = 0; b < 7; ++b) {
      batch_width_histogram[b] += other.batch_width_histogram[b];
    }
    if (other.kernel_dispatch > kernel_dispatch) {
      kernel_dispatch = other.kernel_dispatch;
    }
    simd_intersect_calls += other.simd_intersect_calls;
    simd_difference_calls += other.simd_difference_calls;
    simd_mask_calls += other.simd_mask_calls;
    simd_word_calls += other.simd_word_calls;
    simd_batch_calls += other.simd_batch_calls;
    if (other.arena_peak_bytes > arena_peak_bytes) {
      arena_peak_bytes = other.arena_peak_bytes;
    }
    steals += other.steals;
    split_tasks += other.split_tasks;
    sink_flushes += other.sink_flushes;
    busy_ns += other.busy_ns;
    idle_ns += other.idle_ns;
    faults_injected += other.faults_injected;
    degradations += other.degradations;
    if (other.peak_charged_bytes > peak_charged_bytes) {
      peak_charged_bytes = other.peak_charged_bytes;
    }
    watchdog_checks += other.watchdog_checks;
    queue_wait_ns += other.queue_wait_ns;
    checkpoints_written += other.checkpoints_written;
    if (other.auto_tuned > auto_tuned) auto_tuned = other.auto_tuned;
    if (other.tuned_batch_width > tuned_batch_width) {
      tuned_batch_width = other.tuned_batch_width;
    }
    if (other.tuned_max_split > tuned_max_split) {
      tuned_max_split = other.tuned_max_split;
    }
    if (other.tuned_bitmap_density_x1000 > tuned_bitmap_density_x1000) {
      tuned_bitmap_density_x1000 = other.tuned_bitmap_density_x1000;
    }
    if (other.tuner_rule > tuner_rule) tuner_rule = other.tuner_rule;
    if (other.tuned_algorithm > tuned_algorithm) {
      tuned_algorithm = other.tuned_algorithm;
    }
  }
};

}  // namespace mbe

#endif  // PMBE_CORE_ENUM_STATS_H_
