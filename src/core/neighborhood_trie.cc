#include "core/neighborhood_trie.h"

#include <algorithm>
#include <numeric>

namespace mbe {

void NeighborhoodTrie::Build(std::span<const std::span<const VertexId>> lists,
                             std::span<const uint32_t> order) {
  PMBE_DCHECK(order.size() == lists.size());
  packed_.clear();
  first_group_.clear();
  next_group_.assign(lists.size(), -1);
  total_length_ = 0;
  max_depth_ = 0;

  // Node ids of the current path, one per depth.
  std::vector<int32_t> path;
  std::span<const VertexId> prev{};
  for (uint32_t g : order) {
    std::span<const VertexId> cur = lists[g];
    total_length_ += cur.size();
    if (cur.empty()) {
      // Empty lists always count 0; they are not represented in the trie.
      // Keep `prev`/`path` untouched: an empty list is a prefix of
      // everything, so it does not break the lexicographic ordering, and
      // clearing the running path here would make the next list re-insert
      // nodes the trie already has (duplicating its full path).
      continue;
    }
    // Shared path = common prefix with the previously inserted list
    // (correct because the insertion order is lexicographic).
    size_t common = 0;
    const size_t limit = std::min(prev.size(), cur.size());
    while (common < limit && prev[common] == cur[common]) ++common;
    PMBE_DCHECK(common <= path.size());
    path.resize(common);
    for (size_t d = common; d < cur.size(); ++d) {
      const int32_t id = static_cast<int32_t>(packed_.size());
      packed_.push_back(Pack(cur[d], static_cast<uint32_t>(d)));
      first_group_.push_back(-1);
      path.push_back(id);
    }
    max_depth_ = std::max(max_depth_, static_cast<uint32_t>(cur.size()));
    // Chain this group at its terminal node.
    const int32_t terminal = path.back();
    next_group_[g] = first_group_[terminal];
    first_group_[terminal] = static_cast<int32_t>(g);
    prev = cur;
  }
}

void NeighborhoodTrie::Build(
    std::span<const std::span<const VertexId>> lists) {
  std::vector<uint32_t> order(lists.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return std::lexicographical_compare(lists[a].begin(), lists[a].end(),
                                        lists[b].begin(), lists[b].end());
  });
  Build(lists, order);
}

void NeighborhoodTrie::BuildUnordered(
    std::span<const std::span<const VertexId>> lists) {
  packed_.clear();
  first_group_.clear();
  next_group_.assign(lists.size(), -1);
  total_length_ = 0;
  max_depth_ = 0;

  // Working set of group ids with nonempty lists.
  std::vector<uint32_t> idx;
  idx.reserve(lists.size());
  for (uint32_t g = 0; g < lists.size(); ++g) {
    total_length_ += lists[g].size();
    if (!lists[g].empty()) idx.push_back(g);
  }

  // Recursive DFS: partition idx[lo, hi) — all sharing a prefix of length
  // `depth` — by their element at `depth`, emitting nodes in strict
  // preorder (ClassifyAll's depth-stack scan depends on it). Recursion
  // depth is bounded by the longest list, i.e. by |L| of the enumeration
  // node, the same bound as the enumeration recursion itself.
  auto rec = [&](auto&& self, size_t lo, size_t hi, uint32_t depth) -> void {
    max_depth_ = std::max(max_depth_, depth + 1);
    // Skip the sort when the range is already uniform (the common case
    // deep inside shared prefixes).
    bool uniform = true;
    const VertexId head = lists[idx[lo]][depth];
    for (size_t i = lo + 1; i < hi; ++i) {
      if (lists[idx[i]][depth] != head) {
        uniform = false;
        break;
      }
    }
    if (!uniform) {
      std::sort(idx.begin() + static_cast<ptrdiff_t>(lo),
                idx.begin() + static_cast<ptrdiff_t>(hi),
                [&](uint32_t a, uint32_t b) {
                  return lists[a][depth] < lists[b][depth];
                });
    }
    size_t run_lo = lo;
    while (run_lo < hi) {
      const VertexId v = lists[idx[run_lo]][depth];
      size_t run_hi = run_lo + 1;
      while (run_hi < hi && lists[idx[run_hi]][depth] == v) ++run_hi;

      const int32_t node = static_cast<int32_t>(packed_.size());
      packed_.push_back(Pack(v, depth));
      first_group_.push_back(-1);
      // Split the run into terminals (list ends here) and descenders.
      size_t descend_lo = run_lo;
      for (size_t i = run_lo; i < run_hi; ++i) {
        const uint32_t g = idx[i];
        if (lists[g].size() == depth + 1) {
          next_group_[g] = first_group_[node];
          first_group_[node] = static_cast<int32_t>(g);
          std::swap(idx[i], idx[descend_lo]);
          ++descend_lo;
        }
      }
      if (descend_lo < run_hi) self(self, descend_lo, run_hi, depth + 1);
      run_lo = run_hi;
    }
  };
  if (!idx.empty()) rec(rec, 0, idx.size(), 0);
}

size_t NeighborhoodTrie::ClassifyAll(const MembershipMask& mask,
                                     std::vector<uint32_t>* counts) const {
  counts->assign(next_group_.size(), 0);
  count_stack_.resize(max_depth_ + 1);
  uint32_t* stack = count_stack_.data();
  uint32_t* out = counts->data();
  const uint64_t* packed = packed_.data();
  const uint64_t* words = mask.words();
  const size_t n = packed_.size();
  // The node stream is sequential but the mask probes hop across the
  // word-packed bitmap, so pull the probe word of the node 8 ahead (and
  // the next cache line of the stream) while the stack update retires.
  constexpr size_t kPrefetchAhead = 8;
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchAhead < n) {
      const uint64_t ahead = packed[i + kPrefetchAhead];
      __builtin_prefetch(words + (static_cast<VertexId>(ahead) >> 6));
      if ((i & 7) == 0) __builtin_prefetch(packed + i + kPrefetchAhead);
    }
    const uint64_t node = packed[i];
    const VertexId vertex = static_cast<VertexId>(node);
    const uint32_t depth = static_cast<uint32_t>(node >> 32);
    PMBE_DCHECK(vertex < mask.universe());
    const uint32_t bit =
        static_cast<uint32_t>((words[vertex >> 6] >> (vertex & 63)) & 1);
    const uint32_t count = (depth ? stack[depth - 1] : 0u) + bit;
    stack[depth] = count;
    for (int32_t g = first_group_[i]; g >= 0; g = next_group_[g]) {
      out[g] = count;
    }
  }
  return n;
}

size_t NeighborhoodTrie::ClassifyAllBatch(const uint64_t* batch_words,
                                          size_t width,
                                          uint32_t* counts) const {
  // Same walk as ClassifyAll with the per-depth running count widened to a
  // row of `width` lanes. The interleaved layout puts all of a vertex's
  // slot words on one (or two) cache lines, so each node costs one stream
  // read plus `width` bit probes of hot data instead of `width` separate
  // passes re-reading the node stream.
  std::fill_n(counts, next_group_.size() * width, 0u);
  count_stack_.resize((static_cast<size_t>(max_depth_) + 1) * width);
  uint32_t* stack = count_stack_.data();
  const uint64_t* packed = packed_.data();
  const size_t n = packed_.size();
  constexpr size_t kPrefetchAhead = 8;
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchAhead < n) {
      const uint64_t ahead = packed[i + kPrefetchAhead];
      __builtin_prefetch(batch_words +
                         (static_cast<size_t>(static_cast<VertexId>(ahead)) >>
                          6) * width);
      if ((i & 7) == 0) __builtin_prefetch(packed + i + kPrefetchAhead);
    }
    const uint64_t node = packed[i];
    const VertexId vertex = static_cast<VertexId>(node);
    const uint32_t depth = static_cast<uint32_t>(node >> 32);
    const uint64_t* row =
        batch_words + (static_cast<size_t>(vertex) >> 6) * width;
    const unsigned shift = static_cast<unsigned>(vertex & 63);
    uint32_t* dst = stack + static_cast<size_t>(depth) * width;
    if (depth) {
      const uint32_t* src = dst - width;
      for (size_t w = 0; w < width; ++w) {
        dst[w] = src[w] + static_cast<uint32_t>((row[w] >> shift) & 1);
      }
    } else {
      for (size_t w = 0; w < width; ++w) {
        dst[w] = static_cast<uint32_t>((row[w] >> shift) & 1);
      }
    }
    for (int32_t g = first_group_[i]; g >= 0; g = next_group_[g]) {
      uint32_t* out_row = counts + static_cast<size_t>(g) * width;
      for (size_t w = 0; w < width; ++w) out_row[w] = dst[w];
    }
  }
  return n;
}

size_t NeighborhoodTrie::MemoryBytes() const {
  return packed_.capacity() * sizeof(uint64_t) +
         first_group_.capacity() * sizeof(int32_t) +
         next_group_.capacity() * sizeof(int32_t) +
         count_stack_.capacity() * sizeof(uint32_t);
}

}  // namespace mbe
