#ifndef PMBE_CORE_NEIGHBORHOOD_TRIE_H_
#define PMBE_CORE_NEIGHBORHOOD_TRIE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/set_ops.h"
#include "util/common.h"

/// \file
/// The prefix tree at the heart of the reconstruction (DESIGN.md §3.2).
///
/// A NeighborhoodTrie stores the *local neighborhoods* (sorted subsets of
/// the current L) of all live candidate/forbidden groups at one enumeration
/// node. Groups whose neighborhoods share a prefix under the canonical
/// left-side order share a path. Given a new sub-biclique left set L'
/// (presented as a membership mask), a single linear pass over the trie
/// computes |loc(g) ∩ L'| for every group simultaneously — each trie node
/// is probed once, so vertices on shared prefixes are probed once instead
/// of once per group. This is the batch "node checking" acceleration
/// attributed to the prefix-tree approach.
///
/// Layout: nodes are stored in DFS preorder, each carrying (vertex, depth)
/// packed into one word. The classification pass keeps a per-depth running
/// count in a small stack that stays in L1, so each probe touches exactly
/// one sequential stream plus the membership mask — the same per-probe
/// cost as a direct list scan, at a fraction of the probes.

namespace mbe {

/// Arena-backed prefix tree over sorted vertex lists.
class NeighborhoodTrie {
 public:
  NeighborhoodTrie() = default;

  /// Rebuilds the trie from `lists`, one sorted vertex list per group,
  /// visited in the order given by `order` (group indices). The visited
  /// sequence must be lexicographically non-decreasing — the builder
  /// shares exactly the common prefix of consecutive lists, which is the
  /// full shared path if and only if the order is lexicographic. Groups
  /// with identical lists share their terminal. Empty lists always
  /// classify to 0 and may appear anywhere in the order (an empty list is
  /// a prefix of everything, so it never breaks the ordering invariant and
  /// is skipped without disturbing the running path).
  void Build(std::span<const std::span<const VertexId>> lists,
             std::span<const uint32_t> order);

  /// Convenience overload computing the lexicographic order internally.
  void Build(std::span<const std::span<const VertexId>> lists);

  /// Builds from lists in arbitrary order via most-significant-digit
  /// bucketing: groups are partitioned recursively by their element at each
  /// depth, so shared prefixes are discovered with single-integer
  /// comparisons instead of full lexicographic compares. This is the
  /// builder the enumerator uses (its group lists arrive unsorted).
  void BuildUnordered(std::span<const std::span<const VertexId>> lists);

  /// Computes counts[g] = |list(g) ∩ mask| for every group in one linear
  /// pass. `counts` is resized to the number of groups. Returns the number
  /// of trie nodes probed (for the stats counters).
  size_t ClassifyAll(const MembershipMask& mask,
                     std::vector<uint32_t>* counts) const;

  /// Batched form: classifies every group against `width` membership masks
  /// in ONE pass over the trie. `batch_words` is the interleaved
  /// word-transposed layout of util/simd.h's classify_batch (bit x of mask
  /// slot w is bit x%64 of batch_words[(x/64)*width + w]); `counts` is a
  /// caller-sized [num_groups() × width] row-major matrix receiving
  /// counts[g*width + w] = |list(g) ∩ mask w|. Each trie node is probed
  /// once per call instead of once per mask, so the node stream (the
  /// memory-bound side) is read width× less often. Returns the number of
  /// trie nodes probed, identical to one ClassifyAll pass.
  size_t ClassifyAllBatch(const uint64_t* batch_words, size_t width,
                          uint32_t* counts) const;

  /// Number of trie nodes.
  size_t num_nodes() const { return packed_.size(); }

  /// Number of groups the trie was built over.
  size_t num_groups() const { return next_group_.size(); }

  /// Sum of list lengths the trie was built over (what an unshared scan
  /// would probe).
  size_t total_list_length() const { return total_length_; }

  /// Bytes held by the arenas (for memory accounting).
  size_t MemoryBytes() const;

 private:
  static uint64_t Pack(VertexId vertex, uint32_t depth) {
    return static_cast<uint64_t>(depth) << 32 | vertex;
  }

  // Preorder node stream: low 32 bits = left vertex, high 32 bits = depth.
  std::vector<uint64_t> packed_;
  // Head of the group chain terminating at each node (-1 = none).
  std::vector<int32_t> first_group_;
  // Per group: next group sharing the same terminal (-1 = end).
  std::vector<int32_t> next_group_;
  size_t total_length_ = 0;
  uint32_t max_depth_ = 0;
  // Scratch reused across ClassifyAll calls (mutable: Classify is logically
  // const; one trie belongs to one enumeration worker).
  mutable std::vector<uint32_t> count_stack_;
};

}  // namespace mbe

#endif  // PMBE_CORE_NEIGHBORHOOD_TRIE_H_
