#ifndef PMBE_CORE_SUBTREE_H_
#define PMBE_CORE_SUBTREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/set_ops.h"
#include "graph/bipartite_graph.h"
#include "graph/two_hop.h"
#include "util/common.h"

/// \file
/// Root construction for the per-vertex subtree decomposition.
///
/// The enumeration space is partitioned by the first (smallest, under the
/// preprocessed right-side order) R-vertex of each maximal biclique:
/// subtree(v) enumerates exactly the maximal bicliques whose minimum
/// R-vertex is v. Its root has L0 = N(v); candidates are the two-hop
/// neighbors after v; two-hop neighbors before v act as forbidden (Q)
/// witnesses. This decomposition is what both the sequential drivers and
/// the parallel scheduler fan out over.

namespace mbe {

/// One root entry: a two-hop neighbor of the subtree's seed vertex. Its
/// local neighborhood lives in the shared `SubtreeRoot::locs` arena
/// (offset/length), so rebuilding a root reuses one flat buffer instead of
/// allocating a vector per entry.
struct RootEntry {
  VertexId w = kInvalidVertex;
  bool forbidden = false;           ///< true when w precedes the seed
  uint32_t loc_off = 0;             ///< offset into SubtreeRoot::locs
  uint32_t loc_len = 0;             ///< |N(w) ∩ L0|
};

/// Root state of subtree(v).
struct SubtreeRoot {
  VertexId seed = kInvalidVertex;
  std::vector<VertexId> l0;          ///< N(v)
  std::vector<RootEntry> entries;    ///< two-hop neighbors with locals
  std::vector<VertexId> locs;        ///< arena: all entry locals, sorted

  /// The local neighborhood N(entry.w) ∩ L0 of `entry`, sorted.
  std::span<const VertexId> LocOf(const RootEntry& entry) const {
    return {locs.data() + entry.loc_off, entry.loc_len};
  }
};

/// Reusable scratch for building subtree roots.
class SubtreeBuilder {
 public:
  explicit SubtreeBuilder(const BipartiteGraph& graph);

  /// Builds the root of subtree(v). Returns false when the subtree is
  /// trivially empty or pruned without any enumeration:
  ///  * deg(v) == 0 (no biclique has v with nonempty L), or
  ///  * some forbidden w dominates L0 (L0 ⊆ N(w)); then every biclique of
  ///    the subtree is enumerated in an earlier subtree. `*pruned` is set
  ///    to distinguish this case for the stats counters.
  ///
  /// On success, entries with empty locals are already dropped and entries
  /// whose local equals L0 are reported via `*absorbed` (they belong in R0)
  /// rather than in `root->entries`.
  bool Build(VertexId v, SubtreeRoot* root, std::vector<VertexId>* absorbed,
             bool* pruned);

  const BipartiteGraph& graph() const { return graph_; }

 private:
  const BipartiteGraph& graph_;
  TwoHopScratch two_hop_;
  std::vector<VertexId> n2_;
  MembershipMask l_mask_;
};

/// Estimated work of subtree(v): the standard `min(|L0|, |C0|) * |C0|`
/// node-count proxy used for load-aware scheduling decisions. Returns 0
/// for empty subtrees. Cheap: degree lookups plus one two-hop scan.
uint64_t EstimateSubtreeWork(const SubtreeRoot& root);

}  // namespace mbe

#endif  // PMBE_CORE_SUBTREE_H_
