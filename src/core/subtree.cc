#include "core/subtree.h"

#include <algorithm>

namespace mbe {

SubtreeBuilder::SubtreeBuilder(const BipartiteGraph& graph)
    : graph_(graph),
      two_hop_(graph.num_right()),
      l_mask_(graph.num_left()) {}

bool SubtreeBuilder::Build(VertexId v, SubtreeRoot* root,
                           std::vector<VertexId>* absorbed, bool* pruned) {
  *pruned = false;
  root->seed = v;
  root->entries.clear();
  root->locs.clear();
  absorbed->clear();

  auto nbrs = graph_.RightNeighbors(v);
  if (nbrs.empty()) return false;
  root->l0.assign(nbrs.begin(), nbrs.end());

  two_hop_.RightTwoHop(graph_, v, &n2_);

  l_mask_.Set(root->l0);
  const size_t l0_size = root->l0.size();
  bool dominated = false;
  for (VertexId w : n2_) {
    RootEntry entry;
    entry.w = w;
    entry.forbidden = w < v;
    entry.loc_off = static_cast<uint32_t>(root->locs.size());
    for (VertexId x : graph_.RightNeighbors(w)) {
      if (l_mask_.Test(x)) root->locs.push_back(x);
    }
    entry.loc_len = static_cast<uint32_t>(root->locs.size() - entry.loc_off);
    if (entry.loc_len == 0) continue;  // unreachable from L0: N2 guarantees >0
    if (entry.loc_len == l0_size) {
      root->locs.resize(entry.loc_off);  // loc == L0: no need to keep it
      if (entry.forbidden) {
        // An earlier vertex dominates L0: the whole subtree is covered by
        // subtree(w). Prune.
        dominated = true;
        break;
      }
      absorbed->push_back(w);
      continue;
    }
    root->entries.push_back(entry);
  }
  l_mask_.Clear(root->l0);

  if (dominated) {
    *pruned = true;
    return false;
  }
  return true;
}

uint64_t EstimateSubtreeWork(const SubtreeRoot& root) {
  const uint64_t c = root.entries.size();
  const uint64_t h = std::min<uint64_t>(root.l0.size(), c);
  return h * c;
}

}  // namespace mbe
