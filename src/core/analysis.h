#ifndef PMBE_CORE_ANALYSIS_H_
#define PMBE_CORE_ANALYSIS_H_

#include <cstdint>
#include <mutex>
#include <queue>
#include <vector>

#include "core/biclique.h"
#include "core/sink.h"
#include "util/common.h"

/// \file
/// Analytics sinks for enumeration results. The application domains that
/// motivate MBE (fraud rings, co-expression modules, taste groups) rarely
/// want the raw result set — they want its largest members and its shape.
/// These sinks compute that online, without materializing the results.

namespace mbe {

/// Shape summary of a stream of bicliques.
struct ResultShape {
  uint64_t count = 0;
  uint64_t edge_total = 0;     ///< Σ |L|·|R|
  size_t max_left = 0;         ///< largest |L| seen
  size_t max_right = 0;        ///< largest |R| seen
  uint64_t max_edges = 0;      ///< largest |L|·|R| seen
  /// log2-bucketed histogram of |L|·|R|: bucket i counts bicliques with
  /// 2^i <= edges < 2^(i+1).
  std::vector<uint64_t> edge_histogram;
};

/// Accumulates a ResultShape online. Thread-safe.
class ShapeSink : public ResultSink {
 public:
  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    const uint64_t edges = static_cast<uint64_t>(left.size()) * right.size();
    std::lock_guard<std::mutex> lock(mu_);
    ++shape_.count;
    shape_.edge_total += edges;
    shape_.max_left = std::max(shape_.max_left, left.size());
    shape_.max_right = std::max(shape_.max_right, right.size());
    shape_.max_edges = std::max(shape_.max_edges, edges);
    size_t bucket = 0;
    while ((edges >> (bucket + 1)) > 0) ++bucket;
    if (shape_.edge_histogram.size() <= bucket) {
      shape_.edge_histogram.resize(bucket + 1, 0);
    }
    ++shape_.edge_histogram[bucket];
  }

  /// Snapshot of the accumulated shape.
  ResultShape shape() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shape_;
  }

 private:
  mutable std::mutex mu_;
  ResultShape shape_;
};

/// Keeps the k bicliques with the most edges (ties broken towards the
/// lexicographically smallest, for determinism across thread schedules).
/// Thread-safe.
class TopKSink : public ResultSink {
 public:
  explicit TopKSink(size_t k) : k_(k) { PMBE_CHECK(k > 0); }

  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    Biclique b{{left.begin(), left.end()}, {right.begin(), right.end()}};
    std::lock_guard<std::mutex> lock(mu_);
    heap_.push(std::move(b));
    if (heap_.size() > k_) heap_.pop();
  }

  /// The top-k bicliques, most edges first. Drains the sink.
  std::vector<Biclique> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Biclique> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(heap_.top());
      heap_.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

 private:
  // Min-heap by (edges, then reverse-lex so that the lexicographically
  // larger biclique is evicted first on ties).
  struct WorseFirst {
    bool operator()(const Biclique& a, const Biclique& b) const {
      const uint64_t ea = a.num_edges();
      const uint64_t eb = b.num_edges();
      if (ea != eb) return ea > eb;  // min-heap on edges
      return a < b;                  // evict the lexicographically larger
    }
  };

  size_t k_;
  std::mutex mu_;
  std::priority_queue<Biclique, std::vector<Biclique>, WorseFirst> heap_;
};

/// Fans one emission out to several sinks (e.g. count + shape + top-k in a
/// single pass). Stops as soon as any child requests it.
class TeeSink : public ResultSink {
 public:
  explicit TeeSink(std::vector<ResultSink*> sinks)
      : sinks_(std::move(sinks)) {
    for (ResultSink* s : sinks_) PMBE_CHECK(s != nullptr);
  }

  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    for (ResultSink* s : sinks_) s->Emit(left, right);
  }

  bool ShouldStop() const override {
    for (ResultSink* s : sinks_) {
      if (s->ShouldStop()) return true;
    }
    return false;
  }

 private:
  std::vector<ResultSink*> sinks_;
};

}  // namespace mbe

#endif  // PMBE_CORE_ANALYSIS_H_
