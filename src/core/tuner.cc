#include "core/tuner.h"

#include <algorithm>

#include "util/random.h"

namespace mbe {

GraphProfile ProfileGraph(const BipartiteGraph& graph, uint64_t seed) {
  GraphProfile p;
  p.num_left = graph.num_left();
  p.num_right = graph.num_right();
  p.num_edges = graph.num_edges();
  if (p.num_left == 0 || p.num_right == 0) return p;
  p.density = static_cast<double>(p.num_edges) /
              (static_cast<double>(p.num_left) *
               static_cast<double>(p.num_right));
  p.avg_right_degree =
      static_cast<double>(p.num_edges) / static_cast<double>(p.num_right);
  p.degree_skew =
      p.avg_right_degree > 0
          ? static_cast<double>(graph.MaxRightDegree()) / p.avg_right_degree
          : 0.0;

  // Wedge sample: for up to 64 right vertices, sum the left degrees of
  // their neighborhoods. This upper-bounds |N(N(v))| (each two-hop vertex
  // counted once per wedge) at O(deg(v)) per sample instead of a full
  // two-hop materialization.
  constexpr uint64_t kSamples = 64;
  const uint64_t n = p.num_right;
  util::Rng rng(seed);
  double wedge_sum = 0.0;
  uint64_t sampled = 0;
  for (uint64_t i = 0; i < std::min(kSamples, n); ++i) {
    const VertexId v =
        static_cast<VertexId>(n <= kSamples ? i : rng.Below(n));
    double wedges = 0.0;
    for (VertexId u : graph.RightNeighbors(v)) {
      wedges += static_cast<double>(graph.LeftDegree(u));
    }
    wedge_sum += wedges;
    ++sampled;
  }
  if (sampled > 0) {
    p.two_hop_ratio =
        (wedge_sum / static_cast<double>(sampled)) /
        static_cast<double>(p.num_left);
  }
  return p;
}

const char* TunerRuleName(TunerRule rule) {
  switch (rule) {
    case TunerRule::kNone:
      return "none";
    case TunerRule::kTiny:
      return "tiny";
    case TunerRule::kDense:
      return "dense";
    case TunerRule::kSkewed:
      return "skewed";
    case TunerRule::kSparse:
      return "sparse";
  }
  return "?";
}

const char* TunerEngineName(TunerEngine engine) {
  switch (engine) {
    case TunerEngine::kNone:
      return "none";
    case TunerEngine::kMbet:
      return "MBET";
    case TunerEngine::kBbk:
      return "BBK";
  }
  return "?";
}

TunerDecision Tune(const GraphProfile& profile) {
  TunerDecision d;
  // Rows are matched top to bottom; thresholds come from the
  // bench_b12_batch / bench_s11 sweeps on the gen:: families
  // (docs/TUNING.md records the numbers behind each row).
  if (profile.num_edges < 256) {
    // Too little total work to amortize windows, wide bitmaps, or split
    // bookkeeping; keep the frontier narrow and subtrees whole. MBET's
    // fixed costs are negligible here and it filters by size for free.
    d.rule = TunerRule::kTiny;
    d.bitmap_density = 0.10;
    d.batch_width = 8;
    d.max_split = 1;
    d.engine = TunerEngine::kMbet;
  } else if (profile.density >= 0.08 || profile.two_hop_ratio >= 4.0) {
    // Dense / crowded candidate space: nodes are wide (windows fill),
    // locals fill words (bitmaps pay off earlier), subtrees are bushy
    // enough that the default split floor is fine. The regime where the
    // prefix tree's shared-prefix savings beat BBK's lighter nodes.
    d.rule = TunerRule::kDense;
    d.bitmap_density = 0.05;
    d.batch_width = 32;
    d.max_split = 8;
    d.engine = TunerEngine::kMbet;
  } else if (profile.degree_skew >= 8.0) {
    // Hub-dominated: the few hub subtrees must split finer to keep workers
    // fed, and BBK's root-clipped locals sidestep rescanning the hub rows
    // at every node — the dominant cost in this regime. Density 0 forces
    // bitmaps: BBK's witness probes are 2x faster dense (the engine sweep
    // behind bench/BENCH_engines.json), and MBET measured flat, so the
    // knob is safe even when the query pins the engine.
    d.rule = TunerRule::kSkewed;
    d.bitmap_density = 0.0;
    d.batch_width = 8;
    d.max_split = 32;
    d.engine = TunerEngine::kBbk;
  } else {
    // Sparse, roughly uniform: trie construction is overhead-dominated on
    // these shapes, so the pivot-free engine wins; bitmaps forced for the
    // same reason as the skewed row (subtree universes are one vertex
    // degree wide, so dense words stay small).
    d.rule = TunerRule::kSparse;
    d.bitmap_density = 0.0;
    d.batch_width = 16;
    d.max_split = 8;
    d.engine = TunerEngine::kBbk;
  }
  return d;
}

}  // namespace mbe
