#include "core/set_ops.h"

#include <algorithm>

#include "core/biclique.h"
#include "util/simd.h"
#include "util/simd_scalar.h"

namespace mbe {

namespace {

// When one operand is at least this many times longer than the other,
// gallop (binary search each element of the short side in the long side)
// instead of dispatching the block-merge kernel.
constexpr size_t kGallopRatio = 32;

// Below this operand size the function-pointer dispatch plus the output
// resize costs more than the work; stay on inline scalar loops.
constexpr size_t kSmallOperand = 16;

using simd::internal::BranchlessLowerBound;

// Galloping intersection: binary-search each element of `small` in the
// remaining suffix of `big`. The branchless lower bound keeps the search
// pipeline free of mispredicts (docs/SET_REPRESENTATION.md).
size_t GallopIntersect(std::span<const VertexId> small,
                       std::span<const VertexId> big, VertexId* out) {
  const VertexId* lo = big.data();
  const VertexId* end = big.data() + big.size();
  size_t count = 0;
  for (VertexId x : small) {
    lo = BranchlessLowerBound(lo, static_cast<size_t>(end - lo), x);
    if (lo == end) break;
    if (*lo == x) {
      if (out != nullptr) out[count] = x;
      ++count;
      ++lo;
    }
  }
  return count;
}

size_t GallopIntersectSizeCapped(std::span<const VertexId> small,
                                 std::span<const VertexId> big, size_t cap) {
  const VertexId* lo = big.data();
  const VertexId* end = big.data() + big.size();
  size_t count = 0;
  for (VertexId x : small) {
    if (count >= cap) return cap;
    lo = BranchlessLowerBound(lo, static_cast<size_t>(end - lo), x);
    if (lo == end) break;
    if (*lo == x) {
      ++count;
      ++lo;
    }
  }
  return count < cap ? count : cap;
}

bool Lopsided(size_t small, size_t big) {
  return small == 0 || big / small >= kGallopRatio;
}

// Sizes `*out` so a kernel may scribble `kStorePad` lanes past `bound`
// results, without paying vector::clear + re-zeroing on the hot path.
VertexId* KernelOutput(std::vector<VertexId>* out, size_t bound) {
  out->resize(bound + simd::kStorePad);
  return out->data();
}

}  // namespace

void Intersect(std::span<const VertexId> a, std::span<const VertexId> b,
               std::vector<VertexId>* out) {
  IntersectInto(a, b, out, IntersectStrategy::kAuto);
}

void IntersectInto(std::span<const VertexId> a, std::span<const VertexId> b,
                   std::vector<VertexId>* out, IntersectStrategy strategy) {
  if (a.size() > b.size()) std::swap(a, b);
  switch (strategy) {
    case IntersectStrategy::kAuto:
      if (Lopsided(a.size(), b.size())) {
        out->resize(GallopIntersect(a, b, KernelOutput(out, a.size())));
        return;
      }
      if (a.size() < kSmallOperand) {
        out->resize(simd::internal::ScalarIntersect(
            a.data(), a.size(), b.data(), b.size(), KernelOutput(out, a.size())));
        return;
      }
      [[fallthrough]];
    case IntersectStrategy::kMerge:
      simd::CountKernelCall(simd::KernelOp::kIntersect);
      out->resize(simd::Kernels().intersect(a.data(), a.size(), b.data(),
                                            b.size(),
                                            KernelOutput(out, a.size())));
      return;
    case IntersectStrategy::kGallop:
      out->resize(GallopIntersect(a, b, KernelOutput(out, a.size())));
      return;
  }
}

size_t IntersectSize(std::span<const VertexId> a,
                     std::span<const VertexId> b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (Lopsided(a.size(), b.size())) return GallopIntersect(a, b, nullptr);
  if (a.size() < kSmallOperand) {
    return simd::internal::ScalarIntersectSize(a.data(), a.size(), b.data(),
                                               b.size());
  }
  simd::CountKernelCall(simd::KernelOp::kIntersect);
  return simd::Kernels().intersect_size(a.data(), a.size(), b.data(),
                                        b.size());
}

size_t IntersectSizeCapped(std::span<const VertexId> a,
                           std::span<const VertexId> b, size_t cap) {
  if (a.size() > b.size()) std::swap(a, b);
  if (Lopsided(a.size(), b.size())) {
    return GallopIntersectSizeCapped(a, b, cap);
  }
  if (a.size() < kSmallOperand) {
    return simd::internal::ScalarIntersectSizeCapped(a.data(), a.size(),
                                                     b.data(), b.size(), cap);
  }
  simd::CountKernelCall(simd::KernelOp::kIntersect);
  return simd::Kernels().intersect_size_capped(a.data(), a.size(), b.data(),
                                               b.size(), cap);
}

bool IsSubset(std::span<const VertexId> a, std::span<const VertexId> b) {
  if (a.size() > b.size()) return false;
  if (Lopsided(a.size(), b.size()) || a.size() < kSmallOperand) {
    return simd::internal::ScalarIsSubset(a.data(), a.size(), b.data(),
                                          b.size());
  }
  simd::CountKernelCall(simd::KernelOp::kDifference);
  return simd::Kernels().is_subset(a.data(), a.size(), b.data(), b.size());
}

void Union(std::span<const VertexId> a, std::span<const VertexId> b,
           std::vector<VertexId>* out) {
  out->clear();
  out->reserve(a.size() + b.size());
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      out->push_back(a[i++]);
    } else if (a[i] > b[j]) {
      out->push_back(b[j++]);
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
  out->insert(out->end(), a.begin() + i, a.end());
  out->insert(out->end(), b.begin() + j, b.end());
}

void Difference(std::span<const VertexId> a, std::span<const VertexId> b,
                std::vector<VertexId>* out) {
  if (a.size() < kSmallOperand || b.size() < kSmallOperand) {
    out->resize(simd::internal::ScalarDifference(
        a.data(), a.size(), b.data(), b.size(), KernelOutput(out, a.size())));
    return;
  }
  simd::CountKernelCall(simd::KernelOp::kDifference);
  out->resize(simd::Kernels().difference(a.data(), a.size(), b.data(),
                                         b.size(),
                                         KernelOutput(out, a.size())));
}

bool Contains(std::span<const VertexId> a, VertexId x) {
  const VertexId* lo = BranchlessLowerBound(a.data(), a.size(), x);
  return lo != a.data() + a.size() && *lo == x;
}

size_t IntersectSizeWithMask(std::span<const VertexId> s,
                             const MembershipMask& mask) {
  if (s.empty()) return 0;
  if (s.size() < kSmallOperand) {
    return simd::internal::ScalarMaskCount(s.data(), s.size(), mask.words());
  }
  simd::CountKernelCall(simd::KernelOp::kMask);
  return simd::Kernels().mask_count(s.data(), s.size(), mask.words());
}

void IntersectWithMask(std::span<const VertexId> s, const MembershipMask& mask,
                       std::vector<VertexId>* out) {
  if (s.empty()) {
    out->clear();
    return;
  }
  if (s.size() < kSmallOperand) {
    out->resize(simd::internal::ScalarMaskFilter(
        s.data(), s.size(), mask.words(), KernelOutput(out, s.size())));
    return;
  }
  simd::CountKernelCall(simd::KernelOp::kMask);
  out->resize(simd::Kernels().mask_filter(s.data(), s.size(), mask.words(),
                                          KernelOutput(out, s.size())));
}

}  // namespace mbe
