#include "core/set_ops.h"

#include <algorithm>

#include "core/biclique.h"

namespace mbe {

namespace {

// When one operand is at least this many times longer than the other,
// gallop (binary search each element of the short side in the long side)
// instead of a linear merge.
constexpr size_t kGallopRatio = 32;

// Galloping intersection: for each x in `small`, binary-search in `big`.
// Visitor is called for each common element; returns false to stop early.
template <typename Visitor>
void GallopCommon(std::span<const VertexId> small,
                  std::span<const VertexId> big, Visitor&& visit) {
  const VertexId* lo = big.data();
  const VertexId* end = big.data() + big.size();
  for (VertexId x : small) {
    lo = std::lower_bound(lo, end, x);
    if (lo == end) return;
    if (*lo == x) {
      if (!visit(x)) return;
      ++lo;
    }
  }
}

// Linear merge intersection; same visitor contract.
template <typename Visitor>
void MergeCommon(std::span<const VertexId> a, std::span<const VertexId> b,
                 Visitor&& visit) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      if (!visit(a[i])) return;
      ++i;
      ++j;
    }
  }
}

template <typename Visitor>
void ForEachCommon(std::span<const VertexId> a, std::span<const VertexId> b,
                   Visitor&& visit) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return;
  if (b.size() / a.size() >= kGallopRatio) {
    GallopCommon(a, b, visit);
  } else {
    MergeCommon(a, b, visit);
  }
}

}  // namespace

void Intersect(std::span<const VertexId> a, std::span<const VertexId> b,
               std::vector<VertexId>* out) {
  out->clear();
  ForEachCommon(a, b, [out](VertexId x) {
    out->push_back(x);
    return true;
  });
}

void IntersectInto(std::span<const VertexId> a, std::span<const VertexId> b,
                   std::vector<VertexId>* out, IntersectStrategy strategy) {
  out->clear();
  auto visit = [out](VertexId x) {
    out->push_back(x);
    return true;
  };
  switch (strategy) {
    case IntersectStrategy::kAuto:
      ForEachCommon(a, b, visit);
      break;
    case IntersectStrategy::kMerge:
      MergeCommon(a, b, visit);
      break;
    case IntersectStrategy::kGallop:
      if (a.size() > b.size()) std::swap(a, b);
      if (!a.empty()) GallopCommon(a, b, visit);
      break;
  }
}

size_t IntersectSize(std::span<const VertexId> a,
                     std::span<const VertexId> b) {
  size_t count = 0;
  ForEachCommon(a, b, [&count](VertexId) {
    ++count;
    return true;
  });
  return count;
}

size_t IntersectSizeCapped(std::span<const VertexId> a,
                           std::span<const VertexId> b, size_t cap) {
  size_t count = 0;
  ForEachCommon(a, b, [&count, cap](VertexId) {
    ++count;
    return count < cap;
  });
  return count;
}

bool IsSubset(std::span<const VertexId> a, std::span<const VertexId> b) {
  if (a.size() > b.size()) return false;
  return IntersectSize(a, b) == a.size();
}

void Union(std::span<const VertexId> a, std::span<const VertexId> b,
           std::vector<VertexId>* out) {
  out->clear();
  out->reserve(a.size() + b.size());
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      out->push_back(a[i++]);
    } else if (a[i] > b[j]) {
      out->push_back(b[j++]);
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
  out->insert(out->end(), a.begin() + i, a.end());
  out->insert(out->end(), b.begin() + j, b.end());
}

void Difference(std::span<const VertexId> a, std::span<const VertexId> b,
                std::vector<VertexId>* out) {
  out->clear();
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      out->push_back(a[i++]);
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  out->insert(out->end(), a.begin() + i, a.end());
}

bool Contains(std::span<const VertexId> a, VertexId x) {
  return std::binary_search(a.begin(), a.end(), x);
}

size_t IntersectSizeWithMask(std::span<const VertexId> s,
                             const MembershipMask& mask) {
  size_t count = 0;
  for (VertexId x : s) count += mask.Test(x) ? 1 : 0;
  return count;
}

void IntersectWithMask(std::span<const VertexId> s, const MembershipMask& mask,
                       std::vector<VertexId>* out) {
  out->clear();
  for (VertexId x : s) {
    if (mask.Test(x)) out->push_back(x);
  }
}

}  // namespace mbe
