#include "core/vertex_set.h"

#include <algorithm>
#include <utility>

#include "core/set_ops.h"
#include "util/simd.h"
#include "util/simd_scalar.h"

namespace mbe {

namespace {

// Below this list length the mixed list×bitmap paths stay on inline
// probes; mirrors the threshold in core/set_ops.cc.
constexpr size_t kSmallList = 16;

}  // namespace

VertexSet VertexSet::OfSorted(std::vector<VertexId> sorted, size_t universe) {
  PMBE_DCHECK(std::is_sorted(sorted.begin(), sorted.end()));
  PMBE_DCHECK(sorted.empty() || sorted.back() < universe);
  VertexSet s;
  s.size_ = sorted.size();
  s.sorted_ = std::move(sorted);
  s.universe_ = universe;
  s.rep_ = Rep::kSorted;
  return s;
}

VertexSet VertexSet::OfBitmap(std::vector<uint64_t> words, size_t universe) {
  PMBE_DCHECK(words.size() == util::WordsFor(universe));
  VertexSet s;
  s.size_ = util::CountBits(words);
  s.words_ = std::move(words);
  s.universe_ = universe;
  s.rep_ = Rep::kBitmap;
  return s;
}

VertexSet VertexSet::Make(std::span<const VertexId> sorted, size_t universe,
                          const VertexSetPolicy& policy) {
  if (policy.PickBitmap(sorted.size(), universe)) {
    std::vector<uint64_t> words(util::WordsFor(universe), 0);
    util::SetBits(sorted, words);
    return OfBitmap(std::move(words), universe);
  }
  return OfSorted(std::vector<VertexId>(sorted.begin(), sorted.end()),
                  universe);
}

bool VertexSet::Contains(VertexId x) const {
  if (x >= universe_) return false;
  return rep_ == Rep::kBitmap ? util::TestBit(words_, x)
                              : mbe::Contains(sorted_, x);
}

void VertexSet::ConvertTo(Rep rep) {
  if (rep == rep_) return;
  if (rep == Rep::kBitmap) {
    words_.assign(util::WordsFor(universe_), 0);
    util::SetBits(sorted_, words_);
    sorted_.clear();
  } else {
    sorted_.clear();
    sorted_.reserve(size_);
    util::AppendBitsToList(words_, &sorted_);
    words_.clear();
  }
  rep_ = rep;
}

bool VertexSet::Adapt(const VertexSetPolicy& policy) {
  const Rep want =
      policy.PickBitmap(size_, universe_) ? Rep::kBitmap : Rep::kSorted;
  if (want == rep_) return false;
  ConvertTo(want);
  return true;
}

std::vector<VertexId> VertexSet::ToSortedList() const {
  if (rep_ == Rep::kSorted) return sorted_;
  std::vector<VertexId> out;
  out.reserve(size_);
  util::AppendBitsToList(words_, &out);
  return out;
}

bool operator==(const VertexSet& a, const VertexSet& b) {
  if (a.universe_ != b.universe_ || a.size_ != b.size_) return false;
  if (a.rep_ == b.rep_) {
    return a.rep_ == VertexSet::Rep::kSorted ? a.sorted_ == b.sorted_
                                             : a.words_ == b.words_;
  }
  return a.ToSortedList() == b.ToSortedList();
}

void IntersectInto(std::span<const uint64_t> a, std::span<const uint64_t> b,
                   std::span<uint64_t> out) {
  util::AndWords(a, b, out);
}

size_t IntersectSize(std::span<const uint64_t> a,
                     std::span<const uint64_t> b) {
  return util::AndCountBits(a, b);
}

void IntersectInto(std::span<const VertexId> a, std::span<const uint64_t> b,
                   std::vector<VertexId>* out) {
  if (a.size() < kSmallList) {
    out->clear();
    for (VertexId x : a) {
      if (util::TestBit(b, x)) out->push_back(x);
    }
    return;
  }
  simd::CountKernelCall(simd::KernelOp::kMask);
  out->resize(a.size() + simd::kStorePad);
  out->resize(
      simd::Kernels().mask_filter(a.data(), a.size(), b.data(), out->data()));
}

size_t IntersectSize(std::span<const VertexId> a,
                     std::span<const uint64_t> b) {
  if (a.size() < kSmallList) {
    return simd::internal::ScalarMaskCount(a.data(), a.size(), b.data());
  }
  simd::CountKernelCall(simd::KernelOp::kMask);
  return simd::Kernels().mask_count(a.data(), a.size(), b.data());
}

void IntersectInto(const VertexSet& a, const VertexSet& b, VertexSet* out) {
  PMBE_DCHECK(a.universe() == b.universe());
  using Rep = VertexSet::Rep;
  if (a.rep() == Rep::kBitmap && b.rep() == Rep::kBitmap) {
    std::vector<uint64_t> words(a.words().size());
    util::AndWords(a.words(), b.words(), words);
    *out = VertexSet::OfBitmap(std::move(words), a.universe());
    return;
  }
  std::vector<VertexId> list;
  if (a.rep() == Rep::kSorted && b.rep() == Rep::kSorted) {
    IntersectInto(a.sorted(), b.sorted(), &list);
  } else if (a.rep() == Rep::kSorted) {
    IntersectInto(a.sorted(), b.words(), &list);
  } else {
    IntersectInto(b.sorted(), a.words(), &list);
  }
  *out = VertexSet::OfSorted(std::move(list), a.universe());
}

size_t IntersectSize(const VertexSet& a, const VertexSet& b) {
  PMBE_DCHECK(a.universe() == b.universe());
  using Rep = VertexSet::Rep;
  if (a.rep() == Rep::kBitmap && b.rep() == Rep::kBitmap) {
    return util::AndCountBits(a.words(), b.words());
  }
  if (a.rep() == Rep::kSorted && b.rep() == Rep::kSorted) {
    return IntersectSize(a.sorted(), b.sorted());
  }
  return a.rep() == Rep::kSorted ? IntersectSize(a.sorted(), b.words())
                                 : IntersectSize(b.sorted(), a.words());
}

}  // namespace mbe
