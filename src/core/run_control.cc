#include "core/run_control.h"

#include <utility>

#include "util/common.h"

namespace mbe {

const char* TerminationName(Termination termination) {
  switch (termination) {
    case Termination::kComplete:
      return "complete";
    case Termination::kCancelled:
      return "cancelled";
    case Termination::kDeadline:
      return "deadline";
    case Termination::kBudget:
      return "budget";
    case Termination::kMemoryLimit:
      return "memory-limit";
    case Termination::kInternal:
      return "internal";
    case Termination::kCheckpointed:
      return "checkpointed";
  }
  return "?";
}

RunController::RunController(const RunControl& spec) : spec_(spec) {
  if (spec_.progress) {
    next_progress_s_ = spec_.progress_every_s > 0 ? spec_.progress_every_s : 0;
  }
}

void RunController::RequestStop(Termination reason) {
  bool expected = false;
  if (stop_.compare_exchange_strong(expected, true,
                                    std::memory_order_acq_rel)) {
    reason_.store(static_cast<int>(reason), std::memory_order_relaxed);
  }
}

void RunController::ReportInternal(const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(message_mu_);
    if (message_.empty()) message_ = message;
  }
  RequestStop(Termination::kInternal);
}

std::string RunController::message() const {
  std::lock_guard<std::mutex> lock(message_mu_);
  return message_;
}

uint32_t RunController::RegisterWorker() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

bool RunController::AdmitEmit() {
  // Only the result budget rejects emissions — and it is exact by the
  // counter alone, so no pre-check on the stop flag is needed (or wanted:
  // a cancel/deadline stop must not drop the buffered results workers
  // flush while draining; each one is a genuine maximal biclique and
  // belongs to the delivered prefix).
  const uint64_t n = results_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (spec_.max_results > 0) {
    if (n > spec_.max_results) {
      // Lost the race past the budget: undo and drop.
      results_.fetch_sub(1, std::memory_order_relaxed);
      RequestStop(Termination::kBudget);
      return false;
    }
    if (n == spec_.max_results) RequestStop(Termination::kBudget);
  }
  return true;
}

bool RunController::Checkpoint(uint32_t slot, const EnumStats& stats) {
  // Memory exhaustion is latched by whichever allocation site tripped the
  // budget; every worker converts it here into a cooperative stop.
  if (budget_ != nullptr && budget_->exhausted()) {
    RequestStop(Termination::kMemoryLimit);
    return true;
  }

  // Cancellation token next: it is the caller's most urgent signal.
  if (spec_.cancel != nullptr &&
      spec_.cancel->load(std::memory_order_relaxed)) {
    RequestStop(Termination::kCancelled);
    return true;
  }

  // Read the clock only when something consumes it.
  const bool needs_clock = spec_.deadline_seconds > 0 || spec_.progress;
  const double elapsed = needs_clock ? timer_.Seconds() : 0;
  if (spec_.deadline_seconds > 0 && elapsed >= spec_.deadline_seconds) {
    RequestStop(Termination::kDeadline);
    return true;
  }

  bool fire_progress = false;
  RunProgress progress;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PMBE_CHECK(slot < slots_.size());
    nodes_total_ += stats.nodes_expanded - slots_[slot].nodes_expanded;
    slots_[slot] = stats;
    if (spec_.max_nodes_expanded > 0 &&
        nodes_total_ >= spec_.max_nodes_expanded) {
      RequestStop(Termination::kBudget);
      return true;
    }
    if (spec_.progress && elapsed >= next_progress_s_) {
      next_progress_s_ =
          elapsed + (spec_.progress_every_s > 0 ? spec_.progress_every_s : 0);
      for (const EnumStats& s : slots_) progress.stats.MergeFrom(s);
      progress.results = results();
      progress.elapsed_seconds = elapsed;
      fire_progress = true;
    }
  }
  // Fire outside mu_ so a slow callback never stalls other workers'
  // checkpoints; progress_mu_ serializes the callback with itself.
  if (fire_progress) {
    std::lock_guard<std::mutex> lock(progress_mu_);
    spec_.progress(progress);
  }
  return stop_requested();
}

}  // namespace mbe
