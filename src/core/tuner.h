#ifndef PMBE_CORE_TUNER_H_
#define PMBE_CORE_TUNER_H_

#include <cstdint>

#include "graph/bipartite_graph.h"

/// \file
/// Workload-adaptive auto-tuner (docs/TUNING.md).
///
/// The enumeration knobs that matter for throughput — the bitmap density
/// threshold, the batched-frontier width, and the subtree split factor —
/// have workload-dependent sweet spots: dense graphs want aggressive
/// bitmaps and wide batches (their nodes are wide and their locals fill
/// words), skewed graphs want finer splitting (a few hub subtrees carry
/// most of the work), tiny graphs want none of the machinery. Instead of
/// hand-setting them per dataset, `ProfileGraph` samples cheap statistics
/// of the built graph once (O(edges) worst case, sampled well below that)
/// and `Tune` maps them through a small measured decision table. The
/// chosen knobs are recorded in `EnumStats` (auto_tuned / tuned_*) and the
/// bench JSON context so tuning regressions stay visible.
///
/// The tuner only picks knob *values*; every knob keeps its manual
/// override path (Options fields / CLI flags), and results are
/// byte-identical under any decision — the knobs it touches trade speed
/// and memory, never output.

namespace mbe {

/// Cheap sampled statistics of a built graph. Computed once at
/// `Engine::Build` time, after side-swapping and ordering, so the right
/// side is the enumeration side.
struct GraphProfile {
  uint64_t num_left = 0;
  uint64_t num_right = 0;
  uint64_t num_edges = 0;
  /// Edge density: edges / (left · right). 0 for degenerate sides.
  double density = 0.0;
  /// Mean right degree: edges / right (the mean subtree |L0|).
  double avg_right_degree = 0.0;
  /// Max right degree / mean right degree: >> 1 means a few hub subtrees
  /// dominate the work.
  double degree_skew = 0.0;
  /// Sampled wedge ratio: E_v[Σ_{u ∈ N(v)} degL(u)] / num_left over
  /// sampled right vertices v — an O(deg) upper-bound proxy for the
  /// two-hop neighborhood size |N(N(v))|, i.e. how crowded the candidate
  /// space of a subtree root is.
  double two_hop_ratio = 0.0;
};

/// Profiles `graph`. Deterministic in `seed` (drives the right-vertex
/// sample; at most 64 vertices are sampled).
GraphProfile ProfileGraph(const BipartiteGraph& graph, uint64_t seed);

/// Decision-table rows, in match order. Numeric values are stable: they
/// are stored in `EnumStats::tuner_rule` and printed by `pmbe --stats`.
enum class TunerRule : uint8_t {
  kNone = 0,    ///< tuner not consulted
  kTiny = 1,    ///< too little work for the acceleration machinery
  kDense = 2,   ///< dense graph: wide nodes, word-filling locals
  kSkewed = 3,  ///< hub-dominated: a few subtrees carry the run
  kSparse = 4,  ///< sparse, roughly uniform (the default regime)
};

/// Human-readable rule name ("dense", "skewed", ...).
const char* TunerRuleName(TunerRule rule);

/// Engine recommendation of the decision table. The tuner lives below the
/// API layer, so it cannot name `mbe::Algorithm`; the session maps kMbet /
/// kBbk onto the corresponding Algorithm values when it honors the pick.
/// Numeric values are stable: they are stored in
/// `EnumStats::tuned_algorithm` and printed by `pmbe --stats`.
enum class TunerEngine : uint8_t {
  kNone = 0,  ///< no recommendation (tuner not consulted)
  kMbet = 1,  ///< prefix-tree enumerator: dense / tiny regimes
  kBbk = 2,   ///< pivot-free left extension: large sparse / skewed regimes
};

/// Human-readable engine name ("MBET", "BBK", "none").
const char* TunerEngineName(TunerEngine engine);

/// Knobs chosen by the tuner. Field meanings match MbetOptions /
/// RunOptions; defaults equal the untuned defaults.
struct TunerDecision {
  double bitmap_density = 0.10;
  uint32_t batch_width = 16;
  uint32_t max_split = 8;
  TunerRule rule = TunerRule::kNone;
  /// Which engine the profile's regime favors (docs/TUNING.md). Advisory:
  /// the session only honors it for plain-enumeration queries where the
  /// two engines are interchangeable (no size thresholds, no baked core
  /// reduction, no branch-and-bound watermark) — the enumerated *set* is
  /// identical either way, so honoring the pick never changes output.
  TunerEngine engine = TunerEngine::kNone;
};

/// Maps a profile through the decision table (docs/TUNING.md documents
/// each row and the measurements behind it). Pure function of the
/// profile: same graph + seed → same decision.
TunerDecision Tune(const GraphProfile& profile);

}  // namespace mbe

#endif  // PMBE_CORE_TUNER_H_
