#ifndef PMBE_CORE_MBET_H_
#define PMBE_CORE_MBET_H_

#include <memory>
#include <vector>

#include "core/enum_context.h"
#include "core/enum_stats.h"
#include "core/neighborhood_trie.h"
#include "core/run_control.h"
#include "core/set_ops.h"
#include "core/sink.h"
#include "core/subtree.h"
#include "core/vertex_set.h"
#include "graph/bipartite_graph.h"
#include "util/memory.h"

/// \file
/// MBET — the prefix-tree based maximal biclique enumerator (the core
/// contribution reconstructed from "Maximal Biclique Enumeration: A Prefix
/// Tree Based Approach", ICDE 2024; see DESIGN.md §3 for the reconstruction
/// notes).
///
/// Design summary:
///  * Per-vertex subtree decomposition (core/subtree.h); within a subtree
///    the algorithm runs the classic (L, R, C, Q) backtracking.
///  * Every live candidate/forbidden vertex keeps its *local neighborhood*
///    `loc(w) = N(w) ∩ L`. Vertices with identical locals are aggregated
///    into one **group** (they occur in exactly the same maximal bicliques
///    of the subtree).
///  * All groups of a node live in a **prefix tree** over their locals;
///    traversing a candidate classifies every group — absorbed into R',
///    surviving candidate, dropped, or maximality witness — in one linear
///    pass over the trie, probing shared prefixes once.
///  * Per-level state is arena-backed (one flat buffer for all locals, one
///    for all member lists); groups are plain metadata, so the hot loops
///    never allocate and group sorting moves 32-byte records.
///  * Each subtree's vertices are renumbered into the local universe
///    [0, |L0|), and nodes the trie does not take classify through
///    fixed-width bitmaps when their locals are dense enough
///    (core/vertex_set.h; `bitmap_density`). Per-node scratch comes from
///    an EnumContext arena instead of ad-hoc vectors.
///  * `MbetOptions` exposes each technique as a switch for the ablation
///    experiments, plus the MBETM space-optimized mode which stores no
///    local lists and recomputes counts from the graph.
///
/// Thread-compatibility: one MbetEnumerator instance is single-threaded
/// state; the parallel driver creates one per worker over the shared graph.

namespace mbe {

/// Tuning and ablation switches for MbetEnumerator.
struct MbetOptions {
  /// Classify groups through the prefix tree (the headline technique).
  /// When false, classification scans each group's local list directly.
  bool use_trie = true;
  /// Merge candidates with identical local neighborhoods into groups.
  bool use_aggregation = true;
  /// Drop forbidden (Q) groups whose local neighborhood becomes empty.
  /// Disabling keeps them alive forever (ablation: Q-filtering benefit).
  bool prune_q = true;
  /// MBETM space mode: do not store local lists per node; recompute counts
  /// from graph adjacency. Forces use_trie = false.
  bool recompute_locals = false;
  /// Build the prefix tree only for nodes with at least this many
  /// candidate groups: one classification pass runs per candidate, so wide
  /// nodes amortize the build cost while narrow nodes classify directly.
  /// 1 forces a trie everywhere (sensitivity axis, see bench_s11).
  uint32_t trie_min_groups = 4;
  /// Density threshold of the adaptive set-representation layer
  /// (docs/SET_REPRESENTATION.md). Nodes the trie does not take whose
  /// average local density (Σ|loc| / (groups · |L0|)) reaches this
  /// threshold classify through fixed-width bitmaps over the renumbered
  /// local universe instead of per-element scans. 0 forces bitmaps on
  /// every such node; > 1 disables them. Building with
  /// -DPMBE_FORCE_BITMAP=ON pins this to 0 (the CI differential leg).
  /// Ignored in MBETM mode, which stores no locals to convert.
  double bitmap_density = 0.10;
  /// Width of the batched candidate frontier (docs/TUNING.md): up to this
  /// many sibling candidates are classified in ONE pass over the node's
  /// trie / bitmaps / group lists, with their membership masks packed into
  /// an interleaved word-transposed layout so the streamed side is read
  /// once per window instead of once per candidate. Counts are the exact
  /// intersection sizes the per-candidate pass computes, so results are
  /// byte-identical at every width. 1 disables batching (the ablation /
  /// differential baseline); capped at 64. Ignored in MBETM mode, which
  /// stores no locals to pack.
  uint32_t batch_width = 16;

  /// Size-constrained enumeration: only maximal bicliques (of the whole
  /// graph) with |L| >= min_left and |R| >= min_right are emitted, and the
  /// thresholds prune the search: a subtree whose L is already below
  /// min_left, or whose achievable |R| upper bound is below min_right, is
  /// never expanded. Defaults (1, 1) enumerate everything.
  uint32_t min_left = 1;
  uint32_t min_right = 1;

  /// Branch-and-bound hook for maximum-biclique search: when non-null, a
  /// subtree is pruned if |L'| * (upper bound on |R|) <= *best_edges.
  /// The caller raises the watermark from its sink as better bicliques
  /// arrive (see core/maximum_biclique.h). Pruned subtrees may contain
  /// maximal bicliques, so this must stay null for full enumeration.
  const uint64_t* best_edges = nullptr;
  /// Optional working-set accounting for the memory experiments.
  util::MemoryTracker* memory = nullptr;
};

/// The prefix-tree based enumerator.
class MbetEnumerator {
 public:
  /// `graph` must outlive the enumerator. The right side of `graph` should
  /// already be relabeled into the desired enumeration order (see
  /// graph/ordering.h); the enumerator traverses right ids ascending.
  MbetEnumerator(const BipartiteGraph& graph, const MbetOptions& options);

  /// Enumerates every maximal biclique of the graph into `sink`.
  void EnumerateAll(ResultSink* sink);

  /// Enumerates the maximal bicliques whose minimum right vertex is `v`.
  /// The union over all v of EnumerateSubtree(v) is EnumerateAll; subtrees
  /// are independent, which is what the parallel driver exploits.
  void EnumerateSubtree(VertexId v, ResultSink* sink);

  /// Subtree splitting support for the work-stealing scheduler. Returns
  /// how many shards subtree(v)'s top-level candidate loop is worth
  /// splitting into: >1 only when the subtree's estimated work
  /// (EstimateSubtreeWork) reaches `min_work` and the subtree is deep
  /// enough (min side >= kMinSplitSide) to amortize the root build and
  /// depth-0 scan every shard re-pays. Shards are sized to carry at least
  /// `min_work` each; capped at `max_shards` and the candidate count.
  /// Builds the root once as a side effect (into the enumerator's scratch);
  /// EnumerateShard rebuilds it, so the hint stays stateless to callers.
  uint32_t SplitHint(VertexId v, uint32_t max_shards, uint64_t min_work);

  /// Enumerates shard `shard` of `num_shards` of subtree(v): the root
  /// biclique goes to shard 0, and the depth-0 candidate loop traverses
  /// only positions `pos % num_shards == shard`, marking the others
  /// forbidden. That reproduces the exact sequential node state at every
  /// traversed position (in the sequential order every traversed candidate
  /// ends forbidden before later positions run — see Recurse), so the
  /// multiset union over all shards equals EnumerateSubtree(v).
  /// (shard=0, num_shards=1) is exactly EnumerateSubtree.
  void EnumerateShard(VertexId v, uint32_t shard, uint32_t num_shards,
                      ResultSink* sink);

  const EnumStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EnumStats(); }

  /// Attaches run control: the enumerator polls `controller` once per
  /// node expansion (and per candidate traversal) and stops cooperatively
  /// when it trips. Pass nullptr to detach. Call before enumerating.
  void SetRunController(RunController* controller) {
    poller_.Attach(controller);
  }

 private:
  /// One candidate/forbidden equivalence class at an enumeration node.
  /// Pure metadata: the vertex data lives in the level arenas.
  struct Group {
    uint32_t loc_off = 0;   ///< offset into Level::locs
    uint32_t loc_len = 0;   ///< |loc| (valid even in MBETM mode)
    uint32_t mem_off = 0;   ///< offset into Level::members
    uint32_t mem_len = 0;   ///< number of member vertices (>= 1)
    uint64_t loc_hash = 0;  ///< order-dependent hash of loc
    bool forbidden = false; ///< Q-side group
  };

  /// Reusable per-depth state (one per recursion level, reused across
  /// siblings).
  struct Level {
    std::vector<Group> groups;
    std::vector<VertexId> locs;     ///< arena: all locals, concatenated
    std::vector<VertexId> members;  ///< arena: all member lists
    std::vector<VertexId> l;        ///< this node's L (local ids; see below)
    std::vector<VertexId> r;        ///< this node's R
    NeighborhoodTrie trie;          ///< built over groups' locals
    bool trie_built = false;
    std::vector<uint32_t> counts;   ///< classification output buffer
    std::vector<uint32_t> order;    ///< candidate traversal order buffer
    std::vector<std::span<const VertexId>> lists;  ///< trie build scratch

    // Bitmap classification state for this node, valid only inside its
    // Recurse frame: EnumContext word buffers holding one fixed-width
    // bitmap per group (loc_words) and the current L' (lp_words) over the
    // subtree's local universe.
    bool words_built = false;
    std::vector<uint64_t>* loc_words = nullptr;
    std::vector<uint64_t>* lp_words = nullptr;
    size_t words_per_group = 0;

    // Batched-frontier state, valid only inside this node's Recurse frame:
    // the classification counts of up to MbetOptions::batch_width upcoming
    // eligible sibling candidates, precomputed in one pass (FillBatch).
    // batch_counts is a [groups × batch_filled] row-major matrix;
    // batch_slot_group[s] is the group index occupying slot s; batch_next
    // is the next unconsumed slot. batch_words holds the interleaved
    // word-transposed candidate masks (EnumContext-backed).
    bool batch_on = false;
    std::vector<uint32_t> batch_counts;
    std::vector<uint32_t> batch_slot_group;
    size_t batch_filled = 0;
    size_t batch_next = 0;
    std::vector<uint64_t>* batch_words = nullptr;
    uint64_t total_loc = 0;  ///< Σ|loc| over groups (logical probe charge)

    std::span<const VertexId> LocOf(const Group& g) const {
      return {locs.data() + g.loc_off, g.loc_len};
    }
    std::span<const VertexId> MembersOf(const Group& g) const {
      return {members.data() + g.mem_off, g.mem_len};
    }
  };

  Level& LevelAt(size_t depth);

  /// Combined cooperative stop poll: run controller, then the sink chain.
  bool Stopped(ResultSink* sink) {
    return poller_.ShouldStop(stats_) || sink->ShouldStop();
  }

  /// Expands the node stored at `levels_[depth]`.
  void Recurse(size_t depth, ResultSink* sink);

  /// Classifies all groups of `lvl` against the current lp_mask_:
  /// fills lvl.counts with |loc(g) ∩ L'|.
  void Classify(Level& lvl);

  /// Batched frontier (docs/TUNING.md): packs the next up-to-batch_width
  /// eligible candidates of lvl.order starting at position `start` into
  /// the interleaved mask buffer and precomputes every group's count
  /// against each of them in one pass over the trie / bitmaps / lists.
  /// Eligibility mirrors the traversal loop's skip predicates (shard
  /// ownership at depth 0, min_left), which are static over the node, so
  /// the window covers exactly the candidates that will consume counts.
  void FillBatch(Level& lvl, size_t start, bool sharded);

  /// Copies precomputed window column `slot` into lvl.counts and charges
  /// the same logical probe counters Classify would have.
  void ConsumeBatchColumn(Level& lvl, size_t slot);

  /// Builds the child level at depth+1 from the parent's classification
  /// (child.l must already hold L'). `traversed` is the group being
  /// traversed; `absorbed_members` receives the members of absorbed
  /// candidate groups.
  Level& BuildChild(size_t depth, uint32_t traversed,
                    std::vector<VertexId>* absorbed_members);

  /// Sorts `lvl`'s groups by the cheap surrogate key (forbidden, |loc|,
  /// hash) and merges groups with equal locals and equal status. Hash
  /// collisions only cost a missed merge, never correctness. Requires the
  /// locs arena to be populated (also in MBETM mode, where the caller
  /// drops the arena afterwards).
  void SortAndAggregate(Level* lvl);

  /// Emits (l, r), translating `l` from subtree-local ids back to global
  /// vertex ids when the subtree is renumbered.
  void EmitBiclique(std::span<const VertexId> l, std::span<const VertexId> r,
                    ResultSink* sink);

  /// Logical bytes of a level's current contents (memory accounting).
  static uint64_t LevelBytes(const Level& lvl);

  const BipartiteGraph& graph_;
  MbetOptions options_;
  EnumStats stats_;
  RunPoller poller_;
  SubtreeBuilder builder_;
  MembershipMask lp_mask_;  ///< membership of the current L' over U
  std::vector<std::unique_ptr<Level>> levels_;
  SubtreeRoot root_;
  std::vector<VertexId> root_absorbed_;

  /// All per-node scratch (bitmap word arenas, absorbed-member buffers)
  /// comes from here; one context per enumerator (= per thread).
  EnumContext ctx_;
  /// Renumber each subtree's locals into the local universe [0, |L0|):
  /// local ids are dense, so L'/loc bitmaps are a handful of words.
  /// Disabled in MBETM mode, which counts against global graph adjacency.
  bool renumber_ = false;
  /// Active shard of the current EnumerateShard call (0 of 1 = unsplit).
  /// Consulted only by the depth-0 traversal loop in Recurse.
  uint32_t shard_ = 0;
  uint32_t num_shards_ = 1;
  size_t local_universe_ = 0;          ///< |L0| of the current subtree
  std::vector<VertexId> local_id_;     ///< global left id -> local id
  std::vector<VertexId> emit_l_;       ///< local -> global translation buffer
};

}  // namespace mbe

#endif  // PMBE_CORE_MBET_H_
