#include "core/mbet.h"

#include <algorithm>
#include <bit>

#include "util/fault.h"
#include "util/memory.h"
#include "util/simd.h"

namespace mbe {

MbetEnumerator::MbetEnumerator(const BipartiteGraph& graph,
                               const MbetOptions& options)
    : graph_(graph),
      options_(options),
      builder_(graph),
      lp_mask_(graph.num_left()),
      ctx_(options.memory) {
  // MBETM stores no local lists, so there is nothing to build a trie over,
  // and its recomputation intersects global adjacency lists, so the local
  // renumbering (and with it the bitmap path) does not apply.
  if (options_.recompute_locals) options_.use_trie = false;
  renumber_ = !options_.recompute_locals;
  // The interleaved batch layout is sized for the renumbered local
  // universe and capped at the widest kernel lane count.
  if (options_.batch_width < 1) options_.batch_width = 1;
  if (options_.batch_width > 64) options_.batch_width = 64;
#ifdef PMBE_FORCE_BITMAP
  options_.bitmap_density = 0.0;
#endif
}

MbetEnumerator::Level& MbetEnumerator::LevelAt(size_t depth) {
  while (levels_.size() <= depth) {
    levels_.push_back(std::make_unique<Level>());
  }
  return *levels_[depth];
}

void MbetEnumerator::EnumerateAll(ResultSink* sink) {
  for (VertexId v = 0; v < graph_.num_right(); ++v) {
    if (Stopped(sink)) return;
    EnumerateSubtree(v, sink);
  }
  ctx_.Trim();  // release pooled scratch so trackers balance to zero
}

void MbetEnumerator::EmitBiclique(std::span<const VertexId> l,
                                  std::span<const VertexId> r,
                                  ResultSink* sink) {
  if (renumber_) {
    // Local ids are positions in the sorted root_.l0, so the translated
    // list is ascending without a sort.
    emit_l_.clear();
    emit_l_.reserve(l.size());
    for (VertexId x : l) emit_l_.push_back(root_.l0[x]);
    sink->Emit(emit_l_, r);
  } else {
    sink->Emit(l, r);
  }
  ++stats_.maximal;
}

void MbetEnumerator::EnumerateSubtree(VertexId v, ResultSink* sink) {
  EnumerateShard(v, 0, 1, sink);
}

uint32_t MbetEnumerator::SplitHint(VertexId v, uint32_t max_shards,
                                   uint64_t min_work) {
  if (max_shards <= 1) return 1;
  if (graph_.RightDegree(v) < options_.min_left) return 1;
  bool pruned = false;
  if (!builder_.Build(v, &root_, &root_absorbed_, &pruned)) return 1;
  const uint64_t work = EstimateSubtreeWork(root_);
  if (work < min_work) return 1;
  uint32_t candidates = 0;
  for (const RootEntry& entry : root_.entries) {
    candidates += entry.forbidden ? 0 : 1;
  }
  // Shallow-wide subtrees (small min side, long candidate list) are
  // dominated by the depth-0 classification pass, which every shard
  // re-pays in full — splitting them multiplies their dominant cost
  // instead of dividing it. Only subtrees whose min side is deep enough
  // for the per-candidate expansions to amortize the duplicated root
  // work are worth sharding.
  constexpr uint64_t kMinSplitSide = 16;
  if (std::min<uint64_t>(root_.l0.size(), candidates) < kMinSplitSide) {
    return 1;
  }
  // Every shard re-pays the root build, so shards must each carry at least
  // min_work of estimated subtree work: k = work / min_work, capped by the
  // shard limit and by the candidate count (aggregation at depth 0 can merge
  // candidates, so the count is an upper bound; surplus shards just no-op).
  const uint64_t by_work = work / std::max<uint64_t>(1, min_work);
  const uint64_t k = std::min<uint64_t>(
      std::min<uint64_t>(max_shards, std::max<uint32_t>(1, candidates)),
      by_work);
  return static_cast<uint32_t>(std::max<uint64_t>(1, k));
}

void MbetEnumerator::EnumerateShard(VertexId v, uint32_t shard,
                                    uint32_t num_shards, ResultSink* sink) {
  PMBE_DCHECK(num_shards >= 1 && shard < num_shards);
  shard_ = shard;
  num_shards_ = num_shards;
  if (Stopped(sink)) return;
  // Size filter: every biclique of this subtree has L ⊆ N(v).
  if (graph_.RightDegree(v) < options_.min_left) return;
  bool pruned = false;
  if (!builder_.Build(v, &root_, &root_absorbed_, &pruned)) {
    if (pruned) ++stats_.subtrees_pruned;
    return;
  }

  Level& lvl = LevelAt(0);
  local_universe_ = root_.l0.size();
  if (renumber_) {
    // Renumber this subtree's left vertices into [0, |L0|): position in
    // the sorted l0 is the local id, so sorted global locals map to
    // sorted local locals.
    if (local_id_.size() < graph_.num_left()) {
      local_id_.resize(graph_.num_left(), 0);
    }
    for (size_t i = 0; i < root_.l0.size(); ++i) {
      local_id_[root_.l0[i]] = static_cast<VertexId>(i);
    }
    lvl.l.resize(local_universe_);
    for (size_t i = 0; i < local_universe_; ++i) {
      lvl.l[i] = static_cast<VertexId>(i);
    }
  } else {
    lvl.l = root_.l0;
  }
  lvl.r.clear();
  lvl.r.push_back(v);
  lvl.r.insert(lvl.r.end(), root_absorbed_.begin(), root_absorbed_.end());
  std::sort(lvl.r.begin(), lvl.r.end());

  lvl.groups.clear();
  lvl.locs.clear();
  lvl.members.clear();
  for (const RootEntry& entry : root_.entries) {
    Group g;
    g.mem_off = static_cast<uint32_t>(lvl.members.size());
    g.mem_len = 1;
    lvl.members.push_back(entry.w);
    g.loc_off = static_cast<uint32_t>(lvl.locs.size());
    g.loc_len = entry.loc_len;
    uint64_t hash = 1469598103934665603ULL;
    for (VertexId x : root_.LocOf(entry)) {
      const VertexId id = renumber_ ? local_id_[x] : x;
      lvl.locs.push_back(id);
      hash = (hash ^ (id + 1ULL)) * 1099511628211ULL;
    }
    g.loc_hash = hash;
    g.forbidden = entry.forbidden;
    lvl.groups.push_back(g);
  }
  SortAndAggregate(&lvl);
  if (options_.recompute_locals) lvl.locs.clear();
  lvl.trie_built = false;

  // The subtree root biclique (N(v), {v} ∪ absorbed) is maximal by
  // construction: domination by an earlier vertex was excluded by the
  // builder, and all dominating later vertices were absorbed. Under a
  // split it belongs to shard 0 (every shard rebuilds this root).
  if (shard_ == 0 && lvl.r.size() >= options_.min_right) {
    EmitBiclique(lvl.l, lvl.r, sink);
  }

  bool has_candidate = false;
  uint64_t r_upper = lvl.r.size();
  for (const Group& g : lvl.groups) {
    if (!g.forbidden) {
      has_candidate = true;
      r_upper += g.mem_len;
    }
  }
  if (!has_candidate) return;
  if (r_upper < options_.min_right) return;
  if (options_.best_edges != nullptr &&
      lvl.l.size() * r_upper <= *options_.best_edges) {
    return;
  }
  Recurse(0, sink);
  if (ctx_.peak_bytes() > stats_.arena_peak_bytes) {
    stats_.arena_peak_bytes = ctx_.peak_bytes();
  }
}

void MbetEnumerator::SortAndAggregate(Level* lvl) {
  if (!options_.use_aggregation || lvl->groups.size() < 2) return;
  // Cheap surrogate key: equal locals imply equal (size, hash), so equal
  // groups land adjacent without any lexicographic compares. Group records
  // are 32 bytes, so the sort moves no heap data.
  std::sort(lvl->groups.begin(), lvl->groups.end(),
            [lvl](const Group& a, const Group& b) {
              if (a.forbidden != b.forbidden) return a.forbidden < b.forbidden;
              if (a.loc_len != b.loc_len) return a.loc_len < b.loc_len;
              if (a.loc_hash != b.loc_hash) return a.loc_hash < b.loc_hash;
              return lvl->members[a.mem_off] < lvl->members[b.mem_off];
            });
  auto loc_equal = [lvl](const Group& a, const Group& b) {
    return a.loc_len == b.loc_len && a.loc_hash == b.loc_hash &&
           a.forbidden == b.forbidden &&
           std::equal(lvl->locs.begin() + a.loc_off,
                      lvl->locs.begin() + a.loc_off + a.loc_len,
                      lvl->locs.begin() + b.loc_off);
  };
  // Collapse each run of equivalent groups in one pass: gather all member
  // runs into fresh arena space and sort once (the old runs become dead
  // space, reclaimed when the level is rebuilt).
  const size_t n = lvl->groups.size();
  size_t out = 0;
  for (size_t i = 0; i < n;) {
    size_t j = i + 1;
    while (j < n && loc_equal(lvl->groups[i], lvl->groups[j])) ++j;
    Group rep = lvl->groups[i];
    if (j > i + 1) {
      const uint32_t merged_off = static_cast<uint32_t>(lvl->members.size());
      uint32_t total = 0;
      for (size_t k = i; k < j; ++k) {
        const Group& g = lvl->groups[k];
        total += g.mem_len;
        // Append by index: iterator-based insert from the same vector
        // would be invalidated by reallocation.
        for (uint32_t m = 0; m < g.mem_len; ++m) {
          lvl->members.push_back(lvl->members[g.mem_off + m]);
        }
      }
      std::sort(lvl->members.begin() + merged_off, lvl->members.end());
      stats_.vertices_aggregated += total - rep.mem_len;
      rep.mem_off = merged_off;
      rep.mem_len = total;
    }
    lvl->groups[out++] = rep;
    i = j;
  }
  lvl->groups.resize(out);
}

void MbetEnumerator::Classify(Level& lvl) {
  const size_t n = lvl.groups.size();
  lvl.counts.resize(n);
  if (lvl.trie_built) {
    // One pass over the prefix tree classifies every group; shared
    // prefixes are probed once.
    stats_.trie_probes += lvl.trie.ClassifyAll(lp_mask_, &lvl.counts);
    stats_.local_scan_size += lvl.trie.total_list_length();
    return;
  }
  if (options_.recompute_locals) {
    // MBETM: no stored locals; count against the full adjacency of a
    // representative member (all members share the same local).
    for (size_t h = 0; h < n; ++h) {
      auto nbrs = graph_.RightNeighbors(lvl.members[lvl.groups[h].mem_off]);
      lvl.counts[h] =
          static_cast<uint32_t>(IntersectSizeWithMask(nbrs, lp_mask_));
      stats_.trie_probes += nbrs.size();
      stats_.local_scan_size += nbrs.size();
    }
    return;
  }
  if (lvl.words_built) {
    // Dense node: one AND+popcount per group over the fixed-width local
    // bitmaps. Probe accounting stays logical (|loc| per group, like the
    // direct scan) so the trie-vs-direct probe-ratio metric keeps its
    // meaning across representations; bitmap_kernel_calls records the
    // physical kernel used.
    const size_t words = lvl.words_per_group;
    const std::span<const uint64_t> lp(*lvl.lp_words);
    for (size_t h = 0; h < n; ++h) {
      const Group& g = lvl.groups[h];
      const std::span<const uint64_t> loc(lvl.loc_words->data() + h * words,
                                          words);
      lvl.counts[h] = static_cast<uint32_t>(IntersectSize(loc, lp));
      stats_.trie_probes += g.loc_len;
      stats_.local_scan_size += g.loc_len;
    }
    stats_.bitmap_kernel_calls += n;
    return;
  }
  // Direct per-group scan over stored locals (trie ablated). Pull the
  // next group's loc run toward L1 while the mask kernel chews on the
  // current one; the runs live in one arena but groups are visited in
  // aggregation order, so the hardware streamer does not cover the hops.
  for (size_t h = 0; h < n; ++h) {
    const Group& g = lvl.groups[h];
    if (h + 1 < n) {
      __builtin_prefetch(lvl.locs.data() + lvl.groups[h + 1].loc_off);
    }
    lvl.counts[h] =
        static_cast<uint32_t>(IntersectSizeWithMask(lvl.LocOf(g), lp_mask_));
    stats_.trie_probes += g.loc_len;
    stats_.local_scan_size += g.loc_len;
  }
}

void MbetEnumerator::FillBatch(Level& lvl, size_t start, bool sharded) {
  // Window selection replays the traversal loop's skip predicates (both
  // static over the node: shard ownership is positional, min_left reads
  // the immutable loc_len), so slot s is exactly the s-th candidate from
  // `start` that will reach classification; skipped positions never
  // consume counts. Counts depend only on the immutable locs — the loop's
  // forbidden-flag mutations affect which counts are *read* (witness
  // scans, absorption), never their values — so precomputing the whole
  // window keeps results byte-identical to the per-candidate pass.
  lvl.batch_slot_group.clear();
  for (size_t i = start; i < lvl.order.size() &&
                         lvl.batch_slot_group.size() < options_.batch_width;
       ++i) {
    if (sharded && i % num_shards_ != shard_) continue;
    if (lvl.groups[lvl.order[i]].loc_len < options_.min_left) continue;
    lvl.batch_slot_group.push_back(lvl.order[i]);
  }
  lvl.batch_filled = lvl.batch_slot_group.size();
  lvl.batch_next = 0;
  const size_t width = lvl.batch_filled;
  if (width == 0) return;

  // Interleaved word-transposed masks (util/simd.h): bit x of slot w is
  // bit x%64 of batch_words[(x/64)*width + w], so one load reaches the
  // same word of several candidates at once.
  const size_t words = util::WordsFor(local_universe_);
  lvl.batch_words->assign(words * width, 0);
  uint64_t* bw = lvl.batch_words->data();
  for (size_t w = 0; w < width; ++w) {
    for (VertexId x : lvl.LocOf(lvl.groups[lvl.batch_slot_group[w]])) {
      bw[(static_cast<size_t>(x) >> 6) * width + w] |= uint64_t{1} << (x & 63);
    }
  }

  const size_t n = lvl.groups.size();
  lvl.batch_counts.resize(n * width);
  if (lvl.trie_built) {
    // One streaming pass over the trie classifies every group against all
    // `width` masks; the per-candidate pass would walk it `width` times.
    lvl.trie.ClassifyAllBatch(bw, width, lvl.batch_counts.data());
    ++stats_.batch_kernel_calls;
  } else if (lvl.words_built) {
    const simd::KernelTable& k = simd::Kernels();
    const size_t gw = lvl.words_per_group;
    for (size_t h = 0; h < n; ++h) {
      k.and_count_batch(lvl.loc_words->data() + h * gw, bw, gw, width,
                        lvl.batch_counts.data() + h * width);
      simd::CountKernelCall(simd::KernelOp::kBatch);
    }
    stats_.batch_kernel_calls += n;
  } else {
    const simd::KernelTable& k = simd::Kernels();
    for (size_t h = 0; h < n; ++h) {
      const Group& g = lvl.groups[h];
      k.classify_batch(lvl.locs.data() + g.loc_off, g.loc_len, bw, width,
                       lvl.batch_counts.data() + h * width);
      simd::CountKernelCall(simd::KernelOp::kBatch);
    }
    stats_.batch_kernel_calls += n;
  }
  // Bucket b counts windows of width in (2^(b-1), 2^b].
  const int bucket = std::bit_width(width - 1);
  ++stats_.batch_width_histogram[bucket < 7 ? bucket : 6];
}

void MbetEnumerator::ConsumeBatchColumn(Level& lvl, size_t slot) {
  const size_t n = lvl.groups.size();
  const size_t width = lvl.batch_filled;
  lvl.counts.resize(n);
  const uint32_t* col = lvl.batch_counts.data() + slot;
  for (size_t h = 0; h < n; ++h) lvl.counts[h] = col[h * width];
  // Logical probe accounting matches what the per-candidate Classify pass
  // would have charged, so the trie-vs-direct probe ratio and the bitmap
  // kernel counter keep their meaning at every batch width; the physical
  // batching shows up in batch_kernel_calls / simd_batch_calls instead.
  if (lvl.trie_built) {
    stats_.trie_probes += lvl.trie.num_nodes();
    stats_.local_scan_size += lvl.trie.total_list_length();
  } else {
    stats_.trie_probes += lvl.total_loc;
    stats_.local_scan_size += lvl.total_loc;
    if (lvl.words_built) stats_.bitmap_kernel_calls += n;
  }
  ++stats_.batch_candidates_classified;
}

MbetEnumerator::Level& MbetEnumerator::BuildChild(
    size_t depth, uint32_t traversed, std::vector<VertexId>* absorbed_members) {
  Level& lvl = *levels_[depth];
  Level& child = LevelAt(depth + 1);
  const uint32_t lp_size = static_cast<uint32_t>(child.l.size());

  absorbed_members->clear();
  child.groups.clear();
  child.locs.clear();
  child.members.clear();
  for (size_t h = 0; h < lvl.groups.size(); ++h) {
    if (h == traversed) continue;
    const Group& g = lvl.groups[h];
    const uint32_t count = lvl.counts[h];
    if (!g.forbidden && count == lp_size) {
      // Dominates L': belongs in R' of the child.
      ++stats_.candidates_absorbed;
      auto mem = lvl.MembersOf(g);
      absorbed_members->insert(absorbed_members->end(), mem.begin(), mem.end());
      continue;
    }
    if (count == 0) {
      if (!g.forbidden) {
        ++stats_.candidates_dropped;
        continue;
      }
      if (options_.prune_q) continue;
      // Ablation mode: keep dead Q groups alive (loc becomes empty).
    }
    Group c;
    c.forbidden = g.forbidden;
    c.mem_off = static_cast<uint32_t>(child.members.size());
    c.mem_len = g.mem_len;
    {
      auto mem = lvl.MembersOf(g);
      child.members.insert(child.members.end(), mem.begin(), mem.end());
    }
    c.loc_off = static_cast<uint32_t>(child.locs.size());
    c.loc_len = count;
    if (count > 0) {
      // Materialize loc ∩ L' straight into the child's arena, hashing on
      // the way.
      uint64_t hash = 1469598103934665603ULL;
      auto emit = [&](VertexId x) {
        child.locs.push_back(x);
        hash = (hash ^ (x + 1ULL)) * 1099511628211ULL;
      };
      if (options_.recompute_locals) {
        for (VertexId x : graph_.RightNeighbors(lvl.members[g.mem_off])) {
          if (lp_mask_.Test(x)) emit(x);
        }
      } else {
        for (VertexId x : lvl.LocOf(g)) {
          if (lp_mask_.Test(x)) emit(x);
        }
      }
      c.loc_hash = hash;
      PMBE_DCHECK(child.locs.size() - c.loc_off == count);
    }
    child.groups.push_back(c);
  }
  SortAndAggregate(&child);
  if (options_.recompute_locals) child.locs.clear();
  child.trie_built = false;

  // R' = R ∪ traversed members ∪ absorbed. R is sorted along the whole
  // path; sort only the (small) additions and merge.
  {
    auto mem = lvl.MembersOf(lvl.groups[traversed]);
    absorbed_members->insert(absorbed_members->end(), mem.begin(), mem.end());
    std::sort(absorbed_members->begin(), absorbed_members->end());
    child.r.clear();
    child.r.reserve(lvl.r.size() + absorbed_members->size());
    std::merge(lvl.r.begin(), lvl.r.end(), absorbed_members->begin(),
               absorbed_members->end(), std::back_inserter(child.r));
  }
  return child;
}

uint64_t MbetEnumerator::LevelBytes(const Level& lvl) {
  uint64_t bytes = sizeof(Level);
  bytes += lvl.groups.size() * sizeof(Group);
  bytes += (lvl.locs.size() + lvl.members.size()) * sizeof(VertexId);
  bytes += (lvl.l.size() + lvl.r.size()) * sizeof(VertexId);
  bytes += lvl.counts.size() * sizeof(uint32_t);
  bytes += lvl.order.size() * sizeof(uint32_t);
  bytes += (lvl.batch_counts.capacity() + lvl.batch_slot_group.capacity()) *
           sizeof(uint32_t);
  bytes += lvl.trie.MemoryBytes();
  return bytes;
}

void MbetEnumerator::Recurse(size_t depth, ResultSink* sink) {
  EnumContext::Frame frame(&ctx_);
  Level& lvl = *levels_[depth];
  ++stats_.nodes_expanded;

  // Adaptive trie: each candidate traversal runs one classification pass,
  // so the build only pays off on nodes wide enough to amortize it.
  if (options_.use_trie && !lvl.trie_built) {
    uint32_t cand_groups = 0;
    for (const Group& g : lvl.groups) cand_groups += g.forbidden ? 0 : 1;
    if (cand_groups >= options_.trie_min_groups) {
      // "trie.build" models the trie arena failing to allocate.
      if (PMBE_FAULT("trie.build")) util::CurrentMemoryBudget().ForceExhaust();
      if (util::CurrentMemoryBudget().UnderPressure() ||
          util::CurrentMemoryBudget().exhausted()) {
        // Degrade: classification falls back to per-candidate scans —
        // slower, identical results, no trie arena.
        util::CurrentMemoryBudget().NoteDegradation();
      } else {
        lvl.lists.clear();
        lvl.lists.reserve(lvl.groups.size());
        for (const Group& g : lvl.groups) lvl.lists.push_back(lvl.LocOf(g));
        lvl.trie.BuildUnordered(lvl.lists);
        lvl.trie_built = true;
      }
    }
  }

  // Adaptive bitmaps (docs/SET_REPRESENTATION.md): on nodes the trie does
  // not take, dense-enough locals are materialized once into fixed-width
  // bitmaps over the local universe, turning every classification pass at
  // this node into AND+popcount kernels.
  lvl.words_built = false;
  lvl.loc_words = nullptr;
  lvl.lp_words = nullptr;
  if (!lvl.trie_built && renumber_ && !lvl.groups.empty() &&
      options_.bitmap_density <= 1.0) {
    uint64_t total_loc = 0;
    for (const Group& g : lvl.groups) total_loc += g.loc_len;
    if (static_cast<double>(total_loc) >=
        options_.bitmap_density * static_cast<double>(local_universe_) *
            static_cast<double>(lvl.groups.size())) {
      // "bitmap.build" models the word arrays failing to allocate.
      if (PMBE_FAULT("bitmap.build")) util::CurrentMemoryBudget().ForceExhaust();
      if (util::CurrentMemoryBudget().UnderPressure() ||
          util::CurrentMemoryBudget().exhausted()) {
        // Degrade: stay on sorted lists — slower kernels, same results.
        util::CurrentMemoryBudget().NoteDegradation();
      } else {
        const size_t words = util::WordsFor(local_universe_);
        lvl.loc_words = frame.AcquireWords();
        lvl.lp_words = frame.AcquireWords();
        lvl.loc_words->assign(words * lvl.groups.size(), 0);
        lvl.lp_words->assign(words, 0);
        for (size_t h = 0; h < lvl.groups.size(); ++h) {
          util::SetBits(lvl.LocOf(lvl.groups[h]),
                        std::span<uint64_t>(lvl.loc_words->data() + h * words,
                                            words));
        }
        lvl.words_per_group = words;
        lvl.words_built = true;
        stats_.bitmap_conversions += lvl.groups.size();
      }
    }
  }

  // Charge this node's level state (groups, locals, trie) to both the
  // tracker and the hard memory budget for the duration of its subtree.
  // RAII: an exception unwinding through the subtree (throwing sink,
  // injected fault) must return the charge too.
  const util::ScopedCharge node_charge(util::CurrentMemoryBudget(),
                                       options_.memory, LevelBytes(lvl));

  // Candidate traversal order: ascending local size (small locals first is
  // the classic choice: their subtrees are shallow and they turn into
  // strong Q witnesses early), ties by smallest member id.
  lvl.order.clear();
  for (size_t i = 0; i < lvl.groups.size(); ++i) {
    if (!lvl.groups[i].forbidden) lvl.order.push_back(static_cast<uint32_t>(i));
  }
  std::sort(lvl.order.begin(), lvl.order.end(), [&](uint32_t a, uint32_t b) {
    const Group& ga = lvl.groups[a];
    const Group& gb = lvl.groups[b];
    if (ga.loc_len != gb.loc_len) return ga.loc_len < gb.loc_len;
    return lvl.members[ga.mem_off] < lvl.members[gb.mem_off];
  });

  std::vector<VertexId>* absorbed_members = frame.AcquireIds();
  const bool sharded = depth == 0 && num_shards_ > 1;

  // Batched frontier gate (docs/TUNING.md): on nodes with at least two
  // candidates, classification runs over precomputed windows of sibling
  // candidates instead of one pass per candidate. Needs stored, renumbered
  // locals (the window masks pack into the local universe); MBETM has
  // neither. Under memory pressure the node degrades to the per-candidate
  // path — slower, byte-identical results.
  lvl.batch_on = false;
  lvl.batch_words = nullptr;
  lvl.batch_filled = 0;
  lvl.batch_next = 0;
  if (options_.batch_width > 1 && renumber_ && lvl.order.size() >= 2) {
    // "batch.build" models the interleaved window buffer failing to grow.
    if (PMBE_FAULT("batch.build")) util::CurrentMemoryBudget().ForceExhaust();
    if (util::CurrentMemoryBudget().UnderPressure() ||
        util::CurrentMemoryBudget().exhausted()) {
      util::CurrentMemoryBudget().NoteDegradation();
    } else {
      lvl.batch_words = frame.AcquireWords();
      lvl.total_loc = 0;
      for (const Group& g : lvl.groups) lvl.total_loc += g.loc_len;
      lvl.batch_on = true;
    }
  }
  uint32_t pos = 0;
  for (uint32_t idx : lvl.order) {
    const uint32_t my_pos = pos++;
    if (Stopped(sink)) break;
    Group& g = lvl.groups[idx];
    if (sharded && my_pos % num_shards_ != shard_) {
      // Another shard owns this position. In the sequential order every
      // traversed candidate ends forbidden before later positions run
      // (see the tail of this loop), so marking it forbidden here — and
      // enumerating nothing — leaves the node state of the positions this
      // shard does own exactly as the sequential run would have it.
      g.forbidden = true;
      continue;
    }
    const uint32_t lp_size = g.loc_len;
    if (lp_size < options_.min_left) {
      // Every biclique under g has L ⊆ loc(g), all too small. Skip the
      // expansion but keep g as a Q witness for its siblings.
      g.forbidden = true;
      continue;
    }

    // Materialize L' into the child slot.
    Level& child = LevelAt(depth + 1);
    if (options_.recompute_locals) {
      lp_mask_.Set(lvl.l);
      IntersectWithMask(graph_.RightNeighbors(lvl.members[g.mem_off]),
                        lp_mask_, &child.l);
      lp_mask_.Clear(lvl.l);
      PMBE_DCHECK(child.l.size() == lp_size);
    } else {
      auto loc = lvl.LocOf(g);
      child.l.assign(loc.begin(), loc.end());
    }

    lp_mask_.Set(child.l);
    if (lvl.batch_on) {
      if (lvl.batch_next >= lvl.batch_filled) FillBatch(lvl, my_pos, sharded);
      PMBE_DCHECK(lvl.batch_next < lvl.batch_filled &&
                  lvl.batch_slot_group[lvl.batch_next] == idx);
      ConsumeBatchColumn(lvl, lvl.batch_next++);
    } else {
      if (lvl.words_built) {
        util::ClearWords(*lvl.lp_words);
        util::SetBits(child.l, *lvl.lp_words);
      }
      Classify(lvl);
    }

    // Maximality (node) check: a forbidden group dominating L' witnesses
    // that this child's bicliques are enumerated elsewhere.
    bool witness = false;
    for (size_t h = 0; h < lvl.groups.size(); ++h) {
      if (lvl.groups[h].forbidden && lvl.counts[h] == lp_size) {
        witness = true;
        break;
      }
    }
    if (witness) {
      ++stats_.non_maximal;
      lp_mask_.Clear(child.l);
      g.forbidden = true;  // acts as Q for the remaining siblings
      continue;
    }

    BuildChild(depth, idx, absorbed_members);
    lp_mask_.Clear(child.l);

    if (child.r.size() >= options_.min_right) {
      EmitBiclique(child.l, child.r, sink);
    }

    bool has_candidate = false;
    uint64_t r_upper = child.r.size();
    for (const Group& cg : child.groups) {
      if (!cg.forbidden) {
        has_candidate = true;
        r_upper += cg.mem_len;
      }
    }
    const bool r_reachable = r_upper >= options_.min_right;
    const bool bound_ok =
        options_.best_edges == nullptr ||
        child.l.size() * r_upper > *options_.best_edges;
    if (has_candidate && r_reachable && bound_ok) Recurse(depth + 1, sink);

    g.forbidden = true;
  }

}

}  // namespace mbe
