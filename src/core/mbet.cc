#include "core/mbet.h"

#include <algorithm>

namespace mbe {

MbetEnumerator::MbetEnumerator(const BipartiteGraph& graph,
                               const MbetOptions& options)
    : graph_(graph),
      options_(options),
      builder_(graph),
      lp_mask_(graph.num_left()) {
  // MBETM stores no local lists, so there is nothing to build a trie over.
  if (options_.recompute_locals) options_.use_trie = false;
}

MbetEnumerator::Level& MbetEnumerator::LevelAt(size_t depth) {
  while (levels_.size() <= depth) {
    levels_.push_back(std::make_unique<Level>());
  }
  return *levels_[depth];
}

void MbetEnumerator::EnumerateAll(ResultSink* sink) {
  for (VertexId v = 0; v < graph_.num_right(); ++v) {
    if (Stopped(sink)) return;
    EnumerateSubtree(v, sink);
  }
}

void MbetEnumerator::EnumerateSubtree(VertexId v, ResultSink* sink) {
  if (Stopped(sink)) return;
  // Size filter: every biclique of this subtree has L ⊆ N(v).
  if (graph_.RightDegree(v) < options_.min_left) return;
  bool pruned = false;
  if (!builder_.Build(v, &root_, &root_absorbed_, &pruned)) {
    if (pruned) ++stats_.subtrees_pruned;
    return;
  }

  Level& lvl = LevelAt(0);
  lvl.l = root_.l0;
  lvl.r.clear();
  lvl.r.push_back(v);
  lvl.r.insert(lvl.r.end(), root_absorbed_.begin(), root_absorbed_.end());
  std::sort(lvl.r.begin(), lvl.r.end());

  lvl.groups.clear();
  lvl.locs.clear();
  lvl.members.clear();
  for (const RootEntry& entry : root_.entries) {
    Group g;
    g.mem_off = static_cast<uint32_t>(lvl.members.size());
    g.mem_len = 1;
    lvl.members.push_back(entry.w);
    g.loc_off = static_cast<uint32_t>(lvl.locs.size());
    g.loc_len = static_cast<uint32_t>(entry.loc.size());
    lvl.locs.insert(lvl.locs.end(), entry.loc.begin(), entry.loc.end());
    g.loc_hash = HashVertexSpan(entry.loc);
    g.forbidden = entry.forbidden;
    lvl.groups.push_back(g);
  }
  SortAndAggregate(&lvl);
  if (options_.recompute_locals) lvl.locs.clear();
  lvl.trie_built = false;

  // The subtree root biclique (N(v), {v} ∪ absorbed) is maximal by
  // construction: domination by an earlier vertex was excluded by the
  // builder, and all dominating later vertices were absorbed.
  if (lvl.r.size() >= options_.min_right) {
    sink->Emit(lvl.l, lvl.r);
    ++stats_.maximal;
  }

  bool has_candidate = false;
  uint64_t r_upper = lvl.r.size();
  for (const Group& g : lvl.groups) {
    if (!g.forbidden) {
      has_candidate = true;
      r_upper += g.mem_len;
    }
  }
  if (!has_candidate) return;
  if (r_upper < options_.min_right) return;
  if (options_.best_edges != nullptr &&
      lvl.l.size() * r_upper <= *options_.best_edges) {
    return;
  }
  Recurse(0, sink);
}

void MbetEnumerator::SortAndAggregate(Level* lvl) {
  if (!options_.use_aggregation || lvl->groups.size() < 2) return;
  // Cheap surrogate key: equal locals imply equal (size, hash), so equal
  // groups land adjacent without any lexicographic compares. Group records
  // are 32 bytes, so the sort moves no heap data.
  std::sort(lvl->groups.begin(), lvl->groups.end(),
            [lvl](const Group& a, const Group& b) {
              if (a.forbidden != b.forbidden) return a.forbidden < b.forbidden;
              if (a.loc_len != b.loc_len) return a.loc_len < b.loc_len;
              if (a.loc_hash != b.loc_hash) return a.loc_hash < b.loc_hash;
              return lvl->members[a.mem_off] < lvl->members[b.mem_off];
            });
  auto loc_equal = [lvl](const Group& a, const Group& b) {
    return a.loc_len == b.loc_len && a.loc_hash == b.loc_hash &&
           a.forbidden == b.forbidden &&
           std::equal(lvl->locs.begin() + a.loc_off,
                      lvl->locs.begin() + a.loc_off + a.loc_len,
                      lvl->locs.begin() + b.loc_off);
  };
  // Collapse each run of equivalent groups in one pass: gather all member
  // runs into fresh arena space and sort once (the old runs become dead
  // space, reclaimed when the level is rebuilt).
  const size_t n = lvl->groups.size();
  size_t out = 0;
  for (size_t i = 0; i < n;) {
    size_t j = i + 1;
    while (j < n && loc_equal(lvl->groups[i], lvl->groups[j])) ++j;
    Group rep = lvl->groups[i];
    if (j > i + 1) {
      const uint32_t merged_off = static_cast<uint32_t>(lvl->members.size());
      uint32_t total = 0;
      for (size_t k = i; k < j; ++k) {
        const Group& g = lvl->groups[k];
        total += g.mem_len;
        // Append by index: iterator-based insert from the same vector
        // would be invalidated by reallocation.
        for (uint32_t m = 0; m < g.mem_len; ++m) {
          lvl->members.push_back(lvl->members[g.mem_off + m]);
        }
      }
      std::sort(lvl->members.begin() + merged_off, lvl->members.end());
      stats_.vertices_aggregated += total - rep.mem_len;
      rep.mem_off = merged_off;
      rep.mem_len = total;
    }
    lvl->groups[out++] = rep;
    i = j;
  }
  lvl->groups.resize(out);
}

void MbetEnumerator::Classify(Level& lvl) {
  const size_t n = lvl.groups.size();
  lvl.counts.resize(n);
  if (lvl.trie_built) {
    // One pass over the prefix tree classifies every group; shared
    // prefixes are probed once.
    stats_.trie_probes += lvl.trie.ClassifyAll(lp_mask_, &lvl.counts);
    stats_.local_scan_size += lvl.trie.total_list_length();
    return;
  }
  if (options_.recompute_locals) {
    // MBETM: no stored locals; count against the full adjacency of a
    // representative member (all members share the same local).
    for (size_t h = 0; h < n; ++h) {
      auto nbrs = graph_.RightNeighbors(lvl.members[lvl.groups[h].mem_off]);
      lvl.counts[h] =
          static_cast<uint32_t>(IntersectSizeWithMask(nbrs, lp_mask_));
      stats_.trie_probes += nbrs.size();
      stats_.local_scan_size += nbrs.size();
    }
    return;
  }
  // Direct per-group scan over stored locals (trie ablated).
  for (size_t h = 0; h < n; ++h) {
    const Group& g = lvl.groups[h];
    lvl.counts[h] =
        static_cast<uint32_t>(IntersectSizeWithMask(lvl.LocOf(g), lp_mask_));
    stats_.trie_probes += g.loc_len;
    stats_.local_scan_size += g.loc_len;
  }
}

MbetEnumerator::Level& MbetEnumerator::BuildChild(
    size_t depth, uint32_t traversed, std::vector<VertexId>* absorbed_members) {
  Level& lvl = *levels_[depth];
  Level& child = LevelAt(depth + 1);
  const uint32_t lp_size = static_cast<uint32_t>(child.l.size());

  absorbed_members->clear();
  child.groups.clear();
  child.locs.clear();
  child.members.clear();
  for (size_t h = 0; h < lvl.groups.size(); ++h) {
    if (h == traversed) continue;
    const Group& g = lvl.groups[h];
    const uint32_t count = lvl.counts[h];
    if (!g.forbidden && count == lp_size) {
      // Dominates L': belongs in R' of the child.
      ++stats_.candidates_absorbed;
      auto mem = lvl.MembersOf(g);
      absorbed_members->insert(absorbed_members->end(), mem.begin(), mem.end());
      continue;
    }
    if (count == 0) {
      if (!g.forbidden) {
        ++stats_.candidates_dropped;
        continue;
      }
      if (options_.prune_q) continue;
      // Ablation mode: keep dead Q groups alive (loc becomes empty).
    }
    Group c;
    c.forbidden = g.forbidden;
    c.mem_off = static_cast<uint32_t>(child.members.size());
    c.mem_len = g.mem_len;
    {
      auto mem = lvl.MembersOf(g);
      child.members.insert(child.members.end(), mem.begin(), mem.end());
    }
    c.loc_off = static_cast<uint32_t>(child.locs.size());
    c.loc_len = count;
    if (count > 0) {
      // Materialize loc ∩ L' straight into the child's arena, hashing on
      // the way.
      uint64_t hash = 1469598103934665603ULL;
      auto emit = [&](VertexId x) {
        child.locs.push_back(x);
        hash = (hash ^ (x + 1ULL)) * 1099511628211ULL;
      };
      if (options_.recompute_locals) {
        for (VertexId x : graph_.RightNeighbors(lvl.members[g.mem_off])) {
          if (lp_mask_.Test(x)) emit(x);
        }
      } else {
        for (VertexId x : lvl.LocOf(g)) {
          if (lp_mask_.Test(x)) emit(x);
        }
      }
      c.loc_hash = hash;
      PMBE_DCHECK(child.locs.size() - c.loc_off == count);
    }
    child.groups.push_back(c);
  }
  SortAndAggregate(&child);
  if (options_.recompute_locals) child.locs.clear();
  child.trie_built = false;

  // R' = R ∪ traversed members ∪ absorbed. R is sorted along the whole
  // path; sort only the (small) additions and merge.
  {
    auto mem = lvl.MembersOf(lvl.groups[traversed]);
    absorbed_members->insert(absorbed_members->end(), mem.begin(), mem.end());
    std::sort(absorbed_members->begin(), absorbed_members->end());
    child.r.clear();
    child.r.reserve(lvl.r.size() + absorbed_members->size());
    std::merge(lvl.r.begin(), lvl.r.end(), absorbed_members->begin(),
               absorbed_members->end(), std::back_inserter(child.r));
  }
  return child;
}

uint64_t MbetEnumerator::LevelBytes(const Level& lvl) {
  uint64_t bytes = sizeof(Level);
  bytes += lvl.groups.size() * sizeof(Group);
  bytes += (lvl.locs.size() + lvl.members.size()) * sizeof(VertexId);
  bytes += (lvl.l.size() + lvl.r.size()) * sizeof(VertexId);
  bytes += lvl.counts.size() * sizeof(uint32_t);
  bytes += lvl.order.size() * sizeof(uint32_t);
  bytes += lvl.trie.MemoryBytes();
  return bytes;
}

void MbetEnumerator::Recurse(size_t depth, ResultSink* sink) {
  Level& lvl = *levels_[depth];
  ++stats_.nodes_expanded;

  // Adaptive trie: each candidate traversal runs one classification pass,
  // so the build only pays off on nodes wide enough to amortize it.
  if (options_.use_trie && !lvl.trie_built) {
    uint32_t cand_groups = 0;
    for (const Group& g : lvl.groups) cand_groups += g.forbidden ? 0 : 1;
    if (cand_groups >= options_.trie_min_groups) {
      lvl.lists.clear();
      lvl.lists.reserve(lvl.groups.size());
      for (const Group& g : lvl.groups) lvl.lists.push_back(lvl.LocOf(g));
      lvl.trie.BuildUnordered(lvl.lists);
      lvl.trie_built = true;
    }
  }

  uint64_t bytes = 0;
  if (options_.memory != nullptr) {
    bytes = LevelBytes(lvl);
    options_.memory->Add(bytes);
  }

  // Candidate traversal order: ascending local size (small locals first is
  // the classic choice: their subtrees are shallow and they turn into
  // strong Q witnesses early), ties by smallest member id.
  lvl.order.clear();
  for (size_t i = 0; i < lvl.groups.size(); ++i) {
    if (!lvl.groups[i].forbidden) lvl.order.push_back(static_cast<uint32_t>(i));
  }
  std::sort(lvl.order.begin(), lvl.order.end(), [&](uint32_t a, uint32_t b) {
    const Group& ga = lvl.groups[a];
    const Group& gb = lvl.groups[b];
    if (ga.loc_len != gb.loc_len) return ga.loc_len < gb.loc_len;
    return lvl.members[ga.mem_off] < lvl.members[gb.mem_off];
  });

  std::vector<VertexId> absorbed_members;
  for (uint32_t idx : lvl.order) {
    if (Stopped(sink)) break;
    Group& g = lvl.groups[idx];
    const uint32_t lp_size = g.loc_len;
    if (lp_size < options_.min_left) {
      // Every biclique under g has L ⊆ loc(g), all too small. Skip the
      // expansion but keep g as a Q witness for its siblings.
      g.forbidden = true;
      continue;
    }

    // Materialize L' into the child slot.
    Level& child = LevelAt(depth + 1);
    if (options_.recompute_locals) {
      lp_mask_.Set(lvl.l);
      IntersectWithMask(graph_.RightNeighbors(lvl.members[g.mem_off]),
                        lp_mask_, &child.l);
      lp_mask_.Clear(lvl.l);
      PMBE_DCHECK(child.l.size() == lp_size);
    } else {
      auto loc = lvl.LocOf(g);
      child.l.assign(loc.begin(), loc.end());
    }

    lp_mask_.Set(child.l);
    Classify(lvl);

    // Maximality (node) check: a forbidden group dominating L' witnesses
    // that this child's bicliques are enumerated elsewhere.
    bool witness = false;
    for (size_t h = 0; h < lvl.groups.size(); ++h) {
      if (lvl.groups[h].forbidden && lvl.counts[h] == lp_size) {
        witness = true;
        break;
      }
    }
    if (witness) {
      ++stats_.non_maximal;
      lp_mask_.Clear(child.l);
      g.forbidden = true;  // acts as Q for the remaining siblings
      continue;
    }

    BuildChild(depth, idx, &absorbed_members);
    lp_mask_.Clear(child.l);

    if (child.r.size() >= options_.min_right) {
      sink->Emit(child.l, child.r);
      ++stats_.maximal;
    }

    bool has_candidate = false;
    uint64_t r_upper = child.r.size();
    for (const Group& cg : child.groups) {
      if (!cg.forbidden) {
        has_candidate = true;
        r_upper += cg.mem_len;
      }
    }
    const bool r_reachable = r_upper >= options_.min_right;
    const bool bound_ok =
        options_.best_edges == nullptr ||
        child.l.size() * r_upper > *options_.best_edges;
    if (has_candidate && r_reachable && bound_ok) Recurse(depth + 1, sink);

    g.forbidden = true;
  }

  if (options_.memory != nullptr) options_.memory->Sub(bytes);
}

}  // namespace mbe
