#include "core/verify.h"

#include <algorithm>

#include "core/set_ops.h"
#include "core/sink.h"

namespace mbe {

namespace {

// Common neighbors (left side) of a set of right vertices.
std::vector<VertexId> CommonLeft(const BipartiteGraph& graph,
                                 std::span<const VertexId> right) {
  std::vector<VertexId> acc;
  for (size_t i = 0; i < right.size(); ++i) {
    auto nbrs = graph.RightNeighbors(right[i]);
    if (i == 0) {
      acc.assign(nbrs.begin(), nbrs.end());
    } else {
      std::vector<VertexId> tmp;
      Intersect(acc, nbrs, &tmp);
      acc = std::move(tmp);
    }
    if (acc.empty()) break;
  }
  return acc;
}

// Common neighbors (right side) of a set of left vertices.
std::vector<VertexId> CommonRight(const BipartiteGraph& graph,
                                  std::span<const VertexId> left) {
  std::vector<VertexId> acc;
  for (size_t i = 0; i < left.size(); ++i) {
    auto nbrs = graph.LeftNeighbors(left[i]);
    if (i == 0) {
      acc.assign(nbrs.begin(), nbrs.end());
    } else {
      std::vector<VertexId> tmp;
      Intersect(acc, nbrs, &tmp);
      acc = std::move(tmp);
    }
    if (acc.empty()) break;
  }
  return acc;
}

}  // namespace

std::vector<Biclique> BruteForceMbe(const BipartiteGraph& graph) {
  const size_t n = graph.num_right();
  PMBE_CHECK_MSG(n <= 22, "brute force limited to |V| <= 22, got %zu", n);
  std::vector<Biclique> results;
  // Every maximal biclique (L, R) satisfies R = C(L) and L = C(R); it is
  // the closure of the subset S = R, so iterating all nonempty S and
  // closing twice finds all of them (with duplicates, removed at the end).
  const uint32_t limit = n >= 32 ? 0xFFFFFFFFu : (1u << n);
  for (uint32_t mask = 1; mask != 0 && mask < limit; ++mask) {
    std::vector<VertexId> subset;
    for (size_t v = 0; v < n; ++v) {
      if (mask & (1u << v)) subset.push_back(static_cast<VertexId>(v));
    }
    std::vector<VertexId> left = CommonLeft(graph, subset);
    if (left.empty()) continue;
    std::vector<VertexId> right = CommonRight(graph, left);
    results.push_back(Biclique{std::move(left), std::move(right)});
  }
  std::sort(results.begin(), results.end());
  results.erase(std::unique(results.begin(), results.end()), results.end());
  return results;
}

bool IsBiclique(const BipartiteGraph& graph, const Biclique& b) {
  if (b.left.empty() || b.right.empty()) return false;
  // Sides must be sorted, duplicate-free, and in range.
  for (size_t i = 0; i < b.left.size(); ++i) {
    if (b.left[i] >= graph.num_left()) return false;
    if (i > 0 && b.left[i] <= b.left[i - 1]) return false;
  }
  for (size_t i = 0; i < b.right.size(); ++i) {
    if (b.right[i] >= graph.num_right()) return false;
    if (i > 0 && b.right[i] <= b.right[i - 1]) return false;
  }
  for (VertexId v : b.right) {
    if (!IsSubset(b.left, graph.RightNeighbors(v))) return false;
  }
  return true;
}

bool IsMaximalBiclique(const BipartiteGraph& graph, const Biclique& b) {
  if (!IsBiclique(graph, b)) return false;
  return CommonLeft(graph, b.right) == b.left &&
         CommonRight(graph, b.left) == b.right;
}

std::string ValidateResultSet(const BipartiteGraph& graph,
                              const std::vector<Biclique>& results) {
  std::vector<Biclique> sorted = results;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0 && sorted[i] == sorted[i - 1]) {
      return "duplicate biclique: " + ToString(sorted[i]);
    }
    if (!IsMaximalBiclique(graph, sorted[i])) {
      return "not a maximal biclique: " + ToString(sorted[i]);
    }
  }
  return "";
}

std::string DiffResultSets(std::vector<Biclique> expected,
                           std::vector<Biclique> actual) {
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  size_t i = 0, j = 0;
  while (i < expected.size() && j < actual.size()) {
    if (expected[i] == actual[j]) {
      ++i;
      ++j;
    } else if (expected[i] < actual[j]) {
      return "missing: " + ToString(expected[i]);
    } else {
      return "unexpected: " + ToString(actual[j]);
    }
  }
  if (i < expected.size()) return "missing: " + ToString(expected[i]);
  if (j < actual.size()) return "unexpected: " + ToString(actual[j]);
  return "";
}

}  // namespace mbe
