#ifndef PMBE_CORE_VERIFY_H_
#define PMBE_CORE_VERIFY_H_

#include <string>
#include <vector>

#include "core/biclique.h"
#include "graph/bipartite_graph.h"

/// \file
/// Ground-truth oracle and validators used by the tests.
///
/// The oracle enumerates maximal bicliques by brute force over the power
/// set of the right side (closure-of-every-subset), which is exponential
/// and only usable for |V| up to ~20 — exactly what the property tests
/// need to cross-check the real algorithms on thousands of random graphs.

namespace mbe {

/// Brute-force maximal biclique enumeration. Aborts if `graph.num_right()`
/// exceeds 22 (the subset loop would not terminate in test time).
/// Returns bicliques in canonical sorted order, deduplicated.
std::vector<Biclique> BruteForceMbe(const BipartiteGraph& graph);

/// True iff (b.left, b.right) is a biclique of `graph` (every pair is an
/// edge, both sides nonempty, no duplicates within a side).
bool IsBiclique(const BipartiteGraph& graph, const Biclique& b);

/// True iff `b` is a *maximal* biclique of `graph`.
bool IsMaximalBiclique(const BipartiteGraph& graph, const Biclique& b);

/// Validates an enumeration result set: every entry is a maximal biclique
/// and there are no duplicates. On failure returns a description of the
/// first problem; on success returns the empty string.
std::string ValidateResultSet(const BipartiteGraph& graph,
                              const std::vector<Biclique>& results);

/// Compares two result sets (sorted or not) and describes the first
/// difference, or returns "" when they are equal as sets.
std::string DiffResultSets(std::vector<Biclique> expected,
                           std::vector<Biclique> actual);

}  // namespace mbe

#endif  // PMBE_CORE_VERIFY_H_
