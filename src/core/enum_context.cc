#include "core/enum_context.h"

#include <atomic>

#include "util/fault.h"

namespace mbe {

namespace {

template <typename T>
uint64_t CapacityBytes(const std::vector<T>& v) {
  return static_cast<uint64_t>(v.capacity()) * sizeof(T);
}

std::atomic<bool> g_paranoid_for_testing{false};

}  // namespace

void EnumContext::SetParanoidForTesting(bool on) {
  g_paranoid_for_testing.store(on, std::memory_order_relaxed);
}

EnumContext::EnumContext(util::MemoryTracker* tracker, bool paranoid)
    : tracker_(tracker != nullptr ? tracker : &util::GlobalMemoryTracker()),
      paranoid_(paranoid ||
                g_paranoid_for_testing.load(std::memory_order_relaxed)) {}

EnumContext::~EnumContext() {
  if (held_bytes_ > 0) tracker_->Sub(held_bytes_);
  ReleaseBudget(budget_charged_);
}

void EnumContext::ReleaseBudget(uint64_t freed) {
  const uint64_t r = freed < budget_charged_ ? freed : budget_charged_;
  if (r > 0) util::CurrentMemoryBudget().Release(r);
  budget_charged_ -= r;
}

template <typename T>
std::vector<T>* EnumContext::Acquire(Pool<T>* pool) {
  if (pool->top == pool->bufs.size()) {
    pool->bufs.push_back(std::make_unique<std::vector<T>>());
    pool->bytes.push_back(0);
  }
  std::vector<T>* buf = pool->bufs[pool->top++].get();
  buf->clear();
  return buf;
}

std::vector<VertexId>* EnumContext::AcquireIds() { return Acquire(&ids_); }

std::vector<uint64_t>* EnumContext::AcquireWords() { return Acquire(&words_); }

EnumContext::Checkpoint EnumContext::MakeCheckpoint() const {
  return Checkpoint{ids_.top, words_.top};
}

template <typename T>
void EnumContext::RewindPool(Pool<T>* pool, size_t to) {
  PMBE_DCHECK(to <= pool->top);
  // Buffers may have grown while handed out; settle the growth into the
  // accounting before (possibly) freeing them.
  for (size_t i = to; i < pool->top; ++i) {
    const uint64_t now = CapacityBytes(*pool->bufs[i]);
    const uint64_t before = pool->bytes[i];
    if (now > before) {
      const uint64_t delta = now - before;
      held_bytes_ += delta;
      tracker_->Add(delta);
      // "arena.grow" models this growth allocation failing: the budget
      // latches exhaustion exactly as if the charge had been declined.
      if (PMBE_FAULT("arena.grow")) {
        util::CurrentMemoryBudget().ForceExhaust();
      }
      if (util::CurrentMemoryBudget().TryCharge(delta)) {
        budget_charged_ += delta;
      }
      pool->bytes[i] = now;
    }
  }
  if (held_bytes_ > peak_bytes_) peak_bytes_ = held_bytes_;
  if (paranoid_) {
    // Free instead of pooling, so a span that escaped the frame is a
    // use-after-free ASan can see.
    uint64_t freed = 0;
    for (size_t i = to; i < pool->top; ++i) freed += pool->bytes[i];
    pool->bufs.resize(to);
    pool->bytes.resize(to);
    held_bytes_ -= freed;
    if (freed > 0) tracker_->Sub(freed);
    ReleaseBudget(freed);
  }
  pool->top = to;
}

void EnumContext::Rewind(const Checkpoint& cp) {
  RewindPool(&ids_, cp.ids_top);
  RewindPool(&words_, cp.words_top);
}

template <typename T>
void EnumContext::TrimPool(Pool<T>* pool) {
  uint64_t freed = 0;
  for (uint64_t b : pool->bytes) freed += b;
  pool->bufs.clear();
  pool->bytes.clear();
  held_bytes_ -= freed;
  if (freed > 0) tracker_->Sub(freed);
  ReleaseBudget(freed);
}

void EnumContext::Trim() {
  PMBE_DCHECK(live_buffers() == 0);
  TrimPool(&ids_);
  TrimPool(&words_);
}

}  // namespace mbe
