#ifndef PMBE_CORE_VERTEX_SET_H_
#define PMBE_CORE_VERTEX_SET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitset.h"
#include "util/common.h"
#include "util/memory.h"

/// \file
/// The adaptive set-representation layer (docs/SET_REPRESENTATION.md).
///
/// A `VertexSet` is a set of vertices drawn from a *local universe*
/// `[0, universe)` — in the enumerators this is the subtree's renumbered
/// L0, so universes are small (bounded by one vertex degree) and bitmaps
/// are a handful of 64-bit words. The set adaptively holds either
///
///  * a sorted `VertexId` list (the sparse representation every kernel in
///    core/set_ops.h understands), or
///  * a fixed-width bitmap of `util::WordsFor(universe)` words (the dense
///    representation whose intersection kernels are word-AND + popcount).
///
/// `VertexSetPolicy` decides which: density above the threshold picks the
/// bitmap. Conversions are cheap (O(size) up, O(universe/64 + size) down)
/// and explicit, so hot loops can pin a representation while generic
/// callers go through the `IntersectInto`/`IntersectSize` overload set
/// below and never choose a strategy by hand.

namespace mbe {

/// Density-threshold policy: bitmap when `size >= bitmap_density *
/// universe`. The two degenerate settings give the CI matrix its legs:
/// `0.0` forces bitmaps everywhere, anything `> 1.0` disables them.
struct VertexSetPolicy {
  /// Default threshold: a bitmap probe costs universe/64 words, a list
  /// scan costs `size` probes, so the break-even density is ~1/64; the
  /// default stays a factor above it to absorb conversion costs.
  double bitmap_density = 0.10;

  bool PickBitmap(size_t size, size_t universe) const {
    if (universe == 0) return false;
    // Under memory pressure the dense representation is declined outright:
    // sorted lists hold `size` ids while a bitmap holds the whole universe
    // (docs/ROBUSTNESS.md). Slower kernels, identical results.
    if (util::CurrentMemoryBudget().UnderPressure()) {
      util::CurrentMemoryBudget().NoteDegradation();
      return false;
    }
    if (bitmap_density <= 0.0) return true;
    return static_cast<double>(size) >=
           bitmap_density * static_cast<double>(universe);
  }
};

/// A vertex set over a local universe with an adaptive representation.
class VertexSet {
 public:
  enum class Rep : uint8_t { kSorted, kBitmap };

  VertexSet() = default;

  /// Wraps an already-sorted duplicate-free list over `[0, universe)`.
  static VertexSet OfSorted(std::vector<VertexId> sorted, size_t universe);

  /// Wraps a bitmap of exactly `util::WordsFor(universe)` words.
  static VertexSet OfBitmap(std::vector<uint64_t> words, size_t universe);

  /// Builds from a sorted list, choosing the representation by `policy`.
  static VertexSet Make(std::span<const VertexId> sorted, size_t universe,
                        const VertexSetPolicy& policy = {});

  Rep rep() const { return rep_; }
  size_t size() const { return size_; }
  size_t universe() const { return universe_; }
  bool empty() const { return size_ == 0; }

  /// O(1) on a bitmap, O(log size) on a list.
  bool Contains(VertexId x) const;

  /// Converts in place (no-op when already in `rep`).
  void ConvertTo(Rep rep);

  /// Converts to whichever representation `policy` prefers at the current
  /// density. Returns true when a conversion happened (stats hook).
  bool Adapt(const VertexSetPolicy& policy);

  /// The sorted list; requires rep() == kSorted.
  std::span<const VertexId> sorted() const {
    PMBE_DCHECK(rep_ == Rep::kSorted);
    return sorted_;
  }

  /// The bitmap words; requires rep() == kBitmap.
  std::span<const uint64_t> words() const {
    PMBE_DCHECK(rep_ == Rep::kBitmap);
    return words_;
  }

  /// Materializes the elements ascending regardless of representation.
  std::vector<VertexId> ToSortedList() const;

  friend bool operator==(const VertexSet& a, const VertexSet& b);

 private:
  std::vector<VertexId> sorted_;
  std::vector<uint64_t> words_;
  size_t universe_ = 0;
  size_t size_ = 0;
  Rep rep_ = Rep::kSorted;
};

/// --- One overload set over every representation pairing ------------------
/// `IntersectInto(a, b, out)` / `IntersectSize(a, b)` dispatch on the
/// operand types: list×list lives in core/set_ops.h (merge/gallop),
/// the word and mixed kernels live here, and the `VertexSet` overloads
/// pick whichever applies so callers stop choosing strategies by hand.

/// bitmap × bitmap -> bitmap (word AND). `out` may alias an operand.
void IntersectInto(std::span<const uint64_t> a, std::span<const uint64_t> b,
                   std::span<uint64_t> out);

/// |a ∩ b| of two bitmaps over the same universe.
size_t IntersectSize(std::span<const uint64_t> a, std::span<const uint64_t> b);

/// sorted list × bitmap -> sorted list into `*out` (cleared first).
void IntersectInto(std::span<const VertexId> a, std::span<const uint64_t> b,
                   std::vector<VertexId>* out);

/// |a ∩ b| for a sorted list against a bitmap.
size_t IntersectSize(std::span<const VertexId> a, std::span<const uint64_t> b);

/// Full dispatch over both operands' representations. The result keeps the
/// cheapest natural representation (bitmap only when both inputs are
/// bitmaps); call `out->Adapt(policy)` to re-apply the density policy.
void IntersectInto(const VertexSet& a, const VertexSet& b, VertexSet* out);

/// |a ∩ b| without materializing, any representation pairing.
size_t IntersectSize(const VertexSet& a, const VertexSet& b);

}  // namespace mbe

#endif  // PMBE_CORE_VERTEX_SET_H_
