#ifndef PMBE_SERVE_REGISTRY_H_
#define PMBE_SERVE_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"

/// \file
/// `serve::GraphRegistry` — the load-once graph store of a serving
/// process. Clients (or the server's preload flags) build an `mbe::Engine`
/// per graph; every session after that shares the immutable engine by
/// `shared_ptr<const Engine>`, so dropping a graph never invalidates
/// in-flight sessions — they keep their reference until they retire.
///
/// Names form one flat namespace shared by every connection (the protocol
/// carries no authentication), so registration is first-wins: `Put` refuses
/// to overwrite, and a name must be `Erase`d before it can be reused.
/// Without that rule any client could silently swap the graph under
/// another tenant's future sessions.

namespace mbe::serve {

class GraphRegistry {
 public:
  /// Registers `engine` under `name`. Returns false — leaving the existing
  /// engine in place — when the name is already taken.
  bool Put(const std::string& name, std::shared_ptr<const Engine> engine);

  /// The engine registered under `name`, or nullptr.
  std::shared_ptr<const Engine> Get(const std::string& name) const;

  /// Drops `name`; returns whether it existed.
  bool Erase(const std::string& name);

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const Engine>> engines_;
};

}  // namespace mbe::serve

#endif  // PMBE_SERVE_REGISTRY_H_
