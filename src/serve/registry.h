#ifndef PMBE_SERVE_REGISTRY_H_
#define PMBE_SERVE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"

/// \file
/// `serve::GraphRegistry` — the load-once graph store of a serving
/// process. Clients (or the server's preload flags) build an `mbe::Engine`
/// per graph; every session after that shares the immutable engine by
/// `shared_ptr<const Engine>`, so swapping or dropping a graph never
/// invalidates in-flight sessions — they keep their reference until they
/// retire.
///
/// Names form one flat namespace shared by every connection (the protocol
/// carries no authentication), so plain registration is first-wins: `Put`
/// refuses to overwrite. Replacement is a separate, deliberate operation:
/// `Swap` installs a new engine under an existing (or fresh) name and bumps
/// the slot's *epoch* — a monotone version number starting at 1. Sessions
/// that resolved the slot before the swap finish on the old engine (their
/// `shared_ptr` keeps it alive); sessions started after bind the new epoch.
/// `kReloadGraph` frames and `pmbe_serve`'s SIGHUP re-preload both drive
/// `Swap`.

namespace mbe::serve {

class GraphRegistry {
 public:
  /// One epoch-versioned engine slot, as resolved at a point in time.
  struct Slot {
    std::shared_ptr<const Engine> engine;
    uint64_t epoch = 0;  ///< 0 = name not registered
  };

  /// Registers `engine` under `name` at the name's next epoch (1 for a
  /// never-used name). Returns false — leaving the existing engine in
  /// place — when the name is already taken.
  bool Put(const std::string& name, std::shared_ptr<const Engine> engine);

  /// Installs `engine` under `name`, replacing any existing engine, and
  /// returns the slot's new epoch (1 for a fresh name, previous + 1 for a
  /// replacement). In-flight sessions holding the old engine's
  /// `shared_ptr` are unaffected.
  uint64_t Swap(const std::string& name,
                std::shared_ptr<const Engine> engine);

  /// The engine registered under `name`, or nullptr.
  std::shared_ptr<const Engine> Get(const std::string& name) const;

  /// The engine and its current epoch ({nullptr, 0} when unregistered).
  Slot GetSlot(const std::string& name) const;

  /// Drops `name`; returns whether it existed. The epoch survives the
  /// erase, so a later Swap of the same name keeps the version monotone.
  bool Erase(const std::string& name);

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  size_t size() const;

  /// Total Swap calls that replaced a live engine (the reload counter
  /// surfaced by kServerInfo).
  uint64_t reloads() const;

 private:
  struct Entry {
    std::shared_ptr<const Engine> engine;
    uint64_t epoch = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> engines_;
  /// Last epoch per name, kept across Erase so versions never rewind.
  std::map<std::string, uint64_t> last_epoch_;
  uint64_t reloads_ = 0;
};

}  // namespace mbe::serve

#endif  // PMBE_SERVE_REGISTRY_H_
