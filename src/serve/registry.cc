#include "serve/registry.h"

#include <mutex>
#include <utility>

namespace mbe::serve {

bool GraphRegistry::Put(const std::string& name,
                        std::shared_ptr<const Engine> engine) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = engines_.emplace(name, Entry{});
  if (!inserted) return false;
  it->second.engine = std::move(engine);
  it->second.epoch = ++last_epoch_[name];
  return true;
}

uint64_t GraphRegistry::Swap(const std::string& name,
                             std::shared_ptr<const Engine> engine) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = engines_[name];
  const bool replaced = entry.engine != nullptr;
  entry.engine = std::move(engine);
  entry.epoch = ++last_epoch_[name];
  if (replaced) ++reloads_;
  return entry.epoch;
}

std::shared_ptr<const Engine> GraphRegistry::Get(
    const std::string& name) const {
  return GetSlot(name).engine;
}

GraphRegistry::Slot GraphRegistry::GetSlot(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(name);
  if (it == engines_.end()) return Slot{};
  return Slot{it->second.engine, it->second.epoch};
}

bool GraphRegistry::Erase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return engines_.erase(name) > 0;
}

std::vector<std::string> GraphRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(engines_.size());
  for (const auto& [name, entry] : engines_) names.push_back(name);
  return names;
}

size_t GraphRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engines_.size();
}

uint64_t GraphRegistry::reloads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reloads_;
}

}  // namespace mbe::serve
