#include "serve/registry.h"

#include <mutex>
#include <utility>

namespace mbe::serve {

bool GraphRegistry::Put(const std::string& name,
                        std::shared_ptr<const Engine> engine) {
  std::lock_guard<std::mutex> lock(mu_);
  return engines_.emplace(name, std::move(engine)).second;
}

std::shared_ptr<const Engine> GraphRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(name);
  return it == engines_.end() ? nullptr : it->second;
}

bool GraphRegistry::Erase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return engines_.erase(name) > 0;
}

std::vector<std::string> GraphRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(engines_.size());
  for (const auto& [name, engine] : engines_) names.push_back(name);
  return names;
}

size_t GraphRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engines_.size();
}

}  // namespace mbe::serve
