#include "serve/admission.h"

#include <chrono>

namespace mbe::serve {

AdmissionController::Ticket AdmissionController::Acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  if (draining_) {
    return Ticket{.admitted = false, .reason = RejectReason::kDraining};
  }
  // Immediate admission only when nobody is ahead of us — a free slot with
  // a non-empty queue belongs to the head waiter.
  if (active_ < max_active_ && queued_ == 0) {
    ++active_;
    return Ticket{.admitted = true};
  }
  if (queued_ >= max_queued_) {
    return Ticket{.admitted = false,
                  .reason = RejectReason::kTooManySessions};
  }
  const uint64_t my_ticket = next_ticket_++;
  ++queued_;
  const auto enqueue_time = std::chrono::steady_clock::now();
  cv_.wait(lock, [&] {
    return draining_ || (serving_ == my_ticket && active_ < max_active_);
  });
  --queued_;
  if (draining_) {
    // Keep serving_ moving so waiters behind us (all also draining) make
    // their predicates true in order; with notify_all it is moot, but
    // cheap.
    if (serving_ == my_ticket) ++serving_;
    cv_.notify_all();
    return Ticket{.admitted = false, .reason = RejectReason::kDraining};
  }
  ++serving_;
  ++active_;
  const auto wait = std::chrono::steady_clock::now() - enqueue_time;
  cv_.notify_all();  // the next ticket holder may also have a free slot
  return Ticket{
      .admitted = true,
      .queue_wait_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(wait)
              .count())};
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ > 0) --active_;
  cv_.notify_all();
}

void AdmissionController::StartDraining() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
  cv_.notify_all();
}

bool AdmissionController::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

size_t AdmissionController::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

}  // namespace mbe::serve
