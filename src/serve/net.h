#ifndef PMBE_SERVE_NET_H_
#define PMBE_SERVE_NET_H_

#include <sys/types.h>

#include <cstddef>

/// \file
/// `serve::net` — the socket operations both the server and `mbe::Client`
/// actually call, as thin wrappers over accept/send/recv with two
/// properties layered on:
///
///  * **SIGPIPE safety**: every send goes out with MSG_NOSIGNAL, so a
///    peer that died mid-stream surfaces as EPIPE/ECONNRESET instead of
///    killing the process (both daemons also SIG_IGN SIGPIPE early, as a
///    belt for paths outside this shim).
///  * **Deterministic network fault injection**: the `net.*` points of the
///    PR 5 FaultRegistry catalog (util/fault.h) fire here, in fault builds
///    only, turning one call into the failure a hostile network would
///    produce — a reset connection, a stalled read, a truncated write, a
///    refused accept, injected latency. Regular builds compile the checks
///    out entirely; these are raw syscalls plus MSG_NOSIGNAL.
///
/// Fault behaviors (PMBE_FAULT_INJECTION builds, when armed):
///  * `net.accept` — Accept fails with ECONNABORTED (transient; accept
///    loops must continue, which is also correct against real kernels).
///  * `net.read_stall` — Recv naps briefly, then fails with EAGAIN — the
///    exact surface of an expired SO_RCVTIMEO, so deadline handling is
///    exercised without waiting out a real timeout.
///  * `net.write_truncate` — Send delivers a prefix of the buffer for
///    real, then kills the connection: the peer sees a torn frame.
///  * `net.reset` — the connection is shut down and the call fails with
///    ECONNRESET (fires on both Send and Recv).
///  * `net.delay` — the call sleeps ~20ms, then proceeds normally.
///
/// All functions return like the underlying syscalls: byte count (or fd)
/// on success, -1 with errno set on failure.

namespace mbe::serve::net {

/// accept(listen_fd) with `net.accept` injection.
int Accept(int listen_fd);

/// send(fd, ..., MSG_NOSIGNAL) with `net.delay` / `net.reset` /
/// `net.write_truncate` injection.
ssize_t Send(int fd, const void* buf, size_t len);

/// recv(fd, ...) with `net.delay` / `net.reset` / `net.read_stall`
/// injection.
ssize_t Recv(int fd, void* buf, size_t len);

}  // namespace mbe::serve::net

#endif  // PMBE_SERVE_NET_H_
