#ifndef PMBE_SERVE_SESSION_POOL_H_
#define PMBE_SERVE_SESSION_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "api/session.h"

/// \file
/// `serve::SessionPool` — one shared worker fleet executing many
/// concurrent `mbe::Session`s fairly.
///
/// The standalone `Session::Run` spawns `options.threads` workers per
/// query; a server doing that for 64 concurrent sessions would oversubscribe
/// the machine 64-fold. The pool inverts the ownership: N long-lived
/// workers claim *tasks* (one per-vertex subtree, or one whole-graph task
/// for monolithic algorithms) from the set of active sessions in
/// round-robin order, so every session makes progress proportional to its
/// remaining work and a giant query cannot starve a small one — it only
/// adds its own subtrees to the rotation.
///
/// Isolation per task: the worker binds the owning session's MemoryBudget
/// to its thread (charges attribute to that tenant only), polls that
/// session's controller (a deadline/cancel/budget trip stops only that
/// session's remaining tasks — they are swept as no-ops, preserving the
/// valid-prefix guarantee), and catches exceptions into that session's
/// `ReportInternal`. Worker state (enumerator + BufferedSink) is created
/// lazily per (session, worker) slot and destroyed — under the session's
/// budget binding, so charges and releases pair — by whichever worker
/// retires the session's last task; that worker also merges all worker
/// counters, calls `Session::Finish`, and fires the done callback.

namespace mbe::serve {

class SessionPool {
 public:
  /// Fired exactly once per submitted session, from a pool worker thread,
  /// after `Session::Finish` — the result is final and all result batches
  /// have been flushed to the session's sink.
  using DoneCallback = std::function<void(const RunResult&)>;

  /// Starts `threads` workers (at least 1).
  explicit SessionPool(unsigned threads);

  /// Drains (Shutdown) and joins.
  ~SessionPool();

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  unsigned threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a session whose `Prepare(sink)` already returned Ok. The
  /// pool owns the execution from here: `done` fires after the last task
  /// retires. Submitting to a pool that is already shut down cancels the
  /// session and completes it immediately on the calling thread.
  void Submit(std::shared_ptr<Session> session, DoneCallback done);

  /// Finishes every already submitted session (cancelled ones drain as
  /// no-op sweeps), then stops and joins the workers. Idempotent.
  void Shutdown();

 private:
  struct ActiveSession {
    std::shared_ptr<Session> session;
    DoneCallback done;
    std::chrono::steady_clock::time_point submit_time;

    /// Next unclaimed task index; guarded by the pool mutex.
    size_t next_task = 0;
    /// Tasks not yet retired. The last decrement (acq_rel) makes every
    /// worker's writes to its slot visible to the retiring worker.
    std::atomic<size_t> remaining{0};
    std::atomic<bool> first_claimed{false};
    /// Cached "this session's sink said stop" flag, set by workers outside
    /// the pool mutex. The claim loop reads only this — never the sink
    /// chain — under the pool mutex: the session's sink may take its own
    /// locks (the serve WireSink shares one with a connection's writers),
    /// and chaining into those while holding the mutex every worker needs
    /// to claim work would let one stuck session stall the whole pool.
    std::atomic<bool> stopped{false};

    /// Lazily built per-pool-worker state. Slot i is written only by
    /// worker i while tasks are in flight; the retiring worker reads all
    /// slots after the remaining-count handoff.
    struct WorkerState {
      std::unique_ptr<SubtreeWorker> worker;
      std::unique_ptr<BufferedSink> sink;
    };
    std::vector<WorkerState> per_worker;
  };

  void WorkerLoop(size_t worker_index);
  void RunTask(ActiveSession& active, size_t worker_index, size_t task);
  /// Retires `count` tasks; the last retirement flushes, merges stats,
  /// finishes the session, and fires `done`.
  void Retire(const std::shared_ptr<ActiveSession>& active, size_t count);
  void RecordFirstClaim(ActiveSession& active);

  std::mutex mu_;
  std::condition_variable cv_;
  /// Sessions with unclaimed tasks, visited round-robin via cursor_.
  std::vector<std::shared_ptr<ActiveSession>> ring_;
  size_t cursor_ = 0;
  bool stop_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace mbe::serve

#endif  // PMBE_SERVE_SESSION_POOL_H_
