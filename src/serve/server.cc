#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <sys/time.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <utility>

#include "graph/bipartite_graph.h"
#include "graph/ordering.h"
#include "serve/net.h"

namespace mbe::serve {

// Internal-but-external-linkage helpers (members of Server::Connection
// must not be anonymous-namespace types, or every use trips GCC's
// -Wsubobject-linkage).
namespace internal {

/// Thread-safe ResultSink that turns the (already id-translated) emissions
/// of one session into kResultBatch frames. Shared by all pool workers of
/// the session through their per-worker BufferedSinks, so emissions arrive
/// mostly as batches. A failed write latches the sink: further emissions
/// are dropped and ShouldStop() turns true, stopping the enumeration
/// instead of computing results nobody can receive.
class WireSink : public ResultSink {
 public:
  /// `write` must be thread-safe and return false on connection failure.
  using WriteFn = std::function<bool(Message&&)>;

  WireSink(WriteFn write, uint64_t session_id, uint32_t batch_results)
      : write_(std::move(write)), batch_results_(batch_results) {
    pending_.session_id = session_id;
  }

  void Emit(std::span<const VertexId> left,
            std::span<const VertexId> right) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (failed_.load(std::memory_order_relaxed)) return;
    fingerprint_.Emit(left, right);
    pending_.batch.Append(left, right);
    if (pending_.batch.size() >= batch_results_) FlushLocked();
  }

  void EmitBatch(const BicliqueBatch& batch) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (failed_.load(std::memory_order_relaxed)) return;
    fingerprint_.EmitBatch(batch);
    for (size_t i = 0; i < batch.size(); ++i) {
      pending_.batch.Append(batch.left(i), batch.right(i));
    }
    if (pending_.batch.size() >= batch_results_) FlushLocked();
  }

  /// Lock-free: polled from pool workers on hot paths (and cached into
  /// ActiveSession::stopped), so it must never contend with an in-flight
  /// flush.
  bool ShouldStop() const override {
    return failed_.load(std::memory_order_acquire);
  }

  /// Sends the final partial batch; call before the kSessionDone frame.
  void Flush() {
    std::lock_guard<std::mutex> lock(mu_);
    FlushLocked();
  }

  /// Commutative digest over every biclique handed to this sink — the
  /// same FingerprintSink fold clients run over received batches, so
  /// SessionDoneMsg::digest matches a complete stream by construction.
  uint64_t Digest() const { return fingerprint_.Digest(); }

 private:
  /// `write_` only queues the frame onto the connection's writer thread
  /// (Connection::WriteFrame) — it cannot block on the socket, so holding
  /// `mu_` across it is safe.
  void FlushLocked() {
    if (failed_.load(std::memory_order_relaxed) || pending_.batch.size() == 0) {
      return;
    }
    const uint64_t session_id = pending_.session_id;
    if (!write_(Message(std::move(pending_)))) {
      failed_.store(true, std::memory_order_release);
    }
    pending_ = ResultBatchMsg{};
    pending_.session_id = session_id;
  }

  WriteFn write_;
  const uint32_t batch_results_;
  mutable std::mutex mu_;
  ResultBatchMsg pending_;
  FingerprintSink fingerprint_;
  std::atomic<bool> failed_{false};
};

/// One in-flight (or admission-queued) session of a connection.
struct SessionRec {
  std::shared_ptr<Session> session;
  std::unique_ptr<WireSink> sink;
};

}  // namespace internal

struct Server::Connection {
  int fd = -1;
  std::atomic<bool> dead{false};
  std::atomic<bool> finished{false};
  std::thread reader;

  /// The only thread that ever blocks in send(): the reader, the session
  /// starters, and every pool worker just enqueue frames (WriteFrame), so
  /// a client that stops reading backs up this connection's queue instead
  /// of wedging whoever produced the frame.
  std::thread writer;
  std::mutex out_mu;
  std::condition_variable out_cv;
  std::deque<std::vector<uint8_t>> outbound;  ///< guarded by out_mu
  size_t outbound_bytes = 0;                  ///< guarded by out_mu
  size_t max_outbound_bytes = 0;  ///< set before the writer starts
  bool writer_stop = false;       ///< guarded by out_mu

  std::mutex sessions_mu;
  std::map<uint64_t, std::shared_ptr<internal::SessionRec>> sessions;
  /// Helper threads waiting out admission; guarded by sessions_mu. Each
  /// flips its `done` flag as its very last action, so StartSession can
  /// join finished starters without blocking (see the reap there); the
  /// reader's exit path joins whatever is left.
  struct Starter {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Starter> starters;

  ~Connection() {
    if (reader.joinable()) reader.join();
    StopWriter();
    if (fd >= 0) ::close(fd);
  }

  /// Encodes one frame and queues it for the writer; frames are later
  /// written whole, in queue order. Never blocks on the socket. Returns
  /// false — with the connection failed — when the frame cannot be
  /// delivered: encoding failed, the connection is already dead, or the
  /// client stopped reading long enough to overflow its outbound budget.
  bool WriteFrame(const Message& message) {
    std::vector<uint8_t> frame;
    if (!EncodeMessage(message, &frame).ok()) {
      Abandon();
      return false;
    }
    bool queued = false;
    {
      std::lock_guard<std::mutex> lock(out_mu);
      // An empty queue always accepts (the writer is keeping up), so one
      // frame bigger than the whole budget cannot wedge a healthy
      // connection; the memory bound is max(budget, one frame).
      if (!dead.load(std::memory_order_acquire) &&
          (outbound.empty() ||
           outbound_bytes + frame.size() <= max_outbound_bytes)) {
        outbound_bytes += frame.size();
        outbound.push_back(std::move(frame));
        queued = true;
      }
    }
    if (!queued) {
      Abandon();
      return false;
    }
    out_cv.notify_one();
    return true;
  }

  /// Writer-thread body. Sends may block — bounded by SO_SNDTIMEO — but
  /// hold no lock any other thread needs; a failed or timed-out send fails
  /// the whole connection. Exits once StopWriter was called and the queue
  /// is drained, so already-queued final frames still reach a live peer.
  void WriterLoop() {
    for (;;) {
      std::vector<uint8_t> frame;
      {
        std::unique_lock<std::mutex> lock(out_mu);
        out_cv.wait(lock, [&] { return writer_stop || !outbound.empty(); });
        if (outbound.empty()) return;  // writer_stop and fully drained
        frame = std::move(outbound.front());
        outbound.pop_front();
        outbound_bytes -= frame.size();
      }
      size_t off = 0;
      bool sent = true;
      while (off < frame.size()) {
        const ssize_t n =
            net::Send(fd, frame.data() + off, frame.size() - off);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {  // connection error or SO_SNDTIMEO expired
          sent = false;
          break;
        }
        off += static_cast<size_t>(n);
      }
      if (!sent) {
        Abandon();
        // The rest of the queue is undeliverable, and Abandon stopped new
        // enqueues; drop it and wait out writer_stop.
        std::lock_guard<std::mutex> lock(out_mu);
        outbound.clear();
        outbound_bytes = 0;
      }
    }
  }

  /// Lets the writer drain the queued frames, then joins it. Called from
  /// the reader's exit path (the destructor's call is then a no-op).
  void StopWriter() {
    {
      std::lock_guard<std::mutex> lock(out_mu);
      writer_stop = true;
    }
    out_cv.notify_all();
    if (writer.joinable()) writer.join();
  }

  /// Marks the connection dead and cancels all of its sessions. Idempotent.
  void Abandon() {
    dead.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(sessions_mu);
    for (auto& [id, rec] : sessions) rec->session->Cancel();
  }

  /// Unblocks the reader (recv returns) without invalidating the fd —
  /// writers may still hold it; the destructor closes.
  void Close() {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      pool_threads_(0),
      admission_(std::max<size_t>(1, options_.max_active_sessions),
                 options_.max_queued_sessions) {}

Server::~Server() { Stop(); }

util::Status Server::Start() {
  pool_threads_ = options_.pool_threads != 0
                      ? options_.pool_threads
                      : std::max(1u, std::thread::hardware_concurrency());
  pool_ = std::make_unique<SessionPool>(pool_threads_);

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return util::Status::InvalidArgument("unix socket path too long: " +
                                           options_.unix_path);
    }
    std::memcpy(addr.sun_path, options_.unix_path.c_str(),
                options_.unix_path.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return util::Status::IoError(std::string("socket: ") +
                                   std::strerror(errno));
    }
    ::unlink(options_.unix_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return util::Status::IoError("bind(" + options_.unix_path +
                                   "): " + std::strerror(errno));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return util::Status::IoError(std::string("socket: ") +
                                   std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    // Loopback only: the protocol carries no authentication.
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcp_port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return util::Status::IoError(
          "bind(127.0.0.1:" + std::to_string(options_.tcp_port) +
          "): " + std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    return util::Status::IoError(std::string("listen: ") +
                                 std::strerror(errno));
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return util::Status::Ok();
}

void Server::BeginDrain() { admission_.StartDraining(); }

bool Server::idle() const {
  return admission_.active() == 0 && admission_.queued() == 0;
}

void Server::Stop() {
  if (stopping_.exchange(true)) return;
  // Drain first: queued session starters wake with kDraining, so joining
  // the readers below (which join the starters) cannot deadlock.
  BeginDrain();
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    conn->Abandon();
    conn->Close();
  }
  for (auto& conn : connections) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  // Every submitted session finishes here (cancelled ones as no-op
  // sweeps); done callbacks write to the now-dead connections harmlessly.
  if (pool_ != nullptr) pool_->Shutdown();
  connections.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void Server::AcceptLoop() {
  for (;;) {
    const int client_fd = net::Accept(listen_fd_);
    if (client_fd < 0) {
      // ECONNABORTED: the peer (or an injected net.accept fault) gave up
      // between connect and accept — transient, keep serving.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // Stop() shut the listener down (or it broke)
    }
    if (stopping_.load()) {
      ::close(client_fd);
      return;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>();
    conn->fd = client_fd;
    conn->max_outbound_bytes = options_.max_outbound_bytes;
    if (options_.write_timeout_seconds > 0) {
      timeval timeout{};
      timeout.tv_sec = options_.write_timeout_seconds;
      ::setsockopt(client_fd, SOL_SOCKET, SO_SNDTIMEO, &timeout,
                   sizeof(timeout));
    }
    if (options_.idle_timeout_seconds > 0) {
      // The reader's recv wakes with EAGAIN after this long without
      // traffic; ConnectionLoop then drops the connection only when it
      // has no in-flight sessions.
      timeval timeout{};
      timeout.tv_sec = static_cast<time_t>(options_.idle_timeout_seconds);
      timeout.tv_usec = static_cast<suseconds_t>(
          (options_.idle_timeout_seconds - static_cast<double>(timeout.tv_sec)) *
          1e6);
      if (timeout.tv_sec == 0 && timeout.tv_usec == 0) timeout.tv_usec = 1;
      ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                   sizeof(timeout));
    }
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      // Reap connections whose reader already finished, so a long-lived
      // daemon doesn't accumulate one shell per past client.
      std::erase_if(connections_,
                    [](const std::shared_ptr<Connection>& old) {
                      if (!old->finished.load()) return false;
                      if (old->reader.joinable()) old->reader.join();
                      return true;
                    });
      connections_.push_back(conn);
      conn->writer = std::thread([conn] { conn->WriterLoop(); });
      conn->reader = std::thread([this, conn] { ConnectionLoop(conn); });
    }
  }
}

void Server::ConnectionLoop(std::shared_ptr<Connection> conn) {
  std::vector<uint8_t> buffer;
  std::array<uint8_t, 4096> chunk;
  bool keep_going = !stopping_.load();
  while (keep_going) {
    // Drain every complete frame currently buffered.
    size_t consumed = 0;
    while (keep_going) {
      std::span<const uint8_t> rest(buffer.data() + consumed,
                                    buffer.size() - consumed);
      size_t frame_size = 0;
      bool complete = false;
      if (util::Status status = PeekFrame(rest, &frame_size, &complete);
          !status.ok()) {
        conn->WriteFrame(ErrorMsg{status.ToString()});
        keep_going = false;
        break;
      }
      if (!complete) break;
      util::StatusOr<Message> decoded =
          DecodeMessage(rest.subspan(0, frame_size));
      consumed += frame_size;
      if (!decoded.ok()) {
        conn->WriteFrame(ErrorMsg{decoded.status().ToString()});
        keep_going = false;
        break;
      }
      if (!HandleMessage(conn, std::move(decoded).value())) {
        keep_going = false;
        break;
      }
    }
    buffer.erase(buffer.begin(),
                 buffer.begin() + static_cast<ptrdiff_t>(consumed));
    if (!keep_going) break;
    const ssize_t n = net::Recv(conn->fd, chunk.data(), chunk.size());
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_RCVTIMEO expired (or an injected net.read_stall). With the
      // idle timeout armed, a connection with no in-flight sessions has
      // now been silent for the whole window — drop it; one with work
      // still streaming keeps its socket.
      if (options_.idle_timeout_seconds > 0) {
        bool has_sessions;
        {
          std::lock_guard<std::mutex> lock(conn->sessions_mu);
          has_sessions = !conn->sessions.empty();
        }
        if (!has_sessions) {
          idle_disconnects_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
      continue;
    }
    if (n <= 0) break;  // peer closed or connection error
    buffer.insert(buffer.end(), chunk.data(), chunk.data() + n);
  }
  // Sessions past this point have no one to read them.
  conn->Abandon();
  std::vector<Connection::Starter> starters;
  {
    std::lock_guard<std::mutex> lock(conn->sessions_mu);
    starters.swap(conn->starters);
  }
  for (Connection::Starter& starter : starters) {
    if (starter.thread.joinable()) starter.thread.join();
  }
  // Deliver the already-queued final frames (e.g. the kError reply), then
  // half-close so the peer sees EOF (the kError path exits this loop with
  // the socket otherwise still open). Late WriteFrame calls are no-ops
  // via the dead latch.
  conn->StopWriter();
  conn->Close();
  conn->finished.store(true);
}

bool Server::HandleMessage(const std::shared_ptr<Connection>& conn,
                           Message message) {
  if (auto* hello = std::get_if<HelloMsg>(&message)) {
    if (hello->version != kProtocolVersion) {
      conn->WriteFrame(ErrorMsg{"unsupported protocol version " +
                                std::to_string(hello->version)});
      return false;
    }
    conn->WriteFrame(
        HelloOkMsg{kProtocolVersion, kMaxPayloadBytes, pool_threads_});
    return true;
  }
  if (auto* load = std::get_if<LoadGraphMsg>(&message)) {
    HandleLoadGraph(conn, std::move(*load), /*swap=*/false);
    return !conn->dead.load();
  }
  if (auto* reload = std::get_if<ReloadGraphMsg>(&message)) {
    HandleLoadGraph(conn, std::move(reload->load), /*swap=*/true);
    return !conn->dead.load();
  }
  if (auto* start = std::get_if<StartSessionMsg>(&message)) {
    StartSession(conn, std::move(*start));
    return true;
  }
  if (auto* cancel = std::get_if<CancelSessionMsg>(&message)) {
    std::lock_guard<std::mutex> lock(conn->sessions_mu);
    auto it = conn->sessions.find(cancel->session_id);
    // Unknown ids are ignored: the session may have just finished (its
    // kSessionDone frame is racing this cancel) — both are fine.
    if (it != conn->sessions.end()) it->second->session->Cancel();
    return true;
  }
  if (auto* ping = std::get_if<PingMsg>(&message)) {
    heartbeats_.fetch_add(1, std::memory_order_relaxed);
    conn->WriteFrame(PongMsg{ping->token});
    return true;
  }
  if (std::get_if<InfoRequestMsg>(&message) != nullptr) {
    conn->WriteFrame(Info());
    return true;
  }
  // Server-to-client types bounced back (or a future message type):
  // protocol violation.
  conn->WriteFrame(ErrorMsg{"unexpected message type"});
  return false;
}

void Server::HandleLoadGraph(const std::shared_ptr<Connection>& conn,
                             LoadGraphMsg msg, bool swap) {
  auto fail = [&](const std::string& detail) {
    conn->WriteFrame(ErrorMsg{"load '" + msg.name + "': " + detail});
    conn->Abandon();
  };
  if (msg.order > static_cast<uint8_t>(VertexOrder::kRandom)) {
    fail("unknown vertex order " + std::to_string(msg.order));
    return;
  }
  // First-wins namespace (registry.h): a plain load refuses before the
  // expensive engine build — a client must not be able to swap the graph
  // under a name other tenants' future sessions resolve. kReloadGraph is
  // the deliberate swap: it skips this check and bumps the slot's epoch.
  if (!swap && registry_.Get(msg.name) != nullptr) {
    fail("graph name already registered");
    return;
  }
  std::vector<Edge> edges(msg.edge_left.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    edges[i] = Edge{msg.edge_left[i], msg.edge_right[i]};
  }
  util::StatusOr<BipartiteGraph> graph = BipartiteGraph::FromEdgesChecked(
      msg.num_left, msg.num_right, std::move(edges));
  if (!graph.ok()) {
    fail(graph.status().ToString());
    return;
  }
  GraphOptions gopts;
  gopts.order = static_cast<VertexOrder>(msg.order);
  gopts.hub_first_left = msg.hub_first_left;
  gopts.auto_swap_sides = msg.auto_swap_sides;
  gopts.core_reduce = msg.core_reduce;
  gopts.min_left = msg.min_left;
  gopts.min_right = msg.min_right;
  gopts.seed = msg.seed;
  if (util::Status status = gopts.Validate(); !status.ok()) {
    fail(status.ToString());
    return;
  }
  auto engine = Engine::Build(std::move(graph).value(), gopts);
  if (!engine.ok()) {
    fail(engine.status().ToString());
    return;
  }
  LoadOkMsg ok;
  ok.name = msg.name;
  ok.num_left = static_cast<uint32_t>(engine.value()->original_num_left());
  ok.num_right = static_cast<uint32_t>(engine.value()->original_num_right());
  // Edges retained after dedup and core reduction — what sessions will
  // actually enumerate over.
  ok.num_edges = engine.value()->graph().num_edges();
  ok.build_seconds = engine.value()->build_seconds();
  if (swap) {
    ok.epoch = registry_.Swap(msg.name, std::move(engine).value());
  } else {
    if (!registry_.Put(msg.name, std::move(engine).value())) {
      fail("graph name already registered");  // raced a concurrent load
      return;
    }
    ok.epoch = registry_.GetSlot(msg.name).epoch;
  }
  conn->WriteFrame(ok);
}

ServerInfoMsg Server::Info() const {
  ServerInfoMsg info;
  info.pool_threads = pool_threads_;
  info.active_sessions = static_cast<uint32_t>(admission_.active());
  info.queued_sessions = static_cast<uint32_t>(admission_.queued());
  info.graphs = static_cast<uint32_t>(registry_.size());
  info.sessions_started =
      sessions_started_.load(std::memory_order_relaxed);
  info.sessions_completed =
      sessions_completed_.load(std::memory_order_relaxed);
  info.reloads = registry_.reloads();
  info.heartbeats = heartbeats_.load(std::memory_order_relaxed);
  info.idle_disconnects = idle_disconnects_.load(std::memory_order_relaxed);
  info.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  info.draining = admission_.draining() ? 1 : 0;
  return info;
}

void Server::StartSession(const std::shared_ptr<Connection>& conn,
                          StartSessionMsg msg) {
  auto reject = [&](RejectReason reason, const std::string& detail) {
    conn->WriteFrame(
        RejectedMsg{static_cast<uint8_t>(reason),
                    std::string(RejectReasonName(reason)) +
                        (detail.empty() ? "" : ": " + detail)});
  };
  if (msg.algorithm > static_cast<uint8_t>(Algorithm::kOombeaLite)) {
    reject(RejectReason::kBadOptions,
           "unknown algorithm " + std::to_string(msg.algorithm));
    return;
  }
  std::shared_ptr<const Engine> engine = registry_.Get(msg.graph);
  if (engine == nullptr) {
    reject(RejectReason::kUnknownGraph, "'" + msg.graph + "'");
    return;
  }
  RunOptions opts;
  opts.algorithm = static_cast<Algorithm>(msg.algorithm);
  opts.threads = 1;  // the shared pool brings the execution threads
  opts.mbet.min_left = msg.min_left;
  opts.mbet.min_right = msg.min_right;
  opts.control.max_results = msg.max_results;
  opts.control.max_nodes_expanded = msg.max_nodes_expanded;
  opts.control.deadline_seconds = msg.deadline_seconds;
  opts.max_memory_bytes = msg.max_memory_bytes;
  if (util::Status status = opts.Validate(); !status.ok()) {
    reject(RejectReason::kBadOptions, status.ToString());
    return;
  }

  const uint64_t session_id = next_session_id_.fetch_add(1);
  const uint32_t batch_results = std::clamp<uint32_t>(msg.batch_results, 1,
                                                      4096);
  auto rec = std::make_shared<internal::SessionRec>();
  rec->session =
      std::make_shared<Session>(std::move(engine), std::move(opts),
                                session_id);
  rec->sink = std::make_unique<internal::WireSink>(
      [conn](Message&& frame) { return conn->WriteFrame(frame); },
      session_id, batch_results);

  // Register before the starter runs so kCancelSession reaches the
  // session even while it waits in the admission queue (Cancel before
  // Prepare is a supported latch).
  std::lock_guard<std::mutex> lock(conn->sessions_mu);
  conn->sessions[session_id] = rec;
  // Reap starters that already finished: a long-lived connection may
  // start thousands of sessions, and a finished-but-unjoined thread pins
  // kernel and stack resources until someone joins it. A set `done` flag
  // is a starter's final action, so these joins return immediately.
  std::erase_if(conn->starters, [](Connection::Starter& starter) {
    if (!starter.done->load(std::memory_order_acquire)) return false;
    if (starter.thread.joinable()) starter.thread.join();
    return true;
  });
  auto done_flag = std::make_shared<std::atomic<bool>>(false);
  conn->starters.push_back(Connection::Starter{
      std::thread([this, conn, rec, session_id, done_flag] {
        RunStarter(conn, rec, session_id);
        done_flag->store(true, std::memory_order_release);
      }),
      done_flag});
}

void Server::RunStarter(const std::shared_ptr<Connection>& conn,
                        const std::shared_ptr<internal::SessionRec>& rec,
                        uint64_t session_id) {
  auto drop = [&] {
    std::lock_guard<std::mutex> inner(conn->sessions_mu);
    conn->sessions.erase(session_id);
  };
  const AdmissionController::Ticket ticket = admission_.Acquire();
  if (!ticket.admitted) {
    conn->WriteFrame(
        RejectedMsg{static_cast<uint8_t>(ticket.reason),
                    RejectReasonName(ticket.reason)});
    drop();
    return;
  }
  if (ticket.queue_wait_ns > 0) {
    EnumStats wait_stats;
    wait_stats.queue_wait_ns = ticket.queue_wait_ns;
    rec->session->AddWorkerStats(wait_stats);
  }
  if (util::Status status = rec->session->Prepare(rec->sink.get());
      !status.ok()) {
    admission_.Release();
    conn->WriteFrame(RejectedMsg{
        static_cast<uint8_t>(RejectReason::kBadOptions),
        status.ToString()});
    drop();
    return;
  }
  conn->WriteFrame(SessionStartedMsg{session_id});
  sessions_started_.fetch_add(1, std::memory_order_relaxed);
  pool_->Submit(rec->session, [this, conn, rec,
                               session_id](const RunResult& result) {
    rec->sink->Flush();  // final partial batch precedes kSessionDone
    SessionDoneMsg done;
    done.session_id = session_id;
    done.termination = static_cast<uint8_t>(result.termination);
    done.results_emitted = result.results_emitted;
    done.maximal = result.stats.maximal;
    done.nodes_expanded = result.stats.nodes_expanded;
    done.peak_charged_bytes = result.stats.peak_charged_bytes;
    done.queue_wait_ns = result.stats.queue_wait_ns;
    done.seconds = result.seconds;
    // Digest over everything flushed toward the client: a receiver whose
    // own fingerprint fold disagrees is missing (or double-counting)
    // batches and must not trust the stream.
    done.digest = rec->sink->Digest();
    done.message = result.message;
    conn->WriteFrame(done);
    {
      std::lock_guard<std::mutex> inner(conn->sessions_mu);
      conn->sessions.erase(session_id);
    }
    sessions_completed_.fetch_add(1, std::memory_order_relaxed);
    admission_.Release();
  });
}

}  // namespace mbe::serve
