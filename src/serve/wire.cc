#include "serve/wire.h"

#include <cstring>

namespace mbe::serve {

namespace {

/// Little-endian primitive writer appending to a byte vector.
class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_->push_back((v >> (8 * i)) & 0xff);
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_->push_back((v >> (8 * i)) & 0xff);
  }
  void F64(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_->insert(out_->end(), s.begin(), s.end());
  }
  void Ids(std::span<const VertexId> ids) {
    for (VertexId id : ids) U32(id);
  }

 private:
  std::vector<uint8_t>* out_;
};

/// Bounds-checked little-endian reader. Overruns latch the error flag and
/// return zeros; callers check ok() once at the end instead of per field.
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return bytes_[pos_++];
  }
  /// Strict bool: only 0 and 1 are valid encodings. Anything else would
  /// decode to a message that re-encodes differently, breaking the
  /// canonical-encoding guarantee the fuzzer relies on.
  bool Bool() {
    const uint8_t v = U8();
    if (v > 1) ok_ = false;
    return v != 0;
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t{bytes_[pos_ + i]} << (8 * i);
    pos_ += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t{bytes_[pos_ + i]} << (8 * i);
    pos_ += 8;
    return v;
  }
  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str(size_t max_bytes) {
    const uint32_t n = U32();
    if (n > max_bytes || !Need(n)) {
      ok_ = false;
      return "";
    }
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  /// Reads `count` ids, each strictly below `bound` (bound 0 skips the
  /// range check — used where the bound is carried elsewhere).
  std::vector<VertexId> Ids(size_t count, uint32_t bound) {
    std::vector<VertexId> ids;
    if (!Need(count * 4)) return ids;
    ids.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      const uint32_t v = U32();
      if (bound != 0 && v >= bound) {
        ok_ = false;
        return ids;
      }
      ids.push_back(v);
    }
    return ids;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  bool Need(size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

void EncodePayload(const HelloMsg& m, Writer& w) { w.U32(m.version); }

void EncodePayload(const HelloOkMsg& m, Writer& w) {
  w.U32(m.version);
  w.U32(m.max_payload);
  w.U32(m.pool_threads);
}

void EncodePayload(const LoadGraphMsg& m, Writer& w) {
  w.Str(m.name);
  w.U32(m.num_left);
  w.U32(m.num_right);
  w.U8(m.order);
  w.U8(m.hub_first_left ? 1 : 0);
  w.U8(m.auto_swap_sides ? 1 : 0);
  w.U8(m.core_reduce ? 1 : 0);
  w.U32(m.min_left);
  w.U32(m.min_right);
  w.U64(m.seed);
  w.U64(m.edge_left.size());
  w.Ids(m.edge_left);
  w.Ids(m.edge_right);
}

void EncodePayload(const LoadOkMsg& m, Writer& w) {
  w.Str(m.name);
  w.U32(m.num_left);
  w.U32(m.num_right);
  w.U64(m.num_edges);
  w.U64(m.epoch);
  w.F64(m.build_seconds);
}

void EncodePayload(const StartSessionMsg& m, Writer& w) {
  w.Str(m.graph);
  w.U8(m.algorithm);
  w.U32(m.min_left);
  w.U32(m.min_right);
  w.U64(m.max_results);
  w.U64(m.max_nodes_expanded);
  w.F64(m.deadline_seconds);
  w.U64(m.max_memory_bytes);
  w.U32(m.batch_results);
}

void EncodePayload(const SessionStartedMsg& m, Writer& w) {
  w.U64(m.session_id);
}

void EncodePayload(const CancelSessionMsg& m, Writer& w) {
  w.U64(m.session_id);
}

void EncodePayload(const ResultBatchMsg& m, Writer& w) {
  w.U64(m.session_id);
  w.U32(static_cast<uint32_t>(m.batch.size()));
  for (size_t i = 0; i < m.batch.size(); ++i) {
    const auto left = m.batch.left(i);
    const auto right = m.batch.right(i);
    w.U32(static_cast<uint32_t>(left.size()));
    w.U32(static_cast<uint32_t>(right.size()));
    w.Ids(left);
    w.Ids(right);
  }
}

void EncodePayload(const SessionDoneMsg& m, Writer& w) {
  w.U64(m.session_id);
  w.U8(m.termination);
  w.U64(m.results_emitted);
  w.U64(m.maximal);
  w.U64(m.nodes_expanded);
  w.U64(m.peak_charged_bytes);
  w.U64(m.queue_wait_ns);
  w.F64(m.seconds);
  w.U64(m.digest);
  w.Str(m.message);
}

void EncodePayload(const RejectedMsg& m, Writer& w) {
  w.U8(m.reason);
  w.Str(m.detail);
}

void EncodePayload(const ErrorMsg& m, Writer& w) { w.Str(m.detail); }

void EncodePayload(const PingMsg& m, Writer& w) { w.U64(m.token); }

void EncodePayload(const PongMsg& m, Writer& w) { w.U64(m.token); }

void EncodePayload(const InfoRequestMsg&, Writer&) {}

void EncodePayload(const ServerInfoMsg& m, Writer& w) {
  w.U32(m.pool_threads);
  w.U32(m.active_sessions);
  w.U32(m.queued_sessions);
  w.U32(m.graphs);
  w.U64(m.sessions_started);
  w.U64(m.sessions_completed);
  w.U64(m.reloads);
  w.U64(m.heartbeats);
  w.U64(m.idle_disconnects);
  w.U64(m.connections_accepted);
  w.U8(m.draining);
}

void EncodePayload(const ReloadGraphMsg& m, Writer& w) {
  // Same payload as kLoadGraph; the type byte carries the swap semantics.
  EncodePayload(m.load, w);
}

/// kLoadGraph payload body, shared with kReloadGraph (same layout).
util::StatusOr<LoadGraphMsg> DecodeLoadGraphBody(Reader& r) {
  LoadGraphMsg m;
  m.name = r.Str(kMaxNameBytes);
  m.num_left = r.U32();
  m.num_right = r.U32();
  m.order = r.U8();
  m.hub_first_left = r.Bool();
  m.auto_swap_sides = r.Bool();
  m.core_reduce = r.Bool();
  m.min_left = r.U32();
  m.min_right = r.U32();
  m.seed = r.U64();
  const uint64_t edges = r.U64();
  // Each edge is two u32 ids: an honest count fills the remaining
  // payload exactly, so a corrupt count cannot drive a giant reserve.
  if (!r.ok() || r.remaining() % 8 != 0 || edges != r.remaining() / 8) {
    return util::Status::CorruptData("kLoadGraph: edge count mismatch");
  }
  if (edges > 0 && (m.num_left == 0 || m.num_right == 0)) {
    return util::Status::CorruptData("kLoadGraph: edges on an empty side");
  }
  m.edge_left = r.Ids(edges, m.num_left);
  m.edge_right = r.Ids(edges, m.num_right);
  if (!r.ok()) {
    return util::Status::CorruptData("kLoadGraph: edge id out of range");
  }
  return m;
}

util::StatusOr<Message> DecodePayload(MsgType type, Reader& r) {
  switch (type) {
    case MsgType::kHello: {
      HelloMsg m;
      m.version = r.U32();
      return Message{m};
    }
    case MsgType::kHelloOk: {
      HelloOkMsg m;
      m.version = r.U32();
      m.max_payload = r.U32();
      m.pool_threads = r.U32();
      return Message{m};
    }
    case MsgType::kLoadGraph: {
      util::StatusOr<LoadGraphMsg> m = DecodeLoadGraphBody(r);
      PMBE_RETURN_IF_ERROR(m.status());
      return Message{std::move(m).value()};
    }
    case MsgType::kLoadOk: {
      LoadOkMsg m;
      m.name = r.Str(kMaxNameBytes);
      m.num_left = r.U32();
      m.num_right = r.U32();
      m.num_edges = r.U64();
      m.epoch = r.U64();
      m.build_seconds = r.F64();
      return Message{std::move(m)};
    }
    case MsgType::kStartSession: {
      StartSessionMsg m;
      m.graph = r.Str(kMaxNameBytes);
      m.algorithm = r.U8();
      m.min_left = r.U32();
      m.min_right = r.U32();
      m.max_results = r.U64();
      m.max_nodes_expanded = r.U64();
      m.deadline_seconds = r.F64();
      m.max_memory_bytes = r.U64();
      m.batch_results = r.U32();
      return Message{std::move(m)};
    }
    case MsgType::kSessionStarted: {
      SessionStartedMsg m;
      m.session_id = r.U64();
      return Message{m};
    }
    case MsgType::kCancelSession: {
      CancelSessionMsg m;
      m.session_id = r.U64();
      return Message{m};
    }
    case MsgType::kResultBatch: {
      ResultBatchMsg m;
      m.session_id = r.U64();
      const uint32_t count = r.U32();
      for (uint32_t i = 0; r.ok() && i < count; ++i) {
        const uint32_t l_len = r.U32();
        const uint32_t r_len = r.U32();
        // Both sides must fit in the remaining bytes before any reserve.
        if (!r.ok() ||
            uint64_t{l_len} * 4 + uint64_t{r_len} * 4 > r.remaining()) {
          return util::Status::CorruptData(
              "kResultBatch: entry length mismatch");
        }
        const std::vector<VertexId> left = r.Ids(l_len, 0);
        const std::vector<VertexId> right = r.Ids(r_len, 0);
        if (!r.ok()) break;
        m.batch.Append(left, right);
      }
      if (!r.ok()) {
        return util::Status::CorruptData("kResultBatch: truncated entries");
      }
      return Message{std::move(m)};
    }
    case MsgType::kSessionDone: {
      SessionDoneMsg m;
      m.session_id = r.U64();
      m.termination = r.U8();
      m.results_emitted = r.U64();
      m.maximal = r.U64();
      m.nodes_expanded = r.U64();
      m.peak_charged_bytes = r.U64();
      m.queue_wait_ns = r.U64();
      m.seconds = r.F64();
      m.digest = r.U64();
      m.message = r.Str(kMaxPayloadBytes);
      return Message{std::move(m)};
    }
    case MsgType::kRejected: {
      RejectedMsg m;
      m.reason = r.U8();
      m.detail = r.Str(kMaxPayloadBytes);
      return Message{std::move(m)};
    }
    case MsgType::kError: {
      ErrorMsg m;
      m.detail = r.Str(kMaxPayloadBytes);
      return Message{std::move(m)};
    }
    case MsgType::kPing: {
      PingMsg m;
      m.token = r.U64();
      return Message{m};
    }
    case MsgType::kPong: {
      PongMsg m;
      m.token = r.U64();
      return Message{m};
    }
    case MsgType::kInfoRequest: {
      return Message{InfoRequestMsg{}};
    }
    case MsgType::kServerInfo: {
      ServerInfoMsg m;
      m.pool_threads = r.U32();
      m.active_sessions = r.U32();
      m.queued_sessions = r.U32();
      m.graphs = r.U32();
      m.sessions_started = r.U64();
      m.sessions_completed = r.U64();
      m.reloads = r.U64();
      m.heartbeats = r.U64();
      m.idle_disconnects = r.U64();
      m.connections_accepted = r.U64();
      m.draining = r.U8();
      return Message{m};
    }
    case MsgType::kReloadGraph: {
      util::StatusOr<LoadGraphMsg> body = DecodeLoadGraphBody(r);
      PMBE_RETURN_IF_ERROR(body.status());
      ReloadGraphMsg m;
      m.load = std::move(body).value();
      return Message{std::move(m)};
    }
  }
  return util::Status::InvalidArgument(
      "unknown message type " + std::to_string(static_cast<int>(type)));
}

}  // namespace

const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kTooManySessions:
      return "too-many-sessions";
    case RejectReason::kDraining:
      return "draining";
    case RejectReason::kUnknownGraph:
      return "unknown-graph";
    case RejectReason::kBadOptions:
      return "bad-options";
  }
  return "?";
}

MsgType TypeOf(const Message& message) {
  struct Visitor {
    MsgType operator()(const HelloMsg&) { return MsgType::kHello; }
    MsgType operator()(const HelloOkMsg&) { return MsgType::kHelloOk; }
    MsgType operator()(const LoadGraphMsg&) { return MsgType::kLoadGraph; }
    MsgType operator()(const LoadOkMsg&) { return MsgType::kLoadOk; }
    MsgType operator()(const StartSessionMsg&) {
      return MsgType::kStartSession;
    }
    MsgType operator()(const SessionStartedMsg&) {
      return MsgType::kSessionStarted;
    }
    MsgType operator()(const CancelSessionMsg&) {
      return MsgType::kCancelSession;
    }
    MsgType operator()(const ResultBatchMsg&) { return MsgType::kResultBatch; }
    MsgType operator()(const SessionDoneMsg&) { return MsgType::kSessionDone; }
    MsgType operator()(const RejectedMsg&) { return MsgType::kRejected; }
    MsgType operator()(const ErrorMsg&) { return MsgType::kError; }
    MsgType operator()(const PingMsg&) { return MsgType::kPing; }
    MsgType operator()(const PongMsg&) { return MsgType::kPong; }
    MsgType operator()(const InfoRequestMsg&) { return MsgType::kInfoRequest; }
    MsgType operator()(const ServerInfoMsg&) { return MsgType::kServerInfo; }
    MsgType operator()(const ReloadGraphMsg&) { return MsgType::kReloadGraph; }
  };
  return std::visit(Visitor{}, message);
}

namespace {

/// Encode-side mirror of the decoder's structural bounds. A message that
/// violates them must fail here, cleanly — encoding it anyway would
/// produce a frame the peer rejects as corrupt, which the header promises
/// never happens.
util::Status ValidateLoadBody(const LoadGraphMsg& load) {
  if (load.edge_left.size() != load.edge_right.size()) {
    return util::Status::InvalidArgument(
        "kLoadGraph: edge_left/edge_right size mismatch (" +
        std::to_string(load.edge_left.size()) + " vs " +
        std::to_string(load.edge_right.size()) + ")");
  }
  if (load.name.size() > kMaxNameBytes) {
    return util::Status::InvalidArgument(
        "kLoadGraph: name exceeds " + std::to_string(kMaxNameBytes) +
        " bytes");
  }
  return util::Status::Ok();
}

util::Status ValidateForEncode(const Message& message) {
  if (const auto* load = std::get_if<LoadGraphMsg>(&message)) {
    PMBE_RETURN_IF_ERROR(ValidateLoadBody(*load));
  } else if (const auto* reload = std::get_if<ReloadGraphMsg>(&message)) {
    PMBE_RETURN_IF_ERROR(ValidateLoadBody(reload->load));
  } else if (const auto* ok = std::get_if<LoadOkMsg>(&message)) {
    if (ok->name.size() > kMaxNameBytes) {
      return util::Status::InvalidArgument(
          "kLoadOk: name exceeds " + std::to_string(kMaxNameBytes) +
          " bytes");
    }
  } else if (const auto* start = std::get_if<StartSessionMsg>(&message)) {
    if (start->graph.size() > kMaxNameBytes) {
      return util::Status::InvalidArgument(
          "kStartSession: graph name exceeds " +
          std::to_string(kMaxNameBytes) + " bytes");
    }
  }
  return util::Status::Ok();
}

}  // namespace

util::Status EncodeMessage(const Message& message, std::vector<uint8_t>* out) {
  PMBE_CHECK(out != nullptr);
  PMBE_RETURN_IF_ERROR(ValidateForEncode(message));
  std::vector<uint8_t> payload;
  Writer w(&payload);
  std::visit([&w](const auto& m) { EncodePayload(m, w); }, message);
  if (payload.size() > kMaxPayloadBytes) {
    return util::Status::InvalidArgument(
        "payload exceeds kMaxPayloadBytes (" +
        std::to_string(payload.size()) + " bytes)");
  }
  Writer header(out);
  header.U32(static_cast<uint32_t>(payload.size()));
  header.U8(static_cast<uint8_t>(TypeOf(message)));
  out->insert(out->end(), payload.begin(), payload.end());
  return util::Status::Ok();
}

util::Status PeekFrame(std::span<const uint8_t> buffer, size_t* frame_size,
                       bool* complete) {
  PMBE_CHECK(frame_size != nullptr && complete != nullptr);
  *complete = false;
  *frame_size = 0;
  if (buffer.size() < kFrameHeaderBytes) return util::Status::Ok();
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= uint32_t{buffer[i]} << (8 * i);
  if (len > kMaxPayloadBytes) {
    return util::Status::CorruptData(
        "frame header claims " + std::to_string(len) +
        " payload bytes (max " + std::to_string(kMaxPayloadBytes) + ")");
  }
  *frame_size = kFrameHeaderBytes + len;
  *complete = buffer.size() >= *frame_size;
  return util::Status::Ok();
}

util::StatusOr<Message> DecodeMessage(std::span<const uint8_t> frame) {
  size_t frame_size = 0;
  bool complete = false;
  PMBE_RETURN_IF_ERROR(PeekFrame(frame, &frame_size, &complete));
  if (!complete || frame.size() != frame_size) {
    return util::Status::CorruptData(
        "frame is " + std::to_string(frame.size()) + " bytes, header wants " +
        std::to_string(frame_size));
  }
  const uint8_t type = frame[4];
  Reader r(frame.subspan(kFrameHeaderBytes));
  util::StatusOr<Message> decoded =
      DecodePayload(static_cast<MsgType>(type), r);
  PMBE_RETURN_IF_ERROR(decoded.status());
  if (!r.AtEnd()) {
    return util::Status::CorruptData("payload has trailing or missing bytes");
  }
  return decoded;
}

void FrameAssembler::Feed(std::span<const uint8_t> bytes) {
  if (!poison_.ok()) return;
  // Compact once the dead prefix dominates, so a long-lived stream does
  // not grow the buffer past one frame plus slack.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

util::StatusOr<bool> FrameAssembler::Next(Message* out) {
  PMBE_CHECK(out != nullptr);
  if (!poison_.ok()) return poison_;
  const std::span<const uint8_t> pending(buffer_.data() + consumed_,
                                         buffer_.size() - consumed_);
  size_t frame_size = 0;
  bool complete = false;
  util::Status status = PeekFrame(pending, &frame_size, &complete);
  if (status.ok() && complete) {
    util::StatusOr<Message> decoded =
        DecodeMessage(pending.subspan(0, frame_size));
    status = decoded.status();
    if (status.ok()) {
      consumed_ += frame_size;
      *out = std::move(decoded).value();
      return true;
    }
  }
  if (!status.ok()) {
    poison_ = status;
    return poison_;
  }
  return false;
}

}  // namespace mbe::serve
