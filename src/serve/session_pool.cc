#include "serve/session_pool.h"

#include <algorithm>
#include <utility>

#include "util/fault.h"

namespace mbe::serve {

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

SessionPool::SessionPool(unsigned threads) {
  const unsigned n = std::max(1u, threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

SessionPool::~SessionPool() { Shutdown(); }

void SessionPool::Submit(std::shared_ptr<Session> session,
                         DoneCallback done) {
  auto active = std::make_shared<ActiveSession>();
  active->session = std::move(session);
  active->done = std::move(done);
  active->submit_time = std::chrono::steady_clock::now();
  const size_t tasks = active->session->task_count();
  active->remaining.store(tasks, std::memory_order_relaxed);
  active->per_worker.resize(workers_.size());

  bool inline_finish = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      // The pool's workers are gone; honor the done-exactly-once contract
      // on the calling thread, as a cancelled empty run.
      inline_finish = true;
    } else if (tasks == 0) {
      // Nothing to claim (empty right side): never enters the ring, so
      // finish directly.
      inline_finish = true;
    } else {
      ring_.push_back(std::move(active));
    }
  }
  if (inline_finish) {
    if (stop_) active->session->Cancel();
    util::ScopedBudgetBinding binding(&active->session->budget());
    RunResult result;
    active->session->Finish(&result);
    if (active->done) active->done(result);
    return;
  }
  cv_.notify_all();
}

void SessionPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void SessionPool::WorkerLoop(size_t worker_index) {
  for (;;) {
    std::shared_ptr<ActiveSession> active;
    size_t first = 0;
    size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !ring_.empty(); });
      if (ring_.empty()) return;  // stop_ and fully drained
      if (cursor_ >= ring_.size()) cursor_ = 0;
      active = ring_[cursor_];
      const size_t total = active->session->task_count();
      first = active->next_task;
      // A stopped session's remaining tasks are pure bookkeeping: sweep
      // them in one claim instead of one lock round per subtree. Only the
      // cached flag is consulted here — see ActiveSession::stopped.
      count = active->stopped.load(std::memory_order_relaxed)
                  ? total - first
                  : 1;
      active->next_task += count;
      if (active->next_task >= total) {
        ring_.erase(ring_.begin() + cursor_);
      } else {
        ++cursor_;  // round-robin: next claim goes to the next session
      }
      if (cursor_ >= ring_.size()) cursor_ = 0;
    }
    if (count == 1) {
      RunTask(*active, worker_index, first);
    } else {
      RecordFirstClaim(*active);  // a session can stop before any task ran
    }
    Retire(active, count);
  }
}

void SessionPool::RecordFirstClaim(ActiveSession& active) {
  if (!active.first_claimed.exchange(true, std::memory_order_acq_rel)) {
    EnumStats wait_stats;
    wait_stats.queue_wait_ns = ElapsedNs(active.submit_time);
    active.session->AddWorkerStats(wait_stats);
  }
}

void SessionPool::RunTask(ActiveSession& active, size_t worker_index,
                          size_t task) {
  RecordFirstClaim(active);
  Session& session = *active.session;
  // Everything this task allocates — including lazy worker construction —
  // is charged to the owning session's budget, not to whichever session
  // the previous task on this thread belonged to.
  util::ScopedBudgetBinding binding(&session.budget());
  RunController* ctrl = session.controller();
  try {
    if (!session.run_sink()->ShouldStop()) {
      // Same fault point the standalone parallel driver guards its task
      // pickup with: the serve fault leg (scripts/check.sh) proves an
      // injected task failure is contained to this one session.
      if (PMBE_FAULT("worker.task")) {
        throw util::FaultError("injected fault: worker.task");
      }
      ActiveSession::WorkerState& slot = active.per_worker[worker_index];
      if (slot.worker == nullptr) {
        slot.worker = session.MakeWorker();
        slot.sink = std::make_unique<BufferedSink>(session.run_sink());
      }
      slot.worker->EnumerateSubtree(static_cast<VertexId>(task),
                                    slot.sink.get());
    }
  } catch (const std::exception& e) {
    // Containment: this session converts to Termination::kInternal (its
    // already-flushed results stay a valid prefix); every other session on
    // the pool is untouched.
    if (ctrl != nullptr) ctrl->ReportInternal(e.what());
  } catch (...) {
    if (ctrl != nullptr) ctrl->ReportInternal("unknown exception");
  }
  // Publish a newly tripped stop (cancel/deadline/budget/sink failure) so
  // the next claim sweeps the session's remaining tasks in one go.
  if (session.run_sink()->ShouldStop()) {
    active.stopped.store(true, std::memory_order_relaxed);
  }
}

void SessionPool::Retire(const std::shared_ptr<ActiveSession>& active,
                         size_t count) {
  if (active->remaining.fetch_sub(count, std::memory_order_acq_rel) !=
      count) {
    return;
  }
  // Last task retired: zero tasks are in flight, and the acq_rel handoff
  // above ordered every worker's slot writes before these reads.
  Session& session = *active->session;
  util::ScopedBudgetBinding binding(&session.budget());
  RunController* ctrl = session.controller();
  for (ActiveSession::WorkerState& slot : active->per_worker) {
    if (slot.sink == nullptr) continue;
    try {
      // Buffered bicliques are genuine maximal bicliques: flushing them on
      // cancelled/limited sessions preserves the valid-prefix guarantee.
      slot.sink->Flush();
    } catch (const std::exception& e) {
      if (ctrl != nullptr) ctrl->ReportInternal(e.what());
    } catch (...) {
      if (ctrl != nullptr) ctrl->ReportInternal("unknown exception");
    }
  }
  for (ActiveSession::WorkerState& slot : active->per_worker) {
    if (slot.worker != nullptr) {
      session.AddWorkerStats(slot.worker->stats());
    }
    // Destroy under the session's budget binding so arena releases pair
    // with their charges.
    slot.sink.reset();
    slot.worker.reset();
  }
  RunResult result;
  session.Finish(&result);
  if (active->done) active->done(result);
}

}  // namespace mbe::serve
