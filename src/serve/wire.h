#ifndef PMBE_SERVE_WIRE_H_
#define PMBE_SERVE_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/sink.h"
#include "util/common.h"
#include "util/status.h"

/// \file
/// The pmbe_serve wire protocol (docs/SERVICE.md): a length-prefixed
/// binary framing with a fixed little-endian payload encoding per message
/// type.
///
/// Frame layout:
/// ```
///   uint32  payload_length   (little-endian; <= kMaxPayloadBytes)
///   uint8   message_type     (MsgType)
///   uint8[] payload          (payload_length bytes)
/// ```
///
/// The codec is a pure byte-buffer transformation — no sockets, no
/// threads — so it can be driven directly by the fuzz harness
/// (tools/fuzz_wire.cc) and the round-trip tests. Decoding is total:
/// any byte string either yields a message or a typed
/// InvalidArgument/CorruptData status, never a crash; a decoded message
/// re-encodes to exactly the input frame (canonical encoding).
///
/// Conversation (client -> server unless noted):
///  * kHello / kHelloOk (server) — version gate, one per connection.
///  * kLoadGraph / kLoadOk (server) — build an Engine and register it
///    under a name. Load once; every session after that reuses it.
///  * kStartSession / kSessionStarted (server) — admit one enumeration
///    over a registered graph. Results stream back as kResultBatch
///    frames, closed by one kSessionDone. Multiple sessions may be in
///    flight on one connection; frames carry the session id.
///  * kCancelSession — stop one session; it still ends with kSessionDone
///    (termination = cancelled, results are the valid prefix).
///  * kRejected (server) — typed admission rejection (kTooManySessions,
///    kDraining, ...): the request was not started.
///  * kError (server) — protocol-level failure; the server closes the
///    connection after sending it.
///  * kPing / kPong (server) — heartbeat; the token echoes back so a
///    client can match responses under pipelining.
///  * kInfoRequest / kServerInfo (server) — live health counters
///    (active/queued sessions, reloads, heartbeats, idle disconnects).
///  * kReloadGraph / kLoadOk (server) — like kLoadGraph but with swap
///    semantics: replaces (or inserts) the named engine in a new epoch;
///    in-flight sessions finish on the engine they started with.
///
/// Version history: v1 = PR 6 (kHello..kError); v2 adds the heartbeat,
/// health, and reload messages plus SessionDoneMsg::digest and
/// LoadOkMsg::epoch.

namespace mbe::serve {

inline constexpr uint32_t kProtocolVersion = 2;

/// Hard bound on one frame's payload; DecodeMessage and PeekFrame reject
/// larger claims outright, so a corrupt length prefix cannot trigger a
/// giant allocation.
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;

/// uint32 length + uint8 type.
inline constexpr size_t kFrameHeaderBytes = 5;

/// Longest accepted graph-name string.
inline constexpr size_t kMaxNameBytes = 256;

enum class MsgType : uint8_t {
  kHello = 1,
  kHelloOk = 2,
  kLoadGraph = 3,
  kLoadOk = 4,
  kStartSession = 5,
  kSessionStarted = 6,
  kCancelSession = 7,
  kResultBatch = 8,
  kSessionDone = 9,
  kRejected = 10,
  kError = 11,
  kPing = 12,
  kPong = 13,
  kInfoRequest = 14,
  kServerInfo = 15,
  kReloadGraph = 16,
};

/// Why the server refused to start a session (RejectedMsg::reason).
enum class RejectReason : uint8_t {
  kTooManySessions = 1,  ///< active sessions and admission queue both full
  kDraining = 2,         ///< server is shutting down (SIGTERM drain)
  kUnknownGraph = 3,     ///< no engine registered under that name
  kBadOptions = 4,       ///< options failed validation against the engine
};

/// Stable display name ("too-many-sessions", "draining", ...).
const char* RejectReasonName(RejectReason reason);

struct HelloMsg {
  uint32_t version = kProtocolVersion;
};

struct HelloOkMsg {
  uint32_t version = kProtocolVersion;
  uint32_t max_payload = kMaxPayloadBytes;
  /// Worker threads of the server's shared session pool (diagnostic).
  uint32_t pool_threads = 0;
};

/// Uploads a bipartite graph and bakes it into a named Engine. Ids must
/// be < num_left / num_right; edges are parallel arrays.
struct LoadGraphMsg {
  std::string name;
  uint32_t num_left = 0;
  uint32_t num_right = 0;
  std::vector<VertexId> edge_left;
  std::vector<VertexId> edge_right;
  /// GraphOptions subset (api/options.h), in wire form.
  uint8_t order = 1;  ///< graph::VertexOrder numeric value (1 = kDegreeAsc)
  bool hub_first_left = true;
  bool auto_swap_sides = true;
  bool core_reduce = true;
  uint32_t min_left = 1;
  uint32_t min_right = 1;
  uint64_t seed = 1;
};

struct LoadOkMsg {
  std::string name;
  uint32_t num_left = 0;
  uint32_t num_right = 0;
  uint64_t num_edges = 0;
  /// Registry epoch of the engine slot this load produced. First-wins
  /// loads are epoch 1; every kReloadGraph swap increments it.
  uint64_t epoch = 0;
  double build_seconds = 0;
};

/// Starts one enumeration session over a registered graph. The session
/// runs on the server's shared pool; `threads` is not a knob — fairness
/// across sessions is the server's job.
struct StartSessionMsg {
  std::string graph;
  uint8_t algorithm = 0;  ///< mbe::Algorithm numeric value (0 = kMbet)
  uint32_t min_left = 1;
  uint32_t min_right = 1;
  uint64_t max_results = 0;
  uint64_t max_nodes_expanded = 0;
  double deadline_seconds = 0;
  uint64_t max_memory_bytes = 0;  ///< per-session budget (0 = unlimited)
  /// Bicliques per kResultBatch frame (server clamps to [1, 4096]).
  uint32_t batch_results = 128;
};

struct SessionStartedMsg {
  uint64_t session_id = 0;
};

struct CancelSessionMsg {
  uint64_t session_id = 0;
};

struct ResultBatchMsg {
  uint64_t session_id = 0;
  BicliqueBatch batch;
};

struct SessionDoneMsg {
  uint64_t session_id = 0;
  uint8_t termination = 0;  ///< mbe::Termination numeric value
  uint64_t results_emitted = 0;
  uint64_t maximal = 0;
  uint64_t nodes_expanded = 0;
  uint64_t peak_charged_bytes = 0;
  /// Time the session spent queued before its first task ran.
  uint64_t queue_wait_ns = 0;
  double seconds = 0;
  /// Commutative FingerprintSink digest of every result batch the server
  /// streamed for this session. A client that folds its received batches
  /// through the same sink must land on this value — the completeness
  /// check that makes retried streams safe to accept.
  uint64_t digest = 0;
  std::string message;
};

struct RejectedMsg {
  uint8_t reason = 0;  ///< RejectReason numeric value
  std::string detail;
};

struct ErrorMsg {
  std::string detail;
};

/// Heartbeat: the server echoes the token back in a kPong. Cheap enough
/// to interleave with streaming sessions; also resets the connection's
/// idle-timeout clock like any other frame.
struct PingMsg {
  uint64_t token = 0;
};

struct PongMsg {
  uint64_t token = 0;
};

/// Empty payload — the frame type alone is the request.
struct InfoRequestMsg {};

/// Live server health counters (pmbe_serve --stats renders these).
struct ServerInfoMsg {
  uint32_t pool_threads = 0;
  uint32_t active_sessions = 0;
  uint32_t queued_sessions = 0;
  uint32_t graphs = 0;
  uint64_t sessions_started = 0;
  uint64_t sessions_completed = 0;
  uint64_t reloads = 0;
  uint64_t heartbeats = 0;
  uint64_t idle_disconnects = 0;
  uint64_t connections_accepted = 0;
  uint8_t draining = 0;
};

/// Like kLoadGraph but with swap semantics: builds a new engine and
/// replaces (or inserts) the registry slot under `load.name`, bumping its
/// epoch. In-flight sessions keep their engine reference and finish on
/// the pre-swap graph. Replied to with kLoadOk carrying the new epoch.
struct ReloadGraphMsg {
  LoadGraphMsg load;
};

using Message =
    std::variant<HelloMsg, HelloOkMsg, LoadGraphMsg, LoadOkMsg,
                 StartSessionMsg, SessionStartedMsg, CancelSessionMsg,
                 ResultBatchMsg, SessionDoneMsg, RejectedMsg, ErrorMsg,
                 PingMsg, PongMsg, InfoRequestMsg, ServerInfoMsg,
                 ReloadGraphMsg>;

/// The frame type a message encodes as.
MsgType TypeOf(const Message& message);

/// Appends one complete frame (header + canonical payload) to `*out`.
/// Fails (leaving `*out` untouched) when the payload would exceed
/// kMaxPayloadBytes or a string field exceeds its bound.
util::Status EncodeMessage(const Message& message, std::vector<uint8_t>* out);

/// Stream framing: inspects the start of `buffer`. Sets `*complete` to
/// whether a whole frame is present and `*frame_size` to its total size
/// (header + payload; meaningful once the 5 header bytes are in). Returns
/// CorruptData when the header claims a payload past kMaxPayloadBytes —
/// the connection cannot be resynchronized and must be dropped.
util::Status PeekFrame(std::span<const uint8_t> buffer, size_t* frame_size,
                       bool* complete);

/// Decodes exactly one frame (header + payload, no trailing bytes).
/// Total: any input yields a message or a typed error. Valid frames
/// round-trip: EncodeMessage(DecodeMessage(f)) == f.
util::StatusOr<Message> DecodeMessage(std::span<const uint8_t> frame);

/// Incremental stream decoder: feed byte chunks exactly as a socket
/// delivers them (any split — 1 byte at a time, mid-header, mid-payload)
/// and pop complete messages. Decoding is split-invariant: the message
/// sequence is identical to whole-frame delivery. Corrupt framing or
/// payloads surface as the same typed statuses as DecodeMessage and
/// poison the assembler — a byte stream cannot be resynchronized after a
/// bad length prefix, so the connection must be dropped.
class FrameAssembler {
 public:
  /// Appends stream bytes.
  void Feed(std::span<const uint8_t> bytes);

  /// Pops the next complete message into `*out`. Returns true when one
  /// was produced, false when the buffer holds no complete frame yet, or
  /// a typed error on corrupt input (every later call repeats the error).
  util::StatusOr<bool> Next(Message* out);

  /// Bytes fed but not yet consumed by Next (partial frame in flight).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
  util::Status poison_ = util::Status::Ok();
};

}  // namespace mbe::serve

#endif  // PMBE_SERVE_WIRE_H_
