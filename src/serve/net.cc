#include "serve/net.h"

#include <sys/socket.h>

#include <cerrno>

#include "util/fault.h"

#if defined(PMBE_FAULT_INJECTION)
#include <chrono>
#include <thread>
#endif

namespace mbe::serve::net {

namespace {

#if defined(PMBE_FAULT_INJECTION)
void MaybeDelay() {
  if (PMBE_FAULT("net.delay")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

// Kills the connection for real — not just an error return — so the peer
// observes the failure too and retry paths face a genuinely dead socket.
int Reset(int fd) {
  ::shutdown(fd, SHUT_RDWR);
  errno = ECONNRESET;
  return -1;
}
#endif

}  // namespace

int Accept(int listen_fd) {
#if defined(PMBE_FAULT_INJECTION)
  if (PMBE_FAULT("net.accept")) {
    errno = ECONNABORTED;
    return -1;
  }
#endif
  return ::accept(listen_fd, nullptr, nullptr);
}

ssize_t Send(int fd, const void* buf, size_t len) {
#if defined(PMBE_FAULT_INJECTION)
  MaybeDelay();
  if (PMBE_FAULT("net.reset")) return Reset(fd);
  if (len > 1 && PMBE_FAULT("net.write_truncate")) {
    // Deliver a real prefix so the peer receives a torn frame, then kill
    // the connection mid-write.
    const size_t prefix = len / 2;
    const ssize_t n = ::send(fd, buf, prefix, MSG_NOSIGNAL);
    ::shutdown(fd, SHUT_RDWR);
    if (n <= 0) {
      errno = ECONNRESET;
      return -1;
    }
    return n;
  }
#endif
  return ::send(fd, buf, len, MSG_NOSIGNAL);
}

ssize_t Recv(int fd, void* buf, size_t len) {
#if defined(PMBE_FAULT_INJECTION)
  MaybeDelay();
  if (PMBE_FAULT("net.reset")) return Reset(fd);
  if (PMBE_FAULT("net.read_stall")) {
    // The surface of an expired SO_RCVTIMEO, compressed: nap briefly so
    // stalls interleave with real traffic, then time the call out.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    errno = EAGAIN;
    return -1;
  }
#endif
  return ::recv(fd, buf, len, 0);
}

}  // namespace mbe::serve::net
