#ifndef PMBE_SERVE_SERVER_H_
#define PMBE_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission.h"
#include "serve/registry.h"
#include "serve/session_pool.h"
#include "serve/wire.h"

/// \file
/// `serve::Server` — the pmbe_serve daemon core (docs/SERVICE.md).
///
/// Listens on a Unix-domain socket or a loopback TCP port, speaks the
/// serve/wire.h protocol, and multiplexes any number of client connections
/// onto one `GraphRegistry` (graphs load once, every session shares the
/// immutable engine) and one `SessionPool` (a fixed worker fleet executing
/// all sessions' subtree tasks round-robin). `AdmissionController` bounds
/// concurrency: past `max_active_sessions` running + `max_queued_sessions`
/// waiting, new sessions get a typed kRejected frame instead of latency.
///
/// Per-connection: one reader thread; session starts wait for admission on
/// short-lived helper threads (reaped as they finish) so the reader keeps
/// servicing kCancelSession frames while a start is queued. Results stream
/// back as kResultBatch frames through a bounded outbound queue drained by
/// one dedicated writer thread per connection (frames from concurrent
/// sessions interleave, each frame is atomic). Pool workers never touch
/// the socket: a slow-reading client backs up only its own queue, and
/// overflowing it (or a send timeout) fails just that connection.
///
/// Shutdown is a drain (SIGTERM handling lives in tools/pmbe_serve.cc):
/// `BeginDrain` rejects new sessions with kDraining while running ones
/// finish; once `idle()`, `Stop` closes the listener and every connection
/// and joins all threads.

namespace mbe::serve {

namespace internal {
struct SessionRec;  // server.cc: one in-flight session of a connection
}  // namespace internal

struct ServerOptions {
  /// Non-empty: listen on this Unix-domain socket path (unlinked first).
  std::string unix_path;
  /// Unix path empty: listen on 127.0.0.1:tcp_port (0 = ephemeral; read
  /// the bound port back with tcp_port()).
  uint16_t tcp_port = 0;

  /// Session-pool worker threads (0 = hardware concurrency).
  unsigned pool_threads = 0;

  /// Admission bounds: sessions running / waiting before kRejected.
  size_t max_active_sessions = 8;
  size_t max_queued_sessions = 64;

  /// Cap on bytes queued toward one connection's writer thread. A client
  /// that stops reading (TCP backpressure) fills its queue and is then
  /// dropped — its sessions cancel — instead of blocking pool workers.
  size_t max_outbound_bytes = 64u << 20;
  /// SO_SNDTIMEO on client sockets: a single blocked send() past this is
  /// treated as connection failure. 0 disables the timeout.
  unsigned write_timeout_seconds = 30;
  /// Drop a connection that has no in-flight sessions and sends nothing
  /// for this long (counted in kServerInfo::idle_disconnects). 0 disables
  /// the timeout. Fractional values work (tests use sub-second ones).
  double idle_timeout_seconds = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);

  /// Stop()s.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop and the session pool.
  util::Status Start();

  /// The bound TCP port (after Start, TCP mode only).
  uint16_t tcp_port() const { return bound_tcp_port_; }

  /// The graph store; use it to preload graphs before Start.
  GraphRegistry& registry() { return registry_; }

  unsigned pool_threads() const { return pool_threads_; }

  /// Starts rejecting new sessions (kDraining) while running and queued
  /// ones finish. Connections stay open.
  void BeginDrain();

  /// Live health counters — the kServerInfo payload, also used by
  /// pmbe_serve --stats. Safe from any thread.
  ServerInfoMsg Info() const;

  /// True when no session is running or queued.
  bool idle() const;

  /// Full shutdown: BeginDrain, close the listener and every connection,
  /// join all threads, drain the pool. Idempotent.
  void Stop();

 private:
  struct Connection;

  void AcceptLoop();
  void ConnectionLoop(std::shared_ptr<Connection> conn);
  /// Dispatches one decoded frame; returns false to close the connection.
  bool HandleMessage(const std::shared_ptr<Connection>& conn,
                     Message message);
  void StartSession(const std::shared_ptr<Connection>& conn,
                    StartSessionMsg msg);
  /// Starter-thread body: waits out admission, prepares the session, and
  /// submits it to the pool (or writes the typed rejection).
  void RunStarter(const std::shared_ptr<Connection>& conn,
                  const std::shared_ptr<internal::SessionRec>& rec,
                  uint64_t session_id);
  /// `swap` false: first-wins kLoadGraph. `swap` true: kReloadGraph —
  /// replaces (or inserts) the engine slot in a new epoch.
  void HandleLoadGraph(const std::shared_ptr<Connection>& conn,
                       LoadGraphMsg msg, bool swap);

  const ServerOptions options_;
  unsigned pool_threads_;

  GraphRegistry registry_;
  AdmissionController admission_;
  std::unique_ptr<SessionPool> pool_;

  int listen_fd_ = -1;
  uint16_t bound_tcp_port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex connections_mu_;
  std::vector<std::shared_ptr<Connection>> connections_;

  std::atomic<uint64_t> next_session_id_{1};

  // kServerInfo counters (the rest of the payload is read live from the
  // admission controller and the registry).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> heartbeats_{0};
  std::atomic<uint64_t> idle_disconnects_{0};
  std::atomic<uint64_t> sessions_started_{0};
  std::atomic<uint64_t> sessions_completed_{0};
};

}  // namespace mbe::serve

#endif  // PMBE_SERVE_SERVER_H_
