#ifndef PMBE_SERVE_ADMISSION_H_
#define PMBE_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "serve/wire.h"

/// \file
/// `serve::AdmissionController` — bounds how many sessions run at once.
///
/// Up to `max_active` sessions hold a slot; up to `max_queued` more wait in
/// strict FIFO order (ticket-numbered, so a released slot always goes to
/// the longest waiter, never to a lucky newcomer). Anything beyond that is
/// rejected immediately with a typed reason — the caller turns it into a
/// kRejected wire frame instead of letting latency pile up invisibly.
/// `StartDraining` flips the controller into shutdown mode: every queued
/// waiter wakes with kDraining and new arrivals are rejected, while already
/// admitted sessions keep their slots until they Release.

namespace mbe::serve {

class AdmissionController {
 public:
  AdmissionController(size_t max_active, size_t max_queued)
      : max_active_(max_active), max_queued_(max_queued) {}

  /// Outcome of one admission attempt.
  struct Ticket {
    bool admitted = false;
    /// Meaningful when !admitted.
    RejectReason reason = RejectReason::kTooManySessions;
    /// Time spent queued before the slot was granted (0 on immediate
    /// admission and on rejection).
    uint64_t queue_wait_ns = 0;
  };

  /// Acquires a slot, blocking in the FIFO queue when all slots are taken.
  /// Returns a rejection without blocking when the queue is full or the
  /// controller is draining.
  Ticket Acquire();

  /// Returns a previously acquired slot and hands it to the head waiter.
  void Release();

  /// Rejects all queued and future Acquire calls with kDraining. Active
  /// sessions are unaffected.
  void StartDraining();

  bool draining() const;
  size_t active() const;
  size_t queued() const;

 private:
  const size_t max_active_;
  const size_t max_queued_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t active_ = 0;
  size_t queued_ = 0;
  /// FIFO tickets: a waiter is admitted only when it holds the serving
  /// ticket *and* a slot is free.
  uint64_t next_ticket_ = 0;
  uint64_t serving_ = 0;
  bool draining_ = false;
};

}  // namespace mbe::serve

#endif  // PMBE_SERVE_ADMISSION_H_
