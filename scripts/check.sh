#!/usr/bin/env bash
# check.sh — the CI gate: sanitizer build, full test suite, differential
# fuzz smoke, and a live run-control proof.
#
# Configures a Debug build with AddressSanitizer + UndefinedBehaviorSanitizer,
# builds everything, runs ctest, runs a pmbe_selfcheck smoke (which includes
# a budget-truncation check every round), and drives the CLI against a
# worst-case dataset with --timeout_s 1 to prove that cooperative
# cancellation terminates promptly and cleanly under the sanitizers. Then
# the configuration matrices: the set-representation legs
# (PMBE_FORCE_BITMAP on/off), the kernel-dispatch legs (scalar pin via
# PMBE_FORCE_SCALAR=1, AVX2 compiled out via -DPMBE_ENABLE_AVX2=OFF), and
# the engine legs (mbet/imbea/bbk), all required to enumerate identical
# bicliques; the fault-injection matrix
# (-DPMBE_FAULT_INJECTION=ON + ASan: countdown sweep over every fault
# point, chaos rounds, CLI/env arming, graph_io/frontier/wire fuzz
# smokes); the serve leg (daemon + concurrent digest-verified sessions,
# injected worker/sink faults, SIGTERM drain) and the serve-chaos leg
# (network fault injection absorbed by the fault-tolerant client, plus a
# mid-traffic hot graph reload); a memory-budget proof; the
# durable-frontier leg (fault- and SIGKILL-interrupted checkpointing runs
# resumed, plus a 4-process shard merge, all digest-identical to
# uninterrupted runs); and the TSan leg.
#
#   scripts/check.sh [build-dir]        # default build dir: build-asan

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"

echo "=== bench baseline hygiene: no debug-build BENCH_*.json committed ==="
# Every harness refuses --json from a non-release build (bench/harness.cc
# JsonRecordingAllowed) unless --allow_debug is passed; this backstop
# catches an --allow_debug artifact that was committed anyway.
if grep -l '"library_build_type": "debug"' bench/BENCH_*.json 2>/dev/null; then
  echo "FAIL: committed bench baseline(s) above were recorded from a debug" \
       "build; re-record with a -DCMAKE_BUILD_TYPE=Release binary" >&2
  exit 1
fi
echo "bench baselines OK"

echo "=== configure ($BUILD_DIR: Debug + ASan/UBSan) ==="
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"

echo "=== build ==="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "=== ctest ==="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "=== selfcheck smoke (differential fuzz + budget truncation) ==="
"$BUILD_DIR/tools/pmbe_selfcheck" --rounds 25 --seed 1

echo "=== run-control proof: 1s deadline on a worst-case graph ==="
# GH is a planted-block stand-in whose full enumeration takes far longer
# than a second even unsanitized; the run must stop on the deadline,
# report it, and exit 0 with the valid prefix counted.
for threads in 1 4; do
  start_ms=$(date +%s%3N)
  out=$("$BUILD_DIR/tools/pmbe" --dataset GH --timeout_s 1 \
        --threads "$threads" --stats=false)
  elapsed_ms=$(( $(date +%s%3N) - start_ms ))
  echo "$out" | sed "s/^/  [threads=$threads] /"
  echo "$out" | grep -q "stopped early: deadline" || {
    echo "FAIL: deadline termination not reported (threads=$threads)" >&2
    exit 1
  }
  # Generous sanitizer headroom; the unsanitized bound is ~1.2s.
  if (( elapsed_ms > 3000 )); then
    echo "FAIL: deadline overshoot: ${elapsed_ms}ms (threads=$threads)" >&2
    exit 1
  fi
  echo "  [threads=$threads] stopped in ${elapsed_ms}ms"
done

echo "=== set-representation matrix: PMBE_FORCE_BITMAP=ON / OFF ==="
# Build the suite with the bitmap representation force-enabled and with the
# adaptive default, run the full test suite both ways, and require the
# differential fuzzer to cross-check the exact same number of bicliques in
# both legs: the set representation must never change the enumerated set.
declare -A matrix_count
for force in ON OFF; do
  dir="$BUILD_DIR-bitmap-$(echo "$force" | tr '[:upper:]' '[:lower:]')"
  echo "--- leg PMBE_FORCE_BITMAP=$force ($dir) ---"
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DPMBE_FORCE_BITMAP="$force"
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
  leg_out=$("$dir/tools/pmbe_selfcheck" --rounds 25 --seed 7)
  echo "$leg_out" | sed 's/^/  /'
  matrix_count[$force]=$(echo "$leg_out" | grep -o '[0-9]* bicliques' | grep -o '[0-9]*')
done
if [[ "${matrix_count[ON]}" != "${matrix_count[OFF]}" ]]; then
  echo "FAIL: selfcheck biclique counts diverge between bitmap legs:" \
       "ON=${matrix_count[ON]} OFF=${matrix_count[OFF]}" >&2
  exit 1
fi
echo "bitmap matrix OK: ${matrix_count[ON]} bicliques in both legs"

echo "=== kernel-dispatch matrix: scalar pin + AVX2 compiled out ==="
# The vectorized kernel layer (util/simd.h) must be behaviorally invisible:
# the same bicliques whether kernels dispatch to the widest ISA, are pinned
# to the scalar table via the environment, or have the AVX2 TU compiled out
# entirely. Leg 1 re-runs the kernel-heavy suites of the sanitizer build
# with the scalar pin (the SIMD differential fuzzer already ran under
# ASan/UBSan in the ctest pass above, on the widest table the host has).
echo "--- leg PMBE_FORCE_SCALAR=1 ($BUILD_DIR) ---"
PMBE_FORCE_SCALAR=1 ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -j "$(nproc)" -R 'Simd|SetOps|MembershipMask|NeighborhoodTrie|VertexSet'
scalar_out=$(PMBE_FORCE_SCALAR=1 "$BUILD_DIR/tools/pmbe_selfcheck" \
             --rounds 25 --seed 7)
echo "$scalar_out" | sed 's/^/  /'
echo "$scalar_out" | grep -q 'kernel dispatch: scalar' || {
  echo "FAIL: PMBE_FORCE_SCALAR=1 leg did not run on the scalar table" >&2
  exit 1
}
scalar_count=$(echo "$scalar_out" | grep -o '[0-9]* bicliques' | grep -o '[0-9]*')

echo "--- leg -DPMBE_ENABLE_AVX2=OFF ($BUILD_DIR-noavx2) ---"
NOAVX2_DIR="$BUILD_DIR-noavx2"
cmake -B "$NOAVX2_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DPMBE_ENABLE_AVX2=OFF
cmake --build "$NOAVX2_DIR" -j "$(nproc)"
ctest --test-dir "$NOAVX2_DIR" --output-on-failure -j "$(nproc)"
noavx2_out=$("$NOAVX2_DIR/tools/pmbe_selfcheck" --rounds 25 --seed 7)
echo "$noavx2_out" | sed 's/^/  /'
noavx2_count=$(echo "$noavx2_out" | grep -o '[0-9]* bicliques' | grep -o '[0-9]*')

# Same --rounds/--seed as the bitmap legs above, so all four leg counts
# must agree exactly.
if [[ "$scalar_count" != "${matrix_count[OFF]}" || \
      "$noavx2_count" != "${matrix_count[OFF]}" ]]; then
  echo "FAIL: selfcheck biclique counts diverge across dispatch legs:" \
       "scalar=$scalar_count noavx2=$noavx2_count" \
       "default=${matrix_count[OFF]}" >&2
  exit 1
fi
echo "kernel-dispatch matrix OK: $scalar_count bicliques in every leg"

echo "=== batch-frontier matrix: widths 1/16/64 + --tune, every leg count-identical ==="
# The batched classification frontier (docs/TUNING.md) must be
# behaviorally invisible: the same bicliques whether candidates are
# classified one at a time (--batch_width 1), in the widest windows
# (--batch_width 64), or with the workload-adaptive tuner choosing the
# knobs (--tune) — under the sanitizers, on the scalar-pinned table, and
# in the AVX2-compiled-out build. Reuses the builds from the legs above.
batch_ref=""
for cfg in "--batch_width 1" "--batch_width 16" "--batch_width 64" "--tune"; do
  for leg in asan scalar noavx2; do
    case "$leg" in
      asan)   out=$("$BUILD_DIR/tools/pmbe" --dataset DBT --scale 0.2 \
                    --stats=false $cfg) ;;
      scalar) out=$(PMBE_FORCE_SCALAR=1 "$BUILD_DIR/tools/pmbe" --dataset DBT \
                    --scale 0.2 --stats=false $cfg) ;;
      noavx2) out=$("$NOAVX2_DIR/tools/pmbe" --dataset DBT --scale 0.2 \
                    --stats=false $cfg) ;;
    esac
    count=$(echo "$out" | grep -o '[0-9]* maximal bicliques' | grep -o '[0-9]*')
    [[ -n "$count" ]] || {
      echo "FAIL: no biclique count from leg $leg ($cfg)" >&2
      exit 1
    }
    if [[ -z "$batch_ref" ]]; then
      batch_ref="$count"
    elif [[ "$count" != "$batch_ref" ]]; then
      echo "FAIL: batch matrix diverges: leg $leg ($cfg) found $count" \
           "bicliques, reference found $batch_ref" >&2
      exit 1
    fi
    echo "  [$leg, $cfg] $count bicliques"
  done
done
echo "batch matrix OK: $batch_ref bicliques in every leg"

echo "=== engine matrix: mbet / imbea / bbk count-identical on every leg ==="
# The interchangeable engines (docs/ALGORITHM.md) must enumerate the same
# set whatever the build: sanitized adaptive dispatch, the scalar-pinned
# table, and the AVX2-compiled-out build. BBK's fixed candidate order and
# witness-ordered Q scans change the traversal, never the output.
engine_ref=""
for algo in mbet imbea bbk; do
  for leg in asan scalar noavx2; do
    case "$leg" in
      asan)   out=$("$BUILD_DIR/tools/pmbe" --dataset DBT --scale 0.2 \
                    --algorithm "$algo" --stats=false) ;;
      scalar) out=$(PMBE_FORCE_SCALAR=1 "$BUILD_DIR/tools/pmbe" --dataset DBT \
                    --scale 0.2 --algorithm "$algo" --stats=false) ;;
      noavx2) out=$("$NOAVX2_DIR/tools/pmbe" --dataset DBT --scale 0.2 \
                    --algorithm "$algo" --stats=false) ;;
    esac
    count=$(echo "$out" | grep -o '[0-9]* maximal bicliques' | grep -o '[0-9]*')
    [[ -n "$count" ]] || {
      echo "FAIL: no biclique count from engine leg $leg ($algo)" >&2
      exit 1
    }
    if [[ -z "$engine_ref" ]]; then
      engine_ref="$count"
    elif [[ "$count" != "$engine_ref" ]]; then
      echo "FAIL: engine matrix diverges: leg $leg ($algo) found $count" \
           "bicliques, reference found $engine_ref" >&2
      exit 1
    fi
    echo "  [$leg, $algo] $count bicliques"
  done
done
echo "engine matrix OK: $engine_ref bicliques in every leg"

echo "=== fault-injection matrix: -DPMBE_FAULT_INJECTION=ON + ASan ==="
# Compile the named fault points in (util/fault.h) and prove, under ASan,
# that every injected failure ends in a typed termination with a valid
# result prefix — never a crash or a leak. The countdown sweep
# (pmbe_selfcheck --fault_sweep) fires every registered point at depths
# 1..N; the chaos rounds layer probabilistic faults, memory caps, and
# watchdogs over the differential graphs; the CLI legs prove the
# programmatic (--fault) and environment (PMBE_FAULT_INJECT) arming paths.
FAULT_DIR="$BUILD_DIR-fault"
cmake -B "$FAULT_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPMBE_FAULT_INJECTION=ON \
  -DPMBE_BUILD_FUZZERS=ON \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
cmake --build "$FAULT_DIR" -j "$(nproc)"
ctest --test-dir "$FAULT_DIR" --output-on-failure -j "$(nproc)" \
  -R 'Fault|MemoryBudget|MemoryLimit|Containment|Watchdog|ControlTimesBudget|GraphIo'
"$FAULT_DIR/tools/pmbe_selfcheck" --fault_sweep
"$FAULT_DIR/tools/pmbe_selfcheck" --rounds 10 --seed 3 --chaos
fault_out=$("$FAULT_DIR/tools/pmbe" --dataset GH --fault 'arena.grow:1' \
            --max_memory_mb 64 --stats=false)
echo "$fault_out" | sed 's/^/  [--fault] /'
echo "$fault_out" | grep -q "stopped early: memory-limit" || {
  echo "FAIL: --fault arena.grow:1 did not stop with memory-limit" >&2
  exit 1
}
env_out=$(PMBE_FAULT_INJECT='worker.task:1' "$FAULT_DIR/tools/pmbe" \
          --dataset GH --threads 4 --watchdog_s 10 --stats=false)
echo "$env_out" | sed 's/^/  [env] /'
echo "$env_out" | grep -q "stopped early: internal" || {
  echo "FAIL: PMBE_FAULT_INJECT worker.task:1 did not stop with internal" >&2
  exit 1
}
echo "fault matrix OK"

echo "=== durable-frontier leg: fault + SIGKILL interrupts, resume, shard merge ==="
# The restart-correctness contract of docs/CHECKPOINT.md, proven live
# under ASan: the frontier digest of an interrupted-then-resumed run — or
# of four merged per-process shards — is bit-identical to the digest of an
# uninterrupted single-process checkpointed run of the same graph and
# algorithm, for every parallel algorithm family at 1 and 8 threads.
CKPT_DIR=$(mktemp -d /tmp/pmbe_ckpt_XXXXXX)
digest_of() { grep -o 'frontier digest: 0x[0-9a-f]*' | head -1 | awk '{print $3}'; }
declare -A durable_ref
for algo in mbet mbea imbea bbk; do
  for threads in 1 8; do
    tag="$algo t=$threads"
    # Fresh durable runs refuse to overwrite an existing snapshot, so
    # clear the previous iteration's file first.
    rm -f "$CKPT_DIR/ref.snap"
    ref=$("$FAULT_DIR/tools/pmbe" --dataset DBT --scale 0.1 \
          --algorithm "$algo" --threads "$threads" \
          --checkpoint_path "$CKPT_DIR/ref.snap" --stats=false | digest_of)
    [[ -n "$ref" ]] || { echo "FAIL: [$tag] no reference digest" >&2; exit 1; }
    echo "  [$tag] reference digest $ref"
    # The digest is scheduling-independent, so both thread counts of an
    # algorithm must already agree before any interruption happens.
    if [[ -n "${durable_ref[$algo]:-}" && "${durable_ref[$algo]}" != "$ref" ]]; then
      echo "FAIL: [$tag] digest differs across thread counts" >&2
      exit 1
    fi
    durable_ref[$algo]="$ref"

    # Round 1: an injected worker failure interrupts the run mid-frontier;
    # the final crash snapshot must resume to the reference digest.
    rm -f "$CKPT_DIR/fault.snap"
    fault_out=$(PMBE_FAULT_INJECT='worker.task:5' "$FAULT_DIR/tools/pmbe" \
                --dataset DBT --scale 0.1 --algorithm "$algo" \
                --threads "$threads" --checkpoint_path "$CKPT_DIR/fault.snap" \
                --stats=false)
    echo "$fault_out" | grep -q "stopped early: internal" || {
      echo "FAIL: [$tag] worker.task fault did not interrupt the run" >&2
      exit 1
    }
    echo "$fault_out" | grep -q " 0 pending)" && {
      echo "FAIL: [$tag] fault-interrupted snapshot has no pending tasks" >&2
      exit 1
    }
    resumed=$("$FAULT_DIR/tools/pmbe" --dataset DBT --scale 0.1 \
              --algorithm "$algo" --threads "$threads" \
              --checkpoint_path "$CKPT_DIR/fault.snap" --resume \
              --stats=false | digest_of)
    [[ "$resumed" == "$ref" ]] || {
      echo "FAIL: [$tag] fault-resume digest $resumed != reference $ref" >&2
      exit 1
    }
    echo "  [$tag] fault interrupt + resume OK"

    # Round 2: SIGKILL — no cleanup path at all. The sanitizer build takes
    # seconds on this graph while snapshots land every 0.1s, so killing as
    # soon as the first snapshot appears lands mid-enumeration (tmp+rename
    # keeps the file complete no matter when the kill hits); the crash
    # file must resume to the reference digest.
    rm -f "$CKPT_DIR/kill.snap"
    "$FAULT_DIR/tools/pmbe" \
      --dataset DBT --scale 0.1 --algorithm "$algo" --threads "$threads" \
      --checkpoint_path "$CKPT_DIR/kill.snap" --checkpoint_every_s 0.1 \
      --stats=false >/dev/null 2>&1 &
    KILL_PID=$!
    for _ in $(seq 150); do
      [[ -s "$CKPT_DIR/kill.snap" ]] && break
      sleep 0.1
    done
    kill -9 "$KILL_PID" 2>/dev/null && killed=yes || killed="no (run finished first)"
    wait "$KILL_PID" 2>/dev/null || true
    [[ -s "$CKPT_DIR/kill.snap" ]] || {
      echo "FAIL: [$tag] no snapshot on disk before the kill" >&2
      exit 1
    }
    resumed=$("$FAULT_DIR/tools/pmbe" --dataset DBT --scale 0.1 \
              --algorithm "$algo" --threads "$threads" \
              --checkpoint_path "$CKPT_DIR/kill.snap" --resume \
              --stats=false | digest_of)
    [[ "$resumed" == "$ref" ]] || {
      echo "FAIL: [$tag] SIGKILL-resume digest $resumed != reference $ref" >&2
      exit 1
    }
    echo "  [$tag] SIGKILL + resume OK (killed: $killed)"
  done

  # Round 3: four hash-sharded processes, each enumerating a quarter of
  # the seed space into its own snapshot; the offline merge must
  # reproduce the single-process digest exactly.
  for i in 0 1 2 3; do
    rm -f "$CKPT_DIR/shard$i.snap"
    "$FAULT_DIR/tools/pmbe" --dataset DBT --scale 0.1 --algorithm "$algo" \
      --threads 8 --process_shard "$i/4" \
      --checkpoint_path "$CKPT_DIR/shard$i.snap" --stats=false >/dev/null
  done
  merged=$("$FAULT_DIR/tools/pmbe" --merge_checkpoints \
           "$CKPT_DIR/shard0.snap,$CKPT_DIR/shard1.snap,$CKPT_DIR/shard2.snap,$CKPT_DIR/shard3.snap" \
           | digest_of)
  [[ "$merged" == "${durable_ref[$algo]}" ]] || {
    echo "FAIL: [$algo] 4-shard merged digest $merged != reference" \
         "${durable_ref[$algo]}" >&2
    exit 1
  }
  echo "  [$algo] 4-process shard merge OK ($merged)"
done
rm -rf "$CKPT_DIR"
echo "durable-frontier leg OK"

echo "=== serve leg: daemon + concurrent sessions under ASan + faults ==="
# The serving stack (docs/SERVICE.md) under the sanitizer/fault build:
# pmbe_serve on a Unix socket, pmbe_load running a mixed concurrent
# workload with per-session digest verification against a local reference
# run. Three rounds: clean; one injected worker-task failure; one injected
# sink-flush failure. The fault rounds must interrupt exactly one session
# (Termination::kInternal) while every neighbor completes bit-identically
# — per-session containment on shared pool workers. Finally SIGTERM
# mid-workload must drain: in-flight sessions finish, the daemon reports
# the drain and exits 0.
SERVE_SOCK="/tmp/pmbe_check_$$.sock"
SERVE_LOG="/tmp/pmbe_check_serve_$$.log"
start_daemon() {  # start_daemon [ENV=VAL ...]
  env "$@" "$FAULT_DIR/tools/pmbe_serve" --unix="$SERVE_SOCK" \
    --max-active=8 >"$SERVE_LOG" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 100); do
    [[ -S "$SERVE_SOCK" ]] && grep -q "listening" "$SERVE_LOG" && return 0
    sleep 0.1
  done
  echo "FAIL: pmbe_serve did not come up" >&2
  cat "$SERVE_LOG" >&2
  exit 1
}
stop_daemon() {
  kill -TERM "$SERVE_PID" 2>/dev/null || true
  wait "$SERVE_PID"
}
for fault in none worker.task sink.flush; do
  if [[ "$fault" == none ]]; then
    echo "--- serve round: clean ---"
    start_daemon
  else
    echo "--- serve round: PMBE_FAULT_INJECT=$fault:1 ---"
    start_daemon PMBE_FAULT_INJECT="$fault:1"
  fi
  load_out=$("$FAULT_DIR/tools/pmbe_load" --unix="$SERVE_SOCK" \
             --graph=Mti --scale=0.3 --sessions=16 --concurrent=8)
  echo "$load_out" | sed 's/^/  /'
  echo "$load_out" | grep -q " 0 digest mismatches" || {
    echo "FAIL: serve round '$fault' corrupted a session" >&2
    exit 1
  }
  if [[ "$fault" == none ]]; then
    echo "$load_out" | grep -q "16 complete, 0 interrupted" || {
      echo "FAIL: clean serve round did not complete every session" >&2
      exit 1
    }
  else
    # The injected failure hits exactly one session; 15 neighbors finish.
    echo "$load_out" | grep -q "15 complete, 1 interrupted" || {
      echo "FAIL: fault '$fault' was not contained to one session" >&2
      exit 1
    }
  fi
  stop_daemon
done
echo "--- serve round: SIGTERM drain mid-workload ---"
start_daemon
"$FAULT_DIR/tools/pmbe_load" --unix="$SERVE_SOCK" --graph=Mti --scale=0.3 \
  --sessions=16 --concurrent=8 >/tmp/pmbe_check_drain_$$.log 2>&1 &
LOAD_PID=$!
sleep 1
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || {
  echo "FAIL: daemon exited nonzero on SIGTERM" >&2
  exit 1
}
wait "$LOAD_PID" || true  # late sessions may be rejected (draining); no corruption allowed
grep -q " 0 digest mismatches" /tmp/pmbe_check_drain_$$.log || {
  echo "FAIL: drain corrupted an in-flight session" >&2
  cat /tmp/pmbe_check_drain_$$.log >&2
  exit 1
}
grep -q "pmbe_serve draining" "$SERVE_LOG" && grep -q "pmbe_serve stopped" "$SERVE_LOG" || {
  echo "FAIL: daemon did not report a clean drain" >&2
  cat "$SERVE_LOG" >&2
  exit 1
}
rm -f "$SERVE_SOCK" "$SERVE_LOG" /tmp/pmbe_check_drain_$$.log
echo "serve leg OK"

echo "=== serve-chaos leg: network faults vs the fault-tolerant client ==="
# The resilience contract (docs/SERVICE.md, client library): with the
# daemon's socket layer sabotaged — connection resets, torn frames, read
# stalls, dropped accepts, delays (the serve/net.h fault points) — a
# pmbe_load workload driven through mbe::client::Client must still
# deliver every session exactly once, digest-identical to the fault-free
# local reference. Three rounds: deterministic countdowns (one of each
# fault at a fixed op index), a probabilistic storm (every net point at
# p=0.005, seeded), and a mid-traffic kReloadGraph swap riding a one-shot
# reset. Every round must end 16 complete / 0 interrupted / 0 rejected /
# 0 digest mismatches: faults absorbed by retry + reconnect + verified
# re-issue, never surfaced to the workload.
chaos_round() {  # chaos_round <tag> <fault-spec> [extra pmbe_load flags...]
  local tag="$1" spec="$2"; shift 2
  echo "--- chaos round: $tag ---"
  start_daemon PMBE_FAULT_INJECT="$spec"
  load_out=$("$FAULT_DIR/tools/pmbe_load" --unix="$SERVE_SOCK" \
             --graph=Mti --scale=0.3 --sessions=16 --concurrent=8 \
             --reload-upload "$@")
  echo "$load_out" | sed 's/^/  /'
  echo "$load_out" | \
    grep -q "16 complete, 0 interrupted, 0 rejected, 0 digest mismatches" || {
    echo "FAIL: chaos round '$tag' lost or corrupted a session" >&2
    exit 1
  }
  stop_daemon
}
chaos_round "countdown one-of-each" \
  "net.reset:40;net.write_truncate:25;net.read_stall:10;net.accept:1" \
  --retries=8
# The countdown offsets land mid-workload by construction, so a clean
# summary without any client-side retry would mean the faults never hit
# the wire path at all — require the absorption to be visible.
echo "$load_out" | grep -Eq "client: [0-9]+ attempts, [1-9][0-9]* retries" || {
  echo "FAIL: countdown chaos round absorbed no faults (leg is inert)" >&2
  exit 1
}
chaos_round "probabilistic storm" "net.*:p=0.005:seed=9" --retries=12
chaos_round "mid-traffic reload + reset" "net.reset:60" --retries=8 \
  --reload-after=4
echo "$load_out" | grep -q "reloaded 'Mti' mid-traffic (epoch 2)" || {
  echo "FAIL: kReloadGraph did not swap the live graph mid-traffic" >&2
  exit 1
}
rm -f "$SERVE_SOCK" "$SERVE_LOG"
echo "serve-chaos leg OK"

echo "=== memory-budget proof: capped run on a worst-case graph ==="
# DBT at 8 threads charges ~17 MB peak (per-worker sink buffers + split
# subtree states), so a 1 MiB cap must terminate the run (memory-limit)
# even after degradation sheds what it can; the fault_test suite pins the
# complementary properties (peak <= cap, no-cap digest identity).
cap_out=$("$BUILD_DIR/tools/pmbe" --dataset DBT --threads 8 \
          --max_memory_mb 1 --timeout_s 30 --stats=false)
echo "$cap_out" | sed 's/^/  [capped] /'
echo "$cap_out" | grep -q "stopped early: memory-limit" || {
  echo "FAIL: --max_memory_mb 1 did not stop with memory-limit" >&2
  exit 1
}
echo "memory-budget proof OK"

echo "=== graph_io fuzz smoke (bad-input corpus + mutation loop) ==="
"$FAULT_DIR/tools/fuzz_graph_io" -runs=20000 tests/data/bad/*.txt

echo "=== frontier-snapshot fuzz smoke (codec canonicity + typed errors) ==="
"$FAULT_DIR/tools/fuzz_frontier" -runs=20000

echo "=== wire-protocol fuzz smoke (total decoding + canonical encoding) ==="
"$FAULT_DIR/tools/fuzz_wire" -runs=20000

echo "=== ThreadSanitizer leg: work-stealing deque + parallel driver ==="
# The Chase–Lev deque keeps all shared state in std::atomic precisely so
# TSan can verify the protocol. Build the concurrency-relevant tests with
# -fsanitize=thread (mutually exclusive with ASan, hence a separate tree)
# and run the deque stress tests plus the parallel, run-control, and sink
# suites under it.
TSAN_DIR="$BUILD_DIR-tsan"
TSAN_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"
cmake -B "$TSAN_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="$TSAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$TSAN_FLAGS"
cmake --build "$TSAN_DIR" -j "$(nproc)" --target \
  work_stealing_test parallel_test run_control_test sink_test
ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$(nproc)" \
  -R 'TaskDeque|TaskEncoding|WorkStealing|Scheduling|Stealing|ThreadPool|ParallelEnumerate|RunControl|RunController|ControlledSink|BufferedSink|BudgetSink|CountSink|FingerprintSink'
echo "tsan leg OK"

echo "=== all checks passed ==="
