#!/usr/bin/env python3
"""Render an experiment CSV (produced with `bench_* --csv out.csv`) as an
ASCII bar chart, one group of bars per dataset row.

Time cells ("12.3ms", "4.56s", ">20s") and count cells ("26.6K", "1.2M")
are parsed into comparable magnitudes; non-numeric columns are skipped.

Usage:
  bench_f4_ablation --csv f4.csv
  scripts/plot_results.py f4.csv
  scripts/plot_results.py f4.csv --width 50 --log
"""

import argparse
import csv
import math
import re
import sys

_SUFFIX = {
    "ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0,
    "K": 1e3, "M": 1e6, "B": 1e9,
    "B_bytes": 1.0, "KiB": 2**10, "MiB": 2**20, "GiB": 2**30,
}

_CELL_RE = re.compile(
    r"^(>?)(\d+(?:\.\d+)?)(ns|us|ms|s|K|M|B|KiB|MiB|GiB)?$")


def parse_cell(text):
    """Returns (value, truncated) or None when the cell is not numeric."""
    text = text.strip()
    match = _CELL_RE.match(text)
    if not match:
        return None
    truncated = match.group(1) == ">"
    value = float(match.group(2))
    suffix = match.group(3)
    if suffix:
        value *= _SUFFIX[suffix]
    return value, truncated


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv_path")
    parser.add_argument("--width", type=int, default=40,
                        help="max bar width in characters")
    parser.add_argument("--log", action="store_true",
                        help="log-scale the bars")
    args = parser.parse_args()

    with open(args.csv_path, newline="") as handle:
        rows = list(csv.reader(handle))
    if len(rows) < 2:
        sys.exit("CSV has no data rows")
    header, data = rows[0], rows[1:]

    # Numeric columns: those where every non-empty cell parses.
    numeric_cols = []
    for c in range(1, len(header)):
        cells = [row[c] for row in data if c < len(row) and row[c].strip()]
        if cells and all(parse_cell(x) is not None for x in cells):
            numeric_cols.append(c)
    if not numeric_cols:
        sys.exit("no numeric columns found")

    peak = max(parse_cell(row[c])[0]
               for row in data for c in numeric_cols if c < len(row))
    if peak <= 0:
        sys.exit("all values are zero")

    def bar(value):
        if args.log:
            floor = 1e-9
            frac = (math.log10(max(value, floor)) - math.log10(floor)) / (
                math.log10(peak) - math.log10(floor) or 1.0)
        else:
            frac = value / peak
        return "#" * max(1, int(round(frac * args.width)))

    label_width = max(len(header[c]) for c in numeric_cols)
    for row in data:
        print(f"{row[0]}:")
        for c in numeric_cols:
            if c >= len(row) or not row[c].strip():
                continue
            value, truncated = parse_cell(row[c])
            marker = " (budget)" if truncated else ""
            print(f"  {header[c]:<{label_width}}  "
                  f"{bar(value)} {row[c]}{marker}")
        print()


if __name__ == "__main__":
    main()
