// Unit tests for the right-side vertex orderings: every order is a valid
// permutation, realizes its defining key, and is deterministic.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "gen/generators.h"
#include "graph/ordering.h"
#include "graph/two_hop.h"

namespace mbe {
namespace {

bool IsPermutation(const std::vector<VertexId>& perm, size_t n) {
  if (perm.size() != n) return false;
  std::vector<uint8_t> seen(n, 0);
  for (VertexId v : perm) {
    if (v >= n || seen[v]) return false;
    seen[v] = 1;
  }
  return true;
}

class AllOrdersTest : public ::testing::TestWithParam<VertexOrder> {};

TEST_P(AllOrdersTest, ProducesAPermutation) {
  for (uint64_t seed : {1u, 2u}) {
    BipartiteGraph g = gen::PowerLaw(80, 60, 400, 0.8, 0.8, seed);
    auto perm = MakeOrder(g, GetParam(), 7);
    EXPECT_TRUE(IsPermutation(perm, g.num_right()))
        << VertexOrderName(GetParam());
  }
}

TEST_P(AllOrdersTest, DeterministicForFixedSeed) {
  BipartiteGraph g = gen::PowerLaw(60, 50, 300, 0.8, 0.8, 3);
  EXPECT_EQ(MakeOrder(g, GetParam(), 9), MakeOrder(g, GetParam(), 9));
}

INSTANTIATE_TEST_SUITE_P(
    Orders, AllOrdersTest,
    ::testing::Values(VertexOrder::kNone, VertexOrder::kDegreeAsc,
                      VertexOrder::kDegreeDesc, VertexOrder::kTwoHopAsc,
                      VertexOrder::kUnilateralAsc, VertexOrder::kRandom));

TEST(OrderingTest, NoneIsIdentity) {
  BipartiteGraph g = gen::ErdosRenyi(10, 8, 0.3, 1);
  auto perm = MakeOrder(g, VertexOrder::kNone);
  std::vector<VertexId> identity(g.num_right());
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_EQ(perm, identity);
}

TEST(OrderingTest, DegreeAscendingRealizesItsKey) {
  BipartiteGraph g = gen::PowerLaw(80, 60, 500, 0.9, 0.9, 5);
  auto perm = MakeOrder(g, VertexOrder::kDegreeAsc);
  for (size_t i = 1; i < perm.size(); ++i) {
    EXPECT_LE(g.RightDegree(perm[i - 1]), g.RightDegree(perm[i]));
  }
  // Relabeled graph has ascending degrees by id.
  BipartiteGraph r = ApplyOrder(g, VertexOrder::kDegreeAsc);
  for (VertexId v = 1; v < r.num_right(); ++v) {
    EXPECT_LE(r.RightDegree(v - 1), r.RightDegree(v));
  }
}

TEST(OrderingTest, DegreeDescendingRealizesItsKey) {
  BipartiteGraph g = gen::PowerLaw(80, 60, 500, 0.9, 0.9, 6);
  auto perm = MakeOrder(g, VertexOrder::kDegreeDesc);
  for (size_t i = 1; i < perm.size(); ++i) {
    EXPECT_GE(g.RightDegree(perm[i - 1]), g.RightDegree(perm[i]));
  }
}

TEST(OrderingTest, TwoHopAscendingRealizesItsKey) {
  BipartiteGraph g = gen::ErdosRenyi(40, 30, 0.1, 8);
  auto perm = MakeOrder(g, VertexOrder::kTwoHopAsc);
  TwoHopScratch scratch(g.num_right());
  std::vector<VertexId> n2;
  std::vector<size_t> sizes(g.num_right());
  for (VertexId v = 0; v < g.num_right(); ++v) {
    scratch.RightTwoHop(g, v, &n2);
    sizes[v] = n2.size();
  }
  for (size_t i = 1; i < perm.size(); ++i) {
    EXPECT_LE(sizes[perm[i - 1]], sizes[perm[i]]);
  }
}

TEST(OrderingTest, RandomOrderVariesWithSeed) {
  BipartiteGraph g = gen::ErdosRenyi(30, 40, 0.2, 9);
  auto a = MakeOrder(g, VertexOrder::kRandom, 1);
  auto b = MakeOrder(g, VertexOrder::kRandom, 2);
  EXPECT_NE(a, b);
}

TEST(OrderingTest, UnilateralIsAPeelingOrder) {
  // The unilateral order peels minimum-remaining-two-hop-degree vertices;
  // structurally this means the first peeled vertex has globally minimal
  // two-hop degree.
  BipartiteGraph g = gen::PowerLaw(60, 40, 300, 0.8, 0.8, 10);
  auto perm = UnilateralOrder(g);
  ASSERT_TRUE(IsPermutation(perm, g.num_right()));
  TwoHopScratch scratch(g.num_right());
  std::vector<VertexId> n2;
  size_t min_two_hop = g.num_right();
  std::vector<size_t> sizes(g.num_right());
  for (VertexId v = 0; v < g.num_right(); ++v) {
    scratch.RightTwoHop(g, v, &n2);
    sizes[v] = n2.size();
    min_two_hop = std::min(min_two_hop, n2.size());
  }
  EXPECT_EQ(sizes[perm[0]], min_two_hop);
}

TEST(OrderingTest, ParseAndNameRoundTrip) {
  for (VertexOrder order :
       {VertexOrder::kNone, VertexOrder::kDegreeAsc, VertexOrder::kDegreeDesc,
        VertexOrder::kTwoHopAsc, VertexOrder::kUnilateralAsc,
        VertexOrder::kRandom}) {
    EXPECT_EQ(ParseVertexOrder(VertexOrderName(order)), order);
  }
}

TEST(OrderingDeathTest, UnknownOrderNameAborts) {
  EXPECT_DEATH(ParseVertexOrder("bogus"), "unknown vertex order");
}

TEST(OrderingTest, ApplyOrderPreservesStructure) {
  BipartiteGraph g = gen::PowerLaw(50, 40, 250, 0.8, 0.8, 11);
  BipartiteGraph r = ApplyOrder(g, VertexOrder::kDegreeAsc);
  EXPECT_EQ(r.num_edges(), g.num_edges());
  EXPECT_EQ(r.num_left(), g.num_left());
  EXPECT_EQ(r.MaxRightDegree(), g.MaxRightDegree());
}

TEST(OrderingTest, EmptyGraphOrders) {
  BipartiteGraph g;
  for (VertexOrder order : {VertexOrder::kDegreeAsc, VertexOrder::kRandom}) {
    EXPECT_TRUE(MakeOrder(g, order).empty());
  }
}

}  // namespace
}  // namespace mbe
