// Engine-level tests for BBK (engines/bbk.h): oracle-checked output,
// digest identity with MBET across graph families and set-layer configs,
// the fixed candidate order (no per-node re-sort), and split-at-pickup
// shard equivalence — the property the work-stealing driver relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "api/mbe.h"
#include "core/verify.h"
#include "engines/bbk.h"
#include "gen/generators.h"

namespace mbe {
namespace {

// The running-example graph of the MBE literature (5 x 4).
BipartiteGraph LiteratureGraph() {
  return BipartiteGraph::FromEdges(
      5, 4,
      {{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}, {1, 3}, {2, 1},
       {3, 1}, {3, 2}, {3, 3}, {4, 3}});
}

std::vector<Biclique> MbetReference(const BipartiteGraph& graph) {
  CollectSink sink;
  Enumerate(graph, Options(), &sink);
  return sink.TakeSorted();
}

TEST(BbkEngineTest, LiteratureGraphMatchesOracle) {
  const BipartiteGraph graph = LiteratureGraph();
  BbkEnumerator engine(graph);
  CollectSink sink;
  engine.EnumerateAll(&sink);
  const std::vector<Biclique> got = sink.TakeSorted();
  EXPECT_EQ(got, MbetReference(graph));
  for (const Biclique& b : got) {
    EXPECT_TRUE(IsMaximalBiclique(graph, b)) << ToString(b);
  }
  EXPECT_EQ(engine.stats().maximal, got.size());
}

TEST(BbkEngineTest, OutputIdenticalToMbetAcrossFamilies) {
  const BipartiteGraph graphs[] = {
      gen::ErdosRenyi(40, 30, 0.2, 5),
      gen::PowerLaw(250, 180, 1400, 0.85, 0.8, 70),
      gen::HubBlock(50, 35, 50, 100, 0.4, 0.03, 21),
  };
  for (const BipartiteGraph& graph : graphs) {
    FingerprintSink ref;
    Enumerate(graph, Options(), &ref);

    BbkEnumerator engine(graph);
    FingerprintSink got;
    engine.EnumerateAll(&got);
    EXPECT_EQ(got.Digest(), ref.Digest());
    EXPECT_EQ(got.count(), ref.count());
    EXPECT_GT(got.count(), 0u);
  }
}

TEST(BbkEngineTest, SetLayerConfigsAreOutputInvariant) {
  // bitmap_density only swaps the L' representation; forced bitmaps
  // (0.0) and disabled bitmaps (2.0) must produce the default's digest.
  const BipartiteGraph graph = gen::PowerLaw(250, 180, 1400, 0.85, 0.8, 70);
  BbkEnumerator def(graph);
  FingerprintSink a;
  def.EnumerateAll(&a);

  BbkEnumerator forced(graph, BbkOptions{.bitmap_density = 0.0});
  FingerprintSink b;
  forced.EnumerateAll(&b);
  EXPECT_EQ(b.Digest(), a.Digest());
  EXPECT_GT(forced.stats().bitmap_conversions, 0u);

  BbkEnumerator lists(graph, BbkOptions{.bitmap_density = 2.0});
  FingerprintSink c;
  lists.EnumerateAll(&c);
  EXPECT_EQ(c.Digest(), a.Digest());
  EXPECT_EQ(lists.stats().bitmap_conversions, 0u);
}

TEST(BbkEngineTest, ShardUnionEqualsWholeSubtree) {
  // Split-at-pickup: for every subtree and shard count, the union of the
  // shards' emissions must be digest-identical to the unsplit subtree.
  // (Skipped candidates are appended to Q; a Q entry with an empty clipped
  // local can never flip a maximality verdict, so over-approximating Q on
  // the non-owned positions is safe — this is the property under test.)
  const BipartiteGraph graph = gen::HubBlock(50, 35, 50, 100, 0.4, 0.03, 21);
  BbkEnumerator engine(graph);
  for (VertexId v = 0; v < graph.num_right(); ++v) {
    FingerprintSink whole;
    engine.EnumerateSubtree(v, &whole);
    for (uint32_t num_shards : {2u, 3u, 8u}) {
      FingerprintSink split;
      for (uint32_t shard = 0; shard < num_shards; ++shard) {
        engine.EnumerateShard(v, shard, num_shards, &split);
      }
      EXPECT_EQ(split.Digest(), whole.Digest())
          << "v=" << v << " shards=" << num_shards;
      EXPECT_EQ(split.count(), whole.count());
    }
  }
}

TEST(BbkEngineTest, SplitHintRespectsBounds) {
  const BipartiteGraph graph = gen::HubBlock(50, 35, 50, 100, 0.4, 0.03, 21);
  BbkEnumerator engine(graph);
  for (VertexId v = 0; v < graph.num_right(); ++v) {
    const uint32_t k = engine.SplitHint(v, /*max_shards=*/8, /*min_work=*/1);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 8u);
    EXPECT_EQ(engine.SplitHint(v, /*max_shards=*/1, /*min_work=*/1), 1u);
    // An enormous work floor suppresses splitting entirely.
    EXPECT_EQ(engine.SplitHint(v, 8, /*min_work=*/~0ull), 1u);
  }
}

TEST(BbkEngineTest, EmptyAndDegenerateGraphs) {
  const BipartiteGraph none;
  BbkEnumerator empty(none);
  CountSink s0;
  empty.EnumerateAll(&s0);
  EXPECT_EQ(s0.count(), 0u);

  // A single edge: one maximal biclique.
  const BipartiteGraph one = BipartiteGraph::FromEdges(1, 1, {{0, 0}});
  BbkEnumerator engine(one);
  CollectSink s1;
  engine.EnumerateAll(&s1);
  const std::vector<Biclique> got = s1.TakeSorted();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].left, (std::vector<VertexId>{0}));
  EXPECT_EQ(got[0].right, (std::vector<VertexId>{0}));
}

TEST(BbkEngineTest, StatsCountersAreConsistent) {
  const BipartiteGraph graph = gen::PowerLaw(120, 90, 600, 0.8, 0.8, 71);
  BbkEnumerator engine(graph);
  CountSink sink;
  engine.EnumerateAll(&sink);
  const EnumStats& s = engine.stats();
  EXPECT_EQ(s.maximal, sink.count());
  EXPECT_GT(s.nodes_expanded, 0u);
  // The whole point of the engine: candidates classified without per-node
  // re-sorting still absorb (k == |L'|) and drop (k == 0) like iMBEA.
  EXPECT_GT(s.candidates_dropped, 0u);
  // ResetStats zeroes the counters for reuse.
  engine.ResetStats();
  EXPECT_EQ(engine.stats().maximal, 0u);
  EXPECT_EQ(engine.stats().nodes_expanded, 0u);
}

TEST(BbkEngineTest, FacadeParsesAndRunsParallel) {
  // End-to-end through the public facade: "bbk" parses, validates with
  // threads > 1, and the parallel run is digest-identical to serial.
  Algorithm algorithm = Algorithm::kMbet;
  ASSERT_TRUE(ParseAlgorithm("bbk", &algorithm).ok());
  EXPECT_EQ(algorithm, Algorithm::kBbk);
  EXPECT_STREQ(AlgorithmName(Algorithm::kBbk), "BBK");

  const BipartiteGraph graph = gen::PowerLaw(250, 180, 1400, 0.85, 0.8, 70);
  FingerprintSink serial;
  Options o;
  o.algorithm = Algorithm::kBbk;
  ASSERT_TRUE(Enumerate(graph, o, &serial, nullptr).ok());

  o.threads = 4;
  FingerprintSink parallel;
  RunResult run;
  ASSERT_TRUE(Enumerate(graph, o, &parallel, &run).ok());
  EXPECT_EQ(run.termination, Termination::kComplete);
  EXPECT_EQ(parallel.Digest(), serial.Digest());
  EXPECT_EQ(parallel.count(), serial.count());
}

}  // namespace
}  // namespace mbe
