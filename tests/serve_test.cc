// End-to-end tests of the serving daemon core (serve/server.h): a real
// `serve::Server` on a Unix-domain socket driven by a minimal blocking
// wire client. Covers the handshake, graph upload, concurrent-session
// digest identity, per-session cancel/deadline/budget containment,
// admission rejection, drain, and protocol-error handling.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/session.h"
#include "core/sink.h"
#include "gen/generators.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace mbe::serve {
namespace {

std::string SocketPath(const char* tag) {
  return "/tmp/pmbe_serve_test_" + std::to_string(getpid()) + "_" + tag +
         ".sock";
}

/// Minimal blocking client: one socket, framed reads. Test-only — errors
/// surface as gtest failures via the callers.
class TestClient {
 public:
  ~TestClient() { Close(); }

  bool Connect(const std::string& path) {
    fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    return connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  bool Send(const Message& message) {
    std::vector<uint8_t> frame;
    if (!EncodeMessage(message, &frame).ok()) return false;
    return SendRaw(frame);
  }

  bool SendRaw(const std::vector<uint8_t>& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      // MSG_NOSIGNAL: a server-side drop between frames must surface as a
      // failed Send, never as a SIGPIPE that kills the test binary.
      const ssize_t n = send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Blocking framed read; nullopt on EOF or a corrupt stream.
  std::optional<Message> Read() {
    for (;;) {
      size_t frame_size = 0;
      bool complete = false;
      if (!PeekFrame(buffer_, &frame_size, &complete).ok()) return {};
      if (complete) {
        auto decoded =
            DecodeMessage(std::span(buffer_.data(), frame_size));
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<long>(frame_size));
        if (!decoded.ok()) return {};
        return std::move(decoded).value();
      }
      uint8_t chunk[4096];
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return {};
      buffer_.insert(buffer_.end(), chunk, chunk + n);
    }
  }

  /// Reads until a message of type `want` arrives, feeding every
  /// kResultBatch passed over into `sinks` by session id. Fails the test
  /// and returns nullopt on EOF.
  std::optional<Message> ReadUntil(
      MsgType want,
      std::map<uint64_t, FingerprintSink*>* sinks = nullptr) {
    for (;;) {
      std::optional<Message> message = Read();
      if (!message.has_value()) {
        ADD_FAILURE() << "connection closed while waiting for type "
                      << static_cast<int>(want);
        return {};
      }
      if (TypeOf(*message) == want) return message;
      if (sinks != nullptr && TypeOf(*message) == MsgType::kResultBatch) {
        const auto& batch = std::get<ResultBatchMsg>(*message);
        auto it = sinks->find(batch.session_id);
        if (it != sinks->end()) it->second->EmitBatch(batch.batch);
      }
    }
  }

  void Close() {
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  std::vector<uint8_t> buffer_;
};

/// A started server on a fresh Unix socket plus a connected, greeted
/// client.
struct Harness {
  explicit Harness(const char* tag, ServerOptions options = {})
      : path_(SocketPath(tag)) {
    options.unix_path = path_;
    server = std::make_unique<Server>(options);
  }
  ~Harness() { server->Stop(); }

  void StartAndConnect() {
    ASSERT_TRUE(server->Start().ok());
    ASSERT_TRUE(client.Connect(server_path()));
    ASSERT_TRUE(client.Send(HelloMsg{}));
    std::optional<Message> hello = client.Read();
    ASSERT_TRUE(hello.has_value());
    ASSERT_TRUE(std::holds_alternative<HelloOkMsg>(*hello));
  }

  std::string server_path() const { return path_; }

  std::unique_ptr<Server> server;
  TestClient client;

 private:
  std::string path_;
};

std::shared_ptr<const Engine> SmallEngine() {
  auto engine =
      Engine::Build(gen::ErdosRenyi(20, 20, 0.35, 9), GraphOptions{});
  EXPECT_TRUE(engine.ok());
  return std::move(engine).value();
}

/// Dense enough that full enumeration is far beyond any test budget —
/// what cancel/deadline/admission tests hold a slot with.
std::shared_ptr<const Engine> HugeEngine() {
  auto engine =
      Engine::Build(gen::ErdosRenyi(60, 60, 0.5, 11), GraphOptions{});
  EXPECT_TRUE(engine.ok());
  return std::move(engine).value();
}

/// Solo digest/count of the default session options over `engine`.
void SoloReference(const std::shared_ptr<const Engine>& engine,
                   uint64_t* digest, uint64_t* count) {
  FingerprintSink sink;
  Session session(engine, RunOptions{});
  RunResult result;
  ASSERT_TRUE(session.Run(&sink, &result).ok());
  ASSERT_TRUE(result.complete());
  *digest = sink.Digest();
  *count = sink.count();
}

/// A kStartSession that keeps the pool busy long enough for the brief
/// windows cancel/deadline/admission tests need: dense graph, thresholds
/// high enough that (almost) nothing is emitted. The thresholds also let
/// pruning finish the run in a few hundred ms — a test that needs a
/// session provably alive across a longer window must enumerate in full.
StartSessionMsg SlowStart(const std::string& graph) {
  StartSessionMsg start;
  start.graph = graph;
  start.min_left = 10;
  start.min_right = 10;
  return start;
}

TEST(ServeTest, HelloHandshakeReportsPool) {
  Harness h("hello");
  ASSERT_TRUE(h.server->Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(h.server_path()));
  ASSERT_TRUE(client.Send(HelloMsg{}));
  std::optional<Message> reply = client.Read();
  ASSERT_TRUE(reply.has_value());
  const auto& ok = std::get<HelloOkMsg>(*reply);
  EXPECT_EQ(ok.version, kProtocolVersion);
  EXPECT_EQ(ok.max_payload, kMaxPayloadBytes);
  EXPECT_EQ(ok.pool_threads, h.server->pool_threads());
}

TEST(ServeTest, HelloVersionMismatchClosesWithError) {
  Harness h("badhello");
  ASSERT_TRUE(h.server->Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(h.server_path()));
  ASSERT_TRUE(client.Send(HelloMsg{99}));
  std::optional<Message> reply = client.Read();
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(std::holds_alternative<ErrorMsg>(*reply));
  EXPECT_FALSE(client.Read().has_value());  // server closed the connection
}

TEST(ServeTest, CorruptFrameClosesWithError) {
  Harness h("corrupt");
  ASSERT_TRUE(h.server->Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(h.server_path()));
  ASSERT_TRUE(client.SendRaw({0xff, 0xff, 0xff, 0xff, 0x01}));
  std::optional<Message> reply = client.Read();
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(std::holds_alternative<ErrorMsg>(*reply));
  EXPECT_FALSE(client.Read().has_value());
}

TEST(ServeTest, UploadEnumerateMatchesLocalRun) {
  const BipartiteGraph graph = gen::ErdosRenyi(20, 20, 0.35, 9);
  uint64_t want_digest = 0, want_count = 0;
  SoloReference(SmallEngine(), &want_digest, &want_count);

  Harness h("upload");
  h.StartAndConnect();

  LoadGraphMsg load;
  load.name = "g";
  load.num_left = static_cast<uint32_t>(graph.num_left());
  load.num_right = static_cast<uint32_t>(graph.num_right());
  for (const auto& [u, v] : graph.ToEdges()) {
    load.edge_left.push_back(u);
    load.edge_right.push_back(v);
  }
  ASSERT_TRUE(h.client.Send(load));
  std::optional<Message> loaded = h.client.ReadUntil(MsgType::kLoadOk);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(std::get<LoadOkMsg>(*loaded).name, "g");
  EXPECT_EQ(std::get<LoadOkMsg>(*loaded).num_left, graph.num_left());

  StartSessionMsg start;
  start.graph = "g";
  ASSERT_TRUE(h.client.Send(start));
  std::optional<Message> started =
      h.client.ReadUntil(MsgType::kSessionStarted);
  ASSERT_TRUE(started.has_value());
  const uint64_t id = std::get<SessionStartedMsg>(*started).session_id;

  FingerprintSink sink;
  std::map<uint64_t, FingerprintSink*> sinks = {{id, &sink}};
  std::optional<Message> done =
      h.client.ReadUntil(MsgType::kSessionDone, &sinks);
  ASSERT_TRUE(done.has_value());
  const auto& d = std::get<SessionDoneMsg>(*done);
  EXPECT_EQ(d.session_id, id);
  EXPECT_EQ(d.termination, static_cast<uint8_t>(Termination::kComplete));
  EXPECT_EQ(d.results_emitted, want_count);
  EXPECT_EQ(sink.Digest(), want_digest);
  EXPECT_EQ(sink.count(), want_count);
}

TEST(ServeTest, ConcurrentSessionsDigestIdentity) {
  uint64_t want_digest = 0, want_count = 0;
  auto engine = SmallEngine();
  SoloReference(engine, &want_digest, &want_count);

  ServerOptions options;
  options.max_active_sessions = 8;
  options.max_queued_sessions = 64;
  Harness h("concurrent", options);
  h.server->registry().Put("g", engine);
  h.StartAndConnect();

  constexpr int kSessions = 12;
  StartSessionMsg start;
  start.graph = "g";
  start.batch_results = 7;  // many partial batches, exercising reassembly
  for (int i = 0; i < kSessions; ++i) ASSERT_TRUE(h.client.Send(start));

  std::map<uint64_t, std::unique_ptr<FingerprintSink>> sinks;
  std::map<uint64_t, FingerprintSink*> routes;
  int done_count = 0;
  int started = 0;
  while (done_count < kSessions) {
    std::optional<Message> message = h.client.Read();
    ASSERT_TRUE(message.has_value()) << "EOF after " << done_count;
    if (const auto* s = std::get_if<SessionStartedMsg>(&*message)) {
      sinks[s->session_id] = std::make_unique<FingerprintSink>();
      routes[s->session_id] = sinks[s->session_id].get();
      ++started;
    } else if (const auto* b = std::get_if<ResultBatchMsg>(&*message)) {
      ASSERT_TRUE(routes.count(b->session_id));
      routes[b->session_id]->EmitBatch(b->batch);
    } else if (const auto* d = std::get_if<SessionDoneMsg>(&*message)) {
      ASSERT_TRUE(sinks.count(d->session_id));
      EXPECT_EQ(d->termination,
                static_cast<uint8_t>(Termination::kComplete));
      EXPECT_EQ(sinks[d->session_id]->Digest(), want_digest)
          << "session " << d->session_id;
      EXPECT_EQ(sinks[d->session_id]->count(), want_count);
      ++done_count;
    } else {
      FAIL() << "unexpected frame type "
             << static_cast<int>(TypeOf(*message));
    }
  }
  EXPECT_EQ(started, kSessions);
}

TEST(ServeTest, CancelStopsOnlyTheTargetedSession) {
  auto small = SmallEngine();
  uint64_t want_digest = 0, want_count = 0;
  SoloReference(small, &want_digest, &want_count);

  Harness h("cancel");
  h.server->registry().Put("small", small);
  h.server->registry().Put("huge", HugeEngine());
  h.StartAndConnect();

  ASSERT_TRUE(h.client.Send(SlowStart("huge")));
  std::optional<Message> started =
      h.client.ReadUntil(MsgType::kSessionStarted);
  ASSERT_TRUE(started.has_value());
  const uint64_t huge_id = std::get<SessionStartedMsg>(*started).session_id;

  StartSessionMsg start_small;
  start_small.graph = "small";
  ASSERT_TRUE(h.client.Send(start_small));
  started = h.client.ReadUntil(MsgType::kSessionStarted);
  ASSERT_TRUE(started.has_value());
  const uint64_t small_id = std::get<SessionStartedMsg>(*started).session_id;

  ASSERT_TRUE(h.client.Send(CancelSessionMsg{huge_id}));

  FingerprintSink small_sink, huge_sink;
  std::map<uint64_t, FingerprintSink*> sinks = {{small_id, &small_sink},
                                                {huge_id, &huge_sink}};
  bool huge_done = false, small_done = false;
  while (!huge_done || !small_done) {
    std::optional<Message> done =
        h.client.ReadUntil(MsgType::kSessionDone, &sinks);
    ASSERT_TRUE(done.has_value());
    const auto& d = std::get<SessionDoneMsg>(*done);
    if (d.session_id == huge_id) {
      huge_done = true;
      EXPECT_EQ(d.termination,
                static_cast<uint8_t>(Termination::kCancelled));
    } else {
      ASSERT_EQ(d.session_id, small_id);
      small_done = true;
      EXPECT_EQ(d.termination,
                static_cast<uint8_t>(Termination::kComplete));
    }
  }
  // The cancelled neighbor never corrupted the surviving session.
  EXPECT_EQ(small_sink.Digest(), want_digest);
  EXPECT_EQ(small_sink.count(), want_count);
}

TEST(ServeTest, DeadlineAndBudgetTerminatePerSession) {
  auto small = SmallEngine();
  uint64_t want_digest = 0, want_count = 0;
  SoloReference(small, &want_digest, &want_count);

  Harness h("limits");
  h.server->registry().Put("small", small);
  h.server->registry().Put("huge", HugeEngine());
  h.StartAndConnect();

  StartSessionMsg deadline = SlowStart("huge");
  deadline.deadline_seconds = 0.05;
  StartSessionMsg budget = SlowStart("huge");
  budget.max_memory_bytes = 1 << 12;  // 4 KiB: certain to be exceeded
  StartSessionMsg healthy;
  healthy.graph = "small";

  ASSERT_TRUE(h.client.Send(deadline));
  ASSERT_TRUE(h.client.Send(budget));
  ASSERT_TRUE(h.client.Send(healthy));

  std::map<uint64_t, uint8_t> terminations;
  int done_count = 0;
  // SessionStarted order follows the per-connection send order only
  // loosely (starter threads race for admission); classify by outcome
  // instead: exactly one deadline, one memory-limit, one complete.
  while (done_count < 3) {
    std::optional<Message> message = h.client.Read();
    ASSERT_TRUE(message.has_value());
    if (std::holds_alternative<SessionStartedMsg>(*message) ||
        std::holds_alternative<ResultBatchMsg>(*message)) {
      continue;  // limited sessions may emit a valid prefix; ignore it
    }
    if (const auto* d = std::get_if<SessionDoneMsg>(&*message)) {
      terminations[d->session_id] = d->termination;
      if (d->termination == static_cast<uint8_t>(Termination::kComplete)) {
        EXPECT_EQ(d->results_emitted, want_count);
      }
      ++done_count;
    }
  }
  int deadline_hits = 0, memory_hits = 0, complete_hits = 0;
  for (const auto& [id, term] : terminations) {
    if (term == static_cast<uint8_t>(Termination::kDeadline)) {
      ++deadline_hits;
    } else if (term == static_cast<uint8_t>(Termination::kMemoryLimit)) {
      ++memory_hits;
    } else if (term == static_cast<uint8_t>(Termination::kComplete)) {
      ++complete_hits;
    }
  }
  EXPECT_EQ(deadline_hits, 1);
  EXPECT_EQ(memory_hits, 1);
  EXPECT_EQ(complete_hits, 1);
}

TEST(ServeTest, UnknownGraphAndBadOptionsRejected) {
  Harness h("reject");
  h.server->registry().Put("g", SmallEngine());
  h.StartAndConnect();

  StartSessionMsg unknown;
  unknown.graph = "nope";
  ASSERT_TRUE(h.client.Send(unknown));
  std::optional<Message> reply = h.client.ReadUntil(MsgType::kRejected);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(std::get<RejectedMsg>(*reply).reason,
            static_cast<uint8_t>(RejectReason::kUnknownGraph));

  StartSessionMsg bad;
  bad.graph = "g";
  bad.algorithm = 99;
  ASSERT_TRUE(h.client.Send(bad));
  reply = h.client.ReadUntil(MsgType::kRejected);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(std::get<RejectedMsg>(*reply).reason,
            static_cast<uint8_t>(RejectReason::kBadOptions));
}

TEST(ServeTest, AdmissionLimitRejectsExcessSessions) {
  ServerOptions options;
  options.max_active_sessions = 1;
  options.max_queued_sessions = 0;
  Harness h("admission", options);
  h.server->registry().Put("huge", HugeEngine());
  h.StartAndConnect();

  // First session takes the only slot...
  ASSERT_TRUE(h.client.Send(SlowStart("huge")));
  std::optional<Message> started =
      h.client.ReadUntil(MsgType::kSessionStarted);
  ASSERT_TRUE(started.has_value());
  const uint64_t id = std::get<SessionStartedMsg>(*started).session_id;

  // ...so the second is rejected typed, not queued invisibly.
  ASSERT_TRUE(h.client.Send(SlowStart("huge")));
  std::optional<Message> rejected = h.client.ReadUntil(MsgType::kRejected);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(std::get<RejectedMsg>(*rejected).reason,
            static_cast<uint8_t>(RejectReason::kTooManySessions));

  // Releasing the slot (cancel) lets a new session in. The kSessionDone
  // frame can race the slot release by a hair, so retry on rejection.
  ASSERT_TRUE(h.client.Send(CancelSessionMsg{id}));
  std::optional<Message> done = h.client.ReadUntil(MsgType::kSessionDone);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(std::get<SessionDoneMsg>(*done).session_id, id);

  uint64_t second = 0;
  for (int attempt = 0; attempt < 100 && second == 0; ++attempt) {
    ASSERT_TRUE(h.client.Send(SlowStart("huge")));
    for (;;) {
      std::optional<Message> reply = h.client.Read();
      ASSERT_TRUE(reply.has_value());
      if (const auto* s = std::get_if<SessionStartedMsg>(&*reply)) {
        second = s->session_id;
        break;
      }
      if (std::holds_alternative<RejectedMsg>(*reply)) {
        usleep(10000);
        break;
      }
    }
  }
  ASSERT_NE(second, 0u) << "slot never became available after release";
  ASSERT_TRUE(h.client.Send(CancelSessionMsg{second}));
  ASSERT_TRUE(h.client.ReadUntil(MsgType::kSessionDone).has_value());
}

TEST(ServeTest, DrainRejectsNewSessionsThenGoesIdle) {
  Harness h("drain");
  h.server->registry().Put("g", SmallEngine());
  h.StartAndConnect();

  h.server->BeginDrain();
  StartSessionMsg start;
  start.graph = "g";
  ASSERT_TRUE(h.client.Send(start));
  std::optional<Message> rejected = h.client.ReadUntil(MsgType::kRejected);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(std::get<RejectedMsg>(*rejected).reason,
            static_cast<uint8_t>(RejectReason::kDraining));
  EXPECT_TRUE(h.server->idle());
}

TEST(ServeTest, DuplicateGraphNameRejected) {
  // The registry is one flat namespace shared by every (unauthenticated)
  // client: re-registering a name must fail instead of silently swapping
  // the graph under other tenants' future sessions.
  Harness h("dupload");
  h.server->registry().Put("g", SmallEngine());
  h.StartAndConnect();

  const BipartiteGraph graph = gen::ErdosRenyi(8, 8, 0.4, 3);
  LoadGraphMsg load;
  load.name = "g";
  load.num_left = static_cast<uint32_t>(graph.num_left());
  load.num_right = static_cast<uint32_t>(graph.num_right());
  for (const auto& [u, v] : graph.ToEdges()) {
    load.edge_left.push_back(u);
    load.edge_right.push_back(v);
  }
  ASSERT_TRUE(h.client.Send(load));
  std::optional<Message> reply = h.client.Read();
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(std::holds_alternative<ErrorMsg>(*reply));
  // Load failures abandon the connection; the peer sees EOF.
  EXPECT_FALSE(h.client.Read().has_value());
}

TEST(ServeTest, SlowReaderStallsOnlyItsOwnConnection) {
  // Regression: a client that stopped reading used to block a pool worker
  // inside send() while it held the result sink's mutex; the next worker
  // then blocked on that mutex while holding the pool mutex, wedging every
  // session on the server. With the bounded outbound queue the slow
  // connection overflows its budget and fails alone.
  auto small = SmallEngine();
  uint64_t want_digest = 0, want_count = 0;
  SoloReference(small, &want_digest, &want_count);

  ServerOptions options;
  options.max_outbound_bytes = 1 << 16;  // overflow quickly
  Harness h("slowreader", options);
  h.server->registry().Put("small", small);
  h.server->registry().Put("huge", HugeEngine());
  h.StartAndConnect();

  // The slow client starts a result-heavy session and never reads a byte.
  TestClient slow;
  ASSERT_TRUE(slow.Connect(h.server_path()));
  ASSERT_TRUE(slow.Send(HelloMsg{}));
  StartSessionMsg flood;
  flood.graph = "huge";
  flood.batch_results = 1;  // one frame per biclique: maximal backpressure
  ASSERT_TRUE(slow.Send(flood));

  // A healthy session on another connection still completes, unharmed.
  StartSessionMsg healthy;
  healthy.graph = "small";
  ASSERT_TRUE(h.client.Send(healthy));
  std::optional<Message> started =
      h.client.ReadUntil(MsgType::kSessionStarted);
  ASSERT_TRUE(started.has_value());
  const uint64_t id = std::get<SessionStartedMsg>(*started).session_id;
  FingerprintSink sink;
  std::map<uint64_t, FingerprintSink*> sinks = {{id, &sink}};
  std::optional<Message> done =
      h.client.ReadUntil(MsgType::kSessionDone, &sinks);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(std::get<SessionDoneMsg>(*done).termination,
            static_cast<uint8_t>(Termination::kComplete));
  EXPECT_EQ(sink.Digest(), want_digest);
  EXPECT_EQ(sink.count(), want_count);

  // The flooding session is cancelled by the overflow (its connection
  // fails) and releases its admission slot — it does not run forever.
  for (int i = 0; i < 2000 && !h.server->idle(); ++i) usleep(10000);
  EXPECT_TRUE(h.server->idle());
}

TEST(ServeTest, PingPongEchoesToken) {
  Harness h("ping");
  h.StartAndConnect();
  ASSERT_TRUE(h.client.Send(PingMsg{0xfeed1234}));
  std::optional<Message> pong = h.client.ReadUntil(MsgType::kPong);
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(std::get<PongMsg>(*pong).token, 0xfeed1234u);
  // The heartbeat shows up in the health counters.
  ASSERT_TRUE(h.client.Send(InfoRequestMsg{}));
  std::optional<Message> info = h.client.ReadUntil(MsgType::kServerInfo);
  ASSERT_TRUE(info.has_value());
  EXPECT_GE(std::get<ServerInfoMsg>(*info).heartbeats, 1u);
}

TEST(ServeTest, ServerInfoReportsLiveCounters) {
  Harness h("info");
  h.server->registry().Put("g", SmallEngine());
  h.StartAndConnect();

  StartSessionMsg start;
  start.graph = "g";
  ASSERT_TRUE(h.client.Send(start));
  ASSERT_TRUE(h.client.ReadUntil(MsgType::kSessionDone).has_value());

  // sessions_completed increments just after the kSessionDone frame is
  // queued; poll past the sliver of a race.
  ServerInfoMsg info;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(h.client.Send(InfoRequestMsg{}));
    std::optional<Message> reply = h.client.ReadUntil(MsgType::kServerInfo);
    ASSERT_TRUE(reply.has_value());
    info = std::get<ServerInfoMsg>(*reply);
    if (info.sessions_completed >= 1) break;
    usleep(5000);
  }
  EXPECT_EQ(info.pool_threads, h.server->pool_threads());
  EXPECT_EQ(info.graphs, 1u);
  EXPECT_EQ(info.sessions_started, 1u);
  EXPECT_EQ(info.sessions_completed, 1u);
  EXPECT_EQ(info.active_sessions, 0u);
  EXPECT_GE(info.connections_accepted, 1u);
  EXPECT_EQ(info.draining, 0);
}

// The hot-reload contract: a kReloadGraph swap binds only sessions
// created after it. A session already created — even one still waiting in
// the admission queue — finishes on the engine it resolved at creation.
TEST(ServeTest, ReloadSwapsEpochWithoutDisturbingEarlierSessions) {
  const BipartiteGraph graph_a = gen::ErdosRenyi(20, 20, 0.35, 9);
  const BipartiteGraph graph_b = gen::ErdosRenyi(20, 20, 0.35, 12);
  uint64_t digest_a = 0, count_a = 0, digest_b = 0, count_b = 0;
  {
    auto engine = Engine::Build(graph_a, GraphOptions{});
    ASSERT_TRUE(engine.ok());
    SoloReference(std::move(engine).value(), &digest_a, &count_a);
  }
  {
    auto engine = Engine::Build(graph_b, GraphOptions{});
    ASSERT_TRUE(engine.ok());
    SoloReference(std::move(engine).value(), &digest_b, &count_b);
  }
  ASSERT_NE(digest_a, digest_b);

  ServerOptions options;
  options.max_active_sessions = 1;
  options.max_queued_sessions = 64;
  Harness h("reload", options);
  h.server->registry().Put("huge", HugeEngine());
  h.StartAndConnect();

  auto send_load = [&](const BipartiteGraph& graph, bool swap) {
    LoadGraphMsg load;
    load.name = "g";
    load.num_left = static_cast<uint32_t>(graph.num_left());
    load.num_right = static_cast<uint32_t>(graph.num_right());
    for (const auto& [u, v] : graph.ToEdges()) {
      load.edge_left.push_back(u);
      load.edge_right.push_back(v);
    }
    ASSERT_TRUE(h.client.Send(swap ? Message(ReloadGraphMsg{std::move(load)})
                                   : Message(std::move(load))));
  };
  send_load(graph_a, /*swap=*/false);
  std::optional<Message> loaded = h.client.ReadUntil(MsgType::kLoadOk);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(std::get<LoadOkMsg>(*loaded).epoch, 1u);

  // The blocker occupies the only slot; the next session on "g" resolves
  // engine A now but waits in the admission queue.
  ASSERT_TRUE(h.client.Send(SlowStart("huge")));
  std::optional<Message> started =
      h.client.ReadUntil(MsgType::kSessionStarted);
  ASSERT_TRUE(started.has_value());
  const uint64_t blocker_id = std::get<SessionStartedMsg>(*started).session_id;
  StartSessionMsg start;
  start.graph = "g";
  ASSERT_TRUE(h.client.Send(start));

  // Swap in graph B while the queued session waits.
  send_load(graph_b, /*swap=*/true);
  loaded = h.client.ReadUntil(MsgType::kLoadOk);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(std::get<LoadOkMsg>(*loaded).epoch, 2u);
  // A session created after the swap binds engine B (and also queues).
  ASSERT_TRUE(h.client.Send(start));

  // Release the slot and collect all three sessions.
  ASSERT_TRUE(h.client.Send(CancelSessionMsg{blocker_id}));
  std::map<uint64_t, FingerprintSink> folds;
  std::map<uint64_t, uint8_t> dones;
  while (dones.size() < 3) {
    std::optional<Message> message = h.client.Read();
    ASSERT_TRUE(message.has_value());
    if (const auto* batch = std::get_if<ResultBatchMsg>(&*message)) {
      folds[batch->session_id].EmitBatch(batch->batch);
    } else if (const auto* done = std::get_if<SessionDoneMsg>(&*message)) {
      dones[done->session_id] = done->termination;
    }
  }
  // Session ids are assigned in creation order: blocker, then the
  // pre-reload session (old engine), then the post-reload one (new).
  const uint64_t pre_id = blocker_id + 1;
  const uint64_t post_id = blocker_id + 2;
  ASSERT_TRUE(dones.count(pre_id));
  ASSERT_TRUE(dones.count(post_id));
  EXPECT_EQ(dones[pre_id], static_cast<uint8_t>(Termination::kComplete));
  EXPECT_EQ(dones[post_id], static_cast<uint8_t>(Termination::kComplete));
  EXPECT_EQ(folds[pre_id].Digest(), digest_a);
  EXPECT_EQ(folds[pre_id].count(), count_a);
  EXPECT_EQ(folds[post_id].Digest(), digest_b);
  EXPECT_EQ(folds[post_id].count(), count_b);
}

TEST(ServeTest, IdleTimeoutDropsOnlySessionlessConnections) {
  ServerOptions options;
  options.idle_timeout_seconds = 0.1;
  Harness h("idle", options);
  h.server->registry().Put("huge", HugeEngine());
  h.StartAndConnect();

  // A connection with an in-flight session outlives the idle timeout.
  // Full enumeration of the dense graph (no thresholds, unlike SlowStart,
  // whose pruned run can finish inside the window) takes far longer than
  // the silent stretch, so the connection provably holds work throughout;
  // its batches just back up in the outbound queue and socket buffer.
  StartSessionMsg start;
  start.graph = "huge";
  ASSERT_TRUE(h.client.Send(start));
  std::optional<Message> started =
      h.client.ReadUntil(MsgType::kSessionStarted);
  ASSERT_TRUE(started.has_value());
  usleep(300000);  // 3x the timeout, silent, but a session is running
  const uint64_t id = std::get<SessionStartedMsg>(*started).session_id;
  ASSERT_TRUE(h.client.Send(CancelSessionMsg{id}));
  ASSERT_TRUE(h.client.ReadUntil(MsgType::kSessionDone).has_value());

  // With no sessions left, the next silent stretch drops the connection.
  EXPECT_FALSE(h.client.Read().has_value());
  EXPECT_GE(h.server->Info().idle_disconnects, 1u);
}

TEST(ServeTest, CancelOfUnknownSessionIsIgnored) {
  Harness h("cancelnone");
  h.server->registry().Put("g", SmallEngine());
  h.StartAndConnect();
  ASSERT_TRUE(h.client.Send(CancelSessionMsg{12345}));
  // The connection stays healthy: a session on it still works.
  StartSessionMsg start;
  start.graph = "g";
  ASSERT_TRUE(h.client.Send(start));
  std::optional<Message> done = h.client.ReadUntil(MsgType::kSessionDone);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(std::get<SessionDoneMsg>(*done).termination,
            static_cast<uint8_t>(Termination::kComplete));
}

}  // namespace
}  // namespace mbe::serve
